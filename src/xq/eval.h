// Tree-walking evaluator for the XQuery/XCQL subset, plus the temporal
// projection primitives (interval_projection / version_projection of paper
// §6) that both the evaluator and the XCQL translation runtime share.
#ifndef XCQL_XQ_EVAL_H_
#define XCQL_XQ_EVAL_H_

#include <string>
#include <vector>

#include "temporal/interval.h"
#include "xq/ast.h"
#include "xq/context.h"
#include "xq/value.h"

namespace xcql::xq {

/// \brief Evaluates expressions against an EvalContext.
///
/// An Evaluator instance carries the dynamic environment (variable bindings
/// and the focus); it is cheap to construct per evaluation and is not
/// thread-safe.
class Evaluator {
 public:
  explicit Evaluator(EvalContext* ctx);

  /// \brief Binds an external variable visible to the evaluated expression.
  void Bind(const std::string& name, Sequence value);

  /// \brief Evaluates an expression with the current bindings.
  Result<Sequence> Eval(const Expr& e);

  /// \brief Parses and evaluates a full query (prolog functions are
  /// registered into a per-call copy of the context's registry).
  Result<Sequence> EvalProgram(const Program& prog);

 private:
  struct Focus {
    bool has = false;
    Item item;
    int64_t pos = 0;
    int64_t size = 0;
  };

  Result<Sequence> EvalExpr(const Expr& e);
  Result<Sequence> EvalFlwor(const FlworExpr& e);
  Status EvalFlworClauses(
      const FlworExpr& e, size_t idx,
      std::vector<std::pair<std::vector<Atomic>, Sequence>>* ordered,
      Sequence* out);
  static bool HasOrderBy(const FlworExpr& e);
  Result<Sequence> EvalQuantified(const QuantifiedExpr& e);
  Status QuantifyFrom(const QuantifiedExpr& e, size_t idx, bool* result);
  Result<Sequence> EvalBinary(const BinaryExpr& e);
  Result<Sequence> EvalPath(const PathExpr& e);
  Result<Sequence> EvalStep(const PathStep& step, const Sequence& input);
  Result<Sequence> ApplyPredicates(const std::vector<ExprPtr>& preds,
                                   Sequence input);
  Result<Sequence> EvalFunctionCall(const FunctionCallExpr& e);
  Result<Sequence> EvalDirectElement(const DirectElementExpr& e);
  Result<Sequence> EvalComputedElement(const ComputedElementExpr& e);
  Result<Sequence> EvalComputedAttribute(const ComputedAttributeExpr& e);
  Result<Sequence> EvalIntervalProj(const IntervalProjExpr& e);
  Result<Sequence> EvalVersionProj(const VersionProjExpr& e);

  // Scoped variable lookup.
  const Sequence* Lookup(const std::string& name) const;

  EvalContext* ctx_;
  std::vector<std::pair<std::string, Sequence>> vars_;
  Focus focus_;
  int64_t version_last_ = -1;  // value of `last` inside #[…] bounds
  int depth_ = 0;
};

/// \brief The interval projection of paper §6: slices `input` to the time
/// range [tb, te], clipping the vtFrom/vtTo lifespans of temporal elements,
/// pruning elements whose lifespan misses the range, recursing through
/// children and resolving holes via ctx.hole_resolver.
Result<Sequence> IntervalProjection(EvalContext& ctx, const Sequence& input,
                                    DateTime tb, DateTime te);

/// \brief The version projection of paper §6: selects versions vb..ve
/// (1-based) from the input version sequence, then interval-projects each
/// selected version's children to its own lifespan. Snapshot elements count
/// as a single version.
Result<Sequence> VersionProjection(EvalContext& ctx, const Sequence& input,
                                   int64_t vb, int64_t ve);

/// \brief Lifespan accessors (paper §2): vtFrom/vtTo attributes when
/// present, otherwise the span covering the children's lifespans, otherwise
/// [start, now].
Result<DateTime> LifespanFrom(EvalContext& ctx, const Node& e);
Result<DateTime> LifespanTo(EvalContext& ctx, const Node& e);

/// \brief Parses and evaluates `query` in one call; convenience wrapper.
Result<Sequence> EvalQuery(std::string_view query, EvalContext* ctx);

}  // namespace xcql::xq

#endif  // XCQL_XQ_EVAL_H_
