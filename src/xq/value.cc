#include "xq/value.h"

#include <cmath>

#include "common/string_util.h"

namespace xcql::xq {

std::optional<double> Atomic::ToNumber() const {
  if (is_int()) return static_cast<double>(AsInt());
  if (is_double()) return AsDoubleUnchecked();
  if (is_string()) return ParseDouble(AsString());
  if (is_bool()) return AsBool() ? 1.0 : 0.0;
  return std::nullopt;
}

std::string Atomic::ToStringValue() const {
  if (is_bool()) return AsBool() ? "true" : "false";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) {
    double d = AsDoubleUnchecked();
    if (std::isnan(d)) return "NaN";
    if (std::isinf(d)) return d > 0 ? "INF" : "-INF";
    // Integral doubles print without a fractional part, like XQuery.
    if (d == std::floor(d) && std::abs(d) < 1e15) {
      return std::to_string(static_cast<int64_t>(d));
    }
    std::string s = StringPrintf("%.12g", d);
    return s;
  }
  if (is_string()) return AsString();
  if (is_datetime()) return AsDateTime().ToString();
  return AsDuration().ToString();
}

const char* Atomic::TypeName() const {
  if (is_bool()) return "xs:boolean";
  if (is_int()) return "xs:integer";
  if (is_double()) return "xs:double";
  if (is_string()) return untyped_ ? "xs:untypedAtomic" : "xs:string";
  if (is_datetime()) return "xs:dateTime";
  return "xs:duration";
}

Sequence SingletonNode(NodePtr n) {
  Sequence s;
  s.emplace_back(std::move(n));
  return s;
}

Sequence SingletonAtomic(Atomic a) {
  Sequence s;
  s.emplace_back(std::move(a));
  return s;
}

Atomic AtomizeItem(const Item& item) {
  if (IsNode(item)) {
    return Atomic(AsNode(item)->StringValue(), /*untyped=*/true);
  }
  return AsAtomic(item);
}

std::vector<Atomic> Atomize(const Sequence& seq) {
  std::vector<Atomic> out;
  out.reserve(seq.size());
  for (const auto& it : seq) out.push_back(AtomizeItem(it));
  return out;
}

Result<bool> EffectiveBooleanValue(const Sequence& seq) {
  if (seq.empty()) return false;
  if (IsNode(seq.front())) return true;
  if (seq.size() != 1) {
    return Status::TypeError(
        "effective boolean value of a multi-item atomic sequence");
  }
  const Atomic& a = AsAtomic(seq.front());
  if (a.is_bool()) return a.AsBool();
  if (a.is_int()) return a.AsInt() != 0;
  if (a.is_double()) {
    double d = a.AsDoubleUnchecked();
    return d != 0.0 && !std::isnan(d);
  }
  if (a.is_string()) return !a.AsString().empty();
  return Status::TypeError(std::string("no effective boolean value for ") +
                           a.TypeName());
}

namespace {

template <typename T>
bool ApplyOrder(const T& a, const T& b, CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kGe:
      return a >= b;
  }
  return false;
}

}  // namespace

Result<bool> CompareAtomics(const Atomic& a, const Atomic& b, CmpOp op) {
  // Booleans compare only with booleans (or untyped cast to boolean-ish).
  if (a.is_bool() || b.is_bool()) {
    if (a.is_bool() && b.is_bool()) {
      return ApplyOrder(a.AsBool(), b.AsBool(), op);
    }
    return Status::TypeError(std::string("cannot compare ") + a.TypeName() +
                             " with " + b.TypeName());
  }
  // dateTime comparisons: cast a (possibly untyped) string operand.
  if (a.is_datetime() || b.is_datetime()) {
    DateTime da, db;
    if (a.is_datetime()) {
      da = a.AsDateTime();
    } else if (a.is_string()) {
      XCQL_ASSIGN_OR_RETURN(da, DateTime::Parse(a.AsString()));
    } else {
      return Status::TypeError(std::string("cannot compare ") + a.TypeName() +
                               " with xs:dateTime");
    }
    if (b.is_datetime()) {
      db = b.AsDateTime();
    } else if (b.is_string()) {
      XCQL_ASSIGN_OR_RETURN(db, DateTime::Parse(b.AsString()));
    } else {
      return Status::TypeError(std::string("cannot compare xs:dateTime with ") +
                               b.TypeName());
    }
    return ApplyOrder(da, db, op);
  }
  // Duration comparisons: only equality is total without a calendar anchor;
  // order compares the (months, seconds) pair lexicographically, which is
  // exact whenever the month components are equal.
  if (a.is_duration() || b.is_duration()) {
    Duration da, db;
    if (a.is_duration()) {
      da = a.AsDuration();
    } else if (a.is_string()) {
      XCQL_ASSIGN_OR_RETURN(da, Duration::Parse(a.AsString()));
    } else {
      return Status::TypeError(std::string("cannot compare ") + a.TypeName() +
                               " with xs:duration");
    }
    if (b.is_duration()) {
      db = b.AsDuration();
    } else if (b.is_string()) {
      XCQL_ASSIGN_OR_RETURN(db, Duration::Parse(b.AsString()));
    } else {
      return Status::TypeError(std::string("cannot compare xs:duration with ") +
                               b.TypeName());
    }
    auto key = [](const Duration& d) {
      return std::pair<int64_t, int64_t>(d.months(), d.seconds());
    };
    return ApplyOrder(key(da), key(db), op);
  }
  // Numeric comparison when either side is numeric; strings (untyped or
  // literal) are cast to double.
  if (a.is_numeric() || b.is_numeric()) {
    auto na = a.ToNumber();
    auto nb = b.ToNumber();
    if (!na || !nb) {
      return Status::TypeError(std::string("cannot compare ") + a.TypeName() +
                               " '" + a.ToStringValue() + "' with " +
                               b.TypeName() + " '" + b.ToStringValue() + "'");
    }
    return ApplyOrder(*na, *nb, op);
  }
  // Both strings.
  return ApplyOrder(a.AsString(), b.AsString(), op);
}

std::string SequenceToString(const Sequence& seq) {
  std::string out;
  for (size_t i = 0; i < seq.size(); ++i) {
    if (i > 0) out.push_back(' ');
    out += AtomizeItem(seq[i]).ToStringValue();
  }
  return out;
}

}  // namespace xcql::xq
