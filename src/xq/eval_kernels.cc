#include "xq/eval_kernels.h"

#include <algorithm>
#include <cmath>

#include "common/interner.h"
#include "common/string_util.h"
#include "xq/eval.h"

namespace xcql::xq {

// ---- Temporal scalar kernels ----------------------------------------------

DateTime ResolveNow(const EvalContext& ctx, DateTime t) {
  return t == DateTime::End() ? ctx.now : t;
}

Result<DateTime> ParseVtAttr(const EvalContext& ctx, const std::string& s) {
  XCQL_ASSIGN_OR_RETURN(DateTime t, DateTime::Parse(s));
  return ResolveNow(ctx, t);
}

Result<DateTime> AtomicToDateTime(const EvalContext& ctx, const Atomic& a) {
  if (a.is_datetime()) return ResolveNow(ctx, a.AsDateTime());
  if (a.is_string()) return ParseVtAttr(ctx, a.AsString());
  return Status::TypeError(std::string("expected xs:dateTime bound, got ") +
                           a.TypeName() + " '" + a.ToStringValue() + "'");
}

Result<int64_t> AtomicToVersion(const Atomic& a) {
  if (a.is_int()) return a.AsInt();
  if (a.is_double()) return static_cast<int64_t>(a.AsDoubleUnchecked());
  if (a.is_string()) {
    auto v = ParseInt64(a.AsString());
    if (v) return *v;
  }
  return Status::TypeError(std::string("expected integer version bound, got ") +
                           a.TypeName());
}

Result<std::optional<Interval>> ReadLifespanAttrs(const EvalContext& ctx,
                                                  const Node& e) {
  const std::string* f = e.FindAttr("vtFrom");
  const std::string* t = e.FindAttr("vtTo");
  if (f == nullptr && t == nullptr) return std::optional<Interval>();
  DateTime from = DateTime::Start();
  DateTime to = ctx.now;
  if (f != nullptr) {
    XCQL_ASSIGN_OR_RETURN(from, ParseVtAttr(ctx, *f));
  }
  if (t != nullptr) {
    XCQL_ASSIGN_OR_RETURN(to, ParseVtAttr(ctx, *t));
  }
  return std::optional<Interval>(Interval(from, to));
}

bool IsHoleNode(const Node& n) {
  static const int kHoleId = InternName("hole");
  return n.is_element() && n.name_id() == kHoleId;
}

Result<Interval> ItemLifespan(EvalContext& ctx, const Item& item) {
  if (IsNode(item)) {
    const NodePtr& n = AsNode(item);
    XCQL_ASSIGN_OR_RETURN(DateTime f, LifespanFrom(ctx, *n));
    XCQL_ASSIGN_OR_RETURN(DateTime t, LifespanTo(ctx, *n));
    return Interval(f, t);
  }
  XCQL_ASSIGN_OR_RETURN(DateTime d, AtomicToDateTime(ctx, AsAtomic(item)));
  return Interval::Point(d);
}

// ---- Arena-aware node construction ----------------------------------------

NodePtr NewElement(const EvalContext& ctx, std::string name) {
  return Node::Element(std::move(name), ctx.arena);
}

NodePtr NewText(const EvalContext& ctx, std::string text) {
  return Node::Text(std::move(text), ctx.arena);
}

NodePtr NewAttribute(const EvalContext& ctx, std::string name,
                     std::string value) {
  return Node::Attribute(std::move(name), std::move(value), ctx.arena);
}

// ---- Operator kernels ------------------------------------------------------

Result<Sequence> EvalArithmetic(const EvalContext& ctx, BinOp op,
                                const Atomic& a, const Atomic& b) {
  // Temporal arithmetic first: dateTime ± duration, dateTime - dateTime,
  // duration ± duration, duration * number.
  auto as_datetime = [&](const Atomic& x) -> std::optional<DateTime> {
    if (x.is_datetime()) return ResolveNow(ctx, x.AsDateTime());
    if (x.is_string()) {
      auto r = DateTime::Parse(x.AsString());
      if (r.ok()) return ResolveNow(ctx, r.value());
    }
    return std::nullopt;
  };
  auto as_duration = [&](const Atomic& x) -> std::optional<Duration> {
    if (x.is_duration()) return x.AsDuration();
    if (x.is_string()) {
      auto r = Duration::Parse(x.AsString());
      if (r.ok()) return r.value();
    }
    return std::nullopt;
  };

  if (a.is_datetime() || b.is_datetime() || a.is_duration() ||
      b.is_duration()) {
    if (op == BinOp::kPlus || op == BinOp::kMinus) {
      auto da = as_datetime(a);
      auto db = as_datetime(b);
      auto ua = as_duration(a);
      auto ub = as_duration(b);
      if (da && ub) {
        DateTime r = op == BinOp::kPlus ? da->Add(*ub) : da->Subtract(*ub);
        return SingletonAtomic(Atomic(r));
      }
      if (ua && db && op == BinOp::kPlus) {
        return SingletonAtomic(Atomic(db->Add(*ua)));
      }
      if (da && db && op == BinOp::kMinus) {
        return SingletonAtomic(
            Atomic(Duration::FromSeconds(da->DiffSeconds(*db))));
      }
      if (ua && ub) {
        Duration r = op == BinOp::kPlus
                         ? Duration(ua->months() + ub->months(),
                                    ua->seconds() + ub->seconds())
                         : Duration(ua->months() - ub->months(),
                                    ua->seconds() - ub->seconds());
        return SingletonAtomic(Atomic(r));
      }
    }
    if (op == BinOp::kMul) {
      auto ua = as_duration(a);
      auto ub = as_duration(b);
      auto na = a.ToNumber();
      auto nb = b.ToNumber();
      if (ua && nb) {
        return SingletonAtomic(
            Atomic(Duration(static_cast<int64_t>(ua->months() * *nb),
                            static_cast<int64_t>(ua->seconds() * *nb))));
      }
      if (ub && na) {
        return SingletonAtomic(
            Atomic(Duration(static_cast<int64_t>(ub->months() * *na),
                            static_cast<int64_t>(ub->seconds() * *na))));
      }
    }
    return Status::TypeError(std::string("invalid temporal arithmetic: ") +
                             a.TypeName() + " " + BinOpName(op) + " " +
                             b.TypeName());
  }

  // Mixed string/number operands: strings must parse as numbers.
  auto na = a.ToNumber();
  auto nb = b.ToNumber();
  if (!na || !nb) {
    return Status::TypeError(std::string("arithmetic on ") + a.TypeName() +
                             " '" + a.ToStringValue() + "' and " +
                             b.TypeName() + " '" + b.ToStringValue() + "'");
  }
  bool both_int = a.is_int() && b.is_int();
  switch (op) {
    case BinOp::kPlus:
      if (both_int) return SingletonAtomic(Atomic(a.AsInt() + b.AsInt()));
      return SingletonAtomic(Atomic(*na + *nb));
    case BinOp::kMinus:
      if (both_int) return SingletonAtomic(Atomic(a.AsInt() - b.AsInt()));
      return SingletonAtomic(Atomic(*na - *nb));
    case BinOp::kMul:
      if (both_int) return SingletonAtomic(Atomic(a.AsInt() * b.AsInt()));
      return SingletonAtomic(Atomic(*na * *nb));
    case BinOp::kDiv:
      if (*nb == 0) {
        return Status::TypeError("division by zero");
      }
      return SingletonAtomic(Atomic(*na / *nb));
    case BinOp::kIdiv: {
      if (*nb == 0) return Status::TypeError("integer division by zero");
      return SingletonAtomic(
          Atomic(static_cast<int64_t>(std::trunc(*na / *nb))));
    }
    case BinOp::kMod: {
      if (*nb == 0) return Status::TypeError("modulo by zero");
      if (both_int) {
        return SingletonAtomic(Atomic(a.AsInt() % b.AsInt()));
      }
      return SingletonAtomic(Atomic(std::fmod(*na, *nb)));
    }
    default:
      return Status::Internal("unhandled arithmetic operator");
  }
}

namespace {

CmpOp CmpOpFor(BinOp op) {
  switch (op) {
    case BinOp::kGenEq:
    case BinOp::kValEq:
      return CmpOp::kEq;
    case BinOp::kGenNe:
    case BinOp::kValNe:
      return CmpOp::kNe;
    case BinOp::kGenLt:
    case BinOp::kValLt:
      return CmpOp::kLt;
    case BinOp::kGenLe:
    case BinOp::kValLe:
      return CmpOp::kLe;
    case BinOp::kGenGt:
    case BinOp::kValGt:
      return CmpOp::kGt;
    default:
      return CmpOp::kGe;
  }
}

}  // namespace

Result<Sequence> GeneralCompare(BinOp op, const Sequence& l,
                                const Sequence& r) {
  std::vector<Atomic> la = Atomize(l);
  std::vector<Atomic> ra = Atomize(r);
  for (const Atomic& a : la) {
    for (const Atomic& b : ra) {
      XCQL_ASSIGN_OR_RETURN(bool ok, CompareAtomics(a, b, CmpOpFor(op)));
      if (ok) return SingletonAtomic(Atomic(true));
    }
  }
  return SingletonAtomic(Atomic(false));
}

Result<Sequence> ValueCompare(BinOp op, const Sequence& l, const Sequence& r) {
  if (l.empty() || r.empty()) return Sequence{};
  if (l.size() != 1 || r.size() != 1) {
    return Status::TypeError("value comparison requires singleton operands");
  }
  XCQL_ASSIGN_OR_RETURN(bool ok,
                        CompareAtomics(AtomizeItem(l.front()),
                                       AtomizeItem(r.front()), CmpOpFor(op)));
  return SingletonAtomic(Atomic(ok));
}

Result<Sequence> RangeSequence(const Sequence& l, const Sequence& r) {
  if (l.empty() || r.empty()) return Sequence{};
  Atomic la = AtomizeItem(l.front());
  Atomic ra = AtomizeItem(r.front());
  XCQL_ASSIGN_OR_RETURN(int64_t lo, AtomicToVersion(la));
  XCQL_ASSIGN_OR_RETURN(int64_t hi, AtomicToVersion(ra));
  Sequence out;
  for (int64_t i = lo; i <= hi; ++i) out.emplace_back(Atomic(i));
  return out;
}

Result<Sequence> NodeSetOp(BinOp op, Sequence l, Sequence r) {
  // Node-set operators by node identity, preserving the left operand's
  // order (we do not maintain a global document order).
  for (const Sequence* side : {&l, &r}) {
    for (const Item& item : *side) {
      if (!IsNode(item)) {
        return Status::TypeError("set operands must be nodes");
      }
    }
  }
  std::unordered_set<const Node*> right;
  for (const Item& item : r) right.insert(AsNode(item).get());
  Sequence out;
  std::unordered_set<const Node*> seen;
  if (op == BinOp::kUnion) {
    for (Sequence* side : {&l, &r}) {
      for (Item& item : *side) {
        if (seen.insert(AsNode(item).get()).second) {
          out.push_back(std::move(item));
        }
      }
    }
    return out;
  }
  for (Item& item : l) {
    bool in_right = right.count(AsNode(item).get()) > 0;
    if ((op == BinOp::kIntersect) != in_right) continue;
    if (seen.insert(AsNode(item).get()).second) {
      out.push_back(std::move(item));
    }
  }
  return out;
}

Result<Sequence> IntervalRelation(EvalContext& ctx, BinOp op,
                                  const Sequence& l, const Sequence& r) {
  // Existential over the lifespans of the two sequences (elements by
  // lifespan; dateTimes as point intervals). `overlaps` means "share at
  // least one instant" (symmetric), which is the useful reading for
  // coincidence queries; the strict Allen overlap is expressible as
  // (a overlaps b and not(a contains b) …).
  for (const Item& a : l) {
    XCQL_ASSIGN_OR_RETURN(Interval ia, ItemLifespan(ctx, a));
    for (const Item& b : r) {
      XCQL_ASSIGN_OR_RETURN(Interval ib, ItemLifespan(ctx, b));
      bool hit = false;
      switch (op) {
        case BinOp::kBefore:
          hit = ia.Before(ib);
          break;
        case BinOp::kAfter:
          hit = ia.After(ib);
          break;
        case BinOp::kMeets:
          hit = ia.Meets(ib);
          break;
        case BinOp::kOverlaps:
          hit = ia.Intersects(ib);
          break;
        case BinOp::kContains:
          hit = ia.ContainsInterval(ib);
          break;
        default:
          hit = ia.During(ib);
      }
      if (hit) return SingletonAtomic(Atomic(true));
    }
  }
  return SingletonAtomic(Atomic(false));
}

Result<Sequence> UnaryMinus(Sequence r) {
  if (r.empty()) return r;
  if (r.size() != 1) {
    return Status::TypeError("unary minus on a multi-item sequence");
  }
  Atomic a = AtomizeItem(r.front());
  if (a.is_int()) return SingletonAtomic(Atomic(-a.AsInt()));
  auto n = a.ToNumber();
  if (!n) {
    return Status::TypeError(std::string("unary minus on ") + a.TypeName());
  }
  return SingletonAtomic(Atomic(-*n));
}

// ---- Path kernels ----------------------------------------------------------

namespace {

void CollectDescendants(const NodePtr& n, std::vector<NodePtr>* out) {
  for (const NodePtr& c : n->children()) {
    out->push_back(c);
    if (c->is_element()) CollectDescendants(c, out);
  }
}

bool MatchesTest(const Node& n, PathStep::Test test, int name_id) {
  switch (test) {
    case PathStep::Test::kName:
      return n.is_element() && n.name_id() == name_id;
    case PathStep::Test::kWildcard:
      return n.is_element();
    case PathStep::Test::kText:
      return n.is_text();
    case PathStep::Test::kNode:
      return true;
  }
  return false;
}

}  // namespace

Status CollectAxisMatches(const EvalContext& ctx, const NodePtr& node,
                          const PathStep& step, int name_id,
                          std::unordered_set<const Node*>* desc_seen,
                          Sequence* matches) {
  switch (step.axis) {
    case PathStep::Axis::kChild: {
      for (const NodePtr& c : node->children()) {
        if (MatchesTest(*c, step.test, name_id)) matches->emplace_back(c);
      }
      break;
    }
    case PathStep::Axis::kDescendant: {
      std::vector<NodePtr> desc;
      CollectDescendants(node, &desc);
      for (const NodePtr& d : desc) {
        if (MatchesTest(*d, step.test, name_id) &&
            desc_seen->insert(d.get()).second) {
          matches->emplace_back(d);
        }
      }
      break;
    }
    case PathStep::Axis::kAttribute: {
      if (step.test == PathStep::Test::kWildcard) {
        for (const auto& [k, v] : node->attrs()) {
          matches->emplace_back(NewAttribute(ctx, k, v));
        }
      } else {
        const std::string* v = node->FindAttr(step.name);
        if (v != nullptr) {
          matches->emplace_back(NewAttribute(ctx, step.name, *v));
        }
      }
      break;
    }
    case PathStep::Axis::kParent: {
      if (node->parent() != nullptr) {
        matches->emplace_back(node->parent()->shared_from_this());
      }
      break;
    }
  }
  return Status::OK();
}

Result<bool> PredicateAccepts(const Sequence& value, int64_t pos) {
  // A singleton numeric predicate selects by position.
  if (value.size() == 1 && !IsNode(value.front()) &&
      AsAtomic(value.front()).is_numeric()) {
    double want = *AsAtomic(value.front()).ToNumber();
    return static_cast<double>(pos) == want;
  }
  return EffectiveBooleanValue(value);
}

// ---- Constructor kernels ---------------------------------------------------

Status AppendConstructorContent(const EvalContext& ctx, const Sequence& items,
                                Node* element, std::string* pending_text) {
  bool prev_atomic = false;
  for (const Item& item : items) {
    if (IsNode(item)) {
      const NodePtr& n = AsNode(item);
      if (n->is_attribute()) {
        element->SetAttr(n->name(), n->text());
        prev_atomic = false;
        continue;
      }
      if (!pending_text->empty()) {
        element->AddChild(NewText(ctx, std::move(*pending_text)));
        pending_text->clear();
      }
      if (n->is_text()) {
        element->AddChild(NewText(ctx, n->text()));
      } else {
        element->AddChild(n->Clone());
      }
      prev_atomic = false;
    } else {
      if (prev_atomic) pending_text->push_back(' ');
      *pending_text += AsAtomic(item).ToStringValue();
      prev_atomic = true;
    }
  }
  return Status::OK();
}

// ---- Order-by kernels ------------------------------------------------------

std::weak_ordering OrderSortKey::Compare(const OrderSortKey& o) const {
  if (auto c = rank <=> o.rank; c != 0) return c;
  switch (rank) {
    case 1:
      return b <=> o.b;
    case 2:
      return num < o.num    ? std::weak_ordering::less
             : num > o.num  ? std::weak_ordering::greater
                            : std::weak_ordering::equivalent;
    case 3:
      return ticks <=> o.ticks;
    case 4:
      if (auto c = months <=> o.months; c != 0) return c;
      return ticks <=> o.ticks;
    case 5:
      return str.compare(o.str) <=> 0;
    default:
      return std::weak_ordering::equivalent;
  }
}

Atomic OrderKeyAtomic(const Sequence& kv) {
  if (kv.empty()) {
    return Atomic(std::string(), /*untyped=*/true);  // empty marker
  }
  return AtomizeItem(kv.front());
}

OrderSortKey OrderSortKeyFrom(const Atomic& a) {
  OrderSortKey k;
  // The empty marker (see OrderKeyAtomic) sorts first: rank 0.
  if (a.is_string() && a.AsString().empty() && a.untyped()) return k;
  if (a.is_bool()) {
    k.rank = 1;
    k.b = a.AsBool();
  } else if (a.is_numeric()) {
    k.rank = 2;
    k.num = *a.ToNumber();
  } else if (a.is_datetime()) {
    k.rank = 3;
    k.ticks = a.AsDateTime().seconds();
  } else if (a.is_duration()) {
    k.rank = 4;
    k.months = a.AsDuration().months();
    k.ticks = a.AsDuration().seconds();
  } else {
    // Untyped strings that look numeric sort numerically, so documents
    // with unannotated numbers (the common case) order as expected.
    auto n = a.untyped() ? ParseDouble(a.AsString()) : std::nullopt;
    if (n) {
      k.rank = 2;
      k.num = *n;
    } else {
      k.rank = 5;
      k.str = a.AsString();
    }
  }
  return k;
}

}  // namespace xcql::xq
