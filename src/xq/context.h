// Evaluation context: the clock, named documents, the function registry,
// and the hook through which the Hole-Filler layer resolves holes during
// temporal projections.
#ifndef XCQL_XQ_CONTEXT_H_
#define XCQL_XQ_CONTEXT_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/arena.h"
#include "xq/ast.h"
#include "xq/value.h"

namespace xcql::xq {

struct EvalContext;

/// \brief What resolution does with a hole whose filler never arrived
/// (lossy link, retry budget exhausted). The Hole-Filler model expects
/// fillers to go missing (paper §1); this is the query layer's answer.
enum class HolePolicy : uint8_t {
  /// Splice nothing: the hole vanishes from the result (the historical
  /// default — results stay well-formed but silently incomplete; the
  /// unresolved count makes the incompleteness observable).
  kOmit = 0,
  /// Fail the evaluation with NotFound. For consumers that would rather
  /// have no answer than a partial one.
  kFail = 1,
  /// Keep the <hole id=… tsid=…/> element in the result as an explicit
  /// incompleteness marker downstream consumers can detect.
  kKeepHole = 2,
};

/// \brief Resolves a <hole id=… tsid=…/> element into the version elements
/// (annotated with vtFrom/vtTo) of the fillers that fill it. Implemented by
/// the fragment layer; null in contexts with no fragmented data (e.g. CaQ
/// queries over a fully materialized view).
class HoleResolver {
 public:
  virtual ~HoleResolver() = default;
  virtual Result<std::vector<NodePtr>> Resolve(EvalContext& ctx,
                                               const Node& hole) = 0;
};

/// \brief Registry of callable functions: C++ natives and user-declared
/// XQuery functions share one namespace.
class FunctionRegistry {
 public:
  /// Native signature: evaluated argument sequences in, sequence out.
  using NativeFn =
      std::function<Result<Sequence>(EvalContext&, std::vector<Sequence>&)>;

  struct NativeEntry {
    int min_arity;
    int max_arity;  // -1 = variadic
    NativeFn fn;
  };

  /// \brief Registers (or replaces) a native function.
  void RegisterNative(const std::string& name, int min_arity, int max_arity,
                      NativeFn fn);

  /// \brief Registers (or replaces) a user-declared function.
  void RegisterUser(FunctionDecl decl);

  const NativeEntry* FindNative(const std::string& name) const;
  const FunctionDecl* FindUser(const std::string& name) const;

  /// \brief A registry preloaded with the standard builtin library
  /// (fn: core, temporal accessors, geo helpers for the paper's examples).
  static FunctionRegistry Builtins();

 private:
  std::map<std::string, NativeEntry> natives_;
  std::map<std::string, FunctionDecl> user_;
};

/// \brief Everything an evaluation needs beyond the expression itself.
struct EvalContext {
  /// The value of the XCQL constant `now` (and of vtTo="now") during this
  /// evaluation. Continuous queries advance it between re-evaluations.
  DateTime now;

  /// Function registry; must outlive the evaluation. Never null during
  /// evaluation (Evaluator checks).
  const FunctionRegistry* functions = nullptr;

  /// Optional hole resolution for projections over fragmented data.
  HoleResolver* hole_resolver = nullptr;

  /// Cost model for filler lookups during this evaluation: true selects the
  /// paper-faithful linear `filler[@id=$fid]` scan, false the hash index.
  /// Lives here (not on the resolver) so concurrent evaluations sharing one
  /// resolver each carry their own method's cost model.
  bool linear_fillers = false;

  /// What hole resolution does when a filler is missing (see HolePolicy).
  HolePolicy hole_policy = HolePolicy::kOmit;

  /// Holes left unresolved during this evaluation under kOmit/kKeepHole —
  /// the per-evaluation completeness signal surfaced in QueryStats.
  int64_t holes_unresolved = 0;

  /// Holes whose filler was compacted away by a retention policy
  /// (frag::FragmentStore::Compact). Expired is not lost: the store
  /// removed the versions deliberately, so these are resolved as empty
  /// under every HolePolicy (including kFail) and counted here instead of
  /// in holes_unresolved.
  int64_t holes_expired = 0;

  /// Named documents for fn:doc (and for stream() once a method binds
  /// stream names to materialized roots).
  std::map<std::string, NodePtr, std::less<>> documents;

  /// Arena for transient nodes created during this evaluation (projection
  /// copies, attribute nodes, constructor results). Null = plain heap. The
  /// pool outlives any result nodes that escape (see common/arena.h), so
  /// callers may hand results around freely.
  std::shared_ptr<ArenaPool> arena;
};

}  // namespace xcql::xq

#endif  // XCQL_XQ_CONTEXT_H_
