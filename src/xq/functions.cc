// The builtin function library (FunctionRegistry::Builtins): the fn: core
// subset the paper's queries use, temporal accessors (vtFrom/vtTo,
// current-dateTime), constructors for dateTime/duration, string functions,
// and the geo helpers (distance, triangulate) of the paper's §2 examples.
#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/string_util.h"
#include "xml/serializer.h"
#include "xq/context.h"
#include "xq/eval.h"
#include "xq/value.h"

namespace xcql::xq {

namespace {

using Args = std::vector<Sequence>;

// Flattens all argument sequences into one (for variadic aggregates like
// max(a, b) which the paper writes with two arguments).
Sequence FlattenArgs(const Args& args) {
  Sequence out;
  for (const Sequence& s : args) {
    out.insert(out.end(), s.begin(), s.end());
  }
  return out;
}

Result<double> ItemToNumber(const Item& item) {
  Atomic a = AtomizeItem(item);
  auto n = a.ToNumber();
  if (!n) {
    return Status::TypeError(std::string("cannot convert ") + a.TypeName() +
                             " '" + a.ToStringValue() + "' to a number");
  }
  return *n;
}

// Parses a 2-D point from "x y" or "x,y" text (locations in the paper's
// sensor examples).
Result<std::pair<double, double>> ParsePoint(const Item& item) {
  std::string s(StripWhitespace(AtomizeItem(item).ToStringValue()));
  std::replace(s.begin(), s.end(), ',', ' ');
  std::vector<std::string> parts;
  for (const std::string& p : SplitString(s, ' ')) {
    if (!p.empty()) parts.push_back(p);
  }
  if (parts.size() != 2) {
    return Status::TypeError("cannot parse point from '" + s + "'");
  }
  auto x = ParseDouble(parts[0]);
  auto y = ParseDouble(parts[1]);
  if (!x || !y) {
    return Status::TypeError("cannot parse point from '" + s + "'");
  }
  return std::make_pair(*x, *y);
}

Result<Sequence> FnCount(EvalContext&, Args& args) {
  return SingletonAtomic(Atomic(static_cast<int64_t>(args[0].size())));
}

Result<Sequence> FnSum(EvalContext&, Args& args) {
  const Sequence& seq = args[0];
  if (seq.empty()) {
    if (args.size() > 1) return args[1];
    return SingletonAtomic(Atomic(static_cast<int64_t>(0)));
  }
  bool all_int = true;
  double total = 0;
  int64_t itotal = 0;
  for (const Item& item : seq) {
    Atomic a = AtomizeItem(item);
    XCQL_ASSIGN_OR_RETURN(double v, ItemToNumber(item));
    total += v;
    if (a.is_int()) {
      itotal += a.AsInt();
    } else {
      all_int = false;
    }
  }
  if (all_int) return SingletonAtomic(Atomic(itotal));
  return SingletonAtomic(Atomic(total));
}

Result<Sequence> FnAvg(EvalContext&, Args& args) {
  const Sequence& seq = args[0];
  if (seq.empty()) return Sequence{};
  double total = 0;
  for (const Item& item : seq) {
    XCQL_ASSIGN_OR_RETURN(double v, ItemToNumber(item));
    total += v;
  }
  return SingletonAtomic(Atomic(total / static_cast<double>(seq.size())));
}

Result<Sequence> FnMaxMin(bool is_max, Args& args) {
  Sequence all = FlattenArgs(args);
  if (all.empty()) return Sequence{};
  Atomic best = AtomizeItem(all.front());
  for (size_t i = 1; i < all.size(); ++i) {
    Atomic a = AtomizeItem(all[i]);
    XCQL_ASSIGN_OR_RETURN(
        bool better, CompareAtomics(a, best, is_max ? CmpOp::kGt : CmpOp::kLt));
    if (better) best = a;
  }
  return SingletonAtomic(std::move(best));
}

Result<Sequence> FnNot(EvalContext&, Args& args) {
  XCQL_ASSIGN_OR_RETURN(bool b, EffectiveBooleanValue(args[0]));
  return SingletonAtomic(Atomic(!b));
}

Result<Sequence> FnBoolean(EvalContext&, Args& args) {
  XCQL_ASSIGN_OR_RETURN(bool b, EffectiveBooleanValue(args[0]));
  return SingletonAtomic(Atomic(b));
}

Result<Sequence> FnEmpty(EvalContext&, Args& args) {
  return SingletonAtomic(Atomic(args[0].empty()));
}

Result<Sequence> FnExists(EvalContext&, Args& args) {
  return SingletonAtomic(Atomic(!args[0].empty()));
}

Result<Sequence> FnName(EvalContext&, Args& args) {
  if (args[0].empty()) return SingletonAtomic(Atomic(std::string()));
  if (!IsNode(args[0].front())) {
    return Status::TypeError("name() requires a node argument");
  }
  return SingletonAtomic(Atomic(AsNode(args[0].front())->name()));
}

Result<Sequence> FnString(EvalContext&, Args& args) {
  return SingletonAtomic(Atomic(SequenceToString(args[0])));
}

Result<Sequence> FnNumber(EvalContext&, Args& args) {
  if (args[0].empty()) {
    return SingletonAtomic(Atomic(std::nan("")));
  }
  Atomic a = AtomizeItem(args[0].front());
  auto n = a.ToNumber();
  return SingletonAtomic(Atomic(n ? *n : std::nan("")));
}

Result<Sequence> FnData(EvalContext&, Args& args) {
  Sequence out;
  for (const Atomic& a : Atomize(args[0])) out.emplace_back(a);
  return out;
}

Result<Sequence> FnConcat(EvalContext&, Args& args) {
  std::string out;
  for (const Sequence& s : args) out += SequenceToString(s);
  return SingletonAtomic(Atomic(std::move(out)));
}

Result<Sequence> FnStringJoin(EvalContext&, Args& args) {
  std::string sep = args.size() > 1 ? SequenceToString(args[1]) : "";
  std::string out;
  for (size_t i = 0; i < args[0].size(); ++i) {
    if (i > 0) out += sep;
    out += AtomizeItem(args[0][i]).ToStringValue();
  }
  return SingletonAtomic(Atomic(std::move(out)));
}

Result<Sequence> FnContains(EvalContext&, Args& args) {
  std::string hay = SequenceToString(args[0]);
  std::string needle = SequenceToString(args[1]);
  return SingletonAtomic(Atomic(hay.find(needle) != std::string::npos));
}

Result<Sequence> FnStartsWith(EvalContext&, Args& args) {
  std::string hay = SequenceToString(args[0]);
  std::string prefix = SequenceToString(args[1]);
  return SingletonAtomic(Atomic(StartsWith(hay, prefix)));
}

Result<Sequence> FnEndsWith(EvalContext&, Args& args) {
  std::string hay = SequenceToString(args[0]);
  std::string suffix = SequenceToString(args[1]);
  bool ok = hay.size() >= suffix.size() &&
            hay.compare(hay.size() - suffix.size(), suffix.size(), suffix) == 0;
  return SingletonAtomic(Atomic(ok));
}

Result<Sequence> FnSubstring(EvalContext&, Args& args) {
  std::string s = SequenceToString(args[0]);
  XCQL_ASSIGN_OR_RETURN(double startd, ItemToNumber(args[1].front()));
  int64_t start = static_cast<int64_t>(std::llround(startd));
  int64_t len = static_cast<int64_t>(s.size()) - (start - 1);
  if (args.size() > 2) {
    XCQL_ASSIGN_OR_RETURN(double lend, ItemToNumber(args[2].front()));
    len = static_cast<int64_t>(std::llround(lend));
  }
  int64_t begin = std::max<int64_t>(start - 1, 0);
  int64_t end = std::min<int64_t>(start - 1 + len, static_cast<int64_t>(s.size()));
  if (begin >= end) return SingletonAtomic(Atomic(std::string()));
  return SingletonAtomic(Atomic(s.substr(static_cast<size_t>(begin),
                                         static_cast<size_t>(end - begin))));
}

Result<Sequence> FnStringLength(EvalContext&, Args& args) {
  return SingletonAtomic(
      Atomic(static_cast<int64_t>(SequenceToString(args[0]).size())));
}

Result<Sequence> FnNormalizeSpace(EvalContext&, Args& args) {
  std::string s = SequenceToString(args[0]);
  std::string out;
  bool in_space = true;  // also trims leading whitespace
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!in_space) out.push_back(' ');
      in_space = true;
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  if (!out.empty() && out.back() == ' ') out.pop_back();
  return SingletonAtomic(Atomic(std::move(out)));
}

Result<Sequence> FnDoc(EvalContext& ctx, Args& args) {
  std::string name = SequenceToString(args[0]);
  auto it = ctx.documents.find(name);
  if (it == ctx.documents.end()) {
    return Status::NotFound("doc(): no document named '" + name + "'");
  }
  return SingletonNode(it->second);
}

Result<Sequence> FnCurrentDateTime(EvalContext& ctx, Args&) {
  return SingletonAtomic(Atomic(ctx.now));
}

Result<Sequence> FnDateTimeCtor(EvalContext&, Args& args) {
  if (args[0].empty()) return Sequence{};
  XCQL_ASSIGN_OR_RETURN(
      DateTime dt, DateTime::Parse(AtomizeItem(args[0].front()).ToStringValue()));
  return SingletonAtomic(Atomic(dt));
}

Result<Sequence> FnDurationCtor(EvalContext&, Args& args) {
  if (args[0].empty()) return Sequence{};
  XCQL_ASSIGN_OR_RETURN(
      Duration d, Duration::Parse(AtomizeItem(args[0].front()).ToStringValue()));
  return SingletonAtomic(Atomic(d));
}

Result<Sequence> FnVtFrom(EvalContext& ctx, Args& args) {
  if (args[0].empty()) return Sequence{};
  if (!IsNode(args[0].front())) {
    return Status::TypeError("vtFrom() requires an element argument");
  }
  XCQL_ASSIGN_OR_RETURN(DateTime t, LifespanFrom(ctx, *AsNode(args[0].front())));
  return SingletonAtomic(Atomic(t));
}

Result<Sequence> FnVtTo(EvalContext& ctx, Args& args) {
  if (args[0].empty()) return Sequence{};
  if (!IsNode(args[0].front())) {
    return Status::TypeError("vtTo() requires an element argument");
  }
  XCQL_ASSIGN_OR_RETURN(DateTime t, LifespanTo(ctx, *AsNode(args[0].front())));
  return SingletonAtomic(Atomic(t));
}

Result<Sequence> FnRoundFloorCeil(int mode, Args& args) {
  if (args[0].empty()) return Sequence{};
  Atomic a = AtomizeItem(args[0].front());
  if (a.is_int()) return SingletonAtomic(a);
  XCQL_ASSIGN_OR_RETURN(double v, ItemToNumber(args[0].front()));
  double r = mode == 0 ? std::round(v) : mode == 1 ? std::floor(v)
                                                   : std::ceil(v);
  return SingletonAtomic(Atomic(static_cast<int64_t>(r)));
}

Result<Sequence> FnAbs(EvalContext&, Args& args) {
  if (args[0].empty()) return Sequence{};
  Atomic a = AtomizeItem(args[0].front());
  if (a.is_int()) {
    return SingletonAtomic(Atomic(a.AsInt() < 0 ? -a.AsInt() : a.AsInt()));
  }
  XCQL_ASSIGN_OR_RETURN(double v, ItemToNumber(args[0].front()));
  return SingletonAtomic(Atomic(std::abs(v)));
}

Result<Sequence> FnDeepEqual(EvalContext&, Args& args) {
  const Sequence& a = args[0];
  const Sequence& b = args[1];
  if (a.size() != b.size()) return SingletonAtomic(Atomic(false));
  for (size_t i = 0; i < a.size(); ++i) {
    if (IsNode(a[i]) != IsNode(b[i])) return SingletonAtomic(Atomic(false));
    if (IsNode(a[i])) {
      if (!Node::DeepEqual(*AsNode(a[i]), *AsNode(b[i]))) {
        return SingletonAtomic(Atomic(false));
      }
    } else {
      auto eq = CompareAtomics(AsAtomic(a[i]), AsAtomic(b[i]), CmpOp::kEq);
      if (!eq.ok() || !eq.value()) return SingletonAtomic(Atomic(false));
    }
  }
  return SingletonAtomic(Atomic(true));
}

Result<Sequence> FnSerialize(EvalContext&, Args& args) {
  std::string out;
  for (const Item& item : args[0]) {
    if (IsNode(item)) {
      out += SerializeXml(*AsNode(item));
    } else {
      out += AsAtomic(item).ToStringValue();
    }
  }
  return SingletonAtomic(Atomic(std::move(out)));
}

Result<Sequence> FnDistinctValues(EvalContext&, Args& args) {
  Sequence out;
  std::vector<Atomic> seen;
  for (const Item& item : args[0]) {
    Atomic a = AtomizeItem(item);
    bool dup = false;
    for (const Atomic& s : seen) {
      auto eq = CompareAtomics(a, s, CmpOp::kEq);
      if (eq.ok() && eq.value()) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      seen.push_back(a);
      out.emplace_back(std::move(a));
    }
  }
  return out;
}

Result<Sequence> FnReverse(EvalContext&, Args& args) {
  Sequence out(args[0].rbegin(), args[0].rend());
  return out;
}

Result<Sequence> FnSubsequence(EvalContext&, Args& args) {
  XCQL_ASSIGN_OR_RETURN(double startd, ItemToNumber(args[1].front()));
  int64_t start = static_cast<int64_t>(std::llround(startd));
  int64_t len = static_cast<int64_t>(args[0].size());
  if (args.size() > 2) {
    XCQL_ASSIGN_OR_RETURN(double lend, ItemToNumber(args[2].front()));
    len = static_cast<int64_t>(std::llround(lend));
  }
  Sequence out;
  int64_t n = static_cast<int64_t>(args[0].size());
  for (int64_t pos = std::max<int64_t>(start, 1);
       pos < start + len && pos <= n; ++pos) {
    out.push_back(args[0][static_cast<size_t>(pos - 1)]);
  }
  return out;
}

Result<Sequence> FnIndexOf(EvalContext&, Args& args) {
  if (args[1].empty()) return Sequence{};
  Atomic needle = AtomizeItem(args[1].front());
  Sequence out;
  int64_t pos = 0;
  for (const Item& item : args[0]) {
    ++pos;
    auto eq = CompareAtomics(AtomizeItem(item), needle, CmpOp::kEq);
    if (eq.ok() && eq.value()) out.emplace_back(Atomic(pos));
  }
  return out;
}

Result<Sequence> FnDistance(EvalContext&, Args& args) {
  if (args[0].empty() || args[1].empty()) return Sequence{};
  XCQL_ASSIGN_OR_RETURN(auto p1, ParsePoint(args[0].front()));
  XCQL_ASSIGN_OR_RETURN(auto p2, ParsePoint(args[1].front()));
  double dx = p1.first - p2.first;
  double dy = p1.second - p2.second;
  return SingletonAtomic(Atomic(std::sqrt(dx * dx + dy * dy)));
}

// Triangulation for the paper's radar example (§2): two radars on a
// baseline of length 100 at (0,0) and (100,0); each reports the angle (in
// degrees from the baseline) at which it sees the vehicle. Returns "x y".
Result<Sequence> FnTriangulate(EvalContext&, Args& args) {
  if (args[0].empty() || args[1].empty()) return Sequence{};
  XCQL_ASSIGN_OR_RETURN(double a_deg, ItemToNumber(args[0].front()));
  XCQL_ASSIGN_OR_RETURN(double b_deg, ItemToNumber(args[1].front()));
  constexpr double kBaseline = 100.0;
  constexpr double kPi = 3.14159265358979323846;
  double a = a_deg * kPi / 180.0;
  double b = b_deg * kPi / 180.0;
  double ta = std::tan(a);
  double tb = std::tan(b);
  if (ta + tb == 0) {
    return Status::InvalidArgument("triangulate: degenerate angles");
  }
  double x = kBaseline * tb / (ta + tb);
  double y = x * ta;
  return SingletonAtomic(Atomic(StringPrintf("%.3f %.3f", x, y)));
}

}  // namespace

FunctionRegistry FunctionRegistry::Builtins() {
  FunctionRegistry r;
  r.RegisterNative("count", 1, 1, FnCount);
  r.RegisterNative("sum", 1, 2, FnSum);
  r.RegisterNative("avg", 1, 1, FnAvg);
  r.RegisterNative("max", 1, -1,
                   [](EvalContext&, Args& a) { return FnMaxMin(true, a); });
  r.RegisterNative("min", 1, -1,
                   [](EvalContext&, Args& a) { return FnMaxMin(false, a); });
  r.RegisterNative("not", 1, 1, FnNot);
  r.RegisterNative("boolean", 1, 1, FnBoolean);
  r.RegisterNative("true", 0, 0, [](EvalContext&, Args&) -> Result<Sequence> {
    return SingletonAtomic(Atomic(true));
  });
  r.RegisterNative("false", 0, 0, [](EvalContext&, Args&) -> Result<Sequence> {
    return SingletonAtomic(Atomic(false));
  });
  r.RegisterNative("empty", 1, 1, FnEmpty);
  r.RegisterNative("exists", 1, 1, FnExists);
  r.RegisterNative("name", 1, 1, FnName);
  r.RegisterNative("string", 1, 1, FnString);
  r.RegisterNative("number", 1, 1, FnNumber);
  r.RegisterNative("data", 1, 1, FnData);
  r.RegisterNative("concat", 2, -1, FnConcat);
  r.RegisterNative("string-join", 1, 2, FnStringJoin);
  r.RegisterNative("contains", 2, 2, FnContains);
  r.RegisterNative("starts-with", 2, 2, FnStartsWith);
  r.RegisterNative("ends-with", 2, 2, FnEndsWith);
  r.RegisterNative("substring", 2, 3, FnSubstring);
  r.RegisterNative("string-length", 1, 1, FnStringLength);
  r.RegisterNative("normalize-space", 1, 1, FnNormalizeSpace);
  r.RegisterNative("doc", 1, 1, FnDoc);
  r.RegisterNative("document", 1, 1, FnDoc);  // XMark queries use document()
  r.RegisterNative("current-dateTime", 0, 0, FnCurrentDateTime);
  r.RegisterNative("currentDateTime", 0, 0, FnCurrentDateTime);  // paper §6.1
  r.RegisterNative("dateTime", 1, 1, FnDateTimeCtor);
  r.RegisterNative("xs:dateTime", 1, 1, FnDateTimeCtor);
  r.RegisterNative("duration", 1, 1, FnDurationCtor);
  r.RegisterNative("xs:duration", 1, 1, FnDurationCtor);
  r.RegisterNative("xdt:dayTimeDuration", 1, 1, FnDurationCtor);
  r.RegisterNative("vtFrom", 1, 1, FnVtFrom);
  r.RegisterNative("vtTo", 1, 1, FnVtTo);
  r.RegisterNative("round", 1, 1, [](EvalContext&, Args& a) {
    return FnRoundFloorCeil(0, a);
  });
  r.RegisterNative("floor", 1, 1, [](EvalContext&, Args& a) {
    return FnRoundFloorCeil(1, a);
  });
  r.RegisterNative("ceiling", 1, 1, [](EvalContext&, Args& a) {
    return FnRoundFloorCeil(2, a);
  });
  r.RegisterNative("abs", 1, 1, FnAbs);
  r.RegisterNative("deep-equal", 2, 2, FnDeepEqual);
  r.RegisterNative("serialize", 1, 1, FnSerialize);
  r.RegisterNative("distinct-values", 1, 1, FnDistinctValues);
  r.RegisterNative("reverse", 1, 1, FnReverse);
  r.RegisterNative("subsequence", 2, 3, FnSubsequence);
  r.RegisterNative("index-of", 2, 2, FnIndexOf);
  r.RegisterNative("distance", 2, 2, FnDistance);
  r.RegisterNative("triangulate", 2, 2, FnTriangulate);
  return r;
}

}  // namespace xcql::xq
