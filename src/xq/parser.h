// Recursive-descent parser for the XQuery/XCQL subset.
//
// Grammar (informal, precedence low→high):
//   Program    ::= Prolog Expr
//   Prolog     ::= (("declare"|"define") "function" Name "(" Params ")"
//                   ("as" Type)? "{" Expr "}" ";"?)*
//   Expr       ::= ExprSingle ("," ExprSingle)*
//   ExprSingle ::= Flwor | Quantified | If | OrExpr
//   Flwor      ::= (ForClause | LetClause)+ WhereClause? OrderByClause?
//                  "return" ExprSingle
//   OrExpr     ::= AndExpr ("or" AndExpr)*
//   AndExpr    ::= CmpExpr ("and" CmpExpr)*
//   CmpExpr    ::= RangeExpr (CmpOp RangeExpr)?
//   RangeExpr  ::= AddExpr ("to" AddExpr)?
//   AddExpr    ::= MulExpr (("+"|"-") MulExpr)*
//   MulExpr    ::= UnaryExpr (("*"|"div"|"idiv"|"mod") UnaryExpr)*
//   UnaryExpr  ::= "-"* PathChain
//   PathChain  ::= ("/" | "//")? Postfix (("/"|"//") Step | "?[" … "]"
//                  | "#[" … "]" | "[" Expr "]")*
//   Postfix    ::= Literal | "$"Name | "." | "(" Expr? ")" | Constructor
//                  | FunctionCall | NameStep | "@"Name | "*"
//
// XCQL extensions: `?[t1(,t2)?]` interval projection, `#[v1(,v2)?]` version
// projection, the constants `now`, `start`, `last`, and dateTime/duration
// literals. Direct element constructors are scanned in raw character mode.
#ifndef XCQL_XQ_PARSER_H_
#define XCQL_XQ_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "xq/ast.h"

namespace xcql::xq {

/// \brief Parses a complete query (prolog + body).
Result<Program> ParseQuery(std::string_view src);

/// \brief Parses a single expression (no prolog); convenience for tests.
Result<ExprPtr> ParseExpression(std::string_view src);

}  // namespace xcql::xq

#endif  // XCQL_XQ_PARSER_H_
