#include "xq/ast.h"

namespace xcql::xq {

namespace {

std::vector<ExprPtr> CloneVec(const std::vector<ExprPtr>& v) {
  std::vector<ExprPtr> out;
  out.reserve(v.size());
  for (const auto& e : v) out.push_back(e->Clone());
  return out;
}

std::vector<ContentPart> CloneParts(const std::vector<ContentPart>& v) {
  std::vector<ContentPart> out;
  out.reserve(v.size());
  for (const auto& p : v) out.push_back(p.Clone());
  return out;
}

std::string QuoteString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kOr: return "or";
    case BinOp::kAnd: return "and";
    case BinOp::kGenEq: return "=";
    case BinOp::kGenNe: return "!=";
    case BinOp::kGenLt: return "<";
    case BinOp::kGenLe: return "<=";
    case BinOp::kGenGt: return ">";
    case BinOp::kGenGe: return ">=";
    case BinOp::kValEq: return "eq";
    case BinOp::kValNe: return "ne";
    case BinOp::kValLt: return "lt";
    case BinOp::kValLe: return "le";
    case BinOp::kValGt: return "gt";
    case BinOp::kValGe: return "ge";
    case BinOp::kPlus: return "+";
    case BinOp::kMinus: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "div";
    case BinOp::kIdiv: return "idiv";
    case BinOp::kMod: return "mod";
    case BinOp::kTo: return "to";
    case BinOp::kUnion: return "|";
    case BinOp::kIntersect: return "intersect";
    case BinOp::kExcept: return "except";
    case BinOp::kBefore: return "before";
    case BinOp::kAfter: return "after";
    case BinOp::kMeets: return "meets";
    case BinOp::kOverlaps: return "overlaps";
    case BinOp::kContains: return "contains";
    case BinOp::kDuring: return "during";
  }
  return "?";
}

ExprPtr LiteralExpr::Clone() const {
  return std::make_unique<LiteralExpr>(value);
}

std::string LiteralExpr::ToString() const {
  if (value.is_string()) return QuoteString(value.AsString());
  return value.ToStringValue();
}

ExprPtr VarRefExpr::Clone() const {
  return std::make_unique<VarRefExpr>(name);
}

std::string VarRefExpr::ToString() const { return "$" + name; }

ExprPtr ContextItemExpr::Clone() const {
  return std::make_unique<ContextItemExpr>();
}

std::string ContextItemExpr::ToString() const { return "."; }

ExprPtr SequenceExpr::Clone() const {
  return std::make_unique<SequenceExpr>(CloneVec(items));
}

std::string SequenceExpr::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i]->ToString();
  }
  out += ")";
  return out;
}

FlworClause FlworClause::Clone() const {
  FlworClause c;
  c.kind = kind;
  c.var = var;
  c.pos_var = pos_var;
  if (expr) c.expr = expr->Clone();
  for (const auto& k : keys) {
    c.keys.push_back({k.key->Clone(), k.descending});
  }
  return c;
}

ExprPtr FlworExpr::Clone() const {
  std::vector<FlworClause> cs;
  cs.reserve(clauses.size());
  for (const auto& c : clauses) cs.push_back(c.Clone());
  return std::make_unique<FlworExpr>(std::move(cs), ret->Clone());
}

std::string FlworExpr::ToString() const {
  std::string out;
  for (const auto& c : clauses) {
    switch (c.kind) {
      case FlworClause::Kind::kFor:
        out += "for $";
        out += c.var;
        if (!c.pos_var.empty()) {
          out += " at $";
          out += c.pos_var;
        }
        out += " in ";
        out += c.expr->ToString();
        out += " ";
        break;
      case FlworClause::Kind::kLet:
        out += "let $";
        out += c.var;
        out += " := ";
        out += c.expr->ToString();
        out += " ";
        break;
      case FlworClause::Kind::kWhere:
        out += "where ";
        out += c.expr->ToString();
        out += " ";
        break;
      case FlworClause::Kind::kOrderBy: {
        out += "order by ";
        for (size_t i = 0; i < c.keys.size(); ++i) {
          if (i > 0) out += ", ";
          out += c.keys[i].key->ToString();
          if (c.keys[i].descending) out += " descending";
        }
        out += " ";
        break;
      }
    }
  }
  out += "return ";
  out += ret->ToString();
  return out;
}

ExprPtr QuantifiedExpr::Clone() const {
  std::vector<Binding> bs;
  bs.reserve(bindings.size());
  for (const auto& b : bindings) bs.push_back({b.var, b.expr->Clone()});
  return std::make_unique<QuantifiedExpr>(every, std::move(bs),
                                          satisfies->Clone());
}

std::string QuantifiedExpr::ToString() const {
  std::string out = every ? "every " : "some ";
  for (size_t i = 0; i < bindings.size(); ++i) {
    if (i > 0) out += ", ";
    out += "$";
    out += bindings[i].var;
    out += " in ";
    out += bindings[i].expr->ToString();
  }
  out += " satisfies ";
  out += satisfies->ToString();
  return out;
}

ExprPtr IfExpr::Clone() const {
  return std::make_unique<IfExpr>(cond->Clone(), then_branch->Clone(),
                                  else_branch->Clone());
}

std::string IfExpr::ToString() const {
  std::string out = "if (";
  out += cond->ToString();
  out += ") then ";
  out += then_branch->ToString();
  out += " else ";
  out += else_branch->ToString();
  return out;
}

ExprPtr BinaryExpr::Clone() const {
  return std::make_unique<BinaryExpr>(op, lhs->Clone(), rhs->Clone());
}

std::string BinaryExpr::ToString() const {
  std::string out = "(";
  out += lhs->ToString();
  out += " ";
  out += BinOpName(op);
  out += " ";
  out += rhs->ToString();
  out += ")";
  return out;
}

ExprPtr UnaryExpr::Clone() const {
  return std::make_unique<UnaryExpr>(operand->Clone());
}

std::string UnaryExpr::ToString() const {
  std::string out = "-";
  out += operand->ToString();
  return out;
}

PathStep PathStep::Clone() const {
  PathStep s;
  s.axis = axis;
  s.test = test;
  s.name = name;
  s.predicates = CloneVec(predicates);
  return s;
}

std::string PathStep::ToString() const {
  std::string out = axis == Axis::kDescendant ? "//" : "/";
  if (axis == Axis::kAttribute) out += "@";
  if (axis == Axis::kParent) {
    out += "..";
  } else {
    switch (test) {
      case Test::kName:
        out += name;
        break;
      case Test::kWildcard:
        out += "*";
        break;
      case Test::kText:
        out += "text()";
        break;
      case Test::kNode:
        out += "node()";
        break;
    }
  }
  for (const auto& p : predicates) {
    out += "[";
    out += p->ToString();
    out += "]";
  }
  return out;
}

ExprPtr PathExpr::Clone() const {
  std::vector<PathStep> ss;
  ss.reserve(steps.size());
  for (const auto& s : steps) ss.push_back(s.Clone());
  return std::make_unique<PathExpr>(input ? input->Clone() : nullptr,
                                    std::move(ss));
}

std::string PathExpr::ToString() const {
  std::string out = input ? input->ToString() : "";
  for (const auto& s : steps) out += s.ToString();
  return out;
}

ExprPtr FilterExpr::Clone() const {
  return std::make_unique<FilterExpr>(input->Clone(), CloneVec(predicates));
}

std::string FilterExpr::ToString() const {
  std::string out = input->ToString();
  for (const auto& p : predicates) {
    out += "[";
    out += p->ToString();
    out += "]";
  }
  return out;
}

ExprPtr FunctionCallExpr::Clone() const {
  return std::make_unique<FunctionCallExpr>(name, CloneVec(args));
}

std::string FunctionCallExpr::ToString() const {
  std::string out = name + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i]->ToString();
  }
  out += ")";
  return out;
}

ContentPart ContentPart::Clone() const {
  ContentPart p;
  p.text = text;
  if (expr) p.expr = expr->Clone();
  return p;
}

DirectElementExpr::Attr DirectElementExpr::Attr::Clone() const {
  Attr a;
  a.name = name;
  a.value = CloneParts(value);
  return a;
}

ExprPtr DirectElementExpr::Clone() const {
  std::vector<Attr> as;
  as.reserve(attrs.size());
  for (const auto& a : attrs) as.push_back(a.Clone());
  return std::make_unique<DirectElementExpr>(name, std::move(as),
                                             CloneParts(content));
}

std::string DirectElementExpr::ToString() const {
  std::string out = "<" + name;
  for (const auto& a : attrs) {
    out += " ";
    out += a.name;
    out += "=\"";
    for (const auto& p : a.value) {
      if (p.expr) {
        out += "{";
        out += p.expr->ToString();
        out += "}";
      } else {
        out += p.text;
      }
    }
    out += "\"";
  }
  if (content.empty()) return out + "/>";
  out += ">";
  for (const auto& p : content) {
    if (p.expr) {
      out += "{";
      out += p.expr->ToString();
      out += "}";
    } else {
      out += p.text;
    }
  }
  out += "</";
  out += name;
  out += ">";
  return out;
}

ExprPtr ComputedElementExpr::Clone() const {
  return std::make_unique<ComputedElementExpr>(
      name_expr->Clone(), content ? content->Clone() : nullptr);
}

std::string ComputedElementExpr::ToString() const {
  std::string out = "element {";
  out += name_expr->ToString();
  out += "} {";
  if (content) out += content->ToString();
  out += "}";
  return out;
}

ExprPtr ComputedAttributeExpr::Clone() const {
  return std::make_unique<ComputedAttributeExpr>(
      name_expr->Clone(), content ? content->Clone() : nullptr);
}

std::string ComputedAttributeExpr::ToString() const {
  std::string out = "attribute {";
  out += name_expr->ToString();
  out += "} {";
  if (content) out += content->ToString();
  out += "}";
  return out;
}

ExprPtr IntervalProjExpr::Clone() const {
  return std::make_unique<IntervalProjExpr>(input->Clone(), lo->Clone(),
                                            hi ? hi->Clone() : nullptr);
}

std::string IntervalProjExpr::ToString() const {
  std::string out = input->ToString();
  out += "?[";
  out += lo->ToString();
  if (hi) {
    out += ",";
    out += hi->ToString();
  }
  out += "]";
  return out;
}

ExprPtr VersionProjExpr::Clone() const {
  return std::make_unique<VersionProjExpr>(input->Clone(), lo->Clone(),
                                           hi ? hi->Clone() : nullptr);
}

std::string VersionProjExpr::ToString() const {
  std::string out = input->ToString();
  out += "#[";
  out += lo->ToString();
  if (hi) {
    out += ",";
    out += hi->ToString();
  }
  out += "]";
  return out;
}

}  // namespace xcql::xq
