// Compiled query plans: the translated XQuery/XCQL AST lowered into a flat,
// closed operator pipeline that is built once per prepared query and
// evaluated many times (the continuous-query hot loop re-evaluates a plan on
// every tick). Lowering replaces the interpreter's per-evaluation costs with
// compile-time work:
//
//   - variable references become pre-resolved frame slots (no reverse scan
//     of a name/value vector per lookup),
//   - native function calls carry the resolved registry entry (no map
//     lookup per call, arity checked once at compile time),
//   - path-step name tests carry the interned tag id (no string compare
//     per node),
//   - pure, context-free subexpressions over non-temporal literals are
//     constant-folded into materialized sequences.
//
// Every operator evaluates through the SAME semantic kernels
// (xq/eval_kernels.h) as the tree-walking Evaluator, so the two engines are
// byte-identical by construction; the randomized differential suite
// (tests/xcql_random_equivalence_test.cc) enforces it.
//
// Lowering is total for the supported language except a few constructs that
// would need re-entrant frames or runtime name resolution; for those
// CompileProgram returns a null plan with a reason and the caller falls back
// to the interpreter (always safe — the interpreter is the reference):
//
//   - recursive or forward-referenced user functions (a fixed-slot frame
//     cannot be re-entered while live),
//   - duplicate user-function declarations,
//   - calls to unknown functions or with mismatched arity (the interpreter
//     raises these lazily, only if evaluation reaches the call).
#ifndef XCQL_XQ_PLAN_H_
#define XCQL_XQ_PLAN_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "xq/ast.h"
#include "xq/context.h"
#include "xq/value.h"

namespace xcql::xq {

/// \brief A compiled, immutable query plan. Thread-safe to Execute
/// concurrently: all per-evaluation state (slot frame, focus, recursion
/// depth) lives in a stack-local frame, so one plan instance can be shared
/// across parallel tick workers.
class CompiledPlan {
 public:
  virtual ~CompiledPlan() = default;

  /// \brief Evaluates the plan: binds `bindings` into the external-variable
  /// slots, evaluates prolog variables, then the body. `ctx` must use the
  /// same FunctionRegistry the plan was compiled against (native entries are
  /// resolved at compile time).
  virtual Result<Sequence> Execute(
      EvalContext* ctx,
      const std::map<std::string, Sequence>& bindings) const = 0;

  /// \brief Indented one-op-per-line rendering of the pipeline, for tests
  /// and `explain`-style introspection.
  virtual std::string DebugString() const = 0;

  /// \brief Total number of variable slots in the frame.
  virtual int slot_count() const = 0;

  /// \brief Names of free top-level variables, resolved from Execute's
  /// `bindings` by name (referencing one that is absent raises the
  /// interpreter's "undefined variable" error).
  virtual const std::vector<std::string>& external_names() const = 0;
};

/// \brief Result of lowering: a plan, or null + reason when the program
/// contains a construct the plan layer does not lower (caller falls back to
/// the tree-walking Evaluator).
struct PlanCompileResult {
  std::shared_ptr<const CompiledPlan> plan;
  std::string fallback_reason;
};

/// \brief Lowers a translated program against `registry` (which must
/// outlive the plan; native entries are resolved to stable pointers).
PlanCompileResult CompileProgram(const Program& prog,
                                 const FunctionRegistry& registry);

}  // namespace xcql::xq

#endif  // XCQL_XQ_PLAN_H_
