// Shared evaluation kernels: the semantic core of the XQuery/XCQL subset,
// factored out of the tree-walking Evaluator so the compiled plan layer
// (xq/plan.h) evaluates through EXACTLY the same code paths. Keeping the
// semantics in one place is what makes the compiled-vs-interpreted
// differential tests byte-identical by construction: the two engines differ
// only in dispatch (AST walk vs closed ops), never in meaning.
#ifndef XCQL_XQ_EVAL_KERNELS_H_
#define XCQL_XQ_EVAL_KERNELS_H_

#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "temporal/interval.h"
#include "xq/ast.h"
#include "xq/context.h"
#include "xq/value.h"

namespace xcql::xq {

// Recursion guard shared by evaluator and plan: deep enough for any
// realistic document/query, shallow enough to fail cleanly instead of
// overflowing the stack.
inline constexpr int kEvalMaxDepth = 1200;

// ---- Temporal scalar kernels ----------------------------------------------

/// \brief Resolves the serialized lifespan endpoint "now" (DateTime::End
/// after parsing) to the evaluation clock.
DateTime ResolveNow(const EvalContext& ctx, DateTime t);

/// \brief Parses a vtFrom/vtTo attribute value, resolving "now".
Result<DateTime> ParseVtAttr(const EvalContext& ctx, const std::string& s);

/// \brief Converts an atomic to a dateTime bound for interval projections.
Result<DateTime> AtomicToDateTime(const EvalContext& ctx, const Atomic& a);

/// \brief Converts an atomic to an integer version bound.
Result<int64_t> AtomicToVersion(const Atomic& a);

/// \brief Reads the (vtFrom, vtTo) lifespan attributes of an element, if
/// present.
Result<std::optional<Interval>> ReadLifespanAttrs(const EvalContext& ctx,
                                                  const Node& e);

/// \brief True for <hole> elements (interned-id compare).
bool IsHoleNode(const Node& n);

/// \brief Lifespan of one item for interval relations: elements via
/// vtFrom/vtTo (or their children's span), dateTime atomics as points.
Result<Interval> ItemLifespan(EvalContext& ctx, const Item& item);

// ---- Arena-aware node construction ----------------------------------------

/// \brief Node factories for transient evaluation nodes: arena-backed when
/// ctx.arena is set, plain heap otherwise.
NodePtr NewElement(const EvalContext& ctx, std::string name);
NodePtr NewText(const EvalContext& ctx, std::string text);
NodePtr NewAttribute(const EvalContext& ctx, std::string name,
                     std::string value);

// ---- Operator kernels ------------------------------------------------------

/// \brief Arithmetic (including temporal arithmetic: dateTime ± duration,
/// dateTime − dateTime, duration ops, duration × number) on two atomized
/// singletons.
Result<Sequence> EvalArithmetic(const EvalContext& ctx, BinOp op,
                                const Atomic& a, const Atomic& b);

/// \brief General comparison: existential over the two atomized sequences.
Result<Sequence> GeneralCompare(BinOp op, const Sequence& l,
                                const Sequence& r);

/// \brief Value comparison: empty propagates, singletons required.
Result<Sequence> ValueCompare(BinOp op, const Sequence& l, const Sequence& r);

/// \brief The `to` range operator.
Result<Sequence> RangeSequence(const Sequence& l, const Sequence& r);

/// \brief union/intersect/except by node identity, preserving the left
/// operand's order.
Result<Sequence> NodeSetOp(BinOp op, Sequence l, Sequence r);

/// \brief XCQL interval relations (before/after/meets/overlaps/contains/
/// during): existential over the lifespans of the two sequences.
Result<Sequence> IntervalRelation(EvalContext& ctx, BinOp op,
                                  const Sequence& l, const Sequence& r);

/// \brief Unary minus on a sequence (empty propagates, singleton required).
Result<Sequence> UnaryMinus(Sequence r);

// ---- Path kernels ----------------------------------------------------------

/// \brief Collects one item's matches for a path step (axis + node test,
/// WITHOUT predicates) into `matches`. `name_id` is the interned id of
/// step.name (ignored unless the test needs it); `desc_seen` dedups across
/// the whole input sequence on the descendant axis.
Status CollectAxisMatches(const EvalContext& ctx, const NodePtr& node,
                          const PathStep& step, int name_id,
                          std::unordered_set<const Node*>* desc_seen,
                          Sequence* matches);

/// \brief One predicate decision for the item at 1-based position `pos`:
/// a singleton numeric predicate value selects by position, anything else
/// by effective boolean value.
Result<bool> PredicateAccepts(const Sequence& value, int64_t pos);

// ---- Constructor kernels ---------------------------------------------------

/// \brief Appends evaluated constructor content to `element`: attribute
/// nodes become attributes, nodes are cloned/copied in, atomics accumulate
/// in `pending_text` (space-separated between adjacent atomics).
Status AppendConstructorContent(const EvalContext& ctx, const Sequence& items,
                                Node* element, std::string* pending_text);

// ---- Order-by kernels ------------------------------------------------------

/// \brief A comparable order-by key. Type rank orders heterogeneous keys
/// deterministically: empty < boolean < number < dateTime < duration <
/// string; untyped numeric-looking strings sort numerically.
struct OrderSortKey {
  int rank = 0;
  bool b = false;
  double num = 0;
  int64_t ticks = 0;
  int64_t months = 0;
  std::string str;

  std::weak_ordering Compare(const OrderSortKey& o) const;
};

/// \brief Collapses one evaluated order-by key sequence to its key atomic:
/// the first item atomized, or the empty marker for an empty sequence.
Atomic OrderKeyAtomic(const Sequence& kv);

/// \brief Builds the comparable key from an OrderKeyAtomic result (the
/// empty marker sorts first).
OrderSortKey OrderSortKeyFrom(const Atomic& a);

}  // namespace xcql::xq

#endif  // XCQL_XQ_EVAL_KERNELS_H_
