#include "xq/parser.h"

#include <cctype>

#include "common/string_util.h"
#include "xq/lexer.h"

namespace xcql::xq {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view src) : lex_(src) {}

  Result<Program> ParseProgram() {
    Program prog;
    XCQL_RETURN_NOT_OK(ParseProlog(&prog));
    XCQL_ASSIGN_OR_RETURN(prog.body, ParseExprList());
    if (!AtEof()) {
      return Err("unexpected trailing input '" + Cur().text + "'");
    }
    return prog;
  }

 private:
  const Token& Cur() const { return lex_.cur(); }
  bool AtEof() const { return Cur().kind == TokKind::kEof; }
  bool Is(TokKind k) const { return Cur().kind == k; }
  bool IsKw(std::string_view kw) const {
    return Cur().kind == TokKind::kIdent && Cur().text == kw;
  }

  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " (" + lex_.Where() + ")");
  }

  Status Next() { return lex_.Advance(); }

  Status Expect(TokKind k, const char* what) {
    if (!Is(k)) return Err(std::string("expected ") + what);
    return Next();
  }

  Status ExpectKw(std::string_view kw) {
    if (!IsKw(kw)) return Err("expected '" + std::string(kw) + "'");
    return Next();
  }

  // ---- Prolog ------------------------------------------------------------

  Status ParseProlog(Program* prog) {
    // Optional "xquery version "1.0";"
    if (IsKw("xquery")) {
      XCQL_RETURN_NOT_OK(Next());
      XCQL_RETURN_NOT_OK(ExpectKw("version"));
      if (!Is(TokKind::kString)) return Err("expected version string");
      XCQL_RETURN_NOT_OK(Next());
      if (Is(TokKind::kSemicolon)) XCQL_RETURN_NOT_OK(Next());
    }
    while (IsKw("declare") || IsKw("define")) {
      XCQL_RETURN_NOT_OK(Next());
      if (IsKw("variable")) {
        XCQL_RETURN_NOT_OK(Next());
        XCQL_RETURN_NOT_OK(Expect(TokKind::kDollar, "'$'"));
        if (!Is(TokKind::kIdent)) return Err("expected variable name");
        VariableDecl decl;
        decl.name = Cur().text;
        XCQL_RETURN_NOT_OK(Next());
        XCQL_RETURN_NOT_OK(SkipTypeAnnotation());
        XCQL_RETURN_NOT_OK(Expect(TokKind::kAssign, "':='"));
        XCQL_ASSIGN_OR_RETURN(ExprPtr init, ParseExprSingle());
        if (Is(TokKind::kSemicolon)) XCQL_RETURN_NOT_OK(Next());
        decl.init = std::shared_ptr<Expr>(std::move(init));
        prog->variables.push_back(std::move(decl));
        continue;
      }
      XCQL_RETURN_NOT_OK(ExpectKw("function"));
      if (!Is(TokKind::kIdent)) return Err("expected function name");
      FunctionDecl decl;
      decl.name = Cur().text;
      XCQL_RETURN_NOT_OK(Next());
      XCQL_RETURN_NOT_OK(Expect(TokKind::kLParen, "'('"));
      if (!Is(TokKind::kRParen)) {
        for (;;) {
          XCQL_RETURN_NOT_OK(Expect(TokKind::kDollar, "'$'"));
          if (!Is(TokKind::kIdent)) return Err("expected parameter name");
          decl.params.push_back(Cur().text);
          XCQL_RETURN_NOT_OK(Next());
          XCQL_RETURN_NOT_OK(SkipTypeAnnotation());
          if (Is(TokKind::kComma)) {
            XCQL_RETURN_NOT_OK(Next());
            continue;
          }
          break;
        }
      }
      XCQL_RETURN_NOT_OK(Expect(TokKind::kRParen, "')'"));
      XCQL_RETURN_NOT_OK(SkipTypeAnnotation());
      XCQL_RETURN_NOT_OK(Expect(TokKind::kLBrace, "'{'"));
      XCQL_ASSIGN_OR_RETURN(ExprPtr body, ParseExprList());
      XCQL_RETURN_NOT_OK(Expect(TokKind::kRBrace, "'}'"));
      if (Is(TokKind::kSemicolon)) XCQL_RETURN_NOT_OK(Next());
      decl.body = std::shared_ptr<Expr>(std::move(body));
      prog->functions.push_back(std::move(decl));
    }
    return Status::OK();
  }

  // Parses and discards "as element()*" / "as xs:integer" style annotations.
  Status SkipTypeAnnotation() {
    if (!IsKw("as")) return Status::OK();
    XCQL_RETURN_NOT_OK(Next());
    if (!Is(TokKind::kIdent)) return Err("expected type name after 'as'");
    XCQL_RETURN_NOT_OK(Next());
    if (Is(TokKind::kLParen)) {
      XCQL_RETURN_NOT_OK(Next());
      XCQL_RETURN_NOT_OK(Expect(TokKind::kRParen, "')' in type"));
    }
    if (Is(TokKind::kStar) || Is(TokKind::kPlus) || Is(TokKind::kQuestion)) {
      XCQL_RETURN_NOT_OK(Next());
    }
    return Status::OK();
  }

  // ---- Expressions -------------------------------------------------------

  Result<ExprPtr> ParseExprList() {
    XCQL_ASSIGN_OR_RETURN(ExprPtr first, ParseExprSingle());
    if (!Is(TokKind::kComma)) return first;
    std::vector<ExprPtr> items;
    items.push_back(std::move(first));
    while (Is(TokKind::kComma)) {
      XCQL_RETURN_NOT_OK(Next());
      XCQL_ASSIGN_OR_RETURN(ExprPtr e, ParseExprSingle());
      items.push_back(std::move(e));
    }
    return ExprPtr(std::make_unique<SequenceExpr>(std::move(items)));
  }

  Result<ExprPtr> ParseExprSingle() {
    if (IsKw("for") || IsKw("let")) return ParseFlwor();
    if (IsKw("some") || IsKw("every")) return ParseQuantified();
    if (IsKw("if")) return ParseIf();
    return ParseOr();
  }

  Result<ExprPtr> ParseFlwor() {
    std::vector<FlworClause> clauses;
    for (;;) {
      if (IsKw("for")) {
        XCQL_RETURN_NOT_OK(Next());
        for (;;) {
          FlworClause c;
          c.kind = FlworClause::Kind::kFor;
          XCQL_RETURN_NOT_OK(Expect(TokKind::kDollar, "'$'"));
          if (!Is(TokKind::kIdent)) return Err("expected variable name");
          c.var = Cur().text;
          XCQL_RETURN_NOT_OK(Next());
          if (IsKw("at")) {
            XCQL_RETURN_NOT_OK(Next());
            XCQL_RETURN_NOT_OK(Expect(TokKind::kDollar, "'$'"));
            if (!Is(TokKind::kIdent)) return Err("expected position variable");
            c.pos_var = Cur().text;
            XCQL_RETURN_NOT_OK(Next());
          }
          XCQL_RETURN_NOT_OK(ExpectKw("in"));
          XCQL_ASSIGN_OR_RETURN(c.expr, ParseExprSingle());
          clauses.push_back(std::move(c));
          if (Is(TokKind::kComma)) {
            XCQL_RETURN_NOT_OK(Next());
            continue;
          }
          // Lenient: the paper's examples sometimes omit the comma between
          // successive `for` bindings; a '$' right here can only start one.
          if (Is(TokKind::kDollar)) continue;
          break;
        }
      } else if (IsKw("let")) {
        XCQL_RETURN_NOT_OK(Next());
        for (;;) {
          FlworClause c;
          c.kind = FlworClause::Kind::kLet;
          XCQL_RETURN_NOT_OK(Expect(TokKind::kDollar, "'$'"));
          if (!Is(TokKind::kIdent)) return Err("expected variable name");
          c.var = Cur().text;
          XCQL_RETURN_NOT_OK(Next());
          XCQL_RETURN_NOT_OK(Expect(TokKind::kAssign, "':='"));
          XCQL_ASSIGN_OR_RETURN(c.expr, ParseExprSingle());
          clauses.push_back(std::move(c));
          if (Is(TokKind::kComma)) {
            XCQL_RETURN_NOT_OK(Next());
            continue;
          }
          break;
        }
      } else {
        break;
      }
    }
    if (clauses.empty()) return Err("expected 'for' or 'let'");
    if (IsKw("where")) {
      FlworClause c;
      c.kind = FlworClause::Kind::kWhere;
      XCQL_RETURN_NOT_OK(Next());
      XCQL_ASSIGN_OR_RETURN(c.expr, ParseExprSingle());
      clauses.push_back(std::move(c));
    }
    if (IsKw("stable")) XCQL_RETURN_NOT_OK(Next());
    if (IsKw("order")) {
      XCQL_RETURN_NOT_OK(Next());
      XCQL_RETURN_NOT_OK(ExpectKw("by"));
      FlworClause c;
      c.kind = FlworClause::Kind::kOrderBy;
      for (;;) {
        FlworClause::OrderKey k;
        XCQL_ASSIGN_OR_RETURN(k.key, ParseExprSingle());
        if (IsKw("ascending")) {
          XCQL_RETURN_NOT_OK(Next());
        } else if (IsKw("descending")) {
          k.descending = true;
          XCQL_RETURN_NOT_OK(Next());
        }
        c.keys.push_back(std::move(k));
        if (Is(TokKind::kComma)) {
          XCQL_RETURN_NOT_OK(Next());
          continue;
        }
        break;
      }
      clauses.push_back(std::move(c));
    }
    XCQL_RETURN_NOT_OK(ExpectKw("return"));
    XCQL_ASSIGN_OR_RETURN(ExprPtr ret, ParseExprSingle());
    return ExprPtr(
        std::make_unique<FlworExpr>(std::move(clauses), std::move(ret)));
  }

  Result<ExprPtr> ParseQuantified() {
    bool every = IsKw("every");
    XCQL_RETURN_NOT_OK(Next());
    std::vector<QuantifiedExpr::Binding> bindings;
    for (;;) {
      QuantifiedExpr::Binding b;
      XCQL_RETURN_NOT_OK(Expect(TokKind::kDollar, "'$'"));
      if (!Is(TokKind::kIdent)) return Err("expected variable name");
      b.var = Cur().text;
      XCQL_RETURN_NOT_OK(Next());
      XCQL_RETURN_NOT_OK(ExpectKw("in"));
      XCQL_ASSIGN_OR_RETURN(b.expr, ParseExprSingle());
      bindings.push_back(std::move(b));
      if (Is(TokKind::kComma)) {
        XCQL_RETURN_NOT_OK(Next());
        continue;
      }
      break;
    }
    XCQL_RETURN_NOT_OK(ExpectKw("satisfies"));
    XCQL_ASSIGN_OR_RETURN(ExprPtr sat, ParseExprSingle());
    return ExprPtr(std::make_unique<QuantifiedExpr>(every, std::move(bindings),
                                                    std::move(sat)));
  }

  Result<ExprPtr> ParseIf() {
    XCQL_RETURN_NOT_OK(Next());  // 'if'
    XCQL_RETURN_NOT_OK(Expect(TokKind::kLParen, "'(' after if"));
    XCQL_ASSIGN_OR_RETURN(ExprPtr cond, ParseExprList());
    XCQL_RETURN_NOT_OK(Expect(TokKind::kRParen, "')'"));
    XCQL_RETURN_NOT_OK(ExpectKw("then"));
    XCQL_ASSIGN_OR_RETURN(ExprPtr then_b, ParseExprSingle());
    XCQL_RETURN_NOT_OK(ExpectKw("else"));
    XCQL_ASSIGN_OR_RETURN(ExprPtr else_b, ParseExprSingle());
    return ExprPtr(std::make_unique<IfExpr>(std::move(cond), std::move(then_b),
                                            std::move(else_b)));
  }

  Result<ExprPtr> ParseOr() {
    XCQL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (IsKw("or")) {
      XCQL_RETURN_NOT_OK(Next());
      XCQL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = std::make_unique<BinaryExpr>(BinOp::kOr, std::move(lhs),
                                         std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    XCQL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseComparison());
    while (IsKw("and")) {
      XCQL_RETURN_NOT_OK(Next());
      XCQL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseComparison());
      lhs = std::make_unique<BinaryExpr>(BinOp::kAnd, std::move(lhs),
                                         std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseComparison() {
    XCQL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseRange());
    BinOp op;
    if (Is(TokKind::kEq)) {
      op = BinOp::kGenEq;
    } else if (Is(TokKind::kNe)) {
      op = BinOp::kGenNe;
    } else if (Is(TokKind::kLt)) {
      op = BinOp::kGenLt;
    } else if (Is(TokKind::kLe)) {
      op = BinOp::kGenLe;
    } else if (Is(TokKind::kGt)) {
      op = BinOp::kGenGt;
    } else if (Is(TokKind::kGe)) {
      op = BinOp::kGenGe;
    } else if (IsKw("eq")) {
      op = BinOp::kValEq;
    } else if (IsKw("ne")) {
      op = BinOp::kValNe;
    } else if (IsKw("lt")) {
      op = BinOp::kValLt;
    } else if (IsKw("le")) {
      op = BinOp::kValLe;
    } else if (IsKw("gt")) {
      op = BinOp::kValGt;
    } else if (IsKw("ge")) {
      op = BinOp::kValGe;
    } else if (IsKw("before")) {
      op = BinOp::kBefore;
    } else if (IsKw("after")) {
      op = BinOp::kAfter;
    } else if (IsKw("meets")) {
      op = BinOp::kMeets;
    } else if (IsKw("overlaps")) {
      op = BinOp::kOverlaps;
    } else if (IsKw("contains")) {
      op = BinOp::kContains;
    } else if (IsKw("during")) {
      op = BinOp::kDuring;
    } else {
      return lhs;
    }
    XCQL_RETURN_NOT_OK(Next());
    XCQL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseRange());
    return ExprPtr(
        std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs)));
  }

  Result<ExprPtr> ParseRange() {
    XCQL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    if (IsKw("to")) {
      XCQL_RETURN_NOT_OK(Next());
      XCQL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      return ExprPtr(std::make_unique<BinaryExpr>(BinOp::kTo, std::move(lhs),
                                                  std::move(rhs)));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    XCQL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    for (;;) {
      BinOp op;
      if (Is(TokKind::kPlus)) {
        op = BinOp::kPlus;
      } else if (Is(TokKind::kMinus)) {
        op = BinOp::kMinus;
      } else {
        return lhs;
      }
      XCQL_RETURN_NOT_OK(Next());
      XCQL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    XCQL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnion());
    for (;;) {
      BinOp op;
      if (Is(TokKind::kStar)) {
        op = BinOp::kMul;
      } else if (IsKw("div")) {
        op = BinOp::kDiv;
      } else if (IsKw("idiv")) {
        op = BinOp::kIdiv;
      } else if (IsKw("mod")) {
        op = BinOp::kMod;
      } else {
        return lhs;
      }
      XCQL_RETURN_NOT_OK(Next());
      XCQL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnion());
      lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprPtr> ParseUnion() {
    XCQL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    for (;;) {
      BinOp op;
      if (Is(TokKind::kPipe) || IsKw("union")) {
        op = BinOp::kUnion;
      } else if (IsKw("intersect")) {
        op = BinOp::kIntersect;
      } else if (IsKw("except")) {
        op = BinOp::kExcept;
      } else {
        return lhs;
      }
      XCQL_RETURN_NOT_OK(Next());
      XCQL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (Is(TokKind::kMinus)) {
      XCQL_RETURN_NOT_OK(Next());
      XCQL_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      return ExprPtr(std::make_unique<UnaryExpr>(std::move(e)));
    }
    if (Is(TokKind::kPlus)) {
      XCQL_RETURN_NOT_OK(Next());
      return ParseUnary();
    }
    return ParsePathChain();
  }

  // ---- Paths, predicates and projections ----------------------------------

  // Parses one step after '/' or '//' and appends it to *steps.
  Status ParseStepInto(bool descendant, std::vector<PathStep>* steps) {
    PathStep step;
    step.axis =
        descendant ? PathStep::Axis::kDescendant : PathStep::Axis::kChild;
    if (Is(TokKind::kAt)) {
      XCQL_RETURN_NOT_OK(Next());
      step.axis = PathStep::Axis::kAttribute;
      if (Is(TokKind::kStar)) {
        step.test = PathStep::Test::kWildcard;
        XCQL_RETURN_NOT_OK(Next());
      } else if (Is(TokKind::kIdent)) {
        step.test = PathStep::Test::kName;
        step.name = Cur().text;
        XCQL_RETURN_NOT_OK(Next());
      } else {
        return Err("expected attribute name after '@'");
      }
    } else if (Is(TokKind::kStar)) {
      step.test = PathStep::Test::kWildcard;
      XCQL_RETURN_NOT_OK(Next());
    } else if (Is(TokKind::kDotDot)) {
      step.axis = PathStep::Axis::kParent;
      step.test = PathStep::Test::kNode;
      XCQL_RETURN_NOT_OK(Next());
    } else if (Is(TokKind::kIdent)) {
      std::string name = Cur().text;
      XCQL_RETURN_NOT_OK(Next());
      if ((name == "text" || name == "node") && Is(TokKind::kLParen)) {
        XCQL_RETURN_NOT_OK(Next());
        XCQL_RETURN_NOT_OK(Expect(TokKind::kRParen, "')'"));
        step.test =
            name == "text" ? PathStep::Test::kText : PathStep::Test::kNode;
      } else {
        step.test = PathStep::Test::kName;
        step.name = std::move(name);
      }
    } else {
      return Err("expected path step");
    }
    // Predicates bind to the step.
    while (Is(TokKind::kLBracket)) {
      XCQL_RETURN_NOT_OK(Next());
      XCQL_ASSIGN_OR_RETURN(ExprPtr p, ParseExprList());
      XCQL_RETURN_NOT_OK(Expect(TokKind::kRBracket, "']'"));
      step.predicates.push_back(std::move(p));
    }
    steps->push_back(std::move(step));
    return Status::OK();
  }

  // Parses "[lo]" or "[lo, hi]" after '?' / '#'.
  Status ParseProjectionBounds(ExprPtr* lo, ExprPtr* hi) {
    XCQL_RETURN_NOT_OK(Expect(TokKind::kLBracket, "'[' after projection"));
    XCQL_ASSIGN_OR_RETURN(*lo, ParseExprSingle());
    if (Is(TokKind::kComma)) {
      XCQL_RETURN_NOT_OK(Next());
      XCQL_ASSIGN_OR_RETURN(*hi, ParseExprSingle());
    } else {
      *hi = nullptr;
    }
    return Expect(TokKind::kRBracket, "']'");
  }

  Result<ExprPtr> ParsePathChain() {
    ExprPtr e;
    bool open_path = false;  // e is a PathExpr still accepting steps

    if (Is(TokKind::kSlash) || Is(TokKind::kSlashSlash)) {
      // Absolute path: rooted at the context item's document root.
      bool desc = Is(TokKind::kSlashSlash);
      XCQL_RETURN_NOT_OK(Next());
      std::vector<PathStep> steps;
      XCQL_RETURN_NOT_OK(ParseStepInto(desc, &steps));
      e = std::make_unique<PathExpr>(nullptr, std::move(steps));
      open_path = true;
    } else {
      XCQL_ASSIGN_OR_RETURN(e, ParsePostfixPrimary(&open_path));
    }

    for (;;) {
      if (Is(TokKind::kSlash) || Is(TokKind::kSlashSlash)) {
        bool desc = Is(TokKind::kSlashSlash);
        XCQL_RETURN_NOT_OK(Next());
        if (open_path) {
          auto* pe = static_cast<PathExpr*>(e.get());
          XCQL_RETURN_NOT_OK(ParseStepInto(desc, &pe->steps));
        } else {
          std::vector<PathStep> steps;
          XCQL_RETURN_NOT_OK(ParseStepInto(desc, &steps));
          e = std::make_unique<PathExpr>(std::move(e), std::move(steps));
          open_path = true;
        }
      } else if (Is(TokKind::kQuestion)) {
        XCQL_RETURN_NOT_OK(Next());
        ExprPtr lo, hi;
        XCQL_RETURN_NOT_OK(ParseProjectionBounds(&lo, &hi));
        e = std::make_unique<IntervalProjExpr>(std::move(e), std::move(lo),
                                               std::move(hi));
        open_path = false;
      } else if (Is(TokKind::kHash)) {
        XCQL_RETURN_NOT_OK(Next());
        ExprPtr lo, hi;
        XCQL_RETURN_NOT_OK(ParseProjectionBounds(&lo, &hi));
        e = std::make_unique<VersionProjExpr>(std::move(e), std::move(lo),
                                              std::move(hi));
        open_path = false;
      } else if (Is(TokKind::kLBracket)) {
        // Predicate on a non-step expression (or after a projection).
        XCQL_RETURN_NOT_OK(Next());
        XCQL_ASSIGN_OR_RETURN(ExprPtr p, ParseExprList());
        XCQL_RETURN_NOT_OK(Expect(TokKind::kRBracket, "']'"));
        std::vector<ExprPtr> preds;
        preds.push_back(std::move(p));
        e = std::make_unique<FilterExpr>(std::move(e), std::move(preds));
        open_path = false;
      } else {
        return e;
      }
    }
  }

  // Primary expressions. Sets *open_path when the result is a PathExpr that
  // later '/' steps should extend in place (a bare name step).
  Result<ExprPtr> ParsePostfixPrimary(bool* open_path) {
    *open_path = false;
    switch (Cur().kind) {
      case TokKind::kInt: {
        auto e = std::make_unique<LiteralExpr>(Atomic(Cur().int_val));
        XCQL_RETURN_NOT_OK(Next());
        return ExprPtr(std::move(e));
      }
      case TokKind::kDouble: {
        auto e = std::make_unique<LiteralExpr>(Atomic(Cur().dbl_val));
        XCQL_RETURN_NOT_OK(Next());
        return ExprPtr(std::move(e));
      }
      case TokKind::kString: {
        auto e = std::make_unique<LiteralExpr>(Atomic(Cur().text));
        XCQL_RETURN_NOT_OK(Next());
        return ExprPtr(std::move(e));
      }
      case TokKind::kDateTime: {
        auto e = std::make_unique<LiteralExpr>(Atomic(Cur().dt_val));
        XCQL_RETURN_NOT_OK(Next());
        return ExprPtr(std::move(e));
      }
      case TokKind::kDuration: {
        auto e = std::make_unique<LiteralExpr>(Atomic(Cur().dur_val));
        XCQL_RETURN_NOT_OK(Next());
        return ExprPtr(std::move(e));
      }
      case TokKind::kDollar: {
        XCQL_RETURN_NOT_OK(Next());
        if (!Is(TokKind::kIdent)) return Err("expected variable name");
        auto e = std::make_unique<VarRefExpr>(Cur().text);
        XCQL_RETURN_NOT_OK(Next());
        return ExprPtr(std::move(e));
      }
      case TokKind::kDot: {
        XCQL_RETURN_NOT_OK(Next());
        return ExprPtr(std::make_unique<ContextItemExpr>());
      }
      case TokKind::kLParen: {
        XCQL_RETURN_NOT_OK(Next());
        if (Is(TokKind::kRParen)) {
          XCQL_RETURN_NOT_OK(Next());
          return ExprPtr(
              std::make_unique<SequenceExpr>(std::vector<ExprPtr>{}));
        }
        XCQL_ASSIGN_OR_RETURN(ExprPtr e, ParseExprList());
        XCQL_RETURN_NOT_OK(Expect(TokKind::kRParen, "')'"));
        return e;
      }
      case TokKind::kLt:
        return ParseDirectConstructor();
      case TokKind::kAt: {
        // Attribute step on the context item: @id.
        std::vector<PathStep> steps;
        XCQL_RETURN_NOT_OK(ParseStepInto(false, &steps));
        // ParseStepInto consumed '@name' (no leading slash at primary).
        *open_path = true;
        return ExprPtr(std::make_unique<PathExpr>(
            std::make_unique<ContextItemExpr>(), std::move(steps)));
      }
      case TokKind::kStar: {
        XCQL_RETURN_NOT_OK(Next());
        std::vector<PathStep> steps;
        PathStep s;
        s.test = PathStep::Test::kWildcard;
        steps.push_back(std::move(s));
        *open_path = true;
        return ExprPtr(std::make_unique<PathExpr>(
            std::make_unique<ContextItemExpr>(), std::move(steps)));
      }
      case TokKind::kIdent:
        return ParseIdentPrimary(open_path);
      default:
        return Err("unexpected token '" + Cur().text + "'");
    }
  }

  Result<ExprPtr> ParseIdentPrimary(bool* open_path) {
    std::string name = Cur().text;

    // XCQL temporal constants.
    if (name == "now" || name == "start" || name == "last") {
      // `last` followed by '(' is the XPath last() function instead.
      XCQL_RETURN_NOT_OK(Next());
      if (Is(TokKind::kLParen) && name == "last") {
        XCQL_RETURN_NOT_OK(Next());
        XCQL_RETURN_NOT_OK(Expect(TokKind::kRParen, "')'"));
        return ExprPtr(std::make_unique<FunctionCallExpr>(
            "last", std::vector<ExprPtr>{}));
      }
      return ExprPtr(std::make_unique<FunctionCallExpr>(
          "xcql:" + name, std::vector<ExprPtr>{}));
    }

    if (name == "element" || name == "attribute") {
      // Could be a computed constructor: element Name {…} or element {…} {…}.
      // Distinguish from a bare path step named "element" by lookahead.
      XCQL_RETURN_NOT_OK(Next());
      if (Is(TokKind::kLBrace) ||
          (Is(TokKind::kIdent) && CanStartConstructorBody())) {
        return ParseComputedConstructor(name == "element");
      }
      // Not a constructor: fall through to a path step named `name`.
      return MakeNameStepOrCall(std::move(name), open_path,
                                /*already_advanced=*/true);
    }

    XCQL_RETURN_NOT_OK(Next());
    return MakeNameStepOrCall(std::move(name), open_path,
                              /*already_advanced=*/true);
  }

  // After `element` / `attribute` we saw an IDENT; it is a constructor body
  // only if the token after the name is '{'. Peeking requires no extra
  // machinery: the caller re-parses via MakeNameStepOrCall otherwise, and an
  // IDENT directly followed by '{' cannot occur elsewhere in the grammar.
  bool CanStartConstructorBody() {
    // Conservative single-token lookahead using the raw source: find the
    // first non-space character after the current identifier token.
    std::string_view src = lex_.source();
    size_t i = Cur().end;
    while (i < src.size() &&
           std::isspace(static_cast<unsigned char>(src[i]))) {
      ++i;
    }
    return i < src.size() && src[i] == '{';
  }

  Result<ExprPtr> ParseComputedConstructor(bool is_element) {
    ExprPtr name_expr;
    if (Is(TokKind::kIdent)) {
      name_expr = std::make_unique<LiteralExpr>(Atomic(Cur().text));
      XCQL_RETURN_NOT_OK(Next());
    } else {
      XCQL_RETURN_NOT_OK(Expect(TokKind::kLBrace, "'{'"));
      XCQL_ASSIGN_OR_RETURN(name_expr, ParseExprList());
      XCQL_RETURN_NOT_OK(Expect(TokKind::kRBrace, "'}'"));
    }
    XCQL_RETURN_NOT_OK(Expect(TokKind::kLBrace, "'{' for constructor body"));
    ExprPtr content;
    if (!Is(TokKind::kRBrace)) {
      XCQL_ASSIGN_OR_RETURN(content, ParseExprList());
    }
    XCQL_RETURN_NOT_OK(Expect(TokKind::kRBrace, "'}'"));
    if (is_element) {
      return ExprPtr(std::make_unique<ComputedElementExpr>(
          std::move(name_expr), std::move(content)));
    }
    return ExprPtr(std::make_unique<ComputedAttributeExpr>(
        std::move(name_expr), std::move(content)));
  }

  // `name` was consumed. Either a function call (name '(' …) or a child
  // step on the context item.
  Result<ExprPtr> MakeNameStepOrCall(std::string name, bool* open_path,
                                     bool already_advanced) {
    (void)already_advanced;
    if (Is(TokKind::kLParen)) {
      XCQL_RETURN_NOT_OK(Next());
      std::vector<ExprPtr> args;
      if (!Is(TokKind::kRParen)) {
        for (;;) {
          XCQL_ASSIGN_OR_RETURN(ExprPtr a, ParseExprSingle());
          args.push_back(std::move(a));
          if (Is(TokKind::kComma)) {
            XCQL_RETURN_NOT_OK(Next());
            continue;
          }
          break;
        }
      }
      XCQL_RETURN_NOT_OK(Expect(TokKind::kRParen, "')'"));
      return ExprPtr(
          std::make_unique<FunctionCallExpr>(std::move(name), std::move(args)));
    }
    // Bare name: a child step on the context item.
    std::vector<PathStep> steps;
    PathStep s;
    s.test = PathStep::Test::kName;
    s.name = std::move(name);
    while (Is(TokKind::kLBracket)) {
      XCQL_RETURN_NOT_OK(Next());
      XCQL_ASSIGN_OR_RETURN(ExprPtr p, ParseExprList());
      XCQL_RETURN_NOT_OK(Expect(TokKind::kRBracket, "']'"));
      s.predicates.push_back(std::move(p));
    }
    steps.push_back(std::move(s));
    *open_path = true;
    return ExprPtr(std::make_unique<PathExpr>(
        std::make_unique<ContextItemExpr>(), std::move(steps)));
  }

  // ---- Direct element constructors (raw character scanning) ---------------

  Result<ExprPtr> ParseDirectConstructor() {
    size_t p = Cur().begin;  // offset of '<'
    XCQL_ASSIGN_OR_RETURN(ExprPtr e, ScanElement(&p));
    XCQL_RETURN_NOT_OK(lex_.ResetTo(p));
    return e;
  }

  Status RawErr(size_t p, const std::string& msg) const {
    return Status::ParseError(msg +
                              StringPrintf(" (constructor at offset %zu)", p));
  }

  void SkipRawWs(size_t* p) const {
    std::string_view s = lex_.source();
    while (*p < s.size() && std::isspace(static_cast<unsigned char>(s[*p]))) {
      ++*p;
    }
  }

  Result<std::string> ScanRawName(size_t* p) const {
    std::string_view s = lex_.source();
    size_t start = *p;
    if (start >= s.size() ||
        (!std::isalpha(static_cast<unsigned char>(s[start])) &&
         s[start] != '_')) {
      return RawErr(*p, "expected element name");
    }
    size_t i = start;
    while (i < s.size() &&
           (std::isalnum(static_cast<unsigned char>(s[i])) || s[i] == '_' ||
            s[i] == '-' || s[i] == '.' || s[i] == ':')) {
      ++i;
    }
    *p = i;
    return std::string(s.substr(start, i - start));
  }

  // Parses "{expr}" starting at offset *p (which points at '{'); on return
  // *p is positioned after the matching '}'.
  Result<ExprPtr> ScanEnclosedExpr(size_t* p) {
    XCQL_RETURN_NOT_OK(lex_.ResetTo(*p));
    XCQL_RETURN_NOT_OK(Expect(TokKind::kLBrace, "'{'"));
    XCQL_ASSIGN_OR_RETURN(ExprPtr e, ParseExprList());
    if (!Is(TokKind::kRBrace)) return Err("expected '}' in constructor");
    *p = Cur().end;
    return e;
  }

  Result<ExprPtr> ScanElement(size_t* p) {
    std::string_view s = lex_.source();
    if (*p >= s.size() || s[*p] != '<') return RawErr(*p, "expected '<'");
    ++*p;
    XCQL_ASSIGN_OR_RETURN(std::string name, ScanRawName(p));
    std::vector<DirectElementExpr::Attr> attrs;
    for (;;) {
      SkipRawWs(p);
      if (*p >= s.size()) return RawErr(*p, "unterminated start tag");
      if (s[*p] == '>' || s[*p] == '/') break;
      DirectElementExpr::Attr attr;
      XCQL_ASSIGN_OR_RETURN(attr.name, ScanRawName(p));
      SkipRawWs(p);
      if (*p >= s.size() || s[*p] != '=') {
        return RawErr(*p, "expected '=' after attribute name");
      }
      ++*p;
      SkipRawWs(p);
      if (*p < s.size() && s[*p] == '{') {
        // Unquoted enclosed expression: id={$a/@id} (paper's style).
        ContentPart part;
        XCQL_ASSIGN_OR_RETURN(part.expr, ScanEnclosedExpr(p));
        attr.value.push_back(std::move(part));
      } else if (*p < s.size() && (s[*p] == '"' || s[*p] == '\'')) {
        char quote = s[*p];
        ++*p;
        std::string text;
        auto flush = [&]() {
          if (!text.empty()) {
            ContentPart part;
            part.text = std::move(text);
            text.clear();
            attr.value.push_back(std::move(part));
          }
        };
        for (;;) {
          if (*p >= s.size()) return RawErr(*p, "unterminated attribute value");
          char c = s[*p];
          if (c == quote) {
            ++*p;
            break;
          }
          if (c == '{') {
            if (*p + 1 < s.size() && s[*p + 1] == '{') {
              text.push_back('{');
              *p += 2;
              continue;
            }
            flush();
            ContentPart part;
            XCQL_ASSIGN_OR_RETURN(part.expr, ScanEnclosedExpr(p));
            attr.value.push_back(std::move(part));
            continue;
          }
          if (c == '}' && *p + 1 < s.size() && s[*p + 1] == '}') {
            text.push_back('}');
            *p += 2;
            continue;
          }
          text.push_back(c);
          ++*p;
        }
        flush();
      } else {
        return RawErr(*p, "expected attribute value");
      }
      attrs.push_back(std::move(attr));
    }
    if (s[*p] == '/') {
      if (*p + 1 >= s.size() || s[*p + 1] != '>') {
        return RawErr(*p, "expected '/>'");
      }
      *p += 2;
      return ExprPtr(std::make_unique<DirectElementExpr>(
          std::move(name), std::move(attrs), std::vector<ContentPart>{}));
    }
    ++*p;  // '>'
    // Content.
    std::vector<ContentPart> content;
    std::string text;
    auto flush_text = [&](bool keep_ws_only) {
      if (text.empty()) return;
      bool ws_only = true;
      for (char c : text) {
        if (!std::isspace(static_cast<unsigned char>(c))) {
          ws_only = false;
          break;
        }
      }
      // Boundary whitespace is stripped (XQuery default boundary-space).
      if (!ws_only || keep_ws_only) {
        ContentPart part;
        part.text = std::move(text);
        content.push_back(std::move(part));
      }
      text.clear();
    };
    for (;;) {
      if (*p >= s.size()) return RawErr(*p, "unterminated element content");
      char c = s[*p];
      if (c == '<') {
        if (*p + 1 < s.size() && s[*p + 1] == '/') {
          flush_text(false);
          *p += 2;
          XCQL_ASSIGN_OR_RETURN(std::string ename, ScanRawName(p));
          if (ename != name) {
            return RawErr(*p, "mismatched end tag </" + ename + ">");
          }
          SkipRawWs(p);
          if (*p >= s.size() || s[*p] != '>') {
            return RawErr(*p, "expected '>' in end tag");
          }
          ++*p;
          return ExprPtr(std::make_unique<DirectElementExpr>(
              std::move(name), std::move(attrs), std::move(content)));
        }
        if (*p + 3 < s.size() && s.substr(*p, 4) == "<!--") {
          size_t end = s.find("-->", *p);
          if (end == std::string_view::npos) {
            return RawErr(*p, "unterminated comment");
          }
          *p = end + 3;
          continue;
        }
        flush_text(false);
        ContentPart part;
        XCQL_ASSIGN_OR_RETURN(part.expr, ScanElement(p));
        content.push_back(std::move(part));
        continue;
      }
      if (c == '{') {
        if (*p + 1 < s.size() && s[*p + 1] == '{') {
          text.push_back('{');
          *p += 2;
          continue;
        }
        flush_text(false);
        ContentPart part;
        XCQL_ASSIGN_OR_RETURN(part.expr, ScanEnclosedExpr(p));
        content.push_back(std::move(part));
        continue;
      }
      if (c == '}' && *p + 1 < s.size() && s[*p + 1] == '}') {
        text.push_back('}');
        *p += 2;
        continue;
      }
      text.push_back(c);
      ++*p;
    }
  }

 public:
  Result<ExprPtr> ParseSingleExpression() {
    XCQL_ASSIGN_OR_RETURN(ExprPtr e, ParseExprList());
    if (!AtEof()) {
      return Err("unexpected trailing input '" + Cur().text + "'");
    }
    return e;
  }

 private:
  Lexer lex_;
};

}  // namespace

Result<Program> ParseQuery(std::string_view src) {
  Parser p(src);
  return p.ParseProgram();
}

Result<ExprPtr> ParseExpression(std::string_view src) {
  Parser p(src);
  return p.ParseSingleExpression();
}

}  // namespace xcql::xq
