#include "xq/plan.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/interner.h"
#include "common/string_util.h"
#include "xq/eval.h"
#include "xq/eval_kernels.h"

namespace xcql::xq {

namespace {

class PlanImpl;

// Per-evaluation state: the slot frame, the focus, and the recursion guard.
// Stack-local to Execute, so one immutable plan can evaluate concurrently.
struct PlanCtx {
  EvalContext* ctx = nullptr;
  const PlanImpl* plan = nullptr;
  std::vector<Sequence> slots;
  std::vector<char> bound;  // external slots start unbound

  struct Focus {
    bool has = false;
    Item item;
    int64_t pos = 0;
    int64_t size = 0;
  } focus;

  int64_t version_last = -1;  // value of `last` inside #[…] bounds
  int depth = 0;
};

class PlanOp {
 public:
  virtual ~PlanOp() = default;
  virtual Result<Sequence> Eval(PlanCtx& pc) const = 0;
  virtual void Describe(std::string* out, int indent) const = 0;
};

using PlanOpPtr = std::unique_ptr<PlanOp>;

Result<Sequence> EvalChild(const PlanOp& op, PlanCtx& pc) {
  if (++pc.depth > kEvalMaxDepth) {
    --pc.depth;
    return Status::Internal("expression evaluation recursion too deep");
  }
  struct DepthGuard {
    int* d;
    ~DepthGuard() { --*d; }
  } guard{&pc.depth};
  return op.Eval(pc);
}

void Line(std::string* out, int indent, const std::string& text) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append(text);
  out->push_back('\n');
}

// ---- Leaf ops --------------------------------------------------------------

class ConstOp : public PlanOp {
 public:
  explicit ConstOp(Sequence v) : value_(std::move(v)) {}
  Result<Sequence> Eval(PlanCtx&) const override { return value_; }
  void Describe(std::string* out, int indent) const override {
    Line(out, indent, "const (" + SequenceToString(value_) + ")");
  }
  const Sequence& value() const { return value_; }

 private:
  Sequence value_;
};

class LocalVarOp : public PlanOp {
 public:
  LocalVarOp(int slot, std::string name) : slot_(slot), name_(std::move(name)) {}
  Result<Sequence> Eval(PlanCtx& pc) const override {
    return pc.slots[static_cast<size_t>(slot_)];
  }
  void Describe(std::string* out, int indent) const override {
    Line(out, indent, "var $" + name_ + " slot=" + std::to_string(slot_));
  }

 private:
  int slot_;
  std::string name_;
};

class ExternalVarOp : public PlanOp {
 public:
  ExternalVarOp(int slot, std::string name)
      : slot_(slot), name_(std::move(name)) {}
  Result<Sequence> Eval(PlanCtx& pc) const override {
    if (!pc.bound[static_cast<size_t>(slot_)]) {
      return Status::NotFound("undefined variable $" + name_);
    }
    return pc.slots[static_cast<size_t>(slot_)];
  }
  void Describe(std::string* out, int indent) const override {
    Line(out, indent,
         "extern $" + name_ + " slot=" + std::to_string(slot_));
  }

 private:
  int slot_;
  std::string name_;
};

// A free variable inside a function body: the interpreter's function scope
// sees only parameters, so referencing it is always an error — but only when
// evaluation actually reaches the reference.
class UndefinedVarOp : public PlanOp {
 public:
  explicit UndefinedVarOp(std::string name) : name_(std::move(name)) {}
  Result<Sequence> Eval(PlanCtx&) const override {
    return Status::NotFound("undefined variable $" + name_);
  }
  void Describe(std::string* out, int indent) const override {
    Line(out, indent, "undefined-var $" + name_);
  }

 private:
  std::string name_;
};

class ContextItemOp : public PlanOp {
 public:
  Result<Sequence> Eval(PlanCtx& pc) const override {
    if (!pc.focus.has) {
      return Status::TypeError("context item is undefined here");
    }
    Sequence s;
    s.push_back(pc.focus.item);
    return s;
  }
  void Describe(std::string* out, int indent) const override {
    Line(out, indent, "context-item");
  }
};

class PositionOp : public PlanOp {
 public:
  Result<Sequence> Eval(PlanCtx& pc) const override {
    if (!pc.focus.has) return Status::TypeError("position() without focus");
    return SingletonAtomic(Atomic(pc.focus.pos));
  }
  void Describe(std::string* out, int indent) const override {
    Line(out, indent, "position()");
  }
};

class LastOp : public PlanOp {
 public:
  Result<Sequence> Eval(PlanCtx& pc) const override {
    if (!pc.focus.has) return Status::TypeError("last() without focus");
    return SingletonAtomic(Atomic(pc.focus.size));
  }
  void Describe(std::string* out, int indent) const override {
    Line(out, indent, "last()");
  }
};

class NowOp : public PlanOp {
 public:
  Result<Sequence> Eval(PlanCtx& pc) const override {
    return SingletonAtomic(Atomic(pc.ctx->now));
  }
  void Describe(std::string* out, int indent) const override {
    Line(out, indent, "xcql:now()");
  }
};

class VersionLastOp : public PlanOp {
 public:
  Result<Sequence> Eval(PlanCtx& pc) const override {
    if (pc.version_last < 0) {
      return Status::TypeError("'last' used outside a version projection");
    }
    return SingletonAtomic(Atomic(pc.version_last));
  }
  void Describe(std::string* out, int indent) const override {
    Line(out, indent, "xcql:last()");
  }
};

// ---- Structure ops ---------------------------------------------------------

class SeqOp : public PlanOp {
 public:
  explicit SeqOp(std::vector<PlanOpPtr> items) : items_(std::move(items)) {}
  Result<Sequence> Eval(PlanCtx& pc) const override {
    Sequence out;
    for (const PlanOpPtr& item : items_) {
      XCQL_ASSIGN_OR_RETURN(Sequence r, EvalChild(*item, pc));
      out.insert(out.end(), std::make_move_iterator(r.begin()),
                 std::make_move_iterator(r.end()));
    }
    return out;
  }
  void Describe(std::string* out, int indent) const override {
    Line(out, indent, "sequence");
    for (const PlanOpPtr& item : items_) item->Describe(out, indent + 1);
  }

 private:
  std::vector<PlanOpPtr> items_;
};

class IfOp : public PlanOp {
 public:
  IfOp(PlanOpPtr c, PlanOpPtr t, PlanOpPtr e)
      : cond_(std::move(c)), then_(std::move(t)), else_(std::move(e)) {}
  Result<Sequence> Eval(PlanCtx& pc) const override {
    XCQL_ASSIGN_OR_RETURN(Sequence c, EvalChild(*cond_, pc));
    XCQL_ASSIGN_OR_RETURN(bool b, EffectiveBooleanValue(c));
    return EvalChild(b ? *then_ : *else_, pc);
  }
  void Describe(std::string* out, int indent) const override {
    Line(out, indent, "if");
    cond_->Describe(out, indent + 1);
    Line(out, indent, "then");
    then_->Describe(out, indent + 1);
    Line(out, indent, "else");
    else_->Describe(out, indent + 1);
  }

 private:
  PlanOpPtr cond_;
  PlanOpPtr then_;
  PlanOpPtr else_;
};

class LogicalOp : public PlanOp {
 public:
  LogicalOp(bool is_and, PlanOpPtr l, PlanOpPtr r)
      : is_and_(is_and), lhs_(std::move(l)), rhs_(std::move(r)) {}
  Result<Sequence> Eval(PlanCtx& pc) const override {
    XCQL_ASSIGN_OR_RETURN(Sequence l, EvalChild(*lhs_, pc));
    XCQL_ASSIGN_OR_RETURN(bool lb, EffectiveBooleanValue(l));
    if (is_and_ && !lb) return SingletonAtomic(Atomic(false));
    if (!is_and_ && lb) return SingletonAtomic(Atomic(true));
    XCQL_ASSIGN_OR_RETURN(Sequence r, EvalChild(*rhs_, pc));
    XCQL_ASSIGN_OR_RETURN(bool rb, EffectiveBooleanValue(r));
    return SingletonAtomic(Atomic(rb));
  }
  void Describe(std::string* out, int indent) const override {
    Line(out, indent, is_and_ ? "and" : "or");
    lhs_->Describe(out, indent + 1);
    rhs_->Describe(out, indent + 1);
  }

 private:
  bool is_and_;
  PlanOpPtr lhs_;
  PlanOpPtr rhs_;
};

enum class BinCategory {
  kGeneralCompare,
  kValueCompare,
  kRange,
  kNodeSet,
  kIntervalRel,
  kArith,
};

class BinaryOpOp : public PlanOp {
 public:
  BinaryOpOp(BinCategory cat, BinOp op, PlanOpPtr l, PlanOpPtr r)
      : cat_(cat), op_(op), lhs_(std::move(l)), rhs_(std::move(r)) {}
  Result<Sequence> Eval(PlanCtx& pc) const override {
    XCQL_ASSIGN_OR_RETURN(Sequence l, EvalChild(*lhs_, pc));
    XCQL_ASSIGN_OR_RETURN(Sequence r, EvalChild(*rhs_, pc));
    switch (cat_) {
      case BinCategory::kGeneralCompare:
        return GeneralCompare(op_, l, r);
      case BinCategory::kValueCompare:
        return ValueCompare(op_, l, r);
      case BinCategory::kRange:
        return RangeSequence(l, r);
      case BinCategory::kNodeSet:
        return NodeSetOp(op_, std::move(l), std::move(r));
      case BinCategory::kIntervalRel:
        return IntervalRelation(*pc.ctx, op_, l, r);
      case BinCategory::kArith: {
        if (l.empty() || r.empty()) return Sequence{};
        if (l.size() != 1 || r.size() != 1) {
          return Status::TypeError("arithmetic requires singleton operands");
        }
        return EvalArithmetic(*pc.ctx, op_, AtomizeItem(l.front()),
                              AtomizeItem(r.front()));
      }
    }
    return Status::Internal("unhandled binary category");
  }
  void Describe(std::string* out, int indent) const override {
    Line(out, indent, std::string("binary ") + BinOpName(op_));
    lhs_->Describe(out, indent + 1);
    rhs_->Describe(out, indent + 1);
  }

 private:
  BinCategory cat_;
  BinOp op_;
  PlanOpPtr lhs_;
  PlanOpPtr rhs_;
};

class NegOp : public PlanOp {
 public:
  explicit NegOp(PlanOpPtr operand) : operand_(std::move(operand)) {}
  Result<Sequence> Eval(PlanCtx& pc) const override {
    XCQL_ASSIGN_OR_RETURN(Sequence r, EvalChild(*operand_, pc));
    return UnaryMinus(std::move(r));
  }
  void Describe(std::string* out, int indent) const override {
    Line(out, indent, "negate");
    operand_->Describe(out, indent + 1);
  }

 private:
  PlanOpPtr operand_;
};

// ---- Predicates (shared by paths and filters) ------------------------------

Result<Sequence> ApplyPlanPredicates(PlanCtx& pc,
                                     const std::vector<PlanOpPtr>& preds,
                                     Sequence input) {
  for (const PlanOpPtr& pred : preds) {
    Sequence kept;
    PlanCtx::Focus saved = pc.focus;
    int64_t size = static_cast<int64_t>(input.size());
    Status st;
    for (int64_t i = 0; i < size; ++i) {
      pc.focus.has = true;
      pc.focus.item = input[static_cast<size_t>(i)];
      pc.focus.pos = i + 1;
      pc.focus.size = size;
      Result<Sequence> r = EvalChild(*pred, pc);
      if (!r.ok()) {
        st = r.status();
        break;
      }
      Result<bool> keep = PredicateAccepts(r.value(), i + 1);
      if (!keep.ok()) {
        st = keep.status();
        break;
      }
      if (keep.value()) kept.push_back(input[static_cast<size_t>(i)]);
    }
    pc.focus = saved;
    XCQL_RETURN_NOT_OK(st);
    input = std::move(kept);
  }
  return input;
}

// ---- Paths -----------------------------------------------------------------

struct CompiledStep {
  PathStep step;  // axis/test/name; predicates left empty (compiled below)
  int name_id = kEmptyNameId;
  std::vector<PlanOpPtr> preds;
};

class PathOp : public PlanOp {
 public:
  PathOp(PlanOpPtr input, std::vector<CompiledStep> steps)
      : input_(std::move(input)), steps_(std::move(steps)) {}
  Result<Sequence> Eval(PlanCtx& pc) const override {
    Sequence current;
    if (input_ != nullptr) {
      XCQL_ASSIGN_OR_RETURN(current, EvalChild(*input_, pc));
    } else {
      // Absolute path: root of the context item's tree.
      if (!pc.focus.has || !IsNode(pc.focus.item)) {
        return Status::TypeError(
            "absolute path requires a node context item");
      }
      Node* root = AsNode(pc.focus.item).get();
      while (root->parent() != nullptr) root = root->parent();
      current = SingletonNode(root->shared_from_this());
    }
    for (const CompiledStep& s : steps_) {
      Sequence out;
      std::unordered_set<const Node*> seen;  // dedup for the descendant axis
      for (const Item& item : current) {
        if (!IsNode(item)) {
          return Status::TypeError("path step applied to an atomic value");
        }
        Sequence matches;
        XCQL_RETURN_NOT_OK(CollectAxisMatches(*pc.ctx, AsNode(item), s.step,
                                              s.name_id, &seen, &matches));
        if (!s.preds.empty()) {
          XCQL_ASSIGN_OR_RETURN(
              matches, ApplyPlanPredicates(pc, s.preds, std::move(matches)));
        }
        out.insert(out.end(), std::make_move_iterator(matches.begin()),
                   std::make_move_iterator(matches.end()));
      }
      current = std::move(out);
    }
    return current;
  }
  void Describe(std::string* out, int indent) const override {
    Line(out, indent, "path");
    if (input_ != nullptr) input_->Describe(out, indent + 1);
    for (const CompiledStep& s : steps_) {
      Line(out, indent + 1,
           "step " + s.step.ToString() +
               (s.step.test == PathStep::Test::kName
                    ? " name_id=" + std::to_string(s.name_id)
                    : ""));
      for (const PlanOpPtr& p : s.preds) p->Describe(out, indent + 2);
    }
  }

 private:
  PlanOpPtr input_;  // null = absolute path
  std::vector<CompiledStep> steps_;
};

class FilterOp : public PlanOp {
 public:
  FilterOp(PlanOpPtr input, std::vector<PlanOpPtr> preds)
      : input_(std::move(input)), preds_(std::move(preds)) {}
  Result<Sequence> Eval(PlanCtx& pc) const override {
    XCQL_ASSIGN_OR_RETURN(Sequence in, EvalChild(*input_, pc));
    return ApplyPlanPredicates(pc, preds_, std::move(in));
  }
  void Describe(std::string* out, int indent) const override {
    Line(out, indent, "filter");
    input_->Describe(out, indent + 1);
    for (const PlanOpPtr& p : preds_) p->Describe(out, indent + 1);
  }

 private:
  PlanOpPtr input_;
  std::vector<PlanOpPtr> preds_;
};

// ---- FLWOR / quantifiers ---------------------------------------------------

struct CompiledOrderKey {
  PlanOpPtr key;
};

struct CompiledClause {
  FlworClause::Kind kind;
  int slot = -1;      // for/let variable slot
  int pos_slot = -1;  // 'at $p' slot, -1 if none
  std::string var;    // display only
  PlanOpPtr expr;     // for/let binding or where condition
  std::vector<CompiledOrderKey> keys;
};

class FlworOp : public PlanOp {
 public:
  FlworOp(std::vector<CompiledClause> clauses, PlanOpPtr ret,
          std::vector<bool> descending, bool has_order_by)
      : clauses_(std::move(clauses)),
        ret_(std::move(ret)),
        descending_(std::move(descending)),
        has_order_by_(has_order_by) {}

  Result<Sequence> Eval(PlanCtx& pc) const override {
    Sequence out;
    std::vector<std::pair<std::vector<Atomic>, Sequence>> ordered;
    XCQL_RETURN_NOT_OK(EvalClauses(pc, 0, &ordered, &out));
    if (!ordered.empty() || has_order_by_) {
      struct Row {
        std::vector<OrderSortKey> keys;
        Sequence* seq;
      };
      std::vector<Row> rows;
      rows.reserve(ordered.size());
      for (auto& [keys, seq] : ordered) {
        Row r;
        for (const Atomic& a : keys) r.keys.push_back(OrderSortKeyFrom(a));
        r.seq = &seq;
        rows.push_back(std::move(r));
      }
      std::stable_sort(rows.begin(), rows.end(),
                       [&](const Row& a, const Row& b) {
                         for (size_t i = 0; i < a.keys.size(); ++i) {
                           auto c = a.keys[i].Compare(b.keys[i]);
                           bool desc =
                               i < descending_.size() && descending_[i];
                           if (c == std::weak_ordering::less) return !desc;
                           if (c == std::weak_ordering::greater) return desc;
                         }
                         return false;
                       });
      for (const Row& r : rows) {
        out.insert(out.end(), r.seq->begin(), r.seq->end());
      }
    }
    return out;
  }

  void Describe(std::string* out, int indent) const override {
    Line(out, indent, "flwor");
    for (const CompiledClause& c : clauses_) {
      switch (c.kind) {
        case FlworClause::Kind::kFor:
          Line(out, indent + 1,
               "for $" + c.var + " slot=" + std::to_string(c.slot) +
                   (c.pos_slot >= 0
                        ? " at slot=" + std::to_string(c.pos_slot)
                        : ""));
          c.expr->Describe(out, indent + 2);
          break;
        case FlworClause::Kind::kLet:
          Line(out, indent + 1,
               "let $" + c.var + " slot=" + std::to_string(c.slot));
          c.expr->Describe(out, indent + 2);
          break;
        case FlworClause::Kind::kWhere:
          Line(out, indent + 1, "where");
          c.expr->Describe(out, indent + 2);
          break;
        case FlworClause::Kind::kOrderBy:
          Line(out, indent + 1, "order-by");
          for (const CompiledOrderKey& k : c.keys) {
            k.key->Describe(out, indent + 2);
          }
          break;
      }
    }
    Line(out, indent + 1, "return");
    ret_->Describe(out, indent + 2);
  }

 private:
  Status EvalClauses(
      PlanCtx& pc, size_t idx,
      std::vector<std::pair<std::vector<Atomic>, Sequence>>* ordered,
      Sequence* out) const {
    if (idx == clauses_.size()) {
      XCQL_ASSIGN_OR_RETURN(Sequence r, EvalChild(*ret_, pc));
      out->insert(out->end(), std::make_move_iterator(r.begin()),
                  std::make_move_iterator(r.end()));
      return Status::OK();
    }
    const CompiledClause& c = clauses_[idx];
    switch (c.kind) {
      case FlworClause::Kind::kFor: {
        XCQL_ASSIGN_OR_RETURN(Sequence seq, EvalChild(*c.expr, pc));
        int64_t pos = 0;
        for (Item& item : seq) {
          ++pos;
          Sequence binding;
          binding.push_back(item);
          pc.slots[static_cast<size_t>(c.slot)] = std::move(binding);
          if (c.pos_slot >= 0) {
            pc.slots[static_cast<size_t>(c.pos_slot)] =
                SingletonAtomic(Atomic(pos));
          }
          XCQL_RETURN_NOT_OK(EvalClauses(pc, idx + 1, ordered, out));
        }
        return Status::OK();
      }
      case FlworClause::Kind::kLet: {
        XCQL_ASSIGN_OR_RETURN(Sequence seq, EvalChild(*c.expr, pc));
        pc.slots[static_cast<size_t>(c.slot)] = std::move(seq);
        return EvalClauses(pc, idx + 1, ordered, out);
      }
      case FlworClause::Kind::kWhere: {
        XCQL_ASSIGN_OR_RETURN(Sequence cond, EvalChild(*c.expr, pc));
        XCQL_ASSIGN_OR_RETURN(bool b, EffectiveBooleanValue(cond));
        if (!b) return Status::OK();
        return EvalClauses(pc, idx + 1, ordered, out);
      }
      case FlworClause::Kind::kOrderBy: {
        std::vector<Atomic> keys;
        for (const CompiledOrderKey& k : c.keys) {
          XCQL_ASSIGN_OR_RETURN(Sequence kv, EvalChild(*k.key, pc));
          keys.push_back(OrderKeyAtomic(kv));
        }
        Sequence tuple_out;
        XCQL_RETURN_NOT_OK(EvalClauses(pc, idx + 1, ordered, &tuple_out));
        ordered->emplace_back(std::move(keys), std::move(tuple_out));
        return Status::OK();
      }
    }
    return Status::Internal("unhandled FLWOR clause");
  }

  std::vector<CompiledClause> clauses_;
  PlanOpPtr ret_;
  std::vector<bool> descending_;
  bool has_order_by_;
};

class QuantifiedOp : public PlanOp {
 public:
  struct Binding {
    int slot;
    std::string var;
    PlanOpPtr expr;
  };
  QuantifiedOp(bool every, std::vector<Binding> bindings, PlanOpPtr satisfies)
      : every_(every),
        bindings_(std::move(bindings)),
        satisfies_(std::move(satisfies)) {}

  Result<Sequence> Eval(PlanCtx& pc) const override {
    bool result = every_;
    XCQL_RETURN_NOT_OK(QuantifyFrom(pc, 0, &result));
    return SingletonAtomic(Atomic(result));
  }
  void Describe(std::string* out, int indent) const override {
    Line(out, indent, every_ ? "every" : "some");
    for (const Binding& b : bindings_) {
      Line(out, indent + 1,
           "in $" + b.var + " slot=" + std::to_string(b.slot));
      b.expr->Describe(out, indent + 2);
    }
    Line(out, indent + 1, "satisfies");
    satisfies_->Describe(out, indent + 2);
  }

 private:
  Status QuantifyFrom(PlanCtx& pc, size_t idx, bool* result) const {
    if (every_ ? !*result : *result) return Status::OK();
    if (idx == bindings_.size()) {
      XCQL_ASSIGN_OR_RETURN(Sequence s, EvalChild(*satisfies_, pc));
      XCQL_ASSIGN_OR_RETURN(bool b, EffectiveBooleanValue(s));
      if (every_) {
        if (!b) *result = false;
      } else {
        if (b) *result = true;
      }
      return Status::OK();
    }
    XCQL_ASSIGN_OR_RETURN(Sequence seq, EvalChild(*bindings_[idx].expr, pc));
    for (Item& item : seq) {
      Sequence binding;
      binding.push_back(item);
      pc.slots[static_cast<size_t>(bindings_[idx].slot)] = std::move(binding);
      XCQL_RETURN_NOT_OK(QuantifyFrom(pc, idx + 1, result));
      if (every_ ? !*result : *result) return Status::OK();
    }
    return Status::OK();
  }

  bool every_;
  std::vector<Binding> bindings_;
  PlanOpPtr satisfies_;
};

}  // namespace

// CompiledFunction / PlanImpl need external linkage declarations inside the
// anonymous namespace users above, so they live after the ops but before the
// call ops that reference them.
namespace {

struct CompiledFunction {
  std::string name;
  std::vector<int> param_slots;
  PlanOpPtr body;
};

class PlanImpl : public CompiledPlan {
 public:
  Result<Sequence> Execute(
      EvalContext* ctx,
      const std::map<std::string, Sequence>& bindings) const override;
  std::string DebugString() const override;
  int slot_count() const override { return num_slots_; }
  const std::vector<std::string>& external_names() const override {
    return external_names_;
  }

  const CompiledFunction& function(int idx) const {
    return functions_[static_cast<size_t>(idx)];
  }

  // Filled by the compiler.
  int num_slots_ = 0;
  std::vector<std::string> external_names_;
  std::vector<int> external_slots_;
  std::vector<CompiledFunction> functions_;
  std::vector<std::pair<int, PlanOpPtr>> prolog_vars_;
  std::vector<std::string> prolog_var_names_;
  PlanOpPtr body_;
};

// ---- Function calls --------------------------------------------------------

class NativeCallOp : public PlanOp {
 public:
  NativeCallOp(std::string name, const FunctionRegistry::NativeEntry* entry,
               std::vector<PlanOpPtr> args)
      : name_(std::move(name)), entry_(entry), args_(std::move(args)) {}
  Result<Sequence> Eval(PlanCtx& pc) const override {
    std::vector<Sequence> args;
    args.reserve(args_.size());
    for (const PlanOpPtr& a : args_) {
      XCQL_ASSIGN_OR_RETURN(Sequence s, EvalChild(*a, pc));
      args.push_back(std::move(s));
    }
    return entry_->fn(*pc.ctx, args);
  }
  void Describe(std::string* out, int indent) const override {
    Line(out, indent, "native " + name_ + "()");
    for (const PlanOpPtr& a : args_) a->Describe(out, indent + 1);
  }

 private:
  std::string name_;
  const FunctionRegistry::NativeEntry* entry_;  // resolved at compile time
  std::vector<PlanOpPtr> args_;
};

class UserCallOp : public PlanOp {
 public:
  UserCallOp(std::string name, int fn_index, std::vector<PlanOpPtr> args)
      : name_(std::move(name)), fn_index_(fn_index), args_(std::move(args)) {}
  Result<Sequence> Eval(PlanCtx& pc) const override {
    // Arguments evaluate in the caller's frame; the callee's slots only
    // change after that, and the call graph is acyclic (the compiler falls
    // back on recursion), so no frame needs saving.
    std::vector<Sequence> args;
    args.reserve(args_.size());
    for (const PlanOpPtr& a : args_) {
      XCQL_ASSIGN_OR_RETURN(Sequence s, EvalChild(*a, pc));
      args.push_back(std::move(s));
    }
    const CompiledFunction& fn = pc.plan->function(fn_index_);
    for (size_t i = 0; i < args.size(); ++i) {
      pc.slots[static_cast<size_t>(fn.param_slots[i])] = std::move(args[i]);
    }
    // Function bodies see no focus (XQuery function scoping).
    PlanCtx::Focus saved = pc.focus;
    pc.focus = PlanCtx::Focus{};
    Result<Sequence> r = EvalChild(*fn.body, pc);
    pc.focus = saved;
    return r;
  }
  void Describe(std::string* out, int indent) const override {
    Line(out, indent,
         "call " + name_ + "() fn=" + std::to_string(fn_index_));
    for (const PlanOpPtr& a : args_) a->Describe(out, indent + 1);
  }

 private:
  std::string name_;
  int fn_index_;
  std::vector<PlanOpPtr> args_;
};

// ---- Constructors ----------------------------------------------------------

struct CompiledContentPart {
  std::string text;  // used when op is null
  PlanOpPtr op;
};

class DirectElementOp : public PlanOp {
 public:
  struct Attr {
    std::string name;
    std::vector<CompiledContentPart> value;
  };
  DirectElementOp(std::string name, std::vector<Attr> attrs,
                  std::vector<CompiledContentPart> content)
      : name_(std::move(name)),
        attrs_(std::move(attrs)),
        content_(std::move(content)) {}

  Result<Sequence> Eval(PlanCtx& pc) const override {
    NodePtr el = NewElement(*pc.ctx, name_);
    for (const Attr& attr : attrs_) {
      std::string value;
      for (const CompiledContentPart& part : attr.value) {
        if (part.op == nullptr) {
          value += part.text;
        } else {
          XCQL_ASSIGN_OR_RETURN(Sequence r, EvalChild(*part.op, pc));
          value += SequenceToString(r);
        }
      }
      el->SetAttr(attr.name, std::move(value));
    }
    std::string pending;
    for (const CompiledContentPart& part : content_) {
      if (part.op == nullptr) {
        pending += part.text;
        continue;
      }
      XCQL_ASSIGN_OR_RETURN(Sequence r, EvalChild(*part.op, pc));
      XCQL_RETURN_NOT_OK(
          AppendConstructorContent(*pc.ctx, r, el.get(), &pending));
    }
    if (!pending.empty()) el->AddChild(NewText(*pc.ctx, std::move(pending)));
    return SingletonNode(std::move(el));
  }
  void Describe(std::string* out, int indent) const override {
    Line(out, indent, "element <" + name_ + ">");
    for (const Attr& a : attrs_) {
      for (const CompiledContentPart& part : a.value) {
        if (part.op != nullptr) part.op->Describe(out, indent + 1);
      }
    }
    for (const CompiledContentPart& part : content_) {
      if (part.op != nullptr) part.op->Describe(out, indent + 1);
    }
  }

 private:
  std::string name_;
  std::vector<Attr> attrs_;
  std::vector<CompiledContentPart> content_;
};

class ComputedElementOp : public PlanOp {
 public:
  ComputedElementOp(PlanOpPtr name, PlanOpPtr content)
      : name_(std::move(name)), content_(std::move(content)) {}
  Result<Sequence> Eval(PlanCtx& pc) const override {
    XCQL_ASSIGN_OR_RETURN(Sequence name_seq, EvalChild(*name_, pc));
    std::string name = SequenceToString(name_seq);
    if (name.empty()) {
      return Status::TypeError("computed element constructor: empty name");
    }
    NodePtr el = NewElement(*pc.ctx, std::move(name));
    if (content_ != nullptr) {
      XCQL_ASSIGN_OR_RETURN(Sequence r, EvalChild(*content_, pc));
      std::string pending;
      XCQL_RETURN_NOT_OK(
          AppendConstructorContent(*pc.ctx, r, el.get(), &pending));
      if (!pending.empty()) el->AddChild(NewText(*pc.ctx, std::move(pending)));
    }
    return SingletonNode(std::move(el));
  }
  void Describe(std::string* out, int indent) const override {
    Line(out, indent, "computed-element");
    name_->Describe(out, indent + 1);
    if (content_ != nullptr) content_->Describe(out, indent + 1);
  }

 private:
  PlanOpPtr name_;
  PlanOpPtr content_;  // may be null
};

class ComputedAttributeOp : public PlanOp {
 public:
  ComputedAttributeOp(PlanOpPtr name, PlanOpPtr content)
      : name_(std::move(name)), content_(std::move(content)) {}
  Result<Sequence> Eval(PlanCtx& pc) const override {
    XCQL_ASSIGN_OR_RETURN(Sequence name_seq, EvalChild(*name_, pc));
    std::string name = SequenceToString(name_seq);
    if (name.empty()) {
      return Status::TypeError("computed attribute constructor: empty name");
    }
    std::string value;
    if (content_ != nullptr) {
      XCQL_ASSIGN_OR_RETURN(Sequence r, EvalChild(*content_, pc));
      value = SequenceToString(r);
    }
    return SingletonNode(
        NewAttribute(*pc.ctx, std::move(name), std::move(value)));
  }
  void Describe(std::string* out, int indent) const override {
    Line(out, indent, "computed-attribute");
    name_->Describe(out, indent + 1);
    if (content_ != nullptr) content_->Describe(out, indent + 1);
  }

 private:
  PlanOpPtr name_;
  PlanOpPtr content_;  // may be null
};

// ---- XCQL projections ------------------------------------------------------

class IntervalProjOp : public PlanOp {
 public:
  IntervalProjOp(PlanOpPtr input, PlanOpPtr lo, PlanOpPtr hi)
      : input_(std::move(input)), lo_(std::move(lo)), hi_(std::move(hi)) {}
  Result<Sequence> Eval(PlanCtx& pc) const override {
    XCQL_ASSIGN_OR_RETURN(Sequence input, EvalChild(*input_, pc));
    XCQL_ASSIGN_OR_RETURN(Sequence lo_seq, EvalChild(*lo_, pc));
    if (lo_seq.size() != 1) {
      return Status::TypeError(
          "interval projection bound must be a singleton");
    }
    XCQL_ASSIGN_OR_RETURN(
        DateTime tb, AtomicToDateTime(*pc.ctx, AtomizeItem(lo_seq.front())));
    DateTime te = tb;
    if (hi_ != nullptr) {
      XCQL_ASSIGN_OR_RETURN(Sequence hi_seq, EvalChild(*hi_, pc));
      if (hi_seq.size() != 1) {
        return Status::TypeError(
            "interval projection bound must be a singleton");
      }
      XCQL_ASSIGN_OR_RETURN(
          te, AtomicToDateTime(*pc.ctx, AtomizeItem(hi_seq.front())));
    }
    if (tb > te) {
      return Status::InvalidArgument(
          "interval projection with begin > end: " +
          Interval(tb, te).ToString());
    }
    return IntervalProjection(*pc.ctx, input, tb, te);
  }
  void Describe(std::string* out, int indent) const override {
    Line(out, indent, "interval-proj");
    input_->Describe(out, indent + 1);
    lo_->Describe(out, indent + 1);
    if (hi_ != nullptr) hi_->Describe(out, indent + 1);
  }

 private:
  PlanOpPtr input_;
  PlanOpPtr lo_;
  PlanOpPtr hi_;  // null means point interval [lo, lo]
};

class VersionProjOp : public PlanOp {
 public:
  VersionProjOp(PlanOpPtr input, PlanOpPtr lo, PlanOpPtr hi)
      : input_(std::move(input)), lo_(std::move(lo)), hi_(std::move(hi)) {}
  Result<Sequence> Eval(PlanCtx& pc) const override {
    XCQL_ASSIGN_OR_RETURN(Sequence input, EvalChild(*input_, pc));
    int64_t saved_last = pc.version_last;
    pc.version_last = static_cast<int64_t>(input.size());
    auto eval_bound = [&](const PlanOp& bound) -> Result<int64_t> {
      XCQL_ASSIGN_OR_RETURN(Sequence s, EvalChild(bound, pc));
      if (s.size() != 1) {
        return Status::TypeError(
            "version projection bound must be a singleton");
      }
      return AtomicToVersion(AtomizeItem(s.front()));
    };
    Result<int64_t> vb = eval_bound(*lo_);
    if (!vb.ok()) {
      pc.version_last = saved_last;
      return vb.status();
    }
    int64_t ve = vb.value();
    if (hi_ != nullptr) {
      Result<int64_t> hi = eval_bound(*hi_);
      if (!hi.ok()) {
        pc.version_last = saved_last;
        return hi.status();
      }
      ve = hi.value();
    }
    pc.version_last = saved_last;
    if (vb.value() > ve) {
      return Status::InvalidArgument(
          StringPrintf("version projection with begin %lld > end %lld",
                       static_cast<long long>(vb.value()),
                       static_cast<long long>(ve)));
    }
    return VersionProjection(*pc.ctx, input, vb.value(), ve);
  }
  void Describe(std::string* out, int indent) const override {
    Line(out, indent, "version-proj");
    input_->Describe(out, indent + 1);
    lo_->Describe(out, indent + 1);
    if (hi_ != nullptr) hi_->Describe(out, indent + 1);
  }

 private:
  PlanOpPtr input_;
  PlanOpPtr lo_;
  PlanOpPtr hi_;
};

// ---- PlanImpl::Execute / DebugString ---------------------------------------

Result<Sequence> PlanImpl::Execute(
    EvalContext* ctx, const std::map<std::string, Sequence>& bindings) const {
  if (ctx->functions == nullptr) {
    return Status::InvalidArgument("EvalContext has no function registry");
  }
  PlanCtx pc;
  pc.ctx = ctx;
  pc.plan = this;
  pc.slots.resize(static_cast<size_t>(num_slots_));
  pc.bound.assign(static_cast<size_t>(num_slots_), 0);
  for (size_t i = 0; i < external_names_.size(); ++i) {
    auto it = bindings.find(external_names_[i]);
    if (it != bindings.end()) {
      size_t slot = static_cast<size_t>(external_slots_[i]);
      pc.slots[slot] = it->second;
      pc.bound[slot] = 1;
    }
  }
  for (const auto& [slot, init] : prolog_vars_) {
    Result<Sequence> r = EvalChild(*init, pc);
    if (!r.ok()) return r.status();
    size_t s = static_cast<size_t>(slot);
    pc.slots[s] = std::move(r).MoveValue();
    pc.bound[s] = 1;
  }
  return EvalChild(*body_, pc);
}

std::string PlanImpl::DebugString() const {
  std::string out = "plan slots=" + std::to_string(num_slots_);
  if (!external_names_.empty()) {
    out += " externals=[";
    for (size_t i = 0; i < external_names_.size(); ++i) {
      if (i > 0) out += ",";
      out += "$" + external_names_[i];
    }
    out += "]";
  }
  out += "\n";
  for (const CompiledFunction& f : functions_) {
    Line(&out, 1, "function " + f.name + "/" +
                      std::to_string(f.param_slots.size()));
    f.body->Describe(&out, 2);
  }
  for (size_t i = 0; i < prolog_vars_.size(); ++i) {
    Line(&out, 1, "declare $" + prolog_var_names_[i] + " slot=" +
                      std::to_string(prolog_vars_[i].first));
    prolog_vars_[i].second->Describe(&out, 2);
  }
  Line(&out, 1, "body");
  body_->Describe(&out, 2);
  return out;
}

// ---- Compiler --------------------------------------------------------------

// Atoms the constant folder may evaluate at compile time: dateTime and
// duration values are excluded because their arithmetic can resolve "now"
// against the evaluation clock (EvalContext-dependent).
bool FoldableConst(const Sequence& s) {
  for (const Item& item : s) {
    if (IsNode(item)) return false;
    const Atomic& a = AsAtomic(item);
    if (a.is_datetime() || a.is_duration()) return false;
  }
  return true;
}

const Sequence* AsConst(const PlanOpPtr& op) {
  auto* c = dynamic_cast<const ConstOp*>(op.get());
  return c != nullptr ? &c->value() : nullptr;
}

class Compiler {
 public:
  Compiler(const Program& prog, const FunctionRegistry& registry)
      : prog_(prog), registry_(registry) {}

  PlanCompileResult Run() {
    auto plan = std::make_shared<PlanImpl>();
    plan_ = plan.get();

    for (const FunctionDecl& d : prog_.functions) {
      if (!declared_.insert(d.name).second) {
        return Fallback("duplicate declaration of function " + d.name + "()");
      }
    }
    for (const FunctionDecl& d : prog_.functions) {
      CompiledFunction cf;
      cf.name = d.name;
      in_function_ = true;
      std::vector<std::pair<std::string, int>> saved_env;
      saved_env.swap(env_);
      for (const std::string& p : d.params) {
        int slot = NewSlot();
        cf.param_slots.push_back(slot);
        env_.emplace_back(p, slot);
      }
      cf.body = CompileExpr(*d.body);
      env_ = std::move(saved_env);
      in_function_ = false;
      if (failed_) return Fallback(reason_);
      function_index_[d.name] = static_cast<int>(plan_->functions_.size());
      plan_->functions_.push_back(std::move(cf));
    }
    for (const VariableDecl& v : prog_.variables) {
      PlanOpPtr init = CompileExpr(*v.init);
      if (failed_) return Fallback(reason_);
      int slot = NewSlot();
      plan_->prolog_vars_.emplace_back(slot, std::move(init));
      plan_->prolog_var_names_.push_back(v.name);
      env_.emplace_back(v.name, slot);
    }
    plan_->body_ = CompileExpr(*prog_.body);
    if (failed_) return Fallback(reason_);
    return PlanCompileResult{std::move(plan), std::string()};
  }

 private:
  PlanCompileResult Fallback(std::string reason) {
    return PlanCompileResult{nullptr, std::move(reason)};
  }

  PlanOpPtr Fail(const std::string& reason) {
    if (!failed_) {
      failed_ = true;
      reason_ = reason;
    }
    return nullptr;
  }

  int NewSlot() { return plan_->num_slots_++; }

  PlanOpPtr CompileExpr(const Expr& e);
  PlanOpPtr CompileVarRef(const VarRefExpr& e);
  PlanOpPtr CompileFlwor(const FlworExpr& e);
  PlanOpPtr CompileQuantified(const QuantifiedExpr& e);
  PlanOpPtr CompileBinary(const BinaryExpr& e);
  PlanOpPtr CompilePath(const PathExpr& e);
  PlanOpPtr CompileCall(const FunctionCallExpr& e);
  bool CompileContent(const std::vector<ContentPart>& parts,
                      std::vector<CompiledContentPart>* out);

  const Program& prog_;
  const FunctionRegistry& registry_;
  PlanImpl* plan_ = nullptr;
  std::vector<std::pair<std::string, int>> env_;
  std::map<std::string, int> function_index_;
  std::unordered_set<std::string> declared_;
  std::map<std::string, int> external_by_name_;
  bool in_function_ = false;
  bool failed_ = false;
  std::string reason_;
};

PlanOpPtr Compiler::CompileVarRef(const VarRefExpr& e) {
  for (auto it = env_.rbegin(); it != env_.rend(); ++it) {
    if (it->first == e.name) {
      return std::make_unique<LocalVarOp>(it->second, e.name);
    }
  }
  if (in_function_) {
    // Function bodies see only their parameters; a free variable errors if
    // (and only if) evaluation reaches it — same as the interpreter.
    return std::make_unique<UndefinedVarOp>(e.name);
  }
  auto it = external_by_name_.find(e.name);
  int slot;
  if (it != external_by_name_.end()) {
    slot = it->second;
  } else {
    slot = NewSlot();
    external_by_name_[e.name] = slot;
    plan_->external_names_.push_back(e.name);
    plan_->external_slots_.push_back(slot);
  }
  return std::make_unique<ExternalVarOp>(slot, e.name);
}

PlanOpPtr Compiler::CompileFlwor(const FlworExpr& e) {
  std::vector<CompiledClause> clauses;
  std::vector<bool> descending;
  bool has_order_by = false;
  size_t env_mark = env_.size();
  for (const FlworClause& c : e.clauses) {
    CompiledClause cc;
    cc.kind = c.kind;
    switch (c.kind) {
      case FlworClause::Kind::kFor: {
        cc.expr = CompileExpr(*c.expr);
        if (cc.expr == nullptr) return nullptr;
        cc.var = c.var;
        cc.slot = NewSlot();
        env_.emplace_back(c.var, cc.slot);
        if (!c.pos_var.empty()) {
          cc.pos_slot = NewSlot();
          env_.emplace_back(c.pos_var, cc.pos_slot);
        }
        break;
      }
      case FlworClause::Kind::kLet: {
        cc.expr = CompileExpr(*c.expr);
        if (cc.expr == nullptr) return nullptr;
        cc.var = c.var;
        cc.slot = NewSlot();
        env_.emplace_back(c.var, cc.slot);
        break;
      }
      case FlworClause::Kind::kWhere: {
        cc.expr = CompileExpr(*c.expr);
        if (cc.expr == nullptr) return nullptr;
        break;
      }
      case FlworClause::Kind::kOrderBy: {
        has_order_by = true;
        descending.clear();  // the last order-by clause's directions win
        for (const FlworClause::OrderKey& k : c.keys) {
          CompiledOrderKey ck;
          ck.key = CompileExpr(*k.key);
          if (ck.key == nullptr) return nullptr;
          cc.keys.push_back(std::move(ck));
          descending.push_back(k.descending);
        }
        break;
      }
    }
    clauses.push_back(std::move(cc));
  }
  PlanOpPtr ret = CompileExpr(*e.ret);
  env_.resize(env_mark);
  if (ret == nullptr) return nullptr;
  return std::make_unique<FlworOp>(std::move(clauses), std::move(ret),
                                   std::move(descending), has_order_by);
}

PlanOpPtr Compiler::CompileQuantified(const QuantifiedExpr& e) {
  std::vector<QuantifiedOp::Binding> bindings;
  size_t env_mark = env_.size();
  for (const QuantifiedExpr::Binding& b : e.bindings) {
    QuantifiedOp::Binding cb;
    cb.expr = CompileExpr(*b.expr);
    if (cb.expr == nullptr) return nullptr;
    cb.var = b.var;
    cb.slot = NewSlot();
    env_.emplace_back(b.var, cb.slot);
    bindings.push_back(std::move(cb));
  }
  PlanOpPtr satisfies = CompileExpr(*e.satisfies);
  env_.resize(env_mark);
  if (satisfies == nullptr) return nullptr;
  return std::make_unique<QuantifiedOp>(e.every, std::move(bindings),
                                        std::move(satisfies));
}

PlanOpPtr Compiler::CompileBinary(const BinaryExpr& e) {
  PlanOpPtr l = CompileExpr(*e.lhs);
  if (l == nullptr) return nullptr;
  PlanOpPtr r = CompileExpr(*e.rhs);
  if (r == nullptr) return nullptr;

  const Sequence* lc = AsConst(l);
  const Sequence* rc = AsConst(r);
  bool foldable = lc != nullptr && rc != nullptr && FoldableConst(*lc) &&
                  FoldableConst(*rc);

  if (e.op == BinOp::kAnd || e.op == BinOp::kOr) {
    // Short-circuit folding: a decided left side folds the whole operator
    // even when the right side is dynamic, exactly as evaluation would.
    if (lc != nullptr && FoldableConst(*lc)) {
      Result<bool> lb = EffectiveBooleanValue(*lc);
      if (lb.ok()) {
        if (e.op == BinOp::kAnd && !lb.value()) {
          return std::make_unique<ConstOp>(SingletonAtomic(Atomic(false)));
        }
        if (e.op == BinOp::kOr && lb.value()) {
          return std::make_unique<ConstOp>(SingletonAtomic(Atomic(true)));
        }
        if (rc != nullptr && FoldableConst(*rc)) {
          Result<bool> rb = EffectiveBooleanValue(*rc);
          if (rb.ok()) {
            return std::make_unique<ConstOp>(
                SingletonAtomic(Atomic(rb.value())));
          }
        }
      }
    }
    return std::make_unique<LogicalOp>(e.op == BinOp::kAnd, std::move(l),
                                       std::move(r));
  }

  BinCategory cat;
  switch (e.op) {
    case BinOp::kGenEq:
    case BinOp::kGenNe:
    case BinOp::kGenLt:
    case BinOp::kGenLe:
    case BinOp::kGenGt:
    case BinOp::kGenGe:
      cat = BinCategory::kGeneralCompare;
      break;
    case BinOp::kValEq:
    case BinOp::kValNe:
    case BinOp::kValLt:
    case BinOp::kValLe:
    case BinOp::kValGt:
    case BinOp::kValGe:
      cat = BinCategory::kValueCompare;
      break;
    case BinOp::kTo:
      cat = BinCategory::kRange;
      break;
    case BinOp::kUnion:
    case BinOp::kIntersect:
    case BinOp::kExcept:
      cat = BinCategory::kNodeSet;
      break;
    case BinOp::kBefore:
    case BinOp::kAfter:
    case BinOp::kMeets:
    case BinOp::kOverlaps:
    case BinOp::kContains:
    case BinOp::kDuring:
      cat = BinCategory::kIntervalRel;
      break;
    default:
      cat = BinCategory::kArith;
      break;
  }

  if (foldable) {
    Result<Sequence> folded = Status::OK();
    switch (cat) {
      case BinCategory::kGeneralCompare:
        folded = GeneralCompare(e.op, *lc, *rc);
        break;
      case BinCategory::kValueCompare:
        folded = ValueCompare(e.op, *lc, *rc);
        break;
      case BinCategory::kRange:
        folded = RangeSequence(*lc, *rc);
        break;
      case BinCategory::kArith: {
        if (lc->empty() || rc->empty()) {
          return std::make_unique<ConstOp>(Sequence{});
        }
        if (lc->size() != 1 || rc->size() != 1) {
          folded = Status::TypeError("not folded");  // keep the op
          break;
        }
        // Non-temporal atomics only (checked above), so arithmetic never
        // touches the evaluation clock; any context works.
        static EvalContext fold_ctx;
        folded = EvalArithmetic(fold_ctx, e.op, AtomizeItem(lc->front()),
                                AtomizeItem(rc->front()));
        break;
      }
      default:
        folded = Status::TypeError("not folded");
        break;
    }
    // Folding failures (e.g. division by zero) keep the unfolded op so the
    // runtime error surfaces only if evaluation reaches it.
    if (folded.ok()) {
      return std::make_unique<ConstOp>(std::move(folded).MoveValue());
    }
  }
  return std::make_unique<BinaryOpOp>(cat, e.op, std::move(l), std::move(r));
}

PlanOpPtr Compiler::CompilePath(const PathExpr& e) {
  PlanOpPtr input;
  if (e.input != nullptr) {
    input = CompileExpr(*e.input);
    if (input == nullptr) return nullptr;
  }
  std::vector<CompiledStep> steps;
  for (const PathStep& s : e.steps) {
    CompiledStep cs;
    cs.step.axis = s.axis;
    cs.step.test = s.test;
    cs.step.name = s.name;
    cs.name_id = s.test == PathStep::Test::kName ? InternName(s.name)
                                                 : kEmptyNameId;
    for (const ExprPtr& p : s.predicates) {
      PlanOpPtr pp = CompileExpr(*p);
      if (pp == nullptr) return nullptr;
      cs.preds.push_back(std::move(pp));
    }
    steps.push_back(std::move(cs));
  }
  return std::make_unique<PathOp>(std::move(input), std::move(steps));
}

PlanOpPtr Compiler::CompileCall(const FunctionCallExpr& e) {
  // Focus- and projection-dependent builtins resolve before the registry,
  // mirroring the interpreter's dispatch order.
  if (e.args.empty()) {
    if (e.name == "position") return std::make_unique<PositionOp>();
    if (e.name == "last") return std::make_unique<LastOp>();
    if (e.name == "xcql:now") return std::make_unique<NowOp>();
    if (e.name == "xcql:start") {
      return std::make_unique<ConstOp>(
          SingletonAtomic(Atomic(DateTime::Start())));
    }
    if (e.name == "xcql:last") return std::make_unique<VersionLastOp>();
  }

  std::vector<PlanOpPtr> args;
  args.reserve(e.args.size());
  for (const ExprPtr& a : e.args) {
    PlanOpPtr op = CompileExpr(*a);
    if (op == nullptr) return nullptr;
    args.push_back(std::move(op));
  }
  int n = static_cast<int>(args.size());

  const FunctionRegistry::NativeEntry* native = registry_.FindNative(e.name);
  if (native != nullptr) {
    if (n < native->min_arity ||
        (native->max_arity >= 0 && n > native->max_arity)) {
      // The interpreter raises this lazily; fall back so an unreached bad
      // call cannot change program behavior.
      return Fail(StringPrintf("wrong number of arguments (%d) to %s()", n,
                               e.name.c_str()));
    }
    return std::make_unique<NativeCallOp>(e.name, native, std::move(args));
  }

  auto fn = function_index_.find(e.name);
  if (fn != function_index_.end()) {
    const CompiledFunction& cf =
        plan_->functions_[static_cast<size_t>(fn->second)];
    if (static_cast<size_t>(n) != cf.param_slots.size()) {
      return Fail(StringPrintf(
          "wrong number of arguments (%d, expected %zu) to %s()", n,
          cf.param_slots.size(), e.name.c_str()));
    }
    return std::make_unique<UserCallOp>(e.name, fn->second, std::move(args));
  }
  if (declared_.count(e.name) > 0) {
    // Declared later in the prolog (or a self-reference): the fixed-slot
    // frame cannot be re-entered, so lowering stops here.
    return Fail("forward or recursive reference to " + e.name + "()");
  }
  if (registry_.FindUser(e.name) != nullptr) {
    return Fail("call to registry user function " + e.name + "()");
  }
  return Fail("unknown function " + e.name + "()");
}

bool Compiler::CompileContent(const std::vector<ContentPart>& parts,
                              std::vector<CompiledContentPart>* out) {
  for (const ContentPart& part : parts) {
    CompiledContentPart cp;
    if (part.expr == nullptr) {
      cp.text = part.text;
    } else {
      cp.op = CompileExpr(*part.expr);
      if (cp.op == nullptr) return false;
    }
    out->push_back(std::move(cp));
  }
  return true;
}

PlanOpPtr Compiler::CompileExpr(const Expr& e) {
  switch (e.kind()) {
    case ExprKind::kLiteral:
      return std::make_unique<ConstOp>(
          SingletonAtomic(static_cast<const LiteralExpr&>(e).value));
    case ExprKind::kVarRef:
      return CompileVarRef(static_cast<const VarRefExpr&>(e));
    case ExprKind::kContextItem:
      return std::make_unique<ContextItemOp>();
    case ExprKind::kSequence: {
      const auto& seq = static_cast<const SequenceExpr&>(e);
      std::vector<PlanOpPtr> items;
      items.reserve(seq.items.size());
      for (const ExprPtr& item : seq.items) {
        PlanOpPtr op = CompileExpr(*item);
        if (op == nullptr) return nullptr;
        items.push_back(std::move(op));
      }
      return std::make_unique<SeqOp>(std::move(items));
    }
    case ExprKind::kFlwor:
      return CompileFlwor(static_cast<const FlworExpr&>(e));
    case ExprKind::kQuantified:
      return CompileQuantified(static_cast<const QuantifiedExpr&>(e));
    case ExprKind::kIf: {
      const auto& i = static_cast<const IfExpr&>(e);
      PlanOpPtr c = CompileExpr(*i.cond);
      if (c == nullptr) return nullptr;
      PlanOpPtr t = CompileExpr(*i.then_branch);
      if (t == nullptr) return nullptr;
      PlanOpPtr el = CompileExpr(*i.else_branch);
      if (el == nullptr) return nullptr;
      return std::make_unique<IfOp>(std::move(c), std::move(t),
                                    std::move(el));
    }
    case ExprKind::kBinary:
      return CompileBinary(static_cast<const BinaryExpr&>(e));
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      PlanOpPtr operand = CompileExpr(*u.operand);
      if (operand == nullptr) return nullptr;
      if (const Sequence* c = AsConst(operand);
          c != nullptr && FoldableConst(*c)) {
        Result<Sequence> folded = UnaryMinus(*c);
        if (folded.ok()) {
          return std::make_unique<ConstOp>(std::move(folded).MoveValue());
        }
      }
      return std::make_unique<NegOp>(std::move(operand));
    }
    case ExprKind::kPath:
      return CompilePath(static_cast<const PathExpr&>(e));
    case ExprKind::kFilter: {
      const auto& f = static_cast<const FilterExpr&>(e);
      PlanOpPtr input = CompileExpr(*f.input);
      if (input == nullptr) return nullptr;
      std::vector<PlanOpPtr> preds;
      for (const ExprPtr& p : f.predicates) {
        PlanOpPtr pp = CompileExpr(*p);
        if (pp == nullptr) return nullptr;
        preds.push_back(std::move(pp));
      }
      return std::make_unique<FilterOp>(std::move(input), std::move(preds));
    }
    case ExprKind::kFunctionCall:
      return CompileCall(static_cast<const FunctionCallExpr&>(e));
    case ExprKind::kDirectElement: {
      const auto& d = static_cast<const DirectElementExpr&>(e);
      std::vector<DirectElementOp::Attr> attrs;
      for (const DirectElementExpr::Attr& a : d.attrs) {
        DirectElementOp::Attr ca;
        ca.name = a.name;
        if (!CompileContent(a.value, &ca.value)) return nullptr;
        attrs.push_back(std::move(ca));
      }
      std::vector<CompiledContentPart> content;
      if (!CompileContent(d.content, &content)) return nullptr;
      return std::make_unique<DirectElementOp>(d.name, std::move(attrs),
                                               std::move(content));
    }
    case ExprKind::kComputedElement: {
      const auto& c = static_cast<const ComputedElementExpr&>(e);
      PlanOpPtr name = CompileExpr(*c.name_expr);
      if (name == nullptr) return nullptr;
      PlanOpPtr content;
      if (c.content != nullptr) {
        content = CompileExpr(*c.content);
        if (content == nullptr) return nullptr;
      }
      return std::make_unique<ComputedElementOp>(std::move(name),
                                                 std::move(content));
    }
    case ExprKind::kComputedAttribute: {
      const auto& c = static_cast<const ComputedAttributeExpr&>(e);
      PlanOpPtr name = CompileExpr(*c.name_expr);
      if (name == nullptr) return nullptr;
      PlanOpPtr content;
      if (c.content != nullptr) {
        content = CompileExpr(*c.content);
        if (content == nullptr) return nullptr;
      }
      return std::make_unique<ComputedAttributeOp>(std::move(name),
                                                   std::move(content));
    }
    case ExprKind::kIntervalProj: {
      const auto& p = static_cast<const IntervalProjExpr&>(e);
      PlanOpPtr input = CompileExpr(*p.input);
      if (input == nullptr) return nullptr;
      PlanOpPtr lo = CompileExpr(*p.lo);
      if (lo == nullptr) return nullptr;
      PlanOpPtr hi;
      if (p.hi != nullptr) {
        hi = CompileExpr(*p.hi);
        if (hi == nullptr) return nullptr;
      }
      return std::make_unique<IntervalProjOp>(std::move(input), std::move(lo),
                                              std::move(hi));
    }
    case ExprKind::kVersionProj: {
      const auto& p = static_cast<const VersionProjExpr&>(e);
      PlanOpPtr input = CompileExpr(*p.input);
      if (input == nullptr) return nullptr;
      PlanOpPtr lo = CompileExpr(*p.lo);
      if (lo == nullptr) return nullptr;
      PlanOpPtr hi;
      if (p.hi != nullptr) {
        hi = CompileExpr(*p.hi);
        if (hi == nullptr) return nullptr;
      }
      return std::make_unique<VersionProjOp>(std::move(input), std::move(lo),
                                             std::move(hi));
    }
  }
  return Fail("unhandled expression kind");
}

}  // namespace

PlanCompileResult CompileProgram(const Program& prog,
                                 const FunctionRegistry& registry) {
  Compiler compiler(prog, registry);
  return compiler.Run();
}

}  // namespace xcql::xq
