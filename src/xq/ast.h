// Abstract syntax for the XQuery/XCQL subset. The XCQL translator (Fig. 3 of
// the paper) rewrites these trees, so every node supports deep Clone() and a
// readable ToString() used to display translations and in tests.
#ifndef XCQL_XQ_AST_H_
#define XCQL_XQ_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "xq/value.h"

namespace xcql::xq {

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  kLiteral,
  kVarRef,
  kContextItem,
  kSequence,       // comma expression
  kFlwor,
  kQuantified,     // some/every … satisfies
  kIf,
  kBinary,
  kUnary,          // unary minus
  kPath,
  kFilter,         // predicates on a non-step expression: (e)[pred]
  kFunctionCall,
  kDirectElement,  // <a x="…">…</a>
  kComputedElement,
  kComputedAttribute,
  kIntervalProj,   // e?[t1,t2]      (XCQL)
  kVersionProj,    // e#[v1,v2]      (XCQL)
};

enum class BinOp {
  kOr,
  kAnd,
  // General comparisons (existential over sequences).
  kGenEq,
  kGenNe,
  kGenLt,
  kGenLe,
  kGenGt,
  kGenGe,
  // Value comparisons (singletons).
  kValEq,
  kValNe,
  kValLt,
  kValLe,
  kValGt,
  kValGe,
  kPlus,
  kMinus,
  kMul,
  kDiv,
  kIdiv,
  kMod,
  kTo,     // integer range
  kUnion,      // node-sequence union (duplicates by identity removed)
  kIntersect,  // nodes present in both operands (by identity)
  kExcept,     // nodes of the left operand not present in the right
  // XCQL interval relations (paper §2: "a before b" compares lifespans).
  // Operands are elements (compared by lifespan) or dateTimes (points);
  // existential over sequences like general comparisons.
  kBefore,
  kAfter,
  kMeets,
  kOverlaps,
  kContains,
  kDuring,
};

const char* BinOpName(BinOp op);

/// \brief Base class for all expression nodes.
class Expr {
 public:
  explicit Expr(ExprKind kind) : kind_(kind) {}
  virtual ~Expr() = default;

  ExprKind kind() const { return kind_; }

  /// \brief Deep copy.
  virtual ExprPtr Clone() const = 0;

  /// \brief Readable XQuery-like rendering (used to display translations).
  virtual std::string ToString() const = 0;

 private:
  ExprKind kind_;
};

/// \brief Atomic literal (number, string, dateTime, duration, boolean).
class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Atomic v)
      : Expr(ExprKind::kLiteral), value(std::move(v)) {}
  ExprPtr Clone() const override;
  std::string ToString() const override;

  Atomic value;
};

/// \brief Variable reference $name.
class VarRefExpr : public Expr {
 public:
  explicit VarRefExpr(std::string n)
      : Expr(ExprKind::kVarRef), name(std::move(n)) {}
  ExprPtr Clone() const override;
  std::string ToString() const override;

  std::string name;
};

/// \brief The context item ".".
class ContextItemExpr : public Expr {
 public:
  ContextItemExpr() : Expr(ExprKind::kContextItem) {}
  ExprPtr Clone() const override;
  std::string ToString() const override;
};

/// \brief Comma expression (e1, e2, …): concatenation of sequences.
class SequenceExpr : public Expr {
 public:
  explicit SequenceExpr(std::vector<ExprPtr> its)
      : Expr(ExprKind::kSequence), items(std::move(its)) {}
  ExprPtr Clone() const override;
  std::string ToString() const override;

  std::vector<ExprPtr> items;
};

/// \brief One FLWOR clause.
struct FlworClause {
  enum class Kind { kFor, kLet, kWhere, kOrderBy };
  struct OrderKey {
    ExprPtr key;
    bool descending = false;
  };

  Kind kind;
  std::string var;      // for/let variable (without '$')
  std::string pos_var;  // 'at $p' positional variable, empty if none
  ExprPtr expr;         // for/let binding or where condition
  std::vector<OrderKey> keys;  // order by keys

  FlworClause Clone() const;
};

/// \brief for/let/where/order by/return.
class FlworExpr : public Expr {
 public:
  FlworExpr(std::vector<FlworClause> cs, ExprPtr ret_expr)
      : Expr(ExprKind::kFlwor),
        clauses(std::move(cs)),
        ret(std::move(ret_expr)) {}
  ExprPtr Clone() const override;
  std::string ToString() const override;

  std::vector<FlworClause> clauses;
  ExprPtr ret;
};

/// \brief some/every $v in e (, …) satisfies cond.
class QuantifiedExpr : public Expr {
 public:
  struct Binding {
    std::string var;
    ExprPtr expr;
  };
  QuantifiedExpr(bool every_, std::vector<Binding> bs, ExprPtr sat)
      : Expr(ExprKind::kQuantified),
        every(every_),
        bindings(std::move(bs)),
        satisfies(std::move(sat)) {}
  ExprPtr Clone() const override;
  std::string ToString() const override;

  bool every;
  std::vector<Binding> bindings;
  ExprPtr satisfies;
};

/// \brief if (cond) then e1 else e2.
class IfExpr : public Expr {
 public:
  IfExpr(ExprPtr c, ExprPtr t, ExprPtr e)
      : Expr(ExprKind::kIf),
        cond(std::move(c)),
        then_branch(std::move(t)),
        else_branch(std::move(e)) {}
  ExprPtr Clone() const override;
  std::string ToString() const override;

  ExprPtr cond;
  ExprPtr then_branch;
  ExprPtr else_branch;
};

/// \brief Binary operator application.
class BinaryExpr : public Expr {
 public:
  BinaryExpr(BinOp o, ExprPtr l, ExprPtr r)
      : Expr(ExprKind::kBinary), op(o), lhs(std::move(l)), rhs(std::move(r)) {}
  ExprPtr Clone() const override;
  std::string ToString() const override;

  BinOp op;
  ExprPtr lhs;
  ExprPtr rhs;
};

/// \brief Unary minus.
class UnaryExpr : public Expr {
 public:
  explicit UnaryExpr(ExprPtr e) : Expr(ExprKind::kUnary), operand(std::move(e)) {}
  ExprPtr Clone() const override;
  std::string ToString() const override;

  ExprPtr operand;
};

/// \brief One path step: axis + node test + predicates.
struct PathStep {
  enum class Axis { kChild, kDescendant, kAttribute, kParent };
  enum class Test { kName, kWildcard, kText, kNode };

  Axis axis = Axis::kChild;
  Test test = Test::kName;
  std::string name;  // for Test::kName / attribute name
  std::vector<ExprPtr> predicates;

  PathStep Clone() const;
  std::string ToString() const;
};

/// \brief input/step/step… . A null input means the path starts at the
/// context item's document root ("/a/b").
class PathExpr : public Expr {
 public:
  PathExpr(ExprPtr in, std::vector<PathStep> ss)
      : Expr(ExprKind::kPath), input(std::move(in)), steps(std::move(ss)) {}
  ExprPtr Clone() const override;
  std::string ToString() const override;

  ExprPtr input;  // may be null (absolute path)
  std::vector<PathStep> steps;
};

/// \brief Predicates applied to an arbitrary expression: (e)[p1][p2].
class FilterExpr : public Expr {
 public:
  FilterExpr(ExprPtr in, std::vector<ExprPtr> preds)
      : Expr(ExprKind::kFilter),
        input(std::move(in)),
        predicates(std::move(preds)) {}
  ExprPtr Clone() const override;
  std::string ToString() const override;

  ExprPtr input;
  std::vector<ExprPtr> predicates;
};

/// \brief Function call f(a1, …, an). Builtins, user-declared functions and
/// host-registered natives share one namespace.
class FunctionCallExpr : public Expr {
 public:
  FunctionCallExpr(std::string n, std::vector<ExprPtr> as)
      : Expr(ExprKind::kFunctionCall), name(std::move(n)), args(std::move(as)) {}
  ExprPtr Clone() const override;
  std::string ToString() const override;

  std::string name;
  std::vector<ExprPtr> args;
};

/// \brief A piece of direct-constructor content: literal text or an
/// enclosed expression.
struct ContentPart {
  std::string text;  // used when expr is null
  ExprPtr expr;

  ContentPart Clone() const;
};

/// \brief Direct element constructor <name a="v{e}">content</name>.
class DirectElementExpr : public Expr {
 public:
  struct Attr {
    std::string name;
    std::vector<ContentPart> value;  // concatenated at evaluation
    Attr Clone() const;
  };

  DirectElementExpr(std::string n, std::vector<Attr> as,
                    std::vector<ContentPart> cs)
      : Expr(ExprKind::kDirectElement),
        name(std::move(n)),
        attrs(std::move(as)),
        content(std::move(cs)) {}
  ExprPtr Clone() const override;
  std::string ToString() const override;

  std::string name;
  std::vector<Attr> attrs;
  std::vector<ContentPart> content;
};

/// \brief Computed element constructor: element {name-expr} {content}.
class ComputedElementExpr : public Expr {
 public:
  ComputedElementExpr(ExprPtr n, ExprPtr c)
      : Expr(ExprKind::kComputedElement),
        name_expr(std::move(n)),
        content(std::move(c)) {}
  ExprPtr Clone() const override;
  std::string ToString() const override;

  ExprPtr name_expr;
  ExprPtr content;  // may be null for empty content
};

/// \brief Computed attribute constructor: attribute {name-expr} {content}.
class ComputedAttributeExpr : public Expr {
 public:
  ComputedAttributeExpr(ExprPtr n, ExprPtr c)
      : Expr(ExprKind::kComputedAttribute),
        name_expr(std::move(n)),
        content(std::move(c)) {}
  ExprPtr Clone() const override;
  std::string ToString() const override;

  ExprPtr name_expr;
  ExprPtr content;
};

/// \brief XCQL interval projection e?[t1,t2] (e?[t] when `hi` is null).
class IntervalProjExpr : public Expr {
 public:
  IntervalProjExpr(ExprPtr in, ExprPtr lo_, ExprPtr hi_)
      : Expr(ExprKind::kIntervalProj),
        input(std::move(in)),
        lo(std::move(lo_)),
        hi(std::move(hi_)) {}
  ExprPtr Clone() const override;
  std::string ToString() const override;

  ExprPtr input;
  ExprPtr lo;
  ExprPtr hi;  // null means point interval [lo, lo]
};

/// \brief XCQL version projection e#[v1,v2] (e#[v] when `hi` is null).
class VersionProjExpr : public Expr {
 public:
  VersionProjExpr(ExprPtr in, ExprPtr lo_, ExprPtr hi_)
      : Expr(ExprKind::kVersionProj),
        input(std::move(in)),
        lo(std::move(lo_)),
        hi(std::move(hi_)) {}
  ExprPtr Clone() const override;
  std::string ToString() const override;

  ExprPtr input;
  ExprPtr lo;
  ExprPtr hi;
};

/// \brief A user-declared function from the query prolog.
struct FunctionDecl {
  std::string name;
  std::vector<std::string> params;
  // Shared so declarations can be copied into evaluation contexts cheaply.
  std::shared_ptr<Expr> body;
};

/// \brief A prolog variable declaration: declare variable $name := expr;
struct VariableDecl {
  std::string name;
  std::shared_ptr<Expr> init;
};

/// \brief A parsed query: prolog declarations plus the body.
struct Program {
  std::vector<FunctionDecl> functions;
  std::vector<VariableDecl> variables;
  ExprPtr body;
};

}  // namespace xcql::xq

#endif  // XCQL_XQ_AST_H_
