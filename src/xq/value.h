// The XQuery data model subset used by the engine: items are nodes or
// atomic values; every expression evaluates to a flat sequence of items.
#ifndef XCQL_XQ_VALUE_H_
#define XCQL_XQ_VALUE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "temporal/datetime.h"
#include "temporal/duration.h"
#include "xml/node.h"

namespace xcql::xq {

/// \brief An atomic value: xs:boolean, xs:integer, xs:double, xs:string,
/// xs:dateTime or xs:duration.
///
/// Strings atomized from nodes are flagged `untyped`, which mirrors
/// xs:untypedAtomic: in comparisons an untyped value is cast to the other
/// operand's type.
class Atomic {
 public:
  using Variant =
      std::variant<bool, int64_t, double, std::string, DateTime, Duration>;

  Atomic() : v_(std::string()) {}
  explicit Atomic(bool b) : v_(b) {}
  explicit Atomic(int64_t i) : v_(i) {}
  explicit Atomic(double d) : v_(d) {}
  explicit Atomic(std::string s, bool untyped = false)
      : v_(std::move(s)), untyped_(untyped) {}
  explicit Atomic(DateTime dt) : v_(dt) {}
  explicit Atomic(Duration d) : v_(d) {}

  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_numeric() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_datetime() const { return std::holds_alternative<DateTime>(v_); }
  bool is_duration() const { return std::holds_alternative<Duration>(v_); }
  bool untyped() const { return untyped_; }

  bool AsBool() const { return std::get<bool>(v_); }
  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDoubleUnchecked() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }
  DateTime AsDateTime() const { return std::get<DateTime>(v_); }
  const Duration& AsDuration() const { return std::get<Duration>(v_); }

  /// \brief Numeric value: the number itself, or a parse of a (possibly
  /// untyped) string; nullopt when not convertible.
  std::optional<double> ToNumber() const;

  /// \brief Lexical form (xs:string cast).
  std::string ToStringValue() const;

  /// \brief Short type name for error messages.
  const char* TypeName() const;

  const Variant& variant() const { return v_; }

 private:
  Variant v_;
  bool untyped_ = false;
};

/// \brief One item in a sequence: a node or an atomic value.
using Item = std::variant<NodePtr, Atomic>;

inline bool IsNode(const Item& it) {
  return std::holds_alternative<NodePtr>(it);
}
inline const NodePtr& AsNode(const Item& it) { return std::get<NodePtr>(it); }
inline const Atomic& AsAtomic(const Item& it) { return std::get<Atomic>(it); }

/// \brief A flat, ordered sequence of items (sequences never nest).
using Sequence = std::vector<Item>;

/// \brief Wraps a single node as a sequence.
Sequence SingletonNode(NodePtr n);

/// \brief Wraps a single atomic as a sequence.
Sequence SingletonAtomic(Atomic a);

/// \brief Atomizes one item: atomics pass through; a node yields its string
/// value as an untyped atomic.
Atomic AtomizeItem(const Item& item);

/// \brief Atomizes every item of a sequence.
std::vector<Atomic> Atomize(const Sequence& seq);

/// \brief XQuery effective boolean value: () is false, a sequence whose
/// first item is a node is true, a singleton atomic converts by type;
/// anything else is a type error.
Result<bool> EffectiveBooleanValue(const Sequence& seq);

/// \brief Comparison operators shared by general and value comparisons.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// \brief Compares two atomics under XQuery casting rules (untyped values
/// cast to the other operand's type; numeric types compare numerically).
Result<bool> CompareAtomics(const Atomic& a, const Atomic& b, CmpOp op);

/// \brief String rendering of a whole sequence (items space-separated),
/// used by fn:string on sequences and by tests.
std::string SequenceToString(const Sequence& seq);

}  // namespace xcql::xq

#endif  // XCQL_XQ_VALUE_H_
