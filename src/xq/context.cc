#include "xq/context.h"

namespace xcql::xq {

void FunctionRegistry::RegisterNative(const std::string& name, int min_arity,
                                      int max_arity, NativeFn fn) {
  natives_[name] = NativeEntry{min_arity, max_arity, std::move(fn)};
}

void FunctionRegistry::RegisterUser(FunctionDecl decl) {
  user_[decl.name] = std::move(decl);
}

const FunctionRegistry::NativeEntry* FunctionRegistry::FindNative(
    const std::string& name) const {
  auto it = natives_.find(name);
  return it == natives_.end() ? nullptr : &it->second;
}

const FunctionDecl* FunctionRegistry::FindUser(const std::string& name) const {
  auto it = user_.find(name);
  return it == user_.end() ? nullptr : &it->second;
}

}  // namespace xcql::xq
