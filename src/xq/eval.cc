#include "xq/eval.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/string_util.h"
#include "temporal/interval.h"
#include "xq/parser.h"

namespace xcql::xq {

namespace {

// Recursion guard: deep enough for any realistic document/query, shallow
// enough to fail cleanly instead of overflowing the stack.
constexpr int kMaxDepth = 1200;

// Resolves the serialized lifespan endpoint "now" (DateTime::End after
// parsing) to the evaluation clock, per the temporal-view semantics: the
// view always shows history up to `ctx.now`.
DateTime ResolveNow(const EvalContext& ctx, DateTime t) {
  return t == DateTime::End() ? ctx.now : t;
}

Result<DateTime> ParseVtAttr(const EvalContext& ctx, const std::string& s) {
  XCQL_ASSIGN_OR_RETURN(DateTime t, DateTime::Parse(s));
  return ResolveNow(ctx, t);
}

// Converts an atomic to a dateTime bound for interval projections.
Result<DateTime> AtomicToDateTime(const EvalContext& ctx, const Atomic& a) {
  if (a.is_datetime()) return ResolveNow(ctx, a.AsDateTime());
  if (a.is_string()) return ParseVtAttr(ctx, a.AsString());
  return Status::TypeError(std::string("expected xs:dateTime bound, got ") +
                           a.TypeName() + " '" + a.ToStringValue() + "'");
}

Result<int64_t> AtomicToVersion(const Atomic& a) {
  if (a.is_int()) return a.AsInt();
  if (a.is_double()) return static_cast<int64_t>(a.AsDoubleUnchecked());
  if (a.is_string()) {
    auto v = ParseInt64(a.AsString());
    if (v) return *v;
  }
  return Status::TypeError(std::string("expected integer version bound, got ") +
                           a.TypeName());
}

// Reads the (vtFrom, vtTo) lifespan attributes of an element, if present.
Result<std::optional<Interval>> ReadLifespanAttrs(const EvalContext& ctx,
                                                  const Node& e) {
  const std::string* f = e.FindAttr("vtFrom");
  const std::string* t = e.FindAttr("vtTo");
  if (f == nullptr && t == nullptr) return std::optional<Interval>();
  DateTime from = DateTime::Start();
  DateTime to = ctx.now;
  if (f != nullptr) {
    XCQL_ASSIGN_OR_RETURN(from, ParseVtAttr(ctx, *f));
  }
  if (t != nullptr) {
    XCQL_ASSIGN_OR_RETURN(to, ParseVtAttr(ctx, *t));
  }
  return std::optional<Interval>(Interval(from, to));
}

bool IsHole(const Node& n) {
  return n.is_element() && n.name() == "hole";
}

Status ProjectNode(EvalContext& ctx, const NodePtr& node, DateTime tb,
                   DateTime te, Sequence* out, int depth);

Status ProjectChildrenInto(EvalContext& ctx, const Node& src, DateTime tb,
                           DateTime te, Node* dst, int depth) {
  if (depth > kMaxDepth) {
    return Status::Internal("interval projection recursion too deep");
  }
  for (const NodePtr& c : src.children()) {
    Sequence projected;
    XCQL_RETURN_NOT_OK(ProjectNode(ctx, c, tb, te, &projected, depth + 1));
    for (auto& item : projected) {
      if (IsNode(item)) dst->AddChild(AsNode(item));
    }
  }
  return Status::OK();
}

// Core of interval_projection (paper §6) for one node.
Status ProjectNode(EvalContext& ctx, const NodePtr& node, DateTime tb,
                   DateTime te, Sequence* out, int depth) {
  if (depth > kMaxDepth) {
    return Status::Internal("interval projection recursion too deep");
  }
  if (!node->is_element()) {
    out->emplace_back(Node::Text(node->text()));
    if (node->is_attribute()) {
      out->back() = Node::Attribute(node->name(), node->text());
    }
    return Status::OK();
  }
  if (IsHole(*node) && ctx.hole_resolver != nullptr) {
    XCQL_ASSIGN_OR_RETURN(std::vector<NodePtr> versions,
                          ctx.hole_resolver->Resolve(ctx, *node));
    for (const NodePtr& v : versions) {
      XCQL_RETURN_NOT_OK(ProjectNode(ctx, v, tb, te, out, depth + 1));
    }
    return Status::OK();
  }
  XCQL_ASSIGN_OR_RETURN(std::optional<Interval> life,
                        ReadLifespanAttrs(ctx, *node));
  if (!life.has_value()) {
    // Snapshot element: keep it, project the children.
    NodePtr copy = Node::Element(node->name());
    for (const auto& [k, v] : node->attrs()) copy->SetAttr(k, v);
    XCQL_RETURN_NOT_OK(ProjectChildrenInto(ctx, *node, tb, te, copy.get(),
                                           depth));
    out->emplace_back(std::move(copy));
    return Status::OK();
  }
  if (life->end() < tb || life->begin() > te) return Status::OK();  // pruned
  NodePtr copy = Node::Element(node->name());
  for (const auto& [k, v] : node->attrs()) {
    if (k == "vtFrom" || k == "vtTo") continue;
    copy->SetAttr(k, v);
  }
  copy->SetAttr("vtFrom", std::max(life->begin(), tb).ToString());
  copy->SetAttr("vtTo", std::min(life->end(), te).ToString());
  XCQL_RETURN_NOT_OK(ProjectChildrenInto(ctx, *node, tb, te, copy.get(),
                                         depth));
  out->emplace_back(std::move(copy));
  return Status::OK();
}

struct SortKey {
  // Type rank orders heterogeneous keys deterministically:
  // empty < boolean < number < dateTime < duration < string.
  int rank = 0;
  bool b = false;
  double num = 0;
  int64_t ticks = 0;
  int64_t months = 0;
  std::string str;

  static SortKey From(const Sequence& seq) {
    SortKey k;
    if (seq.empty()) return k;
    Atomic a = AtomizeItem(seq.front());
    if (a.is_bool()) {
      k.rank = 1;
      k.b = a.AsBool();
    } else if (a.is_numeric()) {
      k.rank = 2;
      k.num = *a.ToNumber();
    } else if (a.is_datetime()) {
      k.rank = 3;
      k.ticks = a.AsDateTime().seconds();
    } else if (a.is_duration()) {
      k.rank = 4;
      k.months = a.AsDuration().months();
      k.ticks = a.AsDuration().seconds();
    } else {
      // Untyped strings that look numeric sort numerically, so documents
      // with unannotated numbers (the common case) order as expected.
      auto n = a.untyped() ? ParseDouble(a.AsString()) : std::nullopt;
      if (n) {
        k.rank = 2;
        k.num = *n;
      } else {
        k.rank = 5;
        k.str = a.AsString();
      }
    }
    return k;
  }

  std::weak_ordering Compare(const SortKey& o) const {
    if (auto c = rank <=> o.rank; c != 0) return c;
    switch (rank) {
      case 1:
        return b <=> o.b;
      case 2:
        return num < o.num    ? std::weak_ordering::less
               : num > o.num  ? std::weak_ordering::greater
                              : std::weak_ordering::equivalent;
      case 3:
        return ticks <=> o.ticks;
      case 4:
        if (auto c = months <=> o.months; c != 0) return c;
        return ticks <=> o.ticks;
      case 5:
        return str.compare(o.str) <=> 0;
      default:
        return std::weak_ordering::equivalent;
    }
  }
};

}  // namespace

Result<Sequence> IntervalProjection(EvalContext& ctx, const Sequence& input,
                                    DateTime tb, DateTime te) {
  Sequence out;
  for (const Item& item : input) {
    if (!IsNode(item)) {
      out.push_back(item);
      continue;
    }
    XCQL_RETURN_NOT_OK(ProjectNode(ctx, AsNode(item), tb, te, &out, 0));
  }
  return out;
}

Result<Sequence> VersionProjection(EvalContext& ctx, const Sequence& input,
                                   int64_t vb, int64_t ve) {
  Sequence out;
  int64_t pos = 0;
  for (const Item& item : input) {
    ++pos;
    if (pos < vb || pos > ve) continue;
    if (!IsNode(item) || !AsNode(item)->is_element()) {
      out.push_back(item);
      continue;
    }
    const NodePtr& node = AsNode(item);
    XCQL_ASSIGN_OR_RETURN(std::optional<Interval> life,
                          ReadLifespanAttrs(ctx, *node));
    // A snapshot element counts as a single version spanning all time.
    Interval span = life.value_or(Interval(DateTime::Start(), ctx.now));
    NodePtr copy = Node::Element(node->name());
    for (const auto& [k, v] : node->attrs()) copy->SetAttr(k, v);
    XCQL_RETURN_NOT_OK(ProjectChildrenInto(ctx, *node, span.begin(),
                                           span.end(), copy.get(), 0));
    out.emplace_back(std::move(copy));
  }
  return out;
}

Result<DateTime> LifespanFrom(EvalContext& ctx, const Node& e) {
  if (!e.is_element()) return DateTime::Start();
  XCQL_ASSIGN_OR_RETURN(std::optional<Interval> life,
                        ReadLifespanAttrs(ctx, e));
  if (life.has_value()) return life->begin();
  DateTime best = DateTime::End();
  bool any = false;
  for (const NodePtr& c : e.children()) {
    if (!c->is_element()) continue;
    if (IsHole(*c) && ctx.hole_resolver != nullptr) {
      XCQL_ASSIGN_OR_RETURN(std::vector<NodePtr> versions,
                            ctx.hole_resolver->Resolve(ctx, *c));
      for (const NodePtr& v : versions) {
        XCQL_ASSIGN_OR_RETURN(DateTime f, LifespanFrom(ctx, *v));
        best = std::min(best, f);
        any = true;
      }
      continue;
    }
    XCQL_ASSIGN_OR_RETURN(DateTime f, LifespanFrom(ctx, *c));
    best = std::min(best, f);
    any = true;
  }
  return any ? best : DateTime::Start();
}

Result<DateTime> LifespanTo(EvalContext& ctx, const Node& e) {
  if (!e.is_element()) return ctx.now;
  XCQL_ASSIGN_OR_RETURN(std::optional<Interval> life,
                        ReadLifespanAttrs(ctx, e));
  if (life.has_value()) return ResolveNow(ctx, life->end());
  DateTime best = DateTime::Start();
  bool any = false;
  for (const NodePtr& c : e.children()) {
    if (!c->is_element()) continue;
    if (IsHole(*c) && ctx.hole_resolver != nullptr) {
      XCQL_ASSIGN_OR_RETURN(std::vector<NodePtr> versions,
                            ctx.hole_resolver->Resolve(ctx, *c));
      for (const NodePtr& v : versions) {
        XCQL_ASSIGN_OR_RETURN(DateTime t, LifespanTo(ctx, *v));
        best = std::max(best, t);
        any = true;
      }
      continue;
    }
    XCQL_ASSIGN_OR_RETURN(DateTime t, LifespanTo(ctx, *c));
    best = std::max(best, t);
    any = true;
  }
  return any ? best : ctx.now;
}

// ---------------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------------

Evaluator::Evaluator(EvalContext* ctx) : ctx_(ctx) {}

void Evaluator::Bind(const std::string& name, Sequence value) {
  vars_.emplace_back(name, std::move(value));
}

const Sequence* Evaluator::Lookup(const std::string& name) const {
  for (auto it = vars_.rbegin(); it != vars_.rend(); ++it) {
    if (it->first == name) return &it->second;
  }
  return nullptr;
}

Result<Sequence> Evaluator::Eval(const Expr& e) {
  if (ctx_->functions == nullptr) {
    return Status::InvalidArgument("EvalContext has no function registry");
  }
  return EvalExpr(e);
}

Result<Sequence> Evaluator::EvalProgram(const Program& prog) {
  if (ctx_->functions == nullptr) {
    return Status::InvalidArgument("EvalContext has no function registry");
  }
  if (prog.functions.empty() && prog.variables.empty()) {
    return EvalExpr(*prog.body);
  }
  // Prolog functions extend a per-call copy of the registry.
  FunctionRegistry extended = *ctx_->functions;
  for (const FunctionDecl& d : prog.functions) extended.RegisterUser(d);
  const FunctionRegistry* saved = ctx_->functions;
  ctx_->functions = &extended;
  size_t var_mark = vars_.size();
  Status st;
  for (const VariableDecl& v : prog.variables) {
    Result<Sequence> init = EvalExpr(*v.init);
    if (!init.ok()) {
      st = init.status();
      break;
    }
    vars_.emplace_back(v.name, std::move(init).MoveValue());
  }
  Result<Sequence> r = st.ok() ? EvalExpr(*prog.body) : Result<Sequence>(st);
  vars_.resize(var_mark);
  ctx_->functions = saved;
  return r;
}

Result<Sequence> Evaluator::EvalExpr(const Expr& e) {
  if (++depth_ > kMaxDepth) {
    --depth_;
    return Status::Internal("expression evaluation recursion too deep");
  }
  struct DepthGuard {
    int* d;
    ~DepthGuard() { --*d; }
  } guard{&depth_};

  switch (e.kind()) {
    case ExprKind::kLiteral:
      return SingletonAtomic(static_cast<const LiteralExpr&>(e).value);
    case ExprKind::kVarRef: {
      const auto& v = static_cast<const VarRefExpr&>(e);
      const Sequence* s = Lookup(v.name);
      if (s == nullptr) {
        return Status::NotFound("undefined variable $" + v.name);
      }
      return *s;
    }
    case ExprKind::kContextItem: {
      if (!focus_.has) {
        return Status::TypeError("context item is undefined here");
      }
      Sequence s;
      s.push_back(focus_.item);
      return s;
    }
    case ExprKind::kSequence: {
      const auto& seq = static_cast<const SequenceExpr&>(e);
      Sequence out;
      for (const auto& item : seq.items) {
        XCQL_ASSIGN_OR_RETURN(Sequence r, EvalExpr(*item));
        out.insert(out.end(), std::make_move_iterator(r.begin()),
                   std::make_move_iterator(r.end()));
      }
      return out;
    }
    case ExprKind::kFlwor:
      return EvalFlwor(static_cast<const FlworExpr&>(e));
    case ExprKind::kQuantified:
      return EvalQuantified(static_cast<const QuantifiedExpr&>(e));
    case ExprKind::kIf: {
      const auto& i = static_cast<const IfExpr&>(e);
      XCQL_ASSIGN_OR_RETURN(Sequence c, EvalExpr(*i.cond));
      XCQL_ASSIGN_OR_RETURN(bool b, EffectiveBooleanValue(c));
      return EvalExpr(b ? *i.then_branch : *i.else_branch);
    }
    case ExprKind::kBinary:
      return EvalBinary(static_cast<const BinaryExpr&>(e));
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      XCQL_ASSIGN_OR_RETURN(Sequence r, EvalExpr(*u.operand));
      if (r.empty()) return r;
      if (r.size() != 1) {
        return Status::TypeError("unary minus on a multi-item sequence");
      }
      Atomic a = AtomizeItem(r.front());
      if (a.is_int()) return SingletonAtomic(Atomic(-a.AsInt()));
      auto n = a.ToNumber();
      if (!n) {
        return Status::TypeError(std::string("unary minus on ") + a.TypeName());
      }
      return SingletonAtomic(Atomic(-*n));
    }
    case ExprKind::kPath:
      return EvalPath(static_cast<const PathExpr&>(e));
    case ExprKind::kFilter: {
      const auto& f = static_cast<const FilterExpr&>(e);
      XCQL_ASSIGN_OR_RETURN(Sequence in, EvalExpr(*f.input));
      return ApplyPredicates(f.predicates, std::move(in));
    }
    case ExprKind::kFunctionCall:
      return EvalFunctionCall(static_cast<const FunctionCallExpr&>(e));
    case ExprKind::kDirectElement:
      return EvalDirectElement(static_cast<const DirectElementExpr&>(e));
    case ExprKind::kComputedElement:
      return EvalComputedElement(static_cast<const ComputedElementExpr&>(e));
    case ExprKind::kComputedAttribute:
      return EvalComputedAttribute(
          static_cast<const ComputedAttributeExpr&>(e));
    case ExprKind::kIntervalProj:
      return EvalIntervalProj(static_cast<const IntervalProjExpr&>(e));
    case ExprKind::kVersionProj:
      return EvalVersionProj(static_cast<const VersionProjExpr&>(e));
  }
  return Status::Internal("unhandled expression kind");
}

// ---- FLWOR ----------------------------------------------------------------

Result<Sequence> Evaluator::EvalFlwor(const FlworExpr& e) {
  Sequence out;
  std::vector<std::pair<std::vector<Atomic>, Sequence>> ordered;
  XCQL_RETURN_NOT_OK(EvalFlworClauses(e, 0, &ordered, &out));
  if (!ordered.empty() || HasOrderBy(e)) {
    // Sort collected tuples by their keys (stable, empty-least).
    struct Row {
      std::vector<SortKey> keys;
      Sequence* seq;
    };
    std::vector<Row> rows;
    rows.reserve(ordered.size());
    for (auto& [keys, seq] : ordered) {
      Row r;
      for (const Atomic& a : keys) {
        Sequence s;
        if (!(a.is_string() && a.AsString().empty() && a.untyped())) {
          s.push_back(a);
        }
        r.keys.push_back(SortKey::From(s));
      }
      r.seq = &seq;
      rows.push_back(std::move(r));
    }
    // Direction flags were folded into the keys during collection (negated
    // numeric trick does not generalize), so we re-read them here.
    const std::vector<FlworClause::OrderKey>* keyspec = nullptr;
    for (const auto& c : e.clauses) {
      if (c.kind == FlworClause::Kind::kOrderBy) keyspec = &c.keys;
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [&](const Row& a, const Row& b) {
                       for (size_t i = 0; i < a.keys.size(); ++i) {
                         auto c = a.keys[i].Compare(b.keys[i]);
                         bool desc = keyspec != nullptr &&
                                     i < keyspec->size() &&
                                     (*keyspec)[i].descending;
                         if (c == std::weak_ordering::less) return !desc;
                         if (c == std::weak_ordering::greater) return desc;
                       }
                       return false;
                     });
    for (const Row& r : rows) {
      out.insert(out.end(), r.seq->begin(), r.seq->end());
    }
  }
  return out;
}

bool Evaluator::HasOrderBy(const FlworExpr& e) {
  for (const auto& c : e.clauses) {
    if (c.kind == FlworClause::Kind::kOrderBy) return true;
  }
  return false;
}

Status Evaluator::EvalFlworClauses(
    const FlworExpr& e, size_t idx,
    std::vector<std::pair<std::vector<Atomic>, Sequence>>* ordered,
    Sequence* out) {
  if (idx == e.clauses.size()) {
    XCQL_ASSIGN_OR_RETURN(Sequence r, EvalExpr(*e.ret));
    out->insert(out->end(), std::make_move_iterator(r.begin()),
                std::make_move_iterator(r.end()));
    return Status::OK();
  }
  const FlworClause& c = e.clauses[idx];
  switch (c.kind) {
    case FlworClause::Kind::kFor: {
      XCQL_ASSIGN_OR_RETURN(Sequence seq, EvalExpr(*c.expr));
      int64_t pos = 0;
      for (Item& item : seq) {
        ++pos;
        Sequence binding;
        binding.push_back(item);
        vars_.emplace_back(c.var, std::move(binding));
        size_t mark = vars_.size();
        if (!c.pos_var.empty()) {
          vars_.emplace_back(c.pos_var, SingletonAtomic(Atomic(pos)));
        }
        Status st = EvalFlworClauses(e, idx + 1, ordered, out);
        vars_.resize(mark - 1);
        XCQL_RETURN_NOT_OK(st);
      }
      return Status::OK();
    }
    case FlworClause::Kind::kLet: {
      XCQL_ASSIGN_OR_RETURN(Sequence seq, EvalExpr(*c.expr));
      vars_.emplace_back(c.var, std::move(seq));
      Status st = EvalFlworClauses(e, idx + 1, ordered, out);
      vars_.pop_back();
      return st;
    }
    case FlworClause::Kind::kWhere: {
      XCQL_ASSIGN_OR_RETURN(Sequence cond, EvalExpr(*c.expr));
      XCQL_ASSIGN_OR_RETURN(bool b, EffectiveBooleanValue(cond));
      if (!b) return Status::OK();
      return EvalFlworClauses(e, idx + 1, ordered, out);
    }
    case FlworClause::Kind::kOrderBy: {
      std::vector<Atomic> keys;
      for (const auto& k : c.keys) {
        XCQL_ASSIGN_OR_RETURN(Sequence kv, EvalExpr(*k.key));
        if (kv.empty()) {
          keys.emplace_back(std::string(), /*untyped=*/true);  // empty marker
        } else {
          keys.push_back(AtomizeItem(kv.front()));
        }
      }
      Sequence tuple_out;
      XCQL_RETURN_NOT_OK(EvalFlworClauses(e, idx + 1, ordered, &tuple_out));
      ordered->emplace_back(std::move(keys), std::move(tuple_out));
      return Status::OK();
    }
  }
  return Status::Internal("unhandled FLWOR clause");
}

Result<Sequence> Evaluator::EvalQuantified(const QuantifiedExpr& e) {
  // Depth-first over the bindings.
  bool result = e.every;
  Status st = QuantifyFrom(e, 0, &result);
  XCQL_RETURN_NOT_OK(st);
  return SingletonAtomic(Atomic(result));
}

Status Evaluator::QuantifyFrom(const QuantifiedExpr& e, size_t idx,
                               bool* result) {
  // Early exit once decided.
  if (e.every ? !*result : *result) return Status::OK();
  if (idx == e.bindings.size()) {
    XCQL_ASSIGN_OR_RETURN(Sequence s, EvalExpr(*e.satisfies));
    XCQL_ASSIGN_OR_RETURN(bool b, EffectiveBooleanValue(s));
    if (e.every) {
      if (!b) *result = false;
    } else {
      if (b) *result = true;
    }
    return Status::OK();
  }
  XCQL_ASSIGN_OR_RETURN(Sequence seq, EvalExpr(*e.bindings[idx].expr));
  for (Item& item : seq) {
    Sequence binding;
    binding.push_back(item);
    vars_.emplace_back(e.bindings[idx].var, std::move(binding));
    Status st = QuantifyFrom(e, idx + 1, result);
    vars_.pop_back();
    XCQL_RETURN_NOT_OK(st);
    if (e.every ? !*result : *result) return Status::OK();
  }
  return Status::OK();
}

// ---- Operators --------------------------------------------------------------

Result<Sequence> Evaluator::EvalBinary(const BinaryExpr& e) {
  // Logical operators: effective boolean values, short-circuit.
  if (e.op == BinOp::kAnd || e.op == BinOp::kOr) {
    XCQL_ASSIGN_OR_RETURN(Sequence l, EvalExpr(*e.lhs));
    XCQL_ASSIGN_OR_RETURN(bool lb, EffectiveBooleanValue(l));
    if (e.op == BinOp::kAnd && !lb) return SingletonAtomic(Atomic(false));
    if (e.op == BinOp::kOr && lb) return SingletonAtomic(Atomic(true));
    XCQL_ASSIGN_OR_RETURN(Sequence r, EvalExpr(*e.rhs));
    XCQL_ASSIGN_OR_RETURN(bool rb, EffectiveBooleanValue(r));
    return SingletonAtomic(Atomic(rb));
  }

  XCQL_ASSIGN_OR_RETURN(Sequence l, EvalExpr(*e.lhs));
  XCQL_ASSIGN_OR_RETURN(Sequence r, EvalExpr(*e.rhs));

  auto cmp_op = [](BinOp op) {
    switch (op) {
      case BinOp::kGenEq:
      case BinOp::kValEq:
        return CmpOp::kEq;
      case BinOp::kGenNe:
      case BinOp::kValNe:
        return CmpOp::kNe;
      case BinOp::kGenLt:
      case BinOp::kValLt:
        return CmpOp::kLt;
      case BinOp::kGenLe:
      case BinOp::kValLe:
        return CmpOp::kLe;
      case BinOp::kGenGt:
      case BinOp::kValGt:
        return CmpOp::kGt;
      default:
        return CmpOp::kGe;
    }
  };

  switch (e.op) {
    case BinOp::kGenEq:
    case BinOp::kGenNe:
    case BinOp::kGenLt:
    case BinOp::kGenLe:
    case BinOp::kGenGt:
    case BinOp::kGenGe: {
      // General comparison: existential over the two sequences.
      std::vector<Atomic> la = Atomize(l);
      std::vector<Atomic> ra = Atomize(r);
      for (const Atomic& a : la) {
        for (const Atomic& b : ra) {
          XCQL_ASSIGN_OR_RETURN(bool ok, CompareAtomics(a, b, cmp_op(e.op)));
          if (ok) return SingletonAtomic(Atomic(true));
        }
      }
      return SingletonAtomic(Atomic(false));
    }
    case BinOp::kValEq:
    case BinOp::kValNe:
    case BinOp::kValLt:
    case BinOp::kValLe:
    case BinOp::kValGt:
    case BinOp::kValGe: {
      if (l.empty() || r.empty()) return Sequence{};
      if (l.size() != 1 || r.size() != 1) {
        return Status::TypeError(
            "value comparison requires singleton operands");
      }
      XCQL_ASSIGN_OR_RETURN(
          bool ok, CompareAtomics(AtomizeItem(l.front()),
                                  AtomizeItem(r.front()), cmp_op(e.op)));
      return SingletonAtomic(Atomic(ok));
    }
    case BinOp::kTo: {
      if (l.empty() || r.empty()) return Sequence{};
      Atomic la = AtomizeItem(l.front());
      Atomic ra = AtomizeItem(r.front());
      XCQL_ASSIGN_OR_RETURN(int64_t lo, AtomicToVersion(la));
      XCQL_ASSIGN_OR_RETURN(int64_t hi, AtomicToVersion(ra));
      Sequence out;
      for (int64_t i = lo; i <= hi; ++i) out.emplace_back(Atomic(i));
      return out;
    }
    case BinOp::kUnion:
    case BinOp::kIntersect:
    case BinOp::kExcept: {
      // Node-set operators by node identity, preserving the left operand's
      // order (we do not maintain a global document order).
      for (const Sequence* side : {&l, &r}) {
        for (const Item& item : *side) {
          if (!IsNode(item)) {
            return Status::TypeError("set operands must be nodes");
          }
        }
      }
      std::unordered_set<const Node*> right;
      for (const Item& item : r) right.insert(AsNode(item).get());
      Sequence out;
      std::unordered_set<const Node*> seen;
      if (e.op == BinOp::kUnion) {
        for (Sequence* side : {&l, &r}) {
          for (Item& item : *side) {
            if (seen.insert(AsNode(item).get()).second) {
              out.push_back(std::move(item));
            }
          }
        }
        return out;
      }
      for (Item& item : l) {
        bool in_right = right.count(AsNode(item).get()) > 0;
        if ((e.op == BinOp::kIntersect) != in_right) continue;
        if (seen.insert(AsNode(item).get()).second) {
          out.push_back(std::move(item));
        }
      }
      return out;
    }
    case BinOp::kBefore:
    case BinOp::kAfter:
    case BinOp::kMeets:
    case BinOp::kOverlaps:
    case BinOp::kContains:
    case BinOp::kDuring: {
      // XCQL interval relations: existential over the lifespans of the two
      // sequences (elements by lifespan; dateTimes as point intervals).
      // `overlaps` means "share at least one instant" (symmetric), which is
      // the useful reading for coincidence queries; the strict Allen
      // overlap is expressible as (a overlaps b and not(a contains b) …).
      for (const Item& a : l) {
        XCQL_ASSIGN_OR_RETURN(Interval ia, ItemLifespan(a));
        for (const Item& b : r) {
          XCQL_ASSIGN_OR_RETURN(Interval ib, ItemLifespan(b));
          bool hit = false;
          switch (e.op) {
            case BinOp::kBefore:
              hit = ia.Before(ib);
              break;
            case BinOp::kAfter:
              hit = ia.After(ib);
              break;
            case BinOp::kMeets:
              hit = ia.Meets(ib);
              break;
            case BinOp::kOverlaps:
              hit = ia.Intersects(ib);
              break;
            case BinOp::kContains:
              hit = ia.ContainsInterval(ib);
              break;
            default:
              hit = ia.During(ib);
          }
          if (hit) return SingletonAtomic(Atomic(true));
        }
      }
      return SingletonAtomic(Atomic(false));
    }
    default: {
      if (l.empty() || r.empty()) return Sequence{};
      if (l.size() != 1 || r.size() != 1) {
        return Status::TypeError("arithmetic requires singleton operands");
      }
      return EvalArithmetic(e.op, AtomizeItem(l.front()),
                            AtomizeItem(r.front()));
    }
  }
}

Result<Interval> Evaluator::ItemLifespan(const Item& item) {
  if (IsNode(item)) {
    const NodePtr& n = AsNode(item);
    XCQL_ASSIGN_OR_RETURN(DateTime f, LifespanFrom(*ctx_, *n));
    XCQL_ASSIGN_OR_RETURN(DateTime t, LifespanTo(*ctx_, *n));
    return Interval(f, t);
  }
  XCQL_ASSIGN_OR_RETURN(DateTime d, AtomicToDateTime(*ctx_, AsAtomic(item)));
  return Interval::Point(d);
}

Result<Sequence> Evaluator::EvalArithmetic(BinOp op, const Atomic& a,
                                           const Atomic& b) {
  // Temporal arithmetic first: dateTime ± duration, dateTime - dateTime,
  // duration ± duration, duration * number.
  auto as_datetime = [&](const Atomic& x) -> std::optional<DateTime> {
    if (x.is_datetime()) return ResolveNow(*ctx_, x.AsDateTime());
    if (x.is_string()) {
      auto r = DateTime::Parse(x.AsString());
      if (r.ok()) return ResolveNow(*ctx_, r.value());
    }
    return std::nullopt;
  };
  auto as_duration = [&](const Atomic& x) -> std::optional<Duration> {
    if (x.is_duration()) return x.AsDuration();
    if (x.is_string()) {
      auto r = Duration::Parse(x.AsString());
      if (r.ok()) return r.value();
    }
    return std::nullopt;
  };

  if (a.is_datetime() || b.is_datetime() || a.is_duration() ||
      b.is_duration()) {
    if (op == BinOp::kPlus || op == BinOp::kMinus) {
      auto da = as_datetime(a);
      auto db = as_datetime(b);
      auto ua = as_duration(a);
      auto ub = as_duration(b);
      if (da && ub) {
        DateTime r = op == BinOp::kPlus ? da->Add(*ub) : da->Subtract(*ub);
        return SingletonAtomic(Atomic(r));
      }
      if (ua && db && op == BinOp::kPlus) {
        return SingletonAtomic(Atomic(db->Add(*ua)));
      }
      if (da && db && op == BinOp::kMinus) {
        return SingletonAtomic(
            Atomic(Duration::FromSeconds(da->DiffSeconds(*db))));
      }
      if (ua && ub) {
        Duration r = op == BinOp::kPlus
                         ? Duration(ua->months() + ub->months(),
                                    ua->seconds() + ub->seconds())
                         : Duration(ua->months() - ub->months(),
                                    ua->seconds() - ub->seconds());
        return SingletonAtomic(Atomic(r));
      }
    }
    if (op == BinOp::kMul) {
      auto ua = as_duration(a);
      auto ub = as_duration(b);
      auto na = a.ToNumber();
      auto nb = b.ToNumber();
      if (ua && nb) {
        return SingletonAtomic(
            Atomic(Duration(static_cast<int64_t>(ua->months() * *nb),
                            static_cast<int64_t>(ua->seconds() * *nb))));
      }
      if (ub && na) {
        return SingletonAtomic(
            Atomic(Duration(static_cast<int64_t>(ub->months() * *na),
                            static_cast<int64_t>(ub->seconds() * *na))));
      }
    }
    return Status::TypeError(std::string("invalid temporal arithmetic: ") +
                             a.TypeName() + " " + BinOpName(op) + " " +
                             b.TypeName());
  }

  // Mixed string/number operands: strings must parse as numbers.
  auto na = a.ToNumber();
  auto nb = b.ToNumber();
  if (!na || !nb) {
    return Status::TypeError(std::string("arithmetic on ") + a.TypeName() +
                             " '" + a.ToStringValue() + "' and " +
                             b.TypeName() + " '" + b.ToStringValue() + "'");
  }
  bool both_int = a.is_int() && b.is_int();
  switch (op) {
    case BinOp::kPlus:
      if (both_int) return SingletonAtomic(Atomic(a.AsInt() + b.AsInt()));
      return SingletonAtomic(Atomic(*na + *nb));
    case BinOp::kMinus:
      if (both_int) return SingletonAtomic(Atomic(a.AsInt() - b.AsInt()));
      return SingletonAtomic(Atomic(*na - *nb));
    case BinOp::kMul:
      if (both_int) return SingletonAtomic(Atomic(a.AsInt() * b.AsInt()));
      return SingletonAtomic(Atomic(*na * *nb));
    case BinOp::kDiv:
      if (*nb == 0) {
        return Status::TypeError("division by zero");
      }
      return SingletonAtomic(Atomic(*na / *nb));
    case BinOp::kIdiv: {
      if (*nb == 0) return Status::TypeError("integer division by zero");
      return SingletonAtomic(
          Atomic(static_cast<int64_t>(std::trunc(*na / *nb))));
    }
    case BinOp::kMod: {
      if (*nb == 0) return Status::TypeError("modulo by zero");
      if (both_int) {
        return SingletonAtomic(Atomic(a.AsInt() % b.AsInt()));
      }
      return SingletonAtomic(Atomic(std::fmod(*na, *nb)));
    }
    default:
      return Status::Internal("unhandled arithmetic operator");
  }
}

// ---- Paths ------------------------------------------------------------------

namespace {

void CollectDescendants(const NodePtr& n, std::vector<NodePtr>* out) {
  for (const NodePtr& c : n->children()) {
    out->push_back(c);
    if (c->is_element()) CollectDescendants(c, out);
  }
}

bool MatchesTest(const Node& n, const PathStep& step) {
  switch (step.test) {
    case PathStep::Test::kName:
      return n.is_element() && n.name() == step.name;
    case PathStep::Test::kWildcard:
      return n.is_element();
    case PathStep::Test::kText:
      return n.is_text();
    case PathStep::Test::kNode:
      return true;
  }
  return false;
}

}  // namespace

Result<Sequence> Evaluator::EvalPath(const PathExpr& e) {
  Sequence current;
  if (e.input != nullptr) {
    XCQL_ASSIGN_OR_RETURN(current, EvalExpr(*e.input));
  } else {
    // Absolute path: root of the context item's tree.
    if (!focus_.has || !IsNode(focus_.item)) {
      return Status::TypeError(
          "absolute path requires a node context item");
    }
    Node* root = AsNode(focus_.item).get();
    while (root->parent() != nullptr) root = root->parent();
    current = SingletonNode(root->shared_from_this());
  }
  for (const PathStep& step : e.steps) {
    XCQL_ASSIGN_OR_RETURN(current, EvalStep(step, current));
  }
  return current;
}

Result<Sequence> Evaluator::EvalStep(const PathStep& step,
                                     const Sequence& input) {
  Sequence out;
  std::unordered_set<const Node*> seen;  // dedup for the descendant axis
  for (const Item& item : input) {
    if (!IsNode(item)) {
      return Status::TypeError("path step applied to an atomic value");
    }
    const NodePtr& node = AsNode(item);
    Sequence matches;
    switch (step.axis) {
      case PathStep::Axis::kChild: {
        for (const NodePtr& c : node->children()) {
          if (MatchesTest(*c, step)) matches.emplace_back(c);
        }
        break;
      }
      case PathStep::Axis::kDescendant: {
        std::vector<NodePtr> desc;
        CollectDescendants(node, &desc);
        for (const NodePtr& d : desc) {
          if (MatchesTest(*d, step) && seen.insert(d.get()).second) {
            matches.emplace_back(d);
          }
        }
        break;
      }
      case PathStep::Axis::kAttribute: {
        if (step.test == PathStep::Test::kWildcard) {
          for (const auto& [k, v] : node->attrs()) {
            matches.emplace_back(Node::Attribute(k, v));
          }
        } else {
          const std::string* v = node->FindAttr(step.name);
          if (v != nullptr) {
            matches.emplace_back(Node::Attribute(step.name, *v));
          }
        }
        break;
      }
      case PathStep::Axis::kParent: {
        if (node->parent() != nullptr) {
          matches.emplace_back(node->parent()->shared_from_this());
        }
        break;
      }
    }
    if (!step.predicates.empty()) {
      XCQL_ASSIGN_OR_RETURN(matches,
                            ApplyPredicates(step.predicates,
                                            std::move(matches)));
    }
    out.insert(out.end(), std::make_move_iterator(matches.begin()),
               std::make_move_iterator(matches.end()));
  }
  return out;
}

Result<Sequence> Evaluator::ApplyPredicates(const std::vector<ExprPtr>& preds,
                                            Sequence input) {
  for (const ExprPtr& pred : preds) {
    Sequence kept;
    Focus saved = focus_;
    int64_t size = static_cast<int64_t>(input.size());
    Status st;
    for (int64_t i = 0; i < size; ++i) {
      focus_.has = true;
      focus_.item = input[static_cast<size_t>(i)];
      focus_.pos = i + 1;
      focus_.size = size;
      Result<Sequence> r = EvalExpr(*pred);
      if (!r.ok()) {
        st = r.status();
        break;
      }
      const Sequence& rv = r.value();
      // A singleton numeric predicate selects by position.
      if (rv.size() == 1 && !IsNode(rv.front()) &&
          AsAtomic(rv.front()).is_numeric()) {
        double want = *AsAtomic(rv.front()).ToNumber();
        if (static_cast<double>(i + 1) == want) {
          kept.push_back(input[static_cast<size_t>(i)]);
        }
        continue;
      }
      Result<bool> b = EffectiveBooleanValue(rv);
      if (!b.ok()) {
        st = b.status();
        break;
      }
      if (b.value()) kept.push_back(input[static_cast<size_t>(i)]);
    }
    focus_ = saved;
    XCQL_RETURN_NOT_OK(st);
    input = std::move(kept);
  }
  return input;
}

// ---- Functions ---------------------------------------------------------------

Result<Sequence> Evaluator::EvalFunctionCall(const FunctionCallExpr& e) {
  // Focus- and projection-dependent builtins are evaluator-internal.
  if (e.name == "position" && e.args.empty()) {
    if (!focus_.has) return Status::TypeError("position() without focus");
    return SingletonAtomic(Atomic(focus_.pos));
  }
  if (e.name == "last" && e.args.empty()) {
    if (!focus_.has) return Status::TypeError("last() without focus");
    return SingletonAtomic(Atomic(focus_.size));
  }
  if (e.name == "xcql:now" && e.args.empty()) {
    return SingletonAtomic(Atomic(ctx_->now));
  }
  if (e.name == "xcql:start" && e.args.empty()) {
    return SingletonAtomic(Atomic(DateTime::Start()));
  }
  if (e.name == "xcql:last" && e.args.empty()) {
    if (version_last_ < 0) {
      return Status::TypeError("'last' used outside a version projection");
    }
    return SingletonAtomic(Atomic(version_last_));
  }

  std::vector<Sequence> args;
  args.reserve(e.args.size());
  for (const ExprPtr& a : e.args) {
    XCQL_ASSIGN_OR_RETURN(Sequence s, EvalExpr(*a));
    args.push_back(std::move(s));
  }

  const FunctionRegistry::NativeEntry* native =
      ctx_->functions->FindNative(e.name);
  if (native != nullptr) {
    int n = static_cast<int>(args.size());
    if (n < native->min_arity ||
        (native->max_arity >= 0 && n > native->max_arity)) {
      return Status::InvalidArgument(
          StringPrintf("wrong number of arguments (%d) to %s()", n,
                       e.name.c_str()));
    }
    return native->fn(*ctx_, args);
  }

  const FunctionDecl* user = ctx_->functions->FindUser(e.name);
  if (user != nullptr) {
    if (args.size() != user->params.size()) {
      return Status::InvalidArgument(
          StringPrintf("wrong number of arguments (%zu, expected %zu) to %s()",
                       args.size(), user->params.size(), e.name.c_str()));
    }
    // Function bodies see only their parameters (XQuery function scoping).
    std::vector<std::pair<std::string, Sequence>> saved_vars;
    saved_vars.swap(vars_);
    Focus saved_focus = focus_;
    focus_ = Focus{};
    for (size_t i = 0; i < args.size(); ++i) {
      vars_.emplace_back(user->params[i], std::move(args[i]));
    }
    Result<Sequence> r = EvalExpr(*user->body);
    vars_ = std::move(saved_vars);
    focus_ = saved_focus;
    return r;
  }

  return Status::NotFound("unknown function " + e.name + "()");
}

// ---- Constructors -------------------------------------------------------------

Status Evaluator::AppendConstructorContent(const Sequence& items, Node* element,
                                           std::string* pending_text) {
  bool prev_atomic = false;
  for (const Item& item : items) {
    if (IsNode(item)) {
      const NodePtr& n = AsNode(item);
      if (n->is_attribute()) {
        element->SetAttr(n->name(), n->text());
        prev_atomic = false;
        continue;
      }
      if (!pending_text->empty()) {
        element->AddChild(Node::Text(std::move(*pending_text)));
        pending_text->clear();
      }
      if (n->is_text()) {
        element->AddChild(Node::Text(n->text()));
      } else {
        element->AddChild(n->Clone());
      }
      prev_atomic = false;
    } else {
      if (prev_atomic) pending_text->push_back(' ');
      *pending_text += AsAtomic(item).ToStringValue();
      prev_atomic = true;
    }
  }
  return Status::OK();
}

Result<Sequence> Evaluator::EvalDirectElement(const DirectElementExpr& e) {
  NodePtr el = Node::Element(e.name);
  for (const auto& attr : e.attrs) {
    std::string value;
    for (const ContentPart& part : attr.value) {
      if (part.expr == nullptr) {
        value += part.text;
      } else {
        XCQL_ASSIGN_OR_RETURN(Sequence r, EvalExpr(*part.expr));
        value += SequenceToString(r);
      }
    }
    el->SetAttr(attr.name, std::move(value));
  }
  std::string pending;
  for (const ContentPart& part : e.content) {
    if (part.expr == nullptr) {
      pending += part.text;
      continue;
    }
    XCQL_ASSIGN_OR_RETURN(Sequence r, EvalExpr(*part.expr));
    XCQL_RETURN_NOT_OK(AppendConstructorContent(r, el.get(), &pending));
  }
  if (!pending.empty()) el->AddChild(Node::Text(std::move(pending)));
  return SingletonNode(std::move(el));
}

Result<Sequence> Evaluator::EvalComputedElement(const ComputedElementExpr& e) {
  XCQL_ASSIGN_OR_RETURN(Sequence name_seq, EvalExpr(*e.name_expr));
  std::string name = SequenceToString(name_seq);
  if (name.empty()) {
    return Status::TypeError("computed element constructor: empty name");
  }
  NodePtr el = Node::Element(std::move(name));
  if (e.content != nullptr) {
    XCQL_ASSIGN_OR_RETURN(Sequence r, EvalExpr(*e.content));
    std::string pending;
    XCQL_RETURN_NOT_OK(AppendConstructorContent(r, el.get(), &pending));
    if (!pending.empty()) el->AddChild(Node::Text(std::move(pending)));
  }
  return SingletonNode(std::move(el));
}

Result<Sequence> Evaluator::EvalComputedAttribute(
    const ComputedAttributeExpr& e) {
  XCQL_ASSIGN_OR_RETURN(Sequence name_seq, EvalExpr(*e.name_expr));
  std::string name = SequenceToString(name_seq);
  if (name.empty()) {
    return Status::TypeError("computed attribute constructor: empty name");
  }
  std::string value;
  if (e.content != nullptr) {
    XCQL_ASSIGN_OR_RETURN(Sequence r, EvalExpr(*e.content));
    value = SequenceToString(r);
  }
  return SingletonNode(Node::Attribute(std::move(name), std::move(value)));
}

// ---- XCQL projections ----------------------------------------------------------

Result<Sequence> Evaluator::EvalIntervalProj(const IntervalProjExpr& e) {
  XCQL_ASSIGN_OR_RETURN(Sequence input, EvalExpr(*e.input));
  XCQL_ASSIGN_OR_RETURN(Sequence lo_seq, EvalExpr(*e.lo));
  if (lo_seq.size() != 1) {
    return Status::TypeError("interval projection bound must be a singleton");
  }
  XCQL_ASSIGN_OR_RETURN(DateTime tb,
                        AtomicToDateTime(*ctx_, AtomizeItem(lo_seq.front())));
  DateTime te = tb;
  if (e.hi != nullptr) {
    XCQL_ASSIGN_OR_RETURN(Sequence hi_seq, EvalExpr(*e.hi));
    if (hi_seq.size() != 1) {
      return Status::TypeError(
          "interval projection bound must be a singleton");
    }
    XCQL_ASSIGN_OR_RETURN(
        te, AtomicToDateTime(*ctx_, AtomizeItem(hi_seq.front())));
  }
  if (tb > te) {
    return Status::InvalidArgument("interval projection with begin > end: " +
                                   Interval(tb, te).ToString());
  }
  return IntervalProjection(*ctx_, input, tb, te);
}

Result<Sequence> Evaluator::EvalVersionProj(const VersionProjExpr& e) {
  XCQL_ASSIGN_OR_RETURN(Sequence input, EvalExpr(*e.input));
  int64_t saved_last = version_last_;
  version_last_ = static_cast<int64_t>(input.size());
  auto eval_bound = [&](const Expr& bound) -> Result<int64_t> {
    XCQL_ASSIGN_OR_RETURN(Sequence s, EvalExpr(bound));
    if (s.size() != 1) {
      return Status::TypeError("version projection bound must be a singleton");
    }
    return AtomicToVersion(AtomizeItem(s.front()));
  };
  Result<int64_t> vb = eval_bound(*e.lo);
  if (!vb.ok()) {
    version_last_ = saved_last;
    return vb.status();
  }
  int64_t ve = vb.value();
  if (e.hi != nullptr) {
    Result<int64_t> hi = eval_bound(*e.hi);
    if (!hi.ok()) {
      version_last_ = saved_last;
      return hi.status();
    }
    ve = hi.value();
  }
  version_last_ = saved_last;
  if (vb.value() > ve) {
    return Status::InvalidArgument(
        StringPrintf("version projection with begin %lld > end %lld",
                     static_cast<long long>(vb.value()),
                     static_cast<long long>(ve)));
  }
  return VersionProjection(*ctx_, input, vb.value(), ve);
}

Result<Sequence> EvalQuery(std::string_view query, EvalContext* ctx) {
  XCQL_ASSIGN_OR_RETURN(Program prog, ParseQuery(query));
  Evaluator ev(ctx);
  return ev.EvalProgram(prog);
}

}  // namespace xcql::xq
