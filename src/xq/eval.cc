#include "xq/eval.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/interner.h"
#include "common/string_util.h"
#include "temporal/interval.h"
#include "xq/eval_kernels.h"
#include "xq/parser.h"

namespace xcql::xq {

namespace {

Status ProjectNode(EvalContext& ctx, const NodePtr& node, DateTime tb,
                   DateTime te, Sequence* out, int depth);

Status ProjectChildrenInto(EvalContext& ctx, const Node& src, DateTime tb,
                           DateTime te, Node* dst, int depth) {
  if (depth > kEvalMaxDepth) {
    return Status::Internal("interval projection recursion too deep");
  }
  for (const NodePtr& c : src.children()) {
    Sequence projected;
    XCQL_RETURN_NOT_OK(ProjectNode(ctx, c, tb, te, &projected, depth + 1));
    for (auto& item : projected) {
      if (IsNode(item)) dst->AddChild(AsNode(item));
    }
  }
  return Status::OK();
}

// Core of interval_projection (paper §6) for one node.
Status ProjectNode(EvalContext& ctx, const NodePtr& node, DateTime tb,
                   DateTime te, Sequence* out, int depth) {
  if (depth > kEvalMaxDepth) {
    return Status::Internal("interval projection recursion too deep");
  }
  if (!node->is_element()) {
    if (node->is_attribute()) {
      out->emplace_back(NewAttribute(ctx, node->name(), node->text()));
    } else {
      out->emplace_back(NewText(ctx, node->text()));
    }
    return Status::OK();
  }
  if (IsHoleNode(*node) && ctx.hole_resolver != nullptr) {
    XCQL_ASSIGN_OR_RETURN(std::vector<NodePtr> versions,
                          ctx.hole_resolver->Resolve(ctx, *node));
    for (const NodePtr& v : versions) {
      XCQL_RETURN_NOT_OK(ProjectNode(ctx, v, tb, te, out, depth + 1));
    }
    return Status::OK();
  }
  XCQL_ASSIGN_OR_RETURN(std::optional<Interval> life,
                        ReadLifespanAttrs(ctx, *node));
  if (!life.has_value()) {
    // Snapshot element: keep it, project the children.
    NodePtr copy = NewElement(ctx, node->name());
    for (const auto& [k, v] : node->attrs()) copy->SetAttr(k, v);
    XCQL_RETURN_NOT_OK(ProjectChildrenInto(ctx, *node, tb, te, copy.get(),
                                           depth));
    out->emplace_back(std::move(copy));
    return Status::OK();
  }
  if (life->end() < tb || life->begin() > te) return Status::OK();  // pruned
  NodePtr copy = NewElement(ctx, node->name());
  for (const auto& [k, v] : node->attrs()) {
    if (k == "vtFrom" || k == "vtTo") continue;
    copy->SetAttr(k, v);
  }
  copy->SetAttr("vtFrom", std::max(life->begin(), tb).ToString());
  copy->SetAttr("vtTo", std::min(life->end(), te).ToString());
  XCQL_RETURN_NOT_OK(ProjectChildrenInto(ctx, *node, tb, te, copy.get(),
                                         depth));
  out->emplace_back(std::move(copy));
  return Status::OK();
}

}  // namespace

Result<Sequence> IntervalProjection(EvalContext& ctx, const Sequence& input,
                                    DateTime tb, DateTime te) {
  Sequence out;
  for (const Item& item : input) {
    if (!IsNode(item)) {
      out.push_back(item);
      continue;
    }
    XCQL_RETURN_NOT_OK(ProjectNode(ctx, AsNode(item), tb, te, &out, 0));
  }
  return out;
}

Result<Sequence> VersionProjection(EvalContext& ctx, const Sequence& input,
                                   int64_t vb, int64_t ve) {
  Sequence out;
  int64_t pos = 0;
  for (const Item& item : input) {
    ++pos;
    if (pos < vb || pos > ve) continue;
    if (!IsNode(item) || !AsNode(item)->is_element()) {
      out.push_back(item);
      continue;
    }
    const NodePtr& node = AsNode(item);
    XCQL_ASSIGN_OR_RETURN(std::optional<Interval> life,
                          ReadLifespanAttrs(ctx, *node));
    // A snapshot element counts as a single version spanning all time.
    Interval span = life.value_or(Interval(DateTime::Start(), ctx.now));
    NodePtr copy = NewElement(ctx, node->name());
    for (const auto& [k, v] : node->attrs()) copy->SetAttr(k, v);
    XCQL_RETURN_NOT_OK(ProjectChildrenInto(ctx, *node, span.begin(),
                                           span.end(), copy.get(), 0));
    out.emplace_back(std::move(copy));
  }
  return out;
}

Result<DateTime> LifespanFrom(EvalContext& ctx, const Node& e) {
  if (!e.is_element()) return DateTime::Start();
  XCQL_ASSIGN_OR_RETURN(std::optional<Interval> life,
                        ReadLifespanAttrs(ctx, e));
  if (life.has_value()) return life->begin();
  DateTime best = DateTime::End();
  bool any = false;
  for (const NodePtr& c : e.children()) {
    if (!c->is_element()) continue;
    if (IsHoleNode(*c) && ctx.hole_resolver != nullptr) {
      XCQL_ASSIGN_OR_RETURN(std::vector<NodePtr> versions,
                            ctx.hole_resolver->Resolve(ctx, *c));
      for (const NodePtr& v : versions) {
        XCQL_ASSIGN_OR_RETURN(DateTime f, LifespanFrom(ctx, *v));
        best = std::min(best, f);
        any = true;
      }
      continue;
    }
    XCQL_ASSIGN_OR_RETURN(DateTime f, LifespanFrom(ctx, *c));
    best = std::min(best, f);
    any = true;
  }
  return any ? best : DateTime::Start();
}

Result<DateTime> LifespanTo(EvalContext& ctx, const Node& e) {
  if (!e.is_element()) return ctx.now;
  XCQL_ASSIGN_OR_RETURN(std::optional<Interval> life,
                        ReadLifespanAttrs(ctx, e));
  if (life.has_value()) return ResolveNow(ctx, life->end());
  DateTime best = DateTime::Start();
  bool any = false;
  for (const NodePtr& c : e.children()) {
    if (!c->is_element()) continue;
    if (IsHoleNode(*c) && ctx.hole_resolver != nullptr) {
      XCQL_ASSIGN_OR_RETURN(std::vector<NodePtr> versions,
                            ctx.hole_resolver->Resolve(ctx, *c));
      for (const NodePtr& v : versions) {
        XCQL_ASSIGN_OR_RETURN(DateTime t, LifespanTo(ctx, *v));
        best = std::max(best, t);
        any = true;
      }
      continue;
    }
    XCQL_ASSIGN_OR_RETURN(DateTime t, LifespanTo(ctx, *c));
    best = std::max(best, t);
    any = true;
  }
  return any ? best : ctx.now;
}

// ---------------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------------

Evaluator::Evaluator(EvalContext* ctx) : ctx_(ctx) {}

void Evaluator::Bind(const std::string& name, Sequence value) {
  vars_.emplace_back(name, std::move(value));
}

const Sequence* Evaluator::Lookup(const std::string& name) const {
  for (auto it = vars_.rbegin(); it != vars_.rend(); ++it) {
    if (it->first == name) return &it->second;
  }
  return nullptr;
}

Result<Sequence> Evaluator::Eval(const Expr& e) {
  if (ctx_->functions == nullptr) {
    return Status::InvalidArgument("EvalContext has no function registry");
  }
  return EvalExpr(e);
}

Result<Sequence> Evaluator::EvalProgram(const Program& prog) {
  if (ctx_->functions == nullptr) {
    return Status::InvalidArgument("EvalContext has no function registry");
  }
  if (prog.functions.empty() && prog.variables.empty()) {
    return EvalExpr(*prog.body);
  }
  // Prolog functions extend a per-call copy of the registry.
  FunctionRegistry extended = *ctx_->functions;
  for (const FunctionDecl& d : prog.functions) extended.RegisterUser(d);
  const FunctionRegistry* saved = ctx_->functions;
  ctx_->functions = &extended;
  size_t var_mark = vars_.size();
  Status st;
  for (const VariableDecl& v : prog.variables) {
    Result<Sequence> init = EvalExpr(*v.init);
    if (!init.ok()) {
      st = init.status();
      break;
    }
    vars_.emplace_back(v.name, std::move(init).MoveValue());
  }
  Result<Sequence> r = st.ok() ? EvalExpr(*prog.body) : Result<Sequence>(st);
  vars_.resize(var_mark);
  ctx_->functions = saved;
  return r;
}

Result<Sequence> Evaluator::EvalExpr(const Expr& e) {
  if (++depth_ > kEvalMaxDepth) {
    --depth_;
    return Status::Internal("expression evaluation recursion too deep");
  }
  struct DepthGuard {
    int* d;
    ~DepthGuard() { --*d; }
  } guard{&depth_};

  switch (e.kind()) {
    case ExprKind::kLiteral:
      return SingletonAtomic(static_cast<const LiteralExpr&>(e).value);
    case ExprKind::kVarRef: {
      const auto& v = static_cast<const VarRefExpr&>(e);
      const Sequence* s = Lookup(v.name);
      if (s == nullptr) {
        return Status::NotFound("undefined variable $" + v.name);
      }
      return *s;
    }
    case ExprKind::kContextItem: {
      if (!focus_.has) {
        return Status::TypeError("context item is undefined here");
      }
      Sequence s;
      s.push_back(focus_.item);
      return s;
    }
    case ExprKind::kSequence: {
      const auto& seq = static_cast<const SequenceExpr&>(e);
      Sequence out;
      for (const auto& item : seq.items) {
        XCQL_ASSIGN_OR_RETURN(Sequence r, EvalExpr(*item));
        out.insert(out.end(), std::make_move_iterator(r.begin()),
                   std::make_move_iterator(r.end()));
      }
      return out;
    }
    case ExprKind::kFlwor:
      return EvalFlwor(static_cast<const FlworExpr&>(e));
    case ExprKind::kQuantified:
      return EvalQuantified(static_cast<const QuantifiedExpr&>(e));
    case ExprKind::kIf: {
      const auto& i = static_cast<const IfExpr&>(e);
      XCQL_ASSIGN_OR_RETURN(Sequence c, EvalExpr(*i.cond));
      XCQL_ASSIGN_OR_RETURN(bool b, EffectiveBooleanValue(c));
      return EvalExpr(b ? *i.then_branch : *i.else_branch);
    }
    case ExprKind::kBinary:
      return EvalBinary(static_cast<const BinaryExpr&>(e));
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      XCQL_ASSIGN_OR_RETURN(Sequence r, EvalExpr(*u.operand));
      return UnaryMinus(std::move(r));
    }
    case ExprKind::kPath:
      return EvalPath(static_cast<const PathExpr&>(e));
    case ExprKind::kFilter: {
      const auto& f = static_cast<const FilterExpr&>(e);
      XCQL_ASSIGN_OR_RETURN(Sequence in, EvalExpr(*f.input));
      return ApplyPredicates(f.predicates, std::move(in));
    }
    case ExprKind::kFunctionCall:
      return EvalFunctionCall(static_cast<const FunctionCallExpr&>(e));
    case ExprKind::kDirectElement:
      return EvalDirectElement(static_cast<const DirectElementExpr&>(e));
    case ExprKind::kComputedElement:
      return EvalComputedElement(static_cast<const ComputedElementExpr&>(e));
    case ExprKind::kComputedAttribute:
      return EvalComputedAttribute(
          static_cast<const ComputedAttributeExpr&>(e));
    case ExprKind::kIntervalProj:
      return EvalIntervalProj(static_cast<const IntervalProjExpr&>(e));
    case ExprKind::kVersionProj:
      return EvalVersionProj(static_cast<const VersionProjExpr&>(e));
  }
  return Status::Internal("unhandled expression kind");
}

// ---- FLWOR ----------------------------------------------------------------

Result<Sequence> Evaluator::EvalFlwor(const FlworExpr& e) {
  Sequence out;
  std::vector<std::pair<std::vector<Atomic>, Sequence>> ordered;
  XCQL_RETURN_NOT_OK(EvalFlworClauses(e, 0, &ordered, &out));
  if (!ordered.empty() || HasOrderBy(e)) {
    // Sort collected tuples by their keys (stable, empty-least).
    struct Row {
      std::vector<OrderSortKey> keys;
      Sequence* seq;
    };
    std::vector<Row> rows;
    rows.reserve(ordered.size());
    for (auto& [keys, seq] : ordered) {
      Row r;
      for (const Atomic& a : keys) {
        r.keys.push_back(OrderSortKeyFrom(a));
      }
      r.seq = &seq;
      rows.push_back(std::move(r));
    }
    // Direction flags were folded into the keys during collection (negated
    // numeric trick does not generalize), so we re-read them here.
    const std::vector<FlworClause::OrderKey>* keyspec = nullptr;
    for (const auto& c : e.clauses) {
      if (c.kind == FlworClause::Kind::kOrderBy) keyspec = &c.keys;
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [&](const Row& a, const Row& b) {
                       for (size_t i = 0; i < a.keys.size(); ++i) {
                         auto c = a.keys[i].Compare(b.keys[i]);
                         bool desc = keyspec != nullptr &&
                                     i < keyspec->size() &&
                                     (*keyspec)[i].descending;
                         if (c == std::weak_ordering::less) return !desc;
                         if (c == std::weak_ordering::greater) return desc;
                       }
                       return false;
                     });
    for (const Row& r : rows) {
      out.insert(out.end(), r.seq->begin(), r.seq->end());
    }
  }
  return out;
}

bool Evaluator::HasOrderBy(const FlworExpr& e) {
  for (const auto& c : e.clauses) {
    if (c.kind == FlworClause::Kind::kOrderBy) return true;
  }
  return false;
}

Status Evaluator::EvalFlworClauses(
    const FlworExpr& e, size_t idx,
    std::vector<std::pair<std::vector<Atomic>, Sequence>>* ordered,
    Sequence* out) {
  if (idx == e.clauses.size()) {
    XCQL_ASSIGN_OR_RETURN(Sequence r, EvalExpr(*e.ret));
    out->insert(out->end(), std::make_move_iterator(r.begin()),
                std::make_move_iterator(r.end()));
    return Status::OK();
  }
  const FlworClause& c = e.clauses[idx];
  switch (c.kind) {
    case FlworClause::Kind::kFor: {
      XCQL_ASSIGN_OR_RETURN(Sequence seq, EvalExpr(*c.expr));
      int64_t pos = 0;
      for (Item& item : seq) {
        ++pos;
        Sequence binding;
        binding.push_back(item);
        vars_.emplace_back(c.var, std::move(binding));
        size_t mark = vars_.size();
        if (!c.pos_var.empty()) {
          vars_.emplace_back(c.pos_var, SingletonAtomic(Atomic(pos)));
        }
        Status st = EvalFlworClauses(e, idx + 1, ordered, out);
        vars_.resize(mark - 1);
        XCQL_RETURN_NOT_OK(st);
      }
      return Status::OK();
    }
    case FlworClause::Kind::kLet: {
      XCQL_ASSIGN_OR_RETURN(Sequence seq, EvalExpr(*c.expr));
      vars_.emplace_back(c.var, std::move(seq));
      Status st = EvalFlworClauses(e, idx + 1, ordered, out);
      vars_.pop_back();
      return st;
    }
    case FlworClause::Kind::kWhere: {
      XCQL_ASSIGN_OR_RETURN(Sequence cond, EvalExpr(*c.expr));
      XCQL_ASSIGN_OR_RETURN(bool b, EffectiveBooleanValue(cond));
      if (!b) return Status::OK();
      return EvalFlworClauses(e, idx + 1, ordered, out);
    }
    case FlworClause::Kind::kOrderBy: {
      std::vector<Atomic> keys;
      for (const auto& k : c.keys) {
        XCQL_ASSIGN_OR_RETURN(Sequence kv, EvalExpr(*k.key));
        keys.push_back(OrderKeyAtomic(kv));
      }
      Sequence tuple_out;
      XCQL_RETURN_NOT_OK(EvalFlworClauses(e, idx + 1, ordered, &tuple_out));
      ordered->emplace_back(std::move(keys), std::move(tuple_out));
      return Status::OK();
    }
  }
  return Status::Internal("unhandled FLWOR clause");
}

Result<Sequence> Evaluator::EvalQuantified(const QuantifiedExpr& e) {
  // Depth-first over the bindings.
  bool result = e.every;
  Status st = QuantifyFrom(e, 0, &result);
  XCQL_RETURN_NOT_OK(st);
  return SingletonAtomic(Atomic(result));
}

Status Evaluator::QuantifyFrom(const QuantifiedExpr& e, size_t idx,
                               bool* result) {
  // Early exit once decided.
  if (e.every ? !*result : *result) return Status::OK();
  if (idx == e.bindings.size()) {
    XCQL_ASSIGN_OR_RETURN(Sequence s, EvalExpr(*e.satisfies));
    XCQL_ASSIGN_OR_RETURN(bool b, EffectiveBooleanValue(s));
    if (e.every) {
      if (!b) *result = false;
    } else {
      if (b) *result = true;
    }
    return Status::OK();
  }
  XCQL_ASSIGN_OR_RETURN(Sequence seq, EvalExpr(*e.bindings[idx].expr));
  for (Item& item : seq) {
    Sequence binding;
    binding.push_back(item);
    vars_.emplace_back(e.bindings[idx].var, std::move(binding));
    Status st = QuantifyFrom(e, idx + 1, result);
    vars_.pop_back();
    XCQL_RETURN_NOT_OK(st);
    if (e.every ? !*result : *result) return Status::OK();
  }
  return Status::OK();
}

// ---- Operators --------------------------------------------------------------

Result<Sequence> Evaluator::EvalBinary(const BinaryExpr& e) {
  // Logical operators: effective boolean values, short-circuit.
  if (e.op == BinOp::kAnd || e.op == BinOp::kOr) {
    XCQL_ASSIGN_OR_RETURN(Sequence l, EvalExpr(*e.lhs));
    XCQL_ASSIGN_OR_RETURN(bool lb, EffectiveBooleanValue(l));
    if (e.op == BinOp::kAnd && !lb) return SingletonAtomic(Atomic(false));
    if (e.op == BinOp::kOr && lb) return SingletonAtomic(Atomic(true));
    XCQL_ASSIGN_OR_RETURN(Sequence r, EvalExpr(*e.rhs));
    XCQL_ASSIGN_OR_RETURN(bool rb, EffectiveBooleanValue(r));
    return SingletonAtomic(Atomic(rb));
  }

  XCQL_ASSIGN_OR_RETURN(Sequence l, EvalExpr(*e.lhs));
  XCQL_ASSIGN_OR_RETURN(Sequence r, EvalExpr(*e.rhs));

  switch (e.op) {
    case BinOp::kGenEq:
    case BinOp::kGenNe:
    case BinOp::kGenLt:
    case BinOp::kGenLe:
    case BinOp::kGenGt:
    case BinOp::kGenGe:
      return GeneralCompare(e.op, l, r);
    case BinOp::kValEq:
    case BinOp::kValNe:
    case BinOp::kValLt:
    case BinOp::kValLe:
    case BinOp::kValGt:
    case BinOp::kValGe:
      return ValueCompare(e.op, l, r);
    case BinOp::kTo:
      return RangeSequence(l, r);
    case BinOp::kUnion:
    case BinOp::kIntersect:
    case BinOp::kExcept:
      return NodeSetOp(e.op, std::move(l), std::move(r));
    case BinOp::kBefore:
    case BinOp::kAfter:
    case BinOp::kMeets:
    case BinOp::kOverlaps:
    case BinOp::kContains:
    case BinOp::kDuring:
      return IntervalRelation(*ctx_, e.op, l, r);
    default: {
      if (l.empty() || r.empty()) return Sequence{};
      if (l.size() != 1 || r.size() != 1) {
        return Status::TypeError("arithmetic requires singleton operands");
      }
      return EvalArithmetic(*ctx_, e.op, AtomizeItem(l.front()),
                            AtomizeItem(r.front()));
    }
  }
}

// ---- Paths ------------------------------------------------------------------

Result<Sequence> Evaluator::EvalPath(const PathExpr& e) {
  Sequence current;
  if (e.input != nullptr) {
    XCQL_ASSIGN_OR_RETURN(current, EvalExpr(*e.input));
  } else {
    // Absolute path: root of the context item's tree.
    if (!focus_.has || !IsNode(focus_.item)) {
      return Status::TypeError(
          "absolute path requires a node context item");
    }
    Node* root = AsNode(focus_.item).get();
    while (root->parent() != nullptr) root = root->parent();
    current = SingletonNode(root->shared_from_this());
  }
  for (const PathStep& step : e.steps) {
    XCQL_ASSIGN_OR_RETURN(current, EvalStep(step, current));
  }
  return current;
}

Result<Sequence> Evaluator::EvalStep(const PathStep& step,
                                     const Sequence& input) {
  Sequence out;
  std::unordered_set<const Node*> seen;  // dedup for the descendant axis
  // Intern once per step application; every item then matches by id compare.
  const int name_id =
      step.test == PathStep::Test::kName ? InternName(step.name) : kEmptyNameId;
  for (const Item& item : input) {
    if (!IsNode(item)) {
      return Status::TypeError("path step applied to an atomic value");
    }
    const NodePtr& node = AsNode(item);
    Sequence matches;
    XCQL_RETURN_NOT_OK(
        CollectAxisMatches(*ctx_, node, step, name_id, &seen, &matches));
    if (!step.predicates.empty()) {
      XCQL_ASSIGN_OR_RETURN(matches,
                            ApplyPredicates(step.predicates,
                                            std::move(matches)));
    }
    out.insert(out.end(), std::make_move_iterator(matches.begin()),
               std::make_move_iterator(matches.end()));
  }
  return out;
}

Result<Sequence> Evaluator::ApplyPredicates(const std::vector<ExprPtr>& preds,
                                            Sequence input) {
  for (const ExprPtr& pred : preds) {
    Sequence kept;
    Focus saved = focus_;
    int64_t size = static_cast<int64_t>(input.size());
    Status st;
    for (int64_t i = 0; i < size; ++i) {
      focus_.has = true;
      focus_.item = input[static_cast<size_t>(i)];
      focus_.pos = i + 1;
      focus_.size = size;
      Result<Sequence> r = EvalExpr(*pred);
      if (!r.ok()) {
        st = r.status();
        break;
      }
      Result<bool> keep = PredicateAccepts(r.value(), i + 1);
      if (!keep.ok()) {
        st = keep.status();
        break;
      }
      if (keep.value()) kept.push_back(input[static_cast<size_t>(i)]);
    }
    focus_ = saved;
    XCQL_RETURN_NOT_OK(st);
    input = std::move(kept);
  }
  return input;
}

// ---- Functions ---------------------------------------------------------------

Result<Sequence> Evaluator::EvalFunctionCall(const FunctionCallExpr& e) {
  // Focus- and projection-dependent builtins are evaluator-internal.
  if (e.name == "position" && e.args.empty()) {
    if (!focus_.has) return Status::TypeError("position() without focus");
    return SingletonAtomic(Atomic(focus_.pos));
  }
  if (e.name == "last" && e.args.empty()) {
    if (!focus_.has) return Status::TypeError("last() without focus");
    return SingletonAtomic(Atomic(focus_.size));
  }
  if (e.name == "xcql:now" && e.args.empty()) {
    return SingletonAtomic(Atomic(ctx_->now));
  }
  if (e.name == "xcql:start" && e.args.empty()) {
    return SingletonAtomic(Atomic(DateTime::Start()));
  }
  if (e.name == "xcql:last" && e.args.empty()) {
    if (version_last_ < 0) {
      return Status::TypeError("'last' used outside a version projection");
    }
    return SingletonAtomic(Atomic(version_last_));
  }

  std::vector<Sequence> args;
  args.reserve(e.args.size());
  for (const ExprPtr& a : e.args) {
    XCQL_ASSIGN_OR_RETURN(Sequence s, EvalExpr(*a));
    args.push_back(std::move(s));
  }

  const FunctionRegistry::NativeEntry* native =
      ctx_->functions->FindNative(e.name);
  if (native != nullptr) {
    int n = static_cast<int>(args.size());
    if (n < native->min_arity ||
        (native->max_arity >= 0 && n > native->max_arity)) {
      return Status::InvalidArgument(
          StringPrintf("wrong number of arguments (%d) to %s()", n,
                       e.name.c_str()));
    }
    return native->fn(*ctx_, args);
  }

  const FunctionDecl* user = ctx_->functions->FindUser(e.name);
  if (user != nullptr) {
    if (args.size() != user->params.size()) {
      return Status::InvalidArgument(
          StringPrintf("wrong number of arguments (%zu, expected %zu) to %s()",
                       args.size(), user->params.size(), e.name.c_str()));
    }
    // Function bodies see only their parameters (XQuery function scoping).
    std::vector<std::pair<std::string, Sequence>> saved_vars;
    saved_vars.swap(vars_);
    Focus saved_focus = focus_;
    focus_ = Focus{};
    for (size_t i = 0; i < args.size(); ++i) {
      vars_.emplace_back(user->params[i], std::move(args[i]));
    }
    Result<Sequence> r = EvalExpr(*user->body);
    vars_ = std::move(saved_vars);
    focus_ = saved_focus;
    return r;
  }

  return Status::NotFound("unknown function " + e.name + "()");
}

// ---- Constructors -------------------------------------------------------------

Result<Sequence> Evaluator::EvalDirectElement(const DirectElementExpr& e) {
  NodePtr el = NewElement(*ctx_, e.name);
  for (const auto& attr : e.attrs) {
    std::string value;
    for (const ContentPart& part : attr.value) {
      if (part.expr == nullptr) {
        value += part.text;
      } else {
        XCQL_ASSIGN_OR_RETURN(Sequence r, EvalExpr(*part.expr));
        value += SequenceToString(r);
      }
    }
    el->SetAttr(attr.name, std::move(value));
  }
  std::string pending;
  for (const ContentPart& part : e.content) {
    if (part.expr == nullptr) {
      pending += part.text;
      continue;
    }
    XCQL_ASSIGN_OR_RETURN(Sequence r, EvalExpr(*part.expr));
    XCQL_RETURN_NOT_OK(AppendConstructorContent(*ctx_, r, el.get(), &pending));
  }
  if (!pending.empty()) el->AddChild(NewText(*ctx_, std::move(pending)));
  return SingletonNode(std::move(el));
}

Result<Sequence> Evaluator::EvalComputedElement(const ComputedElementExpr& e) {
  XCQL_ASSIGN_OR_RETURN(Sequence name_seq, EvalExpr(*e.name_expr));
  std::string name = SequenceToString(name_seq);
  if (name.empty()) {
    return Status::TypeError("computed element constructor: empty name");
  }
  NodePtr el = NewElement(*ctx_, std::move(name));
  if (e.content != nullptr) {
    XCQL_ASSIGN_OR_RETURN(Sequence r, EvalExpr(*e.content));
    std::string pending;
    XCQL_RETURN_NOT_OK(AppendConstructorContent(*ctx_, r, el.get(), &pending));
    if (!pending.empty()) el->AddChild(NewText(*ctx_, std::move(pending)));
  }
  return SingletonNode(std::move(el));
}

Result<Sequence> Evaluator::EvalComputedAttribute(
    const ComputedAttributeExpr& e) {
  XCQL_ASSIGN_OR_RETURN(Sequence name_seq, EvalExpr(*e.name_expr));
  std::string name = SequenceToString(name_seq);
  if (name.empty()) {
    return Status::TypeError("computed attribute constructor: empty name");
  }
  std::string value;
  if (e.content != nullptr) {
    XCQL_ASSIGN_OR_RETURN(Sequence r, EvalExpr(*e.content));
    value = SequenceToString(r);
  }
  return SingletonNode(NewAttribute(*ctx_, std::move(name), std::move(value)));
}

// ---- XCQL projections ----------------------------------------------------------

Result<Sequence> Evaluator::EvalIntervalProj(const IntervalProjExpr& e) {
  XCQL_ASSIGN_OR_RETURN(Sequence input, EvalExpr(*e.input));
  XCQL_ASSIGN_OR_RETURN(Sequence lo_seq, EvalExpr(*e.lo));
  if (lo_seq.size() != 1) {
    return Status::TypeError("interval projection bound must be a singleton");
  }
  XCQL_ASSIGN_OR_RETURN(DateTime tb,
                        AtomicToDateTime(*ctx_, AtomizeItem(lo_seq.front())));
  DateTime te = tb;
  if (e.hi != nullptr) {
    XCQL_ASSIGN_OR_RETURN(Sequence hi_seq, EvalExpr(*e.hi));
    if (hi_seq.size() != 1) {
      return Status::TypeError(
          "interval projection bound must be a singleton");
    }
    XCQL_ASSIGN_OR_RETURN(
        te, AtomicToDateTime(*ctx_, AtomizeItem(hi_seq.front())));
  }
  if (tb > te) {
    return Status::InvalidArgument("interval projection with begin > end: " +
                                   Interval(tb, te).ToString());
  }
  return IntervalProjection(*ctx_, input, tb, te);
}

Result<Sequence> Evaluator::EvalVersionProj(const VersionProjExpr& e) {
  XCQL_ASSIGN_OR_RETURN(Sequence input, EvalExpr(*e.input));
  int64_t saved_last = version_last_;
  version_last_ = static_cast<int64_t>(input.size());
  auto eval_bound = [&](const Expr& bound) -> Result<int64_t> {
    XCQL_ASSIGN_OR_RETURN(Sequence s, EvalExpr(bound));
    if (s.size() != 1) {
      return Status::TypeError("version projection bound must be a singleton");
    }
    return AtomicToVersion(AtomizeItem(s.front()));
  };
  Result<int64_t> vb = eval_bound(*e.lo);
  if (!vb.ok()) {
    version_last_ = saved_last;
    return vb.status();
  }
  int64_t ve = vb.value();
  if (e.hi != nullptr) {
    Result<int64_t> hi = eval_bound(*e.hi);
    if (!hi.ok()) {
      version_last_ = saved_last;
      return hi.status();
    }
    ve = hi.value();
  }
  version_last_ = saved_last;
  if (vb.value() > ve) {
    return Status::InvalidArgument(
        StringPrintf("version projection with begin %lld > end %lld",
                     static_cast<long long>(vb.value()),
                     static_cast<long long>(ve)));
  }
  return VersionProjection(*ctx_, input, vb.value(), ve);
}

Result<Sequence> EvalQuery(std::string_view query, EvalContext* ctx) {
  XCQL_ASSIGN_OR_RETURN(Program prog, ParseQuery(query));
  Evaluator ev(ctx);
  return ev.EvalProgram(prog);
}

}  // namespace xcql::xq
