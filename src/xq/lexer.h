// Tokenizer for the XQuery/XCQL surface syntax.
//
// XCQL specifics handled here: dateTime literals (2003-11-01T12:23:34 and
// the date-only form), duration literals (PT1H, P1Y2M…), and the `?[`/`#[`
// projection operators. Direct element constructors are scanned in raw
// character mode by the parser, which rewinds the lexer via ResetTo().
#ifndef XCQL_XQ_LEXER_H_
#define XCQL_XQ_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "temporal/datetime.h"
#include "temporal/duration.h"

namespace xcql::xq {

enum class TokKind {
  kEof,
  kIdent,     // names; may contain letters, digits, _, ., : and the
              // whitelisted hyphenated builtins (current-dateTime, …)
  kInt,       // integer literal
  kDouble,    // decimal literal
  kString,    // quoted string literal (quotes removed, entities kept)
  kDateTime,  // ISO-8601 dateTime literal
  kDuration,  // ISO-8601 duration literal
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kComma,
  kSemicolon,
  kDollar,
  kDot,
  kDotDot,
  kSlash,
  kSlashSlash,
  kAt,
  kStar,
  kPlus,
  kMinus,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kPipe,      // |  (union)
  kQuestion,  // ?  (interval projection)
  kHash,      // #  (version projection)
  kAssign,    // :=
};

/// \brief One token with its source span.
struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;    // identifier/string text
  int64_t int_val = 0;
  double dbl_val = 0;
  DateTime dt_val;
  Duration dur_val;
  size_t begin = 0;  // offset of first char
  size_t end = 0;    // offset one past last char
  size_t line = 1;
  size_t col = 1;
};

/// \brief Pull-based tokenizer over a query string.
class Lexer {
 public:
  explicit Lexer(std::string_view src);

  /// \brief The current token.
  const Token& cur() const { return cur_; }

  /// \brief Advances to the next token.
  Status Advance();

  /// \brief Rewinds so the next Advance() re-lexes from `offset`. Used when
  /// the parser switches into raw XML-constructor scanning.
  Status ResetTo(size_t offset);

  /// \brief Whole source text (the constructor scanner reads it directly).
  std::string_view source() const { return src_; }

  /// \brief Formats "line L col C" for the current token.
  std::string Where() const;

 private:
  Status Lex(Token* t);
  void SkipWsAndComments();
  void Bump(char c);

  std::string_view src_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t col_ = 1;
  Token cur_;
  Status pending_error_;  // error from lexing the very first token
};

}  // namespace xcql::xq

#endif  // XCQL_XQ_LEXER_H_
