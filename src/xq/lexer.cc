#include "xq/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace xcql::xq {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
         c == ':';
}

// Hyphenated builtin names the lexer recognizes as single identifiers.
// Everywhere else '-' is the subtraction operator, so `now-PT1H` lexes as
// now MINUS PT1H (paper §3.1 Query 2).
constexpr std::string_view kHyphenatedBuiltins[] = {
    "current-dateTime", "current-date",    "current-time",
    "starts-with",      "ends-with",       "string-length",
    "normalize-space",  "string-join",     "deep-equal",
    "distinct-values",  "index-of",
};

}  // namespace

Lexer::Lexer(std::string_view src) : src_(src) {
  // Position at the first token; errors surface on the first Advance() by
  // leaving an EOF token and re-lexing there.
  Status st = Lex(&cur_);
  if (!st.ok()) {
    cur_ = Token{};
    cur_.kind = TokKind::kEof;
    pending_error_ = st;
  }
}

Status Lexer::Advance() {
  if (!pending_error_.ok()) {
    Status st = pending_error_;
    pending_error_ = Status::OK();
    return st;
  }
  return Lex(&cur_);
}

Status Lexer::ResetTo(size_t offset) {
  if (offset > src_.size()) {
    return Status::Internal("lexer reset beyond end of input");
  }
  pos_ = 0;
  line_ = 1;
  col_ = 1;
  while (pos_ < offset) Bump(src_[pos_]);
  pending_error_ = Status::OK();
  return Lex(&cur_);
}

std::string Lexer::Where() const {
  return StringPrintf("line %zu col %zu", cur_.line, cur_.col);
}

void Lexer::Bump(char c) {
  ++pos_;
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
}

void Lexer::SkipWsAndComments() {
  for (;;) {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_]))) {
      Bump(src_[pos_]);
    }
    // XQuery comments (: ... :), nestable.
    if (pos_ + 1 < src_.size() && src_[pos_] == '(' && src_[pos_ + 1] == ':') {
      int depth = 0;
      while (pos_ < src_.size()) {
        if (pos_ + 1 < src_.size() && src_[pos_] == '(' &&
            src_[pos_ + 1] == ':') {
          ++depth;
          Bump(src_[pos_]);
          Bump(src_[pos_]);
        } else if (pos_ + 1 < src_.size() && src_[pos_] == ':' &&
                   src_[pos_ + 1] == ')') {
          Bump(src_[pos_]);
          Bump(src_[pos_]);
          if (--depth == 0) break;
        } else {
          Bump(src_[pos_]);
        }
      }
      continue;
    }
    return;
  }
}

Status Lexer::Lex(Token* t) {
  SkipWsAndComments();
  t->text.clear();
  t->begin = pos_;
  t->line = line_;
  t->col = col_;
  if (pos_ >= src_.size()) {
    t->kind = TokKind::kEof;
    t->end = pos_;
    return Status::OK();
  }
  char c = src_[pos_];

  // Numbers and dateTime literals (dddd-dd-dd…).
  if (std::isdigit(static_cast<unsigned char>(c))) {
    if (DateTime::LooksLikeDateTime(src_.substr(pos_))) {
      size_t len = 10;  // date part
      std::string_view rest = src_.substr(pos_);
      if (rest.size() >= 19 && rest[10] == 'T' &&
          std::isdigit(static_cast<unsigned char>(rest[11]))) {
        len = 19;
      }
      auto dt = DateTime::Parse(rest.substr(0, len));
      if (!dt.ok()) {
        return Status::ParseError(dt.status().message() + " (" + Where() +
                                  ")");
      }
      t->kind = TokKind::kDateTime;
      t->dt_val = dt.value();
      t->text = std::string(rest.substr(0, len));
      for (size_t i = 0; i < len; ++i) Bump(src_[pos_]);
      t->end = pos_;
      return Status::OK();
    }
    size_t start = pos_;
    while (pos_ < src_.size() &&
           std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
      Bump(src_[pos_]);
    }
    bool is_double = false;
    if (pos_ + 1 < src_.size() && src_[pos_] == '.' &&
        std::isdigit(static_cast<unsigned char>(src_[pos_ + 1]))) {
      is_double = true;
      Bump(src_[pos_]);
      while (pos_ < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
        Bump(src_[pos_]);
      }
    }
    // Exponent part (3e2, 1.5E-3).
    if (pos_ < src_.size() && (src_[pos_] == 'e' || src_[pos_] == 'E')) {
      size_t save = pos_;
      size_t k = pos_ + 1;
      if (k < src_.size() && (src_[k] == '+' || src_[k] == '-')) ++k;
      if (k < src_.size() && std::isdigit(static_cast<unsigned char>(src_[k]))) {
        is_double = true;
        while (pos_ < k) Bump(src_[pos_]);
        while (pos_ < src_.size() &&
               std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
          Bump(src_[pos_]);
        }
      } else {
        pos_ = save;  // 'e' belongs to a following identifier
      }
    }
    std::string_view num = src_.substr(start, pos_ - start);
    if (is_double) {
      auto d = ParseDouble(num);
      if (!d) return Status::ParseError("bad number '" + std::string(num) + "'");
      t->kind = TokKind::kDouble;
      t->dbl_val = *d;
    } else {
      auto i = ParseInt64(num);
      if (!i) return Status::ParseError("bad integer '" + std::string(num) + "'");
      t->kind = TokKind::kInt;
      t->int_val = *i;
    }
    t->text = std::string(num);
    t->end = pos_;
    return Status::OK();
  }

  // Identifiers, keywords, duration literals, hyphenated builtins.
  if (IsIdentStart(c)) {
    // Duration literal: an identifier-shaped token starting with 'P' whose
    // full maximal [A-Z0-9]* extent parses as a duration.
    if (c == 'P') {
      size_t k = pos_;
      while (k < src_.size() &&
             (std::isdigit(static_cast<unsigned char>(src_[k])) ||
              std::isupper(static_cast<unsigned char>(src_[k])))) {
        ++k;
      }
      std::string_view cand = src_.substr(pos_, k - pos_);
      if (Duration::LooksLikeDuration(cand)) {
        auto d = Duration::Parse(cand);
        if (d.ok() &&
            (k >= src_.size() || !IsIdentChar(src_[k]))) {
          t->kind = TokKind::kDuration;
          t->dur_val = d.value();
          t->text = std::string(cand);
          while (pos_ < k) Bump(src_[pos_]);
          t->end = pos_;
          return Status::OK();
        }
      }
    }
    // Hyphenated builtin names (longest-match against the whitelist).
    for (std::string_view name : kHyphenatedBuiltins) {
      if (StartsWith(src_.substr(pos_), name)) {
        size_t after = pos_ + name.size();
        if (after >= src_.size() ||
            (!IsIdentChar(src_[after]) && src_[after] != '-')) {
          t->kind = TokKind::kIdent;
          t->text = std::string(name);
          while (pos_ < after) Bump(src_[pos_]);
          t->end = pos_;
          return Status::OK();
        }
      }
    }
    size_t start = pos_;
    while (pos_ < src_.size() && IsIdentChar(src_[pos_])) Bump(src_[pos_]);
    t->kind = TokKind::kIdent;
    t->text = std::string(src_.substr(start, pos_ - start));
    t->end = pos_;
    return Status::OK();
  }

  // String literals.
  if (c == '"' || c == '\'') {
    char quote = c;
    Bump(c);
    std::string out;
    while (pos_ < src_.size()) {
      char d = src_[pos_];
      if (d == quote) {
        // Doubled quote escapes itself inside the literal.
        if (pos_ + 1 < src_.size() && src_[pos_ + 1] == quote) {
          out.push_back(quote);
          Bump(d);
          Bump(d);
          continue;
        }
        Bump(d);
        t->kind = TokKind::kString;
        t->text = std::move(out);
        t->end = pos_;
        return Status::OK();
      }
      out.push_back(d);
      Bump(d);
    }
    return Status::ParseError("unterminated string literal (" + Where() + ")");
  }

  // Punctuation and operators.
  auto two = [&](char a, char b) {
    return pos_ + 1 < src_.size() && src_[pos_] == a && src_[pos_ + 1] == b;
  };
  auto emit1 = [&](TokKind k) {
    t->kind = k;
    t->text = std::string(1, src_[pos_]);
    Bump(src_[pos_]);
    t->end = pos_;
    return Status::OK();
  };
  auto emit2 = [&](TokKind k) {
    t->kind = k;
    t->text = std::string(src_.substr(pos_, 2));
    Bump(src_[pos_]);
    Bump(src_[pos_]);
    t->end = pos_;
    return Status::OK();
  };

  if (two('/', '/')) return emit2(TokKind::kSlashSlash);
  if (two('!', '=')) return emit2(TokKind::kNe);
  if (two('<', '=')) return emit2(TokKind::kLe);
  if (two('>', '=')) return emit2(TokKind::kGe);
  if (two(':', '=')) return emit2(TokKind::kAssign);
  if (two('.', '.')) return emit2(TokKind::kDotDot);

  switch (c) {
    case '(':
      return emit1(TokKind::kLParen);
    case ')':
      return emit1(TokKind::kRParen);
    case '[':
      return emit1(TokKind::kLBracket);
    case ']':
      return emit1(TokKind::kRBracket);
    case '{':
      return emit1(TokKind::kLBrace);
    case '}':
      return emit1(TokKind::kRBrace);
    case ',':
      return emit1(TokKind::kComma);
    case ';':
      return emit1(TokKind::kSemicolon);
    case '$':
      return emit1(TokKind::kDollar);
    case '.':
      return emit1(TokKind::kDot);
    case '/':
      return emit1(TokKind::kSlash);
    case '@':
      return emit1(TokKind::kAt);
    case '*':
      return emit1(TokKind::kStar);
    case '+':
      return emit1(TokKind::kPlus);
    case '-':
      return emit1(TokKind::kMinus);
    case '=':
      return emit1(TokKind::kEq);
    case '<':
      return emit1(TokKind::kLt);
    case '>':
      return emit1(TokKind::kGt);
    case '|':
      return emit1(TokKind::kPipe);
    case '?':
      return emit1(TokKind::kQuestion);
    case '#':
      return emit1(TokKind::kHash);
    default:
      return Status::ParseError(StringPrintf(
          "unexpected character '%c' (line %zu col %zu)", c, line_, col_));
  }
}

}  // namespace xcql::xq
