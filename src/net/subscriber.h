// net::FragmentSubscriber — the client end of the fragment transport.
//
// A receive thread connects, handshakes (learning the stream's Tag
// Structure from the server if it doesn't hold one), asks for a replay
// from the last sequence number it has seen (-1 the first time: the late
// subscriber's full catch-up), and decodes FRAGMENT frames into
// frag::Fragments. Decoded fragments accumulate behind a mutex; the
// application drains them into its FragmentStore / StreamManager from its
// own thread with DrainInto() — the locked handoff that keeps the core
// engine single-threaded. On disconnect the thread reconnects with
// exponential backoff and resumes via REPLAY_FROM, so a subscriber that
// missed frames (restart, drop-oldest gap, network blip) converges back to
// the full stream.
#ifndef XCQL_NET_SUBSCRIBER_H_
#define XCQL_NET_SUBSCRIBER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "frag/fragment_store.h"
#include "net/frame.h"
#include "net/metrics.h"
#include "net/socket.h"

namespace xcql::net {

struct FragmentSubscriberOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string stream;  // stream name to subscribe to
  frag::WireCodec codec = frag::WireCodec::kPlainXml;
  std::chrono::milliseconds backoff_initial{50};
  std::chrono::milliseconds backoff_max{2000};
  /// Known Tag Structure XML; empty = accept the server's at handshake.
  /// When set, its hash travels in HELLO and a mismatching server is
  /// rejected (fatal, no reconnect).
  std::string tag_structure_xml;
};

class FragmentSubscriber {
 public:
  explicit FragmentSubscriber(FragmentSubscriberOptions options);
  ~FragmentSubscriber();

  FragmentSubscriber(const FragmentSubscriber&) = delete;
  FragmentSubscriber& operator=(const FragmentSubscriber&) = delete;

  /// \brief Spawns the receive thread (which owns connecting, handshaking,
  /// reconnecting). Fails if already started.
  Status Start();

  /// \brief Stops the receive thread and closes the connection. Idempotent.
  void Stop();

  /// \brief Moves every fragment received since the previous drain into
  /// `store`, in arrival order, on the caller's thread. Returns how many.
  Result<int> DrainInto(frag::FragmentStore* store);

  /// \brief Like DrainInto, into a plain vector.
  int Drain(std::vector<frag::Fragment>* out);

  /// \brief Highest *contiguously* received FRAGMENT sequence number (-1
  /// before the first). A frame beyond a sequence gap is never admitted:
  /// the subscriber kills the connection and resumes via
  /// REPLAY_FROM(last_seq) instead, so the gap is refetched, not skipped.
  int64_t last_seq() const;

  /// \brief Blocks until last_seq() >= seq (true) or the timeout expires
  /// (false).
  bool WaitForSeq(int64_t seq, std::chrono::milliseconds timeout) const;

  /// \brief Blocks until a handshake completes (true), or the timeout
  /// expires or the subscription failed fatally (false).
  bool WaitConnected(std::chrono::milliseconds timeout) const;

  bool connected() const;

  /// \brief True once the server rejected the handshake (wrong stream or
  /// schema hash); the subscriber has given up reconnecting.
  bool handshake_failed() const;

  /// \brief The stream's Tag Structure XML as learned at the handshake
  /// (or as configured). Errors before the first successful handshake.
  Result<std::string> TagStructureXml() const;

  MetricsSnapshot metrics() const;

  /// \brief Severs the current connection (as a network fault would),
  /// exercising the reconnect + REPLAY_FROM path. Test/chaos hook.
  void KillConnection();

 private:
  void Run();
  // One connect→handshake→receive cycle; returns when the connection dies.
  void Session();
  bool SleepBackoff(std::chrono::milliseconds delay);

  FragmentSubscriberOptions opts_;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  mutable std::mutex state_mu_;
  mutable std::condition_variable state_cv_;
  bool connected_ = false;
  bool fatal_ = false;
  bool ever_connected_ = false;
  std::string ts_xml_;  // set at first handshake (or from options)
  Socket sock_;         // guarded by state_mu_; owned by the receive thread

  // Receive-thread-only: the parsed schema used to decode payloads.
  std::unique_ptr<frag::TagStructure> ts_;

  mutable std::mutex pending_mu_;
  mutable std::condition_variable pending_cv_;
  std::vector<frag::Fragment> pending_;
  int64_t last_seq_ = -1;  // contiguous prefix; written by receive thread

  mutable Metrics metrics_;
};

}  // namespace xcql::net

#endif  // XCQL_NET_SUBSCRIBER_H_
