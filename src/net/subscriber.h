// net::FragmentSubscriber — the client end of the fragment transport.
//
// A receive thread connects, handshakes (learning the stream's Tag
// Structure from the server if it doesn't hold one), asks for a replay
// from the last sequence number it has seen (-1 the first time: the late
// subscriber's full catch-up), and decodes FRAGMENT frames into
// frag::Fragments. Decoded fragments accumulate behind a mutex; the
// application drains them into its FragmentStore / StreamManager from its
// own thread with DrainInto() — the locked handoff that keeps the core
// engine single-threaded. On disconnect the thread reconnects with
// exponential backoff and resumes via REPLAY_FROM, so a subscriber that
// missed frames (restart, drop-oldest gap, network blip) converges back to
// the full stream.
//
// Fault handling (docs/ROBUSTNESS.md):
//  * a v2 frame failing its checksum is counted (frames_corrupt) and
//    treated as a gap — the session ends and resumes via REPLAY_FROM;
//  * a connection with no bytes for liveness_timeout is declared half-dead
//    (liveness_timeouts) and re-dialed with backoff;
//  * a heartbeat showing the server ahead of our contiguous prefix with no
//    frames arriving doubles as a loss detector: after two consecutive
//    lagging heartbeats an in-session REPLAY_FROM (catchup_replays) pulls
//    the missing range without waiting for the next live frame;
//  * a checksum-valid FRAGMENT whose payload fails the codec is poison,
//    not loss: it is quarantined (bounded log, poison_quarantined) and the
//    stream continues past it;
//  * RepairMissing() NACKs the store's unfilled hole ids upstream
//    (REPEAT_REQUEST) with a per-filler retry budget and timeout, after
//    which the filler is declared lost (fillers_repaired / fillers_lost).
#ifndef XCQL_NET_SUBSCRIBER_H_
#define XCQL_NET_SUBSCRIBER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "frag/fragment_store.h"
#include "net/frame.h"
#include "net/metrics.h"
#include "net/socket.h"

namespace xcql::net {

struct FragmentSubscriberOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string stream;  // stream name to subscribe to
  frag::WireCodec codec = frag::WireCodec::kPlainXml;
  std::chrono::milliseconds backoff_initial{50};
  std::chrono::milliseconds backoff_max{2000};
  /// Known Tag Structure XML; empty = accept the server's at handshake.
  /// When set, its hash travels in HELLO and a mismatching server is
  /// rejected (fatal, no reconnect).
  std::string tag_structure_xml;
  /// Reconnect when no bytes (frame or heartbeat) arrive for this long —
  /// a half-dead link otherwise blocks the recv loop forever. Should be a
  /// few multiples of the server's heartbeat interval; 0 disables.
  std::chrono::milliseconds liveness_timeout{10000};
  /// RepairMissing(): NACK attempts per missing filler before it is
  /// declared lost.
  int repair_retry_budget = 4;
  /// RepairMissing(): minimum wait between NACKs of the same filler, and
  /// the grace period after the final attempt before declaring it lost.
  std::chrono::milliseconds repair_retry_interval{500};
  /// Resume state from a previous subscriber's life (e.g. across an
  /// application restart whose store was persisted): the last contiguous
  /// seq already held (-1 = nothing) and the server epoch it came from
  /// (0 = unknown). If the server's epoch differs, the resume point is
  /// discarded and the subscription restarts from scratch.
  int64_t initial_last_seq = -1;
  uint64_t known_epoch = 0;
  /// Per-tsid subscription filter (protocol v3): when non-empty, a
  /// SUBSCRIBE frame carrying these tag-structure ids goes out after every
  /// handshake (before REPLAY_FROM, so replays are filtered too). The
  /// server expands each id to its schema subtree and delivers only
  /// matching fragments, covering the filtered runs with SKIP_TO frames so
  /// the contiguous prefix still advances. Ignored by servers that do not
  /// echo kHelloFlagTsidFilter.
  std::vector<int> filter_tsids;
};

/// \brief Outcome of one RepairMissing() sweep.
struct RepairSummary {
  int missing = 0;         // unfilled hole ids the store reported
  int nacks_sent = 0;      // REPEAT_REQUESTs sent this sweep
  int repaired_total = 0;  // fillers ever recovered after a NACK
  int lost_total = 0;      // fillers ever declared lost (budget exhausted)
  int expired_total = 0;   // fillers the server reported retention-expired
};

/// \brief One quarantined poison fragment (checksum-valid frame whose
/// payload failed the codec).
struct PoisonRecord {
  int64_t seq = 0;
  std::string error;
  size_t payload_bytes = 0;
};

/// \brief One decoded RESULT frame, as drained by DrainResults().
struct RemoteQueryResult {
  uint32_t token = 0;  // which AddRemoteQuery registration it belongs to
  int64_t seq = -1;    // per-query result sequence number
  ResultDelta delta;
};

/// \brief Point-in-time state of one remote query registration.
struct RemoteQueryState {
  bool active = false;       // server acked and the result stream is live
  uint64_t query_id = 0;     // server-assigned id (0 until acked)
  int64_t last_result_seq = -1;  // contiguous prefix of the result stream
  uint32_t last_code = 0;        // last QUERY_STATUS code received
  std::string last_message;      // last QUERY_STATUS message
};

class FragmentSubscriber {
 public:
  explicit FragmentSubscriber(FragmentSubscriberOptions options);
  ~FragmentSubscriber();

  FragmentSubscriber(const FragmentSubscriber&) = delete;
  FragmentSubscriber& operator=(const FragmentSubscriber&) = delete;

  /// \brief Spawns the receive thread (which owns connecting, handshaking,
  /// reconnecting). Fails if already started.
  Status Start();

  /// \brief Stops the receive thread and closes the connection. Idempotent.
  void Stop();

  /// \brief Moves every fragment received since the previous drain into
  /// `store`, in arrival order, on the caller's thread. Returns how many.
  Result<int> DrainInto(frag::FragmentStore* store);

  /// \brief Like DrainInto, into a plain vector.
  int Drain(std::vector<frag::Fragment>* out);

  /// \brief One repair sweep against `store` (call from the draining
  /// thread): NACKs each missing filler that still has retry budget and is
  /// past its retry interval, marks fillers repaired once the store no
  /// longer misses them, and declares the budget-exhausted ones lost.
  /// Fails if the server did not negotiate the v2 protocol (old servers
  /// have no REPEAT_REQUEST).
  Result<RepairSummary> RepairMissing(const frag::FragmentStore& store);

  /// \brief Version-aware NACK for one filler the caller believes is only
  /// partially delivered (some versions present, so MissingFillers() can't
  /// see it). Sends a REPEAT_REQUEST carrying the validTimes the store
  /// already holds; the server re-sends only the other versions, and the
  /// repeats are admitted like any requested repair. Resolution is
  /// observed by RepairMissing() sweeps once the store's version count for
  /// the filler has grown. Call again (after repair_retry_interval) to
  /// retry; the per-filler retry budget applies.
  Status RepairVersions(int64_t filler_id, const frag::FragmentStore& store);

  /// \brief Highest *contiguously* received FRAGMENT sequence number (-1
  /// before the first). A frame beyond a sequence gap is never admitted:
  /// the subscriber kills the connection and resumes via
  /// REPLAY_FROM(last_seq) instead, so the gap is refetched, not skipped.
  int64_t last_seq() const;

  /// \brief Blocks until last_seq() >= seq (true) or the timeout expires
  /// (false).
  bool WaitForSeq(int64_t seq, std::chrono::milliseconds timeout) const;

  /// \brief Blocks until a handshake completes (true), or the timeout
  /// expires or the subscription failed fatally (false).
  bool WaitConnected(std::chrono::milliseconds timeout) const;

  bool connected() const;

  /// \brief True once the server rejected the handshake (wrong stream or
  /// schema hash); the subscriber has given up reconnecting.
  bool handshake_failed() const;

  /// \brief True while the current session negotiated v2 (checksummed)
  /// frames with the server.
  bool server_crc() const;

  /// \brief The stream epoch the server advertised at the last handshake
  /// (0 until then, or against a pre-epoch server). When this changes
  /// across a reconnect the subscriber has already discarded its resume
  /// state (metrics().epoch_resets counts it); the application should
  /// likewise rebuild its store — the old epoch's history is gone.
  uint64_t server_epoch() const;

  /// \brief The stream's Tag Structure XML as learned at the handshake
  /// (or as configured). Errors before the first successful handshake.
  Result<std::string> TagStructureXml() const;

  /// \brief The most recent quarantined poison fragments (bounded).
  std::vector<PoisonRecord> poison_log() const;

  MetricsSnapshot metrics() const;

  /// \brief Registers a remote continuous query (protocol v3): the spec
  /// travels to the server in a QUERY frame on the current session and on
  /// every reconnect, resuming each time from the last contiguous result
  /// seq so the accumulated result stream never gaps or duplicates. The
  /// spec's token and resume seq are overwritten; the returned token
  /// identifies the registration in DrainResults() / query_state().
  /// Callable before Start() and from any thread.
  Result<uint32_t> AddRemoteQuery(RemoteQuerySpec spec);

  /// \brief Deregisters: sends UNQUERY for the server-assigned id (when
  /// active) and forgets the registration and its undrained results.
  Status RemoveRemoteQuery(uint32_t token);

  /// \brief Moves every decoded RESULT frame received since the previous
  /// drain into `out`, in arrival order. Returns how many.
  int DrainResults(std::vector<RemoteQueryResult>* out);

  /// \brief Blocks until the server acks the registration (true) or the
  /// timeout expires (false).
  bool WaitQueryActive(uint32_t token, std::chrono::milliseconds timeout) const;

  /// \brief Blocks until the query's contiguous result prefix reaches
  /// `seq` (true) or the timeout expires (false).
  bool WaitForResultSeq(uint32_t token, int64_t seq,
                        std::chrono::milliseconds timeout) const;

  Result<RemoteQueryState> query_state(uint32_t token) const;

  /// \brief True while the current session negotiated the query channel
  /// (server echoed kHelloFlagQueryChannel).
  bool server_queries() const;

  /// \brief True while the current session negotiated per-tsid filters
  /// (server echoed kHelloFlagTsidFilter).
  bool server_filter() const;

  /// \brief True while the current session negotiated retention (server
  /// echoed kHelloFlagRetention: a retention policy is active and EXPIRED
  /// frames may flow instead of a BYE when we resume below the floor).
  bool server_retention() const;

  /// \brief Severs the current connection (as a network fault would),
  /// exercising the reconnect + REPLAY_FROM path. Test/chaos hook.
  void KillConnection();

 private:
  struct RepairState {
    int attempts = 0;
    std::chrono::steady_clock::time_point last_sent{};
    bool lost = false;
    bool resolved = false;
    /// The server answered the NACK with EXPIRED: the filler was
    /// compacted below the retention floor on purpose. Not a loss — the
    /// repair stops retrying without burning the budget, and queries see
    /// the hole as expired (HolePolicy), not missing.
    bool expired = false;
    /// RepairVersions() only: how many versions the store held when the
    /// NACK went out. The repair resolves when the count grows, not when
    /// the filler stops being "missing" (it never was).
    int versions_at_request = -1;
  };

  struct RemoteQuery {
    RemoteQuerySpec spec;  // token = ours; last_result_seq = resume point
    RemoteQueryState state;
  };

  void Run();
  // One connect→handshake→receive cycle; returns when the connection dies.
  void Session();
  /// Re-sends every registered QUERY on a fresh session, each resuming
  /// from its own contiguous result seq. Receive thread, post-handshake.
  void ResendQueries();
  /// Builds and sends one QUERY frame for `q` (caller holds no locks).
  Status SendQuery(RemoteQuerySpec spec);
  bool SleepBackoff(std::chrono::milliseconds delay);
  /// Serialized post-handshake send on the current socket (receive thread
  /// and RepairMissing callers share it), in the negotiated wire version.
  Status SendFrame(const Frame& frame);
  /// Whether a repeat-flagged frame for `filler_id` was actually NACKed
  /// (anything else is an unsolicited retransmission to discard).
  bool RepairRequested(int64_t filler_id) const;
  void QuarantinePoison(int64_t seq, const Status& error,
                        size_t payload_bytes);

  FragmentSubscriberOptions opts_;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  mutable std::mutex state_mu_;
  mutable std::condition_variable state_cv_;
  bool connected_ = false;
  bool fatal_ = false;
  bool ever_connected_ = false;
  /// Wire version for outgoing frames, per the HELLO flag negotiation.
  uint8_t wire_version_ = kFrameVersion;
  /// Current session negotiated the query channel (HELLO ack echoed the
  /// flag). Guarded by state_mu_.
  bool server_queries_ = false;
  /// Current session negotiated per-tsid filters. Guarded by state_mu_.
  bool server_filter_ = false;
  /// Current session negotiated retention / EXPIRED frames. Guarded by
  /// state_mu_.
  bool server_retention_ = false;
  std::string ts_xml_;  // set at first handshake (or from options)
  Socket sock_;         // guarded by state_mu_; owned by the receive thread

  // Receive-thread-only: the parsed schema used to decode payloads.
  std::unique_ptr<frag::TagStructure> ts_;
  // Receive-thread-only: consecutive handshake rejections. A single BYE
  // can be a transiently mangled HELLO (chaos, line noise) rather than a
  // real stream/schema mismatch, so fatal_ is only declared after a few
  // rejections in a row; any successful handshake resets the count.
  int handshake_rejects_ = 0;

  mutable std::mutex pending_mu_;
  mutable std::condition_variable pending_cv_;
  std::vector<frag::Fragment> pending_;
  int64_t last_seq_ = -1;  // contiguous prefix; written by receive thread
  uint64_t epoch_ = 0;     // server epoch as of the last handshake
  std::deque<PoisonRecord> poison_log_;  // bounded, newest at the back
  // Remote query registrations and their undrained results. Guarded by
  // pending_mu_ (they share the drain/wait machinery with fragments).
  std::map<uint32_t, RemoteQuery> queries_;
  std::map<uint64_t, uint32_t> query_by_id_;  // server id → our token
  std::vector<RemoteQueryResult> results_;
  uint32_t next_token_ = 1;

  // NACK bookkeeping per missing filler id. Guarded by repair_mu_.
  mutable std::mutex repair_mu_;
  std::map<int64_t, RepairState> repairs_;

  mutable Metrics metrics_;
};

}  // namespace xcql::net

#endif  // XCQL_NET_SUBSCRIBER_H_
