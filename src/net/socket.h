// Thin RAII wrappers over POSIX TCP sockets — everything the fragment
// transport needs and nothing more: listen/accept, connect, send-all,
// blocking recv, and Shutdown() as the cross-thread wakeup for blocked
// reads and writes.
#ifndef XCQL_NET_SOCKET_H_
#define XCQL_NET_SOCKET_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"

namespace xcql::net {

/// \brief Owns one socket file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// \brief Shuts down both directions without closing the descriptor:
  /// safe to call from another thread to wake a blocked Recv/SendAll
  /// (closing concurrently would race on fd reuse).
  void Shutdown();

  void Close();

  /// \brief Sends the whole buffer, retrying short writes and EINTR.
  Status SendAll(const void* data, size_t len);

  /// \brief Receives up to `len` bytes. Returns 0 on orderly shutdown.
  Result<size_t> Recv(void* buf, size_t len);

  /// \brief Like Recv, but waits at most `timeout` for data. On timeout
  /// returns 0 with *timed_out set; otherwise *timed_out is cleared and
  /// the semantics match Recv (0 = orderly shutdown). The liveness
  /// watchdog of the subscriber is built on this.
  Result<size_t> RecvTimeout(void* buf, size_t len,
                             std::chrono::milliseconds timeout,
                             bool* timed_out);

  /// \brief Switches the fd to O_NONBLOCK for event-loop use.
  Status SetNonBlocking();

  /// \brief Single non-blocking send. Returns the bytes written (possibly
  /// 0); a full kernel buffer sets *would_block instead of failing.
  Result<size_t> SendNonBlocking(const void* data, size_t len,
                                 bool* would_block);

  /// \brief Single non-blocking recv. Returns 0 on orderly shutdown; no
  /// data yet sets *would_block with a 0 return.
  Result<size_t> RecvNonBlocking(void* buf, size_t len, bool* would_block);

 private:
  int fd_ = -1;
};

/// \brief Binds and listens on 0.0.0.0:`port` (0 = ephemeral; read the
/// chosen port back with BoundPort).
Result<Socket> ListenOn(uint16_t port, int backlog = 128);

/// \brief The locally bound port of a listening (or connected) socket.
Result<uint16_t> BoundPort(const Socket& sock);

/// \brief Blocks until a connection arrives. Fails once the listener is
/// Shutdown().
Result<Socket> Accept(const Socket& listener);

/// \brief Connects to `host`:`port` (dotted-quad or DNS name).
Result<Socket> ConnectTo(const std::string& host, uint16_t port);

}  // namespace xcql::net

#endif  // XCQL_NET_SOCKET_H_
