// net::QueryChannel — the server side of remote continuous queries
// (protocol v3): evaluate once, fan out to N.
//
// The channel owns a mirror of the served stream (its own StreamHub /
// FragmentStore / SimClock) plus an incremental ContinuousQueryEngine.
// The FragmentServer feeds it every log-appended fragment, in seq order;
// the channel inserts the fragment into the mirror store, advances the
// clock to the store's high-water validTime, and ticks the engine — one
// tick per appended fragment, so the result stream of every query is a
// deterministic function of the (durable) fragment log. Each query's
// per-tick delta is encoded as a seq-numbered RESULT frame, appended to
// that query's in-memory result log, and delivered to every subscribed
// sink. Identical registrations (same XCQL text and options) share one
// engine query and one result log: the evaluate-once half of the design.
//
// Durability: with a registry path configured, each first-time
// registration appends a v2-encoded QUERY frame (and each final
// deregistration an UNQUERY tombstone) to an fsync'd append-only file.
// Open() replays it, so registered queries survive a crash; the result
// logs themselves are *not* persisted — recovery re-registers the
// queries and the server's history feed regenerates them byte-identical
// (determinism above). The registration's log position rides in the
// record so a query registered mid-stream re-attaches at the same
// position and its result seqs line up with the previous incarnation.
//
// Threading: all entry points lock the channel mutex. The server calls
// OnFragment on the publisher thread (holding its log_mu_) and
// Register/Subscribe/DropSink from connection reader threads; sink
// delivery happens under the channel mutex, so a sink's view of one
// query's result log is totally ordered. Lock order:
// FragmentServer::log_mu_ → QueryChannel::mu_ → Connection::mu.
#ifndef XCQL_NET_QUERY_CHANNEL_H_
#define XCQL_NET_QUERY_CHANNEL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "frag/fragment.h"
#include "frag/fragment_store.h"
#include "frag/tag_structure.h"
#include "net/frame.h"
#include "stream/clock.h"
#include "stream/continuous.h"
#include "stream/registry.h"
#include "xcql/translator.h"

namespace xcql::net {

struct QueryChannelOptions {
  /// Maximum distinct queries registered at once (UNQUERY frees
  /// capacity); <= 0 = unlimited. The per-connection cap lives in
  /// FragmentServerOptions::max_queries_per_conn.
  int max_queries = 64;
  /// Append-only registry file ("" = registrations are in-memory only):
  /// QUERY/UNQUERY frames, fsync'd per record, replayed by Open().
  std::string registry_path;
  /// Engine evaluation workers; -1 = engine default. Worker count never
  /// changes the emitted delta stream (callbacks fire in query-id order).
  int engine_workers = -1;
};

/// \brief Point-in-time channel counters.
struct QueryChannelStats {
  int active_queries = 0;     // distinct queries currently registered
  int active_sinks = 0;       // subscriber attachments across all queries
  int pending_queries = 0;    // recovered, waiting for their log position
  int64_t result_frames = 0;  // RESULT frames appended across all queries
  int64_t fragments_fed = 0;  // fragments ticked through the engine
  int64_t recovered_queries = 0;  // registrations replayed by Open()
  int64_t encode_failures = 0;    // deltas that failed to frame (oversize)
  int64_t result_log_trimmed = 0;  // RESULT frames dropped by retention
  int64_t result_log_bytes = 0;    // encoded bytes retained across logs
};

class QueryChannel {
 public:
  /// Sink delivery: one encoded v2 RESULT frame, called under the channel
  /// mutex (keep it non-blocking toward channel re-entry; enqueueing to a
  /// connection's outbound queue is the intended body). The frame buffer
  /// is shared — sinks queue the refcounted pointer, never a copy.
  using Deliver =
      std::function<void(const std::shared_ptr<const std::string>& frame)>;

  QueryChannel(std::string stream_name, frag::TagStructure ts,
               QueryChannelOptions options = {});
  ~QueryChannel();

  QueryChannel(const QueryChannel&) = delete;
  QueryChannel& operator=(const QueryChannel&) = delete;

  /// \brief Replays the durable registry (no-op without a registry path).
  /// Call once, before any fragment is fed — recovered mid-stream
  /// registrations re-attach only if their log position is still ahead.
  Status Open();

  /// \brief Validates and admits a query registration. An identical
  /// registration (same text + options) returns the existing id without
  /// consuming capacity. On a capacity refusal the status is not OK and
  /// *rejected_by_limit (when given) is set, so the caller can answer
  /// with kQueryStatusRejected rather than kQueryStatusInvalid.
  Result<uint64_t> Register(const RemoteQuerySpec& spec,
                            bool* rejected_by_limit = nullptr);

  /// \brief Explicit UNQUERY: deregisters the query if no sink is still
  /// attached (and tombstones it in the registry); with sinks remaining
  /// the registration stays and OK is returned. Disconnects do NOT
  /// deregister — a reconnecting subscriber resumes the same result log.
  Status Unregister(uint64_t query_id);

  /// \brief Attaches a sink to a query's result stream: replays every
  /// logged RESULT frame after `last_seq` through `deliver` and then
  /// keeps delivering live frames, with no gap (both happen under the
  /// channel mutex). `handle` identifies the sink for removal. A resume
  /// below the retained log base opens with an EXPIRED(kResultRange)
  /// frame — but only when `send_expired` says the peer negotiated
  /// kHelloFlagRetention; otherwise the replay silently starts at the
  /// base (an un-negotiated peer rejects frame type kExpired as stream
  /// corruption, and cutting it would just loop the same resume).
  Status Subscribe(uint64_t query_id, int64_t last_seq, const void* handle,
                   Deliver deliver, bool send_expired = true);

  /// \brief Detaches one sink from one query (absent = no-op).
  void Unsubscribe(uint64_t query_id, const void* handle);

  /// \brief Detaches `handle` from every query (connection teardown).
  void DropSink(const void* handle);

  /// \brief Feed one appended fragment (in log order): mirror-insert,
  /// advance the clock, tick the engine, append + fan out result frames.
  void OnFragment(const frag::Fragment& fragment);

  QueryChannelStats stats() const;

  /// \brief Number of RESULT frames logged for `query_id` (0 if unknown),
  /// retention-trimmed frames included: the seq the next EmitDelta mints.
  int64_t result_log_size(uint64_t query_id) const;

  /// \brief Oldest retained result seq for `query_id` (0 if unknown or
  /// never trimmed). Subscribes below this get an EXPIRED marker first.
  int64_t result_log_base(uint64_t query_id) const;

  /// \brief Retention: bounds every query's result log to the newest
  /// `max_results` frames (older ones are only replayable via the WAL
  /// checkpoint — a rebuilt channel regenerates them). Returns the number
  /// of frames dropped across all logs. <= 0 keeps everything.
  int64_t TrimResultLogs(int64_t max_results);

  /// \brief The earliest validTime any registered query can still observe
  /// at `now` — the union of per-query minimal windows (see
  /// lang::ObservableWindow). DateTime::Start() ⇔ some query pins
  /// retention (unbounded window, or recovered-and-pending so its window
  /// is unknown); its ids are appended to *pinning when given.
  /// DateTime::End() ⇔ no query constrains retention.
  DateTime ObservableFloor(DateTime now,
                           std::vector<uint64_t>* pinning = nullptr) const;

  /// \brief Compacts the channel's mirror store with the same policy/floor
  /// the server applied to its own store, so the two stay in lockstep and
  /// the mirror's memory is bounded too. Safe for results by the
  /// ObservableWindow contract: only versions no registered query can
  /// observe are removed. Returns what the compaction removed.
  frag::CompactionStats CompactMirror(const frag::RetentionPolicy& policy,
                                      DateTime now, DateTime observe_floor);

  /// \brief Approximate heap footprint of the mirror store (the
  /// fragment_store_bytes gauge).
  int64_t mirror_store_bytes() const;

  /// \brief Compiles `spec` against this channel's schema and returns its
  /// relevance summary (which tsids can affect the result). Lock-free: the
  /// schema is immutable after construction, and the throwaway executor
  /// reads only the store's tag structure, never its fragments. Used by
  /// the server to derive per-tsid subscription filters
  /// (kQueryFlagAutoFilter).
  Result<lang::QueryRelevance> AnalyzeSpec(const RemoteQuerySpec& spec) const;

 private:
  struct Sink {
    const void* handle = nullptr;
    Deliver deliver;
  };
  struct QueryState {
    RemoteQuerySpec spec;  // canonical: token / resume seq zeroed
    int engine_id = 0;
    /// Fragments already fed when the query registered: its first tick
    /// observes the mirror store at exactly this position.
    int64_t register_pos = 0;
    /// Seq of log[0]: retention drops a prefix by erasing entries and
    /// advancing the base, so seqs stay stable across trims.
    int64_t log_base = 0;
    // Encoded v2 RESULT frames; seq = log_base + index. Refcounted so
    // fan-out and replay enqueue views of one buffer.
    std::vector<std::shared_ptr<const std::string>> log;
    std::vector<Sink> sinks;
  };

  static std::string CanonicalKey(const RemoteQuerySpec& spec);
  static Status ValidateSpec(const RemoteQuerySpec& spec);
  static stream::ContinuousQueryOptions ToEngineOptions(
      const RemoteQuerySpec& spec);

  /// Registers `spec` into the engine under mu_, wiring the delta
  /// callback that encodes/logs/delivers RESULT frames.
  Result<uint64_t> AdmitLocked(const RemoteQuerySpec& spec,
                               int64_t register_pos, uint64_t forced_id,
                               bool persist, bool* rejected_by_limit);
  /// Activates recovered registrations whose log position has been
  /// reached by the fragment feed.
  void ActivatePendingLocked();
  /// Appends one record (a QUERY or UNQUERY frame) to the registry file,
  /// fsync'd, bracketed by the queryreg WalHooks crash points. On any
  /// failure the partial record is truncated away (through a FRESH
  /// descriptor when the fsync failed — never re-fsync a descriptor whose
  /// fsync already failed) so the file ends on a record boundary and
  /// later successful appends cannot bury a torn record mid-file. When
  /// even that repair fails, the registry is marked broken and every
  /// subsequent persist is refused: a QUERY that cannot be made durable
  /// is rejected, never acked-durable-but-volatile.
  Status PersistLocked(FrameType type, const std::string& payload,
                       uint64_t id);
  void EmitDelta(uint64_t id, const xq::Sequence& added,
                 const std::vector<std::string>& removed, DateTime at);

  const std::string stream_name_;
  const QueryChannelOptions opts_;

  mutable std::mutex mu_;
  stream::SimClock clock_;
  stream::StreamHub hub_;
  stream::ContinuousQueryEngine engine_;
  frag::FragmentStore* store_ = nullptr;  // owned by hub_

  std::map<std::string, uint64_t> by_key_;  // canonical key → query id
  std::map<uint64_t, QueryState> queries_;
  /// Recovered registrations waiting for the feed to reach their
  /// registration position (keyed by id; spec.last_result_seq unused).
  std::map<uint64_t, QueryState> pending_;
  uint64_t next_id_ = 1;
  int64_t fragments_fed_ = 0;
  int64_t result_frames_ = 0;
  int64_t result_log_trimmed_ = 0;
  int64_t recovered_queries_ = 0;
  int64_t encode_failures_ = 0;
  int registry_fd_ = -1;
  /// Registry bytes known durable (== file size at the last record
  /// boundary); the truncation target when an append fails part-way.
  int64_t registry_bytes_ = 0;
  /// Set when a failed append could not be repaired: the on-disk registry
  /// may end in a torn record, so no further record may be appended.
  bool registry_broken_ = false;
};

}  // namespace xcql::net

#endif  // XCQL_NET_QUERY_CHANNEL_H_
