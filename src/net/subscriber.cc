#include "net/subscriber.h"

#include <algorithm>
#include <iterator>

namespace xcql::net {

FragmentSubscriber::FragmentSubscriber(FragmentSubscriberOptions options)
    : opts_(std::move(options)) {
  if (!opts_.tag_structure_xml.empty()) {
    auto ts = frag::TagStructure::Parse(opts_.tag_structure_xml);
    if (ts.ok()) {
      ts_ = std::make_unique<frag::TagStructure>(std::move(ts).MoveValue());
      ts_xml_ = opts_.tag_structure_xml;
    }
  }
}

FragmentSubscriber::~FragmentSubscriber() { Stop(); }

Status FragmentSubscriber::Start() {
  if (started_) return Status::InvalidArgument("subscriber already started");
  if (opts_.stream.empty()) {
    return Status::InvalidArgument("subscriber needs a stream name");
  }
  stopping_.store(false);
  thread_ = std::thread([this] { Run(); });
  started_ = true;
  return Status::OK();
}

void FragmentSubscriber::Stop() {
  if (!started_) return;
  started_ = false;
  stopping_.store(true);
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    sock_.Shutdown();
    state_cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

bool FragmentSubscriber::SleepBackoff(std::chrono::milliseconds delay) {
  std::unique_lock<std::mutex> lock(state_mu_);
  state_cv_.wait_for(lock, delay, [this] { return stopping_.load(); });
  return !stopping_.load();
}

void FragmentSubscriber::Run() {
  auto delay = opts_.backoff_initial;
  while (!stopping_.load()) {
    auto sock = ConnectTo(opts_.host, opts_.port);
    if (sock.ok()) {
      bool bail;
      {
        std::lock_guard<std::mutex> lock(state_mu_);
        // Stop() may have shut down the *previous* socket while we were
        // inside ConnectTo; entering Session() on the fresh one would
        // block Stop()'s join for as long as the server keeps talking.
        bail = stopping_.load();
        if (!bail) sock_ = std::move(sock).MoveValue();
      }
      if (bail) break;
      Session();
      bool was_connected;
      {
        std::lock_guard<std::mutex> lock(state_mu_);
        was_connected = connected_;
        connected_ = false;
        sock_.Close();
        state_cv_.notify_all();
      }
      if (fatal_ || stopping_.load()) break;
      if (was_connected) delay = opts_.backoff_initial;
    }
    if (!SleepBackoff(delay)) break;
    delay = std::min(delay * 2, opts_.backoff_max);
  }
  std::lock_guard<std::mutex> lock(state_mu_);
  connected_ = false;
  state_cv_.notify_all();
}

void FragmentSubscriber::Session() {
  Hello hello;
  hello.stream_name = opts_.stream;
  hello.codec = opts_.codec;
  hello.ts_hash = ts_xml_.empty() ? 0 : TagStructureHash(ts_xml_);
  Frame out;
  out.type = FrameType::kHello;
  out.payload = EncodeHello(hello);
  auto hello_bytes = EncodeFrame(out);
  if (!hello_bytes.ok()) return;
  const std::string& bytes = hello_bytes.value();
  if (!sock_.SendAll(bytes.data(), bytes.size()).ok()) return;
  metrics_.AddFrameOut(static_cast<int64_t>(bytes.size()));

  FrameReader reader;
  char buf[64 * 1024];
  bool handshaken = false;
  for (;;) {
    if (stopping_.load()) return;
    auto n = sock_.Recv(buf, sizeof(buf));
    if (!n.ok() || n.value() == 0) return;
    reader.Feed(buf, n.value());
    for (;;) {
      auto next = reader.Next();
      if (!next.ok()) return;  // malformed stream: drop and reconnect
      if (!next.value().has_value()) break;
      Frame frame = std::move(*next.value());
      metrics_.AddFrameIn(
          static_cast<int64_t>(kFrameHeaderSize + frame.payload.size()));
      if (!handshaken) {
        // The server answers HELLO with HELLO, or BYE on rejection.
        if (frame.type != FrameType::kHello) {
          metrics_.AddHandshakeFailure();
          std::lock_guard<std::mutex> lock(state_mu_);
          fatal_ = true;
          state_cv_.notify_all();
          return;
        }
        auto ack = DecodeHello(frame.payload);
        bool ok = ack.ok() && ack.value().stream_name == opts_.stream;
        if (ok && ts_ == nullptr) {
          auto ts = frag::TagStructure::Parse(ack.value().tag_structure_xml);
          if (ts.ok() &&
              TagStructureHash(ack.value().tag_structure_xml) ==
                  ack.value().ts_hash) {
            ts_ = std::make_unique<frag::TagStructure>(
                std::move(ts).MoveValue());
          } else {
            ok = false;
          }
        } else if (ok && TagStructureHash(ts_xml_) != ack.value().ts_hash) {
          ok = false;
        }
        if (!ok) {
          metrics_.AddHandshakeFailure();
          std::lock_guard<std::mutex> lock(state_mu_);
          fatal_ = true;
          state_cv_.notify_all();
          return;
        }
        handshaken = true;
        {
          std::lock_guard<std::mutex> lock(state_mu_);
          if (ts_xml_.empty()) ts_xml_ = ack.value().tag_structure_xml;
          connected_ = true;
          if (ever_connected_) metrics_.AddReconnect();
          ever_connected_ = true;
          state_cv_.notify_all();
        }
        // Resume from where we left off (-1 the first time = everything:
        // the late subscriber's catch-up).
        Frame replay;
        replay.type = FrameType::kReplayFrom;
        replay.payload = EncodeReplayFrom(last_seq());
        auto replay_bytes = EncodeFrame(replay);
        if (!replay_bytes.ok()) return;
        const std::string& rb = replay_bytes.value();
        if (!sock_.SendAll(rb.data(), rb.size()).ok()) return;
        metrics_.AddFrameOut(static_cast<int64_t>(rb.size()));
        metrics_.AddReplayRequested();
        continue;
      }
      switch (frame.type) {
        case FrameType::kFragment: {
          // last_seq_ tracks the *contiguous* prefix, and only the
          // receive thread writes it, so reading it via the locked getter
          // and advancing later cannot race.
          const int64_t seq = static_cast<int64_t>(frame.seq);
          const int64_t have = last_seq();
          if (seq <= have) break;  // retransmission of a frame we hold
          if (seq > have + 1) {
            // Frames between have and seq are gone (kDropOldest eviction
            // ahead of the replay): cut the connection and resume from
            // the last contiguous seq — silently skipping the gap would
            // permanently lose the dropped fragments.
            metrics_.AddGapDetected();
            return;
          }
          frag::WireCodec codec = (frame.flags & kFlagCompressedPayload)
                                      ? frag::WireCodec::kTagCompressed
                                      : frag::WireCodec::kPlainXml;
          auto fragment = frag::DecodeWirePayload(frame.payload, *ts_, codec);
          if (!fragment.ok()) return;  // schema drift: resync via reconnect
          metrics_.AddFragmentIn();
          std::lock_guard<std::mutex> lock(pending_mu_);
          pending_.push_back(std::move(fragment).MoveValue());
          last_seq_ = seq;
          pending_cv_.notify_all();
          break;
        }
        case FrameType::kHeartbeat:
          break;  // liveness only
        case FrameType::kBye:
          return;  // server going away; reconnect with backoff
        default:
          break;
      }
    }
  }
}

Result<int> FragmentSubscriber::DrainInto(frag::FragmentStore* store) {
  std::vector<frag::Fragment> batch;
  Drain(&batch);
  int n = static_cast<int>(batch.size());
  XCQL_RETURN_NOT_OK(store->InsertAll(std::move(batch)));
  return n;
}

int FragmentSubscriber::Drain(std::vector<frag::Fragment>* out) {
  std::lock_guard<std::mutex> lock(pending_mu_);
  int n = static_cast<int>(pending_.size());
  if (out->empty()) {
    out->swap(pending_);
  } else {
    std::move(pending_.begin(), pending_.end(), std::back_inserter(*out));
    pending_.clear();
  }
  return n;
}

int64_t FragmentSubscriber::last_seq() const {
  std::lock_guard<std::mutex> lock(pending_mu_);
  return last_seq_;
}

bool FragmentSubscriber::WaitForSeq(int64_t seq,
                                    std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(pending_mu_);
  return pending_cv_.wait_for(lock, timeout,
                              [&] { return last_seq_ >= seq; });
}

bool FragmentSubscriber::WaitConnected(
    std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(state_mu_);
  state_cv_.wait_for(lock, timeout,
                     [this] { return connected_ || fatal_; });
  return connected_;
}

bool FragmentSubscriber::connected() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return connected_;
}

bool FragmentSubscriber::handshake_failed() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return fatal_;
}

Result<std::string> FragmentSubscriber::TagStructureXml() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (ts_xml_.empty()) {
    return Status::NotFound("no handshake completed yet");
  }
  return ts_xml_;
}

MetricsSnapshot FragmentSubscriber::metrics() const {
  return metrics_.Snapshot();
}

void FragmentSubscriber::KillConnection() {
  std::lock_guard<std::mutex> lock(state_mu_);
  sock_.Shutdown();
}

}  // namespace xcql::net
