#include "net/subscriber.h"

#include <algorithm>
#include <iterator>
#include <unordered_set>

namespace xcql::net {

namespace {

// Quarantine log depth: enough to diagnose a poisoning publisher, bounded
// so a hostile stream cannot grow subscriber memory.
constexpr size_t kMaxPoisonLog = 16;

// Consecutive lagging heartbeats (same stalled last_seq) before the loss
// detector trusts the lag. One heartbeat can race the publish that bumped
// the server's published counter before the frame was enqueued; two in a
// row with zero progress means the frames are not coming.
constexpr int kHeartbeatLagThreshold = 2;

// Consecutive handshake rejections before the subscriber gives up for
// good. A genuine wrong-stream/wrong-schema rejection repeats every time,
// so fatal still surfaces within a few backoff rounds; a HELLO mangled in
// flight (control-plane chaos) gets retried instead of wedging forever.
constexpr int kHandshakeRejectLimit = 3;

}  // namespace

FragmentSubscriber::FragmentSubscriber(FragmentSubscriberOptions options)
    : opts_(std::move(options)) {
  last_seq_ = opts_.initial_last_seq;
  epoch_ = opts_.known_epoch;
  if (!opts_.tag_structure_xml.empty()) {
    auto ts = frag::TagStructure::Parse(opts_.tag_structure_xml);
    if (ts.ok()) {
      ts_ = std::make_unique<frag::TagStructure>(std::move(ts).MoveValue());
      ts_xml_ = opts_.tag_structure_xml;
    }
  }
}

FragmentSubscriber::~FragmentSubscriber() { Stop(); }

Status FragmentSubscriber::Start() {
  if (started_) return Status::InvalidArgument("subscriber already started");
  if (opts_.stream.empty()) {
    return Status::InvalidArgument("subscriber needs a stream name");
  }
  stopping_.store(false);
  thread_ = std::thread([this] { Run(); });
  started_ = true;
  return Status::OK();
}

void FragmentSubscriber::Stop() {
  if (!started_) return;
  started_ = false;
  stopping_.store(true);
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    sock_.Shutdown();
    state_cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

bool FragmentSubscriber::SleepBackoff(std::chrono::milliseconds delay) {
  std::unique_lock<std::mutex> lock(state_mu_);
  state_cv_.wait_for(lock, delay, [this] { return stopping_.load(); });
  return !stopping_.load();
}

void FragmentSubscriber::Run() {
  auto delay = opts_.backoff_initial;
  while (!stopping_.load()) {
    auto sock = ConnectTo(opts_.host, opts_.port);
    if (sock.ok()) {
      bool bail;
      {
        std::lock_guard<std::mutex> lock(state_mu_);
        // Stop() may have shut down the *previous* socket while we were
        // inside ConnectTo; entering Session() on the fresh one would
        // block Stop()'s join for as long as the server keeps talking.
        bail = stopping_.load();
        if (!bail) sock_ = std::move(sock).MoveValue();
      }
      if (bail) break;
      Session();
      bool was_connected;
      {
        std::lock_guard<std::mutex> lock(state_mu_);
        was_connected = connected_;
        connected_ = false;
        wire_version_ = kFrameVersion;
        server_queries_ = false;
        server_filter_ = false;
        server_retention_ = false;
        sock_.Close();
        state_cv_.notify_all();
      }
      if (fatal_ || stopping_.load()) break;
      if (was_connected) delay = opts_.backoff_initial;
    }
    if (!SleepBackoff(delay)) break;
    delay = std::min(delay * 2, opts_.backoff_max);
  }
  std::lock_guard<std::mutex> lock(state_mu_);
  connected_ = false;
  state_cv_.notify_all();
}

Status FragmentSubscriber::SendFrame(const Frame& frame) {
  // state_mu_ both validates the socket (Run() swaps it between sessions)
  // and serializes writers: the receive thread's in-session REPLAY_FROM
  // and an application thread's NACK must not interleave on the fd.
  std::lock_guard<std::mutex> lock(state_mu_);
  if (!sock_.valid() || !connected_) {
    return Status::Internal("subscriber not connected");
  }
  if (frame.type == FrameType::kRepeatRequest &&
      wire_version_ != kFrameVersionCrc) {
    return Status::Unsupported(
        "server did not negotiate v2 frames (no REPEAT_REQUEST support)");
  }
  XCQL_ASSIGN_OR_RETURN(std::string bytes, EncodeFrame(frame, wire_version_));
  XCQL_RETURN_NOT_OK(sock_.SendAll(bytes.data(), bytes.size()));
  metrics_.AddFrameOut(static_cast<int64_t>(bytes.size()));
  return Status::OK();
}

bool FragmentSubscriber::RepairRequested(int64_t filler_id) const {
  std::lock_guard<std::mutex> lock(repair_mu_);
  auto it = repairs_.find(filler_id);
  // A late repeat for an already-lost filler still heals the store, so
  // `lost` does not bar admission; `resolved` fillers need nothing more.
  return it != repairs_.end() && it->second.attempts > 0 &&
         !it->second.resolved;
}

void FragmentSubscriber::QuarantinePoison(int64_t seq, const Status& error,
                                          size_t payload_bytes) {
  metrics_.AddPoisonQuarantined();
  std::lock_guard<std::mutex> lock(pending_mu_);
  if (poison_log_.size() >= kMaxPoisonLog) poison_log_.pop_front();
  PoisonRecord rec;
  rec.seq = seq;
  rec.error = error.message();
  rec.payload_bytes = payload_bytes;
  poison_log_.push_back(std::move(rec));
}

void FragmentSubscriber::Session() {
  Hello hello;
  hello.stream_name = opts_.stream;
  hello.codec = opts_.codec;
  hello.ts_hash = ts_xml_.empty() ? 0 : TagStructureHash(ts_xml_);
  Frame out;
  out.type = FrameType::kHello;
  // Advertise v2 frames, the query channel and per-tsid filters; the ack
  // decides each (an old server ignores unknown flag bits, so v3 types
  // never flow to it).
  out.flags = kHelloFlagCrcFrames | kHelloFlagQueryChannel |
              kHelloFlagTsidFilter | kHelloFlagRetention;
  out.payload = EncodeHello(hello);
  // HELLO always goes out v1 so servers of either vintage can parse it.
  auto hello_bytes = EncodeFrame(out, kFrameVersion);
  if (!hello_bytes.ok()) return;
  const std::string& bytes = hello_bytes.value();
  if (!sock_.SendAll(bytes.data(), bytes.size()).ok()) return;
  metrics_.AddFrameOut(static_cast<int64_t>(bytes.size()));

  FrameReader reader;
  char buf[64 * 1024];
  bool handshaken = false;
  // Heartbeat loss detector state: the last_seq a lagging heartbeat saw,
  // and how many lagging heartbeats in a row saw it unchanged.
  int64_t lag_have = -2;
  int lag_count = 0;
  auto last_rx = std::chrono::steady_clock::now();
  for (;;) {
    if (stopping_.load()) return;
    size_t got = 0;
    if (opts_.liveness_timeout.count() > 0) {
      auto deadline = last_rx + opts_.liveness_timeout;
      auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        metrics_.AddLivenessTimeout();
        return;  // half-dead link: reconnect with backoff
      }
      bool timed_out = false;
      auto n = sock_.RecvTimeout(
          buf, sizeof(buf),
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                now),
          &timed_out);
      if (!n.ok()) return;
      if (timed_out) {
        metrics_.AddLivenessTimeout();
        return;
      }
      if (n.value() == 0) return;
      got = n.value();
    } else {
      auto n = sock_.Recv(buf, sizeof(buf));
      if (!n.ok() || n.value() == 0) return;
      got = n.value();
    }
    last_rx = std::chrono::steady_clock::now();
    reader.Feed(buf, got);
    for (;;) {
      auto next = reader.Next();
      if (!next.ok()) return;  // malformed stream: drop and reconnect
      if (!next.value().has_value()) break;
      Frame frame = std::move(*next.value());
      metrics_.AddFrameIn(static_cast<int64_t>(
          (frame.wire_version == kFrameVersionCrc ? kFrameHeaderSizeCrc
                                                  : kFrameHeaderSize) +
          frame.payload.size()));
      if (!frame.crc_ok) {
        // Bits flipped in flight. The frame's content is untrusted, so
        // treat it exactly like a gap: end the session and resume via
        // REPLAY_FROM(last contiguous seq) — the server still holds it.
        metrics_.AddFrameCorrupt();
        return;
      }
      if (!handshaken) {
        // The server answers HELLO with HELLO, or BYE on rejection.
        if (frame.type != FrameType::kHello) {
          metrics_.AddHandshakeFailure();
          if (++handshake_rejects_ >= kHandshakeRejectLimit) {
            std::lock_guard<std::mutex> lock(state_mu_);
            fatal_ = true;
            state_cv_.notify_all();
          }
          return;
        }
        auto ack = DecodeHello(frame.payload);
        bool ok = ack.ok() && ack.value().stream_name == opts_.stream;
        if (ok && ts_ == nullptr) {
          auto ts = frag::TagStructure::Parse(ack.value().tag_structure_xml);
          if (ts.ok() &&
              TagStructureHash(ack.value().tag_structure_xml) ==
                  ack.value().ts_hash) {
            ts_ = std::make_unique<frag::TagStructure>(
                std::move(ts).MoveValue());
          } else {
            ok = false;
          }
        } else if (ok && TagStructureHash(ts_xml_) != ack.value().ts_hash) {
          ok = false;
        }
        if (!ok) {
          metrics_.AddHandshakeFailure();
          if (++handshake_rejects_ >= kHandshakeRejectLimit) {
            std::lock_guard<std::mutex> lock(state_mu_);
            fatal_ = true;
            state_cv_.notify_all();
          }
          return;
        }
        handshaken = true;
        handshake_rejects_ = 0;
        {
          std::lock_guard<std::mutex> lock(state_mu_);
          if (ts_xml_.empty()) ts_xml_ = ack.value().tag_structure_xml;
          wire_version_ = (frame.flags & kHelloFlagCrcFrames)
                              ? kFrameVersionCrc
                              : kFrameVersion;
          server_queries_ = (frame.flags & kHelloFlagQueryChannel) != 0;
          server_filter_ = (frame.flags & kHelloFlagTsidFilter) != 0;
          server_retention_ = (frame.flags & kHelloFlagRetention) != 0;
          connected_ = true;
          if (ever_connected_) metrics_.AddReconnect();
          ever_connected_ = true;
          state_cv_.notify_all();
        }
        // The ack's seq carries the stream epoch. A different epoch than
        // the one our resume state came from means the server's data dir
        // was reset (or replaced): its history is a different stream, and
        // resuming our seq numbers into it would silently mis-splice two
        // histories. Discard the resume point and restart from scratch.
        {
          const uint64_t srv_epoch = frame.seq;
          bool reset = false;
          {
            std::lock_guard<std::mutex> lock(pending_mu_);
            if (srv_epoch != 0 && epoch_ != 0 && epoch_ != srv_epoch) {
              reset = true;
              last_seq_ = -1;
              // Undrained fragments belong to the dead epoch's history;
              // admitting them into the new one would mix the streams.
              pending_.clear();
              // Likewise the result streams: the new epoch's fragment
              // history is a different stream, so every query's result
              // log restarts from seq 0.
              results_.clear();
              query_by_id_.clear();
              for (auto& [token, q] : queries_) {
                q.state = RemoteQueryState{};
              }
            }
            if (srv_epoch != 0) epoch_ = srv_epoch;
          }
          if (reset) {
            metrics_.AddEpochReset();
            std::lock_guard<std::mutex> lock(repair_mu_);
            repairs_.clear();
          }
        }
        // Install the subscription filter before asking for the replay,
        // so the catch-up itself is already filtered (and SKIP_TO-covered).
        if (!opts_.filter_tsids.empty() && server_filter()) {
          Frame sub;
          sub.type = FrameType::kSubscribe;
          sub.payload = EncodeSubscribe(opts_.filter_tsids);
          if (!SendFrame(sub).ok()) return;
        }
        // Resume from where we left off (-1 the first time = everything:
        // the late subscriber's catch-up).
        Frame replay;
        replay.type = FrameType::kReplayFrom;
        replay.payload = EncodeReplayFrom(last_seq());
        if (!SendFrame(replay).ok()) return;
        metrics_.AddReplayRequested();
        // Re-register every remote query on the fresh session, each
        // resuming from its own contiguous result seq.
        ResendQueries();
        continue;
      }
      switch (frame.type) {
        case FrameType::kFragment: {
          frag::WireCodec codec = (frame.flags & kFlagCompressedPayload)
                                      ? frag::WireCodec::kTagCompressed
                                      : frag::WireCodec::kPlainXml;
          if (frame.flags & kFlagRepeat) {
            // A retransmission (RepeatFiller broadcast or our own NACK
            // being answered). It re-uses its original seq, so it never
            // advances the contiguous prefix; admit it only when we asked
            // for its filler, otherwise it is a duplicate to discard.
            auto fragment =
                frag::DecodeWirePayload(frame.payload, *ts_, codec);
            if (!fragment.ok()) break;  // corrupt repeat: the NACK retries
            if (!RepairRequested(fragment.value().id)) break;
            metrics_.AddFragmentIn();
            std::lock_guard<std::mutex> lock(pending_mu_);
            pending_.push_back(std::move(fragment).MoveValue());
            pending_cv_.notify_all();
            break;
          }
          // last_seq_ tracks the *contiguous* prefix, and only the
          // receive thread writes it, so reading it via the locked getter
          // and advancing later cannot race.
          const int64_t seq = static_cast<int64_t>(frame.seq);
          const int64_t have = last_seq();
          if (seq <= have) break;  // retransmission of a frame we hold
          if (seq > have + 1) {
            // Frames between have and seq are gone (kDropOldest eviction
            // ahead of the replay): cut the connection and resume from
            // the last contiguous seq — silently skipping the gap would
            // permanently lose the dropped fragments.
            metrics_.AddGapDetected();
            return;
          }
          auto fragment = frag::DecodeWirePayload(frame.payload, *ts_, codec);
          if (!fragment.ok()) {
            if (frame.wire_version == kFrameVersionCrc) {
              // The checksum held, so these are the bytes the server sent:
              // retrying cannot fix a malformed payload. Quarantine it and
              // keep the stream alive instead of reconnecting forever into
              // the same poison frame.
              QuarantinePoison(seq, fragment.status(), frame.payload.size());
              std::lock_guard<std::mutex> lock(pending_mu_);
              last_seq_ = seq;
              pending_cv_.notify_all();
              break;
            }
            // v1 frame: transit corruption and sender poison look the
            // same; resync via reconnect like any other damaged stream.
            return;
          }
          metrics_.AddFragmentIn();
          std::lock_guard<std::mutex> lock(pending_mu_);
          pending_.push_back(std::move(fragment).MoveValue());
          last_seq_ = seq;
          pending_cv_.notify_all();
          break;
        }
        case FrameType::kHeartbeat: {
          // The heartbeat's `published` count doubles as a loss detector:
          // the server claims seqs up to published-1 exist, frames ahead
          // of a heartbeat arrive before it (TCP ordering), so a stalled
          // contiguous prefix below that with nothing in flight means the
          // frames were evicted before we ever got them. Two consecutive
          // lagging heartbeats with zero progress confirm it (one can
          // race the publish that bumped the counter); then pull the
          // range now instead of waiting for the next live frame to
          // reveal the gap.
          const int64_t published = static_cast<int64_t>(frame.seq);
          const int64_t have = last_seq();
          if (published - 1 > have) {
            if (lag_have == have) {
              ++lag_count;
            } else {
              lag_have = have;
              lag_count = 1;
            }
            if (lag_count >= kHeartbeatLagThreshold) {
              lag_count = 0;
              Frame replay;
              replay.type = FrameType::kReplayFrom;
              replay.payload = EncodeReplayFrom(have);
              if (!SendFrame(replay).ok()) return;
              metrics_.AddCatchupReplay();
              metrics_.AddReplayRequested();
            }
          } else {
            lag_have = -2;
            lag_count = 0;
          }
          break;
        }
        case FrameType::kQueryStatus: {
          auto status = DecodeQueryStatus(frame.payload);
          if (!status.ok()) break;  // mangled ack: WaitQueryActive times out
          std::lock_guard<std::mutex> lock(pending_mu_);
          auto it = queries_.find(status.value().token);
          if (it == queries_.end()) break;  // removed while in flight
          RemoteQuery& q = it->second;
          q.state.last_code = status.value().code;
          q.state.last_message = status.value().message;
          if (status.value().code == kQueryStatusOk) {
            q.state.active = true;
            q.state.query_id = status.value().query_id;
            query_by_id_[status.value().query_id] = it->first;
          } else {
            // Rejection — or the server retracting an earlier ok (it
            // raced an UNQUERY). Either way the stream is not coming.
            if (q.state.query_id != 0) query_by_id_.erase(q.state.query_id);
            q.state.active = false;
            q.state.query_id = 0;
          }
          pending_cv_.notify_all();
          break;
        }
        case FrameType::kResult: {
          auto delta = DecodeResultDelta(frame.payload);
          if (!delta.ok()) {
            // Checksum-valid but undecodable: poison, not loss. Skipping
            // it would silently drop a delta, so treat it like a gap.
            metrics_.AddGapDetected();
            return;
          }
          const int64_t seq = static_cast<int64_t>(frame.seq);
          std::unique_lock<std::mutex> lock(pending_mu_);
          auto by_id = query_by_id_.find(delta.value().query_id);
          if (by_id == query_by_id_.end()) break;  // unknown/removed query
          RemoteQuery& q = queries_[by_id->second];
          if (seq <= q.state.last_result_seq) break;  // replayed duplicate
          if (seq > q.state.last_result_seq + 1) {
            // A RESULT frame was lost (drop-oldest eviction): cut the
            // connection and resume — the reconnect's QUERY carries our
            // contiguous seq and the server replays from its result log.
            metrics_.AddGapDetected();
            return;
          }
          q.state.last_result_seq = seq;
          RemoteQueryResult out_result;
          out_result.token = by_id->second;
          out_result.seq = seq;
          out_result.delta = std::move(delta).MoveValue();
          results_.push_back(std::move(out_result));
          pending_cv_.notify_all();
          break;
        }
        case FrameType::kSkipTo: {
          // Everything in [payload start, header seq] was filtered out by
          // our own subscription: advance the contiguous prefix without
          // data, so gap detection and catch-up replays stay exact.
          const int64_t seq = static_cast<int64_t>(frame.seq);
          if (seq <= last_seq()) break;  // stale skip (overlapping replay)
          auto start = DecodeSkipTo(frame.payload);
          if (!start.ok()) {
            // Checksum-valid but malformed: the run bounds are untrusted,
            // so treat it like a gap rather than guess.
            metrics_.AddGapDetected();
            return;
          }
          if (start.value() != last_seq() + 1) {
            // The skipped run does not continue our prefix: a reordered
            // skip would otherwise jump past deliverable frames that are
            // still in flight (or already lost). Cut and replay — same
            // contract as a data-frame seq gap.
            metrics_.AddGapDetected();
            return;
          }
          metrics_.AddSkipIn();
          lag_have = -2;  // prefix progress: reset the loss detector
          lag_count = 0;
          std::lock_guard<std::mutex> lock(pending_mu_);
          last_seq_ = seq;
          pending_cv_.notify_all();
          break;
        }
        case FrameType::kExpired: {
          auto expired = DecodeExpired(frame.payload);
          if (!expired.ok()) {
            // Checksum-valid but malformed: the run bounds are untrusted.
            metrics_.AddGapDetected();
            return;
          }
          metrics_.AddExpiredIn();
          switch (expired.value().kind) {
            case Expired::kRange: {
              // Frame-log seqs [first_seq, header seq] were retired below
              // the retention floor (durable in a WAL checkpoint server-
              // side): advance the contiguous prefix over the run without
              // data, with exactly SKIP_TO's continuity check — an
              // expired run that does not continue our prefix would skip
              // past frames that were lost, not retired.
              const int64_t seq = static_cast<int64_t>(frame.seq);
              if (seq <= last_seq()) break;  // stale (overlapping replay)
              if (expired.value().first_seq != last_seq() + 1) {
                metrics_.AddGapDetected();
                return;
              }
              lag_have = -2;  // prefix progress: reset the loss detector
              lag_count = 0;
              std::lock_guard<std::mutex> lock(pending_mu_);
              last_seq_ = seq;
              pending_cv_.notify_all();
              break;
            }
            case Expired::kFiller: {
              // Our NACK's filler was compacted on purpose: stop
              // retrying, and count it expired — not lost.
              std::lock_guard<std::mutex> lock(repair_mu_);
              auto it = repairs_.find(expired.value().filler_id);
              if (it == repairs_.end() || it->second.expired ||
                  it->second.resolved) {
                break;
              }
              it->second.expired = true;
              metrics_.AddFillerExpired();
              break;
            }
            case Expired::kResultRange: {
              // Result-log seqs [first_seq, header seq] of one query were
              // trimmed: advance that query's contiguous result prefix
              // over the run (the deltas are regenerable server-side from
              // the checkpoint, but this subscriber chose a window that
              // no longer covers them).
              const int64_t seq = static_cast<int64_t>(frame.seq);
              std::lock_guard<std::mutex> lock(pending_mu_);
              auto by_id = query_by_id_.find(expired.value().query_id);
              if (by_id == query_by_id_.end()) break;
              RemoteQuery& q = queries_[by_id->second];
              if (seq <= q.state.last_result_seq) break;  // stale
              if (expired.value().first_seq > q.state.last_result_seq + 1) {
                // The expired run starts past our prefix: the frames
                // between were lost, not retired.
                metrics_.AddGapDetected();
                return;
              }
              q.state.last_result_seq = seq;
              pending_cv_.notify_all();
              break;
            }
            default:
              break;  // unknown kind from a newer server: ignore
          }
          break;
        }
        case FrameType::kBye:
          return;  // server going away; reconnect with backoff
        default:
          break;
      }
    }
  }
}

Status FragmentSubscriber::SendQuery(RemoteQuerySpec spec) {
  Frame frame;
  frame.type = FrameType::kQuery;
  frame.payload = EncodeQuery(spec);
  return SendFrame(frame);
}

void FragmentSubscriber::ResendQueries() {
  if (!server_queries()) return;  // old server: queries stay inactive
  std::vector<RemoteQuerySpec> to_send;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    to_send.reserve(queries_.size());
    for (auto& [token, q] : queries_) {
      RemoteQuerySpec spec = q.spec;
      spec.last_result_seq = q.state.last_result_seq;
      to_send.push_back(std::move(spec));
    }
  }
  for (auto& spec : to_send) {
    if (!SendQuery(std::move(spec)).ok()) return;
  }
}

Result<uint32_t> FragmentSubscriber::AddRemoteQuery(RemoteQuerySpec spec) {
  if (spec.text.empty()) {
    return Status::InvalidArgument("remote query needs XCQL text");
  }
  uint32_t token;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    token = next_token_++;
    spec.token = token;
    spec.last_result_seq = -1;
    RemoteQuery q;
    q.spec = spec;
    queries_[token] = std::move(q);
  }
  // Already on a session that speaks queries: register now rather than at
  // the next reconnect. A failure is not fatal — the session is dying and
  // the reconnect's ResendQueries covers it.
  if (server_queries()) (void)SendQuery(std::move(spec));
  return token;
}

Status FragmentSubscriber::RemoveRemoteQuery(uint32_t token) {
  uint64_t query_id = 0;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    auto it = queries_.find(token);
    if (it == queries_.end()) {
      return Status::NotFound("no remote query with token " +
                              std::to_string(token));
    }
    if (it->second.state.active) query_id = it->second.state.query_id;
    if (it->second.state.query_id != 0) {
      query_by_id_.erase(it->second.state.query_id);
    }
    queries_.erase(it);
    // Undrained results for the token are already decoupled (they carry
    // the token); leave them for the application to drain or ignore.
  }
  if (query_id != 0) {
    Frame frame;
    frame.type = FrameType::kUnquery;
    frame.payload = EncodeUnquery(query_id);
    (void)SendFrame(frame);  // disconnected = server keeps it; acceptable
  }
  return Status::OK();
}

int FragmentSubscriber::DrainResults(std::vector<RemoteQueryResult>* out) {
  std::lock_guard<std::mutex> lock(pending_mu_);
  int n = static_cast<int>(results_.size());
  if (out->empty()) {
    out->swap(results_);
  } else {
    std::move(results_.begin(), results_.end(), std::back_inserter(*out));
    results_.clear();
  }
  return n;
}

bool FragmentSubscriber::WaitQueryActive(
    uint32_t token, std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(pending_mu_);
  return pending_cv_.wait_for(lock, timeout, [&] {
    auto it = queries_.find(token);
    return it != queries_.end() && it->second.state.active;
  });
}

bool FragmentSubscriber::WaitForResultSeq(
    uint32_t token, int64_t seq, std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(pending_mu_);
  return pending_cv_.wait_for(lock, timeout, [&] {
    auto it = queries_.find(token);
    return it != queries_.end() && it->second.state.last_result_seq >= seq;
  });
}

Result<RemoteQueryState> FragmentSubscriber::query_state(
    uint32_t token) const {
  std::lock_guard<std::mutex> lock(pending_mu_);
  auto it = queries_.find(token);
  if (it == queries_.end()) {
    return Status::NotFound("no remote query with token " +
                            std::to_string(token));
  }
  return it->second.state;
}

bool FragmentSubscriber::server_queries() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return connected_ && server_queries_;
}

bool FragmentSubscriber::server_filter() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return connected_ && server_filter_;
}

bool FragmentSubscriber::server_retention() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return connected_ && server_retention_;
}

Result<int> FragmentSubscriber::DrainInto(frag::FragmentStore* store) {
  std::vector<frag::Fragment> batch;
  Drain(&batch);
  int n = static_cast<int>(batch.size());
  XCQL_RETURN_NOT_OK(store->InsertAll(std::move(batch)));
  return n;
}

int FragmentSubscriber::Drain(std::vector<frag::Fragment>* out) {
  std::lock_guard<std::mutex> lock(pending_mu_);
  int n = static_cast<int>(pending_.size());
  if (out->empty()) {
    out->swap(pending_);
  } else {
    std::move(pending_.begin(), pending_.end(), std::back_inserter(*out));
    pending_.clear();
  }
  return n;
}

Result<RepairSummary> FragmentSubscriber::RepairMissing(
    const frag::FragmentStore& store) {
  RepairSummary sum;
  std::vector<int64_t> missing = store.MissingFillers();
  sum.missing = static_cast<int>(missing.size());
  std::unordered_set<int64_t> missing_set(missing.begin(), missing.end());
  const auto now = std::chrono::steady_clock::now();
  std::vector<int64_t> to_nack;
  {
    std::lock_guard<std::mutex> lock(repair_mu_);
    // Anything we NACKed that the store no longer misses got repaired
    // (via the repeat path or an overlapping replay — either counts). A
    // version repair (RepairVersions) was never "missing": it resolves
    // when the store's version count for the filler has grown instead.
    for (auto& [id, st] : repairs_) {
      if (st.attempts == 0 || st.resolved) continue;
      if (st.versions_at_request >= 0) {
        if (static_cast<int>(store.VersionTimes(id).size()) >
            st.versions_at_request) {
          st.resolved = true;
          metrics_.AddFillerRepaired();
        }
        continue;
      }
      if (missing_set.count(id) == 0) {
        st.resolved = true;
        metrics_.AddFillerRepaired();
      }
    }
    for (int64_t id : missing) {
      RepairState& st = repairs_[id];
      if (st.lost) continue;
      // Retention-expired upstream: the server will answer every further
      // NACK with EXPIRED, so stop asking (and never call it lost).
      if (st.expired) continue;
      const bool interval_passed =
          st.attempts == 0 ||
          now - st.last_sent >= opts_.repair_retry_interval;
      if (!interval_passed) continue;
      if (st.attempts >= opts_.repair_retry_budget) {
        // Budget burned and the grace interval after the last attempt
        // expired with the filler still missing: declare it lost. The
        // hole stays in the store; HolePolicy decides what queries do.
        st.lost = true;
        metrics_.AddFillerLost();
        continue;
      }
      to_nack.push_back(id);
    }
    for (const auto& [id, st] : repairs_) {
      if (st.resolved) ++sum.repaired_total;
      if (st.lost) ++sum.lost_total;
      if (st.expired) ++sum.expired_total;
    }
  }
  for (int64_t id : to_nack) {
    // Register the attempt BEFORE the NACK goes out: on loopback the
    // repeat can land on the receive thread before SendFrame returns, and
    // repeats are only admitted for fillers already marked requested.
    {
      std::lock_guard<std::mutex> lock(repair_mu_);
      RepairState& rs = repairs_[id];
      ++rs.attempts;
      rs.last_sent = now;
    }
    Frame nack;
    nack.type = FrameType::kRepeatRequest;
    nack.payload = EncodeRepeatRequest(id);
    Status st = SendFrame(nack);
    if (st.ok()) {
      metrics_.AddNackSent();
      ++sum.nacks_sent;
      continue;
    }
    {
      // The NACK never left; undo so the next sweep retries immediately
      // and `attempts` keeps counting NACKs actually sent.
      std::lock_guard<std::mutex> lock(repair_mu_);
      --repairs_[id].attempts;
    }
    if (st.code() == StatusCode::kUnsupported) return st;
  }
  return sum;
}

Status FragmentSubscriber::RepairVersions(int64_t filler_id,
                                          const frag::FragmentStore& store) {
  std::vector<int64_t> have = store.VersionTimes(filler_id);
  {
    std::lock_guard<std::mutex> lock(repair_mu_);
    RepairState& rs = repairs_[filler_id];
    if (rs.lost) {
      return Status::NotFound("filler repair budget exhausted");
    }
    if (rs.attempts >= opts_.repair_retry_budget) {
      rs.lost = true;
      metrics_.AddFillerLost();
      return Status::NotFound("filler repair budget exhausted");
    }
    if (rs.attempts > 0 && std::chrono::steady_clock::now() - rs.last_sent <
                               opts_.repair_retry_interval) {
      return Status::InvalidArgument(
          "previous repair attempt still within its retry interval");
    }
    // Register before sending (repeats are only admitted for registered
    // fillers, and on loopback they can arrive before SendFrame returns);
    // keep the *first* attempt's version count as the resolution baseline
    // so a retry can't erase an unmet goal.
    ++rs.attempts;
    rs.last_sent = std::chrono::steady_clock::now();
    if (rs.versions_at_request < 0) {
      rs.versions_at_request = static_cast<int>(have.size());
    }
  }
  Frame nack;
  nack.type = FrameType::kRepeatRequest;
  RepeatRequest request;
  request.filler_id = filler_id;
  request.have_valid_times = std::move(have);
  nack.payload = EncodeRepeatRequest(request);
  Status st = SendFrame(nack);
  if (!st.ok()) {
    std::lock_guard<std::mutex> lock(repair_mu_);
    --repairs_[filler_id].attempts;
    return st;
  }
  metrics_.AddNackSent();
  return Status::OK();
}

int64_t FragmentSubscriber::last_seq() const {
  std::lock_guard<std::mutex> lock(pending_mu_);
  return last_seq_;
}

uint64_t FragmentSubscriber::server_epoch() const {
  std::lock_guard<std::mutex> lock(pending_mu_);
  return epoch_;
}

bool FragmentSubscriber::WaitForSeq(int64_t seq,
                                    std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(pending_mu_);
  return pending_cv_.wait_for(lock, timeout,
                              [&] { return last_seq_ >= seq; });
}

bool FragmentSubscriber::WaitConnected(
    std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(state_mu_);
  state_cv_.wait_for(lock, timeout,
                     [this] { return connected_ || fatal_; });
  return connected_;
}

bool FragmentSubscriber::connected() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return connected_;
}

bool FragmentSubscriber::handshake_failed() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return fatal_;
}

bool FragmentSubscriber::server_crc() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return connected_ && wire_version_ == kFrameVersionCrc;
}

Result<std::string> FragmentSubscriber::TagStructureXml() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (ts_xml_.empty()) {
    return Status::NotFound("no handshake completed yet");
  }
  return ts_xml_;
}

std::vector<PoisonRecord> FragmentSubscriber::poison_log() const {
  std::lock_guard<std::mutex> lock(pending_mu_);
  return std::vector<PoisonRecord>(poison_log_.begin(), poison_log_.end());
}

MetricsSnapshot FragmentSubscriber::metrics() const {
  return metrics_.Snapshot();
}

void FragmentSubscriber::KillConnection() {
  std::lock_guard<std::mutex> lock(state_mu_);
  sock_.Shutdown();
}

}  // namespace xcql::net
