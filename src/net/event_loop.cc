#include "net/event_loop.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include "common/string_util.h"

namespace xcql::net {

namespace {

Status Errno(const char* op) {
  return Status::Internal(StringPrintf("%s: %s", op, std::strerror(errno)));
}

Status SetNonBlockingFd(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return Status::OK();
}

}  // namespace

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
}

Status EventLoop::Init(EventBackend backend) {
  if (wake_rd_ >= 0) return Status::InvalidArgument("loop already initialized");
  if (backend == EventBackend::kDefault) {
#ifdef __linux__
    backend = EventBackend::kEpoll;
#else
    backend = EventBackend::kPoll;
#endif
  }
#ifndef __linux__
  if (backend == EventBackend::kEpoll) {
    return Status::Unsupported("epoll backend requires Linux");
  }
#endif
  backend_ = backend;
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return Errno("pipe");
  wake_rd_ = pipe_fds[0];
  wake_wr_ = pipe_fds[1];
  XCQL_RETURN_NOT_OK(SetNonBlockingFd(wake_rd_));
  XCQL_RETURN_NOT_OK(SetNonBlockingFd(wake_wr_));
#ifdef __linux__
  if (backend_ == EventBackend::kEpoll) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) return Errno("epoll_create1");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = nullptr;  // nullptr tag = the wake pipe
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_rd_, &ev) != 0) {
      return Errno("epoll_ctl(ADD wake)");
    }
  }
#endif
  return Status::OK();
}

Status EventLoop::Add(int fd, void* tag, bool want_read, bool want_write) {
  if (tag == nullptr) {
    return Status::InvalidArgument("nullptr tag is reserved for the wake pipe");
  }
  Interest in;
  in.tag = tag;
  in.want_read = want_read;
  in.want_write = want_write;
#ifdef __linux__
  if (backend_ == EventBackend::kEpoll) {
    epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.ptr = tag;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      return Errno("epoll_ctl(ADD)");
    }
  }
#endif
  interest_[fd] = in;
  return Status::OK();
}

Status EventLoop::Update(int fd, bool want_read, bool want_write) {
  auto it = interest_.find(fd);
  if (it == interest_.end()) {
    return Status::NotFound(StringPrintf("fd %d not registered", fd));
  }
  if (it->second.want_read == want_read &&
      it->second.want_write == want_write) {
    return Status::OK();
  }
  it->second.want_read = want_read;
  it->second.want_write = want_write;
#ifdef __linux__
  if (backend_ == EventBackend::kEpoll) {
    epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.ptr = it->second.tag;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
      return Errno("epoll_ctl(MOD)");
    }
  }
#endif
  return Status::OK();
}

void EventLoop::Remove(int fd) {
  if (interest_.erase(fd) == 0) return;
#ifdef __linux__
  if (backend_ == EventBackend::kEpoll) {
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
#endif
}

void EventLoop::Wake() {
  // One byte is enough to pop a sleeping poll/epoll; skip the write when a
  // previous wake has not been drained yet so a publish storm cannot fill
  // the pipe (a full pipe would make this call block).
  if (wake_pending_.exchange(true, std::memory_order_acq_rel)) return;
  char b = 1;
  ssize_t n;
  do {
    n = ::write(wake_wr_, &b, 1);
  } while (n < 0 && errno == EINTR);
}

void EventLoop::DrainWakePipe() {
  took_wake_ = true;
  wake_pending_.store(false, std::memory_order_release);
  char buf[64];
  while (::read(wake_rd_, buf, sizeof(buf)) > 0) {
  }
}

Result<int> EventLoop::Wait(std::vector<LoopEvent>* out, int timeout_ms) {
  out->clear();
  took_wake_ = false;
#ifdef __linux__
  if (backend_ == EventBackend::kEpoll) return WaitEpoll(out, timeout_ms);
#endif
  return WaitPoll(out, timeout_ms);
}

#ifdef __linux__
Result<int> EventLoop::WaitEpoll(std::vector<LoopEvent>* out, int timeout_ms) {
  epoll_event events[256];
  int n = ::epoll_wait(epoll_fd_, events, 256, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    return Errno("epoll_wait");
  }
  for (int i = 0; i < n; ++i) {
    if (events[i].data.ptr == nullptr) {
      DrainWakePipe();
      continue;
    }
    LoopEvent ev;
    ev.tag = events[i].data.ptr;
    ev.readable = (events[i].events & EPOLLIN) != 0;
    ev.writable = (events[i].events & EPOLLOUT) != 0;
    ev.error = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
    out->push_back(ev);
  }
  return static_cast<int>(out->size());
}
#else
Result<int> EventLoop::WaitEpoll(std::vector<LoopEvent>*, int) {
  return Status::Unsupported("epoll backend requires Linux");
}
#endif

Result<int> EventLoop::WaitPoll(std::vector<LoopEvent>* out, int timeout_ms) {
  std::vector<pollfd> pfds;
  pfds.reserve(interest_.size() + 1);
  pollfd wake{};
  wake.fd = wake_rd_;
  wake.events = POLLIN;
  pfds.push_back(wake);
  std::vector<void*> tags;
  tags.reserve(interest_.size() + 1);
  tags.push_back(nullptr);
  for (const auto& [fd, in] : interest_) {
    pollfd p{};
    p.fd = fd;
    p.events = static_cast<short>((in.want_read ? POLLIN : 0) |
                                  (in.want_write ? POLLOUT : 0));
    pfds.push_back(p);
    tags.push_back(in.tag);
  }
  int n = ::poll(pfds.data(), pfds.size(), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    return Errno("poll");
  }
  if (n == 0) return 0;
  for (size_t i = 0; i < pfds.size(); ++i) {
    if (pfds[i].revents == 0) continue;
    if (i == 0) {
      DrainWakePipe();
      continue;
    }
    LoopEvent ev;
    ev.tag = tags[i];
    ev.readable = (pfds[i].revents & POLLIN) != 0;
    ev.writable = (pfds[i].revents & POLLOUT) != 0;
    ev.error = (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    out->push_back(ev);
  }
  return static_cast<int>(out->size());
}

}  // namespace xcql::net
