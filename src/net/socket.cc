#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/string_util.h"

namespace xcql::net {

namespace {

Status Errno(const char* op) {
  return Status::Internal(StringPrintf("%s: %s", op, std::strerror(errno)));
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Socket::SendAll(const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    // MSG_NOSIGNAL: a peer that vanished mid-send must surface as EPIPE,
    // not kill the process.
    ssize_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<size_t> Socket::Recv(void* buf, size_t len) {
  for (;;) {
    ssize_t n = ::recv(fd_, buf, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    return static_cast<size_t>(n);
  }
}

Result<size_t> Socket::RecvTimeout(void* buf, size_t len,
                                   std::chrono::milliseconds timeout,
                                   bool* timed_out) {
  *timed_out = false;
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    int wait_ms = left.count() > 0 ? static_cast<int>(left.count()) : 0;
    int rc = ::poll(&pfd, 1, wait_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if (rc == 0) {
      *timed_out = true;
      return static_cast<size_t>(0);
    }
    // Readable (or error/hup, which recv reports): do the actual read.
    return Recv(buf, len);
  }
}

Status Socket::SetNonBlocking() {
  int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return Status::OK();
}

Result<size_t> Socket::SendNonBlocking(const void* data, size_t len,
                                       bool* would_block) {
  *would_block = false;
  for (;;) {
    ssize_t n = ::send(fd_, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        *would_block = true;
        return static_cast<size_t>(0);
      }
      return Errno("send");
    }
    return static_cast<size_t>(n);
  }
}

Result<size_t> Socket::RecvNonBlocking(void* buf, size_t len,
                                       bool* would_block) {
  *would_block = false;
  for (;;) {
    ssize_t n = ::recv(fd_, buf, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        *would_block = true;
        return static_cast<size_t>(0);
      }
      return Errno("recv");
    }
    return static_cast<size_t>(n);
  }
}

Result<Socket> ListenOn(uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Errno("bind");
  }
  if (::listen(fd, backlog) < 0) return Errno("listen");
  return sock;
}

Result<uint16_t> BoundPort(const Socket& sock) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Errno("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<Socket> Accept(const Socket& listener) {
  for (;;) {
    int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return Errno("accept");
    }
    Socket sock(fd);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return sock;
  }
}

Result<Socket> ConnectTo(const std::string& host, uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  std::string service = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
  if (rc != 0) {
    return Status::InvalidArgument(StringPrintf("resolve %s: %s", host.c_str(),
                                                ::gai_strerror(rc)));
  }
  Status last = Status::Internal("no addresses for " + host);
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    Socket sock(fd);
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      ::freeaddrinfo(res);
      return sock;
    }
    last = Errno("connect");
  }
  ::freeaddrinfo(res);
  return last;
}

}  // namespace xcql::net
