// net::EventLoop — a minimal readiness reactor for the fragment transport.
//
// One thread (the owner) calls Wait() in a loop and reacts to fd readiness;
// any thread may call Wake() to interrupt a sleeping Wait(). Registration
// (Add/Update/Remove) is owner-thread-only: the server's I/O thread owns
// every socket, so interest changes never race the poll itself.
//
// Two backends behind one interface:
//   kEpoll — epoll(7), level-triggered. The default on Linux; scales to
//            tens of thousands of fds with O(ready) wakeups.
//   kPoll  — poll(2) over a rebuilt pollfd array. Portable (macOS CI) and
//            kept runtime-selectable on Linux too, so the fallback path is
//            exercised by the same test suite instead of rotting.
//
// Wake() writes one byte into a self-pipe registered with the backend; the
// owner drains it inside Wait(). This is what lets the publisher thread
// hand frames to connection queues and nudge the I/O thread without ever
// touching epoll state from outside.
#ifndef XCQL_NET_EVENT_LOOP_H_
#define XCQL_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace xcql::net {

/// \brief Which readiness backend an EventLoop uses.
enum class EventBackend {
  kDefault,  // epoll on Linux, poll elsewhere
  kEpoll,    // fails Init() off Linux
  kPoll,
};

/// \brief One readiness report from Wait().
struct LoopEvent {
  void* tag = nullptr;  // caller's cookie from Add()
  bool readable = false;
  bool writable = false;
  /// Error/hangup on the fd. The owner should read it (to observe the
  /// error / EOF) and close; level-triggered backends re-report until then.
  bool error = false;
};

class EventLoop {
 public:
  EventLoop() = default;
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// \brief Creates the backend and the wake pipe. Call once.
  Status Init(EventBackend backend = EventBackend::kDefault);

  /// \brief Registers `fd` with an opaque `tag` echoed back in events.
  Status Add(int fd, void* tag, bool want_read, bool want_write);

  /// \brief Changes the interest set of a registered fd.
  Status Update(int fd, bool want_read, bool want_write);

  /// \brief Deregisters; must precede closing the fd.
  void Remove(int fd);

  /// \brief Blocks up to `timeout_ms` (-1 = forever) for readiness or a
  /// Wake(). Appends to `out` (cleared first) and returns the event count;
  /// 0 = timeout or spurious wake.
  Result<int> Wait(std::vector<LoopEvent>* out, int timeout_ms);

  /// \brief Interrupts a sleeping Wait(). Thread-safe, async-signal-unsafe.
  void Wake();

  /// \brief True when the last Wait() consumed a Wake() — the owner's cue
  /// that out-of-band work (e.g. publisher enqueues) arrived, as opposed
  /// to plain fd readiness. Owner thread only; reset by the next Wait().
  bool took_wake() const { return took_wake_; }

  EventBackend backend() const { return backend_; }

  /// \brief Registered fds, the wake pipe excluded (tests).
  size_t size() const { return interest_.size(); }

 private:
  struct Interest {
    void* tag = nullptr;
    bool want_read = false;
    bool want_write = false;
  };

  Result<int> WaitEpoll(std::vector<LoopEvent>* out, int timeout_ms);
  Result<int> WaitPoll(std::vector<LoopEvent>* out, int timeout_ms);
  void DrainWakePipe();

  EventBackend backend_ = EventBackend::kDefault;
  int epoll_fd_ = -1;
  int wake_rd_ = -1;
  int wake_wr_ = -1;
  // Coalesces Wake() storms: a sleeping loop needs one byte, not N.
  std::atomic<bool> wake_pending_{false};
  bool took_wake_ = false;  // owner thread only
  std::unordered_map<int, Interest> interest_;  // owner thread only
  std::vector<LoopEvent> scratch_;
};

}  // namespace xcql::net

#endif  // XCQL_NET_EVENT_LOOP_H_
