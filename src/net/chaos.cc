#include "net/chaos.h"

#include <thread>

#include "net/frame.h"

namespace xcql::net {

namespace {

uint32_t PeekU32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

}  // namespace

ChaosLink::ChaosLink(ChaosLinkOptions options) : opts_(std::move(options)) {}

ChaosLink::~ChaosLink() { Stop(); }

Status ChaosLink::Start() {
  if (started_) return Status::InvalidArgument("chaos link already started");
  if (opts_.upstream_port == 0) {
    return Status::InvalidArgument("chaos link needs an upstream port");
  }
  XCQL_ASSIGN_OR_RETURN(listener_, ListenOn(opts_.listen_port));
  XCQL_ASSIGN_OR_RETURN(port_, BoundPort(listener_));
  stopping_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return Status::OK();
}

void ChaosLink::Stop() {
  if (!started_) return;
  started_ = false;
  stopping_.store(true);
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  std::vector<std::unique_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    conn->client.Shutdown();
    conn->upstream.Shutdown();
    if (conn->up.joinable()) conn->up.join();
    if (conn->down.joinable()) conn->down.join();
  }
}

ChaosStats ChaosLink::stats() const {
  ChaosStats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.frames = frames_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.duplicated = duplicated_.load(std::memory_order_relaxed);
  s.reordered = reordered_.load(std::memory_order_relaxed);
  s.corrupted = corrupted_.load(std::memory_order_relaxed);
  s.truncated = truncated_.load(std::memory_order_relaxed);
  s.control_frames = control_frames_.load(std::memory_order_relaxed);
  s.control_corrupted = control_corrupted_.load(std::memory_order_relaxed);
  return s;
}

void ChaosLink::AcceptLoop() {
  while (!stopping_.load()) {
    auto accepted = Accept(listener_);
    if (!accepted.ok()) {
      if (stopping_.load()) break;
      continue;
    }
    auto upstream = ConnectTo(opts_.upstream_host, opts_.upstream_port);
    if (!upstream.ok()) continue;  // upstream down: drop the client
    connections_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<Conn>();
    conn->client = std::move(accepted).MoveValue();
    conn->upstream = std::move(upstream).MoveValue();
    Conn* raw = conn.get();
    // Distinct deterministic schedule per connection: a reconnect after a
    // fault replays different rolls than the session that died.
    uint64_t conn_seed = opts_.seed + 1000003ull * (++next_conn_index_);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->up = std::thread([this, raw, conn_seed] {
      UpLoop(raw, conn_seed);
    });
    raw->down = std::thread([this, raw, conn_seed] {
      DownLoop(raw, conn_seed);
    });
    // Reap finished pairs so a long soak with many reconnects does not
    // accumulate dead threads.
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      Conn* c = it->get();
      if (c->up_done.load() && c->down_done.load()) {
        if (c->up.joinable()) c->up.join();
        if (c->down.joinable()) c->down.join();
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void ChaosLink::UpLoop(Conn* conn, uint64_t conn_seed) {
  if (opts_.fault_control) {
    // Distinct schedule from the down direction on the same connection.
    Random rng(conn_seed ^ 0x9e3779b97f4a7c15ull);
    PumpFramed(&conn->client, &conn->upstream,
               [this, conn, &rng](std::string&& frame) {
                 return ForwardControlFrame(conn, std::move(frame), &rng);
               });
  } else {
    char buf[16 * 1024];
    for (;;) {
      auto n = conn->client.Recv(buf, sizeof(buf));
      if (!n.ok() || n.value() == 0) break;
      if (!conn->upstream.SendAll(buf, n.value()).ok()) break;
    }
  }
  // One dead direction kills the pair, like a real connection would.
  conn->client.Shutdown();
  conn->upstream.Shutdown();
  conn->up_done.store(true);
}

bool ChaosLink::SendToClient(Conn* conn, const std::string& bytes) {
  return conn->client.SendAll(bytes.data(), bytes.size()).ok();
}

bool ChaosLink::ForwardControlFrame(Conn* conn, std::string frame,
                                    Random* rng) {
  control_frames_.fetch_add(1, std::memory_order_relaxed);
  const uint8_t version = static_cast<uint8_t>(frame[4]);
  const size_t header = version == kFrameVersionCrc ? kFrameHeaderSizeCrc
                                                    : kFrameHeaderSize;
  // Only the corrupt fault applies to control frames (see ChaosLinkOptions):
  // the server's decoders and checksums are the detectors under test. Bits
  // flip in the payload; v1 frames reach the decoder as garbage the server
  // must count-and-drop, v2 frames die at the checksum.
  if (frame.size() > header &&
      rng->NextDouble() < opts_.faults.control_corrupt) {
    control_corrupted_.fetch_add(1, std::memory_order_relaxed);
    int flips = 1 + static_cast<int>(rng->Uniform(3));
    for (int i = 0; i < flips; ++i) {
      size_t off =
          header + static_cast<size_t>(rng->Uniform(frame.size() - header));
      frame[off] = static_cast<char>(
          static_cast<uint8_t>(frame[off]) ^
          static_cast<uint8_t>(1u << rng->Uniform(8)));
    }
  }
  return conn->upstream.SendAll(frame.data(), frame.size()).ok();
}

bool ChaosLink::ForwardFrame(Conn* conn, std::string frame, Random* rng,
                             std::string* held) {
  frames_.fetch_add(1, std::memory_order_relaxed);
  const uint8_t type = static_cast<uint8_t>(frame[5]);
  const uint8_t version = static_cast<uint8_t>(frame[4]);
  const bool faultable =
      type == static_cast<uint8_t>(FrameType::kFragment) ||
      (opts_.fault_heartbeats &&
       type == static_cast<uint8_t>(FrameType::kHeartbeat));
  if (opts_.faults.delay.count() > 0) {
    std::this_thread::sleep_for(opts_.faults.delay);
  }
  if (faultable) {
    const ChaosFaults& f = opts_.faults;
    double roll = rng->NextDouble();
    if (roll < f.drop) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return true;  // never sent
    }
    roll -= f.drop;
    if (roll < f.duplicate) {
      duplicated_.fetch_add(1, std::memory_order_relaxed);
      if (!SendToClient(conn, frame)) return false;
      if (!SendToClient(conn, frame)) return false;
      return true;
    }
    roll -= f.duplicate;
    if (roll < f.reorder && held->empty()) {
      reordered_.fetch_add(1, std::memory_order_relaxed);
      *held = std::move(frame);  // delivered after the next frame
      return true;
    }
    roll -= f.reorder;
    if (roll < f.corrupt && version == kFrameVersionCrc &&
        frame.size() > kFrameHeaderSizeCrc) {
      // Flip payload bits only: the checksum (which covers them) is the
      // detector under test. Flipping header/length bytes would instead
      // desynchronize framing — a different fault class, closer to
      // truncation, that reconnect already covers.
      corrupted_.fetch_add(1, std::memory_order_relaxed);
      int flips = 1 + static_cast<int>(rng->Uniform(3));
      for (int i = 0; i < flips; ++i) {
        size_t off = kFrameHeaderSizeCrc +
                     static_cast<size_t>(rng->Uniform(
                         frame.size() - kFrameHeaderSizeCrc));
        frame[off] = static_cast<char>(
            static_cast<uint8_t>(frame[off]) ^
            static_cast<uint8_t>(1u << rng->Uniform(8)));
      }
      // falls through to the normal send below
    } else {
      roll -= f.corrupt;
      if (roll < f.truncate && frame.size() > 1) {
        truncated_.fetch_add(1, std::memory_order_relaxed);
        size_t cut = 1 + static_cast<size_t>(
                             rng->Uniform(frame.size() - 1));
        (void)conn->client.SendAll(frame.data(), cut);
        return false;  // cut the link mid-frame
      }
    }
  }
  if (!SendToClient(conn, frame)) return false;
  if (!held->empty()) {
    std::string h = std::move(*held);
    held->clear();
    if (!SendToClient(conn, h)) return false;
  }
  return true;
}

void ChaosLink::PumpFramed(
    Socket* src, Socket* dst,
    const std::function<bool(std::string&&)>& forward) {
  char buf[16 * 1024];
  std::string acc;  // unparsed source bytes
  bool alive = true;
  bool passthrough = false;  // lost framing: relay raw bytes
  while (alive) {
    auto n = src->Recv(buf, sizeof(buf));
    if (!n.ok() || n.value() == 0) break;
    if (passthrough) {
      if (!dst->SendAll(buf, n.value()).ok()) break;
      continue;
    }
    acc.append(buf, n.value());
    size_t pos = 0;
    while (alive) {
      if (acc.size() - pos < kFrameHeaderSize) break;
      const char* h = acc.data() + pos;
      if (PeekU32(h) != kFrameMagic) {
        // Not something we can frame (never happens against a real
        // peer): stop interfering and relay the rest verbatim.
        passthrough = true;
        alive = dst->SendAll(acc.data() + pos, acc.size() - pos).ok();
        pos = acc.size();
        break;
      }
      const uint8_t version = static_cast<uint8_t>(h[4]);
      const size_t header = version == kFrameVersionCrc
                                ? kFrameHeaderSizeCrc
                                : kFrameHeaderSize;
      if (acc.size() - pos < header) break;
      const uint32_t len = PeekU32(h + 16);
      if (acc.size() - pos < header + len) break;
      std::string frame = acc.substr(pos, header + len);
      pos += header + len;
      alive = forward(std::move(frame));
    }
    acc.erase(0, pos);
  }
}

void ChaosLink::DownLoop(Conn* conn, uint64_t conn_seed) {
  Random rng(conn_seed);
  std::string held;  // reordered frame awaiting its successor
  PumpFramed(&conn->upstream, &conn->client,
             [this, conn, &rng, &held](std::string&& frame) {
               return ForwardFrame(conn, std::move(frame), &rng, &held);
             });
  if (!held.empty()) (void)SendToClient(conn, held);
  conn->client.Shutdown();
  conn->upstream.Shutdown();
  conn->down_done.store(true);
}

}  // namespace xcql::net
