// net::Wal — the durability layer under FragmentServer: a segmented,
// CRC32C-framed write-ahead log plus periodic checkpoints, so a server
// killed mid-stream recovers its frame log from disk and resumes serving
// the same stream, byte-identical, with the same sequence numbers.
//
// On-disk layout (one directory per stream):
//
//   MANIFEST                      one XFRM v2 HELLO frame. seq = the
//                                 stream epoch, payload = stream name +
//                                 tag-structure hash + Tag Structure XML.
//                                 A generation re-armed after degraded
//                                 durability (see Rearm) appends a second
//                                 frame, a kReplayFrom whose seq is the
//                                 base: the first record seq this
//                                 generation holds. Absent = base 0.
//   wal-<seq20>.log               a segment: consecutive XFRM v2 FRAGMENT
//                                 frames whose seqs start at <seq20>.
//                                 Only the highest-numbered segment is
//                                 appended to; lower ones are sealed.
//   checkpoint-<n20>.ckpt         a snapshot of records [base, n): the
//                                 same v2 FRAGMENT frames, compacted into
//                                 one file so recovery is O(checkpoint +
//                                 tail) instead of O(segments ever
//                                 written). The name carries n, the seq
//                                 the checkpoint covers through.
//   *.tmp                         in-flight checkpoint; deleted at open.
//
// Records reuse the wire codec verbatim: a WAL record *is* the encoded v2
// frame the server logs and fans out, checksum included, so one codec
// (frame.h) covers wire and disk and the fuzz/chaos results transfer.
//
// Crash semantics, which the kill-point tests enforce:
//  * Appends go to the tail of the newest segment only. A crash mid-append
//    leaves a prefix of a valid frame; recovery detects it (the frame never
//    completes), truncates exactly that partial record, and reports it
//    (torn_tail in the recovery report) — never an error.
//  * A CRC-invalid *final* record in the newest segment is also treated as
//    torn: fsync policies weaker than `always` can crash with the frame's
//    length on disk but its payload blocks unflushed, so the framing
//    completes and only the checksum fails. A CRC-invalid or undecodable
//    record anywhere else is disk corruption, not a torn write: recovery
//    fails with a poison report naming the file and offset rather than
//    silently serving a damaged history.
//  * Checkpoints are written to a temp file, fsync'd, then renamed, so a
//    visible checkpoint is complete by construction; segment GC runs after
//    the rename and is finished by the next Open if interrupted.
//  * The epoch is minted once, when the directory is initialized, and
//    carried in the server's HELLO ack (frame seq): a subscriber resuming
//    against a reset data dir sees a different epoch and restarts from
//    scratch instead of mis-resuming seq numbers into a different history.
#ifndef XCQL_NET_WAL_H_
#define XCQL_NET_WAL_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/result.h"
#include "net/frame.h"
#include "stream/transport.h"

namespace xcql::net {

/// \brief When appends reach the disk platter.
enum class FsyncPolicy : uint8_t {
  kAlways,    // fsync after every append: no acked record is ever lost
  kInterval,  // fsync when the oldest unsynced append is older than
              // fsync_interval: bounded loss window, amortized cost. A
              // background flusher enforces the bound even when the
              // stream goes idle after the last append.
  kNever,     // leave it to the OS: fastest, loses the page cache on crash
};

const char* FsyncPolicyName(FsyncPolicy policy);
Result<FsyncPolicy> ParseFsyncPolicy(std::string_view name);

struct WalOptions {
  FsyncPolicy fsync = FsyncPolicy::kAlways;
  /// kInterval only: maximum age of an unsynced append.
  std::chrono::milliseconds fsync_interval{50};
  /// Rotate to a fresh segment when the current one would exceed this.
  /// A record never splits across segments.
  size_t segment_bytes = 4u << 20;
  /// Checkpoint automatically every this many appended records; 0 =
  /// only when Checkpoint() is called.
  int64_t checkpoint_every = 0;
};

/// \brief Crash-injection seam: the WAL announces every write/rotate/
/// checkpoint boundary through here, and a test hook (installed in a
/// fork()ed child) can _exit() the process at any of them to prove
/// recovery handles a kill at that exact point. No hook installed (the
/// production case) costs one relaxed atomic load per point.
class WalHooks {
 public:
  using Hook = std::function<void(const char* point)>;

  /// \brief Installs (or, with nullptr, removes) the process-wide hook.
  static void Install(Hook hook);
  static bool installed();

  /// \brief Fires the hook, if any. Called by the WAL; tests never call it.
  static void At(const char* point);

  /// \brief Every point the WAL announces, for kill-point matrix tests.
  static const std::vector<const char*>& Points();
};

/// \brief One recovered record: the decoded FRAGMENT frame.
struct WalRecord {
  int64_t seq = 0;
  uint8_t flags = 0;     // kFlagCompressedPayload: §4.1 payload form
  std::string payload;   // wire payload (frag::EncodeWirePayload output)
};

/// \brief What recovery found and did.
struct WalRecoveryReport {
  int64_t checkpoint_records = 0;  // records loaded from the checkpoint
  int64_t tail_records = 0;        // records loaded from WAL segments
  int segments_scanned = 0;
  bool torn_tail = false;     // a partial final record was truncated
  size_t torn_bytes = 0;      // bytes the truncation dropped
  std::string warning;        // human-readable torn-tail note ("" if none)
};

/// \brief Everything Open() recovered from the directory.
struct WalRecovery {
  uint64_t epoch = 0;
  std::string stream_name;
  std::string ts_xml;
  /// First seq this generation holds (0 unless the directory was written
  /// by Rearm after retention had trimmed the stream's prefix).
  int64_t base_seq = 0;
  std::vector<WalRecord> records;  // seqs base_seq..n-1, contiguous
  WalRecoveryReport report;
};

/// \brief Counters for tests and the serve CLI.
struct WalStats {
  int64_t appends = 0;
  int64_t syncs = 0;
  int64_t rotations = 0;
  int64_t checkpoints = 0;
  int64_t append_failures = 0;
  /// Auto-checkpoints that failed after their trigger append was already
  /// durable (surfaced on stderr, retried at the next append).
  int64_t checkpoint_failures = 0;
  /// Times a broken handle was rebuilt into a fresh durable generation.
  int64_t rearms = 0;
};

/// \brief Mints a nonzero stream epoch (random, pid- and clock-salted).
/// Wal::Open mints one for a fresh directory; the server mints a volatile
/// one to retire the durable epoch when an append fails mid-flight.
uint64_t MintEpoch();

class Wal {
 public:
  /// \brief Opens an existing data directory (replaying checkpoint + tail
  /// into `recovery`) or initializes a fresh one (minting a new epoch and
  /// writing the manifest). A manifest holding a different stream name or
  /// tag-structure hash fails: resuming seq numbers into a different
  /// stream would corrupt every subscriber. A torn final record is
  /// truncated and reported; a CRC-invalid record anywhere else fails
  /// with a poison report.
  static Result<std::unique_ptr<Wal>> Open(const std::string& dir,
                                           const std::string& stream_name,
                                           const std::string& ts_xml,
                                           const WalOptions& options,
                                           WalRecovery* recovery);

  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// \brief Appends one encoded v2 FRAGMENT frame. `seq` must be the next
  /// sequence number; a seq already durable (below next_seq()) is a no-op
  /// (the server re-seeding its log after recovery), a gap is an error.
  /// Handles rotation, the fsync policy, and automatic checkpoints.
  Status Append(int64_t seq, std::string_view frame_bytes);

  /// \brief Forces the current segment to disk regardless of policy.
  Status Sync();

  /// \brief Compacts checkpoint + every segment into a new checkpoint
  /// covering all records, then garbage-collects what it replaced.
  Status Checkpoint();

  /// \brief Syncs and closes. Appends fail afterwards. Idempotent (the
  /// destructor calls it). A broken handle closes without syncing: its
  /// descriptor's last fsync may have failed, and fsyncing it again could
  /// report success for pages the kernel already dropped (fsyncgate).
  Status Close();

  /// \brief Rebuilds a broken (or healthy) handle into a fresh durable
  /// generation, in place: closes the sick descriptor (never fsyncing it
  /// again), wipes the old generation's files, mints a NEW epoch, writes
  /// a manifest carrying `base_seq`, checkpoints `records` (the caller's
  /// live in-memory frames for seqs base_seq..base_seq+n-1, re-written in
  /// full through fresh descriptors), and re-opens an active segment at
  /// the tail. On success broken() is false and appends resume at
  /// base_seq + records.size(). On failure the handle stays broken and
  /// Rearm may be retried. The caller must cut subscribers afterwards:
  /// the epoch changed, so no old resume point may survive.
  Status Rearm(int64_t base_seq,
               const std::vector<std::shared_ptr<const std::string>>&
                   records);

  /// \brief Installs (or clears, with nullptr) a callback fired when a
  /// *background* failure breaks the wal — today the interval flusher's
  /// fsync; append-path failures surface synchronously to the caller
  /// instead. Fired from the flusher thread with no wal lock held, and
  /// serialized against SetFailureCallback itself: once a
  /// SetFailureCallback(nullptr) returns, no callback is in flight.
  void SetFailureCallback(std::function<void(const Status&)> cb);

  uint64_t epoch() const { return epoch_; }
  int64_t next_seq() const;
  /// \brief Seq the newest durable checkpoint covers through: records
  /// [base_seq(), n). The retention driver may only drop in-memory state
  /// for seqs below this — anything not yet checkpointed must stay
  /// replayable from memory.
  int64_t checkpointed() const;
  /// \brief First seq this generation holds (0 for a never-re-armed dir).
  int64_t base_seq() const;
  const std::string& dir() const { return dir_; }
  WalStats stats() const;

  /// \brief True once a write/sync error made further appends unsafe
  /// (they would be out of order with the record whose fate is unknown).
  /// Permanent for this handle until Rearm rebuilds it (or a restart
  /// recovers the directory).
  bool broken() const;

 private:
  Wal(std::string dir, WalOptions options);

  void StartFlusher();
  void FlusherLoop();
  void NotifyFailure(const Status& why);
  Status AppendLocked(int64_t seq, std::string_view frame_bytes);
  Status RotateLocked();
  Status CheckpointLocked();
  Status SyncLocked();
  Status MaybeSyncLocked();
  /// Writes all of `data` to fd_, un-writing (ftruncate) on failure so a
  /// short write cannot leave a mid-segment torn record behind.
  Status WriteFully(std::string_view data);
  Status OpenActiveSegment(int64_t base_seq, bool create);

  const std::string dir_;
  const WalOptions opts_;
  uint64_t epoch_ = 0;
  // Stream identity, kept so Rearm can rewrite the manifest.
  std::string stream_name_;
  std::string ts_xml_;

  mutable std::mutex mu_;
  int fd_ = -1;                  // active segment
  std::string active_path_;
  int64_t active_base_ = 0;      // seq of the active segment's first record
  size_t active_bytes_ = 0;      // bytes in the active segment
  int64_t base_ = 0;             // first seq this generation holds
  int64_t next_seq_ = 0;
  int64_t checkpointed_ = 0;     // seq the newest checkpoint covers through
  std::vector<std::string> sealed_;  // sealed segment paths, oldest first
  std::chrono::steady_clock::time_point last_sync_{};
  bool dirty_ = false;           // unsynced bytes in the active segment
  // Time of the oldest unsynced append (valid while dirty_): the interval
  // flusher's deadline is dirty_since_ + fsync_interval.
  std::chrono::steady_clock::time_point dirty_since_{};
  bool broken_ = false;          // unrecoverable write error: fail appends
  WalStats stats_;

  // kInterval only: syncs an idle dirty tail within fsync_interval, so the
  // bounded-loss-window promise holds without relying on a next append.
  std::thread flusher_;
  std::condition_variable flush_cv_;
  bool flusher_stop_ = false;    // guarded by mu_

  // Background-failure callback. Its own mutex (never held with mu_) so
  // invocation serializes against SetFailureCallback without holding the
  // wal lock across user code.
  std::mutex cb_mu_;
  std::function<void(const Status&)> failure_cb_;  // guarded by cb_mu_

  friend class WalTestPeer;
};

/// \brief Rebuilds a StreamServer's published history from a recovery:
/// decodes every record against the server's Tag Structure and replants it
/// (no multicast, no wire-byte accounting). The server must be freshly
/// constructed with the recovered stream's name and schema.
Status RestoreStream(const WalRecovery& recovery,
                     stream::StreamServer* server);

}  // namespace xcql::net

#endif  // XCQL_NET_WAL_H_
