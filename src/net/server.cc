#include "net/server.h"

#include <fcntl.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <unordered_set>
#include <utility>

#include "common/io_env.h"
#include "net/query_channel.h"
#include "net/wal.h"

namespace xcql::net {

namespace {

// HEARTBEAT frames carry the count of frames published so far: a
// subscriber is caught up when its last seen seq is that count minus one.
Frame HeartbeatFrame(int64_t published) {
  Frame hb;
  hb.type = FrameType::kHeartbeat;
  hb.seq = static_cast<uint64_t>(published);
  return hb;
}

std::shared_ptr<const std::string> SharedBytes(std::string bytes) {
  return std::make_shared<const std::string>(std::move(bytes));
}

// Per-connection view of a logged frame. The common path (v2 peer, not a
// retransmission) returns the stored buffer itself — zero copies, the
// whole point of the refcounted log; only old peers and repeats allocate.
std::shared_ptr<const std::string> TransformFrame(
    const std::shared_ptr<const std::string>& stored, bool repeat,
    bool peer_crc) {
  if (!repeat && peer_crc) return stored;
  std::string rewritten;
  if (repeat) rewritten = WithRepeatFlag(*stored);
  if (!peer_crc) {
    rewritten = DowngradeFrameToV1(rewritten.empty() ? std::string_view(*stored)
                                                     : rewritten);
  }
  if (rewritten.empty()) return stored;
  return SharedBytes(std::move(rewritten));
}

}  // namespace

FragmentServer::FragmentServer(stream::StreamServer* source,
                               FragmentServerOptions options)
    : source_(source), opts_(options) {}

FragmentServer::~FragmentServer() { Stop(); }

Status FragmentServer::Start() {
  if (started_) return Status::InvalidArgument("server already started");
  ts_xml_ = source_->tag_structure().ToXml();
  ts_hash_ = TagStructureHash(ts_xml_);
  epoch_.store(opts_.wal != nullptr ? opts_.wal->epoch() : 0,
               std::memory_order_release);
  // Seed the frame log with everything the source published before the
  // network face existed, so late subscribers replay the full stream.
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    // A source whose history was already trimmed seeds a log that starts
    // at the same base: positions stay absolute publish seqs either way.
    log_base_ = source_->history_base();
    for (int64_t i = log_base_; i < source_->history_size(); ++i) {
      log_.push_back(
          EncodeEntry(source_->history_at(i), static_cast<uint64_t>(i)));
      filler_index_[log_.back().filler_id].push_back(
          static_cast<size_t>(i));
      retired_fillers_.erase(log_.back().filler_id);
      frame_log_bytes_ += EntryBytes(log_.back());
      max_valid_time_s_ =
          std::max(max_valid_time_s_, log_.back().valid_time_s);
      // Make the seed durable too. A history rebuilt *from* the WAL
      // re-appends seqs the WAL already holds, which Append skips.
      if (opts_.wal != nullptr) {
        const LogEntry& entry = log_.back();
        const std::shared_ptr<const std::string>& rec =
            entry.plain != nullptr ? entry.plain : entry.compressed;
        if (rec != nullptr) {
          XCQL_RETURN_NOT_OK(opts_.wal->Append(i, *rec));
        }
      }
      // The query channel replays the same history the subscribers do, so
      // recovered registrations rebuild their result logs byte-identical.
      // The channel must be Open()ed before Start() for mid-stream
      // registration positions to line up.
      if (opts_.query_channel != nullptr) {
        opts_.query_channel->OnFragment(source_->history_at(i));
      }
    }
    published_.store(log_base_ + static_cast<int64_t>(log_.size()));
  }
  XCQL_ASSIGN_OR_RETURN(listener_, ListenOn(opts_.port));
  XCQL_ASSIGN_OR_RETURN(port_, BoundPort(listener_));
  XCQL_RETURN_NOT_OK(listener_.SetNonBlocking());
  loop_ = std::make_unique<EventLoop>();
  XCQL_RETURN_NOT_OK(loop_->Init(opts_.backend));
  backend_ = loop_->backend();
  // Registering before the thread spawns is safe: thread creation orders
  // these writes before anything the loop thread does.
  XCQL_RETURN_NOT_OK(
      loop_->Add(listener_.fd(), &listener_tag_, /*want_read=*/true,
                 /*want_write=*/false));
  stopping_.store(false);
  loop_thread_ = std::thread([this] { LoopThread(); });
  source_->RegisterClient(this);
  if (opts_.wal != nullptr) {
    // Satellite of the degrade path: the interval flusher's background
    // fsync failure reaches DegradeDurability the moment it happens, not
    // at the next append. The callback runs on the flusher thread, which
    // holds no server lock — DegradeDurability is safe there.
    opts_.wal->SetFailureCallback(
        [this](const Status& why) { DegradeDurability(why); });
    if (opts_.durability.self_heal || opts_.durability.soft_free_bytes > 0 ||
        opts_.durability.hard_free_bytes > 0) {
      {
        std::lock_guard<std::mutex> lock(durability_mu_);
        durability_stop_ = false;
      }
      durability_thread_ = std::thread([this] { DurabilityLoop(); });
    }
  }
  started_ = true;
  return Status::OK();
}

void FragmentServer::Stop() {
  if (!started_) return;
  started_ = false;
  source_->UnregisterClient(this);
  if (opts_.wal != nullptr) {
    // Blocks until any in-flight flusher failure callback returns, so no
    // DegradeDurability can land on a server mid-teardown.
    opts_.wal->SetFailureCallback(nullptr);
  }
  {
    std::lock_guard<std::mutex> lock(durability_mu_);
    durability_stop_ = true;
  }
  durability_cv_.notify_all();
  if (durability_thread_.joinable()) durability_thread_.join();
  stopping_.store(true, std::memory_order_release);
  // Defensive: a publisher parked in a kBlock wait (there should be none —
  // Stop comes from the publisher thread) must not outlive the loop.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) {
      std::lock_guard<std::mutex> conn_lock(conn->mu);
      conn->closing = true;
      conn->cv_space.notify_all();
    }
  }
  loop_->Wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  // The loop thread tore down every connection (closing each socket
  // exactly once) on its way out; what's left is the listener and the
  // loop's own descriptors.
  listener_.Close();
  loop_.reset();
}

int64_t FragmentServer::next_seq() const {
  std::lock_guard<std::mutex> lock(log_mu_);
  return log_base_ + static_cast<int64_t>(log_.size());
}

int64_t FragmentServer::log_base() const {
  std::lock_guard<std::mutex> lock(log_mu_);
  return log_base_;
}

FragmentServer::LogEntry FragmentServer::EncodeEntry(
    const frag::Fragment& fragment, uint64_t seq) {
  metrics_.AddFragmentEncode();
  LogEntry entry;
  entry.filler_id = fragment.id;
  entry.valid_time_s = fragment.valid_time.seconds();
  entry.tsid = fragment.tsid;
  const frag::TagStructure& ts = source_->tag_structure();
  Frame frame;
  frame.type = FrameType::kFragment;
  frame.seq = seq;
  auto plain =
      frag::EncodeWirePayload(fragment, ts, frag::WireCodec::kPlainXml);
  if (plain.ok()) {
    frame.flags = 0;
    frame.payload = std::move(plain).MoveValue();
    auto bytes = EncodeFrame(frame);
    if (bytes.ok()) entry.plain = SharedBytes(std::move(bytes).MoveValue());
  }
  if (entry.plain == nullptr) metrics_.AddEncodeFailure();
  auto compressed =
      frag::EncodeWirePayload(fragment, ts, frag::WireCodec::kTagCompressed);
  if (compressed.ok()) {
    frame.flags = kFlagCompressedPayload;
    frame.payload = std::move(compressed).MoveValue();
    auto bytes = EncodeFrame(frame);
    if (bytes.ok()) {
      entry.compressed = SharedBytes(std::move(bytes).MoveValue());
    }
  }
  return entry;
}

void FragmentServer::OnFragment(const std::string& /*stream_name*/,
                                frag::Fragment fragment) {
  const LogEntry* stored = nullptr;
  int64_t seq = 0;
  {
    std::lock_guard<std::mutex> log_lock(log_mu_);
    seq = log_base_ + static_cast<int64_t>(log_.size());
    LogEntry entry = EncodeEntry(fragment, static_cast<uint64_t>(seq));
    // The seq is burned even for a fragment with no transportable form
    // (unreachable while the source enforces the wire payload limit at
    // publish): the log must stay aligned with the source's history
    // numbering, or resume after a restart skips or duplicates fragments.
    if (entry.plain != nullptr || entry.compressed != nullptr) {
      metrics_.AddFragmentOut();
    }
    // Write-ahead: the frame reaches the WAL before any subscriber queue,
    // so under FsyncPolicy::kAlways a subscriber can never hold a seq that
    // a restart would not recover. A failed append degrades durability but
    // not delivery — the stream must not stall on a full disk — at the
    // price of the durable epoch: see DegradeDurability.
    if (opts_.wal != nullptr &&
        !wal_degraded_.load(std::memory_order_acquire)) {
      const std::shared_ptr<const std::string>& rec =
          entry.plain != nullptr ? entry.plain : entry.compressed;
      if (rec != nullptr) {
        Status st = opts_.wal->Append(seq, *rec);
        if (!st.ok()) {
          metrics_.AddWalAppendFailure();
          DegradeDurability(st);
        }
      }
    }
    log_.push_back(std::move(entry));
    filler_index_[log_.back().filler_id].push_back(static_cast<size_t>(seq));
    // A re-published filler is live again: its EXPIRED tombstone (if any)
    // no longer describes the log.
    retired_fillers_.erase(log_.back().filler_id);
    frame_log_bytes_ += EntryBytes(log_.back());
    max_valid_time_s_ =
        std::max(max_valid_time_s_, log_.back().valid_time_s);
    published_.store(seq + 1);
    stored = &log_.back();  // deque: stable under later appends
  }
  // Wake before the fan-out: a kBlock wait below needs the loop draining
  // queues while we stand still, and the loop may be asleep right now.
  loop_->Wake();
  // Fan out without holding log_mu_ or conns_mu_: the snapshot keeps every
  // connection alive, and replay/live dedup is handled by next_live_seq
  // (set to log_.size() under log_mu_ at each conn's replay handover).
  std::vector<std::shared_ptr<Connection>> targets;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    targets = conns_;
  }
  for (auto& conn : targets) Enqueue(conn.get(), *stored, seq);
  loop_->Wake();
  // Tick the query channel after the fragment fan-out (same thread, so the
  // channel still sees fragments in exactly log order, and a query's
  // RESULT reaches each data queue after the fragment that caused it).
  // OnRepeat stays off this path — a retransmission is not a new fragment
  // and must not re-tick the engine.
  if (opts_.query_channel != nullptr) {
    opts_.query_channel->OnFragment(fragment);
    loop_->Wake();
  }
  // Retention rides the publish cadence (same thread, after the fan-out
  // and the channel tick, so every layer saw this fragment first). The
  // soft disk-space watermark jumps the cadence: the supervisor raised
  // the flag, but RunRetention is publisher-thread-only, so the pass
  // happens here, at the first publish after the dip.
  const bool emergency = emergency_retain_.exchange(
      false, std::memory_order_acq_rel);
  if (emergency) metrics_.AddEmergencyRetentionRun();
  if (emergency ||
      (opts_.retention.enabled() &&
       ++publishes_since_retain_ >=
           std::max<int64_t>(1, opts_.retention.check_every))) {
    publishes_since_retain_ = 0;
    RunRetention();
  }
}

void FragmentServer::DegradeDurability(const Status& why) {
  std::fprintf(stderr, "wal: durability failure at seq %lld: %s\n",
               static_cast<long long>(
                   published_.load(std::memory_order_acquire)),
               why.message().c_str());
  if (wal_degraded_.exchange(true, std::memory_order_acq_rel)) return;
  degraded_since_ms_.store(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count(),
      std::memory_order_release);
  metrics_.SetDurabilityDegraded(true);
  // Every frame from here on is undurable, and the WAL's sequence chain
  // is broken: a restart would recover a shorter history and then mint
  // the *same* seq numbers for different fragments. Any subscriber still
  // holding (durable epoch, last_seq) would mis-splice the two histories
  // on resume. Durability cannot be restored on the broken handle, but
  // the epoch invariant can: retire the durable epoch for a fresh
  // volatile one and cut every connection. Each subscriber
  // re-handshakes, sees the epoch change, discards its resume state, and
  // replays from the (complete) in-memory log — so no resume point
  // minted after this moment can survive into the next incarnation.
  // With self-heal on, a later TryRearm mints the next *durable* epoch.
  const uint64_t retired = epoch_.load(std::memory_order_relaxed);
  epoch_.store(MintEpoch(), std::memory_order_release);
  std::fprintf(stderr,
               "net: durability degraded; epoch %llu retired, subscribers "
               "restarted on a volatile epoch\n",
               static_cast<unsigned long long>(retired));
  CutAllConnections();
  // Wake the supervisor so the first probe fires at probe_initial, not
  // at the tail of a full watermark interval.
  durability_cv_.notify_all();
}

void FragmentServer::CutAllConnections() {
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) CloseConnection(conn.get());
  }
  loop_->Wake();
}

int64_t FragmentServer::time_in_degraded_ms() const {
  int64_t total = metrics_.Snapshot().degraded_ms_total;
  if (wal_degraded_.load(std::memory_order_acquire)) {
    const int64_t now_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    total += now_ms - degraded_since_ms_.load(std::memory_order_acquire);
  }
  return total;
}

Status FragmentServer::TryRearm() {
  if (opts_.wal == nullptr) {
    return Status::InvalidArgument("no WAL attached");
  }
  if (!wal_degraded_.load(std::memory_order_acquire)) {
    return Status::OK();  // nothing to heal
  }
  {
    // Publishing pauses for the duration of the rebuild: the snapshot,
    // the new generation's checkpoint and the resumption of durable
    // appends must see one consistent log. OnFragment blocks on log_mu_
    // and then appends durably into the fresh generation.
    std::lock_guard<std::mutex> log_lock(log_mu_);
    std::vector<std::shared_ptr<const std::string>> records;
    records.reserve(log_.size());
    for (const LogEntry& e : log_) {
      const std::shared_ptr<const std::string>& rec =
          e.plain != nullptr ? e.plain : e.compressed;
      if (rec == nullptr) {
        return Status::Internal(
            "rearm: a logged fragment has no encoded form");
      }
      records.push_back(rec);
    }
    XCQL_RETURN_NOT_OK(opts_.wal->Rearm(log_base_, records));
    // Publish the new durable epoch and resume durable appends while the
    // publisher is still blocked, so the first post-rearm fragment lands
    // in the new generation with no volatile window.
    epoch_.store(opts_.wal->epoch(), std::memory_order_release);
    wal_degraded_.store(false, std::memory_order_release);
  }
  const int64_t now_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  metrics_.AddDegradedMs(
      now_ms - degraded_since_ms_.load(std::memory_order_acquire));
  metrics_.SetDurabilityDegraded(false);
  metrics_.AddDurabilityRearm();
  std::fprintf(stderr,
               "net: durability re-armed on epoch %llu (covering %lld "
               "frames); subscribers restarted\n",
               static_cast<unsigned long long>(
                   epoch_.load(std::memory_order_acquire)),
               static_cast<long long>(
                   published_.load(std::memory_order_acquire)));
  // One cut per cycle: every subscriber re-handshakes onto the durable
  // epoch and replays from the retained log.
  CutAllConnections();
  return Status::OK();
}

bool FragmentServer::ProbeDisk(const std::string& dir) {
  IoEnv* io = IoEnv::Get();
  const std::string path = dir + "/.durability-probe";
  // A fresh descriptor per probe: fsyncgate forbids re-fsyncing any fd
  // whose fsync already failed, and the cheapest way to never do it is
  // to never reuse one.
  int fd = io->Open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) return false;
  char block[4096];
  std::memset(block, 0xa5, sizeof(block));
  bool ok = true;
  size_t off = 0;
  while (off < sizeof(block)) {
    ssize_t n = io->Write(fd, block + off, sizeof(block) - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    off += static_cast<size_t>(n);
  }
  if (ok) ok = io->Fsync(fd) == 0;
  io->Close(fd);
  (void)io->Unlink(path.c_str());
  return ok;
}

void FragmentServer::DurabilityLoop() {
  const DurabilityOptions& d = opts_.durability;
  std::chrono::milliseconds backoff = d.probe_initial;
  for (;;) {
    const bool degraded = wal_degraded_.load(std::memory_order_acquire);
    std::chrono::milliseconds wait = d.watermark_interval;
    if (degraded && d.self_heal) wait = std::min(wait, backoff);
    {
      std::unique_lock<std::mutex> lock(durability_mu_);
      // A degrade mid-wait must cut the healthy-tick sleep short (its
      // notify would otherwise read as spurious and the first probe
      // would wait out the full watermark interval).
      durability_cv_.wait_for(lock, wait, [this, degraded] {
        return durability_stop_ ||
               (!degraded &&
                wal_degraded_.load(std::memory_order_acquire));
      });
      if (durability_stop_) return;
    }
    const std::string& dir = opts_.wal->dir();
    // Watermarks: one statvfs per tick feeds the gauge; the hard mark
    // degrades while appends still succeed (no torn tail on a disk that
    // is about to fill), the soft mark schedules an emergency
    // checkpoint-then-trim pass on the publisher thread.
    int64_t free_bytes = -1;
    if (d.soft_free_bytes > 0 || d.hard_free_bytes > 0) {
      free_bytes = IoFreeBytes(dir);
      metrics_.SetDataDirFreeBytes(free_bytes);
      if (free_bytes >= 0) {
        if (d.hard_free_bytes > 0 && free_bytes < d.hard_free_bytes &&
            !wal_degraded_.load(std::memory_order_acquire)) {
          DegradeDurability(Status::Internal(
              "data dir free space below the hard watermark"));
        } else if (d.soft_free_bytes > 0 &&
                   free_bytes < d.soft_free_bytes) {
          emergency_retain_.store(true, std::memory_order_release);
        }
      }
    }
    if (!d.self_heal || !wal_degraded_.load(std::memory_order_acquire)) {
      backoff = d.probe_initial;
      continue;
    }
    // A re-arm below the hard watermark would degrade again immediately;
    // wait for space (emergency retention or an operator) instead.
    const bool above_hard =
        d.hard_free_bytes <= 0 ||
        (free_bytes < 0 ? true : free_bytes >= d.hard_free_bytes);
    if (above_hard && ProbeDisk(dir) && TryRearm().ok()) {
      backoff = d.probe_initial;
    } else {
      backoff = std::min(backoff * 2, d.probe_max);
    }
  }
}

void FragmentServer::RunRetention() {
  if (!opts_.retention.enabled()) return;
  // The refresh path below re-enters OnFragment, which may tick the
  // retention cadence again; one pass at a time (publisher thread only).
  if (retaining_) return;
  retaining_ = true;
  metrics_.AddRetentionRun();
  // "Now" is the stream's high-water validTime, not the wall clock: the
  // windows age with the data, so a replayed history compacts exactly the
  // way the original run did (determinism the result logs rely on).
  int64_t now_s;
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    now_s = max_valid_time_s_;
  }
  const DateTime now(now_s);
  // The observability clamp: retention may only forget what no registered
  // query can still observe. An unbounded (or pending-recovery) query
  // pins the floor at Start() and nothing below it is ever compacted.
  DateTime observe_floor = DateTime::End();
  if (opts_.query_channel != nullptr) {
    observe_floor = opts_.query_channel->ObservableFloor(now);
  }
  // 1. Store compaction (the channel's mirror; serve-side consumer stores
  // compact with the same policy in their own loops).
  frag::RetentionPolicy policy;
  policy.max_age_s = opts_.retention.max_age_s;
  policy.max_versions = opts_.retention.max_versions;
  policy.max_fragments = opts_.retention.max_frames;
  if (policy.enabled() && opts_.query_channel != nullptr) {
    frag::CompactionStats stats =
        opts_.query_channel->CompactMirror(policy, now, observe_floor);
    if (stats.removed_fragments > 0) {
      metrics_.AddFragmentsCompacted(stats.removed_fragments);
    }
  }
  // 2. Frame-log trim target: the policy proposes (count/time windows),
  // the observability rule disposes — a prefix entry may go only when its
  // version's lifespan ended below the floor every query can still see
  // (successor-version rule, mirroring FragmentStore::Compact), so a NACK
  // for anything observable is always answerable from the retained log.
  const int64_t observe_floor_s = observe_floor.seconds();
  // A live version the windows want gone can pin the (prefix-trimmed)
  // frame log forever — the classic case is a root container published
  // once and never superseded. For snapshot tags the unpin is sound:
  // re-publish the identical version at the tail ("refresh"; replacement
  // semantics make it a state no-op), which makes the old entry
  // superseded and trimmable on the next pass. Temporal live versions
  // stay pinned by design — minting a successor would cap their open
  // lifespan and change query results.
  constexpr size_t kMaxRefreshPerRun = 32;
  constexpr int64_t kMaxScanPastBlock = 4096;
  std::vector<int64_t> refresh_seqs;
  int64_t desired = 0;
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    const int64_t end = log_base_ + static_cast<int64_t>(log_.size());
    const int64_t count_target = opts_.retention.max_frames >= 0
                                     ? end - opts_.retention.max_frames
                                     : log_base_;
    const int64_t age_cutoff_s = opts_.retention.max_age_s >= 0
                                     ? now_s - opts_.retention.max_age_s
                                     : INT64_MIN;
    desired = log_base_;
    bool blocked = false;
    int64_t scanned_past_block = 0;
    for (int64_t s = log_base_; s < end; ++s) {
      const LogEntry& e = log_[static_cast<size_t>(s - log_base_)];
      const bool want = s < count_target || e.valid_time_s < age_cutoff_s;
      if (!want) break;
      if (blocked && (++scanned_past_block > kMaxScanPastBlock ||
                      refresh_seqs.size() >= kMaxRefreshPerRun)) {
        break;
      }
      // Lifespan check, mirroring FragmentStore::Compact: an event
      // version lives only at its validTime; a temporal version's
      // lifespan is capped by the next logged version of the same filler
      // (no successor = still open at now, never trimmed); a snapshot
      // version is dead the moment a successor replaced it.
      const auto* tag = source_->tag_structure().FindById(e.tsid);
      bool ended_below = false;
      if (tag == nullptr) {
        // unknown tsid: keep, conservatively
      } else if (tag->type == frag::TagType::kEvent) {
        ended_below = e.valid_time_s < observe_floor_s;
      } else {
        auto fit = filler_index_.find(e.filler_id);
        if (fit != filler_index_.end()) {
          auto succ = std::upper_bound(fit->second.begin(),
                                       fit->second.end(),
                                       static_cast<size_t>(s));
          if (succ != fit->second.end()) {
            if (tag->type == frag::TagType::kSnapshot) {
              ended_below = true;
            } else {
              const LogEntry& next =
                  log_[*succ - static_cast<size_t>(log_base_)];
              ended_below = next.valid_time_s <= observe_floor_s;
            }
          }
        }
        if (!ended_below && tag->type == frag::TagType::kSnapshot &&
            refresh_seqs.size() < kMaxRefreshPerRun) {
          refresh_seqs.push_back(s);
        }
      }
      if (!ended_below) {
        // The prefix stops here, but keep scanning the want-window for
        // more refreshable snapshots so one pass unpins them all.
        blocked = true;
        continue;
      }
      if (!blocked) desired = s + 1;
    }
  }
  // 3. Checkpoint-then-trim, in that order, with crash points at the
  // boundary: a kill anywhere here leaves every retired seq covered by a
  // durable checkpoint (never both GC'd and un-checkpointed).
  if (opts_.wal != nullptr) {
    if (!wal_degraded_.load(std::memory_order_acquire) &&
        desired > opts_.wal->checkpointed()) {
      Status st = opts_.wal->Checkpoint();
      if (!st.ok()) {
        std::fprintf(stderr, "retain: checkpoint failed: %s\n",
                     st.message().c_str());
      }
    }
    // Whatever the checkpoint covers bounds the trim — on failure the
    // frame log simply keeps its prefix until a later pass succeeds.
    // With durability degraded no new checkpoint may be cut, but the
    // last durable one is still valid coverage, so the clamp (not the
    // trim) is what must survive degradation: without it a retired seq
    // would be neither in memory nor durable anywhere.
    desired = std::min(desired, opts_.wal->checkpointed());
  }
  WalHooks::At("retain:before_trim");
  int64_t retired = 0;
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    while (log_base_ < desired && !log_.empty()) {
      const LogEntry& e = log_.front();
      frame_log_bytes_ -= EntryBytes(e);
      auto fit = filler_index_.find(e.filler_id);
      if (fit != filler_index_.end()) {
        auto& positions = fit->second;
        if (!positions.empty() &&
            positions.front() == static_cast<size_t>(log_base_)) {
          positions.pop_front();
        }
        if (positions.empty()) {
          filler_index_.erase(fit);
          // Every logged frame of this filler is now retired: only such
          // ids may be answered EXPIRED — a NACK for an id the log never
          // held is real upstream loss and must stay silent.
          retired_fillers_.insert(e.filler_id);
        }
      }
      log_.pop_front();
      ++log_base_;
      ++retired;
    }
    metrics_.SetRetentionFloorSeq(log_base_);
    metrics_.SetFrameLogBytes(frame_log_bytes_);
  }
  if (retired > 0) metrics_.AddFramesRetired(retired);
  // The source's fragment history trims in lockstep: RepeatFiller and
  // late ReplayTo serve the retained suffix only.
  source_->TrimHistory(desired);
  WalHooks::At("retain:after_trim");
  // 4. Result logs last: their regeneration replays the (durable) frame
  // log, so they must never outlive the data that rebuilds them.
  if (opts_.query_channel != nullptr && opts_.retention.max_results >= 0) {
    const int64_t trimmed =
        opts_.query_channel->TrimResultLogs(opts_.retention.max_results);
    if (trimmed > 0) metrics_.AddResultLogTrimmed(trimmed);
  }
  if (opts_.query_channel != nullptr) {
    metrics_.SetFragmentStoreBytes(
        opts_.query_channel->mirror_store_bytes());
  }
  // 5. Refreshes last, outside every lock: each re-publish runs the whole
  // normal publish path (WAL append, fan-out, channel tick) and lands at
  // the tail, superseding the pinned head entry for the next pass.
  for (int64_t s : refresh_seqs) {
    if (s < source_->history_base() || s >= source_->history_size()) continue;
    const frag::Fragment& live = source_->history_at(s);
    frag::Fragment copy;
    copy.id = live.id;
    copy.tsid = live.tsid;
    copy.valid_time = live.valid_time;
    copy.content = live.content->Clone();
    Status st = source_->Publish(std::move(copy));
    if (!st.ok()) {
      std::fprintf(stderr, "retain: refresh of filler %lld failed: %s\n",
                   static_cast<long long>(live.id), st.message().c_str());
      break;
    }
    metrics_.AddFrameRefreshed();
  }
  retaining_ = false;
}

void FragmentServer::OnRepeat(const std::string& /*stream_name*/,
                              int64_t history_pos,
                              frag::Fragment /*fragment*/) {
  // A repeat is a wire-level retransmission: re-send the logged frame with
  // its original seq instead of minting a new one, so the log and the
  // source's history keep the same numbering across restarts.
  const LogEntry* stored = nullptr;
  {
    std::lock_guard<std::mutex> log_lock(log_mu_);
    // A position below log_base_ was retired by retention: nothing to
    // re-send (the repeat's audience NACKs it and gets an EXPIRED answer).
    if (history_pos < log_base_ ||
        history_pos >= log_base_ + static_cast<int64_t>(log_.size())) {
      return;
    }
    metrics_.AddRepeatOut();
    stored = &log_[static_cast<size_t>(history_pos - log_base_)];
  }
  std::vector<std::shared_ptr<Connection>> targets;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    targets = conns_;
  }
  for (auto& conn : targets) {
    Enqueue(conn.get(), *stored, history_pos, /*repeat=*/true);
  }
  loop_->Wake();
}

void FragmentServer::ServeRepeat(Connection* conn,
                                 const RepeatRequest& request) {
  bool expired = false;
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    auto it = filler_index_.find(request.filler_id);
    if (it == filler_index_.end()) {
      // Absent from the index means never published — real upstream
      // loss, answered with silence so the repair budget reports it —
      // unless the retirement tombstones say every logged frame of it
      // was aged out by retention, which is answered "expired on
      // purpose" so the subscriber stops NACKing data that is gone by
      // policy, not by accident.
      expired = retired_fillers_.count(request.filler_id) != 0;
    } else {
      const std::unordered_set<int64_t> have(
          request.have_valid_times.begin(), request.have_valid_times.end());
      bool any_retained = false;
      for (size_t pos : it->second) {
        if (static_cast<int64_t>(pos) < log_base_) continue;  // retired
        any_retained = true;
        // Version-aware NACK: skip versions the subscriber already holds.
        // Granularity is the validTime — two versions sharing one are both
        // re-sent, and the subscriber's store dedups the one it has.
        const LogEntry& entry = log_[pos - static_cast<size_t>(log_base_)];
        if (!have.empty() && have.count(entry.valid_time_s) != 0) continue;
        metrics_.AddRepeatOut();
        // An explicitly requested filler is always re-sent, filter or not.
        Enqueue(conn, entry, static_cast<int64_t>(pos), /*repeat=*/true,
                /*bypass_filter=*/true);
      }
      expired = !any_retained && log_base_ > 0;
    }
  }
  if (expired) SendExpiredFiller(conn, request.filler_id);
}

void FragmentServer::SendExpiredFiller(Connection* conn, int64_t filler_id) {
  bool peer_retention;
  bool peer_crc;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    peer_retention = conn->peer_retention;
    peer_crc = conn->peer_crc;
  }
  // Not negotiated: stay silent, exactly like an unknown filler id — the
  // subscriber's repair budget eventually reports the filler lost.
  if (!peer_retention) return;
  Expired expired;
  expired.kind = Expired::kFiller;
  expired.filler_id = filler_id;
  Frame frame;
  frame.type = FrameType::kExpired;
  frame.payload = EncodeExpired(expired);
  auto bytes =
      EncodeFrame(frame, peer_crc ? kFrameVersionCrc : kFrameVersion);
  if (!bytes.ok()) return;
  metrics_.AddExpiredOut();
  metrics_.AddFillerExpired();
  EnqueueCtrl(conn, SharedBytes(std::move(bytes).MoveValue()));
}

void FragmentServer::Enqueue(Connection* conn, const LogEntry& entry,
                             int64_t seq, bool repeat, bool bypass_filter) {
  const bool may_block = !OnLoopThread();
  std::unique_lock<std::mutex> lock(conn->mu);
  if (conn->closing || !conn->live) return;
  // Replay/live dedup: anything below next_live_seq was (or will be)
  // served by the replay cursor. Retransmissions are exempt — their whole
  // point is re-sending an old seq.
  if (!repeat && seq < conn->next_live_seq) return;
  // Preferred codec first, the other form as fallback: the flag in the
  // frame header (not the handshake) is authoritative for decoding, so
  // either form is decodable by any subscriber.
  const bool prefer_compressed =
      conn->codec == frag::WireCodec::kTagCompressed;
  const std::shared_ptr<const std::string>& primary =
      prefer_compressed ? entry.compressed : entry.plain;
  const std::shared_ptr<const std::string>& fallback =
      prefer_compressed ? entry.plain : entry.compressed;
  const std::shared_ptr<const std::string>& stored =
      primary != nullptr ? primary : fallback;
  if (stored == nullptr) return;  // unencodable in any form
  if (conn->filter_active && !bypass_filter &&
      conn->filter.count(entry.tsid) == 0) {
    metrics_.AddFrameFiltered(static_cast<int64_t>(stored->size()));
    // Live filtered seqs accumulate into one pending SKIP_TO; a filtered
    // retransmission is simply not re-sent (the subscriber holds the seq
    // or will NACK it explicitly).
    if (!repeat && !conn->skip_suppressed) {
      if (conn->pending_skip < 0) {
        conn->pending_skip_start = seq;
        conn->skip_deadline =
            std::chrono::steady_clock::now() + opts_.skip_flush_interval;
      }
      conn->pending_skip = seq;
    }
    return;
  }
  // A filtered run precedes this frame: its SKIP_TO must go out first and
  // in seq order (the data queue preserves both).
  if (!repeat && conn->pending_skip >= 0 && conn->pending_skip < seq) {
    if (!ReserveQueueSlot(conn, lock, may_block)) return;
    PushSkipLocked(conn);
  }
  if (!ReserveQueueSlot(conn, lock, may_block)) return;
  conn->data.push_back(
      OutFrame{TransformFrame(stored, repeat, conn->peer_crc), false});
  ++conn->enqueued;
  metrics_.UpdateQueueHwm(static_cast<int64_t>(conn->data.size()));
}

bool FragmentServer::ReserveQueueSlot(Connection* conn,
                                      std::unique_lock<std::mutex>& lock,
                                      bool may_block) {
  if (conn->data.size() < opts_.queue_capacity) return true;
  switch (opts_.slow_consumer) {
    case SlowConsumerPolicy::kBlock:
      // The loop thread (the queue's only consumer) and callers under
      // QueryChannel::mu_ must never park here, or nothing can ever drain
      // the queue: overflowing the bound keeps them lossless instead.
      if (!may_block) return true;
      loop_->Wake();  // the drain side may be asleep; it runs while we wait
      conn->cv_space.wait(lock, [&] {
        return conn->data.size() < opts_.queue_capacity || conn->closing;
      });
      return !conn->closing;
    case SlowConsumerPolicy::kDropOldest: {
      bool dropped_data = false;
      while (conn->data.size() >= opts_.queue_capacity) {
        if (!conn->data.front().is_skip) dropped_data = true;
        conn->data.pop_front();
        ++conn->dropped;
        metrics_.AddDrop();
      }
      if (dropped_data) {
        // A SKIP_TO still queued (or pending) behind the eviction would
        // advance the subscriber's prefix past the dropped frame, masking
        // the loss. Purge them and stop skipping until the next replay
        // handover re-establishes a clean prefix; the subscriber then
        // sees the genuine gap and repairs it via REPLAY_FROM.
        for (auto it = conn->data.begin(); it != conn->data.end();) {
          if (it->is_skip) {
            ++conn->dropped;
            metrics_.AddDrop();
            it = conn->data.erase(it);
          } else {
            ++it;
          }
        }
        conn->pending_skip = -1;
        conn->pending_skip_start = -1;
        conn->skip_suppressed = true;
      }
      return true;
    }
    case SlowConsumerPolicy::kDisconnect:
      conn->closing = true;
      conn->sock.Shutdown();
      conn->cv_space.notify_all();
      metrics_.AddSlowDisconnect();
      loop_->Wake();  // let the loop observe the dead socket promptly
      return false;
  }
  return false;
}

void FragmentServer::PushSkipLocked(Connection* conn) {
  if (conn->pending_skip < 0 || conn->skip_suppressed) return;
  Frame skip;
  skip.type = FrameType::kSkipTo;
  skip.seq = static_cast<uint64_t>(conn->pending_skip);
  skip.payload = EncodeSkipTo(conn->pending_skip_start);
  auto bytes = EncodeFrame(
      skip, conn->peer_crc ? kFrameVersionCrc : kFrameVersion);
  if (!bytes.ok()) return;  // fixed 8-byte payload: cannot actually fail
  conn->data.push_back(OutFrame{SharedBytes(std::move(bytes).MoveValue()),
                                /*is_skip=*/true});
  ++conn->enqueued;
  conn->pending_skip = -1;
  conn->pending_skip_start = -1;
  metrics_.AddSkipOut();
  metrics_.UpdateQueueHwm(static_cast<int64_t>(conn->data.size()));
}

void FragmentServer::EnqueueEncoded(
    Connection* conn, const std::shared_ptr<const std::string>& frame) {
  std::unique_lock<std::mutex> lock(conn->mu);
  // Only `closing` gates this path, not `live`: a QUERY may directly
  // follow the HELLO, and its backlog replay must not wait for a
  // REPLAY_FROM the subscriber may never send.
  if (conn->closing) return;
  std::shared_ptr<const std::string> out = frame;
  if (!conn->peer_crc) {
    std::string down = DowngradeFrameToV1(*frame);
    if (!down.empty()) out = SharedBytes(std::move(down));
  }
  // Never block: RESULT delivery runs under QueryChannel::mu_, which the
  // loop thread needs to drain anything.
  if (!ReserveQueueSlot(conn, lock, /*may_block=*/false)) return;
  conn->data.push_back(OutFrame{std::move(out), false});
  ++conn->enqueued;
  metrics_.UpdateQueueHwm(static_cast<int64_t>(conn->data.size()));
  metrics_.AddResultFrameOut();
}

void FragmentServer::EnqueueCtrl(Connection* conn,
                                 std::shared_ptr<const std::string> frame) {
  std::lock_guard<std::mutex> lock(conn->mu);
  if (conn->closing) return;
  // Control frames ride the unbounded queue and stay out of the
  // enqueued/sent counters, exactly like the old direct sends did.
  conn->ctrl.push_back(OutFrame{std::move(frame), false});
}

void FragmentServer::CloseConnection(Connection* conn) {
  std::lock_guard<std::mutex> lock(conn->mu);
  conn->closing = true;
  conn->sock.Shutdown();
  conn->cv_space.notify_all();
}

// --- event-loop thread -----------------------------------------------------

void FragmentServer::LoopThread() {
  loop_tid_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  std::vector<LoopEvent> events;
  // When the next O(conns) maintenance sweep is due: the earliest
  // heartbeat/skip-flush deadline recorded by the previous sweep. Keeping
  // the sweep off the per-event path is what makes the loop O(ready):
  // with N idle connections a per-pass sweep costs O(N) and the passes
  // themselves arrive at O(N / heartbeat_interval) — quadratic in N.
  auto next_sweep =
      std::chrono::steady_clock::now() + opts_.heartbeat_interval;
  while (!stopping_.load(std::memory_order_acquire)) {
    // Sleep until readiness, a Wake(), or the next maintenance sweep.
    const auto now = std::chrono::steady_clock::now();
    const auto delta = std::chrono::duration_cast<std::chrono::milliseconds>(
                           next_sweep - now)
                           .count();
    const int timeout_ms =
        delta <= 0 ? 0
                   : static_cast<int>(std::min<int64_t>(delta, 60000)) + 1;
    auto waited = loop_->Wait(&events, timeout_ms);
    if (!waited.ok()) break;  // backend failure: unrecoverable
    if (stopping_.load(std::memory_order_acquire)) break;
    for (const LoopEvent& ev : events) {
      if (ev.tag == &listener_tag_) {
        HandleAccept();
        continue;
      }
      auto* conn = static_cast<Connection*>(ev.tag);
      if (conn->dead) continue;  // torn down earlier in this batch
      if (ev.error) {
        DestroyConnection(conn);
        continue;
      }
      if (ev.readable) HandleReadable(conn);
      if (conn->dead) continue;
      // A readable event may have queued replies (HELLO ack, query
      // status) or kicked off a replay: push them now rather than
      // waiting for the next sweep.
      if (ev.writable || (ev.readable && !conn->want_write)) {
        PumpWrites(conn);
      }
    }
    // The O(conns) maintenance sweep, run only when the publisher woke
    // the loop (enqueues arrive with a Wake, not an fd event: every
    // connection not already parked on EPOLLOUT gets a chance to drain)
    // or a heartbeat deadline arrived — never on plain fd traffic.
    const auto tick = std::chrono::steady_clock::now();
    if (loop_->took_wake() || tick >= next_sweep) {
      auto earliest = tick + opts_.heartbeat_interval;
      for (size_t i = 0; i < loop_conns_.size(); ++i) {
        Connection* conn = loop_conns_[i].get();
        if (conn->dead) continue;
        if (!conn->want_write) PumpWrites(conn);
        if (conn->dead) continue;
        const auto next = HeartbeatTick(conn, tick);
        if (next < earliest) earliest = next;
      }
      // The minimum stays valid until it fires: new connections start a
      // full interval out (see HandleAccept), and a skip run started by a
      // publisher between sweeps arrives with the Wake that announces the
      // publish, which itself triggers the next sweep.
      next_sweep = earliest;
    }
    // Sweep: forget connections destroyed in this iteration.
    if (dead_pending_) {
      dead_pending_ = false;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        conns_.erase(
            std::remove_if(conns_.begin(), conns_.end(),
                           [](const std::shared_ptr<Connection>& c) {
                             return c->dead;
                           }),
            conns_.end());
      }
      loop_conns_.erase(
          std::remove_if(loop_conns_.begin(), loop_conns_.end(),
                         [](const std::shared_ptr<Connection>& c) {
                           return c->dead;
                         }),
          loop_conns_.end());
    }
  }
  // Teardown, on the owning thread, exactly once per socket.
  for (auto& conn : loop_conns_) {
    if (!conn->dead) DestroyConnection(conn.get());
  }
  loop_conns_.clear();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.clear();
  }
  loop_->Remove(listener_.fd());
}

void FragmentServer::HandleAccept() {
  for (;;) {
    auto accepted = Accept(listener_);
    if (!accepted.ok()) return;  // drained (EAGAIN) or transient error
    metrics_.AddConnectionAccepted();
    auto conn = std::make_shared<Connection>();
    conn->sock = std::move(accepted).MoveValue();
    if (!conn->sock.SetNonBlocking().ok()) continue;
    conn->hb_deadline =
        std::chrono::steady_clock::now() + opts_.heartbeat_interval;
    if (!loop_->Add(conn->sock.fd(), conn.get(), /*want_read=*/true,
                    /*want_write=*/false)
             .ok()) {
      continue;
    }
    // Visible to OnFragment before the handshake can finish: otherwise a
    // fragment published between the end of a replay and the insertion
    // would never be enqueued (a silent gap).
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(conn);
    }
    loop_conns_.push_back(std::move(conn));
  }
}

void FragmentServer::HandleReadable(Connection* conn) {
  char buf[64 * 1024];
  for (;;) {
    bool would_block = false;
    auto n = conn->sock.RecvNonBlocking(buf, sizeof(buf), &would_block);
    if (!n.ok()) {
      DestroyConnection(conn);
      return;
    }
    if (would_block) return;
    if (n.value() == 0) {  // orderly EOF
      DestroyConnection(conn);
      return;
    }
    conn->reader.Feed(buf, n.value());
    for (;;) {
      auto next = conn->reader.Next();
      if (!next.ok()) {  // malformed stream; cut the connection
        DestroyConnection(conn);
        return;
      }
      if (!next.value().has_value()) break;
      const Frame& frame = *next.value();
      metrics_.AddFrameIn(static_cast<int64_t>(
          (frame.wire_version == kFrameVersionCrc ? kFrameHeaderSizeCrc
                                                  : kFrameHeaderSize) +
          frame.payload.size()));
      if (!frame.crc_ok) {
        // Client→server traffic is all control; a corrupt request is the
        // client's to retry. Count it and move on.
        metrics_.AddFrameCorrupt();
        continue;
      }
      if (!HandleFrame(conn, frame)) {
        DestroyConnection(conn);
        return;
      }
      // A semantic rejection queued a BYE: stop consuming input and let
      // PumpWrites close once the queues drain.
      if (conn->close_after_flush) {
        PumpWrites(conn);
        return;
      }
    }
  }
}

bool FragmentServer::HandleFrame(Connection* conn, const Frame& frame) {
  if (!conn->handshaken) {
    bool reject_with_bye = true;
    Status st = Status::InvalidArgument("first frame must be HELLO");
    if (frame.type == FrameType::kHello) {
      auto hello = DecodeHello(frame.payload);
      if (!hello.ok()) {
        // Garbage HELLO payload (line noise, a mangled frame): count it
        // and just cut the connection. A BYE here would be wrong — the
        // subscriber reads BYE-at-handshake as a semantic rejection
        // (wrong stream/schema) and gives up for good, while a retried
        // clean HELLO may well succeed.
        metrics_.AddBadControlFrame();
        metrics_.AddHandshakeFailure();
        return false;
      }
      st = HandleHello(conn, hello.value(), frame);
    }
    if (!st.ok()) {
      metrics_.AddHandshakeFailure();
      if (reject_with_bye) {
        Frame bye;
        bye.type = FrameType::kBye;
        auto bye_bytes = EncodeFrame(bye, kFrameVersion);
        if (bye_bytes.ok()) {
          EnqueueCtrl(conn, SharedBytes(std::move(bye_bytes).MoveValue()));
        }
        conn->close_after_flush = true;
        (void)loop_->Update(conn->sock.fd(), /*want_read=*/false,
                            /*want_write=*/true);
      }
      return reject_with_bye;  // with a BYE queued, close after the flush
    }
    conn->handshaken = true;
    return true;
  }
  switch (frame.type) {
    case FrameType::kReplayFrom: {
      auto from = DecodeReplayFrom(frame.payload);
      if (!from.ok()) {
        // A well-framed, checksum-valid request whose payload doesn't
        // decode: count it and drop it. Killing the session would let
        // one buggy (or chaos-injected) control frame take down a live
        // subscriber; the framing itself survived, so the stream stays
        // parseable.
        metrics_.AddBadControlFrame();
        break;
      }
      metrics_.AddReplayServed();
      std::lock_guard<std::mutex> lock(conn->mu);
      // A catch-up REPLAY_FROM on a live connection drops back to the
      // cursor; anything already queued becomes a harmless duplicate
      // (the subscriber discards seqs it has seen).
      conn->live = false;
      conn->replaying = true;
      conn->replay_next =
          static_cast<size_t>(std::max<int64_t>(0, from.value() + 1));
      conn->pending_skip = -1;
      conn->pending_skip_start = -1;
      conn->skip_suppressed = false;
      break;
    }
    case FrameType::kRepeatRequest: {
      auto request = DecodeRepeatRequest(frame.payload);
      if (!request.ok()) {
        metrics_.AddBadControlFrame();
        break;
      }
      metrics_.AddRepeatRequestIn();
      ServeRepeat(conn, request.value());
      break;
    }
    case FrameType::kSubscribe:
      HandleSubscribe(conn, frame);
      break;
    case FrameType::kQuery:
      HandleQuery(conn, frame);
      break;
    case FrameType::kUnquery:
      HandleUnquery(conn, frame);
      break;
    case FrameType::kBye:
      return false;
    default:
      break;  // HEARTBEAT and anything else: ignore
  }
  return true;
}

Status FragmentServer::HandleHello(Connection* conn, const Hello& hello,
                                   const Frame& frame) {
  if (hello.stream_name != source_->name()) {
    return Status::NotFound("unknown stream '" + hello.stream_name +
                            "' (serving '" + source_->name() + "')");
  }
  if (hello.ts_hash != 0 && hello.ts_hash != ts_hash_) {
    return Status::InvalidArgument(
        "tag-structure hash mismatch: subscriber holds a different schema");
  }
  // Capability negotiation: a bit is echoed only when the peer asked AND
  // the server can serve it, so v3 frame types never flow on a connection
  // that did not negotiate them (old peers ignore the bits).
  const bool peer_queries = (frame.flags & kHelloFlagQueryChannel) != 0 &&
                            opts_.query_channel != nullptr;
  const bool peer_filter = (frame.flags & kHelloFlagTsidFilter) != 0;
  // Echoed only when a retention policy is actually active: peers of a
  // server that never forgets should never see an EXPIRED frame.
  const bool peer_retention = (frame.flags & kHelloFlagRetention) != 0 &&
                              opts_.retention.enabled();
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->codec = hello.codec;
    conn->peer_crc = (frame.flags & kHelloFlagCrcFrames) != 0;
    conn->peer_queries = peer_queries;
    conn->peer_filter = peer_filter;
    conn->peer_retention = peer_retention;
  }
  Hello ack;
  ack.stream_name = source_->name();
  ack.codec = hello.codec;
  ack.ts_hash = ts_hash_;
  ack.tag_structure_xml = ts_xml_;
  Frame out;
  out.type = FrameType::kHello;
  out.flags = kHelloFlagCrcFrames;  // we always speak v2; peer decides
  if (peer_queries) out.flags |= kHelloFlagQueryChannel;
  if (peer_filter) out.flags |= kHelloFlagTsidFilter;
  if (peer_retention) out.flags |= kHelloFlagRetention;
  // The stream epoch rides in the ack's (otherwise unused) seq field: a
  // subscriber resuming with seq numbers from a different epoch knows its
  // resume point is meaningless and restarts from scratch. 0 = no epoch
  // (an in-memory server, or one predating durability). After a WAL
  // append failure this is the volatile replacement epoch, which the next
  // incarnation can never advertise — forcing a clean restart then.
  out.seq = epoch_.load(std::memory_order_acquire);
  out.payload = EncodeHello(ack);
  // HELLO frames stay v1 on the wire so a peer of either vintage can
  // parse them; the flag bits above are the entire negotiation.
  XCQL_ASSIGN_OR_RETURN(std::string bytes, EncodeFrame(out, kFrameVersion));
  EnqueueCtrl(conn, SharedBytes(std::move(bytes)));
  return Status::OK();
}

void FragmentServer::HandleSubscribe(Connection* conn, const Frame& frame) {
  if (!conn->peer_filter) {
    // Not negotiated: a v3 frame the peer promised not to send.
    metrics_.AddBadControlFrame();
    return;
  }
  auto tsids = DecodeSubscribe(frame.payload);
  if (!tsids.ok()) {
    metrics_.AddBadControlFrame();
    return;
  }
  std::unordered_set<int> closure = ExpandTsidClosure(tsids.value());
  std::lock_guard<std::mutex> lock(conn->mu);
  if (tsids.value().empty()) {
    // Empty SUBSCRIBE = deliver everything again. A pending skip for
    // already-filtered seqs stays pending: those frames were not sent.
    conn->filter_active = false;
    conn->filter.clear();
  } else {
    conn->filter_active = true;
    conn->filter = std::move(closure);
  }
}

std::unordered_set<int> FragmentServer::ExpandTsidClosure(
    const std::vector<int>& ids) const {
  std::unordered_set<int> out;
  const frag::TagStructure& ts = source_->tag_structure();
  std::vector<const frag::TagNode*> stack;
  for (int id : ids) {
    // Unknown ids are kept literally: the filter simply never matches
    // them, and a schema evolution race stays a no-op instead of an error.
    out.insert(id);
    const frag::TagNode* node = ts.FindById(id);
    if (node == nullptr) continue;
    stack.push_back(node);
    while (!stack.empty()) {
      const frag::TagNode* n = stack.back();
      stack.pop_back();
      out.insert(n->id);
      for (const auto& child : n->children) stack.push_back(child.get());
    }
  }
  return out;
}

void FragmentServer::SendQueryStatus(Connection* conn,
                                     const QueryStatus& status) {
  Frame frame;
  frame.type = FrameType::kQueryStatus;
  frame.payload = EncodeQueryStatus(status);
  auto bytes = EncodeFrame(
      frame, conn->peer_crc ? kFrameVersionCrc : kFrameVersion);
  if (!bytes.ok()) return;
  EnqueueCtrl(conn, SharedBytes(std::move(bytes).MoveValue()));
}

void FragmentServer::HandleQuery(Connection* conn, const Frame& frame) {
  auto decoded = DecodeQuery(frame.payload);
  if (!decoded.ok()) {
    metrics_.AddBadControlFrame();
    return;
  }
  RemoteQuerySpec spec = std::move(decoded).MoveValue();
  // kQueryFlagAutoFilter is transport-level: strip it before registration
  // so identical queries (with and without the bit) share one canonical
  // key, one engine query and one result log.
  const bool auto_filter = (spec.flags & kQueryFlagAutoFilter) != 0;
  spec.flags &= static_cast<uint8_t>(~kQueryFlagAutoFilter);
  QueryStatus status;
  status.token = spec.token;
  if (!conn->peer_queries) {
    // The peer skipped negotiation (or no channel is attached): a clean
    // control-plane refusal, not a cut connection.
    status.code = kQueryStatusRejected;
    status.message = "query channel not negotiated on this connection";
    metrics_.AddQueryRejected();
    SendQueryStatus(conn, status);
    return;
  }
  bool rejected_by_limit = false;
  auto id = opts_.query_channel->Register(spec, &rejected_by_limit);
  if (!id.ok()) {
    status.code =
        rejected_by_limit ? kQueryStatusRejected : kQueryStatusInvalid;
    status.message = id.status().message();
    metrics_.AddQueryRejected();
    SendQueryStatus(conn, status);
    return;
  }
  // The per-connection limit must not count a re-send of a query this
  // connection already subscribes to: the subscriber's handshake re-send
  // can race its first send, and rejecting the duplicate would overwrite
  // the ok status client-side. Register is idempotent for identical
  // specs, so probing the id first is free.
  const bool already =
      std::find(conn->query_subs.begin(), conn->query_subs.end(),
                id.value()) != conn->query_subs.end();
  if (!already && opts_.max_queries_per_conn > 0 &&
      static_cast<int>(conn->query_subs.size()) >=
          opts_.max_queries_per_conn) {
    status.code = kQueryStatusRejected;
    status.message = "connection query limit reached (" +
                     std::to_string(opts_.max_queries_per_conn) + ")";
    metrics_.AddQueryRejected();
    SendQueryStatus(conn, status);
    // If this refusal is what registered the query, release it; with
    // sinks still attached elsewhere Unregister keeps the registration.
    (void)opts_.query_channel->Unregister(id.value());
    return;
  }
  metrics_.AddQueryRegistered();
  // The query registered, so it compiles: fold its relevance into the
  // connection's subscription filter when asked (and negotiated). An
  // unbounded query (or one touching a different stream than expected)
  // needs everything — the filter comes off entirely.
  if (auto_filter && conn->peer_filter) {
    auto relevance = opts_.query_channel->AnalyzeSpec(spec);
    if (relevance.ok()) {
      auto it = relevance.value().streams.find(source_->name());
      if (relevance.value().unbounded ||
          it == relevance.value().streams.end()) {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->filter_active = false;
        conn->filter.clear();
      } else {
        std::vector<int> ids(it->second.begin(), it->second.end());
        std::unordered_set<int> closure = ExpandTsidClosure(ids);
        std::lock_guard<std::mutex> lock(conn->mu);
        if (conn->filter_active) {
          conn->filter.insert(closure.begin(), closure.end());
        } else {
          conn->filter_active = true;
          conn->filter = std::move(closure);
        }
      }
    }
  }
  status.query_id = id.value();
  status.code = kQueryStatusOk;
  // Ack before subscribing: the backlog replay enqueues RESULT frames
  // that may go out immediately, and the subscriber needs the token→id
  // mapping before the first one lands. Both ride queues, and ctrl
  // drains before data, so the order holds on the wire too.
  SendQueryStatus(conn, status);
  if (already) return;  // duplicate QUERY within one session: ack only
  Status sub = opts_.query_channel->Subscribe(
      id.value(), spec.last_result_seq, conn,
      [this, conn](const std::shared_ptr<const std::string>& bytes) {
        EnqueueEncoded(conn, bytes);
      },
      /*send_expired=*/conn->peer_retention);
  if (!sub.ok()) {
    // Raced a concurrent UNQUERY between Register and Subscribe: retract
    // the ok with an UnknownId status; the subscriber re-issues the QUERY.
    status.code = kQueryStatusUnknownId;
    status.message = sub.message();
    SendQueryStatus(conn, status);
    return;
  }
  conn->query_subs.push_back(id.value());
}

void FragmentServer::HandleUnquery(Connection* conn, const Frame& frame) {
  auto id = DecodeUnquery(frame.payload);
  if (!id.ok()) {
    metrics_.AddBadControlFrame();
    return;
  }
  QueryStatus status;
  status.query_id = id.value();
  auto it = std::find(conn->query_subs.begin(), conn->query_subs.end(),
                      id.value());
  if (!conn->peer_queries || it == conn->query_subs.end()) {
    status.code = kQueryStatusUnknownId;
    status.message = "query not subscribed on this connection";
    SendQueryStatus(conn, status);
    return;
  }
  conn->query_subs.erase(it);
  opts_.query_channel->Unsubscribe(id.value(), conn);
  (void)opts_.query_channel->Unregister(id.value());
  status.code = kQueryStatusOk;
  SendQueryStatus(conn, status);
}

std::shared_ptr<const std::string> FragmentServer::NextFrame(
    Connection* conn) {
  // 1. Control frames (acks, statuses, heartbeats, BYE).
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (!conn->ctrl.empty()) {
      auto frame = std::move(conn->ctrl.front().bytes);
      conn->ctrl.pop_front();
      return frame;
    }
  }
  // 2. A replay frame stashed behind its preceding SKIP_TO.
  if (conn->replay_stash != nullptr) return std::move(conn->replay_stash);
  // 3. The replay cursor: history served straight from the log, one
  // bounded log_mu_ hold, never queued. `replaying` is written only on
  // this thread, so the unlocked pre-check cannot race.
  if (conn->replaying) {
    std::lock_guard<std::mutex> log_lock(log_mu_);
    std::unique_lock<std::mutex> lock(conn->mu);
    while (conn->replaying) {
      if (static_cast<int64_t>(conn->replay_next) < log_base_) {
        // The requested resume point was retired by retention. The WAL
        // checkpoint still holds it (a restarted server replays it), but
        // this incarnation's in-memory log starts at log_base_.
        const int64_t first = static_cast<int64_t>(conn->replay_next);
        conn->replay_next = static_cast<size_t>(log_base_);
        if (!conn->peer_retention) {
          // The peer never negotiated EXPIRED frames: a clean BYE beats a
          // frame type it would treat as stream corruption. Its reconnect
          // machinery starts over (and a fresh start resumes from -1,
          // which lands at the floor via the same path, expired-run-first).
          conn->replaying = false;
          conn->close_after_flush = true;
          Frame bye;
          bye.type = FrameType::kBye;
          auto bye_bytes = EncodeFrame(bye, kFrameVersion);
          if (!bye_bytes.ok()) break;
          ++conn->enqueued;
          ++conn->sent;
          return SharedBytes(std::move(bye_bytes).MoveValue());
        }
        Expired expired;
        expired.kind = Expired::kRange;
        expired.first_seq = first;
        Frame f;
        f.type = FrameType::kExpired;
        f.seq = static_cast<uint64_t>(log_base_ - 1);
        f.payload = EncodeExpired(expired);
        auto bytes = EncodeFrame(
            f, conn->peer_crc ? kFrameVersionCrc : kFrameVersion);
        if (bytes.ok()) {
          ++conn->enqueued;
          ++conn->sent;
          metrics_.AddExpiredOut();
          return SharedBytes(std::move(bytes).MoveValue());
        }
        continue;  // encode failure (cannot actually happen): fall through
      }
      if (conn->replay_next >=
          static_cast<size_t>(log_base_) + log_.size()) {
        // Handover, under log_mu_ + conn->mu: the live path owns every
        // seq from the log end on, so replay and fan-out are exactly-once
        // even though the publisher fans out lock-free.
        conn->replaying = false;
        conn->live = true;
        conn->next_live_seq = log_base_ + static_cast<int64_t>(log_.size());
        conn->skip_suppressed = false;
        if (conn->pending_skip >= 0) PushSkipLocked(conn);
        break;
      }
      const LogEntry& entry =
          log_[conn->replay_next - static_cast<size_t>(log_base_)];
      const int64_t seq = static_cast<int64_t>(conn->replay_next);
      ++conn->replay_next;
      const bool prefer_compressed =
          conn->codec == frag::WireCodec::kTagCompressed;
      const std::shared_ptr<const std::string>& primary =
          prefer_compressed ? entry.compressed : entry.plain;
      const std::shared_ptr<const std::string>& fallback =
          prefer_compressed ? entry.plain : entry.compressed;
      const std::shared_ptr<const std::string>& stored =
          primary != nullptr ? primary : fallback;
      if (stored == nullptr) continue;
      if (conn->filter_active && conn->filter.count(entry.tsid) == 0) {
        metrics_.AddFrameFiltered(static_cast<int64_t>(stored->size()));
        if (conn->pending_skip < 0) {
          conn->pending_skip_start = seq;
          conn->skip_deadline =
              std::chrono::steady_clock::now() + opts_.skip_flush_interval;
        }
        conn->pending_skip = seq;
        continue;
      }
      auto frame = TransformFrame(stored, /*repeat=*/false, conn->peer_crc);
      // Replay frames are never queued: count them enqueued+sent at the
      // pull, keeping enqueued == sent + dropped + queue_depth exact.
      ++conn->enqueued;
      ++conn->sent;
      if (conn->pending_skip >= 0 && !conn->skip_suppressed) {
        // The filtered run before this frame gets its SKIP_TO first.
        Frame skip;
        skip.type = FrameType::kSkipTo;
        skip.seq = static_cast<uint64_t>(conn->pending_skip);
        skip.payload = EncodeSkipTo(conn->pending_skip_start);
        auto skip_bytes = EncodeFrame(
            skip, conn->peer_crc ? kFrameVersionCrc : kFrameVersion);
        conn->pending_skip = -1;
        conn->pending_skip_start = -1;
        if (skip_bytes.ok()) {
          ++conn->enqueued;
          ++conn->sent;
          metrics_.AddSkipOut();
          conn->replay_stash = std::move(frame);
          return SharedBytes(std::move(skip_bytes).MoveValue());
        }
      }
      return frame;
    }
  }
  // 4. The bounded data queue (live fragments, RESULTs, SKIP_TOs).
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (!conn->data.empty()) {
      auto frame = std::move(conn->data.front().bytes);
      conn->data.pop_front();
      ++conn->sent;
      conn->cv_space.notify_one();
      return frame;
    }
  }
  return nullptr;
}

void FragmentServer::PumpWrites(Connection* conn) {
  for (;;) {
    if (conn->cur == nullptr) {
      conn->cur = NextFrame(conn);
      conn->cur_off = 0;
      if (conn->cur == nullptr) break;  // fully drained
    }
    bool would_block = false;
    auto n = conn->sock.SendNonBlocking(conn->cur->data() + conn->cur_off,
                                        conn->cur->size() - conn->cur_off,
                                        &would_block);
    if (!n.ok()) {
      DestroyConnection(conn);
      return;
    }
    if (would_block) break;
    conn->cur_off += n.value();
    if (conn->cur_off < conn->cur->size()) continue;
    metrics_.AddFrameOut(static_cast<int64_t>(conn->cur->size()));
    conn->cur.reset();
    conn->cur_off = 0;
    // Any completed send proves liveness: push the heartbeat out.
    conn->hb_deadline =
        std::chrono::steady_clock::now() + opts_.heartbeat_interval;
  }
  const bool pending = conn->cur != nullptr;
  // cur == null here means NextFrame found nothing: ctrl, stash, replay
  // and data are all empty — the flush point close_after_flush waits for.
  if (!pending && conn->close_after_flush) {
    DestroyConnection(conn);
    return;
  }
  if (pending != conn->want_write) {
    conn->want_write = pending;
    (void)loop_->Update(conn->sock.fd(),
                        /*want_read=*/!conn->close_after_flush,
                        /*want_write=*/pending);
  }
}

void FragmentServer::FlushPendingSkip(Connection* conn) {
  std::lock_guard<std::mutex> lock(conn->mu);
  if (conn->closing || !conn->live) return;
  PushSkipLocked(conn);
}

std::chrono::steady_clock::time_point FragmentServer::HeartbeatTick(
    Connection* conn, std::chrono::steady_clock::time_point now) {
  bool live;
  bool idle;
  bool has_skip;
  bool peer_crc;
  std::chrono::steady_clock::time_point skip_deadline;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    live = conn->live;
    peer_crc = conn->peer_crc;
    has_skip = conn->pending_skip >= 0 && !conn->skip_suppressed;
    skip_deadline = conn->skip_deadline;
    idle = conn->ctrl.empty() && conn->data.empty() && !conn->replaying;
  }
  if (live && has_skip && now >= skip_deadline) {
    // A run of filtered frames with no matching frame behind it to carry
    // the SKIP_TO out: flush it so the subscriber's contiguous prefix
    // keeps advancing. Cadenced by skip_flush_interval, not the (much
    // coarser) heartbeat clock — a filtered slice should not wait a full
    // liveness interval to learn the stream moved on.
    FlushPendingSkip(conn);
    PumpWrites(conn);
    // The flush is itself a completed send in the common case; PumpWrites
    // already pushed hb_deadline out. Re-read below for the return value.
    has_skip = false;
  }
  if (now >= conn->hb_deadline) {
    conn->hb_deadline = now + opts_.heartbeat_interval;
    if (conn->handshaken && live && idle && !has_skip &&
        conn->cur == nullptr && conn->replay_stash == nullptr) {
      auto hb = EncodeFrame(HeartbeatFrame(published_.load()),
                            peer_crc ? kFrameVersionCrc : kFrameVersion);
      if (hb.ok()) {  // empty payload: cannot actually fail
        EnqueueCtrl(conn, SharedBytes(std::move(hb).MoveValue()));
        PumpWrites(conn);
      }
    }
  }
  // When this connection next needs the clock: its heartbeat, or sooner
  // if a (possibly freshly started) skip run is waiting on its deadline.
  auto next = conn->hb_deadline;
  if (live) {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->pending_skip >= 0 && !conn->skip_suppressed &&
        conn->skip_deadline < next) {
      next = conn->skip_deadline;
    }
  }
  return next;
}

void FragmentServer::DestroyConnection(Connection* conn) {
  if (conn->dead) return;
  conn->dead = true;
  dead_pending_ = true;  // loop thread reaps on its next pass
  // Detach result sinks before the conn can be reaped. A disconnect does
  // not UNQUERY: the registration (and its result log) stays for the
  // subscriber's reconnect.
  if (opts_.query_channel != nullptr && !conn->query_subs.empty()) {
    opts_.query_channel->DropSink(conn);
  }
  loop_->Remove(conn->sock.fd());
  std::lock_guard<std::mutex> lock(conn->mu);
  conn->closing = true;
  conn->sock.Close();
  conn->cv_space.notify_all();
}

// --- introspection ---------------------------------------------------------

MetricsSnapshot FragmentServer::metrics() const {
  MetricsSnapshot s = metrics_.Snapshot();
  s.connections_active = active_connections();
  return s;
}

int FragmentServer::active_connections() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  int active = 0;
  for (const auto& conn : conns_) {
    std::lock_guard<std::mutex> conn_lock(conn->mu);
    if (!conn->closing) ++active;
  }
  return active;
}

std::vector<ConnectionStats> FragmentServer::connection_stats() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  std::vector<ConnectionStats> out;
  out.reserve(conns_.size());
  for (const auto& conn : conns_) {
    std::lock_guard<std::mutex> conn_lock(conn->mu);
    ConnectionStats stats;
    stats.enqueued = conn->enqueued;
    stats.sent = conn->sent;
    stats.dropped = conn->dropped;
    stats.queue_depth = static_cast<int64_t>(conn->data.size());
    stats.live = conn->live;
    stats.closing = conn->closing;
    stats.filtered = conn->filter_active;
    out.push_back(stats);
  }
  return out;
}

}  // namespace xcql::net
