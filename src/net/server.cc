#include "net/server.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "net/query_channel.h"
#include "net/wal.h"

namespace xcql::net {

namespace {

// HEARTBEAT frames carry the count of frames published so far: a
// subscriber is caught up when its last seen seq is that count minus one.
Frame HeartbeatFrame(int64_t published) {
  Frame hb;
  hb.type = FrameType::kHeartbeat;
  hb.seq = static_cast<uint64_t>(published);
  return hb;
}

}  // namespace

FragmentServer::FragmentServer(stream::StreamServer* source,
                               FragmentServerOptions options)
    : source_(source), opts_(options) {}

FragmentServer::~FragmentServer() { Stop(); }

Status FragmentServer::Start() {
  if (started_) return Status::InvalidArgument("server already started");
  ts_xml_ = source_->tag_structure().ToXml();
  ts_hash_ = TagStructureHash(ts_xml_);
  epoch_.store(opts_.wal != nullptr ? opts_.wal->epoch() : 0,
               std::memory_order_release);
  // Seed the frame log with everything the source published before the
  // network face existed, so late subscribers replay the full stream.
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    for (int64_t i = 0; i < source_->history_size(); ++i) {
      log_.push_back(EncodeEntry(source_->history_at(i),
                                 static_cast<uint64_t>(log_.size())));
      filler_index_[log_.back().filler_id].push_back(log_.size() - 1);
      // Make the seed durable too. A history rebuilt *from* the WAL
      // re-appends seqs the WAL already holds, which Append skips.
      if (opts_.wal != nullptr) {
        const LogEntry& entry = log_.back();
        const std::string& rec =
            entry.plain.empty() ? entry.compressed : entry.plain;
        if (!rec.empty()) {
          XCQL_RETURN_NOT_OK(opts_.wal->Append(
              static_cast<int64_t>(log_.size()) - 1, rec));
        }
      }
      // The query channel replays the same history the subscribers do, so
      // recovered registrations rebuild their result logs byte-identical.
      // The channel must be Open()ed before Start() for mid-stream
      // registration positions to line up.
      if (opts_.query_channel != nullptr) {
        opts_.query_channel->OnFragment(source_->history_at(i));
      }
    }
    published_.store(static_cast<int64_t>(log_.size()));
  }
  XCQL_ASSIGN_OR_RETURN(listener_, ListenOn(opts_.port));
  XCQL_ASSIGN_OR_RETURN(port_, BoundPort(listener_));
  source_->RegisterClient(this);
  stopping_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return Status::OK();
}

void FragmentServer::Stop() {
  if (!started_) return;
  started_ = false;
  stopping_.store(true);
  source_->UnregisterClient(this);
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    CloseConnection(conn.get());
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
  }
}

int64_t FragmentServer::next_seq() const {
  std::lock_guard<std::mutex> lock(log_mu_);
  return static_cast<int64_t>(log_.size());
}

FragmentServer::LogEntry FragmentServer::EncodeEntry(
    const frag::Fragment& fragment, uint64_t seq) {
  LogEntry entry;
  entry.filler_id = fragment.id;
  entry.valid_time_s = fragment.valid_time.seconds();
  const frag::TagStructure& ts = source_->tag_structure();
  Frame frame;
  frame.type = FrameType::kFragment;
  frame.seq = seq;
  auto plain =
      frag::EncodeWirePayload(fragment, ts, frag::WireCodec::kPlainXml);
  if (plain.ok()) {
    frame.flags = 0;
    frame.payload = std::move(plain).MoveValue();
    auto bytes = EncodeFrame(frame);
    if (bytes.ok()) entry.plain = std::move(bytes).MoveValue();
  }
  if (entry.plain.empty()) metrics_.AddEncodeFailure();
  auto compressed =
      frag::EncodeWirePayload(fragment, ts, frag::WireCodec::kTagCompressed);
  if (compressed.ok()) {
    frame.flags = kFlagCompressedPayload;
    frame.payload = std::move(compressed).MoveValue();
    auto bytes = EncodeFrame(frame);
    if (bytes.ok()) entry.compressed = std::move(bytes).MoveValue();
  }
  return entry;
}

void FragmentServer::OnFragment(const std::string& /*stream_name*/,
                                frag::Fragment fragment) {
  std::lock_guard<std::mutex> log_lock(log_mu_);
  LogEntry entry = EncodeEntry(fragment, static_cast<uint64_t>(log_.size()));
  // The seq is burned even for a fragment with no transportable form
  // (unreachable while the source enforces the wire payload limit at
  // publish): the log must stay aligned with the source's history
  // numbering, or resume after a restart skips or duplicates fragments.
  if (!entry.plain.empty() || !entry.compressed.empty()) {
    metrics_.AddFragmentOut();
  }
  // Write-ahead: the frame reaches the WAL before any subscriber queue,
  // so under FsyncPolicy::kAlways a subscriber can never hold a seq that
  // a restart would not recover. A failed append degrades durability but
  // not delivery — the stream must not stall on a full disk — at the
  // price of the durable epoch: see DegradeDurability.
  if (opts_.wal != nullptr &&
      !wal_degraded_.load(std::memory_order_acquire)) {
    const std::string& rec =
        entry.plain.empty() ? entry.compressed : entry.plain;
    if (!rec.empty()) {
      Status st =
          opts_.wal->Append(static_cast<int64_t>(log_.size()), rec);
      if (!st.ok()) DegradeDurability(st);
    }
  }
  log_.push_back(std::move(entry));
  filler_index_[log_.back().filler_id].push_back(log_.size() - 1);
  published_.store(static_cast<int64_t>(log_.size()));
  const LogEntry& stored = log_.back();
  {
    std::lock_guard<std::mutex> conns_lock(conns_mu_);
    for (auto& conn : conns_) Enqueue(conn.get(), stored);
  }
  // Tick the query channel after the fragment fan-out, still under
  // log_mu_: the channel sees fragments in exactly log order, and its
  // RESULT frames reach each connection queue after the fragment that
  // caused them. OnRepeat stays off this path — a retransmission is not
  // a new fragment and must not re-tick the engine.
  if (opts_.query_channel != nullptr) {
    opts_.query_channel->OnFragment(fragment);
  }
}

void FragmentServer::DegradeDurability(const Status& why) {
  metrics_.AddWalAppendFailure();
  std::fprintf(stderr, "wal: append of seq %lld failed: %s\n",
               static_cast<long long>(log_.size()), why.message().c_str());
  if (wal_degraded_.exchange(true, std::memory_order_acq_rel)) return;
  // Every frame from here on is undurable, and the WAL's sequence chain
  // is broken: a restart would recover a shorter history and then mint
  // the *same* seq numbers for different fragments. Any subscriber still
  // holding (durable epoch, last_seq) would mis-splice the two histories
  // on resume. Durability cannot be restored mid-flight, but the epoch
  // invariant can: retire the durable epoch for a fresh volatile one and
  // cut every connection. Each subscriber re-handshakes, sees the epoch
  // change, discards its resume state, and replays from the (complete)
  // in-memory log — so no resume point minted after this moment can
  // survive into the next incarnation.
  const uint64_t retired = epoch_.load(std::memory_order_relaxed);
  epoch_.store(MintEpoch(), std::memory_order_release);
  std::fprintf(stderr,
               "net: durability has ended for this process; epoch %llu "
               "retired, subscribers restarted on a volatile epoch\n",
               static_cast<unsigned long long>(retired));
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto& conn : conns_) CloseConnection(conn.get());
}

void FragmentServer::OnRepeat(const std::string& /*stream_name*/,
                              int64_t history_pos,
                              frag::Fragment /*fragment*/) {
  // A repeat is a wire-level retransmission: re-send the logged frame with
  // its original seq instead of minting a new one, so the log and the
  // source's history keep the same numbering across restarts.
  std::lock_guard<std::mutex> log_lock(log_mu_);
  if (history_pos < 0 || history_pos >= static_cast<int64_t>(log_.size())) {
    return;
  }
  metrics_.AddRepeatOut();
  const LogEntry& stored = log_[static_cast<size_t>(history_pos)];
  std::lock_guard<std::mutex> conns_lock(conns_mu_);
  for (auto& conn : conns_) Enqueue(conn.get(), stored, /*repeat=*/true);
}

void FragmentServer::ServeRepeat(Connection* conn,
                                 const RepeatRequest& request) {
  std::lock_guard<std::mutex> lock(log_mu_);
  auto it = filler_index_.find(request.filler_id);
  if (it == filler_index_.end()) return;  // never published: nothing to say
  const std::unordered_set<int64_t> have(request.have_valid_times.begin(),
                                         request.have_valid_times.end());
  for (size_t pos : it->second) {
    // Version-aware NACK: skip versions the subscriber already holds.
    // Granularity is the validTime — two versions sharing one are both
    // re-sent, and the subscriber's store dedups the one it has.
    if (!have.empty() && have.count(log_[pos].valid_time_s) != 0) continue;
    metrics_.AddRepeatOut();
    Enqueue(conn, log_[pos], /*repeat=*/true);
  }
}

void FragmentServer::Enqueue(Connection* conn, const LogEntry& entry,
                             bool repeat) {
  std::unique_lock<std::mutex> lock(conn->mu);
  if (conn->closing || !conn->live) return;
  // Preferred codec first, the other form as fallback: the flag in the
  // frame header (not the handshake) is authoritative for decoding, so
  // either form is decodable by any subscriber.
  const bool prefer_compressed =
      conn->codec == frag::WireCodec::kTagCompressed;
  const std::string& primary =
      prefer_compressed ? entry.compressed : entry.plain;
  const std::string& fallback =
      prefer_compressed ? entry.plain : entry.compressed;
  const std::string& stored = primary.empty() ? fallback : primary;
  if (stored.empty()) return;  // unencodable in any form: nothing to send
  // The log holds v2 frames; rewrite only off the common path (old peer,
  // or a retransmission that must carry kFlagRepeat).
  std::string rewritten;
  if (repeat) rewritten = WithRepeatFlag(stored);
  if (!conn->peer_crc) {
    rewritten = DowngradeFrameToV1(rewritten.empty() ? stored : rewritten);
  }
  const std::string& frame = rewritten.empty() ? stored : rewritten;
  if (!ReserveQueueSlot(conn, lock)) return;
  conn->queue.push_back(frame);
  ++conn->enqueued;
  metrics_.UpdateQueueHwm(static_cast<int64_t>(conn->queue.size()));
  conn->cv_data.notify_one();
}

bool FragmentServer::ReserveQueueSlot(Connection* conn,
                                      std::unique_lock<std::mutex>& lock) {
  if (conn->queue.size() < opts_.queue_capacity) return true;
  switch (opts_.slow_consumer) {
    case SlowConsumerPolicy::kBlock:
      conn->cv_space.wait(lock, [&] {
        return conn->queue.size() < opts_.queue_capacity || conn->closing;
      });
      return !conn->closing;
    case SlowConsumerPolicy::kDropOldest:
      while (conn->queue.size() >= opts_.queue_capacity) {
        conn->queue.pop_front();
        ++conn->dropped;
        metrics_.AddDrop();
      }
      return true;
    case SlowConsumerPolicy::kDisconnect:
      conn->closing = true;
      conn->sock.Shutdown();
      conn->cv_data.notify_all();
      conn->cv_space.notify_all();
      metrics_.AddSlowDisconnect();
      return false;
  }
  return false;
}

void FragmentServer::EnqueueEncoded(Connection* conn,
                                    const std::string& frame_bytes) {
  std::unique_lock<std::mutex> lock(conn->mu);
  // Only `closing` gates this path, not `live`: a QUERY may directly
  // follow the HELLO, and its backlog replay must not wait for a
  // REPLAY_FROM the subscriber may never send.
  if (conn->closing) return;
  std::string rewritten;
  if (!conn->peer_crc) rewritten = DowngradeFrameToV1(frame_bytes);
  const std::string& frame = rewritten.empty() ? frame_bytes : rewritten;
  if (!ReserveQueueSlot(conn, lock)) return;
  conn->queue.push_back(frame);
  ++conn->enqueued;
  metrics_.UpdateQueueHwm(static_cast<int64_t>(conn->queue.size()));
  metrics_.AddResultFrameOut();
  conn->cv_data.notify_one();
}

Status FragmentServer::SendRaw(Connection* conn, const std::string& bytes) {
  std::lock_guard<std::mutex> lock(conn->send_mu);
  Status st = conn->sock.SendAll(bytes.data(), bytes.size());
  if (st.ok()) metrics_.AddFrameOut(static_cast<int64_t>(bytes.size()));
  return st;
}

void FragmentServer::CloseConnection(Connection* conn) {
  std::lock_guard<std::mutex> lock(conn->mu);
  conn->closing = true;
  conn->sock.Shutdown();
  conn->cv_data.notify_all();
  conn->cv_space.notify_all();
}

void FragmentServer::AcceptLoop() {
  while (!stopping_.load()) {
    auto accepted = Accept(listener_);
    if (!accepted.ok()) {
      if (stopping_.load()) break;
      continue;  // transient accept error
    }
    metrics_.AddConnectionAccepted();
    auto conn = std::make_unique<Connection>();
    conn->sock = std::move(accepted).MoveValue();
    Connection* raw = conn.get();
    // The connection must be visible to OnFragment before its reader can
    // finish the handshake + replay: otherwise a fragment published
    // between the end of the replay and the insertion is never enqueued
    // (a silent gap).
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->reader = std::thread([this, raw] { ReaderLoop(raw); });
    raw->writer = std::thread([this, raw] { WriterLoop(raw); });
    ReapFinished();
  }
}

void FragmentServer::ReapFinished() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    Connection* conn = it->get();
    bool done;
    {
      std::lock_guard<std::mutex> conn_lock(conn->mu);
      done = conn->reader_done && conn->writer_done;
    }
    if (done) {
      if (conn->reader.joinable()) conn->reader.join();
      if (conn->writer.joinable()) conn->writer.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

Status FragmentServer::HandleHello(Connection* conn, const Hello& hello,
                                   const Frame& frame) {
  if (hello.stream_name != source_->name()) {
    return Status::NotFound("unknown stream '" + hello.stream_name +
                            "' (serving '" + source_->name() + "')");
  }
  if (hello.ts_hash != 0 && hello.ts_hash != ts_hash_) {
    return Status::InvalidArgument(
        "tag-structure hash mismatch: subscriber holds a different schema");
  }
  // Query-channel negotiation: the bit is echoed only when the peer asked
  // AND a channel is attached, so v3 frame types never flow on a
  // connection that did not negotiate them (old peers ignore the bit).
  const bool peer_queries = (frame.flags & kHelloFlagQueryChannel) != 0 &&
                            opts_.query_channel != nullptr;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->codec = hello.codec;
    conn->peer_crc = (frame.flags & kHelloFlagCrcFrames) != 0;
    conn->peer_queries = peer_queries;
  }
  Hello ack;
  ack.stream_name = source_->name();
  ack.codec = hello.codec;
  ack.ts_hash = ts_hash_;
  ack.tag_structure_xml = ts_xml_;
  Frame out;
  out.type = FrameType::kHello;
  out.flags = kHelloFlagCrcFrames;  // we always speak v2; peer decides
  if (peer_queries) out.flags |= kHelloFlagQueryChannel;
  // The stream epoch rides in the ack's (otherwise unused) seq field: a
  // subscriber resuming with seq numbers from a different epoch knows its
  // resume point is meaningless and restarts from scratch. 0 = no epoch
  // (an in-memory server, or one predating durability). After a WAL
  // append failure this is the volatile replacement epoch, which the next
  // incarnation can never advertise — forcing a clean restart then.
  out.seq = epoch_.load(std::memory_order_acquire);
  out.payload = EncodeHello(ack);
  // HELLO frames stay v1 on the wire so a peer of either vintage can
  // parse them; the flag bit above is the entire negotiation.
  XCQL_ASSIGN_OR_RETURN(std::string bytes, EncodeFrame(out, kFrameVersion));
  return SendRaw(conn, bytes);
}

void FragmentServer::ServeReplay(Connection* conn, int64_t last_seen_seq) {
  // Holding log_mu_ across the whole replay closes the gap between "copy
  // the history" and "go live": OnFragment serializes behind us, so the
  // subscriber sees every seq exactly once, in order.
  std::lock_guard<std::mutex> lock(log_mu_);
  metrics_.AddReplayServed();
  {
    std::lock_guard<std::mutex> conn_lock(conn->mu);
    conn->live = true;
  }
  int64_t from = last_seen_seq < 0 ? 0 : last_seen_seq + 1;
  for (size_t seq = static_cast<size_t>(from); seq < log_.size(); ++seq) {
    Enqueue(conn, log_[seq]);
  }
}

void FragmentServer::ReaderLoop(Connection* conn) {
  FrameReader reader;
  char buf[64 * 1024];
  bool handshaken = false;
  for (;;) {
    auto n = conn->sock.Recv(buf, sizeof(buf));
    if (!n.ok() || n.value() == 0) break;
    reader.Feed(buf, n.value());
    bool done = false;
    for (;;) {
      auto next = reader.Next();
      if (!next.ok()) {
        done = true;  // malformed stream; cut the connection
        break;
      }
      if (!next.value().has_value()) break;
      const Frame& frame = *next.value();
      metrics_.AddFrameIn(static_cast<int64_t>(
          (frame.wire_version == kFrameVersionCrc ? kFrameHeaderSizeCrc
                                                  : kFrameHeaderSize) +
          frame.payload.size()));
      if (!frame.crc_ok) {
        // Client→server traffic is all control; a corrupt request is the
        // client's to retry. Count it and move on.
        metrics_.AddFrameCorrupt();
        continue;
      }
      if (!handshaken) {
        bool reject_with_bye = true;
        bool ok = frame.type == FrameType::kHello;
        if (ok) {
          auto hello = DecodeHello(frame.payload);
          if (!hello.ok()) {
            // Garbage HELLO payload (line noise, a mangled frame): count
            // it and just cut the connection. A BYE here would be wrong —
            // the subscriber reads BYE-at-handshake as a semantic
            // rejection (wrong stream/schema) and gives up for good,
            // while a retried clean HELLO may well succeed.
            ok = false;
            reject_with_bye = false;
            metrics_.AddBadControlFrame();
          } else {
            ok = HandleHello(conn, hello.value(), frame).ok();
          }
        }
        if (!ok) {
          metrics_.AddHandshakeFailure();
          if (reject_with_bye) {
            Frame bye;
            bye.type = FrameType::kBye;
            auto bye_bytes = EncodeFrame(bye, kFrameVersion);
            if (bye_bytes.ok()) (void)SendRaw(conn, bye_bytes.value());
          }
          done = true;
          break;
        }
        handshaken = true;
        continue;
      }
      switch (frame.type) {
        case FrameType::kReplayFrom: {
          auto from = DecodeReplayFrom(frame.payload);
          if (!from.ok()) {
            // A well-framed, checksum-valid request whose payload doesn't
            // decode: count it and drop it. Killing the session would let
            // one buggy (or chaos-injected) control frame take down a
            // live subscriber; the framing itself survived, so the stream
            // stays parseable.
            metrics_.AddBadControlFrame();
            break;
          }
          ServeReplay(conn, from.value());
          break;
        }
        case FrameType::kRepeatRequest: {
          auto request = DecodeRepeatRequest(frame.payload);
          if (!request.ok()) {
            metrics_.AddBadControlFrame();
            break;
          }
          metrics_.AddRepeatRequestIn();
          ServeRepeat(conn, request.value());
          break;
        }
        case FrameType::kQuery:
          HandleQuery(conn, frame);
          break;
        case FrameType::kUnquery:
          HandleUnquery(conn, frame);
          break;
        case FrameType::kBye:
          done = true;
          break;
        default:
          break;  // HEARTBEAT and anything else: ignore
      }
      if (done) break;
    }
    if (done) break;
  }
  // Detach this connection's result sinks before it can be reaped. A
  // disconnect does not UNQUERY: the registration (and its result log)
  // stays for the subscriber's reconnect.
  if (opts_.query_channel != nullptr && !conn->query_subs.empty()) {
    opts_.query_channel->DropSink(conn);
  }
  std::lock_guard<std::mutex> lock(conn->mu);
  conn->closing = true;
  conn->reader_done = true;
  conn->sock.Shutdown();
  conn->cv_data.notify_all();
  conn->cv_space.notify_all();
}

Status FragmentServer::SendQueryStatus(Connection* conn,
                                       const QueryStatus& status) {
  bool peer_crc;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    peer_crc = conn->peer_crc;
  }
  Frame frame;
  frame.type = FrameType::kQueryStatus;
  frame.payload = EncodeQueryStatus(status);
  XCQL_ASSIGN_OR_RETURN(
      std::string bytes,
      EncodeFrame(frame, peer_crc ? kFrameVersionCrc : kFrameVersion));
  return SendRaw(conn, bytes);
}

void FragmentServer::HandleQuery(Connection* conn, const Frame& frame) {
  auto spec = DecodeQuery(frame.payload);
  if (!spec.ok()) {
    metrics_.AddBadControlFrame();
    return;
  }
  QueryStatus status;
  status.token = spec.value().token;
  if (!conn->peer_queries) {
    // The peer skipped negotiation (or no channel is attached): a clean
    // control-plane refusal, not a cut connection.
    status.code = kQueryStatusRejected;
    status.message = "query channel not negotiated on this connection";
    metrics_.AddQueryRejected();
    (void)SendQueryStatus(conn, status);
    return;
  }
  if (opts_.max_queries_per_conn > 0 &&
      static_cast<int>(conn->query_subs.size()) >= opts_.max_queries_per_conn) {
    status.code = kQueryStatusRejected;
    status.message = "connection query limit reached (" +
                     std::to_string(opts_.max_queries_per_conn) + ")";
    metrics_.AddQueryRejected();
    (void)SendQueryStatus(conn, status);
    return;
  }
  bool rejected_by_limit = false;
  auto id = opts_.query_channel->Register(spec.value(), &rejected_by_limit);
  if (!id.ok()) {
    status.code = rejected_by_limit ? kQueryStatusRejected
                                    : kQueryStatusInvalid;
    status.message = id.status().message();
    metrics_.AddQueryRejected();
    (void)SendQueryStatus(conn, status);
    return;
  }
  metrics_.AddQueryRegistered();
  status.query_id = id.value();
  status.code = kQueryStatusOk;
  // Ack before subscribing: the backlog replay enqueues RESULT frames the
  // writer may send immediately, and the subscriber needs the token→id
  // mapping before the first one lands.
  (void)SendQueryStatus(conn, status);
  const bool already =
      std::find(conn->query_subs.begin(), conn->query_subs.end(),
                id.value()) != conn->query_subs.end();
  if (already) return;  // duplicate QUERY within one session: ack only
  Status sub = opts_.query_channel->Subscribe(
      id.value(), spec.value().last_result_seq, conn,
      [this, conn](const std::string& bytes) { EnqueueEncoded(conn, bytes); });
  if (!sub.ok()) {
    // Raced a concurrent UNQUERY between Register and Subscribe: retract
    // the ok with an UnknownId status; the subscriber re-issues the QUERY.
    status.code = kQueryStatusUnknownId;
    status.message = sub.message();
    (void)SendQueryStatus(conn, status);
    return;
  }
  conn->query_subs.push_back(id.value());
}

void FragmentServer::HandleUnquery(Connection* conn, const Frame& frame) {
  auto id = DecodeUnquery(frame.payload);
  if (!id.ok()) {
    metrics_.AddBadControlFrame();
    return;
  }
  QueryStatus status;
  status.query_id = id.value();
  auto it = std::find(conn->query_subs.begin(), conn->query_subs.end(),
                      id.value());
  if (!conn->peer_queries || it == conn->query_subs.end()) {
    status.code = kQueryStatusUnknownId;
    status.message = "query not subscribed on this connection";
    (void)SendQueryStatus(conn, status);
    return;
  }
  conn->query_subs.erase(it);
  opts_.query_channel->Unsubscribe(id.value(), conn);
  (void)opts_.query_channel->Unregister(id.value());
  status.code = kQueryStatusOk;
  (void)SendQueryStatus(conn, status);
}

void FragmentServer::WriterLoop(Connection* conn) {
  for (;;) {
    std::string frame;
    bool heartbeat = false;
    bool peer_crc = false;
    {
      std::unique_lock<std::mutex> lock(conn->mu);
      conn->cv_data.wait_for(lock, opts_.heartbeat_interval, [&] {
        return !conn->queue.empty() || conn->closing;
      });
      peer_crc = conn->peer_crc;
      if (conn->queue.empty()) {
        if (conn->closing) break;
        if (!conn->live) continue;  // no heartbeats before the handshake
        heartbeat = true;
      } else {
        frame = std::move(conn->queue.front());
        conn->queue.pop_front();
        ++conn->sent;
        conn->cv_space.notify_one();
      }
    }
    // published_ instead of next_seq(): the writer must stay off log_mu_,
    // which a kBlock publisher may hold while waiting on this very writer.
    if (heartbeat) {
      auto hb = EncodeFrame(HeartbeatFrame(published_.load()),
                            peer_crc ? kFrameVersionCrc : kFrameVersion);
      if (!hb.ok()) continue;  // empty payload: cannot actually fail
      frame = std::move(hb).MoveValue();
    }
    if (!SendRaw(conn, frame).ok()) {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->closing = true;
      conn->sock.Shutdown();  // wake the reader
      conn->cv_space.notify_all();
    }
  }
  std::lock_guard<std::mutex> lock(conn->mu);
  conn->writer_done = true;
}

MetricsSnapshot FragmentServer::metrics() const {
  MetricsSnapshot s = metrics_.Snapshot();
  s.connections_active = active_connections();
  return s;
}

int FragmentServer::active_connections() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  int active = 0;
  for (const auto& conn : conns_) {
    std::lock_guard<std::mutex> conn_lock(conn->mu);
    if (!conn->closing) ++active;
  }
  return active;
}

std::vector<ConnectionStats> FragmentServer::connection_stats() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  std::vector<ConnectionStats> out;
  out.reserve(conns_.size());
  for (const auto& conn : conns_) {
    std::lock_guard<std::mutex> conn_lock(conn->mu);
    ConnectionStats stats;
    stats.enqueued = conn->enqueued;
    stats.sent = conn->sent;
    stats.dropped = conn->dropped;
    stats.queue_depth = static_cast<int64_t>(conn->queue.size());
    stats.live = conn->live;
    stats.closing = conn->closing;
    out.push_back(stats);
  }
  return out;
}

}  // namespace xcql::net
