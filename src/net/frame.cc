#include "net/frame.h"

#include <cstring>

#include "common/string_util.h"

namespace xcql::net {

namespace {

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint16_t GetU16(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint16_t>(u[0] | (u[1] << 8));
}

uint32_t GetU32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  for (int i = 7; i >= 0; --i) v = (v << 8) | u[i];
  return v;
}

bool ValidFrameType(uint8_t t) {
  return t >= static_cast<uint8_t>(FrameType::kHello) &&
         t <= static_cast<uint8_t>(FrameType::kBye);
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "HELLO";
    case FrameType::kFragment:
      return "FRAGMENT";
    case FrameType::kHeartbeat:
      return "HEARTBEAT";
    case FrameType::kReplayFrom:
      return "REPLAY_FROM";
    case FrameType::kBye:
      return "BYE";
  }
  return "?";
}

Result<std::string> EncodeFrame(const Frame& frame) {
  if (frame.payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument(StringPrintf(
        "frame payload of %llu bytes exceeds the %u-byte limit",
        static_cast<unsigned long long>(frame.payload.size()),
        kMaxFramePayload));
  }
  std::string out;
  out.reserve(kFrameHeaderSize + frame.payload.size());
  PutU32(&out, kFrameMagic);
  out.push_back(static_cast<char>(kFrameVersion));
  out.push_back(static_cast<char>(frame.type));
  out.push_back(static_cast<char>(frame.flags));
  out.push_back(0);  // reserved
  PutU64(&out, frame.seq);
  PutU32(&out, static_cast<uint32_t>(frame.payload.size()));
  out += frame.payload;
  return out;
}

void FrameReader::Feed(const char* data, size_t len) {
  // Compact before growing: the buffer never holds more than one partial
  // frame beyond what Next() has consumed.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > (64u << 10)) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, len);
}

Result<std::optional<Frame>> FrameReader::Next() {
  if (buffered() < kFrameHeaderSize) return std::optional<Frame>();
  const char* h = buf_.data() + pos_;
  if (GetU32(h) != kFrameMagic) {
    return Status::ParseError("bad frame magic (stream out of sync)");
  }
  uint8_t version = static_cast<uint8_t>(h[4]);
  if (version != kFrameVersion) {
    return Status::Unsupported(
        StringPrintf("frame version %u (expected %u)", version,
                     kFrameVersion));
  }
  uint8_t type = static_cast<uint8_t>(h[5]);
  if (!ValidFrameType(type)) {
    return Status::ParseError(StringPrintf("unknown frame type %u", type));
  }
  uint32_t len = GetU32(h + 16);
  if (len > kMaxFramePayload) {
    return Status::ParseError(
        StringPrintf("frame payload of %u bytes exceeds the %u limit", len,
                     kMaxFramePayload));
  }
  if (buffered() < kFrameHeaderSize + len) return std::optional<Frame>();
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.flags = static_cast<uint8_t>(h[6]);
  frame.seq = GetU64(h + 8);
  frame.payload.assign(h + kFrameHeaderSize, len);
  pos_ += kFrameHeaderSize + len;
  return std::optional<Frame>(std::move(frame));
}

std::string EncodeHello(const Hello& hello) {
  std::string out;
  out.push_back(static_cast<char>(hello.codec));
  PutU64(&out, hello.ts_hash);
  PutU16(&out, static_cast<uint16_t>(hello.stream_name.size()));
  out += hello.stream_name;
  out += hello.tag_structure_xml;
  return out;
}

Result<Hello> DecodeHello(std::string_view payload) {
  if (payload.size() < 11) {
    return Status::ParseError("HELLO payload truncated");
  }
  Hello hello;
  uint8_t codec = static_cast<uint8_t>(payload[0]);
  if (codec > static_cast<uint8_t>(frag::WireCodec::kTagCompressed)) {
    return Status::Unsupported(StringPrintf("unknown wire codec %u", codec));
  }
  hello.codec = static_cast<frag::WireCodec>(codec);
  hello.ts_hash = GetU64(payload.data() + 1);
  uint16_t name_len = GetU16(payload.data() + 9);
  if (payload.size() < 11u + name_len) {
    return Status::ParseError("HELLO stream name truncated");
  }
  hello.stream_name.assign(payload.data() + 11, name_len);
  hello.tag_structure_xml.assign(payload.begin() + 11 + name_len,
                                 payload.end());
  return hello;
}

std::string EncodeReplayFrom(int64_t last_seen_seq) {
  std::string out;
  PutU64(&out, static_cast<uint64_t>(last_seen_seq));
  return out;
}

Result<int64_t> DecodeReplayFrom(std::string_view payload) {
  if (payload.size() != 8) {
    return Status::ParseError("REPLAY_FROM payload must be 8 bytes");
  }
  return static_cast<int64_t>(GetU64(payload.data()));
}

uint64_t TagStructureHash(std::string_view ts_xml) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a 64
  for (unsigned char c : ts_xml) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  // 0 means "unknown" in HELLO; remap the (astronomically unlikely) zero.
  return h == 0 ? 1 : h;
}

uint64_t TagStructureHash(const frag::TagStructure& ts) {
  return TagStructureHash(ts.ToXml());
}

}  // namespace xcql::net
