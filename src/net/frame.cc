#include "net/frame.h"

#include <array>
#include <cstring>

#include "common/string_util.h"

namespace xcql::net {

namespace {

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint16_t GetU16(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint16_t>(u[0] | (u[1] << 8));
}

uint32_t GetU32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  for (int i = 7; i >= 0; --i) v = (v << 8) | u[i];
  return v;
}

bool ValidFrameType(uint8_t t) {
  return t >= static_cast<uint8_t>(FrameType::kHello) &&
         t <= static_cast<uint8_t>(FrameType::kExpired);
}

// CRC32C (Castagnoli, reflected polynomial 0x82F63B78), byte-at-a-time
// table. Software only: the transport is loopback/LAN scale and the
// payloads dominate hashing cost anyway.
const std::array<uint32_t, 256>& Crc32cTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (c >> 1) ^ 0x82F63B78u : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

// Unconditioned state update (caller applies the ~ at both ends).
uint32_t Crc32cRaw(uint32_t crc, const char* data, size_t len) {
  const auto& table = Crc32cTable();
  const auto* p = reinterpret_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc;
}

// The frame checksum: CRC32C over header bytes [4, 20) (version through
// length — magic is the resync marker and excluded) followed by the
// payload.
uint32_t FrameCrc(const char* header, const char* payload,
                  size_t payload_len) {
  uint32_t crc = 0xFFFFFFFFu;
  crc = Crc32cRaw(crc, header + 4, kFrameHeaderSize - 4);
  crc = Crc32cRaw(crc, payload, payload_len);
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace

uint32_t Crc32c(std::string_view data) {
  return Crc32cRaw(0xFFFFFFFFu, data.data(), data.size()) ^ 0xFFFFFFFFu;
}

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "HELLO";
    case FrameType::kFragment:
      return "FRAGMENT";
    case FrameType::kHeartbeat:
      return "HEARTBEAT";
    case FrameType::kReplayFrom:
      return "REPLAY_FROM";
    case FrameType::kBye:
      return "BYE";
    case FrameType::kRepeatRequest:
      return "REPEAT_REQUEST";
    case FrameType::kQuery:
      return "QUERY";
    case FrameType::kUnquery:
      return "UNQUERY";
    case FrameType::kResult:
      return "RESULT";
    case FrameType::kQueryStatus:
      return "QUERY_STATUS";
    case FrameType::kSkipTo:
      return "SKIP_TO";
    case FrameType::kSubscribe:
      return "SUBSCRIBE";
    case FrameType::kExpired:
      return "EXPIRED";
  }
  return "?";
}

Result<std::string> EncodeFrame(const Frame& frame, uint8_t version) {
  if (frame.payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument(StringPrintf(
        "frame payload of %llu bytes exceeds the %u-byte limit",
        static_cast<unsigned long long>(frame.payload.size()),
        kMaxFramePayload));
  }
  if (version != kFrameVersion && version != kFrameVersionCrc) {
    return Status::InvalidArgument(
        StringPrintf("cannot encode frame version %u", version));
  }
  std::string out;
  size_t header = version == kFrameVersionCrc ? kFrameHeaderSizeCrc
                                              : kFrameHeaderSize;
  out.reserve(header + frame.payload.size());
  PutU32(&out, kFrameMagic);
  out.push_back(static_cast<char>(version));
  out.push_back(static_cast<char>(frame.type));
  out.push_back(static_cast<char>(frame.flags));
  out.push_back(0);  // reserved
  PutU64(&out, frame.seq);
  PutU32(&out, static_cast<uint32_t>(frame.payload.size()));
  if (version == kFrameVersionCrc) {
    PutU32(&out, FrameCrc(out.data(), frame.payload.data(),
                          frame.payload.size()));
  }
  out += frame.payload;
  return out;
}

std::string DowngradeFrameToV1(std::string_view frame_bytes) {
  if (frame_bytes.size() < kFrameHeaderSizeCrc ||
      static_cast<uint8_t>(frame_bytes[4]) != kFrameVersionCrc) {
    return std::string(frame_bytes);
  }
  std::string out;
  out.reserve(frame_bytes.size() - 4);
  out.append(frame_bytes.data(), kFrameHeaderSize);  // header sans crc
  out[4] = static_cast<char>(kFrameVersion);
  out.append(frame_bytes.data() + kFrameHeaderSizeCrc,
             frame_bytes.size() - kFrameHeaderSizeCrc);
  return out;
}

std::string WithRepeatFlag(std::string frame_bytes) {
  if (frame_bytes.size() < kFrameHeaderSize) return frame_bytes;
  frame_bytes[6] = static_cast<char>(static_cast<uint8_t>(frame_bytes[6]) |
                                     kFlagRepeat);
  if (static_cast<uint8_t>(frame_bytes[4]) == kFrameVersionCrc &&
      frame_bytes.size() >= kFrameHeaderSizeCrc) {
    uint32_t crc = FrameCrc(frame_bytes.data(),
                            frame_bytes.data() + kFrameHeaderSizeCrc,
                            frame_bytes.size() - kFrameHeaderSizeCrc);
    for (int i = 0; i < 4; ++i) {
      frame_bytes[kFrameHeaderSize + i] =
          static_cast<char>((crc >> (8 * i)) & 0xff);
    }
  }
  return frame_bytes;
}

void FrameReader::Feed(const char* data, size_t len) {
  // Compact before growing: the buffer never holds more than one partial
  // frame beyond what Next() has consumed.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > (64u << 10)) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, len);
}

Result<std::optional<Frame>> FrameReader::Next() {
  if (buffered() < kFrameHeaderSize) return std::optional<Frame>();
  const char* h = buf_.data() + pos_;
  if (GetU32(h) != kFrameMagic) {
    return Status::ParseError("bad frame magic (stream out of sync)");
  }
  uint8_t version = static_cast<uint8_t>(h[4]);
  if (version != kFrameVersion && version != kFrameVersionCrc) {
    return Status::Unsupported(
        StringPrintf("frame version %u (expected %u or %u)", version,
                     kFrameVersion, kFrameVersionCrc));
  }
  size_t header = version == kFrameVersionCrc ? kFrameHeaderSizeCrc
                                              : kFrameHeaderSize;
  if (buffered() < header) return std::optional<Frame>();
  uint32_t len = GetU32(h + 16);
  if (len > kMaxFramePayload) {
    return Status::ParseError(
        StringPrintf("frame payload of %u bytes exceeds the %u limit", len,
                     kMaxFramePayload));
  }
  if (buffered() < header + len) return std::optional<Frame>();
  if (version == kFrameVersionCrc) {
    uint32_t want = GetU32(h + kFrameHeaderSize);
    uint32_t got = FrameCrc(h, h + header, len);
    if (want != got) {
      // The framing held up (magic + plausible length) but the contents
      // did not: skip the frame and report it as corrupt instead of
      // killing the stream — the caller decides how to recover.
      Frame frame;
      frame.crc_ok = false;
      frame.wire_version = version;
      frame.type = FrameType::kHeartbeat;  // placeholder, untrusted
      frame.flags = 0;
      frame.seq = GetU64(h + 8);  // untrusted, for logging only
      pos_ += header + len;
      return std::optional<Frame>(std::move(frame));
    }
  }
  uint8_t type = static_cast<uint8_t>(h[5]);
  if (!ValidFrameType(type)) {
    return Status::ParseError(StringPrintf("unknown frame type %u", type));
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.flags = static_cast<uint8_t>(h[6]);
  frame.seq = GetU64(h + 8);
  frame.wire_version = version;
  frame.payload.assign(h + header, len);
  pos_ += header + len;
  return std::optional<Frame>(std::move(frame));
}

std::string EncodeHello(const Hello& hello) {
  std::string out;
  out.push_back(static_cast<char>(hello.codec));
  PutU64(&out, hello.ts_hash);
  PutU16(&out, static_cast<uint16_t>(hello.stream_name.size()));
  out += hello.stream_name;
  out += hello.tag_structure_xml;
  return out;
}

Result<Hello> DecodeHello(std::string_view payload) {
  if (payload.size() < 11) {
    return Status::ParseError("HELLO payload truncated");
  }
  Hello hello;
  uint8_t codec = static_cast<uint8_t>(payload[0]);
  if (codec > static_cast<uint8_t>(frag::WireCodec::kTagCompressed)) {
    return Status::Unsupported(StringPrintf("unknown wire codec %u", codec));
  }
  hello.codec = static_cast<frag::WireCodec>(codec);
  hello.ts_hash = GetU64(payload.data() + 1);
  uint16_t name_len = GetU16(payload.data() + 9);
  if (payload.size() < 11u + name_len) {
    return Status::ParseError("HELLO stream name truncated");
  }
  hello.stream_name.assign(payload.data() + 11, name_len);
  hello.tag_structure_xml.assign(payload.begin() + 11 + name_len,
                                 payload.end());
  return hello;
}

std::string EncodeReplayFrom(int64_t last_seen_seq) {
  std::string out;
  PutU64(&out, static_cast<uint64_t>(last_seen_seq));
  return out;
}

Result<int64_t> DecodeReplayFrom(std::string_view payload) {
  if (payload.size() != 8) {
    return Status::ParseError("REPLAY_FROM payload must be 8 bytes");
  }
  return static_cast<int64_t>(GetU64(payload.data()));
}

std::string EncodeRepeatRequest(const RepeatRequest& request) {
  std::string out;
  PutU64(&out, static_cast<uint64_t>(request.filler_id));
  if (!request.have_valid_times.empty()) {
    PutU32(&out,
           static_cast<uint32_t>(request.have_valid_times.size()));
    for (int64_t t : request.have_valid_times) {
      PutU64(&out, static_cast<uint64_t>(t));
    }
  }
  return out;
}

std::string EncodeRepeatRequest(int64_t filler_id) {
  RepeatRequest request;
  request.filler_id = filler_id;
  return EncodeRepeatRequest(request);
}

Result<RepeatRequest> DecodeRepeatRequest(std::string_view payload) {
  RepeatRequest request;
  if (payload.size() < 8) {
    return Status::ParseError("REPEAT_REQUEST payload must be >= 8 bytes");
  }
  request.filler_id = static_cast<int64_t>(GetU64(payload.data()));
  if (payload.size() == 8) return request;  // pre-versioned form
  if (payload.size() < 12) {
    return Status::ParseError("REPEAT_REQUEST version count truncated");
  }
  uint32_t count = GetU32(payload.data() + 8);
  if (payload.size() != 12u + 8ull * count) {
    return Status::ParseError(StringPrintf(
        "REPEAT_REQUEST promises %u validTimes but carries %zu bytes",
        count, payload.size()));
  }
  request.have_valid_times.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    request.have_valid_times.push_back(
        static_cast<int64_t>(GetU64(payload.data() + 12 + 8ull * i)));
  }
  return request;
}

std::string EncodeSubscribe(const std::vector<int>& tsids) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(tsids.size()));
  for (int id : tsids) PutU32(&out, static_cast<uint32_t>(id));
  return out;
}

Result<std::vector<int>> DecodeSubscribe(std::string_view payload) {
  if (payload.size() < 4) {
    return Status::ParseError("SUBSCRIBE payload truncated");
  }
  uint32_t count = GetU32(payload.data());
  if (payload.size() != 4u + 4ull * count) {
    return Status::ParseError(StringPrintf(
        "SUBSCRIBE promises %u tsids but carries %zu bytes", count,
        payload.size()));
  }
  std::vector<int> tsids;
  tsids.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    tsids.push_back(static_cast<int>(GetU32(payload.data() + 4 + 4ull * i)));
  }
  return tsids;
}

std::string EncodeSkipTo(int64_t first_skipped_seq) {
  std::string out;
  PutU64(&out, static_cast<uint64_t>(first_skipped_seq));
  return out;
}

Result<int64_t> DecodeSkipTo(std::string_view payload) {
  if (payload.size() != 8) {
    return Status::ParseError("SKIP_TO payload must be 8 bytes");
  }
  return static_cast<int64_t>(GetU64(payload.data()));
}

std::string EncodeQuery(const RemoteQuerySpec& spec) {
  std::string out;
  PutU32(&out, spec.token);
  out.push_back(static_cast<char>(spec.method));
  out.push_back(static_cast<char>(spec.hole_policy));
  out.push_back(static_cast<char>(spec.tick_policy));
  out.push_back(static_cast<char>(spec.flags));
  PutU64(&out, static_cast<uint64_t>(spec.last_result_seq));
  out += spec.text;
  return out;
}

Result<RemoteQuerySpec> DecodeQuery(std::string_view payload) {
  // 4 (token) + 4 (option bytes) + 8 (resume seq); the text may be empty
  // on the wire (the channel rejects it with a status, not a parse error).
  if (payload.size() < 16) {
    return Status::ParseError("QUERY payload truncated");
  }
  RemoteQuerySpec spec;
  spec.token = GetU32(payload.data());
  spec.method = static_cast<uint8_t>(payload[4]);
  spec.hole_policy = static_cast<uint8_t>(payload[5]);
  spec.tick_policy = static_cast<uint8_t>(payload[6]);
  spec.flags = static_cast<uint8_t>(payload[7]);
  spec.last_result_seq = static_cast<int64_t>(GetU64(payload.data() + 8));
  spec.text.assign(payload.begin() + 16, payload.end());
  return spec;
}

std::string EncodeUnquery(uint64_t query_id) {
  std::string out;
  PutU64(&out, query_id);
  return out;
}

Result<uint64_t> DecodeUnquery(std::string_view payload) {
  if (payload.size() != 8) {
    return Status::ParseError("UNQUERY payload must be 8 bytes");
  }
  return GetU64(payload.data());
}

std::string EncodeQueryStatus(const QueryStatus& status) {
  std::string out;
  PutU32(&out, status.token);
  PutU64(&out, status.query_id);
  PutU32(&out, status.code);
  out += status.message;
  return out;
}

Result<QueryStatus> DecodeQueryStatus(std::string_view payload) {
  if (payload.size() < 16) {
    return Status::ParseError("QUERY_STATUS payload truncated");
  }
  QueryStatus status;
  status.token = GetU32(payload.data());
  status.query_id = GetU64(payload.data() + 4);
  status.code = GetU32(payload.data() + 12);
  status.message.assign(payload.begin() + 16, payload.end());
  return status;
}

Result<std::string> EncodeResultDelta(const ResultDelta& delta) {
  std::string out;
  PutU64(&out, delta.query_id);
  PutU64(&out, static_cast<uint64_t>(delta.eval_time_s));
  PutU32(&out, static_cast<uint32_t>(delta.added.size()));
  PutU32(&out, static_cast<uint32_t>(delta.removed.size()));
  for (const auto* items : {&delta.added, &delta.removed}) {
    for (const std::string& item : *items) {
      PutU32(&out, static_cast<uint32_t>(item.size()));
      out += item;
      if (out.size() > kMaxFramePayload) {
        return Status::InvalidArgument(StringPrintf(
            "RESULT delta for query %llu exceeds the %u-byte frame limit",
            static_cast<unsigned long long>(delta.query_id),
            kMaxFramePayload));
      }
    }
  }
  return out;
}

Result<ResultDelta> DecodeResultDelta(std::string_view payload) {
  if (payload.size() < 24) {
    return Status::ParseError("RESULT payload truncated");
  }
  ResultDelta delta;
  delta.query_id = GetU64(payload.data());
  delta.eval_time_s = static_cast<int64_t>(GetU64(payload.data() + 8));
  uint32_t added = GetU32(payload.data() + 16);
  uint32_t removed = GetU32(payload.data() + 20);
  size_t pos = 24;
  auto read_items = [&](uint32_t count,
                        std::vector<std::string>* out) -> Status {
    out->reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      if (payload.size() - pos < 4) {
        return Status::ParseError("RESULT item length truncated");
      }
      uint32_t len = GetU32(payload.data() + pos);
      pos += 4;
      if (payload.size() - pos < len) {
        return Status::ParseError("RESULT item body truncated");
      }
      out->emplace_back(payload.substr(pos, len));
      pos += len;
    }
    return Status::OK();
  };
  // Item counts are bounded by the remaining bytes (each item costs at
  // least its 4-byte length prefix), so a forged count fails fast here
  // instead of driving a giant reserve().
  if ((static_cast<uint64_t>(added) + removed) * 4 > payload.size() - pos) {
    return Status::ParseError(StringPrintf(
        "RESULT promises %u items in %zu bytes", added + removed,
        payload.size() - pos));
  }
  Status s = read_items(added, &delta.added);
  if (!s.ok()) return s;
  s = read_items(removed, &delta.removed);
  if (!s.ok()) return s;
  if (pos != payload.size()) {
    return Status::ParseError("RESULT payload has trailing bytes");
  }
  return delta;
}

std::string EncodeExpired(const Expired& expired) {
  std::string out;
  out.push_back(static_cast<char>(expired.kind));
  switch (expired.kind) {
    case Expired::kRange:
      PutU64(&out, static_cast<uint64_t>(expired.first_seq));
      break;
    case Expired::kFiller:
      PutU64(&out, static_cast<uint64_t>(expired.filler_id));
      break;
    case Expired::kResultRange:
      PutU64(&out, expired.query_id);
      PutU64(&out, static_cast<uint64_t>(expired.first_seq));
      break;
  }
  return out;
}

Result<Expired> DecodeExpired(std::string_view payload) {
  if (payload.empty()) {
    return Status::ParseError("EXPIRED payload truncated");
  }
  Expired expired;
  uint8_t kind = static_cast<uint8_t>(payload[0]);
  switch (kind) {
    case Expired::kRange:
      if (payload.size() != 9) {
        return Status::ParseError("EXPIRED range payload must be 9 bytes");
      }
      expired.kind = Expired::kRange;
      expired.first_seq = static_cast<int64_t>(GetU64(payload.data() + 1));
      return expired;
    case Expired::kFiller:
      if (payload.size() != 9) {
        return Status::ParseError("EXPIRED filler payload must be 9 bytes");
      }
      expired.kind = Expired::kFiller;
      expired.filler_id = static_cast<int64_t>(GetU64(payload.data() + 1));
      return expired;
    case Expired::kResultRange:
      if (payload.size() != 17) {
        return Status::ParseError("EXPIRED result payload must be 17 bytes");
      }
      expired.kind = Expired::kResultRange;
      expired.query_id = GetU64(payload.data() + 1);
      expired.first_seq = static_cast<int64_t>(GetU64(payload.data() + 9));
      return expired;
    default:
      return Status::ParseError(
          StringPrintf("unknown EXPIRED kind %u", kind));
  }
}

uint64_t TagStructureHash(std::string_view ts_xml) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a 64
  for (unsigned char c : ts_xml) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  // 0 means "unknown" in HELLO; remap the (astronomically unlikely) zero.
  return h == 0 ? 1 : h;
}

uint64_t TagStructureHash(const frag::TagStructure& ts) {
  return TagStructureHash(ts.ToXml());
}

}  // namespace xcql::net
