// net::ChaosLink — a deterministic fault-injection TCP proxy between a
// FragmentSubscriber and a FragmentServer.
//
// The link listens on its own port and relays each accepted connection to
// the upstream server. Client→server bytes pass through untouched by
// default (the control channel: HELLO, REPLAY_FROM, NACKs); with
// fault_control set, that direction is also pumped frame-aware and each
// control frame rolls against the corrupt probability. Server→client
// traffic is re-framed on XFRM boundaries and each FRAGMENT frame (plus,
// optionally, each HEARTBEAT) rolls against the configured fault
// probabilities:
//
//   drop       the frame never arrives
//   duplicate  the frame arrives twice
//   reorder    the frame is held back and delivered after its successor
//   corrupt    1–3 payload bits flip (v2 frames only — the checksum is
//              what detects this; flipping v1 bytes would inject silent
//              garbage the protocol cannot see)
//   truncate   a prefix of the frame is sent and the connection is cut
//              mid-frame (the half-dead-link case)
//
// Faults draw from a seeded xcql::Random (seed + connection index), so a
// given seed replays the same fault schedule per connection. Control
// frames (HELLO, BYE, REPLAY_FROM) always pass clean: the chaos link
// attacks the data plane, not the handshake.
//
// Used by tests/net_test.cc (chaos soak), bench_transport --chaos, and
// the xcql_serve/xcql_tail --fault-* flags. See docs/ROBUSTNESS.md.
#ifndef XCQL_NET_CHAOS_H_
#define XCQL_NET_CHAOS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "net/socket.h"

namespace xcql::net {

/// \brief Per-frame fault probabilities (independent draws; at most one
/// fault fires per frame, checked in the order below).
struct ChaosFaults {
  double drop = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  double corrupt = 0.0;
  double truncate = 0.0;
  /// Corruption probability for client→server control frames (only with
  /// fault_control; independent of `corrupt` so the control plane can be
  /// attacked while the data plane stays clean, and vice versa).
  double control_corrupt = 0.0;
  /// Extra latency before each forwarded frame (0 = none).
  std::chrono::milliseconds delay{0};
};

struct ChaosLinkOptions {
  uint16_t listen_port = 0;  // 0 = ephemeral, read back with port()
  std::string upstream_host = "127.0.0.1";
  uint16_t upstream_port = 0;
  uint64_t seed = 1;
  ChaosFaults faults;
  /// Also roll faults for HEARTBEAT frames (default: only FRAGMENTs, so
  /// the liveness/loss-detector channel stays reliable unless a test
  /// wants it attacked too).
  bool fault_heartbeats = false;
  /// Also attack the client→server control channel: the up direction is
  /// pumped frame-aware and each control frame (HELLO, REPLAY_FROM,
  /// REPEAT_REQUEST, BYE) rolls against `faults.control_corrupt`, flipping
  /// 1–3 payload bits. The server must count-and-drop the mangled request
  /// (frames_corrupt / bad_control_frames / handshake_failures) and the
  /// subscriber's retry + catch-up machinery must still converge. Only
  /// corruption applies: dropping or truncating control frames models a
  /// different failure (dead link) that the downstream faults already
  /// cover.
  bool fault_control = false;
};

struct ChaosStats {
  int64_t connections = 0;
  int64_t frames = 0;  // downstream frames seen (faulted or not)
  int64_t dropped = 0;
  int64_t duplicated = 0;
  int64_t reordered = 0;
  int64_t corrupted = 0;
  int64_t truncated = 0;
  int64_t control_frames = 0;     // upstream frames seen (fault_control)
  int64_t control_corrupted = 0;  // upstream frames mangled
};

class ChaosLink {
 public:
  explicit ChaosLink(ChaosLinkOptions options);
  ~ChaosLink();

  ChaosLink(const ChaosLink&) = delete;
  ChaosLink& operator=(const ChaosLink&) = delete;

  /// \brief Binds the listen port and starts proxying. Fails if the
  /// upstream port is unset.
  Status Start();

  /// \brief Closes every proxied connection and joins all threads.
  /// Idempotent.
  void Stop();

  /// \brief The port subscribers should dial (after Start()).
  uint16_t port() const { return port_; }

  ChaosStats stats() const;

 private:
  struct Conn {
    Socket client;
    Socket upstream;
    std::thread up;    // client → upstream, passthrough
    std::thread down;  // upstream → client, frame-aware faults
    std::atomic<bool> up_done{false};
    std::atomic<bool> down_done{false};
  };

  void AcceptLoop();
  void UpLoop(Conn* conn, uint64_t conn_seed);
  void DownLoop(Conn* conn, uint64_t conn_seed);
  /// Pumps src→dst re-framing on XFRM boundaries, calling `forward` for
  /// each complete frame; falls back to raw passthrough when framing is
  /// lost. `forward` returns false to kill the connection.
  void PumpFramed(Socket* src, Socket* dst,
                  const std::function<bool(std::string&&)>& forward);
  /// Applies one fault roll to `frame` and forwards it (and/or the held
  /// reordered frame). Returns false when the connection must die
  /// (truncation fired or a send failed).
  bool ForwardFrame(Conn* conn, std::string frame, Random* rng,
                    std::string* held);
  /// fault_control: rolls `faults.corrupt` against a client→server
  /// control frame and relays it upstream.
  bool ForwardControlFrame(Conn* conn, std::string frame, Random* rng);
  bool SendToClient(Conn* conn, const std::string& bytes);

  ChaosLinkOptions opts_;
  uint16_t port_ = 0;
  bool started_ = false;
  Socket listener_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  uint64_t next_conn_index_ = 0;  // accept thread only

  mutable std::mutex conns_mu_;
  std::vector<std::unique_ptr<Conn>> conns_;

  std::atomic<int64_t> connections_{0}, frames_{0}, dropped_{0},
      duplicated_{0}, reordered_{0}, corrupted_{0}, truncated_{0},
      control_frames_{0}, control_corrupted_{0};
};

}  // namespace xcql::net

#endif  // XCQL_NET_CHAOS_H_
