#include "net/query_channel.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/file_util.h"
#include "common/io_env.h"
#include "common/string_util.h"
#include "net/wal.h"
#include "xcql/executor.h"

namespace xcql::net {

namespace {

Status ErrnoStatus(const char* what, const std::string& path) {
  return Status::Internal(StringPrintf("%s(%s) failed: %s", what,
                                       path.c_str(), std::strerror(errno)));
}

constexpr uint8_t kKnownQueryFlags =
    kQueryFlagPaperFaithful | kQueryFlagIndexedFillers | kQueryFlagNoDedup |
    kQueryFlagTrackRemovals;

}  // namespace

QueryChannel::QueryChannel(std::string stream_name, frag::TagStructure ts,
                           QueryChannelOptions options)
    : stream_name_(std::move(stream_name)),
      opts_(std::move(options)),
      engine_(&hub_, &clock_) {
  auto store = hub_.AddLocalStream(stream_name_, std::move(ts));
  if (store.ok()) store_ = store.value();  // fresh hub: cannot collide
  if (opts_.engine_workers >= 0) engine_.set_workers(opts_.engine_workers);
}

QueryChannel::~QueryChannel() {
  if (registry_fd_ >= 0) IoEnv::Get()->Close(registry_fd_);
}

std::string QueryChannel::CanonicalKey(const RemoteQuerySpec& spec) {
  std::string key = spec.text;
  key.push_back('\0');
  key.push_back(static_cast<char>(spec.method));
  key.push_back(static_cast<char>(spec.hole_policy));
  key.push_back(static_cast<char>(spec.tick_policy));
  key.push_back(static_cast<char>(spec.flags));
  return key;
}

Status QueryChannel::ValidateSpec(const RemoteQuerySpec& spec) {
  if (spec.text.empty()) {
    return Status::InvalidArgument("QUERY carries no XCQL text");
  }
  if (spec.method > static_cast<uint8_t>(lang::ExecMethod::kQaCPlus)) {
    return Status::InvalidArgument(
        StringPrintf("unknown exec method %u", spec.method));
  }
  if (spec.hole_policy > static_cast<uint8_t>(xq::HolePolicy::kKeepHole)) {
    return Status::InvalidArgument(
        StringPrintf("unknown hole policy %u", spec.hole_policy));
  }
  if (spec.tick_policy >
      static_cast<uint8_t>(stream::TickPolicy::kDataDriven)) {
    return Status::InvalidArgument(
        StringPrintf("unknown tick policy %u", spec.tick_policy));
  }
  if ((spec.flags & ~kKnownQueryFlags) != 0) {
    return Status::InvalidArgument(
        StringPrintf("unknown QUERY flag bits 0x%02x",
                     spec.flags & ~kKnownQueryFlags));
  }
  if ((spec.flags & kQueryFlagPaperFaithful) &&
      (spec.flags & kQueryFlagIndexedFillers)) {
    return Status::InvalidArgument(
        "QUERY sets both the paper-faithful and indexed filler-lookup bits");
  }
  return Status::OK();
}

stream::ContinuousQueryOptions QueryChannel::ToEngineOptions(
    const RemoteQuerySpec& spec) {
  stream::ContinuousQueryOptions opts;
  opts.method = static_cast<lang::ExecMethod>(spec.method);
  opts.hole_policy = static_cast<xq::HolePolicy>(spec.hole_policy);
  opts.tick_policy = static_cast<stream::TickPolicy>(spec.tick_policy);
  opts.dedup = (spec.flags & kQueryFlagNoDedup) == 0;
  opts.track_removals = (spec.flags & kQueryFlagTrackRemovals) != 0;
  if (spec.flags & kQueryFlagPaperFaithful) {
    opts.linear_get_fillers = true;
  } else if (spec.flags & kQueryFlagIndexedFillers) {
    opts.linear_get_fillers = false;
  }
  return opts;
}

Status QueryChannel::Open() {
  std::lock_guard<std::mutex> lock(mu_);
  if (opts_.registry_path.empty()) return Status::OK();
  // Replay whatever a previous incarnation persisted. A torn final record
  // (crash between write and fsync) is truncated away — the client that
  // sent it never got an ack and will re-register on reconnect.
  struct stat st;
  if (::stat(opts_.registry_path.c_str(), &st) == 0 && st.st_size > 0) {
    XCQL_ASSIGN_OR_RETURN(std::string bytes,
                          ReadFileToString(opts_.registry_path));
    FrameReader reader;
    reader.Feed(bytes.data(), bytes.size());
    size_t valid = 0;
    for (;;) {
      auto next = reader.Next();
      if (!next.ok() || !next.value().has_value()) break;
      const Frame& frame = *next.value();
      valid = bytes.size() - reader.buffered();
      if (!frame.crc_ok) {
        // A registry record is written in one append; a failed checksum
        // can only be an unflushed tail. Stop replay here and truncate.
        valid -= (frame.wire_version == kFrameVersionCrc
                      ? kFrameHeaderSizeCrc
                      : kFrameHeaderSize) +
                 frame.payload.size();
        break;
      }
      if (frame.type == FrameType::kQuery) {
        auto spec = DecodeQuery(frame.payload);
        if (!spec.ok()) continue;  // unreadable record: skip, keep going
        const uint64_t id = frame.seq;
        QueryState state;
        state.spec = spec.value();
        state.register_pos = state.spec.last_result_seq;  // repurposed slot
        state.spec.token = 0;
        state.spec.last_result_seq = 0;
        pending_[id] = std::move(state);
        if (id >= next_id_) next_id_ = id + 1;
        ++recovered_queries_;
      } else if (frame.type == FrameType::kUnquery) {
        auto id = DecodeUnquery(frame.payload);
        if (id.ok()) pending_.erase(id.value());
      }
    }
    if (valid < bytes.size()) {
      std::fprintf(stderr,
                   "queryreg: truncating %zu torn byte(s) at the tail of "
                   "%s\n",
                   bytes.size() - valid, opts_.registry_path.c_str());
      if (IoEnv::Get()->Truncate(opts_.registry_path.c_str(),
                                 static_cast<off_t>(valid)) != 0) {
        return ErrnoStatus("truncate", opts_.registry_path);
      }
    }
    registry_bytes_ = static_cast<int64_t>(valid);
  }
  registry_fd_ = IoEnv::Get()->Open(opts_.registry_path.c_str(),
                                    O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (registry_fd_ < 0) return ErrnoStatus("open", opts_.registry_path);
  // Registrations made when the log was empty are live immediately; the
  // rest re-attach as the server's history feed reaches their position.
  ActivatePendingLocked();
  return Status::OK();
}

Status QueryChannel::PersistLocked(FrameType type, const std::string& payload,
                                   uint64_t id) {
  if (registry_fd_ < 0) return Status::OK();
  if (registry_broken_) {
    return Status::Internal("query registry is broken (an earlier append "
                            "failed and could not be repaired); restart to "
                            "recover");
  }
  Frame frame;
  frame.type = type;
  frame.seq = id;
  frame.payload = payload;
  XCQL_ASSIGN_OR_RETURN(std::string bytes, EncodeFrame(frame));
  WalHooks::At("queryreg:before_write");
  IoEnv* io = IoEnv::Get();
  Status st = Status::OK();
  bool fsync_failed = false;
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n =
        io->Write(registry_fd_, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      st = ErrnoStatus("write", opts_.registry_path);
      break;
    }
    off += static_cast<size_t>(n);
  }
  if (st.ok()) {
    if (io->Fsync(registry_fd_) != 0) {
      st = ErrnoStatus("fsync", opts_.registry_path);
      fsync_failed = true;
    }
  }
  if (st.ok()) {
    registry_bytes_ += static_cast<int64_t>(bytes.size());
    WalHooks::At("queryreg:after_write");
    return Status::OK();
  }
  // Repair: cut the file back to the last record boundary so a later
  // successful append cannot bury this torn record mid-file (Open()'s
  // torn-tail truncation only heals the final record). After a FAILED
  // FSYNC the descriptor may hold pages the kernel already dropped, so it
  // is closed and never fsync'd again (fsyncgate); the truncate below goes
  // through the path, and the registry continues on a fresh descriptor.
  if (fsync_failed) {
    io->Close(registry_fd_);
    registry_fd_ = -1;
  }
  bool repaired =
      io->Truncate(opts_.registry_path.c_str(),
                   static_cast<off_t>(registry_bytes_)) == 0;
  if (repaired && registry_fd_ < 0) {
    registry_fd_ = io->Open(opts_.registry_path.c_str(),
                            O_CREAT | O_WRONLY | O_APPEND, 0644);
    repaired = registry_fd_ >= 0;
  }
  if (!repaired) {
    registry_broken_ = true;
    std::fprintf(stderr,
                 "queryreg: append failed AND the partial record could not "
                 "be truncated away; registry %s is now read-only until "
                 "restart (%s)\n",
                 opts_.registry_path.c_str(), st.message().c_str());
  }
  return st;
}

Result<uint64_t> QueryChannel::AdmitLocked(const RemoteQuerySpec& spec,
                                           int64_t register_pos,
                                           uint64_t forced_id, bool persist,
                                           bool* rejected_by_limit) {
  if (opts_.max_queries > 0 &&
      static_cast<int>(queries_.size() + pending_.size()) >=
          opts_.max_queries) {
    if (rejected_by_limit != nullptr) *rejected_by_limit = true;
    return Status::InvalidArgument(StringPrintf(
        "query limit reached (%d registered)", opts_.max_queries));
  }
  const uint64_t id = forced_id != 0 ? forced_id : next_id_++;
  if (forced_id != 0 && forced_id >= next_id_) next_id_ = forced_id + 1;
  QueryState state;
  state.spec = spec;
  state.spec.token = 0;
  state.spec.last_result_seq = 0;
  state.register_pos = register_pos;
  auto engine_id = engine_.RegisterDelta(
      state.spec.text,
      [this, id](const xq::Sequence& added,
                 const std::vector<std::string>& removed, DateTime at) {
        EmitDelta(id, added, removed, at);
      },
      ToEngineOptions(state.spec));
  if (!engine_id.ok()) return engine_id.status();
  state.engine_id = engine_id.value();
  if (persist) {
    // The persisted record carries the registration position in the
    // resume-seq slot, so recovery re-attaches the query at the same
    // point of the fragment log and its result seqs line up.
    RemoteQuerySpec record = state.spec;
    record.last_result_seq = register_pos;
    Status st = PersistLocked(FrameType::kQuery, EncodeQuery(record), id);
    if (!st.ok()) {
      (void)engine_.Unregister(state.engine_id);
      return st;
    }
  }
  by_key_[CanonicalKey(state.spec)] = id;
  queries_[id] = std::move(state);
  return id;
}

void QueryChannel::ActivatePendingLocked() {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.register_pos > fragments_fed_) {
      ++it;
      continue;
    }
    const uint64_t id = it->first;
    QueryState state = std::move(it->second);
    it = pending_.erase(it);
    auto admitted = AdmitLocked(state.spec, state.register_pos, id,
                                /*persist=*/false, nullptr);
    if (!admitted.ok()) {
      // The environment no longer compiles this query (schema drift);
      // drop it rather than wedge recovery. The registry record stays —
      // harmless, and a fixed environment revives it next restart.
      std::fprintf(stderr, "queryreg: dropping recovered query %llu: %s\n",
                   static_cast<unsigned long long>(id),
                   admitted.status().message().c_str());
    }
  }
}

Result<uint64_t> QueryChannel::Register(const RemoteQuerySpec& spec,
                                        bool* rejected_by_limit) {
  std::lock_guard<std::mutex> lock(mu_);
  if (rejected_by_limit != nullptr) *rejected_by_limit = false;
  XCQL_RETURN_NOT_OK(ValidateSpec(spec));
  ActivatePendingLocked();
  RemoteQuerySpec canonical = spec;
  canonical.token = 0;
  canonical.last_result_seq = 0;
  const std::string key = CanonicalKey(canonical);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) return it->second;  // evaluate once, fan out
  // A recovered registration whose position the (shorter-than-registry)
  // recovered log never reached: re-admit it now, at the current feed
  // position, keeping its id stable for the returning subscriber.
  for (auto pit = pending_.begin(); pit != pending_.end(); ++pit) {
    if (CanonicalKey(pit->second.spec) == key) {
      const uint64_t id = pit->first;
      pending_.erase(pit);
      return AdmitLocked(canonical, fragments_fed_, id, /*persist=*/false,
                         rejected_by_limit);
    }
  }
  return AdmitLocked(canonical, fragments_fed_, 0, /*persist=*/true,
                     rejected_by_limit);
}

Status QueryChannel::Unregister(uint64_t query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    if (pending_.erase(query_id) != 0) {
      return PersistLocked(FrameType::kUnquery, EncodeUnquery(query_id),
                           query_id);
    }
    return Status::NotFound(StringPrintf(
        "no registered query %llu",
        static_cast<unsigned long long>(query_id)));
  }
  if (!it->second.sinks.empty()) return Status::OK();  // others still read
  (void)engine_.Unregister(it->second.engine_id);
  by_key_.erase(CanonicalKey(it->second.spec));
  Status st = PersistLocked(FrameType::kUnquery, EncodeUnquery(query_id),
                            query_id);
  queries_.erase(it);
  return st;
}

Status QueryChannel::Subscribe(uint64_t query_id, int64_t last_seq,
                               const void* handle, Deliver deliver,
                               bool send_expired) {
  std::lock_guard<std::mutex> lock(mu_);
  ActivatePendingLocked();
  auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return Status::NotFound(StringPrintf(
        "no registered query %llu",
        static_cast<unsigned long long>(query_id)));
  }
  QueryState& state = it->second;
  // Replay the backlog and attach under one lock hold: OnFragment cannot
  // interleave, so the sink sees every result seq exactly once, in order.
  int64_t from = last_seq < 0 ? 0 : last_seq + 1;
  if (from < state.log_base) {
    // Retention dropped [from, log_base): tell the subscriber the range
    // was aged out on purpose (not lost) so it advances its result cursor
    // cleanly instead of waiting for seqs that will never arrive. Only a
    // peer that negotiated kHelloFlagRetention gets the marker — an older
    // one rejects frame type kExpired as stream corruption, so its replay
    // just starts silently at the retained base.
    if (send_expired) {
      Expired expired;
      expired.kind = Expired::kResultRange;
      expired.query_id = query_id;
      expired.first_seq = from;
      Frame frame;
      frame.type = FrameType::kExpired;
      frame.seq = static_cast<uint64_t>(state.log_base - 1);
      frame.payload = EncodeExpired(expired);
      auto bytes = EncodeFrame(frame);
      if (!bytes.ok()) return bytes.status();
      deliver(std::make_shared<const std::string>(
          std::move(bytes).MoveValue()));
    }
    from = state.log_base;
  }
  for (int64_t seq = from;
       seq < state.log_base + static_cast<int64_t>(state.log.size()); ++seq) {
    deliver(state.log[static_cast<size_t>(seq - state.log_base)]);
  }
  Sink sink;
  sink.handle = handle;
  sink.deliver = std::move(deliver);
  state.sinks.push_back(std::move(sink));
  return Status::OK();
}

void QueryChannel::Unsubscribe(uint64_t query_id, const void* handle) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(query_id);
  if (it == queries_.end()) return;
  auto& sinks = it->second.sinks;
  for (auto sit = sinks.begin(); sit != sinks.end();) {
    sit = sit->handle == handle ? sinks.erase(sit) : sit + 1;
  }
}

void QueryChannel::DropSink(const void* handle) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, state] : queries_) {
    auto& sinks = state.sinks;
    for (auto sit = sinks.begin(); sit != sinks.end();) {
      sit = sit->handle == handle ? sinks.erase(sit) : sit + 1;
    }
  }
}

void QueryChannel::OnFragment(const frag::Fragment& fragment) {
  std::lock_guard<std::mutex> lock(mu_);
  if (store_ == nullptr) return;
  // Recovered mid-stream registrations re-attach exactly where they were
  // registered: before this fragment is fed, not after.
  ActivatePendingLocked();
  hub_.OnFragment(stream_name_, fragment);
  ++fragments_fed_;
  clock_.AdvanceTo(store_->max_valid_time());
  // One tick per appended fragment: the schedule — and with it every
  // query's result stream — is a pure function of the fragment log, which
  // is what makes the logs rebuildable after a restart. A tick error is
  // per-query state (QueryStats), not a channel failure.
  (void)engine_.Tick();
}

void QueryChannel::EmitDelta(uint64_t id, const xq::Sequence& added,
                             const std::vector<std::string>& removed,
                             DateTime at) {
  // Runs inside engine_.Tick() on the feeding thread: mu_ is already held
  // by OnFragment, so the state maps are safe to touch (and must not be
  // re-locked).
  auto it = queries_.find(id);
  if (it == queries_.end()) return;
  QueryState& state = it->second;
  ResultDelta delta;
  delta.query_id = id;
  delta.eval_time_s = at.seconds();
  delta.added.reserve(added.size());
  for (const xq::Item& item : added) {
    delta.added.push_back(stream::SerializeResultItem(item));
  }
  delta.removed = removed;
  auto payload = EncodeResultDelta(delta);
  if (!payload.ok()) {
    ++encode_failures_;  // oversize delta: the seq is not burned
    return;
  }
  Frame frame;
  frame.type = FrameType::kResult;
  frame.seq =
      static_cast<uint64_t>(state.log_base + static_cast<int64_t>(state.log.size()));
  frame.payload = std::move(payload).MoveValue();
  auto bytes = EncodeFrame(frame);
  if (!bytes.ok()) {
    ++encode_failures_;
    return;
  }
  state.log.push_back(
      std::make_shared<const std::string>(std::move(bytes).MoveValue()));
  ++result_frames_;
  for (const Sink& sink : state.sinks) sink.deliver(state.log.back());
}

QueryChannelStats QueryChannel::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  QueryChannelStats s;
  s.active_queries = static_cast<int>(queries_.size());
  for (const auto& [id, state] : queries_) {
    s.active_sinks += static_cast<int>(state.sinks.size());
  }
  s.pending_queries = static_cast<int>(pending_.size());
  s.result_frames = result_frames_;
  s.fragments_fed = fragments_fed_;
  s.recovered_queries = recovered_queries_;
  s.encode_failures = encode_failures_;
  s.result_log_trimmed = result_log_trimmed_;
  for (const auto& [id, state] : queries_) {
    for (const auto& frame : state.log) {
      s.result_log_bytes += static_cast<int64_t>(frame->size());
    }
  }
  return s;
}

int64_t QueryChannel::TrimResultLogs(int64_t max_results) {
  if (max_results <= 0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  int64_t dropped = 0;
  for (auto& [id, state] : queries_) {
    const int64_t excess =
        static_cast<int64_t>(state.log.size()) - max_results;
    if (excess <= 0) continue;
    state.log.erase(state.log.begin(), state.log.begin() + excess);
    state.log_base += excess;
    dropped += excess;
  }
  result_log_trimmed_ += dropped;
  return dropped;
}

DateTime QueryChannel::ObservableFloor(
    DateTime now, std::vector<uint64_t>* pinning) const {
  std::lock_guard<std::mutex> lock(mu_);
  DateTime floor = DateTime::End();  // no query: nothing constrains
  for (const auto& [id, state] : queries_) {
    auto stats = engine_.QueryStats(state.engine_id);
    DateTime q_floor = stats.ok() ? stats.value().window.FloorAt(now)
                                  : DateTime::Start();
    if (q_floor == DateTime::Start() && pinning != nullptr) {
      pinning->push_back(id);
    }
    floor = std::min(floor, q_floor);
  }
  // Recovered registrations not yet re-attached: their window is unknown
  // until they compile, so they pin retention rather than risk compacting
  // data they will need.
  for (const auto& [id, state] : pending_) {
    if (pinning != nullptr) pinning->push_back(id);
    floor = DateTime::Start();
  }
  return floor;
}

frag::CompactionStats QueryChannel::CompactMirror(
    const frag::RetentionPolicy& policy, DateTime now,
    DateTime observe_floor) {
  std::lock_guard<std::mutex> lock(mu_);
  if (store_ == nullptr || !policy.enabled()) return {};
  auto stats = store_->Compact(policy, now, observe_floor);
  return stats.ok() ? stats.value() : frag::CompactionStats{};
}

int64_t QueryChannel::mirror_store_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_ == nullptr ? 0 : store_->ApproxBytes();
}

Result<lang::QueryRelevance> QueryChannel::AnalyzeSpec(
    const RemoteQuerySpec& spec) const {
  if (store_ == nullptr) {
    return Status::Internal("query channel has no mirror store");
  }
  XCQL_RETURN_NOT_OK(ValidateSpec(spec));
  // A throwaway executor: Prepare only parses/translates/analyzes, so the
  // cost is one compile, and touching no fragments keeps this lock-free
  // against the feeding thread.
  lang::QueryExecutor exec;
  XCQL_RETURN_NOT_OK(exec.RegisterStream(store_));
  XCQL_ASSIGN_OR_RETURN(
      lang::PreparedQuery prepared,
      exec.Prepare(spec.text, static_cast<lang::ExecMethod>(spec.method)));
  return prepared.relevance;
}

int64_t QueryChannel::result_log_size(uint64_t query_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(query_id);
  return it == queries_.end()
             ? 0
             : it->second.log_base +
                   static_cast<int64_t>(it->second.log.size());
}

int64_t QueryChannel::result_log_base(uint64_t query_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(query_id);
  return it == queries_.end() ? 0 : it->second.log_base;
}

}  // namespace xcql::net
