#include "net/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <random>

#include "common/file_util.h"
#include "common/io_env.h"
#include "common/string_util.h"
#include "frag/codec.h"

namespace xcql::net {

namespace {

// Every syscall below routes through the process-wide IoEnv, so disk-fault
// tests can inject errno failures at any site (docs/ROBUSTNESS.md).
IoEnv* io() { return IoEnv::Get(); }

constexpr const char* kManifestName = "MANIFEST";
constexpr const char* kSegmentPrefix = "wal-";
constexpr const char* kSegmentSuffix = ".log";
constexpr const char* kCheckpointPrefix = "checkpoint-";
constexpr const char* kCheckpointSuffix = ".ckpt";
constexpr const char* kTmpSuffix = ".tmp";

std::string SegmentName(int64_t base_seq) {
  return StringPrintf("%s%020lld%s", kSegmentPrefix,
                      static_cast<long long>(base_seq), kSegmentSuffix);
}

std::string CheckpointName(int64_t records) {
  return StringPrintf("%s%020lld%s", kCheckpointPrefix,
                      static_cast<long long>(records), kCheckpointSuffix);
}

// Parses "<prefix><20 digits><suffix>", returning the number or -1.
int64_t ParseNumberedName(const std::string& name, const char* prefix,
                          const char* suffix) {
  size_t plen = std::strlen(prefix);
  size_t slen = std::strlen(suffix);
  if (name.size() != plen + 20 + slen) return -1;
  if (name.compare(0, plen, prefix) != 0) return -1;
  if (name.compare(plen + 20, slen, suffix) != 0) return -1;
  int64_t v = 0;
  for (size_t i = plen; i < plen + 20; ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return -1;
    v = v * 10 + (c - '0');
  }
  return v;
}

bool EndsWith(const std::string& s, const char* suffix) {
  size_t slen = std::strlen(suffix);
  return s.size() >= slen && s.compare(s.size() - slen, slen, suffix) == 0;
}

// Schema equality must survive re-serialization — the caller may pass the
// generator's raw XML while the manifest holds (or the server re-emits) the
// parsed round-trip — so compare the canonical ToXml form, falling back to
// the raw string only when it does not parse.
uint64_t CanonicalTsHash(const std::string& ts_xml) {
  auto ts = frag::TagStructure::Parse(ts_xml);
  return ts.ok() ? TagStructureHash(ts.value()) : TagStructureHash(ts_xml);
}

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " + std::strerror(errno));
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = io()->OpenDir(dir.c_str());
  if (d == nullptr) return ErrnoStatus("opendir", dir);
  std::vector<std::string> names;
  while (struct dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(std::move(name));
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

// fsync on the directory itself, so a freshly created/renamed file's
// directory entry survives a crash too.
Status SyncDir(const std::string& dir) {
  int fd = io()->Open(dir.c_str(), O_RDONLY | O_DIRECTORY, 0);
  if (fd < 0) return ErrnoStatus("open dir", dir);
  int rc = io()->Fsync(fd);
  io()->Close(fd);
  if (rc != 0) return ErrnoStatus("fsync dir", dir);
  return Status::OK();
}

Status SyncFd(int fd, const std::string& path) {
  if (io()->Fsync(fd) != 0) return ErrnoStatus("fsync", path);
  return Status::OK();
}

// Writes a whole file durably: tmp-less, for the manifest at init time
// (nothing references the directory until Open returns).
Status WriteFileSynced(const std::string& path, std::string_view data) {
  int fd = io()->Open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open", path);
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = io()->Write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = ErrnoStatus("write", path);
      io()->Close(fd);
      return st;
    }
    off += static_cast<size_t>(n);
  }
  Status st = SyncFd(fd, path);
  io()->Close(fd);
  return st;
}

// Encodes the MANIFEST: the HELLO identity frame, plus — for a re-armed
// generation whose records start past 0 — a kReplayFrom base marker. Base
// 0 stays a single frame, byte-identical to what every pre-existing data
// dir holds.
Result<std::string> EncodeManifest(uint64_t epoch,
                                   const std::string& stream_name,
                                   const std::string& ts_xml,
                                   int64_t base_seq) {
  Hello manifest;
  manifest.stream_name = stream_name;
  manifest.ts_hash = TagStructureHash(ts_xml);
  manifest.tag_structure_xml = ts_xml;
  Frame frame;
  frame.type = FrameType::kHello;
  frame.seq = epoch;
  frame.payload = EncodeHello(manifest);
  XCQL_ASSIGN_OR_RETURN(std::string bytes,
                        EncodeFrame(frame, kFrameVersionCrc));
  if (base_seq > 0) {
    Frame marker;
    marker.type = FrameType::kReplayFrom;
    marker.seq = static_cast<uint64_t>(base_seq);
    XCQL_ASSIGN_OR_RETURN(std::string marker_bytes,
                          EncodeFrame(marker, kFrameVersionCrc));
    bytes += marker_bytes;
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// WalHooks: a process-wide hook behind one relaxed atomic, so the
// production path (no hook) costs a single load per crash point.

std::atomic<bool> g_hook_installed{false};
std::mutex g_hook_mu;
WalHooks::Hook g_hook;  // guarded by g_hook_mu

// Every boundary the WAL announces. Order mirrors the lifecycle: append,
// rotate, checkpoint.
const char* kWalCrashPoints[] = {
    "append:before_write",   // record not yet on disk
    "append:mid_write",      // half the record's bytes on disk (torn tail)
    "append:after_write",    // record written, not yet fsync'd
    "append:after_sync",     // record durable
    "rotate:sealed",         // old segment synced+closed, new one absent
    "rotate:after_open",     // new segment exists, dir entry may not
    "checkpoint:begin",      // nothing moved yet
    "checkpoint:tmp_written",  // tmp complete + fsync'd, not yet renamed
    "checkpoint:after_rename",  // checkpoint visible, old files not GC'd
    "checkpoint:after_gc",   // steady state restored
    // Fired by the server's retention driver (net/server.cc), not the WAL
    // itself: the boundary between "checkpoint covers the range" and "the
    // in-memory frame log dropped it". A kill between them must never leave
    // a seq both GC'd and un-checkpointed.
    "retain:before_trim",    // checkpoint durable, frame log still intact
    "retain:after_trim",     // frame log trimmed, stores compacted
};

// One decoded file of records (checkpoint or segment).
struct ScannedFile {
  std::vector<WalRecord> records;
  size_t good_bytes = 0;   // offset just past the last complete record
  size_t total_bytes = 0;  // file size
  bool torn = false;       // complete-record prefix, then a partial record
};

// Parses `bytes` as consecutive v2 FRAGMENT frames. `allow_torn` (the
// newest segment only) turns an incomplete final record into torn=true;
// anywhere else an incomplete or invalid record is corruption.
Result<ScannedFile> ScanRecordFile(const std::string& path,
                                   const std::string& bytes,
                                   bool allow_torn) {
  ScannedFile out;
  out.total_bytes = bytes.size();
  FrameReader reader;
  reader.Feed(bytes.data(), bytes.size());
  // Offset of a CRC-failed record seen in torn-tolerant mode. Under
  // fsync=interval/never a crash can expose a record whose framing
  // completed (i_size ran ahead) but whose payload blocks never flushed —
  // a torn tail that fails its checksum instead of stopping short. That
  // reading only holds for the *final* record: if anything complete
  // follows, the failed record's bytes were written and then damaged.
  size_t bad_crc_at = std::string::npos;
  uint64_t bad_crc_seq = 0;
  for (;;) {
    size_t before = bytes.size() - reader.buffered();
    auto next = reader.Next();
    if (!next.ok()) {
      // A torn append is always a *prefix* of a valid frame — the magic
      // and version bytes land first — so a framing error (bad magic,
      // bogus length) means the bytes on disk were damaged after they
      // were written. Except in the newest segment, where a crashed
      // filesystem may expose never-written garbage past the last
      // complete record: treat that as the torn tail.
      if (allow_torn) {
        out.good_bytes = bad_crc_at != std::string::npos ? bad_crc_at
                                                         : before;
        out.torn = true;
        return out;
      }
      return Status::Internal("wal poison: " + path + " at offset " +
                              std::to_string(before) + ": " +
                              next.status().message());
    }
    if (!next.value().has_value()) {
      // Incomplete (or absent) record at EOF.
      if (bad_crc_at != std::string::npos) {
        // The CRC failure was the final record after all: torn tail.
        out.good_bytes = bad_crc_at;
        out.torn = true;
        return out;
      }
      out.good_bytes = before;
      if (reader.buffered() == 0) return out;  // clean end
      if (allow_torn) {
        out.torn = true;
        return out;
      }
      return Status::Internal(
          "wal poison: " + path + " ends with " +
          std::to_string(reader.buffered()) +
          " bytes of a partial record inside a sealed file");
    }
    const Frame& frame = *next.value();
    if (bad_crc_at != std::string::npos) {
      // A complete record follows the checksum failure, so the failed
      // record cannot be a torn tail: its bytes reached the disk and
      // were damaged afterwards. Refusing to serve is the only honest
      // answer — the record's content is gone.
      return Status::Internal(
          "wal poison: " + path + " at offset " +
          std::to_string(bad_crc_at) + ": record seq " +
          std::to_string(bad_crc_seq) +
          " failed its CRC32C mid-log (disk corruption, not a torn "
          "write)");
    }
    if (!frame.crc_ok) {
      if (allow_torn) {
        // Might be the torn tail (see above) — decided by what follows.
        bad_crc_at = before;
        bad_crc_seq = frame.seq;
        continue;
      }
      // Sealed files are never appended to, so a checksum failure there
      // is bit rot no matter where it sits.
      return Status::Internal(
          "wal poison: " + path + " at offset " + std::to_string(before) +
          ": record seq " + std::to_string(frame.seq) +
          " failed its CRC32C (disk corruption, not a torn write)");
    }
    if (frame.type != FrameType::kFragment ||
        frame.wire_version != kFrameVersionCrc) {
      return Status::Internal(
          "wal poison: " + path + " at offset " + std::to_string(before) +
          ": unexpected " + std::string(FrameTypeName(frame.type)) +
          " frame (wal files hold v2 FRAGMENT records only)");
    }
    WalRecord rec;
    rec.seq = static_cast<int64_t>(frame.seq);
    rec.flags = frame.flags;
    rec.payload = frame.payload;
    out.records.push_back(std::move(rec));
    out.good_bytes = bytes.size() - reader.buffered();
  }
}

}  // namespace

uint64_t MintEpoch() {
  std::random_device rd;
  uint64_t e = (static_cast<uint64_t>(rd()) << 32) ^ rd();
  e ^= static_cast<uint64_t>(::getpid()) << 48;
  e ^= static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  return e == 0 ? 1 : e;  // 0 means "no epoch" on the wire
}

void WalHooks::Install(Hook hook) {
  std::lock_guard<std::mutex> lock(g_hook_mu);
  g_hook = std::move(hook);
  g_hook_installed.store(g_hook != nullptr, std::memory_order_release);
}

bool WalHooks::installed() {
  return g_hook_installed.load(std::memory_order_acquire);
}

void WalHooks::At(const char* point) {
  if (!installed()) return;
  Hook hook;
  {
    std::lock_guard<std::mutex> lock(g_hook_mu);
    hook = g_hook;
  }
  if (hook) hook(point);
}

const std::vector<const char*>& WalHooks::Points() {
  static const std::vector<const char*> points(
      std::begin(kWalCrashPoints), std::end(kWalCrashPoints));
  return points;
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kInterval:
      return "interval";
    case FsyncPolicy::kNever:
      return "never";
  }
  return "?";
}

Result<FsyncPolicy> ParseFsyncPolicy(std::string_view name) {
  if (name == "always") return FsyncPolicy::kAlways;
  if (name == "interval") return FsyncPolicy::kInterval;
  if (name == "never") return FsyncPolicy::kNever;
  return Status::InvalidArgument("unknown fsync policy '" +
                                 std::string(name) +
                                 "' (always | interval | never)");
}

Wal::Wal(std::string dir, WalOptions options)
    : dir_(std::move(dir)), opts_(options) {}

Wal::~Wal() { (void)Close(); }

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& dir,
                                       const std::string& stream_name,
                                       const std::string& ts_xml,
                                       const WalOptions& options,
                                       WalRecovery* recovery) {
  if (dir.empty()) return Status::InvalidArgument("wal needs a directory");
  if (io()->Mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return ErrnoStatus("mkdir", dir);
  }
  XCQL_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDir(dir));

  // Finish any interrupted checkpoint: a tmp file was never visible to
  // recovery, so deleting it is always safe.
  std::vector<int64_t> checkpoints;
  std::vector<int64_t> segments;
  bool have_manifest = false;
  for (const std::string& name : names) {
    if (EndsWith(name, kTmpSuffix)) {
      (void)io()->Unlink((dir + "/" + name).c_str());
      continue;
    }
    if (name == kManifestName) {
      have_manifest = true;
      continue;
    }
    int64_t seg = ParseNumberedName(name, kSegmentPrefix, kSegmentSuffix);
    if (seg >= 0) {
      segments.push_back(seg);
      continue;
    }
    int64_t ckpt =
        ParseNumberedName(name, kCheckpointPrefix, kCheckpointSuffix);
    if (ckpt >= 0) {
      checkpoints.push_back(ckpt);
      continue;
    }
    // Foreign files are left alone but called out: a data dir is owned.
    std::fprintf(stderr, "wal: ignoring unrecognized file %s/%s\n",
                 dir.c_str(), name.c_str());
  }
  std::sort(checkpoints.begin(), checkpoints.end());
  std::sort(segments.begin(), segments.end());

  WalRecovery rec;

  // --- Manifest: epoch + stream identity. -------------------------------
  bool fresh = false;
  if (have_manifest) {
    XCQL_ASSIGN_OR_RETURN(std::string bytes,
                          ReadFileToString(dir + "/" + kManifestName));
    FrameReader reader;
    reader.Feed(bytes.data(), bytes.size());
    auto frame = reader.Next();
    bool ok = frame.ok() && frame.value().has_value() &&
              frame.value()->crc_ok &&
              frame.value()->type == FrameType::kHello;
    // An optional second frame is the base marker a Rearm wrote: a
    // kReplayFrom whose seq is the first record seq this generation
    // holds. A single-frame manifest (every pre-Rearm dir) means base 0.
    int64_t manifest_base = 0;
    if (ok && reader.buffered() > 0) {
      auto marker = reader.Next();
      ok = marker.ok() && marker.value().has_value() &&
           marker.value()->crc_ok &&
           marker.value()->type == FrameType::kReplayFrom &&
           reader.buffered() == 0;
      if (ok) manifest_base = static_cast<int64_t>(marker.value()->seq);
    }
    if (!ok) {
      // The manifest is written (and fsync'd) before the first segment is
      // created, so a damaged manifest alongside records is corruption; a
      // damaged manifest alone is a crash during init of an empty dir,
      // which re-initializes safely.
      if (segments.empty() && checkpoints.empty()) {
        have_manifest = false;
      } else {
        return Status::Internal("wal poison: " + dir + "/" + kManifestName +
                                " is damaged but the directory holds "
                                "records; refusing to guess the epoch");
      }
    } else {
      auto hello = DecodeHello(frame.value()->payload);
      if (!hello.ok()) {
        return Status::Internal("wal poison: undecodable manifest: " +
                                hello.status().message());
      }
      rec.epoch = frame.value()->seq;
      if (rec.epoch == 0) {
        return Status::Internal("wal poison: manifest carries epoch 0");
      }
      rec.base_seq = manifest_base;
      rec.stream_name = hello.value().stream_name;
      rec.ts_xml = hello.value().tag_structure_xml;
      if (!stream_name.empty() && stream_name != rec.stream_name) {
        return Status::InvalidArgument(
            "wal holds stream '" + rec.stream_name + "', not '" +
            stream_name + "': reset the data dir or serve the same stream");
      }
      if (!ts_xml.empty() &&
          CanonicalTsHash(ts_xml) != CanonicalTsHash(rec.ts_xml)) {
        return Status::InvalidArgument(
            "wal tag structure differs from the served schema: reset the "
            "data dir or serve the same schema");
      }
    }
  }
  if (!have_manifest) {
    if (!segments.empty() || !checkpoints.empty()) {
      return Status::Internal(
          "wal poison: " + dir +
          " holds records but no manifest; refusing to guess the epoch");
    }
    if (stream_name.empty() || ts_xml.empty()) {
      return Status::InvalidArgument(
          "initializing a wal needs the stream name and tag structure");
    }
    fresh = true;
    rec.epoch = MintEpoch();
    rec.stream_name = stream_name;
    rec.ts_xml = ts_xml;
    XCQL_ASSIGN_OR_RETURN(
        std::string bytes,
        EncodeManifest(rec.epoch, stream_name, ts_xml, /*base_seq=*/0));
    XCQL_RETURN_NOT_OK(WriteFileSynced(dir + "/" + kManifestName, bytes));
    XCQL_RETURN_NOT_OK(SyncDir(dir));
  }

  // --- Checkpoint: the compacted prefix. --------------------------------
  // A checkpoint named n covers records [base, n): the record count is
  // n - base, and seqs run contiguously from the generation's base.
  int64_t expected = rec.base_seq;  // next record seq the chain must produce
  if (!checkpoints.empty()) {
    int64_t n = checkpoints.back();
    std::string path = dir + "/" + CheckpointName(n);
    XCQL_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
    // A checkpoint becomes visible only via rename of a complete, fsync'd
    // tmp file, so a torn checkpoint is corruption, never a crash artifact.
    XCQL_ASSIGN_OR_RETURN(ScannedFile scanned,
                          ScanRecordFile(path, bytes, /*allow_torn=*/false));
    if (static_cast<int64_t>(scanned.records.size()) != n - rec.base_seq) {
      return Status::Internal(StringPrintf(
          "wal poison: %s holds %lld records, name promises %lld "
          "(generation base %lld)",
          path.c_str(), static_cast<long long>(scanned.records.size()),
          static_cast<long long>(n - rec.base_seq),
          static_cast<long long>(rec.base_seq)));
    }
    for (int64_t i = rec.base_seq; i < n; ++i) {
      const size_t at = static_cast<size_t>(i - rec.base_seq);
      if (scanned.records[at].seq != i) {
        return Status::Internal(StringPrintf(
            "wal poison: %s record %lld carries seq %lld", path.c_str(),
            static_cast<long long>(at),
            static_cast<long long>(scanned.records[at].seq)));
      }
    }
    rec.report.checkpoint_records = n - rec.base_seq;
    expected = n;
    rec.records = std::move(scanned.records);
  }

  // --- Segments: the tail. ----------------------------------------------
  // Segments wholly behind the checkpoint are a crash between a
  // checkpoint's rename and its GC; they parse (cheap insurance) and die.
  const int64_t ckpt_records = expected;  // records the checkpoint covers
  std::vector<std::string> gc;  // files to delete once recovery is decided
  for (int64_t i = 0; i + 1 < static_cast<int64_t>(checkpoints.size());
       ++i) {
    gc.push_back(dir + "/" + CheckpointName(checkpoints[i]));
  }
  std::string active_path;
  int64_t active_base = -1;
  size_t active_bytes = 0;
  std::vector<std::string> sealed;
  for (size_t i = 0; i < segments.size(); ++i) {
    const bool last = (i + 1 == segments.size());
    const int64_t base = segments[i];
    std::string path = dir + "/" + SegmentName(base);
    XCQL_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
    XCQL_ASSIGN_OR_RETURN(ScannedFile scanned,
                          ScanRecordFile(path, bytes, /*allow_torn=*/last));
    ++rec.report.segments_scanned;
    // Seq discipline: a segment's records run contiguously from its name.
    for (size_t j = 0; j < scanned.records.size(); ++j) {
      if (scanned.records[j].seq != base + static_cast<int64_t>(j)) {
        return Status::Internal(StringPrintf(
            "wal poison: %s record %lld carries seq %lld (expected %lld)",
            path.c_str(), static_cast<long long>(j),
            static_cast<long long>(scanned.records[j].seq),
            static_cast<long long>(base + static_cast<int64_t>(j))));
      }
    }
    const int64_t seg_end = base + static_cast<int64_t>(scanned.records.size());
    if (seg_end <= expected && !last) {
      gc.push_back(std::move(path));  // fully covered by the checkpoint
      continue;
    }
    if (base > expected) {
      return Status::Internal(StringPrintf(
          "wal poison: %s starts at seq %lld but records stop at %lld "
          "(a whole segment is missing)",
          path.c_str(), static_cast<long long>(base),
          static_cast<long long>(expected)));
    }
    for (size_t j = 0; j < scanned.records.size(); ++j) {
      if (scanned.records[j].seq >= expected) {
        rec.records.push_back(std::move(scanned.records[j]));
        ++rec.report.tail_records;
        ++expected;
      }
    }
    if (scanned.torn) {
      // Exactly one partial record at the very tail: truncate and warn.
      size_t dropped = scanned.total_bytes - scanned.good_bytes;
      if (io()->Truncate(path.c_str(),
                         static_cast<off_t>(scanned.good_bytes)) != 0) {
        return ErrnoStatus("truncate torn wal tail of", path);
      }
      int fd = io()->Open(path.c_str(), O_WRONLY, 0);
      if (fd >= 0) {
        (void)io()->Fsync(fd);
        io()->Close(fd);
      }
      rec.report.torn_tail = true;
      rec.report.torn_bytes = dropped;
      rec.report.warning = StringPrintf(
          "truncated one partial record (%lld bytes) at the tail of %s; "
          "the stream resumes from seq %lld",
          static_cast<long long>(dropped), path.c_str(),
          static_cast<long long>(expected));
      std::fprintf(stderr, "wal: %s\n", rec.report.warning.c_str());
    }
    if (last) {
      if (seg_end == expected && base >= ckpt_records) {
        // Appending seq `expected` keeps this segment contiguous, and no
        // record in it is also in the checkpoint: adopt it as the active
        // segment.
        active_path = path;
        active_base = base;
        active_bytes = scanned.good_bytes;
      } else if (seg_end <= ckpt_records) {
        // Fully covered by the checkpoint (a crash between a checkpoint's
        // rename and its GC). Adopting it would hand the next checkpoint
        // a segment whose records duplicate the checkpoint's, so finish
        // the GC and start fresh at `expected`.
        gc.push_back(std::move(path));
      } else {
        // Straddles the checkpoint: its tail records past `ckpt_records`
        // are the only copy, so it cannot die, but appending to it would
        // grow the duplicated prefix. Keep it sealed (the checkpoint
        // copy skips records a prior file already covered) and open a
        // fresh active segment at `expected`.
        sealed.push_back(std::move(path));
      }
    } else {
      sealed.push_back(std::move(path));
    }
  }

  auto wal = std::unique_ptr<Wal>(new Wal(dir, options));
  wal->epoch_ = rec.epoch;
  wal->stream_name_ = rec.stream_name;
  wal->ts_xml_ = rec.ts_xml;
  wal->base_ = rec.base_seq;
  wal->next_seq_ = expected;
  wal->checkpointed_ =
      checkpoints.empty() ? rec.base_seq : checkpoints.back();
  wal->sealed_ = std::move(sealed);
  wal->last_sync_ = std::chrono::steady_clock::now();

  // Finish the interrupted GC (if any) before appending anything new.
  for (const std::string& path : gc) (void)io()->Unlink(path.c_str());
  if (!gc.empty()) XCQL_RETURN_NOT_OK(SyncDir(dir));

  if (!active_path.empty() && active_base <= expected) {
    XCQL_RETURN_NOT_OK(wal->OpenActiveSegment(active_base, /*create=*/false));
    wal->active_bytes_ = active_bytes;
  } else {
    XCQL_RETURN_NOT_OK(wal->OpenActiveSegment(expected, /*create=*/true));
  }

  if (!fresh && recovery == nullptr && !rec.records.empty()) {
    return Status::InvalidArgument(
        "wal holds records but the caller passed no recovery sink");
  }
  if (recovery != nullptr) *recovery = std::move(rec);
  if (options.fsync == FsyncPolicy::kInterval) wal->StartFlusher();
  return wal;
}

void Wal::StartFlusher() {
  flusher_ = std::thread([this] { FlusherLoop(); });
}

void Wal::FlusherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!flusher_stop_) {
    if (!dirty_ || fd_ < 0) {
      flush_cv_.wait(lock, [&] {
        return flusher_stop_ || (dirty_ && fd_ >= 0);
      });
      continue;
    }
    // Sleep until the oldest unsynced append turns fsync_interval old,
    // then sync — unless an append's own amortized sync got there first.
    const auto deadline = dirty_since_ + opts_.fsync_interval;
    if (flush_cv_.wait_until(lock, deadline, [&] { return flusher_stop_; }))
      break;
    if (!dirty_ || fd_ < 0) continue;
    Status st = SyncLocked();
    if (!st.ok()) {
      // Same contract as a failed append-path sync: durability is gone
      // and pretending otherwise would be worse. Unlike an append-path
      // failure there is no caller to tell, so fire the failure callback
      // (outside mu_) — the server must degrade *now*, not at the next
      // append, or subscribers keep collecting resume points that a
      // restart would mis-splice.
      broken_ = true;
      std::fprintf(stderr, "wal: background sync failed: %s\n",
                   st.message().c_str());
      lock.unlock();
      NotifyFailure(st);
      return;
    }
  }
}

void Wal::NotifyFailure(const Status& why) {
  std::lock_guard<std::mutex> lock(cb_mu_);
  if (failure_cb_) failure_cb_(why);
}

void Wal::SetFailureCallback(std::function<void(const Status&)> cb) {
  std::lock_guard<std::mutex> lock(cb_mu_);
  failure_cb_ = std::move(cb);
}

Status Wal::OpenActiveSegment(int64_t base_seq, bool create) {
  active_path_ = dir_ + "/" + SegmentName(base_seq);
  int flags = O_WRONLY | O_APPEND | (create ? O_CREAT : 0);
  fd_ = io()->Open(active_path_.c_str(), flags, 0644);
  if (fd_ < 0) return ErrnoStatus("open segment", active_path_);
  active_base_ = base_seq;
  if (create) {
    active_bytes_ = 0;
    XCQL_RETURN_NOT_OK(SyncDir(dir_));
  }
  return Status::OK();
}

int64_t Wal::next_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

WalStats Wal::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Status Wal::Append(int64_t seq, std::string_view frame_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  Status st = AppendLocked(seq, frame_bytes);
  if (!st.ok()) ++stats_.append_failures;
  return st;
}

Status Wal::AppendLocked(int64_t seq, std::string_view frame_bytes) {
  if (fd_ < 0) return Status::Internal("wal is closed");
  if (broken_) {
    return Status::Internal("wal is broken after an unrecoverable write "
                            "error; restart to recover");
  }
  if (seq < next_seq_) return Status::OK();  // already durable (re-seed)
  if (seq != next_seq_) {
    return Status::InvalidArgument(StringPrintf(
        "wal append out of order: got seq %lld, expected %lld",
        static_cast<long long>(seq), static_cast<long long>(next_seq_)));
  }
  if (frame_bytes.size() < kFrameHeaderSizeCrc) {
    return Status::InvalidArgument("wal record is not an encoded v2 frame");
  }
  // From here on a failure means the write path itself is sick (rotation,
  // write, or fsync): the record's durability is unknowable, and any
  // record appended after it would be out of order. Mark the wal broken
  // so every later append fails fast instead of silently not persisting.
  auto durability_lost = [this](Status st) {
    broken_ = true;
    return st;
  };
  if (active_bytes_ > 0 &&
      active_bytes_ + frame_bytes.size() > opts_.segment_bytes) {
    Status st = RotateLocked();
    if (!st.ok()) return durability_lost(std::move(st));
  }
  WalHooks::At("append:before_write");
  if (WalHooks::installed() && frame_bytes.size() >= 2) {
    // Split the write so a kill-point test can die with half a record on
    // disk — the torn tail recovery must truncate.
    size_t half = frame_bytes.size() / 2;
    Status st = WriteFully(frame_bytes.substr(0, half));
    if (!st.ok()) return durability_lost(std::move(st));
    WalHooks::At("append:mid_write");
    st = WriteFully(frame_bytes.substr(half));
    if (!st.ok()) return durability_lost(std::move(st));
  } else {
    Status st = WriteFully(frame_bytes);
    if (!st.ok()) return durability_lost(std::move(st));
  }
  active_bytes_ += frame_bytes.size();
  ++next_seq_;
  ++stats_.appends;
  if (!dirty_) {
    dirty_ = true;
    dirty_since_ = std::chrono::steady_clock::now();
    flush_cv_.notify_all();  // wake the interval flusher, if any
  }
  WalHooks::At("append:after_write");
  Status st = MaybeSyncLocked();
  if (!st.ok()) return durability_lost(std::move(st));
  WalHooks::At("append:after_sync");
  if (opts_.checkpoint_every > 0 &&
      next_seq_ - checkpointed_ >= opts_.checkpoint_every) {
    st = CheckpointLocked();
    if (!st.ok()) {
      if (fd_ < 0) return durability_lost(std::move(st));  // lost the tail
      // The record itself is durable; a failed compaction costs disk
      // space, not data. Surface it and retry at the next append.
      ++stats_.checkpoint_failures;
      std::fprintf(stderr, "wal: checkpoint failed: %s\n",
                   st.message().c_str());
    }
  }
  return Status::OK();
}

Status Wal::WriteFully(std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = io()->Write(fd_, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = ErrnoStatus("write", active_path_);
      // Un-write whatever partial bytes landed: a mid-segment torn record
      // would read as poison at the next recovery. If even that fails the
      // wal is broken and refuses further appends — recovery's torn-tail
      // truncation will repair the file.
      if (io()->Ftruncate(fd_, static_cast<off_t>(active_bytes_)) != 0) {
        broken_ = true;
      }
      return st;
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Wal::SyncLocked() {
  if (fd_ < 0) return Status::Internal("wal is closed");
  // fsyncgate: once anything broke this handle, its descriptor may carry
  // a failed fsync, and fsyncing it again could report success for pages
  // the kernel already dropped. Data is only re-made durable by Rearm,
  // which re-writes it through fresh descriptors.
  if (broken_) {
    return Status::Internal(
        "wal is broken; refusing to fsync a possibly-poisoned descriptor");
  }
  if (!dirty_) return Status::OK();
  XCQL_RETURN_NOT_OK(SyncFd(fd_, active_path_));
  dirty_ = false;
  last_sync_ = std::chrono::steady_clock::now();
  ++stats_.syncs;
  return Status::OK();
}

Status Wal::MaybeSyncLocked() {
  switch (opts_.fsync) {
    case FsyncPolicy::kAlways:
      return SyncLocked();
    case FsyncPolicy::kInterval:
      if (std::chrono::steady_clock::now() - last_sync_ >=
          opts_.fsync_interval) {
        return SyncLocked();
      }
      return Status::OK();
    case FsyncPolicy::kNever:
      return Status::OK();
  }
  return Status::OK();
}

Status Wal::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  return SyncLocked();
}

Status Wal::RotateLocked() {
  XCQL_RETURN_NOT_OK(SyncLocked());
  io()->Close(fd_);
  fd_ = -1;
  sealed_.push_back(active_path_);
  WalHooks::At("rotate:sealed");
  XCQL_RETURN_NOT_OK(OpenActiveSegment(next_seq_, /*create=*/true));
  WalHooks::At("rotate:after_open");
  ++stats_.rotations;
  return Status::OK();
}

Status Wal::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  return CheckpointLocked();
}

Status Wal::CheckpointLocked() {
  if (fd_ < 0) return Status::Internal("wal is closed");
  if (broken_) {
    return Status::Internal(
        "wal is broken; checkpoints resume after a re-arm or restart");
  }
  if (next_seq_ == checkpointed_ && sealed_.empty()) {
    return Status::OK();  // nothing newer than the checkpoint
  }
  WalHooks::At("checkpoint:begin");
  // The snapshot covers every record written so far; flush them first so
  // the copy below reads complete records.
  XCQL_RETURN_NOT_OK(SyncLocked());
  const int64_t n = next_seq_;
  const std::string tmp_path = dir_ + "/" + CheckpointName(n) + kTmpSuffix;
  int tmp = io()->Open(tmp_path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (tmp < 0) return ErrnoStatus("open", tmp_path);
  // Seqs [base_, copied) are already in the tmp file. Records run
  // contiguously ascending within each source file, but a file can
  // overlap what a prior file contributed — recovery from a crash
  // between a checkpoint's rename and its GC keeps a straddling segment
  // whose prefix the checkpoint already holds — so each copy skips to
  // the first record past `copied` instead of byte-copying blindly.
  int64_t copied = base_;
  auto copy_into = [&](const std::string& path) -> Status {
    XCQL_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
    size_t off = bytes.size();  // nothing new: copy nothing
    FrameReader reader;
    reader.Feed(bytes.data(), bytes.size());
    for (;;) {
      size_t before = bytes.size() - reader.buffered();
      auto next = reader.Next();
      if (!next.ok() || !next.value().has_value()) break;
      int64_t seq = static_cast<int64_t>(next.value()->seq);
      if (seq >= copied && off == bytes.size()) off = before;
      if (seq + 1 > copied) copied = seq + 1;
    }
    while (off < bytes.size()) {
      ssize_t w = io()->Write(tmp, bytes.data() + off, bytes.size() - off);
      if (w < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write", tmp_path);
      }
      off += static_cast<size_t>(w);
    }
    return Status::OK();
  };
  Status st = Status::OK();
  // checkpointed_ == base_ means no checkpoint file exists yet (a fresh
  // generation covers nothing below its own base).
  const std::string old_ckpt =
      checkpointed_ > base_ ? dir_ + "/" + CheckpointName(checkpointed_)
                            : "";
  if (!old_ckpt.empty()) st = copy_into(old_ckpt);
  for (const std::string& path : sealed_) {
    if (!st.ok()) break;
    st = copy_into(path);
  }
  if (st.ok()) st = copy_into(active_path_);
  if (st.ok() && copied != n) {
    // Writing a checkpoint whose record count belies its name would
    // poison the *next* recovery; better to fail this one loudly.
    st = Status::Internal(StringPrintf(
        "checkpoint aborted: sources yield %lld records, expected %lld",
        static_cast<long long>(copied), static_cast<long long>(n)));
  }
  if (st.ok()) st = SyncFd(tmp, tmp_path);
  io()->Close(tmp);
  if (!st.ok()) {
    // Unlink the tmp on every failure path: a stale tmp is harmless to
    // recovery (Open sweeps *.tmp) but wastes the very disk space a
    // failing checkpoint suggests is scarce.
    (void)io()->Unlink(tmp_path.c_str());
    return st;
  }
  WalHooks::At("checkpoint:tmp_written");
  const std::string ckpt_path = dir_ + "/" + CheckpointName(n);
  if (io()->Rename(tmp_path.c_str(), ckpt_path.c_str()) != 0) {
    Status err = ErrnoStatus("rename", tmp_path);
    (void)io()->Unlink(tmp_path.c_str());
    return err;
  }
  XCQL_RETURN_NOT_OK(SyncDir(dir_));
  WalHooks::At("checkpoint:after_rename");
  // GC: everything the checkpoint subsumes. The active segment is fully
  // covered too, so it is replaced with a fresh one based at n.
  if (!old_ckpt.empty()) (void)io()->Unlink(old_ckpt.c_str());
  for (const std::string& path : sealed_) (void)io()->Unlink(path.c_str());
  sealed_.clear();
  io()->Close(fd_);
  fd_ = -1;
  (void)io()->Unlink(active_path_.c_str());
  XCQL_RETURN_NOT_OK(OpenActiveSegment(n, /*create=*/true));
  WalHooks::At("checkpoint:after_gc");
  checkpointed_ = n;
  ++stats_.checkpoints;
  return Status::OK();
}

bool Wal::broken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return broken_;
}

int64_t Wal::checkpointed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checkpointed_;
}

int64_t Wal::base_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_;
}

Status Wal::Close() {
  std::thread flusher;
  {
    std::lock_guard<std::mutex> lock(mu_);
    flusher_stop_ = true;
    flusher.swap(flusher_);
  }
  flush_cv_.notify_all();
  if (flusher.joinable()) flusher.join();
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::OK();
  // A broken handle closes without syncing (fsyncgate — see SyncLocked);
  // a healthy one flushes its tail.
  Status st = broken_ ? Status::OK() : SyncLocked();
  io()->Close(fd_);
  fd_ = -1;
  return st;
}

Status Wal::Rearm(
    int64_t base_seq,
    const std::vector<std::shared_ptr<const std::string>>& records) {
  // Park the interval flusher first (it may have already exited after a
  // background fsync failure): it must not observe the directory rebuild,
  // and a healed wal needs a fresh one anyway.
  std::thread flusher;
  {
    std::lock_guard<std::mutex> lock(mu_);
    flusher_stop_ = true;
    flusher.swap(flusher_);
  }
  flush_cv_.notify_all();
  if (flusher.joinable()) flusher.join();

  std::lock_guard<std::mutex> lock(mu_);
  flusher_stop_ = false;
  // Until the rebuild completes, the handle counts as broken: any early
  // return below leaves it refusing appends, and Rearm can be retried.
  broken_ = true;
  dirty_ = false;
  // fsyncgate: the active descriptor's last fsync may have failed, so it
  // is closed and never fsync'd again — every record that matters is
  // re-written below through fresh descriptors.
  if (fd_ >= 0) {
    io()->Close(fd_);
    fd_ = -1;
  }
  // Wipe the old generation: record files first, manifest last (by
  // overwrite), so a crash mid-wipe can never leave records beside a
  // missing or stale manifest. Records-without-manifest is poison;
  // manifest-without-records re-initializes cleanly at the marked base.
  XCQL_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDir(dir_));
  for (const std::string& name : names) {
    const bool ours =
        EndsWith(name, kTmpSuffix) ||
        ParseNumberedName(name, kSegmentPrefix, kSegmentSuffix) >= 0 ||
        ParseNumberedName(name, kCheckpointPrefix, kCheckpointSuffix) >= 0;
    if (!ours) continue;  // foreign files (e.g. queries.reg) are not ours
    const std::string path = dir_ + "/" + name;
    if (io()->Unlink(path.c_str()) != 0) {
      return ErrnoStatus("unlink", path);
    }
  }
  XCQL_RETURN_NOT_OK(SyncDir(dir_));
  sealed_.clear();
  // New identity: a fresh epoch — subscribers must discard every resume
  // point minted against the degraded incarnation — and the caller's
  // frame-log base riding in the manifest as a kReplayFrom marker.
  epoch_ = MintEpoch();
  base_ = base_seq;
  XCQL_ASSIGN_OR_RETURN(
      std::string manifest,
      EncodeManifest(epoch_, stream_name_, ts_xml_, base_seq));
  XCQL_RETURN_NOT_OK(WriteFileSynced(dir_ + "/" + kManifestName, manifest));
  XCQL_RETURN_NOT_OK(SyncDir(dir_));
  // Checkpoint the live in-memory stream into the fresh generation: tmp +
  // fsync + rename, like any checkpoint, through a fresh descriptor.
  const int64_t n = base_seq + static_cast<int64_t>(records.size());
  if (!records.empty()) {
    const std::string ckpt_path = dir_ + "/" + CheckpointName(n);
    const std::string tmp_path = ckpt_path + kTmpSuffix;
    int tmp =
        io()->Open(tmp_path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (tmp < 0) return ErrnoStatus("open", tmp_path);
    Status st = Status::OK();
    for (const auto& record : records) {
      if (record == nullptr) {
        st = Status::Internal("rearm: null frame in the record snapshot");
        break;
      }
      size_t off = 0;
      while (off < record->size()) {
        ssize_t w =
            io()->Write(tmp, record->data() + off, record->size() - off);
        if (w < 0) {
          if (errno == EINTR) continue;
          st = ErrnoStatus("write", tmp_path);
          break;
        }
        off += static_cast<size_t>(w);
      }
      if (!st.ok()) break;
    }
    if (st.ok()) st = SyncFd(tmp, tmp_path);
    io()->Close(tmp);
    if (!st.ok()) {
      (void)io()->Unlink(tmp_path.c_str());
      return st;
    }
    if (io()->Rename(tmp_path.c_str(), ckpt_path.c_str()) != 0) {
      Status err = ErrnoStatus("rename", tmp_path);
      (void)io()->Unlink(tmp_path.c_str());
      return err;
    }
    XCQL_RETURN_NOT_OK(SyncDir(dir_));
  }
  next_seq_ = n;
  checkpointed_ = n;  // == base_seq when records is empty
  XCQL_RETURN_NOT_OK(OpenActiveSegment(n, /*create=*/true));
  active_bytes_ = 0;
  last_sync_ = std::chrono::steady_clock::now();
  broken_ = false;
  ++stats_.rearms;
  if (opts_.fsync == FsyncPolicy::kInterval) StartFlusher();
  return Status::OK();
}

Status RestoreStream(const WalRecovery& recovery,
                     stream::StreamServer* server) {
  if (server->history_size() != 0) {
    return Status::InvalidArgument(
        "RestoreStream needs a freshly constructed server (history must "
        "be empty)");
  }
  if (!recovery.ts_xml.empty() &&
      TagStructureHash(server->tag_structure()) !=
          CanonicalTsHash(recovery.ts_xml)) {
    return Status::InvalidArgument(
        "recovered stream's tag structure differs from the server's");
  }
  // A re-armed generation starts past seq 0: seed the history base so the
  // server's next publish mints recovery.base_seq + records, not 0 —
  // otherwise the WAL (whose next_seq_ is already past it) would silently
  // skip every fresh append.
  if (recovery.base_seq > 0) {
    XCQL_RETURN_NOT_OK(server->SeedHistoryBase(recovery.base_seq));
  }
  for (const WalRecord& rec : recovery.records) {
    frag::WireCodec codec = (rec.flags & kFlagCompressedPayload)
                                ? frag::WireCodec::kTagCompressed
                                : frag::WireCodec::kPlainXml;
    auto fragment =
        frag::DecodeWirePayload(rec.payload, server->tag_structure(), codec);
    if (!fragment.ok()) {
      return Status::Internal(
          "wal poison: record seq " + std::to_string(rec.seq) +
          " does not decode: " + fragment.status().message());
    }
    XCQL_RETURN_NOT_OK(
        server->RestoreHistory(std::move(fragment).MoveValue()));
  }
  return Status::OK();
}

}  // namespace xcql::net
