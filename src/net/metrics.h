// Transport observability: lock-free counters updated by the I/O threads,
// copied out as a plain snapshot for logging, benches and tests.
#ifndef XCQL_NET_METRICS_H_
#define XCQL_NET_METRICS_H_

#include <atomic>
#include <cstdint>

namespace xcql::net {

/// \brief A point-in-time copy of one endpoint's counters. Fields that only
/// make sense on one side stay zero on the other.
struct MetricsSnapshot {
  int64_t frames_out = 0;
  int64_t bytes_out = 0;
  int64_t frames_in = 0;
  int64_t bytes_in = 0;
  int64_t fragments_out = 0;       // FRAGMENT frames published (server)
  int64_t fragments_in = 0;        // FRAGMENT frames decoded (subscriber)
  int64_t queue_depth_hwm = 0;     // deepest any outbound queue ever got
  int64_t drops = 0;               // frames dropped by kDropOldest
  int64_t slow_disconnects = 0;    // connections cut by kDisconnect
  int64_t reconnects = 0;          // successful re-handshakes (subscriber)
  int64_t handshake_failures = 0;
  int64_t replays_served = 0;      // REPLAY_FROM requests honored (server)
  int64_t replays_requested = 0;   // REPLAY_FROM frames sent (subscriber)
  int64_t connections_accepted = 0;
  int64_t connections_active = 0;
  int64_t encode_failures = 0;     // fragments that failed wire encoding
  int64_t repeats_out = 0;         // logged frames re-sent by RepeatFiller
  int64_t gaps_detected = 0;       // seq gaps that forced a reconnect
  int64_t frames_corrupt = 0;      // v2 frames failing their checksum
  int64_t liveness_timeouts = 0;   // recv deadlines that forced a reconnect
  int64_t catchup_replays = 0;     // heartbeat-lag REPLAY_FROMs (subscriber)
  int64_t nacks_sent = 0;          // REPEAT_REQUEST frames sent (subscriber)
  int64_t repeat_requests_in = 0;  // REPEAT_REQUEST frames served (server)
  int64_t fillers_repaired = 0;    // missing fillers recovered via NACK
  int64_t fillers_lost = 0;        // missing fillers past their retry budget
  int64_t poison_quarantined = 0;  // checksum-valid frames whose payload
                                   // failed the codec and were skipped
  int64_t epoch_resets = 0;        // server epoch changed under a resume:
                                   // subscriber restarted from scratch
  int64_t bad_control_frames = 0;  // well-framed client requests whose
                                   // payload didn't decode (dropped, server)
  int64_t wal_append_failures = 0; // published frames the WAL rejected
                                   // (durability degraded, server)
  int64_t queries_registered = 0;  // QUERY frames admitted (server)
  int64_t queries_rejected = 0;    // QUERY frames refused: admission limit,
                                   // bad spec, or unnegotiated channel
  int64_t result_frames_out = 0;   // RESULT frames enqueued to subscribers
  int64_t fragment_encodes = 0;    // distinct wire encodings of published
                                   // fragments — fan-out shares buffers, so
                                   // this tracks publishes, not deliveries
  int64_t frames_filtered = 0;     // FRAGMENT deliveries suppressed by a
                                   // per-tsid subscription filter (server)
  int64_t filtered_bytes_saved = 0;// wire bytes those deliveries would have
                                   // cost
  int64_t skips_out = 0;           // SKIP_TO frames sent (server)
  int64_t skips_in = 0;            // SKIP_TO frames applied (subscriber)
  // --- retention (docs/RETENTION.md) ---
  int64_t retention_runs = 0;      // retention driver passes (server)
  int64_t frames_retired = 0;      // frame-log entries dropped by retention
  int64_t frames_refreshed = 0;    // live snapshot versions re-published at
                                   // the tail to unpin the frame-log head
  int64_t fragments_compacted = 0; // store versions removed by Compact
  int64_t result_log_trimmed = 0;  // RESULT frames dropped by retention
  int64_t expired_out = 0;         // EXPIRED frames sent (server)
  int64_t expired_in = 0;          // EXPIRED frames applied (subscriber)
  int64_t fillers_expired = 0;     // NACKed fillers answered/resolved as
                                   // retention-expired, not lost
  // --- durability self-healing (docs/DURABILITY.md) ---
  int64_t durability_rearms = 0;   // degraded→durable re-arm cycles (server)
  int64_t emergency_retention_runs = 0;  // retention passes forced by the
                                         // soft disk-space watermark
  // Gauges (latest value, not monotone):
  int64_t retention_floor_seq = 0; // oldest retained frame-log seq
  int64_t fragment_store_bytes = 0;  // approx store footprint (server side:
                                     // the query channel's mirror store)
  int64_t frame_log_bytes = 0;       // encoded bytes held by the frame log
  int64_t durability_degraded = 0;   // 1 while appends are volatile
  int64_t degraded_ms_total = 0;     // cumulative wall time spent degraded
  int64_t data_dir_free_bytes = 0;   // last statvfs reading of the data dir
                                     // (-1 = never sampled / unavailable)
};

/// \brief The live counters. Relaxed atomics: each counter is independent
/// and snapshots need no cross-field consistency.
class Metrics {
 public:
  void AddFrameOut(int64_t bytes) {
    frames_out_.fetch_add(1, std::memory_order_relaxed);
    bytes_out_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void AddFrameIn(int64_t bytes) {
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    bytes_in_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void AddFragmentOut() { fragments_out_.fetch_add(1, std::memory_order_relaxed); }
  void AddFragmentIn() { fragments_in_.fetch_add(1, std::memory_order_relaxed); }
  void AddDrop() { drops_.fetch_add(1, std::memory_order_relaxed); }
  void AddSlowDisconnect() {
    slow_disconnects_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddReconnect() { reconnects_.fetch_add(1, std::memory_order_relaxed); }
  void AddHandshakeFailure() {
    handshake_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddReplayServed() {
    replays_served_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddReplayRequested() {
    replays_requested_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddConnectionAccepted() {
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddEncodeFailure() {
    encode_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddRepeatOut() { repeats_out_.fetch_add(1, std::memory_order_relaxed); }
  void AddGapDetected() {
    gaps_detected_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddFrameCorrupt() {
    frames_corrupt_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddLivenessTimeout() {
    liveness_timeouts_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddCatchupReplay() {
    catchup_replays_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddNackSent() { nacks_sent_.fetch_add(1, std::memory_order_relaxed); }
  void AddRepeatRequestIn() {
    repeat_requests_in_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddFillerRepaired() {
    fillers_repaired_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddFillerLost() {
    fillers_lost_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddPoisonQuarantined() {
    poison_quarantined_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddEpochReset() {
    epoch_resets_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddBadControlFrame() {
    bad_control_frames_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddWalAppendFailure() {
    wal_append_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddQueryRegistered() {
    queries_registered_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddQueryRejected() {
    queries_rejected_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddResultFrameOut() {
    result_frames_out_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddFragmentEncode() {
    fragment_encodes_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddFrameFiltered(int64_t bytes_saved) {
    frames_filtered_.fetch_add(1, std::memory_order_relaxed);
    filtered_bytes_saved_.fetch_add(bytes_saved, std::memory_order_relaxed);
  }
  void AddSkipOut() { skips_out_.fetch_add(1, std::memory_order_relaxed); }
  void AddSkipIn() { skips_in_.fetch_add(1, std::memory_order_relaxed); }
  void AddRetentionRun() {
    retention_runs_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddFramesRetired(int64_t n) {
    frames_retired_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddFrameRefreshed() {
    frames_refreshed_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddFragmentsCompacted(int64_t n) {
    fragments_compacted_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddResultLogTrimmed(int64_t n) {
    result_log_trimmed_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddExpiredOut() {
    expired_out_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddExpiredIn() { expired_in_.fetch_add(1, std::memory_order_relaxed); }
  void AddFillerExpired() {
    fillers_expired_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddDurabilityRearm() {
    durability_rearms_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddEmergencyRetentionRun() {
    emergency_retention_runs_.fetch_add(1, std::memory_order_relaxed);
  }
  void SetDurabilityDegraded(bool degraded) {
    durability_degraded_.store(degraded ? 1 : 0, std::memory_order_relaxed);
  }
  void AddDegradedMs(int64_t ms) {
    degraded_ms_total_.fetch_add(ms, std::memory_order_relaxed);
  }
  void SetDataDirFreeBytes(int64_t bytes) {
    data_dir_free_bytes_.store(bytes, std::memory_order_relaxed);
  }
  void SetRetentionFloorSeq(int64_t seq) {
    retention_floor_seq_.store(seq, std::memory_order_relaxed);
  }
  void SetFragmentStoreBytes(int64_t bytes) {
    fragment_store_bytes_.store(bytes, std::memory_order_relaxed);
  }
  void SetFrameLogBytes(int64_t bytes) {
    frame_log_bytes_.store(bytes, std::memory_order_relaxed);
  }
  void ConnectionOpened() {
    connections_active_.fetch_add(1, std::memory_order_relaxed);
  }
  void ConnectionClosed() {
    connections_active_.fetch_sub(1, std::memory_order_relaxed);
  }

  void UpdateQueueHwm(int64_t depth) {
    int64_t cur = queue_depth_hwm_.load(std::memory_order_relaxed);
    while (depth > cur && !queue_depth_hwm_.compare_exchange_weak(
                              cur, depth, std::memory_order_relaxed)) {
    }
  }

  MetricsSnapshot Snapshot() const {
    MetricsSnapshot s;
    s.frames_out = frames_out_.load(std::memory_order_relaxed);
    s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
    s.frames_in = frames_in_.load(std::memory_order_relaxed);
    s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
    s.fragments_out = fragments_out_.load(std::memory_order_relaxed);
    s.fragments_in = fragments_in_.load(std::memory_order_relaxed);
    s.queue_depth_hwm = queue_depth_hwm_.load(std::memory_order_relaxed);
    s.drops = drops_.load(std::memory_order_relaxed);
    s.slow_disconnects = slow_disconnects_.load(std::memory_order_relaxed);
    s.reconnects = reconnects_.load(std::memory_order_relaxed);
    s.handshake_failures =
        handshake_failures_.load(std::memory_order_relaxed);
    s.replays_served = replays_served_.load(std::memory_order_relaxed);
    s.replays_requested =
        replays_requested_.load(std::memory_order_relaxed);
    s.connections_accepted =
        connections_accepted_.load(std::memory_order_relaxed);
    s.connections_active =
        connections_active_.load(std::memory_order_relaxed);
    s.encode_failures = encode_failures_.load(std::memory_order_relaxed);
    s.repeats_out = repeats_out_.load(std::memory_order_relaxed);
    s.gaps_detected = gaps_detected_.load(std::memory_order_relaxed);
    s.frames_corrupt = frames_corrupt_.load(std::memory_order_relaxed);
    s.liveness_timeouts = liveness_timeouts_.load(std::memory_order_relaxed);
    s.catchup_replays = catchup_replays_.load(std::memory_order_relaxed);
    s.nacks_sent = nacks_sent_.load(std::memory_order_relaxed);
    s.repeat_requests_in =
        repeat_requests_in_.load(std::memory_order_relaxed);
    s.fillers_repaired = fillers_repaired_.load(std::memory_order_relaxed);
    s.fillers_lost = fillers_lost_.load(std::memory_order_relaxed);
    s.poison_quarantined =
        poison_quarantined_.load(std::memory_order_relaxed);
    s.epoch_resets = epoch_resets_.load(std::memory_order_relaxed);
    s.bad_control_frames =
        bad_control_frames_.load(std::memory_order_relaxed);
    s.wal_append_failures =
        wal_append_failures_.load(std::memory_order_relaxed);
    s.queries_registered =
        queries_registered_.load(std::memory_order_relaxed);
    s.queries_rejected = queries_rejected_.load(std::memory_order_relaxed);
    s.result_frames_out =
        result_frames_out_.load(std::memory_order_relaxed);
    s.fragment_encodes = fragment_encodes_.load(std::memory_order_relaxed);
    s.frames_filtered = frames_filtered_.load(std::memory_order_relaxed);
    s.filtered_bytes_saved =
        filtered_bytes_saved_.load(std::memory_order_relaxed);
    s.skips_out = skips_out_.load(std::memory_order_relaxed);
    s.skips_in = skips_in_.load(std::memory_order_relaxed);
    s.retention_runs = retention_runs_.load(std::memory_order_relaxed);
    s.frames_retired = frames_retired_.load(std::memory_order_relaxed);
    s.frames_refreshed = frames_refreshed_.load(std::memory_order_relaxed);
    s.fragments_compacted =
        fragments_compacted_.load(std::memory_order_relaxed);
    s.result_log_trimmed =
        result_log_trimmed_.load(std::memory_order_relaxed);
    s.expired_out = expired_out_.load(std::memory_order_relaxed);
    s.expired_in = expired_in_.load(std::memory_order_relaxed);
    s.fillers_expired = fillers_expired_.load(std::memory_order_relaxed);
    s.durability_rearms =
        durability_rearms_.load(std::memory_order_relaxed);
    s.emergency_retention_runs =
        emergency_retention_runs_.load(std::memory_order_relaxed);
    s.durability_degraded =
        durability_degraded_.load(std::memory_order_relaxed);
    s.degraded_ms_total =
        degraded_ms_total_.load(std::memory_order_relaxed);
    s.data_dir_free_bytes =
        data_dir_free_bytes_.load(std::memory_order_relaxed);
    s.retention_floor_seq =
        retention_floor_seq_.load(std::memory_order_relaxed);
    s.fragment_store_bytes =
        fragment_store_bytes_.load(std::memory_order_relaxed);
    s.frame_log_bytes = frame_log_bytes_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::atomic<int64_t> frames_out_{0}, bytes_out_{0};
  std::atomic<int64_t> frames_in_{0}, bytes_in_{0};
  std::atomic<int64_t> fragments_out_{0}, fragments_in_{0};
  std::atomic<int64_t> queue_depth_hwm_{0}, drops_{0}, slow_disconnects_{0};
  std::atomic<int64_t> reconnects_{0}, handshake_failures_{0};
  std::atomic<int64_t> replays_served_{0}, replays_requested_{0};
  std::atomic<int64_t> connections_accepted_{0}, connections_active_{0};
  std::atomic<int64_t> encode_failures_{0};
  std::atomic<int64_t> repeats_out_{0}, gaps_detected_{0};
  std::atomic<int64_t> frames_corrupt_{0}, liveness_timeouts_{0};
  std::atomic<int64_t> catchup_replays_{0}, nacks_sent_{0};
  std::atomic<int64_t> repeat_requests_in_{0};
  std::atomic<int64_t> fillers_repaired_{0}, fillers_lost_{0};
  std::atomic<int64_t> poison_quarantined_{0};
  std::atomic<int64_t> epoch_resets_{0}, bad_control_frames_{0};
  std::atomic<int64_t> wal_append_failures_{0};
  std::atomic<int64_t> queries_registered_{0}, queries_rejected_{0};
  std::atomic<int64_t> result_frames_out_{0};
  std::atomic<int64_t> fragment_encodes_{0};
  std::atomic<int64_t> frames_filtered_{0}, filtered_bytes_saved_{0};
  std::atomic<int64_t> skips_out_{0}, skips_in_{0};
  std::atomic<int64_t> retention_runs_{0}, frames_retired_{0};
  std::atomic<int64_t> frames_refreshed_{0};
  std::atomic<int64_t> fragments_compacted_{0}, result_log_trimmed_{0};
  std::atomic<int64_t> expired_out_{0}, expired_in_{0};
  std::atomic<int64_t> fillers_expired_{0};
  std::atomic<int64_t> durability_rearms_{0};
  std::atomic<int64_t> emergency_retention_runs_{0};
  std::atomic<int64_t> durability_degraded_{0};
  std::atomic<int64_t> degraded_ms_total_{0};
  std::atomic<int64_t> data_dir_free_bytes_{-1};
  std::atomic<int64_t> retention_floor_seq_{0};
  std::atomic<int64_t> fragment_store_bytes_{0}, frame_log_bytes_{0};
};

}  // namespace xcql::net

#endif  // XCQL_NET_METRICS_H_
