// The wire protocol of the fragment transport: length-prefixed binary
// frames carrying control messages and serialized fragments.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//        0     4  magic  "XFRM"
//        4     1  version (1 or 2, see below)
//        5     1  type    (FrameType)
//        6     1  flags   (kFlagCompressedPayload: payload is the §4.1
//                          tag-compressed form instead of plain XML;
//                          kFlagRepeat: retransmission of a logged frame,
//                          sent by the repeat/NACK machinery)
//        7     1  reserved, must be 0
//        8     8  seq     (per-stream monotonic sequence number; fragment
//                          frames carry their 0-based publish position,
//                          heartbeats the count of frames published so far)
//       16     4  payload length
//   [v2] 20     4  CRC32C over bytes [4, 20) + payload (Castagnoli,
//                  reflected, init/xorout 0xFFFFFFFF). v1 has no checksum.
//    20/24    n  payload
//
// Version negotiation: HELLO frames are always encoded as v1 (so a peer of
// either vintage can parse them) and advertise checksum support with the
// kHelloFlagCrcFrames frame-flag bit. When both sides set the bit, all
// subsequent frames on the connection are v2; otherwise everything stays
// v1. Old peers send flags=0 and ignore unknown flag bits, so they
// interoperate unchanged. The REPEAT_REQUEST frame type likewise exists
// only on negotiated-v2 connections (an old decoder rejects it fatally).
//
// Conversation: the subscriber opens with HELLO (stream name, desired
// codec, known tag-structure hash or 0), the server answers with HELLO
// (accepted codec, its hash, and the Tag Structure XML so a cold client
// can decode without out-of-band schema exchange), the subscriber then
// sends REPLAY_FROM(last seen seq; -1 for everything) and receives the
// replayed history followed by live FRAGMENT frames. HEARTBEATs flow
// server→client on idle; BYE announces an orderly close in either
// direction. REPEAT_REQUEST(filler id) flows client→server to NACK a
// missing filler: the server re-sends every logged frame of that filler
// with its original seq and kFlagRepeat set.
//
// Protocol v3 — the remote query channel. A client that sets
// kHelloFlagQueryChannel in its HELLO (and sees the server echo it back)
// may send QUERY frames: XCQL text plus ExecMethod / HolePolicy /
// TickPolicy options and a resume position. The server registers the
// query in its incremental engine and answers with QUERY_STATUS (token
// echoed, assigned query id, or a rejection code + message). From then
// on every engine tick's delta for that query arrives as a RESULT frame:
// frame.seq is a per-query result sequence number with the same
// contiguity / REPLAY_FROM-style resume / epoch-reset semantics as
// fragment seqs (the resume point travels inside the QUERY frame rather
// than in REPLAY_FROM, which stays scoped to the fragment log). UNQUERY
// deregisters; the server confirms with QUERY_STATUS. Downgrade rule:
// old peers ignore unknown HELLO flag bits, so the channel silently
// negotiates away — query frames never flow to a peer that did not echo
// the bit, and the v3 frame types (7–10) are never emitted on such a
// connection (an old decoder rejects them fatally, like REPEAT_REQUEST
// on v1).
//
// Per-tsid subscription filters (v3 extension). A client that sets
// kHelloFlagTsidFilter (and sees it echoed) may send a SUBSCRIBE frame
// naming tag-structure ids; the server expands each id to its schema
// subtree closure and from then on delivers only FRAGMENT frames whose
// tsid falls inside the closure. Filtered-out seqs would look like gaps
// to the subscriber's contiguous-prefix tracking, so the server covers
// every skipped run with a SKIP_TO frame (seq = the highest seq of the
// run, payload = the first): the subscriber advances its contiguous
// prefix over the run without receiving the data. Carrying the run start
// keeps skips gap-checkable: a SKIP_TO whose start is not exactly
// last_seq+1 was reordered or preceded by loss, and the subscriber cuts
// the session and replays rather than silently jumping past deliverable
// frames. SKIP_TO is emitted before the next delivered frame and flushed
// on the heartbeat cadence, so a filtered subscriber's last_seq keeps
// tracking the stream head. SUBSCRIBE is
// per-session state: the subscriber re-sends it after every handshake,
// before REPLAY_FROM, so replays are filtered too. An empty SUBSCRIBE
// clears the filter. The server can also derive a filter itself: a QUERY
// carrying kQueryFlagAutoFilter has its relevance analyzed
// (lang::AnalyzeRelevance) and the touched subtree closure unioned into
// the connection's filter (an unbounded query disables filtering). NACK
// repair (REPEAT_REQUEST) bypasses the filter: an explicitly requested
// filler is always re-sent.
#ifndef XCQL_NET_FRAME_H_
#define XCQL_NET_FRAME_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "frag/codec.h"
#include "frag/tag_structure.h"

namespace xcql::net {

inline constexpr uint32_t kFrameMagic = 0x4D52'4658;  // "XFRM" on the wire
inline constexpr uint8_t kFrameVersion = 1;
inline constexpr uint8_t kFrameVersionCrc = 2;
inline constexpr size_t kFrameHeaderSize = 20;
inline constexpr size_t kFrameHeaderSizeCrc = 24;
inline constexpr uint8_t kFlagCompressedPayload = 0x01;
inline constexpr uint8_t kFlagRepeat = 0x02;
/// HELLO frame-flag bit: "I can speak the v2 (checksummed) frame format".
inline constexpr uint8_t kHelloFlagCrcFrames = 0x02;
/// HELLO frame-flag bit: "I speak the v3 remote-query channel". The
/// client advertises it; the server echoes it back only when a query
/// channel is actually attached, so both sides know whether QUERY /
/// RESULT frames may flow on this connection.
inline constexpr uint8_t kHelloFlagQueryChannel = 0x04;
/// HELLO frame-flag bit: "I speak per-tsid subscription filters"
/// (SUBSCRIBE / SKIP_TO frames). Client advertises, server echoes when it
/// supports filtering; neither frame type flows unless both bits met.
inline constexpr uint8_t kHelloFlagTsidFilter = 0x08;
/// HELLO frame-flag bit: "I understand retention (EXPIRED frames)". The
/// client advertises it; the server echoes it back only when a retention
/// policy is active. A subscriber that did not negotiate the bit and asks
/// to resume below the retention floor gets a clean BYE instead of a
/// frame type it would reject fatally.
inline constexpr uint8_t kHelloFlagRetention = 0x10;
// Sanity bound: a received frame larger than this is treated as stream
// corruption, and EncodeFrame refuses to produce one. Tied to the codec
// layer's publish-time limit so an accepted fragment always frames.
inline constexpr uint32_t kMaxFramePayload =
    static_cast<uint32_t>(frag::kMaxWirePayload);
static_assert(frag::kMaxWirePayload < (1ull << 32),
              "wire payload limit must fit the 32-bit frame length field");

enum class FrameType : uint8_t {
  kHello = 1,
  kFragment = 2,
  kHeartbeat = 3,
  kReplayFrom = 4,
  kBye = 5,
  kRepeatRequest = 6,  // v2-only: NACK for a missing filler id
  kQuery = 7,          // v3: register a continuous query (client→server)
  kUnquery = 8,        // v3: deregister a query (client→server)
  kResult = 9,         // v3: one tick's result delta (server→client)
  kQueryStatus = 10,   // v3: QUERY/UNQUERY ack or rejection (server→client)
  kSkipTo = 11,        // v3 filters: advance the contiguous prefix to seq
                       // without data (everything skipped was filtered
                       // out; payload = first seq of the skipped run)
  kSubscribe = 12,     // v3 filters: set/replace this connection's tsid
                       // filter (client→server; empty = deliver everything)
  kExpired = 13,       // retention: a seq range / filler / result range
                       // was aged out on purpose (server→client; flows
                       // only after kHelloFlagRetention is negotiated)
};

const char* FrameTypeName(FrameType type);

/// \brief One decoded frame.
struct Frame {
  FrameType type = FrameType::kHeartbeat;
  uint8_t flags = 0;
  uint64_t seq = 0;
  std::string payload;
  /// False when a v2 frame failed its checksum. The frame was framed well
  /// enough to skip (magic + length held up) but every other field is
  /// untrusted: type/flags are zeroed, the payload is empty, and seq holds
  /// the wire value for logging only.
  bool crc_ok = true;
  /// Wire version the frame arrived in (kFrameVersion or kFrameVersionCrc).
  uint8_t wire_version = kFrameVersion;
};

/// \brief Serializes header + payload in the given wire version. Fails on
/// a payload larger than kMaxFramePayload — the decoder is guaranteed to
/// reject such a frame as stream corruption, so it must never reach the
/// wire (or the frame log).
Result<std::string> EncodeFrame(const Frame& frame,
                                uint8_t version = kFrameVersionCrc);

/// \brief CRC32C (Castagnoli) of `data`; software table implementation.
uint32_t Crc32c(std::string_view data);

/// \brief Transcodes a well-formed v2-encoded frame to v1 by dropping the
/// checksum field (for peers that did not negotiate v2). v1 input is
/// returned unchanged.
std::string DowngradeFrameToV1(std::string_view frame_bytes);

/// \brief Returns `frame_bytes` with kFlagRepeat set in the flags byte,
/// recomputing the v2 checksum when present. Input must be a well-formed
/// encoded frame (it comes from the server's own log).
std::string WithRepeatFlag(std::string frame_bytes);

/// \brief Incremental decoder over a TCP byte stream: Feed() whatever
/// arrived, then pop complete frames with Next(). Accepts v1 and v2
/// frames interleaved; a v2 frame whose checksum does not match is
/// returned with crc_ok=false rather than failing the stream (the frame
/// boundary itself held up, so the decoder can resync on the next frame).
class FrameReader {
 public:
  void Feed(const char* data, size_t len);

  /// \brief The next complete frame, std::nullopt when more bytes are
  /// needed, or a Status on malformed input (bad magic, unknown version,
  /// oversized payload) — after which the stream is unusable.
  Result<std::optional<Frame>> Next();

  size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  size_t pos_ = 0;
};

/// \brief HELLO payload, used in both directions (tag_structure_xml is
/// filled only server→client).
struct Hello {
  std::string stream_name;
  frag::WireCodec codec = frag::WireCodec::kPlainXml;
  uint64_t ts_hash = 0;  // 0 = unknown, ask the server
  std::string tag_structure_xml;
};

std::string EncodeHello(const Hello& hello);
Result<Hello> DecodeHello(std::string_view payload);

/// \brief REPLAY_FROM payload: the last sequence number the subscriber has
/// (-1 = replay everything).
std::string EncodeReplayFrom(int64_t last_seen_seq);
Result<int64_t> DecodeReplayFrom(std::string_view payload);

/// \brief REPEAT_REQUEST payload: the filler id being NACKed, plus the
/// validTimes (epoch seconds) of the versions the subscriber already
/// holds, so the server re-sends only the missing versions of a
/// partially-delivered filler instead of all of them.
///
/// Wire form: u64 filler id [, u32 count, count × u64 validTime]. The
/// bare 8-byte form — an older subscriber, or a fully-missing filler —
/// decodes with an empty list, which means "send every version".
struct RepeatRequest {
  int64_t filler_id = 0;
  std::vector<int64_t> have_valid_times;
};

std::string EncodeRepeatRequest(const RepeatRequest& request);
/// \brief The all-versions NACK (no held versions), wire-compatible with
/// pre-versioned peers.
std::string EncodeRepeatRequest(int64_t filler_id);
Result<RepeatRequest> DecodeRepeatRequest(std::string_view payload);

/// \brief SUBSCRIBE payload: the tag-structure ids this connection wants
/// (u32 count, count × u32 id). The server expands each id to its subtree
/// closure; an empty list clears the filter.
std::string EncodeSubscribe(const std::vector<int>& tsids);
Result<std::vector<int>> DecodeSubscribe(std::string_view payload);

/// \brief SKIP_TO payload: the first skipped sequence number of the run
/// (the header seq carries the last). The subscriber admits a skip only
/// when the run starts exactly at its contiguous prefix + 1 — anything
/// else is a reorder or a loss, handled like a data-frame gap.
std::string EncodeSkipTo(int64_t first_skipped_seq);
Result<int64_t> DecodeSkipTo(std::string_view payload);

/// QUERY option-flag bits. The two filler-lookup bits form a tri-state
/// (neither set = the engine default): kQueryFlagPaperFaithful pins the
/// paper's linear filler[@id=$fid] scan, kQueryFlagIndexedFillers pins the
/// indexed lookup. kQueryFlagNoDedup disables the engine's per-query
/// result dedup (every evaluation re-reports its full result).
inline constexpr uint8_t kQueryFlagPaperFaithful = 0x01;
inline constexpr uint8_t kQueryFlagIndexedFillers = 0x02;
inline constexpr uint8_t kQueryFlagNoDedup = 0x04;
/// Full diff mode: RESULT frames report items leaving the result in
/// `removed` (see ContinuousQueryOptions::track_removals).
inline constexpr uint8_t kQueryFlagTrackRemovals = 0x08;
/// Ask the server to derive a per-tsid filter from this query: its
/// relevance is analyzed and the touched subtree closure is unioned into
/// the connection's subscription filter. Transport-level — the server
/// strips the bit before engine registration, so two otherwise-identical
/// queries still share one engine registration.
inline constexpr uint8_t kQueryFlagAutoFilter = 0x10;

/// \brief QUERY payload: everything the server needs to register the
/// query in its engine, plus a resume position for reconnects. The enum
/// fields travel as raw bytes so the codec stays free of engine headers;
/// the query channel validates and converts them on admission.
struct RemoteQuerySpec {
  /// Client-chosen correlation token, echoed verbatim in QUERY_STATUS so
  /// the subscriber can match acks to in-flight registrations.
  uint32_t token = 0;
  uint8_t method = 0;       // lang::ExecMethod
  uint8_t hole_policy = 0;  // xq::HolePolicy
  uint8_t tick_policy = 0;  // stream::TickPolicy
  uint8_t flags = 0;        // kQueryFlag* bits
  /// Last result seq the client already holds for this query (-1 = send
  /// the result stream from the beginning).
  int64_t last_result_seq = -1;
  std::string text;  // XCQL source
};

std::string EncodeQuery(const RemoteQuerySpec& spec);
Result<RemoteQuerySpec> DecodeQuery(std::string_view payload);

/// \brief UNQUERY payload: the server-assigned query id to deregister.
std::string EncodeUnquery(uint64_t query_id);
Result<uint64_t> DecodeUnquery(std::string_view payload);

/// \brief QUERY_STATUS payload: the server's answer to QUERY or UNQUERY.
/// code 0 = accepted (query_id assigned); nonzero = rejected (query_id 0,
/// message says why — admission limit, parse error, bad option byte…).
struct QueryStatus {
  uint32_t token = 0;
  uint64_t query_id = 0;
  uint32_t code = 0;
  std::string message;
};

/// QUERY_STATUS codes (u32 on the wire; room for per-layer growth).
inline constexpr uint32_t kQueryStatusOk = 0;
inline constexpr uint32_t kQueryStatusRejected = 1;   // admission limit
inline constexpr uint32_t kQueryStatusInvalid = 2;    // bad spec/XCQL
inline constexpr uint32_t kQueryStatusUnknownId = 3;  // UNQUERY miss

std::string EncodeQueryStatus(const QueryStatus& status);
Result<QueryStatus> DecodeQueryStatus(std::string_view payload);

/// \brief RESULT payload: one engine tick's delta for one query. `added`
/// and `removed` carry serialized result items (the engine's canonical
/// rendering); frame.seq carries the per-query result sequence number.
struct ResultDelta {
  uint64_t query_id = 0;
  int64_t eval_time_s = 0;  // clock position of the tick (epoch seconds)
  std::vector<std::string> added;
  std::vector<std::string> removed;
};

Result<std::string> EncodeResultDelta(const ResultDelta& delta);
Result<ResultDelta> DecodeResultDelta(std::string_view payload);

/// \brief EXPIRED payload (retention, docs/RETENTION.md). Three kinds:
///  - kRange: frame-log seqs [first_seq, header seq] were trimmed below
///    the retention floor (a WAL checkpoint covers them on disk). Emitted
///    at the head of a replay that starts below the floor, and
///    gap-checked exactly like SKIP_TO: the run must continue the
///    subscriber's contiguous prefix or the session is cut.
///  - kFiller: answer to a REPEAT_REQUEST whose filler was compacted —
///    the subscriber marks the repair expired (not lost) and stops
///    NACKing it.
///  - kResultRange: result-log seqs [first_seq, header seq] of query_id
///    were trimmed; the subscriber advances that query's contiguous
///    result seq over the run without data.
///
/// Wire form: u8 kind, then kRange: u64 first_seq; kFiller: u64 filler
/// id; kResultRange: u64 query_id, u64 first_seq.
struct Expired {
  enum Kind : uint8_t { kRange = 0, kFiller = 1, kResultRange = 2 };
  uint8_t kind = kRange;
  int64_t first_seq = 0;   // kRange / kResultRange
  int64_t filler_id = 0;   // kFiller
  uint64_t query_id = 0;   // kResultRange
};

std::string EncodeExpired(const Expired& expired);
Result<Expired> DecodeExpired(std::string_view payload);

/// \brief FNV-1a over the Tag Structure's canonical XML form; both ends
/// compare hashes at HELLO to verify they hold the same schema.
uint64_t TagStructureHash(const frag::TagStructure& ts);
uint64_t TagStructureHash(std::string_view ts_xml);

}  // namespace xcql::net

#endif  // XCQL_NET_FRAME_H_
