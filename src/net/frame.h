// The wire protocol of the fragment transport: length-prefixed binary
// frames carrying control messages and serialized fragments.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//        0     4  magic  "XFRM"
//        4     1  version (1 or 2, see below)
//        5     1  type    (FrameType)
//        6     1  flags   (kFlagCompressedPayload: payload is the §4.1
//                          tag-compressed form instead of plain XML;
//                          kFlagRepeat: retransmission of a logged frame,
//                          sent by the repeat/NACK machinery)
//        7     1  reserved, must be 0
//        8     8  seq     (per-stream monotonic sequence number; fragment
//                          frames carry their 0-based publish position,
//                          heartbeats the count of frames published so far)
//       16     4  payload length
//   [v2] 20     4  CRC32C over bytes [4, 20) + payload (Castagnoli,
//                  reflected, init/xorout 0xFFFFFFFF). v1 has no checksum.
//    20/24    n  payload
//
// Version negotiation: HELLO frames are always encoded as v1 (so a peer of
// either vintage can parse them) and advertise checksum support with the
// kHelloFlagCrcFrames frame-flag bit. When both sides set the bit, all
// subsequent frames on the connection are v2; otherwise everything stays
// v1. Old peers send flags=0 and ignore unknown flag bits, so they
// interoperate unchanged. The REPEAT_REQUEST frame type likewise exists
// only on negotiated-v2 connections (an old decoder rejects it fatally).
//
// Conversation: the subscriber opens with HELLO (stream name, desired
// codec, known tag-structure hash or 0), the server answers with HELLO
// (accepted codec, its hash, and the Tag Structure XML so a cold client
// can decode without out-of-band schema exchange), the subscriber then
// sends REPLAY_FROM(last seen seq; -1 for everything) and receives the
// replayed history followed by live FRAGMENT frames. HEARTBEATs flow
// server→client on idle; BYE announces an orderly close in either
// direction. REPEAT_REQUEST(filler id) flows client→server to NACK a
// missing filler: the server re-sends every logged frame of that filler
// with its original seq and kFlagRepeat set.
#ifndef XCQL_NET_FRAME_H_
#define XCQL_NET_FRAME_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "frag/codec.h"
#include "frag/tag_structure.h"

namespace xcql::net {

inline constexpr uint32_t kFrameMagic = 0x4D52'4658;  // "XFRM" on the wire
inline constexpr uint8_t kFrameVersion = 1;
inline constexpr uint8_t kFrameVersionCrc = 2;
inline constexpr size_t kFrameHeaderSize = 20;
inline constexpr size_t kFrameHeaderSizeCrc = 24;
inline constexpr uint8_t kFlagCompressedPayload = 0x01;
inline constexpr uint8_t kFlagRepeat = 0x02;
/// HELLO frame-flag bit: "I can speak the v2 (checksummed) frame format".
inline constexpr uint8_t kHelloFlagCrcFrames = 0x02;
// Sanity bound: a received frame larger than this is treated as stream
// corruption, and EncodeFrame refuses to produce one. Tied to the codec
// layer's publish-time limit so an accepted fragment always frames.
inline constexpr uint32_t kMaxFramePayload =
    static_cast<uint32_t>(frag::kMaxWirePayload);
static_assert(frag::kMaxWirePayload < (1ull << 32),
              "wire payload limit must fit the 32-bit frame length field");

enum class FrameType : uint8_t {
  kHello = 1,
  kFragment = 2,
  kHeartbeat = 3,
  kReplayFrom = 4,
  kBye = 5,
  kRepeatRequest = 6,  // v2-only: NACK for a missing filler id
};

const char* FrameTypeName(FrameType type);

/// \brief One decoded frame.
struct Frame {
  FrameType type = FrameType::kHeartbeat;
  uint8_t flags = 0;
  uint64_t seq = 0;
  std::string payload;
  /// False when a v2 frame failed its checksum. The frame was framed well
  /// enough to skip (magic + length held up) but every other field is
  /// untrusted: type/flags are zeroed, the payload is empty, and seq holds
  /// the wire value for logging only.
  bool crc_ok = true;
  /// Wire version the frame arrived in (kFrameVersion or kFrameVersionCrc).
  uint8_t wire_version = kFrameVersion;
};

/// \brief Serializes header + payload in the given wire version. Fails on
/// a payload larger than kMaxFramePayload — the decoder is guaranteed to
/// reject such a frame as stream corruption, so it must never reach the
/// wire (or the frame log).
Result<std::string> EncodeFrame(const Frame& frame,
                                uint8_t version = kFrameVersionCrc);

/// \brief CRC32C (Castagnoli) of `data`; software table implementation.
uint32_t Crc32c(std::string_view data);

/// \brief Transcodes a well-formed v2-encoded frame to v1 by dropping the
/// checksum field (for peers that did not negotiate v2). v1 input is
/// returned unchanged.
std::string DowngradeFrameToV1(std::string_view frame_bytes);

/// \brief Returns `frame_bytes` with kFlagRepeat set in the flags byte,
/// recomputing the v2 checksum when present. Input must be a well-formed
/// encoded frame (it comes from the server's own log).
std::string WithRepeatFlag(std::string frame_bytes);

/// \brief Incremental decoder over a TCP byte stream: Feed() whatever
/// arrived, then pop complete frames with Next(). Accepts v1 and v2
/// frames interleaved; a v2 frame whose checksum does not match is
/// returned with crc_ok=false rather than failing the stream (the frame
/// boundary itself held up, so the decoder can resync on the next frame).
class FrameReader {
 public:
  void Feed(const char* data, size_t len);

  /// \brief The next complete frame, std::nullopt when more bytes are
  /// needed, or a Status on malformed input (bad magic, unknown version,
  /// oversized payload) — after which the stream is unusable.
  Result<std::optional<Frame>> Next();

  size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  size_t pos_ = 0;
};

/// \brief HELLO payload, used in both directions (tag_structure_xml is
/// filled only server→client).
struct Hello {
  std::string stream_name;
  frag::WireCodec codec = frag::WireCodec::kPlainXml;
  uint64_t ts_hash = 0;  // 0 = unknown, ask the server
  std::string tag_structure_xml;
};

std::string EncodeHello(const Hello& hello);
Result<Hello> DecodeHello(std::string_view payload);

/// \brief REPLAY_FROM payload: the last sequence number the subscriber has
/// (-1 = replay everything).
std::string EncodeReplayFrom(int64_t last_seen_seq);
Result<int64_t> DecodeReplayFrom(std::string_view payload);

/// \brief REPEAT_REQUEST payload: the filler id being NACKed, plus the
/// validTimes (epoch seconds) of the versions the subscriber already
/// holds, so the server re-sends only the missing versions of a
/// partially-delivered filler instead of all of them.
///
/// Wire form: u64 filler id [, u32 count, count × u64 validTime]. The
/// bare 8-byte form — an older subscriber, or a fully-missing filler —
/// decodes with an empty list, which means "send every version".
struct RepeatRequest {
  int64_t filler_id = 0;
  std::vector<int64_t> have_valid_times;
};

std::string EncodeRepeatRequest(const RepeatRequest& request);
/// \brief The all-versions NACK (no held versions), wire-compatible with
/// pre-versioned peers.
std::string EncodeRepeatRequest(int64_t filler_id);
Result<RepeatRequest> DecodeRepeatRequest(std::string_view payload);

/// \brief FNV-1a over the Tag Structure's canonical XML form; both ends
/// compare hashes at HELLO to verify they hold the same schema.
uint64_t TagStructureHash(const frag::TagStructure& ts);
uint64_t TagStructureHash(std::string_view ts_xml);

}  // namespace xcql::net

#endif  // XCQL_NET_FRAME_H_
