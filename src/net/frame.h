// The wire protocol of the fragment transport: length-prefixed binary
// frames carrying control messages and serialized fragments.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//        0     4  magic  "XFRM"
//        4     1  version (kFrameVersion)
//        5     1  type    (FrameType)
//        6     1  flags   (kFlagCompressedPayload: payload is the §4.1
//                          tag-compressed form instead of plain XML)
//        7     1  reserved, must be 0
//        8     8  seq     (per-stream monotonic sequence number; fragment
//                          frames carry their 0-based publish position,
//                          heartbeats the count of frames published so far)
//       16     4  payload length
//       20     n  payload
//
// Conversation: the subscriber opens with HELLO (stream name, desired
// codec, known tag-structure hash or 0), the server answers with HELLO
// (accepted codec, its hash, and the Tag Structure XML so a cold client
// can decode without out-of-band schema exchange), the subscriber then
// sends REPLAY_FROM(last seen seq; -1 for everything) and receives the
// replayed history followed by live FRAGMENT frames. HEARTBEATs flow
// server→client on idle; BYE announces an orderly close in either
// direction.
#ifndef XCQL_NET_FRAME_H_
#define XCQL_NET_FRAME_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "frag/codec.h"
#include "frag/tag_structure.h"

namespace xcql::net {

inline constexpr uint32_t kFrameMagic = 0x4D52'4658;  // "XFRM" on the wire
inline constexpr uint8_t kFrameVersion = 1;
inline constexpr size_t kFrameHeaderSize = 20;
inline constexpr uint8_t kFlagCompressedPayload = 0x01;
// Sanity bound: a received frame larger than this is treated as stream
// corruption, and EncodeFrame refuses to produce one. Tied to the codec
// layer's publish-time limit so an accepted fragment always frames.
inline constexpr uint32_t kMaxFramePayload =
    static_cast<uint32_t>(frag::kMaxWirePayload);
static_assert(frag::kMaxWirePayload < (1ull << 32),
              "wire payload limit must fit the 32-bit frame length field");

enum class FrameType : uint8_t {
  kHello = 1,
  kFragment = 2,
  kHeartbeat = 3,
  kReplayFrom = 4,
  kBye = 5,
};

const char* FrameTypeName(FrameType type);

/// \brief One decoded frame.
struct Frame {
  FrameType type = FrameType::kHeartbeat;
  uint8_t flags = 0;
  uint64_t seq = 0;
  std::string payload;
};

/// \brief Serializes header + payload. Fails on a payload larger than
/// kMaxFramePayload — the decoder is guaranteed to reject such a frame as
/// stream corruption, so it must never reach the wire (or the frame log).
Result<std::string> EncodeFrame(const Frame& frame);

/// \brief Incremental decoder over a TCP byte stream: Feed() whatever
/// arrived, then pop complete frames with Next().
class FrameReader {
 public:
  void Feed(const char* data, size_t len);

  /// \brief The next complete frame, std::nullopt when more bytes are
  /// needed, or a Status on malformed input (bad magic, unknown version,
  /// oversized payload) — after which the stream is unusable.
  Result<std::optional<Frame>> Next();

  size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  size_t pos_ = 0;
};

/// \brief HELLO payload, used in both directions (tag_structure_xml is
/// filled only server→client).
struct Hello {
  std::string stream_name;
  frag::WireCodec codec = frag::WireCodec::kPlainXml;
  uint64_t ts_hash = 0;  // 0 = unknown, ask the server
  std::string tag_structure_xml;
};

std::string EncodeHello(const Hello& hello);
Result<Hello> DecodeHello(std::string_view payload);

/// \brief REPLAY_FROM payload: the last sequence number the subscriber has
/// (-1 = replay everything).
std::string EncodeReplayFrom(int64_t last_seen_seq);
Result<int64_t> DecodeReplayFrom(std::string_view payload);

/// \brief FNV-1a over the Tag Structure's canonical XML form; both ends
/// compare hashes at HELLO to verify they hold the same schema.
uint64_t TagStructureHash(const frag::TagStructure& ts);
uint64_t TagStructureHash(std::string_view ts_xml);

}  // namespace xcql::net

#endif  // XCQL_NET_FRAME_H_
