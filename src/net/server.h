// net::FragmentServer — the networked face of a stream::StreamServer.
//
// The server registers itself as one more StreamClient on the in-process
// multicast, encodes every published fragment once per supported codec into
// an append-only frame log (seq = publish position), and fans frames out to
// any number of TCP subscribers. Each connection owns a bounded outbound
// queue drained by a dedicated writer thread, so one stalled consumer
// cannot stall the publisher or its peers; what happens when a queue fills
// is the configurable SlowConsumerPolicy. Late subscribers and resuming
// subscribers catch up from the frame log via REPLAY_FROM.
//
// Threading: all socket work happens on threads owned by this class. The
// core engine stays single-threaded — Start(), Stop() and the publishes
// that reach OnFragment() must come from the same (publisher) thread.
#ifndef XCQL_NET_SERVER_H_
#define XCQL_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "net/frame.h"
#include "net/metrics.h"
#include "net/socket.h"
#include "stream/transport.h"

namespace xcql::net {

/// \brief What to do when a subscriber's outbound queue is full.
enum class SlowConsumerPolicy {
  kBlock,       // publisher waits for space (lossless, stalls the stream)
  kDropOldest,  // evict the oldest queued frame, counting the drop; the
                // subscriber can recover the gap later via REPLAY_FROM
  kDisconnect,  // cut the connection; the subscriber's reconnect+replay
                // machinery refetches what it missed
};

class Wal;
class QueryChannel;

struct FragmentServerOptions {
  uint16_t port = 0;  // 0 = pick an ephemeral port (see port())
  size_t queue_capacity = 1024;  // outbound frames per connection
  SlowConsumerPolicy slow_consumer = SlowConsumerPolicy::kBlock;
  std::chrono::milliseconds heartbeat_interval{1000};
  /// Durability: every published frame is appended here *before* any
  /// subscriber sees it, so with FsyncPolicy::kAlways no subscriber can
  /// ever be ahead of what a restart recovers. Not owned; must outlive
  /// the server. The WAL's epoch rides in the HELLO ack so resuming
  /// subscribers detect a reset data dir. If an append ever fails, the
  /// server keeps delivering but retires the durable epoch (minting a
  /// volatile one and restarting every subscriber) so no resume point
  /// outlives the process — see FragmentServer::DegradeDurability.
  /// nullptr = in-memory only.
  Wal* wal = nullptr;
  /// Remote query channel (protocol v3): fed every log-appended fragment
  /// and serving QUERY/UNQUERY registrations, with RESULT frames fanned
  /// out through the same per-connection queues as fragments. Not owned;
  /// must outlive the server. nullptr = queries are not offered (the
  /// HELLO ack never echoes kHelloFlagQueryChannel, so v3 frames never
  /// flow).
  QueryChannel* query_channel = nullptr;
  /// Admission limit: active query subscriptions per connection
  /// (<= 0 = unlimited). The channel-wide cap lives in
  /// QueryChannelOptions::max_queries.
  int max_queries_per_conn = 8;
};

/// \brief Per-connection counters, exposed so tests and tools can verify
/// the conservation law enqueued == sent + dropped + queue_depth.
struct ConnectionStats {
  int64_t enqueued = 0;
  int64_t sent = 0;
  int64_t dropped = 0;
  int64_t queue_depth = 0;
  bool live = false;     // handshake + replay done, receiving live frames
  bool closing = false;
};

class FragmentServer : public stream::StreamClient {
 public:
  explicit FragmentServer(stream::StreamServer* source,
                          FragmentServerOptions options = {});
  ~FragmentServer() override;

  FragmentServer(const FragmentServer&) = delete;
  FragmentServer& operator=(const FragmentServer&) = delete;

  /// \brief Seeds the frame log from the source's already-published
  /// history, registers with the source, binds and starts accepting.
  Status Start();

  /// \brief Unregisters, closes every connection, joins all threads.
  /// Idempotent.
  void Stop();

  /// \brief The bound TCP port (after Start()).
  uint16_t port() const { return port_; }

  /// \brief Sequence number the next published fragment will carry.
  int64_t next_seq() const;

  /// \brief The stream epoch advertised in HELLO acks: the WAL's epoch
  /// when one is attached, 0 (no epoch) otherwise. After a WAL append
  /// failure this becomes a freshly minted *volatile* epoch (see
  /// DegradeDurability), never the durable one again.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// \brief True once a WAL append failed and the server retired the
  /// durable epoch: frames published since then survive only in memory.
  bool wal_degraded() const {
    return wal_degraded_.load(std::memory_order_acquire);
  }

  /// \brief StreamClient hook: called by the source on the publisher
  /// thread for every multicast fragment.
  void OnFragment(const std::string& stream_name,
                  frag::Fragment fragment) override;

  /// \brief StreamClient hook for RepeatFiller retransmissions: re-sends
  /// the logged frame at `history_pos` with its original sequence number.
  /// No new seq is minted, so the frame log stays aligned with the
  /// source's history numbering (subscribers that already hold the seq
  /// discard the duplicate).
  void OnRepeat(const std::string& stream_name, int64_t history_pos,
                frag::Fragment fragment) override;

  MetricsSnapshot metrics() const;
  std::vector<ConnectionStats> connection_stats() const;
  int active_connections() const;

 private:
  struct Connection {
    Socket sock;
    std::thread reader;
    std::thread writer;
    std::mutex mu;                     // guards everything below
    std::condition_variable cv_data;   // queue became non-empty / closing
    std::condition_variable cv_space;  // queue gained room / closing
    std::deque<std::string> queue;     // encoded frames awaiting send
    frag::WireCodec codec = frag::WireCodec::kPlainXml;
    /// Peer advertised kHelloFlagCrcFrames: send v2 (checksummed) frames.
    /// Old peers get every frame transcoded down to v1.
    bool peer_crc = false;
    /// Peer advertised kHelloFlagQueryChannel *and* a channel is attached:
    /// QUERY frames are admissible and v3 frames may flow back.
    bool peer_queries = false;
    /// Query ids this connection subscribed to. Reader-thread only (the
    /// reader admits QUERY/UNQUERY and tears the sinks down on exit).
    std::vector<uint64_t> query_subs;
    bool live = false;
    bool closing = false;
    int64_t enqueued = 0;
    int64_t sent = 0;
    int64_t dropped = 0;
    std::mutex send_mu;  // serializes socket writes (writer + handshake)
    bool reader_done = false;
    bool writer_done = false;
  };

  // One published fragment, encoded once per codec the server offers.
  // Frames are logged in the v2 (checksummed) format and transcoded down
  // per connection when a peer did not negotiate it.
  struct LogEntry {
    std::string plain;       // FRAGMENT frame, plain-XML payload
    std::string compressed;  // FRAGMENT frame, §4.1 payload ("" if the
                             // payload does not compress under the schema)
    int64_t filler_id = 0;   // the fragment's filler id (NACK index key)
    int64_t valid_time_s = 0;  // the version's validTime (epoch seconds),
                               // so a version-aware NACK can skip versions
                               // the subscriber already holds
  };

  LogEntry EncodeEntry(const frag::Fragment& fragment, uint64_t seq);
  void AcceptLoop();
  void ReaderLoop(Connection* conn);
  void WriterLoop(Connection* conn);
  Status HandleHello(Connection* conn, const Hello& hello,
                     const Frame& frame);
  void ServeReplay(Connection* conn, int64_t last_seen_seq);
  /// \brief Serves a REPEAT_REQUEST (NACK): re-enqueues the logged frames
  /// of the request's filler — original seqs, kFlagRepeat set — to `conn`
  /// only, skipping versions whose validTime the request says the
  /// subscriber already holds.
  void ServeRepeat(Connection* conn, const RepeatRequest& request);
  /// \brief Serves a QUERY frame: admission checks (connection cap, then
  /// the channel's), registration, status ack, and result-stream
  /// subscription from the spec's resume seq.
  void HandleQuery(Connection* conn, const Frame& frame);
  void HandleUnquery(Connection* conn, const Frame& frame);
  Status SendQueryStatus(Connection* conn, const QueryStatus& status);
  /// \brief Appends one encoded frame to the connection's queue, applying
  /// the slow-consumer policy. Caller may hold log_mu_. With `repeat` the
  /// frame goes out flagged as a retransmission.
  void Enqueue(Connection* conn, const LogEntry& entry, bool repeat = false);
  /// \brief Queues an already-encoded v2 frame (a RESULT from the query
  /// channel), transcoding for old peers and applying the same
  /// slow-consumer policy as Enqueue. Unlike fragments it does not wait
  /// for `live`: a QUERY may directly follow the HELLO.
  void EnqueueEncoded(Connection* conn, const std::string& frame_bytes);
  /// \brief The slow-consumer policy body shared by the enqueue paths:
  /// returns true when a queue slot is available (possibly after blocking
  /// or evicting), false when the frame must be abandoned.
  bool ReserveQueueSlot(Connection* conn, std::unique_lock<std::mutex>& lock);
  Status SendRaw(Connection* conn, const std::string& bytes);
  void CloseConnection(Connection* conn);
  void ReapFinished();
  /// \brief Called (with log_mu_ held) when a WAL append fails: retires
  /// the durable epoch for a volatile one and cuts every connection, so
  /// no subscriber keeps a resume point that a restart could mis-splice.
  void DegradeDurability(const Status& why);

  stream::StreamServer* source_;
  FragmentServerOptions opts_;
  std::string ts_xml_;
  uint64_t ts_hash_ = 0;
  // Advertised in every HELLO ack; rewritten by DegradeDurability on the
  // publisher thread while reader threads serve handshakes, hence atomic.
  std::atomic<uint64_t> epoch_{0};
  std::atomic<bool> wal_degraded_{false};
  uint16_t port_ = 0;
  bool started_ = false;

  Socket listener_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  // Frame log. Lock order: log_mu_ -> conns_mu_ -> Connection::mu.
  mutable std::mutex log_mu_;
  std::vector<LogEntry> log_;
  // Log positions per filler id, so a NACK replays all of a filler's
  // frames without scanning the log. Guarded by log_mu_.
  std::unordered_map<int64_t, std::vector<size_t>> filler_index_;
  // log_.size(), readable without log_mu_. The heartbeat path uses this:
  // a kBlock publisher can hold log_mu_ while waiting for queue space, so
  // the writer thread must never take log_mu_ to make progress.
  std::atomic<int64_t> published_{0};

  mutable std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;

  mutable Metrics metrics_;
};

}  // namespace xcql::net

#endif  // XCQL_NET_SERVER_H_
