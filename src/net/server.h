// net::FragmentServer — the networked face of a stream::StreamServer.
//
// The server registers itself as one more StreamClient on the in-process
// multicast, encodes every published fragment exactly once per supported
// codec into an append-only frame log (seq = publish position), and fans
// the *same immutable buffers* out to any number of TCP subscribers: a
// connection's outbound queue holds refcounted views of log entries, never
// copies, so publishing to 10k subscribers costs one encode and N queue
// pushes. Late and resuming subscribers catch up from the frame log via
// REPLAY_FROM.
//
// I/O model: a single event-loop thread (net::EventLoop — epoll on Linux,
// poll elsewhere) owns every socket: it accepts, reads control frames,
// and drains the per-connection outbound queues through non-blocking
// writes with a per-connection partial-write offset. There are no
// per-connection threads. The publisher thread only encodes, appends,
// pushes queue entries and wakes the loop.
//
// Per-connection send order: control frames (HELLO ack, QUERY_STATUS,
// heartbeats, BYE) first, then the replay cursor (history served straight
// from the log, no queueing), then the data queue (live fragments,
// RESULTs, SKIP_TOs, repeats). The replay→live handover happens under
// log_mu_, so every seq reaches a subscriber exactly once.
//
// Each connection may carry a per-tsid subscription filter (SUBSCRIBE
// frame, or derived from a registered query via kQueryFlagAutoFilter):
// only fragments whose tsid falls in the filter's subtree closure are
// delivered, and skipped runs are covered by SKIP_TO frames so the
// subscriber's contiguous-prefix tracking never sees a false gap.
//
// What happens when a bounded data queue fills is the configurable
// SlowConsumerPolicy; the conservation law
//   enqueued == sent + dropped + queue_depth
// holds for every connection at every instant.
//
// Threading: the core engine stays single-threaded — Start(), Stop() and
// the publishes that reach OnFragment() must come from the same
// (publisher) thread. Everything socket-side happens on the loop thread.
#ifndef XCQL_NET_SERVER_H_
#define XCQL_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/metrics.h"
#include "net/socket.h"
#include "stream/transport.h"

namespace xcql::net {

/// \brief What to do when a subscriber's outbound queue is full.
enum class SlowConsumerPolicy {
  kBlock,       // publisher waits for space (lossless, stalls the stream)
  kDropOldest,  // evict the oldest queued frame, counting the drop; the
                // subscriber can recover the gap later via REPLAY_FROM
  kDisconnect,  // cut the connection; the subscriber's reconnect+replay
                // machinery refetches what it missed
};

class Wal;
class QueryChannel;

/// \brief Bounded-memory forever-run knobs (docs/RETENTION.md). The server
/// unions the enabled windows into a retention floor, clamps it by the
/// registered queries' minimal observable windows and by the WAL's
/// checkpoint coverage, and then — in this order — compacts the fragment
/// stores, drops the frame-log prefix, and trims the result logs. An
/// expired seq range is still replayable from the WAL checkpoint; live
/// subscribers resuming below the floor get an EXPIRED frame (after
/// negotiating kHelloFlagRetention) or a clean BYE.
struct RetentionOptions {
  /// Compact store versions whose lifespan ended more than this many
  /// seconds before the stream's high-water validTime. -1 = no time window.
  int64_t max_age_s = -1;
  /// Keep at most this many superseded versions per filler id in the
  /// stores. -1 = no version window.
  int max_versions = -1;
  /// Keep at most this many frames in the in-memory frame log (and
  /// fragments in the stores). -1 = no count window.
  int64_t max_frames = -1;
  /// Keep at most this many RESULT frames per query result log. -1 = no
  /// result window.
  int64_t max_results = -1;
  /// Run the retention driver every this many publishes (>= 1).
  int64_t check_every = 256;
  bool enabled() const {
    return max_age_s >= 0 || max_versions >= 0 || max_frames >= 0 ||
           max_results >= 0;
  }
};

/// \brief Self-healing durability knobs (docs/DURABILITY.md, "Degraded
/// mode and re-arm"). Active only with a WAL attached: a supervisor
/// thread probes a degraded disk with exponential backoff and, once a
/// probe write+fsync round-trips, re-arms — checkpoints the live
/// in-memory frame log into a fresh WAL generation under a new durable
/// epoch and cuts every subscriber exactly once so no resume point
/// spans the volatile gap. Disk-space watermarks (statvfs on the WAL's
/// data dir) act before the disk actually fails: below the soft mark
/// the next publish runs an emergency retention pass; below the hard
/// mark durability degrades preemptively, while appends would still
/// succeed, so the stream never tears a half-written record on ENOSPC.
struct DurabilityOptions {
  /// Re-arm automatically after a degrade. Off = degraded is terminal
  /// for the process (the pre-existing behavior).
  bool self_heal = true;
  /// Probe cadence while degraded: starts at probe_initial, doubles per
  /// failed probe up to probe_max.
  std::chrono::milliseconds probe_initial{100};
  std::chrono::milliseconds probe_max{2000};
  /// Soft watermark: data-dir free bytes below which the server forces a
  /// retention pass (checkpoint-then-trim) at the next publish.
  /// 0 = disabled.
  int64_t soft_free_bytes = 0;
  /// Hard watermark: free bytes below which durability degrades
  /// preemptively — and below which a re-arm is refused. 0 = disabled.
  int64_t hard_free_bytes = 0;
  /// How often the supervisor samples statvfs while healthy.
  std::chrono::milliseconds watermark_interval{1000};
};

struct FragmentServerOptions {
  uint16_t port = 0;  // 0 = pick an ephemeral port (see port())
  size_t queue_capacity = 1024;  // outbound data frames per connection
  SlowConsumerPolicy slow_consumer = SlowConsumerPolicy::kBlock;
  std::chrono::milliseconds heartbeat_interval{1000};
  /// How long a pending SKIP_TO run may sit before the loop flushes it
  /// even though no matching frame arrived to carry it out. Bounds a
  /// filtered subscriber's prefix-advance latency independently of the
  /// (much coarser) heartbeat/liveness cadence.
  std::chrono::milliseconds skip_flush_interval{50};
  /// Readiness backend for the I/O thread (kDefault = epoll on Linux,
  /// poll elsewhere). kPoll stays selectable on Linux so the portable
  /// path is exercised by the same test suite.
  EventBackend backend = EventBackend::kDefault;
  /// Durability: every published frame is appended here *before* any
  /// subscriber sees it, so with FsyncPolicy::kAlways no subscriber can
  /// ever be ahead of what a restart recovers. Not owned; must outlive
  /// the server. The WAL's epoch rides in the HELLO ack so resuming
  /// subscribers detect a reset data dir. If an append ever fails, the
  /// server keeps delivering but retires the durable epoch (minting a
  /// volatile one and restarting every subscriber) so no resume point
  /// outlives the process — see FragmentServer::DegradeDurability.
  /// nullptr = in-memory only.
  Wal* wal = nullptr;
  /// Remote query channel (protocol v3): fed every log-appended fragment
  /// and serving QUERY/UNQUERY registrations, with RESULT frames fanned
  /// out through the same per-connection queues as fragments. Not owned;
  /// must outlive the server. nullptr = queries are not offered (the
  /// HELLO ack never echoes kHelloFlagQueryChannel, so v3 frames never
  /// flow).
  QueryChannel* query_channel = nullptr;
  /// Admission limit: active query subscriptions per connection
  /// (<= 0 = unlimited). The channel-wide cap lives in
  /// QueryChannelOptions::max_queries.
  int max_queries_per_conn = 8;
  /// Retention windows; disabled by default (nothing is ever forgotten).
  RetentionOptions retention;
  /// Self-healing durability; a no-op without a WAL.
  DurabilityOptions durability;
};

/// \brief Per-connection counters, exposed so tests and tools can verify
/// the conservation law enqueued == sent + dropped + queue_depth.
struct ConnectionStats {
  int64_t enqueued = 0;
  int64_t sent = 0;
  int64_t dropped = 0;
  int64_t queue_depth = 0;
  bool live = false;     // handshake + replay done, receiving live frames
  bool closing = false;
  bool filtered = false; // a per-tsid subscription filter is active
};

class FragmentServer : public stream::StreamClient {
 public:
  explicit FragmentServer(stream::StreamServer* source,
                          FragmentServerOptions options = {});
  ~FragmentServer() override;

  FragmentServer(const FragmentServer&) = delete;
  FragmentServer& operator=(const FragmentServer&) = delete;

  /// \brief Seeds the frame log from the source's already-published
  /// history, registers with the source, binds and starts the I/O thread.
  Status Start();

  /// \brief Unregisters, stops the event loop (closing every socket on
  /// the loop thread, exactly once) and joins it. Idempotent; leaks no
  /// file descriptors.
  void Stop();

  /// \brief The bound TCP port (after Start()).
  uint16_t port() const { return port_; }

  /// \brief Sequence number the next published fragment will carry.
  int64_t next_seq() const;

  /// \brief The stream epoch advertised in HELLO acks: the WAL's epoch
  /// when one is attached, 0 (no epoch) otherwise. After a WAL append
  /// failure this becomes a freshly minted *volatile* epoch (see
  /// DegradeDurability), never the durable one again.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// \brief True while the server runs without durability: a WAL append
  /// or background fsync failed and the durable epoch was retired.
  /// Frames published while degraded survive only in memory — until a
  /// re-arm (DurabilityOptions::self_heal) makes them durable again.
  bool wal_degraded() const {
    return wal_degraded_.load(std::memory_order_acquire);
  }

  /// \brief Cumulative wall time spent degraded, current stretch
  /// included (the degraded_ms_total metric only accumulates on re-arm).
  int64_t time_in_degraded_ms() const;

  /// \brief One degraded→durable transition, callable directly by tests
  /// and operators (the supervisor calls it after a successful probe):
  /// snapshots the live frame log under log_mu_, rebuilds the WAL into a
  /// fresh generation starting at the log's base (Wal::Rearm), publishes
  /// the new durable epoch, resumes durable appends, and cuts every
  /// subscriber once so each re-handshakes onto the new epoch. On
  /// failure the WAL stays broken/degraded and the call may be retried.
  Status TryRearm();

  /// \brief StreamClient hook: called by the source on the publisher
  /// thread for every multicast fragment. Encodes once, appends to the
  /// log (WAL first), enqueues refcounted views to every live
  /// connection, then wakes the I/O thread.
  void OnFragment(const std::string& stream_name,
                  frag::Fragment fragment) override;

  /// \brief StreamClient hook for RepeatFiller retransmissions: re-sends
  /// the logged frame at `history_pos` with its original sequence number.
  /// No new seq is minted, so the frame log stays aligned with the
  /// source's history numbering (subscribers that already hold the seq
  /// discard the duplicate).
  void OnRepeat(const std::string& stream_name, int64_t history_pos,
                frag::Fragment fragment) override;

  MetricsSnapshot metrics() const;
  std::vector<ConnectionStats> connection_stats() const;
  int active_connections() const;

  /// \brief Oldest seq the in-memory frame log still holds (the retention
  /// floor; 0 until retention ever trims). Seqs below it are replayable
  /// only from the WAL checkpoint; a live resume below it is answered
  /// with an EXPIRED run (negotiated peers) or a clean BYE.
  int64_t log_base() const;

  /// \brief Runs one retention pass now (publisher thread only — the same
  /// thread that calls the publishes reaching OnFragment). OnFragment
  /// calls this automatically every retention.check_every publishes; tests
  /// and idle-loop callers invoke it directly to trim without traffic.
  void RunRetention();

  /// \brief The readiness backend the I/O thread actually runs on.
  EventBackend backend() const { return backend_; }

 private:
  /// One queued outbound frame: a refcounted view of an immutable buffer
  /// (shared with the log and with every other subscriber's queue on the
  /// common path) plus nothing else — the partial-write offset lives on
  /// the connection, since only one frame is in flight per socket.
  struct OutFrame {
    std::shared_ptr<const std::string> bytes;
    bool is_skip = false;  // a SKIP_TO (evicted alongside dropped data)
  };

  struct Connection {
    Socket sock;

    std::mutex mu;                     // guards everything below
    std::condition_variable cv_space;  // data queue gained room / closing
    std::deque<OutFrame> ctrl;  // unbounded: acks, statuses, BYE
    std::deque<OutFrame> data;  // bounded: fragments, results, skips
    frag::WireCodec codec = frag::WireCodec::kPlainXml;
    /// Peer advertised kHelloFlagCrcFrames: send v2 (checksummed) frames.
    /// Old peers get every frame transcoded down to v1.
    bool peer_crc = false;
    /// Peer advertised kHelloFlagQueryChannel *and* a channel is attached:
    /// QUERY frames are admissible and v3 frames may flow back.
    bool peer_queries = false;
    /// Peer advertised kHelloFlagTsidFilter: SUBSCRIBE is admissible and
    /// SKIP_TO frames may flow back.
    bool peer_filter = false;
    /// Peer advertised kHelloFlagRetention *and* a retention policy is
    /// active: EXPIRED frames may flow back. Without it a resume below
    /// the retention floor gets a clean BYE instead.
    bool peer_retention = false;
    bool live = false;
    bool closing = false;
    /// A BYE sits in ctrl: close once both queues and cur have flushed.
    bool close_after_flush = false;
    int64_t enqueued = 0;
    int64_t sent = 0;
    int64_t dropped = 0;
    /// Replay cursor: history is pulled straight from the log (one brief
    /// log_mu_ hold per frame), never queued, so a kBlock loop thread can
    /// not deadlock against itself and the bounded queue only ever holds
    /// live traffic.
    bool replaying = false;
    size_t replay_next = 0;
    /// First seq the live path owns; the handover sets it to log_.size()
    /// under log_mu_, so replay and live delivery are exactly-once even
    /// though the publisher fans out without holding log_mu_.
    int64_t next_live_seq = 0;
    /// Per-tsid subscription filter (subtree closure; empty + inactive =
    /// deliver everything).
    bool filter_active = false;
    std::unordered_set<int> filter;
    /// Highest filtered-out seq not yet covered by a SKIP_TO (-1 = none),
    /// and the first seq of that run (the SKIP_TO payload — subscribers
    /// verify the run continues their contiguous prefix exactly).
    int64_t pending_skip = -1;
    int64_t pending_skip_start = -1;
    /// When the current pending run must be flushed (stamped as the run
    /// starts); meaningful only while pending_skip >= 0.
    std::chrono::steady_clock::time_point skip_deadline;
    /// A data-queue eviction may have dropped a fragment that queued
    /// SKIP_TOs would otherwise mask: stop emitting skips until the next
    /// replay handover re-establishes a clean prefix.
    bool skip_suppressed = false;

    // --- loop-thread-only state (no lock needed) ---
    FrameReader reader;
    bool handshaken = false;
    std::vector<uint64_t> query_subs;  // query ids subscribed on this conn
    std::shared_ptr<const std::string> cur;  // frame being written
    size_t cur_off = 0;
    bool want_write = false;  // current backend interest
    std::chrono::steady_clock::time_point hb_deadline;
    /// Replay pulled a deliverable frame but a SKIP_TO for the filtered
    /// run before it must go out first: the frame waits here one turn.
    std::shared_ptr<const std::string> replay_stash;
    bool dead = false;  // torn down; skip in loop sweeps until erased
  };

  // One published fragment, encoded once per codec the server offers.
  // Frames are logged in the v2 (checksummed) format, as refcounted
  // immutable buffers shared by every queue that delivers them; they are
  // transcoded down per connection only when a peer did not negotiate v2.
  struct LogEntry {
    std::shared_ptr<const std::string> plain;  // FRAGMENT frame, plain XML
    std::shared_ptr<const std::string> compressed;  // §4.1 payload (null
                                                    // if incompressible)
    int64_t filler_id = 0;   // the fragment's filler id (NACK index key)
    int64_t valid_time_s = 0;  // the version's validTime (epoch seconds),
                               // so a version-aware NACK can skip versions
                               // the subscriber already holds
    int tsid = 0;  // the fragment's tag-structure id (filter key)
  };

  LogEntry EncodeEntry(const frag::Fragment& fragment, uint64_t seq);
  static int64_t EntryBytes(const LogEntry& entry) {
    return (entry.plain != nullptr
                ? static_cast<int64_t>(entry.plain->size())
                : 0) +
           (entry.compressed != nullptr
                ? static_cast<int64_t>(entry.compressed->size())
                : 0);
  }

  // --- event-loop thread ---
  void LoopThread();
  void HandleAccept();
  void HandleReadable(Connection* conn);
  bool HandleFrame(Connection* conn, const Frame& frame);  // false = cut
  Status HandleHello(Connection* conn, const Hello& hello,
                     const Frame& frame);
  void HandleSubscribe(Connection* conn, const Frame& frame);
  /// \brief Serves a QUERY frame: admission checks (connection cap, then
  /// the channel's), registration, status ack, and result-stream
  /// subscription from the spec's resume seq. kQueryFlagAutoFilter is
  /// stripped before registration and folded into the connection filter.
  void HandleQuery(Connection* conn, const Frame& frame);
  void HandleUnquery(Connection* conn, const Frame& frame);
  void SendQueryStatus(Connection* conn, const QueryStatus& status);
  /// \brief Serves a REPEAT_REQUEST (NACK): re-enqueues the logged frames
  /// of the request's filler — original seqs, kFlagRepeat set — to `conn`
  /// only, skipping versions whose validTime the request says the
  /// subscriber already holds. Bypasses the subscription filter: an
  /// explicitly requested filler is always re-sent.
  void ServeRepeat(Connection* conn, const RepeatRequest& request);
  /// \brief Drains this connection's sendable frames (ctrl → replay
  /// cursor → data) through non-blocking writes; parks on EPOLLOUT when
  /// the kernel buffer fills.
  void PumpWrites(Connection* conn);
  /// \brief Pulls the next frame to send, or null. Advances the replay
  /// cursor (and performs the live handover) as a side effect.
  std::shared_ptr<const std::string> NextFrame(Connection* conn);
  void FlushPendingSkip(Connection* conn);
  /// \brief Per-connection clock work: flushes a skip run past its
  /// deadline, emits an idle heartbeat past hb_deadline. Returns when
  /// this connection next needs the clock (feeds the loop's next sweep).
  std::chrono::steady_clock::time_point HeartbeatTick(
      Connection* conn, std::chrono::steady_clock::time_point now);
  /// \brief Loop-thread teardown: drop query sinks, deregister from the
  /// backend, close the socket, wake blocked publishers, forget the conn.
  void DestroyConnection(Connection* conn);

  // --- any thread ---
  /// \brief Appends a refcounted view of a logged fragment frame to the
  /// connection's data queue, applying the subscription filter and the
  /// slow-consumer policy. With `repeat` the frame goes out flagged as a
  /// retransmission; `bypass_filter` serves NACKs.
  void Enqueue(Connection* conn, const LogEntry& entry, int64_t seq,
               bool repeat = false, bool bypass_filter = false);
  /// \brief Queues an already-encoded v2 frame (a RESULT from the query
  /// channel), transcoding for old peers and applying the same
  /// slow-consumer policy as Enqueue. Unlike fragments it does not wait
  /// for `live`: a QUERY may directly follow the HELLO.
  void EnqueueEncoded(Connection* conn,
                      const std::shared_ptr<const std::string>& frame);
  void EnqueueCtrl(Connection* conn,
                   std::shared_ptr<const std::string> frame);
  /// \brief The slow-consumer policy body shared by the enqueue paths:
  /// returns true when a data-queue slot is available (possibly after
  /// blocking or evicting), false when the frame must be abandoned.
  /// `may_block` = false makes kBlock overflow the bound instead of
  /// waiting: enqueues from the loop thread (the queue's only consumer)
  /// and from under QueryChannel::mu_ must never park, or the drain side
  /// deadlocks; overflowing keeps them lossless.
  bool ReserveQueueSlot(Connection* conn, std::unique_lock<std::mutex>& lock,
                        bool may_block);
  /// \brief Appends a per-connection SKIP_TO(pending_skip) to the data
  /// queue. Caller holds conn->mu.
  void PushSkipLocked(Connection* conn);
  /// \brief Expands tag-structure ids to their schema subtree closure.
  std::unordered_set<int> ExpandTsidClosure(const std::vector<int>& ids)
      const;
  /// \brief Marks the connection closing and shuts the socket down; the
  /// loop thread observes the dead socket and destroys the connection.
  void CloseConnection(Connection* conn);
  /// \brief Called when a WAL append fails (publisher thread, log_mu_
  /// held), a background fsync fails (the WAL flusher's failure
  /// callback) or the hard disk-space watermark trips (the durability
  /// supervisor): retires the durable epoch for a volatile one and cuts
  /// every connection, so no subscriber keeps a resume point that a
  /// restart could mis-splice. Never touches log_ — callers may or may
  /// not hold log_mu_. Concurrent calls collapse into one degrade.
  void DegradeDurability(const Status& why);
  /// \brief Cuts every connection (each subscriber re-handshakes and
  /// observes the current epoch) and wakes the loop.
  void CutAllConnections();
  /// \brief The durability supervisor body: samples the data-dir free
  /// bytes on watermark_interval while healthy; while degraded, probes
  /// the disk with exponential backoff and re-arms when it heals.
  void DurabilityLoop();
  /// \brief One probe round-trip on the WAL's data dir: create, write
  /// 4KiB, fsync, close, unlink — through the IoEnv seam and always on a
  /// FRESH descriptor (a probe must never re-fsync a failed one).
  bool ProbeDisk(const std::string& dir);

  /// \brief Enqueues an EXPIRED(kFiller) answer for a NACK whose filler
  /// was compacted by retention — "aged out on purpose", so the
  /// subscriber resolves the repair instead of burning its retry budget.
  void SendExpiredFiller(Connection* conn, int64_t filler_id);

  bool OnLoopThread() const {
    return std::this_thread::get_id() ==
           loop_tid_.load(std::memory_order_relaxed);
  }

  stream::StreamServer* source_;
  FragmentServerOptions opts_;
  std::string ts_xml_;
  uint64_t ts_hash_ = 0;
  // Advertised in every HELLO ack; rewritten by DegradeDurability (any
  // thread) and TryRearm while the loop thread serves handshakes, hence
  // atomic.
  std::atomic<uint64_t> epoch_{0};
  std::atomic<bool> wal_degraded_{false};
  /// steady_clock ms at the moment of the last degrade (meaningful while
  /// wal_degraded_); feeds degraded-time accounting on re-arm.
  std::atomic<int64_t> degraded_since_ms_{0};
  /// Set by the supervisor when free space dips below the soft
  /// watermark; the next OnFragment consumes it and runs retention.
  std::atomic<bool> emergency_retain_{false};
  // The durability supervisor (started with the WAL in Start, joined
  // first in Stop). durability_mu_ guards only the stop flag + cv; it is
  // never held while taking any other lock.
  std::thread durability_thread_;
  std::mutex durability_mu_;
  std::condition_variable durability_cv_;
  bool durability_stop_ = false;
  uint16_t port_ = 0;
  bool started_ = false;
  EventBackend backend_ = EventBackend::kDefault;

  Socket listener_;
  int listener_tag_ = 0;  // address marks the listener in loop events
  std::unique_ptr<EventLoop> loop_;
  std::thread loop_thread_;
  // Set by the loop thread on entry; read by enqueue paths on any thread.
  std::atomic<std::thread::id> loop_tid_{};
  std::atomic<bool> stopping_{false};

  // Frame log. Lock order: log_mu_ -> conns_mu_ -> Connection::mu.
  // The publisher holds log_mu_ only while encoding/appending — never
  // across the fan-out — so the loop thread's replay cursor can always
  // make progress while a kBlock publisher waits for queue space.
  mutable std::mutex log_mu_;
  std::deque<LogEntry> log_;  // deque: stable references under append
  /// Absolute seq of log_.front(): retention drops the log prefix and
  /// advances the base, so seq s lives at log_[s - log_base_] and seqs
  /// never renumber. Guarded by log_mu_.
  int64_t log_base_ = 0;
  /// Encoded bytes held by log_ (both codec forms). Guarded by log_mu_;
  /// published to the frame_log_bytes gauge by the retention driver.
  int64_t frame_log_bytes_ = 0;
  /// Publishes since the last retention pass (publisher thread only).
  int64_t publishes_since_retain_ = 0;
  /// Re-entrancy latch for RunRetention (publisher thread only): the
  /// snapshot-refresh path re-enters OnFragment, whose cadence check must
  /// not start a nested pass.
  bool retaining_ = false;
  /// High-water validTime across logged fragments (epoch seconds): the
  /// retention driver's "now". Guarded by log_mu_.
  int64_t max_valid_time_s_ = 0;
  // Log positions (absolute seqs) per filler id, so a NACK replays all of
  // a filler's frames without scanning the log. Deque: retention pops the
  // front position per retired frame, which must stay O(1) under log_mu_
  // for fillers with many logged versions. Guarded by log_mu_.
  std::unordered_map<int64_t, std::deque<size_t>> filler_index_;
  /// Filler ids whose every logged frame was retired by retention (and
  /// that have not been re-published since): exactly the ids a NACK may
  /// answer EXPIRED — anything else absent from filler_index_ is genuine
  /// upstream loss and stays silent so the subscriber's repair budget
  /// still reports it lost. One id each, the same tombstone shape the
  /// stores keep (FragmentStore::expired_). Guarded by log_mu_.
  std::unordered_set<int64_t> retired_fillers_;
  // log_.size(), readable without log_mu_. Heartbeats use this: the loop
  // thread must never need log_mu_ just to report progress.
  std::atomic<int64_t> published_{0};

  // Shared connection registry (publisher fan-out, stats). The loop
  // thread keeps its own loop_conns_ so it never waits on conns_mu_
  // while a publisher is parked in ReserveQueueSlot.
  mutable std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::shared_ptr<Connection>> loop_conns_;  // loop thread only
  // Set by DestroyConnection so the loop's reap pass runs only when a
  // connection actually died, not O(conns) every iteration. Loop thread
  // only — DestroyConnection is owner-thread-only by contract.
  bool dead_pending_ = false;

  mutable Metrics metrics_;
};

}  // namespace xcql::net

#endif  // XCQL_NET_SERVER_H_
