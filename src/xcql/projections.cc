#include "xcql/projections.h"

#include "xq/eval.h"

namespace xcql::lang {

Result<DateTime> ProjectionBoundToDateTime(xq::EvalContext& ctx,
                                           const xq::Sequence& bound) {
  if (bound.size() != 1) {
    return Status::TypeError("projection bound must be a singleton");
  }
  xq::Atomic a = xq::AtomizeItem(bound.front());
  if (a.is_datetime()) {
    DateTime t = a.AsDateTime();
    return t == DateTime::End() ? ctx.now : t;
  }
  if (a.is_string()) {
    XCQL_ASSIGN_OR_RETURN(DateTime t, DateTime::Parse(a.AsString()));
    return t == DateTime::End() ? ctx.now : t;
  }
  return Status::TypeError(std::string("expected xs:dateTime bound, got ") +
                           a.TypeName());
}

namespace {

Result<int64_t> BoundToVersion(const xq::Sequence& seq) {
  if (seq.size() != 1) {
    return Status::TypeError("projection bound must be a singleton");
  }
  xq::Atomic a = xq::AtomizeItem(seq.front());
  if (a.is_int()) return a.AsInt();
  auto n = a.ToNumber();
  if (!n) {
    return Status::TypeError("expected integer version bound");
  }
  return static_cast<int64_t>(*n);
}

}  // namespace

void RegisterProjectionFunctions(xq::FunctionRegistry* registry) {
  registry->RegisterNative(
      "interval_projection", 3, 3,
      [](xq::EvalContext& ctx,
         std::vector<xq::Sequence>& args) -> Result<xq::Sequence> {
        XCQL_ASSIGN_OR_RETURN(DateTime tb, ProjectionBoundToDateTime(ctx, args[1]));
        XCQL_ASSIGN_OR_RETURN(DateTime te, ProjectionBoundToDateTime(ctx, args[2]));
        if (tb > te) {
          return Status::InvalidArgument(
              "interval_projection with begin > end");
        }
        return xq::IntervalProjection(ctx, args[0], tb, te);
      });
  registry->RegisterNative(
      "version_projection", 3, 3,
      [](xq::EvalContext& ctx,
         std::vector<xq::Sequence>& args) -> Result<xq::Sequence> {
        XCQL_ASSIGN_OR_RETURN(int64_t vb, BoundToVersion(args[1]));
        XCQL_ASSIGN_OR_RETURN(int64_t ve, BoundToVersion(args[2]));
        if (vb > ve) {
          return Status::InvalidArgument(
              "version_projection with begin > end");
        }
        return xq::VersionProjection(ctx, args[0], vb, ve);
      });
}

}  // namespace xcql::lang
