#include "xcql/translator.h"

#include <algorithm>

#include "common/string_util.h"

namespace xcql::lang {

using xq::BinaryExpr;
using xq::ComputedAttributeExpr;
using xq::ComputedElementExpr;
using xq::ContentPart;
using xq::DirectElementExpr;
using xq::Expr;
using xq::ExprKind;
using xq::ExprPtr;
using xq::FilterExpr;
using xq::FlworClause;
using xq::FlworExpr;
using xq::FunctionCallExpr;
using xq::IfExpr;
using xq::IntervalProjExpr;
using xq::LiteralExpr;
using xq::PathExpr;
using xq::PathStep;
using xq::QuantifiedExpr;
using xq::SequenceExpr;
using xq::UnaryExpr;
using xq::VarRefExpr;
using xq::VersionProjExpr;

namespace {

ExprPtr StringLit(const std::string& s) {
  return std::make_unique<LiteralExpr>(xq::Atomic(s));
}

ExprPtr IntLit(int64_t v) {
  return std::make_unique<LiteralExpr>(xq::Atomic(v));
}

// Appends one step to `cur`, reusing the tail PathExpr when this fold owns
// it (tracked by the caller through `owned`).
ExprPtr AppendStep(ExprPtr cur, PathStep step, bool* owned) {
  if (*owned && cur->kind() == ExprKind::kPath) {
    static_cast<PathExpr*>(cur.get())->steps.push_back(std::move(step));
    return cur;
  }
  std::vector<PathStep> steps;
  steps.push_back(std::move(step));
  *owned = true;
  return std::make_unique<PathExpr>(std::move(cur), std::move(steps));
}

PathStep ChildStep(std::string name, std::vector<ExprPtr> preds = {}) {
  PathStep s;
  s.axis = PathStep::Axis::kChild;
  s.test = PathStep::Test::kName;
  s.name = std::move(name);
  s.predicates = std::move(preds);
  return s;
}

bool HasDescendantNamed(const frag::TagNode* tag, const std::string& name) {
  for (const auto& c : tag->children) {
    if (c->name == name || HasDescendantNamed(c.get(), name)) return true;
  }
  return false;
}

// Descendants (or self) of `tag` with the given name.
void FindNamed(const frag::TagNode* tag, const std::string& name,
               std::vector<const frag::TagNode*>* out) {
  if (tag->name == name) out->push_back(tag);
  for (const auto& c : tag->children) FindNamed(c.get(), name, out);
}

// Conservatively true when a predicate cannot be positional (a numeric
// value selecting by index). Used to keep the QaC+ tsid jump safe:
// hoisted positional predicates over a multi-parent scan would lose the
// per-parent sibling numbering.
bool IsDefinitelyBoolean(const Expr& e) {
  switch (e.kind()) {
    case ExprKind::kQuantified:
      return true;
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      switch (b.op) {
        case xq::BinOp::kPlus:
        case xq::BinOp::kMinus:
        case xq::BinOp::kMul:
        case xq::BinOp::kDiv:
        case xq::BinOp::kIdiv:
        case xq::BinOp::kMod:
        case xq::BinOp::kTo:
          return false;
        default:
          return true;  // comparisons and logical operators
      }
    }
    case ExprKind::kFunctionCall: {
      const auto& f = static_cast<const FunctionCallExpr&>(e);
      return f.name == "not" || f.name == "empty" || f.name == "exists" ||
             f.name == "boolean" || f.name == "contains" ||
             f.name == "starts-with" || f.name == "ends-with" ||
             f.name == "deep-equal" || f.name == "true" || f.name == "false";
    }
    default:
      return false;
  }
}

// --- relevance analysis -------------------------------------------------------

// Builtins that read neither the stores nor the clock. Anything not listed
// here (and not otherwise classified) is treated as opaque.
bool IsPureBuiltin(const std::string& name) {
  static const std::set<std::string> kPure = {
      "count",        "sum",          "avg",
      "max",          "min",          "not",
      "boolean",      "true",         "false",
      "empty",        "exists",       "name",
      "string",       "number",       "data",
      "concat",       "string-join",  "contains",
      "starts-with",  "ends-with",    "substring",
      "string-length", "normalize-space",
      "dateTime",     "xs:dateTime",  "duration",
      "xs:duration",  "xdt:dayTimeDuration",
      "vtFrom",       "round",        "floor",
      "ceiling",      "abs",          "deep-equal",
      "serialize",    "distinct-values", "reverse",
      "subsequence",  "index-of",     "distance",
      "triangulate",  "xcql:start",
  };
  return kPure.count(name) > 0;
}

// Builtins whose value depends on the evaluation clock.
bool IsClockBuiltin(const std::string& name) {
  // vtTo resolves the open bound "now" to ctx.now; the current-* family and
  // xcql:now read the clock directly.
  return name == "xcql:now" || name == "current-dateTime" ||
         name == "currentDateTime" || name == "current-date" ||
         name == "current-time" || name == "vtTo";
}

void CollectSubtreeTsids(const frag::TagNode* tag, std::set<int>* out) {
  out->insert(tag->id);
  for (const auto& c : tag->children) CollectSubtreeTsids(c.get(), out);
}

// The store-access calls the Fig. 3 rewriting emits (plus the raw paper
// spellings). Only these can observe stored versions.
bool IsStoreAccessCall(const std::string& name) {
  return name == "xcql:tsid_scan" || name == "xcql:tsid_scan_range" ||
         name == "xcql:get_fillers" || name == "get_fillers" ||
         name == "get_fillers_list" || name == "stream" ||
         name == "temporalize" || name == "doc" || name == "document";
}

// A projection input that cannot observe pre-clip versions: a pure path
// of literal-argument store accesses and predicate-free steps. Any
// predicate, filter, or control flow in the projected subtree can read a
// version the projection would clip, so it voids the window bound.
bool IsPlainProjectionInput(const Expr* e) {
  if (e == nullptr) return false;
  switch (e->kind()) {
    case ExprKind::kFunctionCall: {
      const auto& f = static_cast<const FunctionCallExpr&>(*e);
      if (!IsStoreAccessCall(f.name)) return false;
      for (const auto& a : f.args) {
        if (a == nullptr || a->kind() != ExprKind::kLiteral) return false;
      }
      return true;
    }
    case ExprKind::kPath: {
      const auto& p = static_cast<const PathExpr&>(*e);
      for (const auto& s : p.steps) {
        if (!s.predicates.empty()) return false;
      }
      return IsPlainProjectionInput(p.input.get());
    }
    default:
      return false;
  }
}

// Recognizes a statically-bounded projection lower bound: an absolute
// dateTime literal, or `clock() - duration` (a sliding lookback). The
// lookback over-approximates calendar months as 31 days — the estimated
// floor is never later than the true one, so retention keeps at least
// what the query can observe.
std::optional<ObservableWindow> ExtractLowerBound(const Expr* lo) {
  if (lo == nullptr) return std::nullopt;
  ObservableWindow w;
  w.bounded = true;
  if (lo->kind() == ExprKind::kLiteral) {
    const auto& lit = static_cast<const LiteralExpr&>(*lo);
    if (lit.value.is_datetime()) {
      DateTime dt = lit.value.AsDateTime();
      if (dt == DateTime::Start()) return std::nullopt;
      w.absolute_lo_s = dt.seconds();
      return w;
    }
    if (lit.value.is_string()) {
      auto dt = DateTime::Parse(lit.value.AsString());
      if (!dt.ok()) return std::nullopt;
      w.absolute_lo_s = dt.value().seconds();
      return w;
    }
    return std::nullopt;
  }
  if (lo->kind() == ExprKind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(*lo);
    if (b.op != xq::BinOp::kMinus) return std::nullopt;
    if (b.lhs == nullptr || b.lhs->kind() != ExprKind::kFunctionCall) {
      return std::nullopt;
    }
    const auto& clock = static_cast<const FunctionCallExpr&>(*b.lhs);
    if (!IsClockBuiltin(clock.name) || clock.name == "vtTo" ||
        !clock.args.empty()) {
      return std::nullopt;
    }
    if (b.rhs == nullptr || b.rhs->kind() != ExprKind::kLiteral) {
      return std::nullopt;
    }
    const auto& dur = static_cast<const LiteralExpr&>(*b.rhs);
    Duration d;
    if (dur.value.is_duration()) {
      d = dur.value.AsDuration();
    } else if (dur.value.is_string()) {
      auto parsed = Duration::Parse(dur.value.AsString());
      if (!parsed.ok()) return std::nullopt;
      d = parsed.value();
    } else {
      return std::nullopt;
    }
    if (d.months() < 0 || d.seconds() < 0) return std::nullopt;
    w.lookback_s = d.months() * 31ll * 86400 + d.seconds();
    return w;
  }
  return std::nullopt;
}

class RelevanceWalker {
 public:
  RelevanceWalker(const std::map<std::string, const frag::TagStructure*>& schemas,
                  const std::set<std::string>& opaque,
                  std::set<std::string> declared, QueryRelevance* out)
      : schemas_(schemas),
        opaque_(opaque),
        declared_(std::move(declared)),
        out_(out) {}

  void Walk(const Expr* e) {
    if (e == nullptr) return;
    switch (e->kind()) {
      case ExprKind::kLiteral:
      case ExprKind::kVarRef:
      case ExprKind::kContextItem:
        return;
      case ExprKind::kSequence:
        for (const auto& it : static_cast<const SequenceExpr*>(e)->items) {
          Walk(it.get());
        }
        return;
      case ExprKind::kFlwor: {
        const auto* f = static_cast<const FlworExpr*>(e);
        for (const auto& c : f->clauses) {
          Walk(c.expr.get());
          for (const auto& k : c.keys) Walk(k.key.get());
        }
        Walk(f->ret.get());
        return;
      }
      case ExprKind::kQuantified: {
        const auto* q = static_cast<const QuantifiedExpr*>(e);
        for (const auto& b : q->bindings) Walk(b.expr.get());
        Walk(q->satisfies.get());
        return;
      }
      case ExprKind::kIf: {
        const auto* i = static_cast<const IfExpr*>(e);
        Walk(i->cond.get());
        Walk(i->then_branch.get());
        Walk(i->else_branch.get());
        return;
      }
      case ExprKind::kBinary: {
        const auto* b = static_cast<const BinaryExpr*>(e);
        switch (b->op) {
          case xq::BinOp::kBefore:
          case xq::BinOp::kAfter:
          case xq::BinOp::kMeets:
          case xq::BinOp::kOverlaps:
          case xq::BinOp::kContains:
          case xq::BinOp::kDuring:
            // Interval relations compare lifespans, and open lifespans end
            // at the moving `now`.
            out_->time_sensitive = true;
            break;
          default:
            break;
        }
        Walk(b->lhs.get());
        Walk(b->rhs.get());
        return;
      }
      case ExprKind::kUnary:
        Walk(static_cast<const UnaryExpr*>(e)->operand.get());
        return;
      case ExprKind::kPath: {
        const auto* p = static_cast<const PathExpr*>(e);
        Walk(p->input.get());
        for (const auto& s : p->steps) {
          if (s.axis == PathStep::Axis::kAttribute && s.name == "vtTo") {
            // @vtTo of an open version reads "now".
            out_->time_sensitive = true;
          }
          for (const auto& pr : s.predicates) Walk(pr.get());
        }
        return;
      }
      case ExprKind::kFilter: {
        const auto* f = static_cast<const FilterExpr*>(e);
        Walk(f->input.get());
        for (const auto& pr : f->predicates) Walk(pr.get());
        return;
      }
      case ExprKind::kFunctionCall:
        WalkCall(*static_cast<const FunctionCallExpr*>(e));
        return;
      case ExprKind::kDirectElement: {
        const auto* d = static_cast<const DirectElementExpr*>(e);
        for (const auto& a : d->attrs) {
          for (const auto& part : a.value) Walk(part.expr.get());
        }
        for (const auto& part : d->content) Walk(part.expr.get());
        return;
      }
      case ExprKind::kComputedElement: {
        const auto* c = static_cast<const ComputedElementExpr*>(e);
        Walk(c->name_expr.get());
        Walk(c->content.get());
        return;
      }
      case ExprKind::kComputedAttribute: {
        const auto* c = static_cast<const ComputedAttributeExpr*>(e);
        Walk(c->name_expr.get());
        Walk(c->content.get());
        return;
      }
      case ExprKind::kIntervalProj: {
        const auto* p = static_cast<const IntervalProjExpr*>(e);
        // Projections clip against open lifespans, which end at `now`.
        out_->time_sensitive = true;
        // A statically-bounded lower bound over a plain input windows
        // every store access underneath: versions ending below the bound
        // are clipped out, so compaction below it cannot change the
        // result.
        std::optional<ObservableWindow> bound = ExtractLowerBound(p->lo.get());
        if (bound.has_value() && IsPlainProjectionInput(p->input.get())) {
          bound_stack_.push_back(*bound);
          Walk(p->input.get());
          bound_stack_.pop_back();
        } else {
          Walk(p->input.get());
        }
        Walk(p->lo.get());
        Walk(p->hi.get());
        return;
      }
      case ExprKind::kVersionProj: {
        const auto* p = static_cast<const VersionProjExpr*>(e);
        // Version lifespans are annotated onto the output; the last one is
        // open at `now`.
        out_->time_sensitive = true;
        Walk(p->input.get());
        Walk(p->lo.get());
        Walk(p->hi.get());
        return;
      }
    }
  }

 private:
  // Literal helpers: nullopt when the argument is absent or not a literal
  // of the wanted type.
  static std::optional<std::string> LitString(
      const std::vector<ExprPtr>& args, size_t i) {
    if (i >= args.size() || args[i] == nullptr ||
        args[i]->kind() != ExprKind::kLiteral) {
      return std::nullopt;
    }
    const auto& lit = static_cast<const LiteralExpr&>(*args[i]);
    if (!lit.value.is_string()) return std::nullopt;
    return lit.value.AsString();
  }
  static std::optional<int64_t> LitInt(const std::vector<ExprPtr>& args,
                                       size_t i) {
    if (i >= args.size() || args[i] == nullptr ||
        args[i]->kind() != ExprKind::kLiteral) {
      return std::nullopt;
    }
    const auto& lit = static_cast<const LiteralExpr&>(*args[i]);
    if (!lit.value.is_int()) return std::nullopt;
    return lit.value.AsInt();
  }

  void AddWholeStream(const std::string& stream) {
    NoteAccessWindow();
    auto it = schemas_.find(stream);
    if (it == schemas_.end() || it->second->root() == nullptr) {
      out_->unbounded = true;
      return;
    }
    CollectSubtreeTsids(it->second->root(), &out_->streams[stream]);
  }

  void AddTsidSubtree(const std::string& stream, int64_t tsid) {
    auto it = schemas_.find(stream);
    const frag::TagNode* tag =
        it == schemas_.end() ? nullptr
                             : it->second->FindById(static_cast<int>(tsid));
    if (tag == nullptr) {
      AddWholeStream(stream);
      return;
    }
    NoteAccessWindow();
    // The scan returns fillers of `tsid`, but their payloads hold holes
    // whose resolution (projections, result materialization) descends into
    // the fillers of every schema descendant.
    CollectSubtreeTsids(tag, &out_->streams[stream]);
  }

  /// Folds the current access's window into the query's: bounded by the
  /// innermost recognized projection, or unbounded when none wraps it.
  void NoteAccessWindow() {
    ObservableWindow w;  // bounded defaults to false
    if (!bound_stack_.empty()) w = bound_stack_.back();
    if (!any_access_) {
      out_->window = w;
      any_access_ = true;
    } else {
      out_->window.Union(w);
    }
  }

  void WalkCall(const FunctionCallExpr& e) {
    for (const auto& a : e.args) Walk(a.get());

    if (e.name == "xcql:tsid_scan" || e.name == "xcql:tsid_scan_range") {
      std::optional<std::string> stream = LitString(e.args, 0);
      std::optional<int64_t> tsid = LitInt(e.args, 1);
      // A range scan only returns versions overlapping [lo, hi]: the Fig. 3
      // rewriting pushes the projection window into the scan itself, so a
      // statically-recognized lo bounds this access even when the
      // surrounding IntervalProj input is no longer in plain form.
      std::optional<ObservableWindow> scan_bound;
      if (e.name == "xcql:tsid_scan_range" && e.args.size() >= 3) {
        scan_bound = ExtractLowerBound(e.args[2].get());
      }
      if (scan_bound.has_value()) bound_stack_.push_back(*scan_bound);
      if (!stream.has_value()) {
        out_->unbounded = true;
      } else if (!tsid.has_value()) {
        AddWholeStream(*stream);
      } else {
        AddTsidSubtree(*stream, *tsid);
      }
      if (scan_bound.has_value()) bound_stack_.pop_back();
      return;
    }
    if (e.name == "xcql:get_fillers") {
      // The filler ids flow from hole attributes in the data, so anything
      // on the named stream may be touched.
      std::optional<std::string> stream = LitString(e.args, 0);
      if (stream.has_value()) {
        AddWholeStream(*stream);
      } else {
        out_->unbounded = true;
      }
      return;
    }
    if (e.name == "get_fillers" || e.name == "get_fillers_list") {
      // Paper spelling, bound to the sole registered stream.
      if (schemas_.size() == 1) {
        AddWholeStream(schemas_.begin()->first);
      } else {
        out_->unbounded = true;
      }
      return;
    }
    if (e.name == "stream" || e.name == "temporalize") {
      std::optional<std::string> stream = LitString(e.args, 0);
      if (stream.has_value()) {
        AddWholeStream(*stream);
      } else {
        out_->unbounded = true;
      }
      return;
    }
    if (e.name == "doc" || e.name == "document") {
      // CaQ binds materialized stream views as documents; a doc() naming a
      // registered stream reads that stream, any other literal name is a
      // static document.
      std::optional<std::string> name = LitString(e.args, 0);
      if (!name.has_value()) {
        out_->unbounded = true;
      } else if (schemas_.count(*name) > 0) {
        AddWholeStream(*name);
      }
      return;
    }
    if (e.name == "interval_projection" || e.name == "version_projection") {
      // Native spelling of the projection operators.
      out_->time_sensitive = true;
      return;
    }
    if (IsClockBuiltin(e.name)) {
      out_->time_sensitive = true;
      return;
    }
    if (opaque_.count(e.name) > 0) {
      MarkOpaque();
      return;
    }
    if (IsPureBuiltin(e.name) || declared_.count(e.name) > 0) {
      return;  // declared bodies are walked separately
    }
    // Unknown name: a host-registered native with opaque data accesses
    // (or a typo that will fail at evaluation anyway).
    MarkOpaque();
  }

  void MarkOpaque() {
    out_->unbounded = true;
    // An opaque native may read external state, so the result can change
    // even when no fragment arrives and the clock stands still.
    out_->time_sensitive = true;
  }

  const std::map<std::string, const frag::TagStructure*>& schemas_;
  const std::set<std::string>& opaque_;
  std::set<std::string> declared_;
  QueryRelevance* out_;
  std::vector<ObservableWindow> bound_stack_;
  bool any_access_ = false;
};

}  // namespace

DateTime ObservableWindow::FloorAt(DateTime now) const {
  if (!bounded) return DateTime::Start();
  // The loosest contributing bound wins; with none contributing the query
  // observes no stored version at all.
  DateTime floor = DateTime::End();
  if (lookback_s >= 0) {
    floor = std::min(floor, DateTime(now.seconds() - lookback_s));
  }
  if (absolute_lo_s != INT64_MIN) {
    floor = std::min(floor, DateTime(absolute_lo_s));
  }
  return floor;
}

void ObservableWindow::Union(const ObservableWindow& other) {
  bounded = bounded && other.bounded;
  lookback_s = std::max(lookback_s, other.lookback_s);
  if (other.absolute_lo_s != INT64_MIN) {
    absolute_lo_s = absolute_lo_s == INT64_MIN
                        ? other.absolute_lo_s
                        : std::min(absolute_lo_s, other.absolute_lo_s);
  }
}

QueryRelevance AnalyzeRelevance(
    const xq::Program& translated,
    const std::map<std::string, const frag::TagStructure*>& schemas,
    const std::set<std::string>& opaque_functions) {
  QueryRelevance out;
  std::set<std::string> declared;
  for (const auto& f : translated.functions) declared.insert(f.name);
  RelevanceWalker walker(schemas, opaque_functions, std::move(declared), &out);
  for (const auto& f : translated.functions) walker.Walk(f.body.get());
  for (const auto& v : translated.variables) walker.Walk(v.init.get());
  walker.Walk(translated.body.get());
  if (out.unbounded) {
    // Unknown data accesses can reach anything: the window analysis can
    // promise nothing.
    out.window = ObservableWindow{};
  } else if (out.streams.empty()) {
    // No store access at all: the query observes no stored version, so it
    // never pins retention.
    out.window.bounded = true;
  }
  return out;
}

const char* ExecMethodName(ExecMethod m) {
  switch (m) {
    case ExecMethod::kCaQ:
      return "CaQ";
    case ExecMethod::kQaC:
      return "QaC";
    case ExecMethod::kQaCPlus:
      return "QaC+";
  }
  return "?";
}

Translator::Translator(
    std::map<std::string, const frag::TagStructure*> schemas,
    ExecMethod method)
    : schemas_(std::move(schemas)), method_(method) {}

Result<xq::Program> Translator::Translate(const xq::Program& prog) {
  xq::Program out;
  if (method_ == ExecMethod::kCaQ) {
    // CaQ queries run against the fully materialized temporal view; the
    // XCQL projections are evaluated natively, so no rewriting is needed.
    for (const auto& f : prog.functions) out.functions.push_back(f);
    for (const auto& v : prog.variables) out.variables.push_back(v);
    out.body = prog.body->Clone();
    return out;
  }
  for (const auto& f : prog.functions) {
    var_env_.clear();
    context_ts_.reset();
    XCQL_ASSIGN_OR_RETURN(Out body, Tr(*f.body));
    xq::FunctionDecl decl;
    decl.name = f.name;
    decl.params = f.params;
    decl.body = std::shared_ptr<Expr>(std::move(body.expr));
    out.functions.push_back(std::move(decl));
  }
  var_env_.clear();
  context_ts_.reset();
  // Prolog variables: translated in order, with their schema positions
  // visible to later declarations and to the body.
  for (const auto& v : prog.variables) {
    XCQL_ASSIGN_OR_RETURN(Out init, Tr(*v.init));
    xq::VariableDecl decl;
    decl.name = v.name;
    decl.init = std::shared_ptr<Expr>(std::move(init.expr));
    out.variables.push_back(std::move(decl));
    var_env_.emplace_back(v.name, init.ts);
  }
  XCQL_ASSIGN_OR_RETURN(Out body, Tr(*prog.body));
  out.body = std::move(body.expr);
  return out;
}

Result<ExprPtr> Translator::TranslateExpr(const Expr& e) {
  if (method_ == ExecMethod::kCaQ) return e.Clone();
  var_env_.clear();
  context_ts_.reset();
  XCQL_ASSIGN_OR_RETURN(Out out, Tr(e));
  return std::move(out.expr);
}

const Translator::TsOpt* Translator::LookupVar(const std::string& name) const {
  for (auto it = var_env_.rbegin(); it != var_env_.rend(); ++it) {
    if (it->first == name) return &it->second;
  }
  return nullptr;
}

Result<Translator::Out> Translator::Tr(const Expr& e) {
  switch (e.kind()) {
    case ExprKind::kLiteral:
      return Out{e.Clone(), std::nullopt};
    case ExprKind::kVarRef: {
      const auto& v = static_cast<const VarRefExpr&>(e);
      const TsOpt* ts = LookupVar(v.name);
      return Out{e.Clone(), ts != nullptr ? *ts : TsOpt()};
    }
    case ExprKind::kContextItem:
      return Out{e.Clone(), context_ts_};
    case ExprKind::kSequence: {
      const auto& s = static_cast<const SequenceExpr&>(e);
      std::vector<ExprPtr> items;
      TsOpt merged;
      bool first = true;
      bool uniform = true;
      for (const auto& item : s.items) {
        XCQL_ASSIGN_OR_RETURN(Out o, Tr(*item));
        if (first) {
          merged = o.ts;
          first = false;
        } else if (!(merged.has_value() == o.ts.has_value() &&
                     (!merged.has_value() ||
                      (merged->stream == o.ts->stream &&
                       merged->node == o.ts->node &&
                       merged->wrapper == o.ts->wrapper)))) {
          uniform = false;
        }
        items.push_back(std::move(o.expr));
      }
      return Out{std::make_unique<SequenceExpr>(std::move(items)),
                 uniform ? merged : TsOpt()};
    }
    case ExprKind::kFlwor:
      return TrFlwor(static_cast<const FlworExpr&>(e));
    case ExprKind::kQuantified:
      return TrQuantified(static_cast<const QuantifiedExpr&>(e));
    case ExprKind::kIf: {
      const auto& i = static_cast<const IfExpr&>(e);
      XCQL_ASSIGN_OR_RETURN(Out c, Tr(*i.cond));
      XCQL_ASSIGN_OR_RETURN(Out t, Tr(*i.then_branch));
      XCQL_ASSIGN_OR_RETURN(Out f, Tr(*i.else_branch));
      TsOpt ts;
      if (t.ts.has_value() && f.ts.has_value() &&
          t.ts->stream == f.ts->stream && t.ts->node == f.ts->node &&
          t.ts->wrapper == f.ts->wrapper) {
        ts = t.ts;
      }
      return Out{std::make_unique<IfExpr>(std::move(c.expr), std::move(t.expr),
                                          std::move(f.expr)),
                 ts};
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      XCQL_ASSIGN_OR_RETURN(Out l, Tr(*b.lhs));
      XCQL_ASSIGN_OR_RETURN(Out r, Tr(*b.rhs));
      return Out{std::make_unique<BinaryExpr>(b.op, std::move(l.expr),
                                              std::move(r.expr)),
                 std::nullopt};
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      XCQL_ASSIGN_OR_RETURN(Out o, Tr(*u.operand));
      return Out{std::make_unique<UnaryExpr>(std::move(o.expr)), std::nullopt};
    }
    case ExprKind::kPath:
      return TrPath(static_cast<const PathExpr&>(e));
    case ExprKind::kFilter: {
      const auto& f = static_cast<const FilterExpr&>(e);
      XCQL_ASSIGN_OR_RETURN(Out in, Tr(*f.input));
      XCQL_ASSIGN_OR_RETURN(std::vector<ExprPtr> preds,
                            TrPredicates(f.predicates, in.ts));
      return Out{std::make_unique<FilterExpr>(std::move(in.expr),
                                              std::move(preds)),
                 in.ts};
    }
    case ExprKind::kFunctionCall:
      return TrFunctionCall(static_cast<const FunctionCallExpr&>(e));
    case ExprKind::kDirectElement: {
      const auto& d = static_cast<const DirectElementExpr&>(e);
      std::vector<DirectElementExpr::Attr> attrs;
      for (const auto& a : d.attrs) {
        DirectElementExpr::Attr na;
        na.name = a.name;
        for (const auto& part : a.value) {
          ContentPart np;
          np.text = part.text;
          if (part.expr != nullptr) {
            XCQL_ASSIGN_OR_RETURN(Out o, Tr(*part.expr));
            np.expr = std::move(o.expr);
          }
          na.value.push_back(std::move(np));
        }
        attrs.push_back(std::move(na));
      }
      std::vector<ContentPart> content;
      for (const auto& part : d.content) {
        ContentPart np;
        np.text = part.text;
        if (part.expr != nullptr) {
          XCQL_ASSIGN_OR_RETURN(Out o, Tr(*part.expr));
          np.expr = std::move(o.expr);
        }
        content.push_back(std::move(np));
      }
      return Out{std::make_unique<DirectElementExpr>(d.name, std::move(attrs),
                                                     std::move(content)),
                 std::nullopt};
    }
    case ExprKind::kComputedElement: {
      const auto& c = static_cast<const ComputedElementExpr&>(e);
      XCQL_ASSIGN_OR_RETURN(Out n, Tr(*c.name_expr));
      ExprPtr content;
      if (c.content != nullptr) {
        XCQL_ASSIGN_OR_RETURN(Out o, Tr(*c.content));
        content = std::move(o.expr);
      }
      return Out{std::make_unique<ComputedElementExpr>(std::move(n.expr),
                                                       std::move(content)),
                 std::nullopt};
    }
    case ExprKind::kComputedAttribute: {
      const auto& c = static_cast<const ComputedAttributeExpr&>(e);
      XCQL_ASSIGN_OR_RETURN(Out n, Tr(*c.name_expr));
      ExprPtr content;
      if (c.content != nullptr) {
        XCQL_ASSIGN_OR_RETURN(Out o, Tr(*c.content));
        content = std::move(o.expr);
      }
      return Out{std::make_unique<ComputedAttributeExpr>(std::move(n.expr),
                                                         std::move(content)),
                 std::nullopt};
    }
    case ExprKind::kIntervalProj: {
      const auto& p = static_cast<const IntervalProjExpr&>(e);
      XCQL_ASSIGN_OR_RETURN(Out in, Tr(*p.input));
      XCQL_ASSIGN_OR_RETURN(Out lo, Tr(*p.lo));
      ExprPtr hi;
      if (p.hi != nullptr) {
        XCQL_ASSIGN_OR_RETURN(Out h, Tr(*p.hi));
        hi = std::move(h.expr);
      }
      // QaC+ pushdown: when the projected input is a bare tsid scan
      // (xcql:tsid_scan(s,t)/A with no predicates), give the scan the
      // projection bounds so it can skip filler groups at the index. The
      // projection wrapper stays for lifespan clipping.
      if (method_ == ExecMethod::kQaCPlus &&
          in.expr->kind() == ExprKind::kPath) {
        auto* path = static_cast<PathExpr*>(in.expr.get());
        if (path->input != nullptr &&
            path->input->kind() == ExprKind::kFunctionCall &&
            path->steps.size() == 1 &&
            path->steps[0].axis == PathStep::Axis::kChild &&
            path->steps[0].test == PathStep::Test::kName &&
            path->steps[0].predicates.empty()) {
          auto* call = static_cast<FunctionCallExpr*>(path->input.get());
          if (call->name == "xcql:tsid_scan") {
            call->name = "xcql:tsid_scan_range";
            call->args.push_back(lo.expr->Clone());
            call->args.push_back(hi != nullptr ? hi->Clone()
                                               : lo.expr->Clone());
          }
        }
      }
      // Projection output is fully materialized (holes are resolved during
      // the projection), so downstream steps stay direct: ts resets.
      return Out{std::make_unique<IntervalProjExpr>(
                     std::move(in.expr), std::move(lo.expr), std::move(hi)),
                 std::nullopt};
    }
    case ExprKind::kVersionProj: {
      const auto& p = static_cast<const VersionProjExpr&>(e);
      XCQL_ASSIGN_OR_RETURN(Out in, Tr(*p.input));
      XCQL_ASSIGN_OR_RETURN(Out lo, Tr(*p.lo));
      ExprPtr hi;
      if (p.hi != nullptr) {
        XCQL_ASSIGN_OR_RETURN(Out h, Tr(*p.hi));
        hi = std::move(h.expr);
      }
      return Out{std::make_unique<VersionProjExpr>(
                     std::move(in.expr), std::move(lo.expr), std::move(hi)),
                 std::nullopt};
    }
  }
  return Status::Internal("unhandled expression kind in translator");
}

Result<Translator::Out> Translator::TrFlwor(const FlworExpr& e) {
  size_t env_mark = var_env_.size();
  std::vector<FlworClause> clauses;
  Status st;
  for (const auto& c : e.clauses) {
    FlworClause nc;
    nc.kind = c.kind;
    nc.var = c.var;
    nc.pos_var = c.pos_var;
    switch (c.kind) {
      case FlworClause::Kind::kFor: {
        auto o = Tr(*c.expr);
        if (!o.ok()) {
          st = o.status();
          break;
        }
        nc.expr = std::move(o.value().expr);
        var_env_.emplace_back(c.var, o.value().ts);
        if (!c.pos_var.empty()) var_env_.emplace_back(c.pos_var, TsOpt());
        break;
      }
      case FlworClause::Kind::kLet: {
        auto o = Tr(*c.expr);
        if (!o.ok()) {
          st = o.status();
          break;
        }
        nc.expr = std::move(o.value().expr);
        var_env_.emplace_back(c.var, o.value().ts);
        break;
      }
      case FlworClause::Kind::kWhere: {
        auto o = Tr(*c.expr);
        if (!o.ok()) {
          st = o.status();
          break;
        }
        nc.expr = std::move(o.value().expr);
        break;
      }
      case FlworClause::Kind::kOrderBy: {
        for (const auto& k : c.keys) {
          auto o = Tr(*k.key);
          if (!o.ok()) {
            st = o.status();
            break;
          }
          nc.keys.push_back({std::move(o.value().expr), k.descending});
        }
        break;
      }
    }
    if (!st.ok()) break;
    clauses.push_back(std::move(nc));
  }
  Result<Out> ret = st.ok() ? Tr(*e.ret) : Result<Out>(st);
  var_env_.resize(env_mark);
  if (!ret.ok()) return ret.status();
  return Out{std::make_unique<FlworExpr>(std::move(clauses),
                                         std::move(ret.value().expr)),
             std::nullopt};
}

Result<Translator::Out> Translator::TrQuantified(const QuantifiedExpr& e) {
  size_t env_mark = var_env_.size();
  std::vector<QuantifiedExpr::Binding> bindings;
  Status st;
  for (const auto& b : e.bindings) {
    auto o = Tr(*b.expr);
    if (!o.ok()) {
      st = o.status();
      break;
    }
    bindings.push_back({b.var, std::move(o.value().expr)});
    var_env_.emplace_back(b.var, o.value().ts);
  }
  Result<Out> sat = st.ok() ? Tr(*e.satisfies) : Result<Out>(st);
  var_env_.resize(env_mark);
  if (!sat.ok()) return sat.status();
  return Out{std::make_unique<QuantifiedExpr>(e.every, std::move(bindings),
                                              std::move(sat.value().expr)),
             std::nullopt};
}

Result<Translator::Out> Translator::TrFunctionCall(const FunctionCallExpr& e) {
  if (e.name == "stream") {
    if (e.args.size() != 1 || e.args[0]->kind() != ExprKind::kLiteral) {
      return Status::InvalidArgument(
          "stream() requires a single literal stream name");
    }
    const auto& lit = static_cast<const LiteralExpr&>(*e.args[0]);
    if (!lit.value.is_string()) {
      return Status::InvalidArgument("stream() name must be a string");
    }
    const std::string& name = lit.value.AsString();
    auto it = schemas_.find(name);
    if (it == schemas_.end()) {
      return Status::NotFound("unknown stream '" + name + "'");
    }
    std::vector<ExprPtr> args;
    args.push_back(StringLit(name));
    args.push_back(IntLit(0));
    return Out{std::make_unique<FunctionCallExpr>("xcql:get_fillers",
                                                  std::move(args)),
               TsRef{name, it->second->root(), /*wrapper=*/true}};
  }
  std::vector<ExprPtr> args;
  for (const auto& a : e.args) {
    XCQL_ASSIGN_OR_RETURN(Out o, Tr(*a));
    args.push_back(std::move(o.expr));
  }
  return Out{std::make_unique<FunctionCallExpr>(e.name, std::move(args)),
             std::nullopt};
}

Result<std::vector<ExprPtr>> Translator::TrPredicates(
    const std::vector<ExprPtr>& preds, const TsOpt& target_ts) {
  TsOpt saved = context_ts_;
  context_ts_ = target_ts;
  std::vector<ExprPtr> out;
  Status st;
  for (const auto& p : preds) {
    auto o = Tr(*p);
    if (!o.ok()) {
      st = o.status();
      break;
    }
    out.push_back(std::move(o.value().expr));
  }
  context_ts_ = saved;
  XCQL_RETURN_NOT_OK(st);
  return out;
}

Result<Translator::Out> Translator::ApplyChildStep(
    ExprPtr cur, const TsOpt& ts, const std::string& name,
    std::vector<ExprPtr> preds) {
  bool owned = false;
  if (!ts.has_value()) {
    return Out{AppendStep(std::move(cur), ChildStep(name, std::move(preds)),
                          &owned),
               std::nullopt};
  }
  if (ts->wrapper) {
    TsOpt out_ts;
    if (name == ts->node->name) {
      out_ts = TsRef{ts->stream, ts->node, /*wrapper=*/false};
    }
    return Out{AppendStep(std::move(cur), ChildStep(name, std::move(preds)),
                          &owned),
               out_ts};
  }
  const frag::TagNode* ctag = ts->node->Child(name);
  if (ctag == nullptr) {
    // Not in the schema: the step selects nothing; keep it direct.
    return Out{AppendStep(std::move(cur), ChildStep(name, std::move(preds)),
                          &owned),
               std::nullopt};
  }
  if (!ctag->fragmented()) {
    return Out{AppendStep(std::move(cur), ChildStep(name, std::move(preds)),
                          &owned),
               TsRef{ts->stream, ctag, false}};
  }
  // Fragmented: e/A → xcql:get_fillers(stream, e/hole/@id)/A   (Fig. 3)
  std::vector<PathStep> hole_steps;
  hole_steps.push_back(ChildStep("hole"));
  PathStep idstep;
  idstep.axis = PathStep::Axis::kAttribute;
  idstep.test = PathStep::Test::kName;
  idstep.name = "id";
  hole_steps.push_back(std::move(idstep));
  ExprPtr ids =
      std::make_unique<PathExpr>(std::move(cur), std::move(hole_steps));
  std::vector<ExprPtr> args;
  args.push_back(StringLit(ts->stream));
  args.push_back(std::move(ids));
  ExprPtr call = std::make_unique<FunctionCallExpr>("xcql:get_fillers",
                                                    std::move(args));
  std::vector<PathStep> steps;
  steps.push_back(ChildStep(name));
  ExprPtr result =
      std::make_unique<PathExpr>(std::move(call), std::move(steps));
  // Predicates are hoisted onto the combined result rather than the step:
  // the step's per-node grouping would be per filler *wrapper*, not per
  // original sibling group, which breaks positional predicates. Hoisting
  // restores sibling semantics whenever the context is a single element
  // (FLWOR-bound variables, the common case).
  if (!preds.empty()) {
    result = std::make_unique<FilterExpr>(std::move(result), std::move(preds));
  }
  return Out{std::move(result), TsRef{ts->stream, ctag, false}};
}

Result<Translator::Out> Translator::ExpandWildcard(
    ExprPtr cur, const TsRef& ts, const std::vector<ExprPtr>& raw_preds) {
  // Fig. 3: e/* : (ts1,…,tsn) → (e/c1, …, e/cn). A let binding avoids
  // re-evaluating e once per branch.
  std::string var = StringPrintf("xcql_t%d", fresh_var_counter_++);
  std::vector<ExprPtr> branches;
  TsOpt out_ts;
  for (size_t i = 0; i < ts.node->children.size(); ++i) {
    const auto& c = ts.node->children[i];
    XCQL_ASSIGN_OR_RETURN(
        std::vector<ExprPtr> branch_preds,
        TrPredicates(raw_preds, StepTargetTs(TsOpt(ts), c->name)));
    XCQL_ASSIGN_OR_RETURN(
        Out branch,
        ApplyChildStep(std::make_unique<VarRefExpr>(var), TsOpt(ts), c->name,
                       std::move(branch_preds)));
    if (ts.node->children.size() == 1) out_ts = branch.ts;
    branches.push_back(std::move(branch.expr));
  }
  std::vector<FlworClause> clauses;
  FlworClause let;
  let.kind = FlworClause::Kind::kLet;
  let.var = var;
  let.expr = std::move(cur);
  clauses.push_back(std::move(let));
  return Out{std::make_unique<FlworExpr>(
                 std::move(clauses),
                 std::make_unique<SequenceExpr>(std::move(branches))),
             out_ts};
}

Result<Translator::Out> Translator::ExpandDescendant(
    ExprPtr cur, const TsRef& ts, const std::string& name,
    const std::vector<ExprPtr>& raw_preds) {
  // Fig. 3: e//A → (e/A, e/c1//A, …, e/cn//A), pruned to branches that can
  // reach A, with e bound once.
  std::string var = StringPrintf("xcql_t%d", fresh_var_counter_++);
  std::vector<ExprPtr> branches;
  TsOpt out_ts;
  int producing = 0;
  if (ts.node->Child(name) != nullptr) {
    XCQL_ASSIGN_OR_RETURN(
        std::vector<ExprPtr> branch_preds,
        TrPredicates(raw_preds, StepTargetTs(TsOpt(ts), name)));
    XCQL_ASSIGN_OR_RETURN(
        Out direct,
        ApplyChildStep(std::make_unique<VarRefExpr>(var), TsOpt(ts), name,
                       std::move(branch_preds)));
    out_ts = direct.ts;
    ++producing;
    branches.push_back(std::move(direct.expr));
  }
  for (const auto& c : ts.node->children) {
    if (!HasDescendantNamed(c.get(), name)) continue;
    XCQL_ASSIGN_OR_RETURN(
        Out to_child,
        ApplyChildStep(std::make_unique<VarRefExpr>(var), TsOpt(ts), c->name,
                       {}));
    if (!to_child.ts.has_value()) continue;  // unreachable in practice
    XCQL_ASSIGN_OR_RETURN(Out sub,
                          ExpandDescendant(std::move(to_child.expr),
                                           *to_child.ts, name, raw_preds));
    out_ts = sub.ts;
    ++producing;
    branches.push_back(std::move(sub.expr));
  }
  if (producing != 1) out_ts.reset();
  std::vector<FlworClause> clauses;
  FlworClause let;
  let.kind = FlworClause::Kind::kLet;
  let.var = var;
  let.expr = std::move(cur);
  clauses.push_back(std::move(let));
  return Out{std::make_unique<FlworExpr>(
                 std::move(clauses),
                 std::make_unique<SequenceExpr>(std::move(branches))),
             out_ts};
}

ExprPtr Translator::EmitDeferredPrefix(const TsRef& at,
                                       std::vector<ExprPtr> last_preds) {
  // Walk up to the nearest fragmented ancestor-or-self; the tail of
  // snapshot steps below it is re-applied after the indexed access.
  const frag::TagNode* frag_anchor = at.node;
  std::vector<const frag::TagNode*> tail;  // anchor (exclusive) → at
  while (frag_anchor != nullptr && !frag_anchor->fragmented() &&
         frag_anchor->parent != nullptr) {
    tail.push_back(frag_anchor);
    frag_anchor = frag_anchor->parent;
  }
  ExprPtr cur;
  bool owned = false;
  if (frag_anchor->fragmented()) {
    // QaC+ jump: all fillers with the anchor's tsid, directly (paper §7).
    std::vector<ExprPtr> args;
    args.push_back(StringLit(at.stream));
    args.push_back(IntLit(frag_anchor->id));
    cur = std::make_unique<FunctionCallExpr>("xcql:tsid_scan",
                                             std::move(args));
  } else {
    // Pure-snapshot prefix: the root filler.
    std::vector<ExprPtr> args;
    args.push_back(StringLit(at.stream));
    args.push_back(IntLit(0));
    cur = std::make_unique<FunctionCallExpr>("xcql:get_fillers",
                                             std::move(args));
  }
  // Step out of the filler wrapper into the payload elements, then the
  // snapshot tail in root→leaf order.
  cur = AppendStep(std::move(cur), ChildStep(frag_anchor->name), &owned);
  for (auto it = tail.rbegin(); it != tail.rend(); ++it) {
    cur = AppendStep(std::move(cur), ChildStep((*it)->name), &owned);
  }
  // The forcing step's predicates filter the combined result (they are
  // guaranteed non-positional by the jump guard).
  if (!last_preds.empty()) {
    cur = std::make_unique<FilterExpr>(std::move(cur), std::move(last_preds));
  }
  return cur;
}

Result<Translator::Out> Translator::TrPath(const PathExpr& e) {
  ExprPtr cur;
  TsOpt ts;
  if (e.input != nullptr) {
    XCQL_ASSIGN_OR_RETURN(Out in, Tr(*e.input));
    cur = std::move(in.expr);
    ts = in.ts;
  }
  // cur == nullptr ⇒ absolute path (only meaningful over materialized
  // trees); steps stay untranslated.

  // QaC+ pure-prefix deferral: while the chain from stream() consists of
  // predicate-free name steps, only the schema position advances; the
  // value expression is emitted lazily via the tsid index.
  bool deferring = method_ == ExecMethod::kQaCPlus && ts.has_value() &&
                   ts->wrapper && e.input != nullptr &&
                   e.input->kind() == ExprKind::kFunctionCall;

  for (size_t si = 0; si < e.steps.size(); ++si) {
    const PathStep& step = e.steps[si];

    if (deferring) {
      bool can_defer = (step.axis == PathStep::Axis::kChild ||
                        step.axis == PathStep::Axis::kDescendant) &&
                       step.test == PathStep::Test::kName &&
                       step.predicates.empty();
      if (can_defer) {
        if (ts->wrapper) {
          // First step must select the root payload.
          if (step.axis == PathStep::Axis::kChild) {
            if (step.name == ts->node->name) {
              ts = TsRef{ts->stream, ts->node, false};
              continue;
            }
            // Selects nothing; emit literally.
          } else {  // descendant from the wrapper
            std::vector<const frag::TagNode*> hits;
            FindNamed(ts->node, step.name, &hits);
            if (hits.size() == 1) {
              ts = TsRef{ts->stream, hits[0], false};
              continue;
            }
          }
        } else if (step.axis == PathStep::Axis::kChild) {
          const frag::TagNode* ctag = ts->node->Child(step.name);
          if (ctag != nullptr) {
            ts = TsRef{ts->stream, ctag, false};
            continue;
          }
        } else {  // descendant below the current node
          std::vector<const frag::TagNode*> hits;
          for (const auto& c : ts->node->children) {
            FindNamed(c.get(), step.name, &hits);
          }
          if (hits.size() == 1) {
            ts = TsRef{ts->stream, hits[0], false};
            continue;
          }
        }
      }
      // Forced to materialize. If the forcing step is itself a name test
      // with a unique schema target, jump straight to that target with the
      // tsid index and attach the step's predicates there.
      deferring = false;
      bool preds_jumpable = true;
      for (const auto& p : step.predicates) {
        if (!IsDefinitelyBoolean(*p)) {
          preds_jumpable = false;
          break;
        }
      }
      const frag::TagNode* target = nullptr;
      if (preds_jumpable && step.test == PathStep::Test::kName &&
          (step.axis == PathStep::Axis::kChild ||
           step.axis == PathStep::Axis::kDescendant)) {
        if (ts->wrapper) {
          if (step.axis == PathStep::Axis::kChild) {
            if (step.name == ts->node->name) target = ts->node;
          } else {
            std::vector<const frag::TagNode*> hits;
            FindNamed(ts->node, step.name, &hits);
            if (hits.size() == 1) target = hits[0];
          }
        } else if (step.axis == PathStep::Axis::kChild) {
          target = ts->node->Child(step.name);
        } else {
          std::vector<const frag::TagNode*> hits;
          for (const auto& c : ts->node->children) {
            FindNamed(c.get(), step.name, &hits);
          }
          if (hits.size() == 1) target = hits[0];
        }
      }
      if (target != nullptr) {
        TsRef target_ts{ts->stream, target, false};
        XCQL_ASSIGN_OR_RETURN(std::vector<ExprPtr> preds,
                              TrPredicates(step.predicates, TsOpt(target_ts)));
        cur = EmitDeferredPrefix(target_ts, std::move(preds));
        ts = target_ts;
        continue;  // this step is consumed by the jump
      }
      // No unique target: materialize the current position and translate
      // the step generically.
      if (!ts->wrapper) {
        cur = EmitDeferredPrefix(*ts, {});
      }
      // (wrapper case keeps the original get_fillers(x,0) expression)
    }

    switch (step.axis) {
      case PathStep::Axis::kChild: {
        if (step.test == PathStep::Test::kName) {
          XCQL_ASSIGN_OR_RETURN(std::vector<ExprPtr> preds,
                                TrPredicates(step.predicates, StepTargetTs(
                                    ts, step.name)));
          XCQL_ASSIGN_OR_RETURN(
              Out o, ApplyChildStep(std::move(cur), ts, step.name,
                                    std::move(preds)));
          cur = std::move(o.expr);
          ts = o.ts;
        } else if (step.test == PathStep::Test::kWildcard &&
                   ts.has_value() && !ts->wrapper) {
          XCQL_ASSIGN_OR_RETURN(
              Out o, ExpandWildcard(std::move(cur), *ts, step.predicates));
          cur = std::move(o.expr);
          ts = o.ts;
        } else {
          // text()/node()/wildcard-without-schema: direct.
          XCQL_ASSIGN_OR_RETURN(std::vector<ExprPtr> preds,
                                TrPredicates(step.predicates, std::nullopt));
          PathStep ns;
          ns.axis = step.axis;
          ns.test = step.test;
          ns.name = step.name;
          ns.predicates = std::move(preds);
          bool owned = false;
          cur = AppendStep(std::move(cur), std::move(ns), &owned);
          ts.reset();
        }
        break;
      }
      case PathStep::Axis::kDescendant: {
        if (step.test == PathStep::Test::kName && ts.has_value()) {
          TsRef base = *ts;
          ExprPtr base_expr = std::move(cur);
          if (base.wrapper) {
            // Unwrap to the root payload first.
            XCQL_ASSIGN_OR_RETURN(
                Out unwrapped,
                ApplyChildStep(std::move(base_expr), ts, base.node->name, {}));
            base_expr = std::move(unwrapped.expr);
            if (!unwrapped.ts.has_value()) {
              return Status::Internal("wrapper unwrap lost schema position");
            }
            base = *unwrapped.ts;
            // The root element itself can match e//A.
            if (base.node->name == step.name) {
              XCQL_ASSIGN_OR_RETURN(
                  std::vector<ExprPtr> self_preds,
                  TrPredicates(step.predicates, TsOpt(base)));
              std::string var =
                  StringPrintf("xcql_t%d", fresh_var_counter_++);
              // (self[preds], self//A) — build via let + branches below by
              // re-binding base_expr.
              std::vector<FlworClause> clauses;
              FlworClause let;
              let.kind = FlworClause::Kind::kLet;
              let.var = var;
              let.expr = std::move(base_expr);
              clauses.push_back(std::move(let));
              std::vector<ExprPtr> branches;
              branches.push_back(std::make_unique<FilterExpr>(
                  std::make_unique<VarRefExpr>(var), std::move(self_preds)));
              XCQL_ASSIGN_OR_RETURN(
                  Out sub,
                  ExpandDescendant(std::make_unique<VarRefExpr>(var), base,
                                   step.name, step.predicates));
              branches.push_back(std::move(sub.expr));
              cur = std::make_unique<FlworExpr>(
                  std::move(clauses),
                  std::make_unique<SequenceExpr>(std::move(branches)));
              ts.reset();
              break;
            }
          }
          XCQL_ASSIGN_OR_RETURN(
              Out o, ExpandDescendant(std::move(base_expr), base, step.name,
                                      step.predicates));
          cur = std::move(o.expr);
          ts = o.ts;
        } else {
          XCQL_ASSIGN_OR_RETURN(std::vector<ExprPtr> preds,
                                TrPredicates(step.predicates, std::nullopt));
          PathStep ns;
          ns.axis = step.axis;
          ns.test = step.test;
          ns.name = step.name;
          ns.predicates = std::move(preds);
          bool owned = false;
          cur = AppendStep(std::move(cur), std::move(ns), &owned);
          ts.reset();
        }
        break;
      }
      case PathStep::Axis::kAttribute:
      case PathStep::Axis::kParent: {
        if (step.axis == PathStep::Axis::kParent && ts.has_value() &&
            !ts->wrapper) {
          return Status::Unsupported(
              "parent axis crosses filler boundaries on fragmented data");
        }
        XCQL_ASSIGN_OR_RETURN(std::vector<ExprPtr> preds,
                              TrPredicates(step.predicates, std::nullopt));
        PathStep ns;
        ns.axis = step.axis;
        ns.test = step.test;
        ns.name = step.name;
        ns.predicates = std::move(preds);
        bool owned = false;
        cur = AppendStep(std::move(cur), std::move(ns), &owned);
        ts.reset();
        break;
      }
    }
  }
  if (deferring) {
    // Path ended while deferring: materialize now.
    if (!ts->wrapper) {
      cur = EmitDeferredPrefix(*ts, {});
    }
  }
  return Out{std::move(cur), ts};
}

// --- small helpers used above -------------------------------------------------

Translator::TsOpt Translator::StepTargetTs(const TsOpt& ts,
                                           const std::string& name) const {
  if (!ts.has_value()) return std::nullopt;
  if (ts->wrapper) {
    if (name == ts->node->name) return TsRef{ts->stream, ts->node, false};
    return std::nullopt;
  }
  const frag::TagNode* ctag = ts->node->Child(name);
  if (ctag == nullptr) return std::nullopt;
  return TsRef{ts->stream, ctag, false};
}

std::vector<ExprPtr> Translator::CloneVecOf(const std::vector<ExprPtr>& v) {
  std::vector<ExprPtr> out;
  out.reserve(v.size());
  for (const auto& e : v) out.push_back(e->Clone());
  return out;
}

}  // namespace xcql::lang
