// The schema-based XCQL→XQuery translation of paper Fig. 3: rewrites path
// expressions over the virtual temporal view into expressions over the
// fragmented stream, guided by the Tag Structure.
//
//   stream(x)            → xcql:get_fillers("x", 0)          (root wrapper)
//   e/A  (A snapshot)    → e'/A
//   e/A  (A fragmented)  → xcql:get_fillers("x", e'/hole/@id)/A
//   e//A                 → union over the Tag Structure's paths to A
//   e/*                  → union over the Tag Structure's children
//   e[pred]              → e'[pred']   (pred translated in e's context)
//   e?[t1,t2], e#[v1,v2] → evaluated natively; projections resolve holes
//                          through the store, so their results are fully
//                          materialized and later steps stay direct
//
// Three methods (paper §7):
//   CaQ   — identity translation; the executor materializes the whole
//           temporal view first and the query runs against it.
//   QaC   — the rewriting above, with the paper-faithful linear
//           filler[@id=$fid] scan inside xcql:get_fillers.
//   QaC+  — additionally collapses pure root-anchored path prefixes into a
//           tsid-index scan (xcql:tsid_scan) and uses the hash index for
//           any remaining hole resolution.
#ifndef XCQL_XCQL_TRANSLATOR_H_
#define XCQL_XCQL_TRANSLATOR_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "frag/tag_structure.h"
#include "xq/ast.h"

namespace xcql::lang {

/// \brief Execution method of paper §7.
enum class ExecMethod {
  kCaQ,      // construct (materialize) then query
  kQaC,      // query fragments along the path, linear filler scans
  kQaCPlus,  // tsid-indexed access to only the fillers the query needs
};

const char* ExecMethodName(ExecMethod m);

/// \brief How far back in validTime a query can observe, derived from the
/// interval projections wrapping its store accesses.
///
/// Soundness contract (mirrors QueryRelevance): when `bounded` is true,
/// the query's result cannot depend on any version whose lifespan ended
/// strictly before FloorAt(now) — so a retention policy may compact such
/// versions without changing the query's answer. The analysis may
/// under-approximate the window (report unbounded for a query that is in
/// fact windowed), never the reverse: an access is only credited with a
/// window when it sits under an interval projection whose lower bound is
/// a static literal (absolute dateTime, or `now - duration` lookback) and
/// whose input is a plain path over the access — a predicate anywhere in
/// the projected subtree can observe pre-clip versions, so it voids the
/// bound.
struct ObservableWindow {
  /// True when every store access is window-bounded. False = this query
  /// pins retention: nothing it reads may ever be compacted.
  bool bounded = false;
  /// Sliding lower bound: the query observes nothing ending before
  /// now - lookback_s. -1 = no sliding bound contributes.
  int64_t lookback_s = -1;
  /// Absolute lower bound (epoch seconds); INT64_MIN = none contributes.
  int64_t absolute_lo_s = INT64_MIN;

  /// \brief The concrete floor at evaluation time `now`: the loosest of
  /// the contributing bounds, or DateTime::Start() when not bounded.
  DateTime FloorAt(DateTime now) const;

  /// \brief Folds another access's window in: the union of what the two
  /// can observe (bounded only when both are; the looser bound of each
  /// kind survives).
  void Union(const ObservableWindow& other);
};

/// \brief Conservative summary of what can change a compiled query's result,
/// derived from the translated AST: the store-access calls the Fig. 3
/// rewriting emitted name their streams and tsids explicitly.
///
/// Soundness contract: if inserting a fragment with tsid t on stream s can
/// change the query's result, then either `unbounded` is true or t is in
/// `streams[s]`; if advancing the clock alone can change the result, then
/// `time_sensitive` is true. The converses need not hold (the analysis may
/// over-approximate), so consumers can only use this to *skip* work, never
/// to force it.
struct QueryRelevance {
  /// stream name → tsids whose fragments can affect the result. A scan of
  /// tsid t pulls in t's whole schema subtree, because filler payloads
  /// carry holes whose resolution descends into child tsids.
  std::map<std::string, std::set<int>> streams;
  /// The analysis could not bound the query's data accesses (opaque host
  /// natives, computed stream names): every fragment is relevant.
  bool unbounded = false;
  /// The result can change without any new fragment: clock reads
  /// (xcql:now, current-dateTime, vtTo of open lifespans), interval
  /// relations, temporal projections, or opaque natives reading external
  /// state. Quiescent data does not imply a stable result.
  bool time_sensitive = false;
  /// The minimal observable window across all store accesses: what a
  /// retention policy must keep for this query (docs/RETENTION.md).
  ObservableWindow window;
};

/// \brief Analyzes a *translated* program (the output of
/// Translator::Translate for any method; the CaQ identity translation works
/// too, via its stream() calls). `opaque_functions` names host-registered
/// natives whose data accesses are unknown; calling one makes the result
/// unbounded.
QueryRelevance AnalyzeRelevance(
    const xq::Program& translated,
    const std::map<std::string, const frag::TagStructure*>& schemas,
    const std::set<std::string>& opaque_functions = {});

/// \brief Rewrites parsed XCQL into fragment-operating XQuery.
///
/// The translator tracks, for every subexpression, its position in the Tag
/// Structure of its stream (single position per branch; `//` and `*` are
/// expanded into explicit unions per Fig. 3), flowing positions through
/// FLWOR/quantifier variable bindings and predicate context items.
class Translator {
 public:
  /// \param schemas stream name → its Tag Structure (not owned).
  Translator(std::map<std::string, const frag::TagStructure*> schemas,
             ExecMethod method);

  /// \brief Translates a whole program (prolog function bodies included).
  Result<xq::Program> Translate(const xq::Program& prog);

  /// \brief Translates a single expression (mainly for tests/demos).
  Result<xq::ExprPtr> TranslateExpr(const xq::Expr& e);

 private:
  /// Schema position of an expression's value.
  struct TsRef {
    std::string stream;
    const frag::TagNode* node = nullptr;
    /// True when the value is a <filler> wrapper whose children are the
    /// version elements of tag `node` (the shape get_fillers returns).
    bool wrapper = false;
  };
  using TsOpt = std::optional<TsRef>;

  struct Out {
    xq::ExprPtr expr;
    TsOpt ts;
  };

  Result<Out> Tr(const xq::Expr& e);
  Result<Out> TrPath(const xq::PathExpr& e);
  Result<Out> TrFlwor(const xq::FlworExpr& e);
  Result<Out> TrQuantified(const xq::QuantifiedExpr& e);
  Result<Out> TrFunctionCall(const xq::FunctionCallExpr& e);

  /// Applies one child-name step (with already-translated predicates) to
  /// `cur`.
  Result<Out> ApplyChildStep(xq::ExprPtr cur, const TsOpt& ts,
                             const std::string& name,
                             std::vector<xq::ExprPtr> preds);

  /// Fig. 3 expansions; bind `cur` to a fresh variable and union branches.
  /// `raw_preds` are untranslated; each branch translates them in its own
  /// target context.
  Result<Out> ExpandWildcard(xq::ExprPtr cur, const TsRef& ts,
                             const std::vector<xq::ExprPtr>& raw_preds);
  Result<Out> ExpandDescendant(xq::ExprPtr cur, const TsRef& ts,
                               const std::string& name,
                               const std::vector<xq::ExprPtr>& raw_preds);

  Result<std::vector<xq::ExprPtr>> TrPredicates(
      const std::vector<xq::ExprPtr>& preds, const TsOpt& target_ts);

  /// Schema position reached by a child step named `name` from `ts`.
  TsOpt StepTargetTs(const TsOpt& ts, const std::string& name) const;

  static std::vector<xq::ExprPtr> CloneVecOf(
      const std::vector<xq::ExprPtr>& v);

  /// QaC+ prefix collapse: emits a tsid scan (or the root filler) for the
  /// deferred pure prefix ending at `at`, attaching `last_preds`
  /// (already translated) to the final step.
  xq::ExprPtr EmitDeferredPrefix(const TsRef& at,
                                 std::vector<xq::ExprPtr> last_preds);

  // Environment handling (variables and the context item's position).
  const TsOpt* LookupVar(const std::string& name) const;

  std::map<std::string, const frag::TagStructure*> schemas_;
  ExecMethod method_;
  std::vector<std::pair<std::string, TsOpt>> var_env_;
  TsOpt context_ts_;
  int fresh_var_counter_ = 0;
};

}  // namespace xcql::lang

#endif  // XCQL_XCQL_TRANSLATOR_H_
