#include "xcql/executor.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "common/string_util.h"
#include "frag/assembler.h"
#include "xcql/projections.h"
#include "xq/parser.h"

namespace xcql::lang {

namespace {

Result<int64_t> ItemToFillerId(const xq::Item& item) {
  xq::Atomic a = xq::AtomizeItem(item);
  if (a.is_int()) return a.AsInt();
  auto v = ParseInt64(a.ToStringValue());
  if (!v) {
    return Status::TypeError("bad filler id '" + a.ToStringValue() + "'");
  }
  return *v;
}

bool SubtreeHasHole(const Node& n) {
  if (frag::IsHoleElement(n)) return true;
  for (const NodePtr& c : n.children()) {
    if (c->is_element() && SubtreeHasHole(*c)) return true;
  }
  return false;
}

Result<NodePtr> ResolveHolesDeep(xq::EvalContext* ctx, const NodePtr& node,
                                 int depth) {
  if (depth > 500) {
    return Status::Internal("result materialization recursion too deep");
  }
  if (!node->is_element() || !SubtreeHasHole(*node)) return node;
  NodePtr out = Node::Element(node->name());
  for (const auto& [k, v] : node->attrs()) out->SetAttr(k, v);
  for (const NodePtr& c : node->children()) {
    if (c->is_element() && frag::IsHoleElement(*c)) {
      XCQL_ASSIGN_OR_RETURN(std::vector<NodePtr> versions,
                            ctx->hole_resolver->Resolve(*ctx, *c));
      for (const NodePtr& v : versions) {
        XCQL_ASSIGN_OR_RETURN(NodePtr rv, ResolveHolesDeep(ctx, v, depth + 1));
        out->AddChild(rv == v ? v->Clone() : rv);
      }
      continue;
    }
    if (c->is_element()) {
      XCQL_ASSIGN_OR_RETURN(NodePtr rc, ResolveHolesDeep(ctx, c, depth + 1));
      out->AddChild(rc == c ? c->Clone() : rc);
      continue;
    }
    out->AddChild(Node::Text(c->text()));
  }
  return out;
}

// QaC's rewritten queries fetch fillers by id directly, bypassing hole
// resolution — apply the evaluation's HolePolicy here too, so a filler that
// never arrived is surfaced (holes_unresolved / NotFound) instead of
// silently yielding an empty <filler> wrapper. Returns false when the
// wrapper must be dropped from the result: kOmit omits the missing filler
// entirely, matching the materialized evaluation, which splices nothing
// where the unresolvable hole sat.
Result<bool> ApplyMissingFillerPolicy(xq::EvalContext& ctx, int64_t id,
                                      const NodePtr& wrapper) {
  if (!wrapper->children().empty()) return true;
  switch (ctx.hole_policy) {
    case xq::HolePolicy::kFail:
      return Status::NotFound(
          StringPrintf("get_fillers: missing filler %lld",
                       static_cast<long long>(id)));
    case xq::HolePolicy::kKeepHole:
      ++ctx.holes_unresolved;
      wrapper->AddChild(frag::MakeHole(id, /*tsid=*/0));
      return true;
    case xq::HolePolicy::kOmit:
      ++ctx.holes_unresolved;
      return false;
  }
  return true;
}

}  // namespace

QueryExecutor::QueryExecutor() : registry_(xq::FunctionRegistry::Builtins()) {
  RegisterProjectionFunctions(&registry_);

  // The fragment-access natives read their cost model (linear scan vs hash
  // index) from ctx.linear_fillers, so concurrent evaluations with
  // different methods can share this executor.

  // xcql:get_fillers(stream, ids) — filler wrappers for each id, using the
  // method's cost model (paper-faithful linear scan for QaC).
  registry_.RegisterNative(
      "xcql:get_fillers", 2, 2,
      [this](xq::EvalContext& ctx,
             std::vector<xq::Sequence>& args) -> Result<xq::Sequence> {
        if (args[0].size() != 1) {
          return Status::InvalidArgument("xcql:get_fillers: bad stream arg");
        }
        std::string stream = xq::AtomizeItem(args[0].front()).ToStringValue();
        auto it = stores_.find(stream);
        if (it == stores_.end()) {
          return Status::NotFound("unknown stream '" + stream + "'");
        }
        // The Fig. 3 translation collects hole ids across every version of
        // the context element, so a filler whose hole survives k context
        // republications is requested k times per step. The wrapper already
        // groups all versions of that filler; under the indexed cost model
        // repeats are dropped (first occurrence keeps document order),
        // matching the QaC+ index path's once-per-filler enumeration. The
        // paper-faithful linear mode keeps the literal per-occurrence scan
        // so replication runs reproduce the paper's access pattern.
        std::unordered_set<int64_t> seen;
        xq::Sequence out;
        for (const xq::Item& idi : args[1]) {
          XCQL_ASSIGN_OR_RETURN(int64_t id, ItemToFillerId(idi));
          if (!ctx.linear_fillers && !seen.insert(id).second) continue;
          XCQL_ASSIGN_OR_RETURN(
              NodePtr wrapper,
              it->second->GetFillerWrapper(id, ctx.linear_fillers));
          XCQL_ASSIGN_OR_RETURN(bool keep,
                                ApplyMissingFillerPolicy(ctx, id, wrapper));
          if (keep) out.emplace_back(std::move(wrapper));
        }
        return out;
      });

  // xcql:tsid_scan(stream, tsid) — the QaC+ index path: filler wrappers for
  // every filler id carrying the tsid.
  registry_.RegisterNative(
      "xcql:tsid_scan", 2, 2,
      [this](xq::EvalContext&,
             std::vector<xq::Sequence>& args) -> Result<xq::Sequence> {
        if (args[0].size() != 1 || args[1].size() != 1) {
          return Status::InvalidArgument("xcql:tsid_scan: bad arguments");
        }
        std::string stream = xq::AtomizeItem(args[0].front()).ToStringValue();
        auto it = stores_.find(stream);
        if (it == stores_.end()) {
          return Status::NotFound("unknown stream '" + stream + "'");
        }
        XCQL_ASSIGN_OR_RETURN(int64_t tsid, ItemToFillerId(args[1].front()));
        XCQL_ASSIGN_OR_RETURN(
            std::vector<NodePtr> wrappers,
            it->second->GetFillersByTsid(static_cast<int>(tsid)));
        xq::Sequence out;
        for (NodePtr& w : wrappers) out.emplace_back(std::move(w));
        return out;
      });

  // xcql:tsid_scan_range(stream, tsid, tb, te) — the tsid scan with the
  // enclosing interval projection's bounds pushed down: filler groups whose
  // lifespan cannot intersect [tb, te] are skipped at the index.
  registry_.RegisterNative(
      "xcql:tsid_scan_range", 4, 4,
      [this](xq::EvalContext& ctx,
             std::vector<xq::Sequence>& args) -> Result<xq::Sequence> {
        if (args[0].size() != 1 || args[1].size() != 1) {
          return Status::InvalidArgument("xcql:tsid_scan_range: bad args");
        }
        std::string stream = xq::AtomizeItem(args[0].front()).ToStringValue();
        auto it = stores_.find(stream);
        if (it == stores_.end()) {
          return Status::NotFound("unknown stream '" + stream + "'");
        }
        XCQL_ASSIGN_OR_RETURN(int64_t tsid, ItemToFillerId(args[1].front()));
        XCQL_ASSIGN_OR_RETURN(DateTime tb,
                              ProjectionBoundToDateTime(ctx, args[2]));
        XCQL_ASSIGN_OR_RETURN(DateTime te,
                              ProjectionBoundToDateTime(ctx, args[3]));
        XCQL_ASSIGN_OR_RETURN(std::vector<NodePtr> wrappers,
                              it->second->GetFillersByTsidInRange(
                                  static_cast<int>(tsid), tb, te));
        xq::Sequence out;
        for (NodePtr& w : wrappers) out.emplace_back(std::move(w));
        return out;
      });

  // get_fillers(ids) / get_fillers_list(ids) — the paper's §5/§6.1 spelling,
  // bound to the sole registered stream for hand-written fragment queries.
  auto sole_store_fillers =
      [this](xq::EvalContext& ctx,
             std::vector<xq::Sequence>& args) -> Result<xq::Sequence> {
    if (stores_.size() != 1) {
      return Status::InvalidArgument(
          "get_fillers(ids) requires exactly one registered stream; use "
          "xcql:get_fillers(stream, ids)");
    }
    const frag::FragmentStore* store = stores_.begin()->second;
    xq::Sequence out;
    for (const xq::Item& idi : args[0]) {
      XCQL_ASSIGN_OR_RETURN(int64_t id, ItemToFillerId(idi));
      XCQL_ASSIGN_OR_RETURN(NodePtr wrapper,
                            store->GetFillerWrapper(id, ctx.linear_fillers));
      XCQL_ASSIGN_OR_RETURN(bool keep,
                            ApplyMissingFillerPolicy(ctx, id, wrapper));
      if (keep) out.emplace_back(std::move(wrapper));
    }
    return out;
  };
  registry_.RegisterNative("get_fillers", 1, 1, sole_store_fillers);
  registry_.RegisterNative("get_fillers_list", 1, 1, sole_store_fillers);

  // stream(name) — reaches evaluation only in CaQ mode, where the executor
  // has bound the materialized temporal view as a document.
  registry_.RegisterNative(
      "stream", 1, 1,
      [](xq::EvalContext& ctx,
         std::vector<xq::Sequence>& args) -> Result<xq::Sequence> {
        std::string name = xq::SequenceToString(args[0]);
        auto it = ctx.documents.find(name);
        if (it == ctx.documents.end()) {
          return Status::NotFound(
              "stream('" + name +
              "') reached evaluation without a materialized view — was the "
              "query translated for a fragment method?");
        }
        return xq::SingletonNode(it->second);
      });

  // temporalize(stream-name) — materializes a stream's temporal view.
  registry_.RegisterNative(
      "temporalize", 1, 1,
      [this](xq::EvalContext& ctx,
             std::vector<xq::Sequence>& args) -> Result<xq::Sequence> {
        std::string name = xq::SequenceToString(args[0]);
        auto it = stores_.find(name);
        if (it == stores_.end()) {
          return Status::NotFound("unknown stream '" + name + "'");
        }
        frag::TemporalizeStats tstats;
        XCQL_ASSIGN_OR_RETURN(
            NodePtr view, frag::Temporalize(*it->second, ctx.linear_fillers,
                                            ctx.hole_policy, &tstats));
        ctx.holes_unresolved += tstats.unresolved_holes;
        return xq::SingletonNode(std::move(view));
      });
}

Status QueryExecutor::RegisterStream(const frag::FragmentStore* store) {
  if (store->name().empty()) {
    return Status::InvalidArgument("stream store must have a name");
  }
  if (!stores_.emplace(store->name(), store).second) {
    return Status::InvalidArgument("stream '" + store->name() +
                                   "' already registered");
  }
  resolver_.AddStore(store);
  return Status::OK();
}

void QueryExecutor::RegisterFunction(const std::string& name, int min_arity,
                                     int max_arity,
                                     xq::FunctionRegistry::NativeFn fn) {
  registry_.RegisterNative(name, min_arity, max_arity, std::move(fn));
  custom_natives_.insert(name);
}

std::map<std::string, const frag::TagStructure*> QueryExecutor::Schemas()
    const {
  std::map<std::string, const frag::TagStructure*> schemas;
  for (const auto& [name, store] : stores_) {
    schemas[name] = &store->tag_structure();
  }
  return schemas;
}

Result<PreparedQuery> QueryExecutor::Prepare(std::string_view query,
                                             ExecMethod method) const {
  XCQL_ASSIGN_OR_RETURN(xq::Program prog, xq::ParseQuery(query));
  std::map<std::string, const frag::TagStructure*> schemas = Schemas();
  Translator translator(schemas, method);
  XCQL_ASSIGN_OR_RETURN(xq::Program translated, translator.Translate(prog));
  PreparedQuery out;
  out.method = method;
  out.relevance = AnalyzeRelevance(translated, schemas, custom_natives_);
  out.program = std::make_shared<const xq::Program>(std::move(translated));
  auto t0 = std::chrono::steady_clock::now();
  xq::PlanCompileResult compiled = xq::CompileProgram(*out.program, registry_);
  out.compile_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  out.plan = std::move(compiled.plan);
  out.plan_fallback_reason = std::move(compiled.fallback_reason);
  return out;
}

Result<xq::Sequence> QueryExecutor::Execute(std::string_view query,
                                            const ExecOptions& options) const {
  XCQL_ASSIGN_OR_RETURN(PreparedQuery prepared,
                        Prepare(query, options.method));
  return ExecutePrepared(prepared, options);
}

Result<xq::Sequence> QueryExecutor::ExecutePrepared(
    const PreparedQuery& prepared, const ExecOptions& options) const {
  if (prepared.program == nullptr) {
    return Status::InvalidArgument("ExecutePrepared: empty prepared query");
  }
  xq::EvalContext ctx;
  ctx.functions = &registry_;
  ctx.hole_resolver = &resolver_;
  // Cost model: indexed filler lookup for every method by default. The
  // paper-faithful linear `filler[@id=$fid]` scan — the cost model behind
  // Figure 4's QaC/CaQ numbers — is opt-in via linear_get_fillers
  // (`--paper-faithful` in the CLIs, explicit flags in the benchmarks).
  ctx.linear_fillers = options.linear_get_fillers.value_or(false);
  ctx.arena = std::make_shared<ArenaPool>();
  ctx.hole_policy = options.hole_policy;
  if (options.now.has_value()) {
    ctx.now = *options.now;
  } else {
    DateTime now(0);
    for (const auto& [name, store] : stores_) {
      now = std::max(now, store->max_valid_time());
    }
    ctx.now = now;
  }

  if (prepared.method == ExecMethod::kCaQ) {
    for (const auto& [name, store] : stores_) {
      if (options.cache_materialized_views) {
        std::lock_guard<std::mutex> lock(view_cache_mu_);
        auto cached = view_cache_.find(name);
        if (cached != view_cache_.end() &&
            cached->second.revision == store->revision()) {
          ctx.documents[name] = cached->second.doc;
          continue;
        }
      }
      frag::TemporalizeStats tstats;
      XCQL_ASSIGN_OR_RETURN(NodePtr view,
                            frag::Temporalize(*store, ctx.linear_fillers,
                                              ctx.hole_policy, &tstats));
      ctx.holes_unresolved += tstats.unresolved_holes;
      // Wrap in a synthetic document node so `stream(x)/root-name` steps
      // work exactly as they do over the fragment methods' root wrapper.
      NodePtr doc = Node::Element("#document");
      doc->AddChild(std::move(view));
      if (options.cache_materialized_views) {
        std::lock_guard<std::mutex> lock(view_cache_mu_);
        view_cache_[name] = CachedView{store->revision(), doc};
      }
      ctx.documents[name] = std::move(doc);
    }
  }

  xq::Sequence result;
  const bool compiled = options.use_compiled_plan && prepared.plan != nullptr;
  if (compiled) {
    XCQL_ASSIGN_OR_RETURN(result,
                          prepared.plan->Execute(&ctx, options.bindings));
  } else {
    xq::Evaluator evaluator(&ctx);
    for (const auto& [name, seq] : options.bindings) {
      evaluator.Bind(name, seq);
    }
    XCQL_ASSIGN_OR_RETURN(result, evaluator.EvalProgram(*prepared.program));
  }
  if (options.materialize_result && prepared.method != ExecMethod::kCaQ) {
    XCQL_ASSIGN_OR_RETURN(result, MaterializeResult(std::move(result), &ctx));
  }
  if (options.stats != nullptr) {
    options.stats->holes_unresolved = ctx.holes_unresolved;
    options.stats->used_compiled_plan = compiled;
    options.stats->arena_bytes = ctx.arena->bytes_allocated();
  }
  return result;
}

Result<xq::Sequence> QueryExecutor::MaterializeResult(
    xq::Sequence seq, xq::EvalContext* ctx) const {
  for (xq::Item& item : seq) {
    if (!xq::IsNode(item)) continue;
    XCQL_ASSIGN_OR_RETURN(NodePtr resolved,
                          ResolveHolesDeep(ctx, xq::AsNode(item), 0));
    item = std::move(resolved);
  }
  return seq;
}

Result<std::string> QueryExecutor::TranslateToText(std::string_view query,
                                                   ExecMethod method) const {
  XCQL_ASSIGN_OR_RETURN(xq::Program prog, xq::ParseQuery(query));
  Translator translator(Schemas(), method);
  XCQL_ASSIGN_OR_RETURN(xq::Program translated, translator.Translate(prog));
  std::string out;
  for (const auto& f : translated.functions) {
    out += "declare function " + f.name + "(";
    for (size_t i = 0; i < f.params.size(); ++i) {
      if (i > 0) out += ", ";
      out += "$" + f.params[i];
    }
    out += ") { " + f.body->ToString() + " };\n";
  }
  for (const auto& v : translated.variables) {
    out += "declare variable $" + v.name + " := " + v.init->ToString() +
           ";\n";
  }
  out += translated.body->ToString();
  return out;
}

Result<NodePtr> QueryExecutor::MaterializeView(const std::string& stream,
                                               bool linear) const {
  auto it = stores_.find(stream);
  if (it == stores_.end()) {
    return Status::NotFound("unknown stream '" + stream + "'");
  }
  return frag::Temporalize(*it->second, linear);
}

}  // namespace xcql::lang
