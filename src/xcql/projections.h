// Registers the paper's §6 runtime functions (interval_projection,
// version_projection) as callable natives, so translated queries — and users
// writing the paper's §6.1 style directly — can invoke them by name. The
// underlying semantics live in xq/eval.h and are shared with the `?[…]` /
// `#[…]` operators.
#ifndef XCQL_XCQL_PROJECTIONS_H_
#define XCQL_XCQL_PROJECTIONS_H_

#include "xq/context.h"

namespace xcql::lang {

/// \brief Adds interval_projection(e, tb, te) and
/// version_projection(e, vb, ve) to the registry.
void RegisterProjectionFunctions(xq::FunctionRegistry* registry);

/// \brief Converts an evaluated projection bound (dateTime or parseable
/// string; the literal "now" resolves to ctx.now) to a DateTime.
Result<DateTime> ProjectionBoundToDateTime(xq::EvalContext& ctx,
                                           const xq::Sequence& bound);

}  // namespace xcql::lang

#endif  // XCQL_XCQL_PROJECTIONS_H_
