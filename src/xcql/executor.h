// The query executor: binds named streams (FragmentStores) to the engine,
// translates XCQL per execution method, installs the fragment-access
// natives (xcql:get_fillers, xcql:tsid_scan) with the method's cost model,
// runs the query, and materializes result fragments (paper Fig. 2).
//
// Queries can be compiled once with Prepare() and run many times with
// ExecutePrepared() — the continuous engine does this so a tick pays only
// evaluation, never parsing or translation. ExecutePrepared() is const and
// safe to call from several threads at once as long as no stream store is
// mutated concurrently (evaluation only reads the stores).
#ifndef XCQL_XCQL_EXECUTOR_H_
#define XCQL_XCQL_EXECUTOR_H_

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>

#include "common/result.h"
#include "frag/fragment_store.h"
#include "xcql/translator.h"
#include "xq/context.h"
#include "xq/eval.h"
#include "xq/plan.h"

namespace xcql::lang {

/// \brief Per-execution observability counters, filled when
/// ExecOptions::stats points at one.
struct ExecStats {
  /// Holes whose filler was missing and that were omitted or kept per the
  /// hole policy — the result-completeness signal (0 = complete result).
  int64_t holes_unresolved = 0;

  /// True when this execution ran the compiled plan; false when it ran the
  /// tree-walking interpreter (no plan compiled, or compilation fell back).
  bool used_compiled_plan = false;

  /// Bytes bump-allocated from this execution's evaluation arena (high-water
  /// mark; the arena is monotonic). 0 when arena allocation is disabled.
  size_t arena_bytes = 0;
};

/// \brief Options for one execution.
struct ExecOptions {
  ExecMethod method = ExecMethod::kQaCPlus;

  /// Evaluation time: the value of `now` and the end of still-open
  /// lifespans. Defaults to the latest validTime across registered streams.
  std::optional<DateTime> now;

  /// Resolve holes remaining in result nodes (paper: the result is
  /// materialized after fragment processing).
  bool materialize_result = true;

  /// Overrides the filler-lookup cost model when set: true forces the
  /// paper-faithful linear scan (`--paper-faithful` in the CLIs, and the
  /// paper-replication benchmarks), false forces the hash index. Unset uses
  /// the default cost model: indexed lookup for every method.
  std::optional<bool> linear_get_fillers;

  /// Evaluate through the compiled plan when the prepared query has one
  /// (see xq/plan.h). Off forces the tree-walking interpreter — the
  /// reference evaluator, used by the differential equivalence tests.
  bool use_compiled_plan = true;

  /// External variable bindings visible to the query (names without '$').
  /// The continuous engine uses this to pass the per-query watermark as
  /// `$since` in incremental mode.
  std::map<std::string, xq::Sequence> bindings;

  /// CaQ only: reuse the materialized temporal view across executions as
  /// long as the stream's revision is unchanged. Off by default — the
  /// paper's CaQ cost (Figure 4) includes construction on every run.
  bool cache_materialized_views = false;

  /// What hole resolution (and CaQ view materialization) does when a
  /// filler is missing — the degraded-mode knob for lossy transports
  /// (docs/ROBUSTNESS.md). The default preserves the historical silent-
  /// omit behavior; `stats` makes the omission observable.
  xq::HolePolicy hole_policy = xq::HolePolicy::kOmit;

  /// When non-null, receives this execution's completeness counters.
  ExecStats* stats = nullptr;
};

/// \brief A query compiled once for one execution method: the translated
/// program plus its relevance summary. Cheap to copy (the program is
/// shared and immutable after Prepare).
struct PreparedQuery {
  std::shared_ptr<const xq::Program> program;
  ExecMethod method = ExecMethod::kQaCPlus;
  /// Conservative summary of the fragments that can affect the result and
  /// whether the result can drift without new data (see QueryRelevance).
  QueryRelevance relevance;
  /// The program lowered to a flat operator pipeline (xq/plan.h); null when
  /// the program uses a construct the plan layer does not lower, in which
  /// case `plan_fallback_reason` says why and execution uses the
  /// interpreter.
  std::shared_ptr<const xq::CompiledPlan> plan;
  std::string plan_fallback_reason;
  /// Wall-clock microseconds spent lowering the program in Prepare().
  int64_t compile_micros = 0;
};

/// \brief Executes XCQL queries over registered fragment streams.
///
/// Registration (RegisterStream/RegisterFunction) is not thread-safe;
/// Execute/Prepare/ExecutePrepared afterwards may run concurrently with
/// each other provided the registered stores are not mutated meanwhile.
class QueryExecutor {
 public:
  QueryExecutor();

  /// \brief Registers a stream under its store's name. The store must
  /// outlive the executor.
  Status RegisterStream(const frag::FragmentStore* store);

  /// \brief Registers an application-specific native function, visible to
  /// all queries run through this executor. Its data accesses are opaque to
  /// the relevance analysis, so queries calling it are never tick-skipped.
  void RegisterFunction(const std::string& name, int min_arity, int max_arity,
                        xq::FunctionRegistry::NativeFn fn);

  /// \brief Parses, translates and runs `query` (Prepare + ExecutePrepared).
  Result<xq::Sequence> Execute(std::string_view query,
                               const ExecOptions& options) const;

  /// \brief Parses and translates `query` once; the result can be executed
  /// any number of times without re-compilation.
  Result<PreparedQuery> Prepare(std::string_view query,
                                ExecMethod method) const;

  /// \brief Runs a compiled query. `options.method` is ignored — the method
  /// was fixed at Prepare time.
  Result<xq::Sequence> ExecutePrepared(const PreparedQuery& prepared,
                                       const ExecOptions& options) const;

  /// \brief Returns the translated query text (for inspection/tests; this
  /// is the output of the paper's Fig. 3 mapping).
  Result<std::string> TranslateToText(std::string_view query,
                                      ExecMethod method) const;

  /// \brief Materializes a stream's full temporal view (CaQ's first stage;
  /// also useful on its own). `linear` selects the paper-faithful scan.
  Result<NodePtr> MaterializeView(const std::string& stream, bool linear) const;

  const std::map<std::string, const frag::FragmentStore*>& stores() const {
    return stores_;
  }

 private:
  Result<xq::Sequence> MaterializeResult(xq::Sequence seq,
                                         xq::EvalContext* ctx) const;
  std::map<std::string, const frag::TagStructure*> Schemas() const;

  std::map<std::string, const frag::FragmentStore*> stores_;
  xq::FunctionRegistry registry_;
  // Host-registered native names: opaque to the relevance analysis.
  std::set<std::string> custom_natives_;
  mutable frag::StoreHoleResolver resolver_;
  // CaQ view cache (see ExecOptions::cache_materialized_views). Guarded by
  // view_cache_mu_ so concurrent ExecutePrepared calls stay safe.
  struct CachedView {
    int64_t revision;
    NodePtr doc;
  };
  mutable std::mutex view_cache_mu_;
  mutable std::map<std::string, CachedView> view_cache_;
};

}  // namespace xcql::lang

#endif  // XCQL_XCQL_EXECUTOR_H_
