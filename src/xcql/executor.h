// The query executor: binds named streams (FragmentStores) to the engine,
// translates XCQL per execution method, installs the fragment-access
// natives (xcql:get_fillers, xcql:tsid_scan) with the method's cost model,
// runs the query, and materializes result fragments (paper Fig. 2).
#ifndef XCQL_XCQL_EXECUTOR_H_
#define XCQL_XCQL_EXECUTOR_H_

#include <map>
#include <string>
#include <string_view>

#include "common/result.h"
#include "frag/fragment_store.h"
#include "xcql/translator.h"
#include "xq/context.h"
#include "xq/eval.h"

namespace xcql::lang {

/// \brief Options for one execution.
struct ExecOptions {
  ExecMethod method = ExecMethod::kQaCPlus;

  /// Evaluation time: the value of `now` and the end of still-open
  /// lifespans. Defaults to the latest validTime across registered streams.
  std::optional<DateTime> now;

  /// Resolve holes remaining in result nodes (paper: the result is
  /// materialized after fragment processing).
  bool materialize_result = true;

  /// Overrides the method's filler-lookup cost model when set: true forces
  /// the paper-faithful linear scan, false forces the hash index (used by
  /// the Ablation A benchmark).
  std::optional<bool> linear_get_fillers;

  /// External variable bindings visible to the query (names without '$').
  /// The continuous engine uses this to pass the per-query watermark as
  /// `$since` in incremental mode.
  std::map<std::string, xq::Sequence> bindings;

  /// CaQ only: reuse the materialized temporal view across executions as
  /// long as the stream's revision is unchanged. Off by default — the
  /// paper's CaQ cost (Figure 4) includes construction on every run.
  bool cache_materialized_views = false;
};

/// \brief Executes XCQL queries over registered fragment streams.
///
/// Not thread-safe; use one executor per thread.
class QueryExecutor {
 public:
  QueryExecutor();

  /// \brief Registers a stream under its store's name. The store must
  /// outlive the executor.
  Status RegisterStream(const frag::FragmentStore* store);

  /// \brief Registers an application-specific native function, visible to
  /// all queries run through this executor.
  void RegisterFunction(const std::string& name, int min_arity, int max_arity,
                        xq::FunctionRegistry::NativeFn fn);

  /// \brief Parses, translates and runs `query`.
  Result<xq::Sequence> Execute(std::string_view query,
                               const ExecOptions& options);

  /// \brief Returns the translated query text (for inspection/tests; this
  /// is the output of the paper's Fig. 3 mapping).
  Result<std::string> TranslateToText(std::string_view query,
                                      ExecMethod method);

  /// \brief Materializes a stream's full temporal view (CaQ's first stage;
  /// also useful on its own). `linear` selects the paper-faithful scan.
  Result<NodePtr> MaterializeView(const std::string& stream, bool linear);

 private:
  Result<xq::Sequence> MaterializeResult(xq::Sequence seq,
                                         xq::EvalContext* ctx);

  std::map<std::string, const frag::FragmentStore*> stores_;
  xq::FunctionRegistry registry_;
  frag::StoreHoleResolver resolver_;
  // Per-execution state read by the fragment-access natives.
  bool linear_get_fillers_ = false;
  // CaQ view cache (see ExecOptions::cache_materialized_views).
  struct CachedView {
    int64_t revision;
    NodePtr doc;
  };
  std::map<std::string, CachedView> view_cache_;
};

}  // namespace xcql::lang

#endif  // XCQL_XCQL_EXECUTOR_H_
