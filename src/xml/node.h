// In-memory XML tree model. Two node kinds suffice for the paper's data:
// elements (name, ordered attributes, children) and text. Attribute order is
// preserved so serialization round-trips byte-for-byte.
#ifndef XCQL_XML_NODE_H_
#define XCQL_XML_NODE_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/interner.h"

namespace xcql {

class Node;
using NodePtr = std::shared_ptr<Node>;

/// \brief One XML node: an element or a text node.
///
/// Parent links are non-owning raw pointers; ownership flows strictly
/// downward through `children`, so a tree is destroyed by releasing its
/// root. Trees handed to the query engine are treated as immutable.
/// Every Node is owned by a shared_ptr (the factories enforce this), so the
/// query engine can recover an owning handle from a parent link via
/// shared_from_this().
class Node : public std::enable_shared_from_this<Node> {
 public:
  enum class Kind { kElement, kText, kAttribute };

  /// \brief Creates an element node.
  static NodePtr Element(std::string name);

  /// \brief Creates a text node.
  static NodePtr Text(std::string text);

  /// \brief Creates a free-standing attribute node (name + value). Stored
  /// attributes of parsed elements live in `attrs()`; attribute *nodes*
  /// exist transiently, as results of `@name` steps and computed attribute
  /// constructors in the query engine.
  static NodePtr Attribute(std::string name, std::string value);

  /// \brief Arena-backed variants: node + control block live in `arena`,
  /// which stays alive until the last node allocated from it is released
  /// (see common/arena.h). Used for the transient nodes the query engine
  /// creates per evaluation. Null arena falls back to the heap factories.
  static NodePtr Element(std::string name,
                         const std::shared_ptr<ArenaPool>& arena);
  static NodePtr Text(std::string text,
                      const std::shared_ptr<ArenaPool>& arena);
  static NodePtr Attribute(std::string name, std::string value,
                           const std::shared_ptr<ArenaPool>& arena);

  Kind kind() const { return kind_; }
  bool is_element() const { return kind_ == Kind::kElement; }
  bool is_text() const { return kind_ == Kind::kText; }
  bool is_attribute() const { return kind_ == Kind::kAttribute; }

  /// \brief Element name; empty for text nodes.
  const std::string& name() const { return name_; }

  /// \brief Interned id of name() (kEmptyNameId for text nodes), fixed at
  /// construction. Two nodes have equal names iff their ids are equal, so
  /// tag tests reduce to an int compare.
  int name_id() const { return name_id_; }

  /// \brief Text content (text nodes) or attribute value (attribute nodes);
  /// empty for elements (see StringValue()).
  const std::string& text() const { return text_; }

  const std::vector<std::pair<std::string, std::string>>& attrs() const {
    return attrs_;
  }
  const std::vector<NodePtr>& children() const { return children_; }
  Node* parent() const { return parent_; }

  /// \brief Appends a child and sets its parent link.
  void AddChild(NodePtr child);

  /// \brief Sets (or overwrites) an attribute, preserving first-set order.
  void SetAttr(std::string_view name, std::string value);

  /// \brief Attribute value, or nullptr if absent.
  const std::string* FindAttr(std::string_view name) const;

  /// \brief True if the attribute is present.
  bool HasAttr(std::string_view name) const {
    return FindAttr(name) != nullptr;
  }

  /// \brief Removes an attribute if present.
  void RemoveAttr(std::string_view name);

  /// \brief Removes the first child identical to `child` (by address).
  /// Returns false when not found.
  bool RemoveChild(const Node* child);

  /// \brief Concatenation of all descendant text (the XPath string value).
  std::string StringValue() const;

  /// \brief Child elements with the given name, in document order.
  std::vector<NodePtr> ChildElements(std::string_view name) const;

  /// \brief First child element with the given name, or nullptr.
  NodePtr FirstChildElement(std::string_view name) const;

  /// \brief Deep copy; the copy's parent is null.
  NodePtr Clone() const;

  /// \brief Structural equality: same kind, name/text, attributes (order-
  /// sensitive), and children.
  static bool DeepEqual(const Node& a, const Node& b);

  /// \brief Number of nodes in the subtree rooted here (including this).
  size_t SubtreeSize() const;

 private:
  explicit Node(Kind kind) : kind_(kind) {}

  // Gives the arena factories (std::allocate_shared needs a public
  // constructor) access to the private one without exposing it.
  struct Access;

  Kind kind_;
  int name_id_ = kEmptyNameId;
  std::string name_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::vector<NodePtr> children_;
  Node* parent_ = nullptr;
};

}  // namespace xcql

#endif  // XCQL_XML_NODE_H_
