#include "xml/serializer.h"

namespace xcql {

namespace {

void AppendEscaped(std::string_view s, bool attr, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '&':
        out->append("&amp;");
        break;
      case '<':
        out->append("&lt;");
        break;
      case '>':
        out->append("&gt;");
        break;
      case '"':
        if (attr) {
          out->append("&quot;");
        } else {
          out->push_back(c);
        }
        break;
      default:
        out->push_back(c);
    }
  }
}

bool HasElementChild(const Node& n) {
  for (const auto& c : n.children()) {
    if (c->is_element()) return true;
  }
  return false;
}

void Write(const Node& n, const XmlWriteOptions& opts, int depth,
           std::string* out) {
  if (n.is_text()) {
    AppendEscaped(n.text(), /*attr=*/false, out);
    return;
  }
  if (n.is_attribute()) {
    // Free-standing attribute nodes only appear in debug output.
    out->append(n.name());
    out->append("=\"");
    AppendEscaped(n.text(), /*attr=*/true, out);
    out->push_back('"');
    return;
  }
  std::string pad =
      opts.pretty ? std::string(static_cast<size_t>(depth * opts.indent), ' ')
                  : std::string();
  out->append(pad);
  out->push_back('<');
  out->append(n.name());
  for (const auto& [k, v] : n.attrs()) {
    out->push_back(' ');
    out->append(k);
    out->append("=\"");
    AppendEscaped(v, /*attr=*/true, out);
    out->push_back('"');
  }
  if (n.children().empty()) {
    out->append("/>");
    if (opts.pretty) out->push_back('\n');
    return;
  }
  out->push_back('>');
  // Pretty mode breaks lines only around element children; elements holding
  // just text stay on one line so text content is never perturbed.
  bool break_lines = opts.pretty && HasElementChild(n);
  if (break_lines) out->push_back('\n');
  for (const auto& c : n.children()) {
    if (c->is_text()) {
      if (break_lines) {
        out->append(
            std::string(static_cast<size_t>((depth + 1) * opts.indent), ' '));
      }
      AppendEscaped(c->text(), /*attr=*/false, out);
      if (break_lines) out->push_back('\n');
    } else {
      Write(*c, opts, break_lines ? depth + 1 : 0, out);
      if (opts.pretty && !break_lines) {
        // Nested element inside a no-break parent: already newline-terminated.
      }
    }
  }
  if (break_lines) out->append(pad);
  out->append("</");
  out->append(n.name());
  out->push_back('>');
  if (opts.pretty) out->push_back('\n');
}

}  // namespace

std::string SerializeXml(const Node& node, const XmlWriteOptions& options) {
  std::string out;
  Write(node, options, 0, &out);
  // Trim the trailing newline added by pretty mode for tidy embedding.
  if (options.pretty && !out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

std::string EscapeText(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  AppendEscaped(s, /*attr=*/false, &out);
  return out;
}

std::string EscapeAttr(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  AppendEscaped(s, /*attr=*/true, &out);
  return out;
}

}  // namespace xcql
