#include "xml/serializer.h"

namespace xcql {

namespace {

// Serialization sinks: the same Write() logic drives both the string
// builder and the streaming hash, guaranteeing the hash covers exactly the
// bytes SerializeXml produces.
struct StringEmitter {
  std::string* out;
  void Append(std::string_view s) { out->append(s); }
  void Push(char c) { out->push_back(c); }
};

struct HashEmitter {
  uint64_t h;
  void Append(std::string_view s) { h = HashBytes(s, h); }
  void Push(char c) { h = HashBytes(std::string_view(&c, 1), h); }
};

template <class Emitter>
void AppendEscaped(std::string_view s, bool attr, Emitter* out) {
  for (char c : s) {
    switch (c) {
      case '&':
        out->Append("&amp;");
        break;
      case '<':
        out->Append("&lt;");
        break;
      case '>':
        out->Append("&gt;");
        break;
      case '"':
        if (attr) {
          out->Append("&quot;");
        } else {
          out->Push(c);
        }
        break;
      default:
        out->Push(c);
    }
  }
}

bool HasElementChild(const Node& n) {
  for (const auto& c : n.children()) {
    if (c->is_element()) return true;
  }
  return false;
}

template <class Emitter>
void Write(const Node& n, const XmlWriteOptions& opts, int depth,
           Emitter* out) {
  if (n.is_text()) {
    AppendEscaped(n.text(), /*attr=*/false, out);
    return;
  }
  if (n.is_attribute()) {
    // Free-standing attribute nodes only appear in debug output.
    out->Append(n.name());
    out->Append("=\"");
    AppendEscaped(n.text(), /*attr=*/true, out);
    out->Push('"');
    return;
  }
  std::string pad =
      opts.pretty ? std::string(static_cast<size_t>(depth * opts.indent), ' ')
                  : std::string();
  out->Append(pad);
  out->Push('<');
  out->Append(n.name());
  for (const auto& [k, v] : n.attrs()) {
    out->Push(' ');
    out->Append(k);
    out->Append("=\"");
    AppendEscaped(v, /*attr=*/true, out);
    out->Push('"');
  }
  if (n.children().empty()) {
    out->Append("/>");
    if (opts.pretty) out->Push('\n');
    return;
  }
  out->Push('>');
  // Pretty mode breaks lines only around element children; elements holding
  // just text stay on one line so text content is never perturbed.
  bool break_lines = opts.pretty && HasElementChild(n);
  if (break_lines) out->Push('\n');
  for (const auto& c : n.children()) {
    if (c->is_text()) {
      if (break_lines) {
        out->Append(
            std::string(static_cast<size_t>((depth + 1) * opts.indent), ' '));
      }
      AppendEscaped(c->text(), /*attr=*/false, out);
      if (break_lines) out->Push('\n');
    } else {
      Write(*c, opts, break_lines ? depth + 1 : 0, out);
      if (opts.pretty && !break_lines) {
        // Nested element inside a no-break parent: already newline-terminated.
      }
    }
  }
  if (break_lines) out->Append(pad);
  out->Append("</");
  out->Append(n.name());
  out->Push('>');
  if (opts.pretty) out->Push('\n');
}

}  // namespace

std::string SerializeXml(const Node& node, const XmlWriteOptions& options) {
  std::string out;
  StringEmitter emitter{&out};
  Write(node, options, 0, &emitter);
  // Trim the trailing newline added by pretty mode for tidy embedding.
  if (options.pretty && !out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

std::string EscapeText(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  StringEmitter emitter{&out};
  AppendEscaped(s, /*attr=*/false, &emitter);
  return out;
}

std::string EscapeAttr(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  StringEmitter emitter{&out};
  AppendEscaped(s, /*attr=*/true, &emitter);
  return out;
}

uint64_t HashBytes(std::string_view s, uint64_t seed) {
  uint64_t h = seed;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;  // FNV-1a 64-bit prime
  }
  return h;
}

uint64_t HashSerializedXml(const Node& node, uint64_t seed) {
  HashEmitter emitter{seed};
  Write(node, XmlWriteOptions{}, 0, &emitter);
  return emitter.h;
}

}  // namespace xcql
