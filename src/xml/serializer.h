// XML serialization of Node trees with correct escaping, optional
// pretty-printing, and helpers shared by the wire format and the tests.
#ifndef XCQL_XML_SERIALIZER_H_
#define XCQL_XML_SERIALIZER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "xml/node.h"

namespace xcql {

/// \brief Options controlling serialization.
struct XmlWriteOptions {
  /// Indent nested elements; text-only elements stay on one line.
  bool pretty = false;
  /// Indentation width when pretty-printing.
  int indent = 2;
};

/// \brief Serializes a subtree to XML text.
std::string SerializeXml(const Node& node, const XmlWriteOptions& options = {});

/// \brief Escapes character data (&, <, >).
std::string EscapeText(std::string_view s);

/// \brief Escapes an attribute value (&, <, >, ").
std::string EscapeAttr(std::string_view s);

/// \brief FNV-1a offset basis; seed for HashBytes chains.
inline constexpr uint64_t kFnv64Offset = 0xcbf29ce484222325ULL;

/// \brief Streaming 64-bit FNV-1a over raw bytes. Pass a previous result as
/// `seed` to hash a concatenation without building it.
uint64_t HashBytes(std::string_view s, uint64_t seed = kFnv64Offset);

/// \brief 64-bit FNV-1a hash of exactly the bytes SerializeXml(node) would
/// produce (compact form), computed by streaming the serialization events —
/// the string is never materialized. Used by the continuous engine to
/// deduplicate emitted results with O(1) memory per item.
uint64_t HashSerializedXml(const Node& node, uint64_t seed = kFnv64Offset);

}  // namespace xcql

#endif  // XCQL_XML_SERIALIZER_H_
