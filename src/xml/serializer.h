// XML serialization of Node trees with correct escaping, optional
// pretty-printing, and helpers shared by the wire format and the tests.
#ifndef XCQL_XML_SERIALIZER_H_
#define XCQL_XML_SERIALIZER_H_

#include <string>
#include <string_view>

#include "xml/node.h"

namespace xcql {

/// \brief Options controlling serialization.
struct XmlWriteOptions {
  /// Indent nested elements; text-only elements stay on one line.
  bool pretty = false;
  /// Indentation width when pretty-printing.
  int indent = 2;
};

/// \brief Serializes a subtree to XML text.
std::string SerializeXml(const Node& node, const XmlWriteOptions& options = {});

/// \brief Escapes character data (&, <, >).
std::string EscapeText(std::string_view s);

/// \brief Escapes an attribute value (&, <, >, ").
std::string EscapeAttr(std::string_view s);

}  // namespace xcql

#endif  // XCQL_XML_SERIALIZER_H_
