// Non-validating XML parser producing the Node tree of node.h.
//
// Supports the subset the paper's data model needs: elements, attributes
// (single- or double-quoted), character data, the five predefined entities
// plus numeric character references, comments, CDATA sections, processing
// instructions and XML declarations (skipped), and DOCTYPE declarations
// (skipped — the paper's DTDs are documentation, not validation input).
#ifndef XCQL_XML_PARSER_H_
#define XCQL_XML_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "xml/node.h"

namespace xcql {

/// \brief Options controlling XML parsing.
struct XmlParseOptions {
  /// Drop text nodes that are entirely whitespace between elements.
  /// Documents in this system are data-centric, so this defaults to true;
  /// mixed-content text with any non-space character is always kept intact.
  bool strip_inter_element_whitespace = true;
};

/// \brief Parses a complete document; returns its single root element.
Result<NodePtr> ParseXml(std::string_view input,
                         const XmlParseOptions& options = {});

/// \brief Parses a sequence of sibling fragments (no single-root
/// requirement), as they appear on the wire in a fragment stream.
Result<std::vector<NodePtr>> ParseXmlFragments(
    std::string_view input, const XmlParseOptions& options = {});

}  // namespace xcql

#endif  // XCQL_XML_PARSER_H_
