#include "xml/parser.h"

#include <cctype>
#include <string>

#include "common/string_util.h"

namespace xcql {

namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

bool IsAllWhitespace(std::string_view s) {
  for (char c : s) {
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return false;
  }
  return true;
}

class Parser {
 public:
  Parser(std::string_view input, const XmlParseOptions& options)
      : in_(input), opts_(options) {}

  Result<std::vector<NodePtr>> ParseTopLevel() {
    std::vector<NodePtr> roots;
    for (;;) {
      SkipMisc();
      if (AtEnd()) break;
      if (Peek() != '<') {
        return Err("unexpected character data at top level");
      }
      XCQL_ASSIGN_OR_RETURN(NodePtr el, ParseElement());
      roots.push_back(std::move(el));
    }
    return roots;
  }

 private:
  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < in_.size() ? in_[pos_ + off] : '\0';
  }

  Status Err(const std::string& msg) const {
    // Compute 1-based line/column for the error position.
    size_t line = 1, col = 1;
    for (size_t i = 0; i < pos_ && i < in_.size(); ++i) {
      if (in_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return Status::ParseError(msg + StringPrintf(" at line %zu col %zu", line,
                                                 col));
  }

  void SkipWs() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  bool TryConsume(std::string_view lit) {
    if (in_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  // Skips whitespace, comments, PIs/XML declarations, and DOCTYPE.
  void SkipMisc() {
    for (;;) {
      SkipWs();
      if (TryConsume("<!--")) {
        size_t end = in_.find("-->", pos_);
        pos_ = end == std::string_view::npos ? in_.size() : end + 3;
      } else if (pos_ + 1 < in_.size() && Peek() == '<' &&
                 PeekAt(1) == '?') {
        size_t end = in_.find("?>", pos_);
        pos_ = end == std::string_view::npos ? in_.size() : end + 2;
      } else if (in_.substr(pos_, 9) == "<!DOCTYPE") {
        SkipDoctype();
      } else {
        return;
      }
    }
  }

  void SkipDoctype() {
    // Balance '<' and '>' to skip internal subsets like <!DOCTYPE x [ ... ]>.
    int depth = 0;
    while (!AtEnd()) {
      char c = in_[pos_++];
      if (c == '<') {
        ++depth;
      } else if (c == '>') {
        if (--depth == 0) return;
      }
    }
  }

  Result<std::string> ParseName() {
    size_t start = pos_;
    if (AtEnd() || !IsNameStartChar(Peek())) {
      return Err("expected name");
    }
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    return std::string(in_.substr(start, pos_ - start));
  }

  // Decodes entity/char references in raw character data.
  Result<std::string> DecodeText(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out.push_back(raw[i++]);
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        return Err("unterminated entity reference");
      }
      std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "lt") {
        out.push_back('<');
      } else if (ent == "gt") {
        out.push_back('>');
      } else if (ent == "amp") {
        out.push_back('&');
      } else if (ent == "apos") {
        out.push_back('\'');
      } else if (ent == "quot") {
        out.push_back('"');
      } else if (!ent.empty() && ent[0] == '#') {
        int64_t code = 0;
        bool ok = false;
        if (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X')) {
          code = 0;
          ok = ent.size() > 2;
          for (size_t k = 2; k < ent.size() && ok; ++k) {
            char c = ent[k];
            int d;
            if (c >= '0' && c <= '9') {
              d = c - '0';
            } else if (c >= 'a' && c <= 'f') {
              d = c - 'a' + 10;
            } else if (c >= 'A' && c <= 'F') {
              d = c - 'A' + 10;
            } else {
              ok = false;
              break;
            }
            code = code * 16 + d;
          }
        } else {
          auto v = ParseInt64(ent.substr(1));
          ok = v.has_value();
          if (ok) code = *v;
        }
        if (!ok || code <= 0 || code > 0x10FFFF) {
          return Err("bad character reference &" + std::string(ent) + ";");
        }
        AppendUtf8(&out, static_cast<uint32_t>(code));
      } else {
        return Err("unknown entity &" + std::string(ent) + ";");
      }
      i = semi + 1;
    }
    return out;
  }

  static void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<std::string> ParseAttrValue() {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Err("expected quoted attribute value");
    }
    char quote = Peek();
    ++pos_;
    size_t start = pos_;
    while (!AtEnd() && Peek() != quote) {
      if (Peek() == '<') return Err("'<' in attribute value");
      ++pos_;
    }
    if (AtEnd()) return Err("unterminated attribute value");
    std::string_view raw = in_.substr(start, pos_ - start);
    ++pos_;  // closing quote
    return DecodeText(raw);
  }

  Result<NodePtr> ParseElement() {
    if (!TryConsume("<")) return Err("expected '<'");
    XCQL_ASSIGN_OR_RETURN(std::string name, ParseName());
    NodePtr el = Node::Element(std::move(name));
    // Attributes.
    for (;;) {
      SkipWs();
      if (AtEnd()) return Err("unterminated start tag");
      if (Peek() == '>' || Peek() == '/') break;
      XCQL_ASSIGN_OR_RETURN(std::string aname, ParseName());
      SkipWs();
      if (!TryConsume("=")) return Err("expected '=' after attribute name");
      SkipWs();
      XCQL_ASSIGN_OR_RETURN(std::string aval, ParseAttrValue());
      if (el->HasAttr(aname)) {
        return Err("duplicate attribute '" + aname + "'");
      }
      el->SetAttr(aname, std::move(aval));
    }
    if (TryConsume("/>")) return el;
    if (!TryConsume(">")) return Err("expected '>'");
    // Content.
    XCQL_RETURN_NOT_OK(ParseContent(el.get()));
    // End tag: ParseContent stops right after "</".
    XCQL_ASSIGN_OR_RETURN(std::string ename, ParseName());
    if (ename != el->name()) {
      return Err("mismatched end tag </" + ename + "> for <" + el->name() +
                 ">");
    }
    SkipWs();
    if (!TryConsume(">")) return Err("expected '>' in end tag");
    return el;
  }

  Status ParseContent(Node* el) {
    std::string pending_text;
    auto flush_text = [&]() -> Status {
      if (pending_text.empty()) return Status::OK();
      if (!opts_.strip_inter_element_whitespace ||
          !IsAllWhitespace(pending_text)) {
        XCQL_ASSIGN_OR_RETURN(std::string decoded, DecodeText(pending_text));
        el->AddChild(Node::Text(std::move(decoded)));
      }
      pending_text.clear();
      return Status::OK();
    };
    for (;;) {
      if (AtEnd()) return Err("unterminated element <" + el->name() + ">");
      if (Peek() == '<') {
        if (TryConsume("</")) {
          return flush_text();
        }
        if (TryConsume("<!--")) {
          size_t end = in_.find("-->", pos_);
          if (end == std::string_view::npos) {
            return Err("unterminated comment");
          }
          pos_ = end + 3;
          continue;
        }
        if (TryConsume("<![CDATA[")) {
          size_t end = in_.find("]]>", pos_);
          if (end == std::string_view::npos) {
            return Err("unterminated CDATA section");
          }
          // CDATA content is literal; merge into pending text pre-escaped by
          // temporarily flushing, then adding raw text directly.
          XCQL_RETURN_NOT_OK(flush_text());
          el->AddChild(Node::Text(std::string(in_.substr(pos_, end - pos_))));
          pos_ = end + 3;
          continue;
        }
        if (PeekAt(1) == '?') {
          size_t end = in_.find("?>", pos_);
          if (end == std::string_view::npos) {
            return Err("unterminated processing instruction");
          }
          pos_ = end + 2;
          continue;
        }
        XCQL_RETURN_NOT_OK(flush_text());
        XCQL_ASSIGN_OR_RETURN(NodePtr child, ParseElement());
        el->AddChild(std::move(child));
      } else {
        pending_text.push_back(Peek());
        ++pos_;
      }
    }
  }

  std::string_view in_;
  XmlParseOptions opts_;
  size_t pos_ = 0;
};

}  // namespace

Result<NodePtr> ParseXml(std::string_view input,
                         const XmlParseOptions& options) {
  Parser p(input, options);
  XCQL_ASSIGN_OR_RETURN(std::vector<NodePtr> roots, p.ParseTopLevel());
  if (roots.size() != 1) {
    return Status::ParseError(
        StringPrintf("expected exactly one root element, found %zu",
                     roots.size()));
  }
  return roots[0];
}

Result<std::vector<NodePtr>> ParseXmlFragments(std::string_view input,
                                               const XmlParseOptions& options) {
  Parser p(input, options);
  return p.ParseTopLevel();
}

}  // namespace xcql
