#include "xml/node.h"

namespace xcql {

// A derived struct may use the private constructor because it is a member
// of Node itself; allocate_shared needs its constructor to be public.
struct Node::Access : Node {
  explicit Access(Kind kind) : Node(kind) {}
};

NodePtr Node::Element(std::string name) {
  NodePtr n(new Node(Kind::kElement));
  n->name_id_ = InternName(name);
  n->name_ = std::move(name);
  return n;
}

NodePtr Node::Text(std::string text) {
  NodePtr n(new Node(Kind::kText));
  n->text_ = std::move(text);
  return n;
}

NodePtr Node::Attribute(std::string name, std::string value) {
  NodePtr n(new Node(Kind::kAttribute));
  n->name_id_ = InternName(name);
  n->name_ = std::move(name);
  n->text_ = std::move(value);
  return n;
}

NodePtr Node::Element(std::string name,
                      const std::shared_ptr<ArenaPool>& arena) {
  if (arena == nullptr) return Element(std::move(name));
  NodePtr n = std::allocate_shared<Access>(ArenaAllocator<Access>(arena),
                                           Kind::kElement);
  n->name_id_ = InternName(name);
  n->name_ = std::move(name);
  return n;
}

NodePtr Node::Text(std::string text, const std::shared_ptr<ArenaPool>& arena) {
  if (arena == nullptr) return Text(std::move(text));
  NodePtr n =
      std::allocate_shared<Access>(ArenaAllocator<Access>(arena), Kind::kText);
  n->text_ = std::move(text);
  return n;
}

NodePtr Node::Attribute(std::string name, std::string value,
                        const std::shared_ptr<ArenaPool>& arena) {
  if (arena == nullptr) return Attribute(std::move(name), std::move(value));
  NodePtr n = std::allocate_shared<Access>(ArenaAllocator<Access>(arena),
                                           Kind::kAttribute);
  n->name_id_ = InternName(name);
  n->name_ = std::move(name);
  n->text_ = std::move(value);
  return n;
}

void Node::AddChild(NodePtr child) {
  child->parent_ = this;
  children_.push_back(std::move(child));
}

void Node::SetAttr(std::string_view name, std::string value) {
  for (auto& [k, v] : attrs_) {
    if (k == name) {
      v = std::move(value);
      return;
    }
  }
  attrs_.emplace_back(std::string(name), std::move(value));
}

const std::string* Node::FindAttr(std::string_view name) const {
  for (const auto& [k, v] : attrs_) {
    if (k == name) return &v;
  }
  return nullptr;
}

void Node::RemoveAttr(std::string_view name) {
  for (auto it = attrs_.begin(); it != attrs_.end(); ++it) {
    if (it->first == name) {
      attrs_.erase(it);
      return;
    }
  }
}

bool Node::RemoveChild(const Node* child) {
  for (auto it = children_.begin(); it != children_.end(); ++it) {
    if (it->get() == child) {
      children_.erase(it);
      return true;
    }
  }
  return false;
}

std::string Node::StringValue() const {
  if (is_text() || is_attribute()) return text_;
  std::string out;
  for (const auto& c : children_) {
    out += c->StringValue();
  }
  return out;
}

std::vector<NodePtr> Node::ChildElements(std::string_view name) const {
  std::vector<NodePtr> out;
  for (const auto& c : children_) {
    if (c->is_element() && c->name_ == name) out.push_back(c);
  }
  return out;
}

NodePtr Node::FirstChildElement(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->is_element() && c->name_ == name) return c;
  }
  return nullptr;
}

NodePtr Node::Clone() const {
  NodePtr n(new Node(kind_));
  n->name_id_ = name_id_;
  n->name_ = name_;
  n->text_ = text_;
  n->attrs_ = attrs_;
  n->children_.reserve(children_.size());
  for (const auto& c : children_) {
    NodePtr cc = c->Clone();
    cc->parent_ = n.get();
    n->children_.push_back(std::move(cc));
  }
  return n;
}

bool Node::DeepEqual(const Node& a, const Node& b) {
  if (a.kind_ != b.kind_) return false;
  if (a.is_text()) return a.text_ == b.text_;
  if (a.is_attribute()) return a.name_ == b.name_ && a.text_ == b.text_;
  if (a.name_ != b.name_ || a.attrs_ != b.attrs_ ||
      a.children_.size() != b.children_.size()) {
    return false;
  }
  for (size_t i = 0; i < a.children_.size(); ++i) {
    if (!DeepEqual(*a.children_[i], *b.children_[i])) return false;
  }
  return true;
}

size_t Node::SubtreeSize() const {
  size_t n = 1;
  for (const auto& c : children_) n += c->SubtreeSize();
  return n;
}

}  // namespace xcql
