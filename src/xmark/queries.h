// The XMark queries used in the paper's evaluation (§7): Q1 (selective),
// Q2 (range) and Q5 (cumulative aggregate), phrased over the auction
// stream.
#ifndef XCQL_XMARK_QUERIES_H_
#define XCQL_XMARK_QUERIES_H_

#include <string>
#include <vector>

namespace xcql::xmark {

/// \brief Identifiers of the paper's three benchmark queries.
enum class XMarkQueryId { kQ1, kQ2, kQ5 };

const char* XMarkQueryName(XMarkQueryId id);

/// \brief XCQL text of a benchmark query over stream("auction").
std::string XMarkQueryText(XMarkQueryId id);

/// \brief All three queries, in the paper's order.
std::vector<XMarkQueryId> AllXMarkQueries();

}  // namespace xcql::xmark

#endif  // XCQL_XMARK_QUERIES_H_
