#include "xmark/generator.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "common/string_util.h"

namespace xcql::xmark {

namespace {

// Compact stand-in for xmlgen's Shakespeare vocabulary.
constexpr const char* kWords[] = {
    "stream",   "auction",  "vintage",  "silver",  "golden",   "ancient",
    "modern",   "rare",     "fine",     "classic", "original", "signed",
    "limited",  "edition",  "antique",  "crystal", "wooden",   "marble",
    "bronze",   "ceramic",  "painting", "watch",   "camera",   "guitar",
    "table",    "mirror",   "lamp",     "vase",    "clock",    "ring",
    "necklace", "bracelet", "coin",     "stamp",   "book",     "map",
    "print",    "poster",   "sculpture", "carpet", "excellent", "condition",
    "shipping", "included", "worldwide", "insured", "tracked",  "priority",
    "seller",   "reserve",  "minimum",  "increment", "bidder", "winner",
    "estate",   "private",  "collection", "museum", "quality", "certified",
    "authentic", "verified", "graded",  "sealed",  "boxed",    "complete",
    "working",  "restored", "polished", "engraved", "handmade", "imported",
};
constexpr size_t kNumWords = sizeof(kWords) / sizeof(kWords[0]);

constexpr const char* kRegions[] = {"africa",   "asia",     "australia",
                                    "europe",   "namerica", "samerica"};

constexpr const char* kCities[] = {"Paris",  "Dallas", "Tokyo",
                                   "Berlin", "Sydney", "Lagos"};
constexpr const char* kCountries[] = {"France",  "UnitedStates", "Japan",
                                      "Germany", "Australia",    "Nigeria"};

class Builder {
 public:
  explicit Builder(const XMarkOptions& options)
      : rng_(options.seed), counts_(CountsForScale(options.scale)) {}

  NodePtr Build() {
    NodePtr site = Node::Element("site");
    site->AddChild(BuildRegions());
    site->AddChild(BuildCategories());
    site->AddChild(BuildPeople());
    site->AddChild(BuildOpenAuctions());
    site->AddChild(BuildClosedAuctions());
    return site;
  }

 private:
  std::string Words(int n) {
    std::string out;
    for (int i = 0; i < n; ++i) {
      if (i > 0) out += ' ';
      out += kWords[rng_.Uniform(kNumWords)];
    }
    return out;
  }

  std::string RandomDate() {
    return StringPrintf("%02d/%02d/%04d",
                        static_cast<int>(rng_.UniformRange(1, 12)),
                        static_cast<int>(rng_.UniformRange(1, 28)),
                        static_cast<int>(rng_.UniformRange(1998, 2003)));
  }

  static NodePtr TextElement(const std::string& name, std::string text) {
    NodePtr e = Node::Element(name);
    e->AddChild(Node::Text(std::move(text)));
    return e;
  }

  NodePtr BuildRegions() {
    NodePtr regions = Node::Element("regions");
    int item_no = 0;
    for (int r = 0; r < 6; ++r) {
      NodePtr region = Node::Element(kRegions[r]);
      int count = counts_.items / 6 + (r < counts_.items % 6 ? 1 : 0);
      for (int i = 0; i < count; ++i) {
        region->AddChild(BuildItem(item_no++));
      }
      regions->AddChild(std::move(region));
    }
    return regions;
  }

  NodePtr BuildItem(int n) {
    NodePtr item = Node::Element("item");
    item->SetAttr("id", "item" + std::to_string(n));
    item->AddChild(TextElement("location",
                               kCountries[rng_.Uniform(6)]));
    item->AddChild(TextElement(
        "quantity", std::to_string(rng_.UniformRange(1, 5))));
    item->AddChild(TextElement("name", Words(2)));
    item->AddChild(TextElement("payment", "Creditcard"));
    NodePtr description = Node::Element("description");
    description->AddChild(TextElement(
        "text", Words(static_cast<int>(rng_.UniformRange(320, 560)))));
    item->AddChild(std::move(description));
    item->AddChild(TextElement("shipping", Words(4)));
    int cats = static_cast<int>(rng_.UniformRange(1, 3));
    for (int c = 0; c < cats; ++c) {
      NodePtr incat = Node::Element("incategory");
      incat->SetAttr("category",
                     "category" + std::to_string(rng_.Uniform(
                         static_cast<uint64_t>(counts_.categories))));
      item->AddChild(std::move(incat));
    }
    return item;
  }

  NodePtr BuildCategories() {
    NodePtr categories = Node::Element("categories");
    for (int i = 0; i < counts_.categories; ++i) {
      NodePtr category = Node::Element("category");
      category->SetAttr("id", "category" + std::to_string(i));
      category->AddChild(TextElement("name", Words(2)));
      NodePtr description = Node::Element("description");
      description->AddChild(TextElement(
          "text", Words(static_cast<int>(rng_.UniformRange(60, 110)))));
      category->AddChild(std::move(description));
      categories->AddChild(std::move(category));
    }
    return categories;
  }

  NodePtr BuildPeople() {
    NodePtr people = Node::Element("people");
    for (int i = 0; i < counts_.persons; ++i) {
      NodePtr person = Node::Element("person");
      person->SetAttr("id", "person" + std::to_string(i));
      std::string first = kWords[rng_.Uniform(kNumWords)];
      std::string last = kWords[rng_.Uniform(kNumWords)];
      person->AddChild(TextElement("name", first + " " + last));
      person->AddChild(
          TextElement("emailaddress", "mailto:" + first + "@" + last + ".com"));
      person->AddChild(TextElement(
          "phone",
          StringPrintf("+%d (%d) %d", static_cast<int>(rng_.UniformRange(1, 99)),
                       static_cast<int>(rng_.UniformRange(100, 999)),
                       static_cast<int>(rng_.UniformRange(1000000, 9999999)))));
      NodePtr address = Node::Element("address");
      address->AddChild(TextElement(
          "street", StringPrintf("%d %s St",
                                 static_cast<int>(rng_.UniformRange(1, 99)),
                                 kWords[rng_.Uniform(kNumWords)])));
      address->AddChild(TextElement("city", kCities[rng_.Uniform(6)]));
      address->AddChild(TextElement("country", kCountries[rng_.Uniform(6)]));
      address->AddChild(TextElement(
          "zipcode", std::to_string(rng_.UniformRange(10000, 99999))));
      person->AddChild(std::move(address));
      NodePtr profile = Node::Element("profile");
      profile->SetAttr("income",
                       StringPrintf("%.2f", 20000 + rng_.NextDouble() * 80000));
      NodePtr interest = Node::Element("interest");
      interest->SetAttr("category",
                        "category" + std::to_string(rng_.Uniform(
                            static_cast<uint64_t>(counts_.categories))));
      profile->AddChild(std::move(interest));
      profile->AddChild(TextElement("education", "Graduate School"));
      profile->AddChild(TextElement("business", rng_.Bernoulli(0.5) ? "Yes"
                                                                    : "No"));
      person->AddChild(std::move(profile));
      people->AddChild(std::move(person));
    }
    return people;
  }

  NodePtr BuildOpenAuctions() {
    NodePtr auctions = Node::Element("open_auctions");
    for (int i = 0; i < counts_.open_auctions; ++i) {
      NodePtr a = Node::Element("open_auction");
      a->SetAttr("id", "open_auction" + std::to_string(i));
      double initial = 1 + rng_.NextDouble() * 100;
      a->AddChild(TextElement("initial", StringPrintf("%.2f", initial)));
      int bids = static_cast<int>(rng_.Uniform(6));
      double current = initial;
      for (int b = 0; b < bids; ++b) {
        NodePtr bidder = Node::Element("bidder");
        bidder->AddChild(TextElement("date", RandomDate()));
        double increase = 1.5 * (1 + static_cast<double>(rng_.Uniform(20)));
        current += increase;
        bidder->AddChild(TextElement("increase",
                                     StringPrintf("%.2f", increase)));
        NodePtr pref = Node::Element("personref");
        pref->SetAttr("person",
                      "person" + std::to_string(rng_.Uniform(
                          static_cast<uint64_t>(counts_.persons))));
        bidder->AddChild(std::move(pref));
        a->AddChild(std::move(bidder));
      }
      a->AddChild(TextElement("current", StringPrintf("%.2f", current)));
      NodePtr itemref = Node::Element("itemref");
      itemref->SetAttr("item", "item" + std::to_string(rng_.Uniform(
                                   static_cast<uint64_t>(
                                       std::max(counts_.items, 1)))));
      a->AddChild(std::move(itemref));
      NodePtr seller = Node::Element("seller");
      seller->SetAttr("person",
                      "person" + std::to_string(rng_.Uniform(
                          static_cast<uint64_t>(counts_.persons))));
      a->AddChild(std::move(seller));
      NodePtr annotation = Node::Element("annotation");
      NodePtr description = Node::Element("description");
      description->AddChild(TextElement(
          "text", Words(static_cast<int>(rng_.UniformRange(60, 110)))));
      annotation->AddChild(std::move(description));
      a->AddChild(std::move(annotation));
      a->AddChild(TextElement("quantity", "1"));
      a->AddChild(TextElement("type", "Regular"));
      auctions->AddChild(std::move(a));
    }
    return auctions;
  }

  NodePtr BuildClosedAuctions() {
    NodePtr auctions = Node::Element("closed_auctions");
    for (int i = 0; i < counts_.closed_auctions; ++i) {
      NodePtr a = Node::Element("closed_auction");
      NodePtr seller = Node::Element("seller");
      seller->SetAttr("person",
                      "person" + std::to_string(rng_.Uniform(
                          static_cast<uint64_t>(counts_.persons))));
      a->AddChild(std::move(seller));
      NodePtr buyer = Node::Element("buyer");
      buyer->SetAttr("person",
                     "person" + std::to_string(rng_.Uniform(
                         static_cast<uint64_t>(counts_.persons))));
      a->AddChild(std::move(buyer));
      NodePtr itemref = Node::Element("itemref");
      itemref->SetAttr("item", "item" + std::to_string(rng_.Uniform(
                                   static_cast<uint64_t>(
                                       std::max(counts_.items, 1)))));
      a->AddChild(std::move(itemref));
      // Price in [0, 200): Q5's ">= 40" filter keeps roughly 80%.
      a->AddChild(TextElement("price",
                              StringPrintf("%.2f", rng_.NextDouble() * 200)));
      a->AddChild(TextElement("date", RandomDate()));
      a->AddChild(TextElement("quantity", "1"));
      a->AddChild(TextElement("type", "Regular"));
      NodePtr annotation = Node::Element("annotation");
      NodePtr description = Node::Element("description");
      description->AddChild(TextElement(
          "text", Words(static_cast<int>(rng_.UniformRange(50, 90)))));
      annotation->AddChild(std::move(description));
      a->AddChild(std::move(annotation));
      auctions->AddChild(std::move(a));
    }
    return auctions;
  }

  Random rng_;
  XMarkCounts counts_;
};

}  // namespace

XMarkCounts CountsForScale(double scale) {
  auto scaled = [scale](int base, int floor_value) {
    return std::max(floor_value,
                    static_cast<int>(std::lround(base * scale)));
  };
  XMarkCounts c;
  c.categories = scaled(1000, 3);
  c.items = scaled(21750, 4);
  c.persons = scaled(25500, 8);
  c.open_auctions = scaled(12000, 4);
  c.closed_auctions = scaled(9750, 4);
  return c;
}

Result<NodePtr> GenerateAuctionDoc(const XMarkOptions& options) {
  if (options.scale < 0) {
    return Status::InvalidArgument("scale must be non-negative");
  }
  Builder builder(options);
  return builder.Build();
}

const char* AuctionTagStructureXml() {
  return R"(<stream:structure>
<tag type="snapshot" id="1" name="site">
  <tag type="snapshot" id="2" name="regions">
    <tag type="snapshot" id="3" name="africa">
      <tag type="event" id="601" name="item">
        <tag type="snapshot" id="20" name="location"/>
        <tag type="snapshot" id="21" name="quantity"/>
        <tag type="snapshot" id="22" name="name"/>
        <tag type="snapshot" id="23" name="payment"/>
        <tag type="snapshot" id="24" name="description">
          <tag type="snapshot" id="25" name="text"/>
        </tag>
        <tag type="snapshot" id="26" name="shipping"/>
        <tag type="snapshot" id="27" name="incategory"/>
      </tag>
    </tag>
    <tag type="snapshot" id="4" name="asia">
      <tag type="event" id="611" name="item">
        <tag type="snapshot" id="30" name="location"/>
        <tag type="snapshot" id="31" name="quantity"/>
        <tag type="snapshot" id="32" name="name"/>
        <tag type="snapshot" id="33" name="payment"/>
        <tag type="snapshot" id="34" name="description">
          <tag type="snapshot" id="35" name="text"/>
        </tag>
        <tag type="snapshot" id="36" name="shipping"/>
        <tag type="snapshot" id="37" name="incategory"/>
      </tag>
    </tag>
    <tag type="snapshot" id="5" name="australia">
      <tag type="event" id="621" name="item">
        <tag type="snapshot" id="40" name="location"/>
        <tag type="snapshot" id="41" name="quantity"/>
        <tag type="snapshot" id="42" name="name"/>
        <tag type="snapshot" id="43" name="payment"/>
        <tag type="snapshot" id="44" name="description">
          <tag type="snapshot" id="45" name="text"/>
        </tag>
        <tag type="snapshot" id="46" name="shipping"/>
        <tag type="snapshot" id="47" name="incategory"/>
      </tag>
    </tag>
    <tag type="snapshot" id="6" name="europe">
      <tag type="event" id="631" name="item">
        <tag type="snapshot" id="50" name="location"/>
        <tag type="snapshot" id="51" name="quantity"/>
        <tag type="snapshot" id="52" name="name"/>
        <tag type="snapshot" id="53" name="payment"/>
        <tag type="snapshot" id="54" name="description">
          <tag type="snapshot" id="55" name="text"/>
        </tag>
        <tag type="snapshot" id="56" name="shipping"/>
        <tag type="snapshot" id="57" name="incategory"/>
      </tag>
    </tag>
    <tag type="snapshot" id="7" name="namerica">
      <tag type="event" id="641" name="item">
        <tag type="snapshot" id="60" name="location"/>
        <tag type="snapshot" id="61" name="quantity"/>
        <tag type="snapshot" id="62" name="name"/>
        <tag type="snapshot" id="63" name="payment"/>
        <tag type="snapshot" id="64" name="description">
          <tag type="snapshot" id="65" name="text"/>
        </tag>
        <tag type="snapshot" id="66" name="shipping"/>
        <tag type="snapshot" id="67" name="incategory"/>
      </tag>
    </tag>
    <tag type="snapshot" id="8" name="samerica">
      <tag type="event" id="651" name="item">
        <tag type="snapshot" id="70" name="location"/>
        <tag type="snapshot" id="71" name="quantity"/>
        <tag type="snapshot" id="72" name="name"/>
        <tag type="snapshot" id="73" name="payment"/>
        <tag type="snapshot" id="74" name="description">
          <tag type="snapshot" id="75" name="text"/>
        </tag>
        <tag type="snapshot" id="76" name="shipping"/>
        <tag type="snapshot" id="77" name="incategory"/>
      </tag>
    </tag>
  </tag>
  <tag type="snapshot" id="9" name="categories">
    <tag type="event" id="602" name="category">
      <tag type="snapshot" id="80" name="name"/>
      <tag type="snapshot" id="81" name="description">
        <tag type="snapshot" id="82" name="text"/>
      </tag>
    </tag>
  </tag>
  <tag type="snapshot" id="10" name="people">
    <tag type="event" id="604" name="person">
      <tag type="snapshot" id="90" name="name"/>
      <tag type="snapshot" id="91" name="emailaddress"/>
      <tag type="snapshot" id="92" name="phone"/>
      <tag type="snapshot" id="93" name="address">
        <tag type="snapshot" id="94" name="street"/>
        <tag type="snapshot" id="95" name="city"/>
        <tag type="snapshot" id="96" name="country"/>
        <tag type="snapshot" id="97" name="zipcode"/>
      </tag>
      <tag type="snapshot" id="98" name="profile">
        <tag type="snapshot" id="99" name="interest"/>
        <tag type="snapshot" id="100" name="education"/>
        <tag type="snapshot" id="101" name="business"/>
      </tag>
    </tag>
  </tag>
  <tag type="snapshot" id="11" name="open_auctions">
    <tag type="event" id="605" name="open_auction">
      <tag type="snapshot" id="110" name="initial"/>
      <tag type="event" id="606" name="bidder">
        <tag type="snapshot" id="111" name="date"/>
        <tag type="snapshot" id="112" name="increase"/>
        <tag type="snapshot" id="113" name="personref"/>
      </tag>
      <tag type="snapshot" id="114" name="current"/>
      <tag type="snapshot" id="115" name="itemref"/>
      <tag type="snapshot" id="116" name="seller"/>
      <tag type="snapshot" id="117" name="annotation">
        <tag type="snapshot" id="118" name="description">
          <tag type="snapshot" id="119" name="text"/>
        </tag>
      </tag>
      <tag type="snapshot" id="120" name="quantity"/>
      <tag type="snapshot" id="121" name="type"/>
    </tag>
  </tag>
  <tag type="snapshot" id="12" name="closed_auctions">
    <tag type="event" id="603" name="closed_auction">
      <tag type="snapshot" id="130" name="seller"/>
      <tag type="snapshot" id="131" name="buyer"/>
      <tag type="snapshot" id="132" name="itemref"/>
      <tag type="snapshot" id="133" name="price"/>
      <tag type="snapshot" id="134" name="date"/>
      <tag type="snapshot" id="135" name="quantity"/>
      <tag type="snapshot" id="136" name="type"/>
      <tag type="snapshot" id="137" name="annotation">
        <tag type="snapshot" id="138" name="description">
          <tag type="snapshot" id="139" name="text"/>
        </tag>
      </tag>
    </tag>
  </tag>
</tag>
</stream:structure>)";
}

}  // namespace xcql::xmark
