#include "xmark/queries.h"

namespace xcql::xmark {

const char* XMarkQueryName(XMarkQueryId id) {
  switch (id) {
    case XMarkQueryId::kQ1:
      return "Q1";
    case XMarkQueryId::kQ2:
      return "Q2";
    case XMarkQueryId::kQ5:
      return "Q5";
  }
  return "?";
}

std::string XMarkQueryText(XMarkQueryId id) {
  switch (id) {
    case XMarkQueryId::kQ1:
      // XMark Q1: the name of a specific person (highly selective).
      return R"(for $b in stream("auction")/site/people/person[@id = "person0"]
return $b/name/text())";
    case XMarkQueryId::kQ2:
      // XMark Q2: the first bid increase of every open auction. The
      // positional selection is written over the combined bidder sequence
      // of each auction, which is well-defined on fragmented data.
      return R"(for $b in stream("auction")/site/open_auctions/open_auction
return <increase>{ $b/bidder[1]/increase/text() }</increase>)";
    case XMarkQueryId::kQ5:
      // XMark Q5 exactly as quoted in the paper's §7.
      return R"(count(for $i in stream("auction")/site/closed_auctions/closed_auction
where $i/price/text() >= 40
return $i/price))";
  }
  return "";
}

std::vector<XMarkQueryId> AllXMarkQueries() {
  return {XMarkQueryId::kQ1, XMarkQueryId::kQ2, XMarkQueryId::kQ5};
}

}  // namespace xcql::xmark
