// Deterministic XMark-style auction document generator (substitute for the
// benchmark's xmlgen, paper §7). Produces schema-compatible <site> documents
// whose size is calibrated so the paper's scaling factors {0.0, 0.05, 0.1}
// yield approximately the reported 27.3KB / 5.8MB / 11.8MB inputs.
#ifndef XCQL_XMARK_GENERATOR_H_
#define XCQL_XMARK_GENERATOR_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "xml/node.h"

namespace xcql::xmark {

/// \brief Generation parameters.
struct XMarkOptions {
  /// XMark scaling factor; 0.0 produces the minimal document.
  double scale = 0.1;
  /// PRNG seed; equal options produce byte-identical documents.
  uint64_t seed = 42;
};

/// \brief Entity counts implied by a scaling factor.
struct XMarkCounts {
  int categories;
  int items;  // split across the six regions
  int persons;
  int open_auctions;
  int closed_auctions;
};

/// \brief Counts for a scaling factor (XMark's entity ratios with floors
/// that reproduce xmlgen's minimal document at f=0).
XMarkCounts CountsForScale(double scale);

/// \brief Generates the auction document.
Result<NodePtr> GenerateAuctionDoc(const XMarkOptions& options);

/// \brief The Tag Structure used to fragment the auction stream: item,
/// category, person, open_auction, bidder and closed_auction travel as
/// separate fillers (closed_auction carries tsid 603, as in the paper's
/// §7 QaC+ example); everything else is snapshot context.
const char* AuctionTagStructureXml();

}  // namespace xcql::xmark

#endif  // XCQL_XMARK_GENERATOR_H_
