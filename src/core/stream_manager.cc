#include "core/stream_manager.h"

#include "xml/parser.h"
#include "xml/serializer.h"

namespace xcql {

std::string RenderResult(const xq::Sequence& result) {
  std::string out;
  for (size_t i = 0; i < result.size(); ++i) {
    if (i > 0) out += " ";
    if (xq::IsNode(result[i])) {
      out += SerializeXml(*xq::AsNode(result[i]));
    } else {
      out += xq::AsAtomic(result[i]).ToStringValue();
    }
  }
  return out;
}

StreamManager::StreamManager() : engine_(&hub_, &clock_) {}

Result<stream::StreamServer*> StreamManager::CreateStream(
    const std::string& name, std::string_view tag_structure) {
  if (servers_.count(name) != 0) {
    return Status::InvalidArgument("stream '" + name + "' already exists");
  }
  XCQL_ASSIGN_OR_RETURN(frag::TagStructure ts,
                        frag::TagStructure::Parse(tag_structure));
  auto server = std::make_unique<stream::StreamServer>(name, std::move(ts));
  stream::StreamServer* raw = server.get();
  servers_[name] = std::move(server);
  XCQL_RETURN_NOT_OK(hub_.Subscribe(raw));
  return raw;
}

stream::StreamServer* StreamManager::server(const std::string& name) const {
  auto it = servers_.find(name);
  return it == servers_.end() ? nullptr : it->second.get();
}

frag::FragmentStore* StreamManager::store(const std::string& name) const {
  return hub_.store(name);
}

std::vector<std::string> StreamManager::StreamNames() const {
  std::vector<std::string> out;
  out.reserve(servers_.size());
  for (const auto& [name, server] : servers_) out.push_back(name);
  return out;
}

Status StreamManager::PublishDocumentXml(
    const std::string& stream, std::string_view xml,
    const frag::FragmenterOptions& options) {
  stream::StreamServer* srv = server(stream);
  if (srv == nullptr) return Status::NotFound("unknown stream '" + stream + "'");
  XCQL_ASSIGN_OR_RETURN(NodePtr doc, ParseXml(xml));
  XCQL_RETURN_NOT_OK(srv->PublishDocument(*doc, options));
  clock_.AdvanceTo(hub_.store(stream)->max_valid_time());
  return Status::OK();
}

Status StreamManager::PublishFragmentXml(const std::string& stream,
                                         std::string_view xml) {
  XCQL_ASSIGN_OR_RETURN(frag::Fragment f, frag::Fragment::Parse(xml));
  return PublishFragment(stream, std::move(f));
}

Status StreamManager::PublishFragment(const std::string& stream,
                                      frag::Fragment fragment) {
  stream::StreamServer* srv = server(stream);
  if (srv == nullptr) return Status::NotFound("unknown stream '" + stream + "'");
  clock_.AdvanceTo(fragment.valid_time);
  return srv->Publish(std::move(fragment));
}

Status StreamManager::EnsureQueryStreams() {
  for (const frag::FragmentStore* store : hub_.stores()) {
    if (executor_streams_.insert(store->name()).second) {
      XCQL_RETURN_NOT_OK(executor_.RegisterStream(store));
    }
  }
  return Status::OK();
}

Result<xq::Sequence> StreamManager::Query(std::string_view xcql,
                                          const lang::ExecOptions& options) {
  XCQL_RETURN_NOT_OK(EnsureQueryStreams());
  lang::ExecOptions opts = options;
  if (!opts.now.has_value()) opts.now = clock_.Now();
  return executor_.Execute(xcql, opts);
}

Result<std::string> StreamManager::QueryToString(
    std::string_view xcql, const lang::ExecOptions& options) {
  XCQL_ASSIGN_OR_RETURN(xq::Sequence result, Query(xcql, options));
  return RenderResult(result);
}

Result<std::string> StreamManager::Translate(std::string_view xcql,
                                             lang::ExecMethod method) {
  XCQL_RETURN_NOT_OK(EnsureQueryStreams());
  return executor_.TranslateToText(xcql, method);
}

Result<NodePtr> StreamManager::MaterializeView(const std::string& stream) {
  XCQL_RETURN_NOT_OK(EnsureQueryStreams());
  return executor_.MaterializeView(stream, /*linear=*/false);
}

void StreamManager::RegisterFunction(const std::string& name, int min_arity,
                                     int max_arity,
                                     xq::FunctionRegistry::NativeFn fn) {
  executor_.RegisterFunction(name, min_arity, max_arity, fn);
  engine_.RegisterFunction(name, min_arity, max_arity, std::move(fn));
}

Result<int> StreamManager::RegisterContinuousQuery(
    const std::string& xcql, stream::ContinuousQueryEngine::Callback cb,
    const stream::ContinuousQueryOptions& options) {
  return engine_.Register(xcql, std::move(cb), options);
}

Status StreamManager::UnregisterContinuousQuery(int id) {
  return engine_.Unregister(id);
}

Status StreamManager::Tick() { return engine_.Tick(); }

Status StreamManager::AdvanceTo(DateTime t) {
  clock_.AdvanceTo(t);
  return Tick();
}

}  // namespace xcql
