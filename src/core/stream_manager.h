// The library's top-level facade: create streams, publish documents and
// fragment updates, run one-shot XCQL queries under any execution method,
// and register continuous queries — everything the paper's client/server
// configuration needs, in one object.
//
// Typical use (see examples/quickstart.cc):
//   StreamManager mgr;
//   mgr.CreateStream("credit", kCreditTagStructure);
//   mgr.PublishDocumentXml("credit", initial_doc);
//   mgr.PublishFragmentXml("credit", "<filler id=… >…</filler>");
//   auto result = mgr.Query("for $a in stream(\"credit\")…", {});
#ifndef XCQL_CORE_STREAM_MANAGER_H_
#define XCQL_CORE_STREAM_MANAGER_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "stream/continuous.h"
#include "stream/registry.h"
#include "stream/transport.h"
#include "xcql/executor.h"

namespace xcql {

/// \brief Renders a query result: nodes serialized as XML, atomics in
/// lexical form, items space-separated.
std::string RenderResult(const xq::Sequence& result);

/// \brief One-stop client+server harness for historical XML streams.
class StreamManager {
 public:
  StreamManager();

  StreamManager(const StreamManager&) = delete;
  StreamManager& operator=(const StreamManager&) = delete;

  // ---- Stream lifecycle -----------------------------------------------------

  /// \brief Creates a stream (server + client subscription) from a Tag
  /// Structure in the paper's XML form.
  Result<stream::StreamServer*> CreateStream(const std::string& name,
                                             std::string_view tag_structure);

  stream::StreamServer* server(const std::string& name) const;
  frag::FragmentStore* store(const std::string& name) const;

  /// \brief Names of all created streams, sorted.
  std::vector<std::string> StreamNames() const;

  // ---- Publishing -----------------------------------------------------------

  /// \brief Fragments and publishes an initial document (parsed from XML).
  Status PublishDocumentXml(const std::string& stream, std::string_view xml,
                            const frag::FragmenterOptions& options = {});

  /// \brief Publishes one `<filler …>` fragment from its wire form.
  Status PublishFragmentXml(const std::string& stream, std::string_view xml);

  /// \brief Publishes a fragment built programmatically.
  Status PublishFragment(const std::string& stream, frag::Fragment fragment);

  // ---- Querying ---------------------------------------------------------------

  /// \brief Runs a one-shot XCQL query over the subscribed streams.
  Result<xq::Sequence> Query(std::string_view xcql,
                             const lang::ExecOptions& options = {});

  /// \brief Query + RenderResult in one call.
  Result<std::string> QueryToString(std::string_view xcql,
                                    const lang::ExecOptions& options = {});

  /// \brief Shows the Fig. 3 translation of a query.
  Result<std::string> Translate(std::string_view xcql,
                                lang::ExecMethod method);

  /// \brief Materializes a stream's full temporal view.
  Result<NodePtr> MaterializeView(const std::string& stream);

  /// \brief Registers an application UDF for one-shot and continuous
  /// queries alike.
  void RegisterFunction(const std::string& name, int min_arity, int max_arity,
                        xq::FunctionRegistry::NativeFn fn);

  // ---- Continuous queries -------------------------------------------------------

  /// \brief The simulated clock driving `now` for continuous evaluation.
  stream::SimClock& clock() { return clock_; }

  Result<int> RegisterContinuousQuery(
      const std::string& xcql, stream::ContinuousQueryEngine::Callback cb,
      const stream::ContinuousQueryOptions& options = {});

  Status UnregisterContinuousQuery(int id);

  /// \brief Re-evaluates continuous queries at the clock's current time.
  Status Tick();

  /// \brief Advances the clock to `t`, then ticks.
  Status AdvanceTo(DateTime t);

  stream::ContinuousQueryEngine& continuous_engine() { return engine_; }

 private:
  Status EnsureQueryStreams();

  std::map<std::string, std::unique_ptr<stream::StreamServer>> servers_;
  stream::StreamHub hub_;
  stream::SimClock clock_;
  lang::QueryExecutor executor_;  // one-shot queries
  stream::ContinuousQueryEngine engine_;
  std::set<std::string> executor_streams_;
};

}  // namespace xcql

#endif  // XCQL_CORE_STREAM_MANAGER_H_
