// xcql_serve — publish a historical XML stream over TCP.
//
// Loads a Tag Structure plus an initial document (or generates an XMark
// auction document), serves it on a port through net::FragmentServer, and
// optionally keeps publishing timed update fragments — new versions of
// randomly chosen temporal/event fillers — so subscribers see a live
// stream. Pair with xcql_tail.
//
//   xcql_serve --port 7788 --xmark 0.01 --updates 1000 --interval-ms 50
//   xcql_serve --port 7788 --stream credit --structure credit.ts.xml
//              --document credit.xml [--compress] [--policy drop]
//
// With any --fault-* flag the stream is served through a deterministic
// fault-injection proxy (net::ChaosLink) on --port, with the real server
// on an ephemeral port behind it — for exercising subscriber recovery
// (docs/ROBUSTNESS.md):
//
//   xcql_serve --port 7788 --xmark 0.005 --updates 500 \
//              --fault-drop 0.02 --fault-corrupt 0.02 --fault-seed 42
//
// With --data-dir the server is durable (docs/DURABILITY.md): published
// frames append to a write-ahead log before any subscriber sees them, and
// a restart replays checkpoint + WAL tail so the same stream resumes with
// the same sequence numbers and epoch:
//
//   xcql_serve --port 7788 --xmark 0.01 --data-dir /var/lib/xcql/auction \
//              --fsync interval --fsync-interval-ms 25 --checkpoint-every 512
//
// With --monitor the server also runs a continuous XCQL query over its own
// stream (a local mirror store fed by the publish path) and prints newly
// appearing results as updates go out — server-side monitoring without a
// subscriber process:
//
//   xcql_serve --port 7788 --xmark 0.01 --updates 200 \
//              --monitor 'count(stream("auction")//item)' \
//              [--monitor-method caq|qac|qac+] [--paper-faithful]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/file_util.h"
#include "common/io_env.h"
#include "common/random.h"
#include "common/string_util.h"
#include "core/stream_manager.h"
#include "net/chaos.h"
#include "net/query_channel.h"
#include "net/server.h"
#include "net/wal.h"
#include "stream/clock.h"
#include "stream/continuous.h"
#include "stream/registry.h"
#include "stream/transport.h"
#include "xmark/generator.h"
#include "xml/parser.h"

namespace {

struct ServeOptions {
  uint16_t port = 7788;
  std::string stream = "auction";
  std::string structure_file;
  std::string document_file;
  double xmark_scale = -1;
  int updates = 0;
  int interval_ms = 100;
  int serve_ms = 0;  // after updates finish: 0 = serve until killed
  bool compress = false;
  xcql::net::SlowConsumerPolicy policy =
      xcql::net::SlowConsumerPolicy::kBlock;
  size_t queue = 1024;
  xcql::net::ChaosFaults faults;
  uint64_t fault_seed = 1;
  bool any_fault = false;
  std::string data_dir;  // empty = in-memory (no durability)
  xcql::net::WalOptions wal;
  // Server-side continuous monitoring query (empty = none).
  std::string monitor;
  xcql::lang::ExecMethod monitor_method = xcql::lang::ExecMethod::kQaCPlus;
  // Paper-faithful cost model for the monitor query: linear filler scans
  // instead of the default hash-indexed lookup.
  bool paper_faithful = false;
  // Remote query channel (protocol v3): admission limits. --no-queries
  // turns the channel off entirely (the HELLO ack never offers it).
  bool queries = true;
  int max_queries = 64;
  int max_queries_per_conn = 8;
  // Retention (docs/RETENTION.md): bounded-memory forever-run. Any
  // --retain-* flag enables the retention driver, which compacts the
  // fragment stores, trims the frame log (after a covering WAL
  // checkpoint), and bounds the result logs in lockstep.
  xcql::net::RetentionOptions retention;
  // Self-healing durability (docs/DURABILITY.md): probe/re-arm after a
  // disk fault, plus disk-space watermarks on the data dir.
  xcql::net::DurabilityOptions durability;
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--port N] [--stream NAME]\n"
      "          (--structure FILE --document FILE | --xmark SCALE)\n"
      "          [--updates N] [--interval-ms M] [--serve-ms M]\n"
      "          [--compress] [--policy block|drop|disconnect] [--queue N]\n"
      "          [--fault-drop P] [--fault-dup P] [--fault-reorder P]\n"
      "          [--fault-corrupt P] [--fault-truncate P]\n"
      "          [--fault-delay-ms M] [--fault-seed S]\n"
      "          [--data-dir PATH] [--fsync always|interval|never]\n"
      "          [--fsync-interval-ms M] [--segment-bytes N]\n"
      "          [--checkpoint-every N]\n"
      "          [--monitor XCQL] [--monitor-method caq|qac|qac+]\n"
      "          [--paper-faithful]\n"
      "          [--no-queries] [--max-queries N] [--max-queries-per-conn N]\n"
      "          [--retain-age-s N] [--retain-versions N]\n"
      "          [--retain-frames N] [--retain-results N]\n"
      "          [--retain-interval N]\n"
      "          [--no-self-heal] [--probe-ms M] [--probe-max-ms M]\n"
      "          [--disk-soft BYTES] [--disk-hard BYTES]\n",
      argv0);
  return 2;
}

bool ParseMethod(const char* s, xcql::lang::ExecMethod* out) {
  if (std::strcmp(s, "caq") == 0) {
    *out = xcql::lang::ExecMethod::kCaQ;
  } else if (std::strcmp(s, "qac") == 0) {
    *out = xcql::lang::ExecMethod::kQaC;
  } else if (std::strcmp(s, "qac+") == 0 || std::strcmp(s, "qacplus") == 0) {
    *out = xcql::lang::ExecMethod::kQaCPlus;
  } else {
    return false;
  }
  return true;
}

bool Fail(const xcql::Status& st) {
  if (st.ok()) return false;
  std::fprintf(stderr, "xcql_serve: %s\n", st.ToString().c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ServeOptions opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--stream") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.stream = v;
    } else if (arg == "--structure") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.structure_file = v;
    } else if (arg == "--document") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.document_file = v;
    } else if (arg == "--xmark") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.xmark_scale = std::atof(v);
    } else if (arg == "--updates") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.updates = std::atoi(v);
    } else if (arg == "--interval-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.interval_ms = std::atoi(v);
    } else if (arg == "--serve-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.serve_ms = std::atoi(v);
    } else if (arg == "--compress") {
      opt.compress = true;
    } else if (arg == "--queue") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.queue = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--fault-drop" || arg == "--fault-dup" ||
               arg == "--fault-reorder" || arg == "--fault-corrupt" ||
               arg == "--fault-truncate") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      double p = std::atof(v);
      opt.any_fault = true;
      if (arg == "--fault-drop") opt.faults.drop = p;
      if (arg == "--fault-dup") opt.faults.duplicate = p;
      if (arg == "--fault-reorder") opt.faults.reorder = p;
      if (arg == "--fault-corrupt") opt.faults.corrupt = p;
      if (arg == "--fault-truncate") opt.faults.truncate = p;
    } else if (arg == "--fault-delay-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.faults.delay = std::chrono::milliseconds(std::atoi(v));
      opt.any_fault = true;
    } else if (arg == "--fault-seed") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.fault_seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--data-dir") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.data_dir = v;
    } else if (arg == "--fsync") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      auto policy = xcql::net::ParseFsyncPolicy(v);
      if (Fail(policy.status())) return Usage(argv[0]);
      opt.wal.fsync = policy.value();
    } else if (arg == "--fsync-interval-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.wal.fsync_interval = std::chrono::milliseconds(std::atoi(v));
    } else if (arg == "--segment-bytes") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.wal.segment_bytes = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--checkpoint-every") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.wal.checkpoint_every = std::atoll(v);
    } else if (arg == "--monitor") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.monitor = v;
    } else if (arg == "--monitor-method") {
      const char* v = next();
      if (v == nullptr || !ParseMethod(v, &opt.monitor_method)) {
        return Usage(argv[0]);
      }
    } else if (arg == "--paper-faithful") {
      opt.paper_faithful = true;
    } else if (arg == "--no-queries") {
      opt.queries = false;
    } else if (arg == "--max-queries") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.max_queries = std::atoi(v);
    } else if (arg == "--max-queries-per-conn") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.max_queries_per_conn = std::atoi(v);
    } else if (arg == "--retain-age-s") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.retention.max_age_s = std::atoll(v);
    } else if (arg == "--retain-versions") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.retention.max_versions = std::atoi(v);
    } else if (arg == "--retain-frames") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.retention.max_frames = std::atoll(v);
    } else if (arg == "--retain-results") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.retention.max_results = std::atoll(v);
    } else if (arg == "--retain-interval") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.retention.check_every = std::atoll(v);
    } else if (arg == "--no-self-heal") {
      opt.durability.self_heal = false;
    } else if (arg == "--probe-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.durability.probe_initial = std::chrono::milliseconds(std::atoi(v));
    } else if (arg == "--probe-max-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.durability.probe_max = std::chrono::milliseconds(std::atoi(v));
    } else if (arg == "--disk-soft") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.durability.soft_free_bytes = std::atoll(v);
    } else if (arg == "--disk-hard") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.durability.hard_free_bytes = std::atoll(v);
    } else if (arg == "--policy") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      if (std::strcmp(v, "block") == 0) {
        opt.policy = xcql::net::SlowConsumerPolicy::kBlock;
      } else if (std::strcmp(v, "drop") == 0) {
        opt.policy = xcql::net::SlowConsumerPolicy::kDropOldest;
      } else if (std::strcmp(v, "disconnect") == 0) {
        opt.policy = xcql::net::SlowConsumerPolicy::kDisconnect;
      } else {
        return Usage(argv[0]);
      }
    } else {
      return Usage(argv[0]);
    }
  }

  // Assemble schema + document.
  std::string ts_xml;
  xcql::NodePtr doc;
  if (opt.xmark_scale >= 0) {
    ts_xml = xcql::xmark::AuctionTagStructureXml();
    xcql::xmark::XMarkOptions gen;
    gen.scale = opt.xmark_scale;
    auto d = xcql::xmark::GenerateAuctionDoc(gen);
    if (Fail(d.status())) return 1;
    doc = std::move(d).MoveValue();
  } else if (!opt.structure_file.empty()) {
    auto ts = xcql::ReadFileToString(opt.structure_file);
    if (Fail(ts.status())) return 1;
    ts_xml = std::move(ts).MoveValue();
    if (!opt.document_file.empty()) {
      auto xml = xcql::ReadFileToString(opt.document_file);
      if (Fail(xml.status())) return 1;
      auto d = xcql::ParseXml(xml.value());
      if (Fail(d.status())) return 1;
      doc = std::move(d).MoveValue();
    }
  } else {
    return Usage(argv[0]);
  }

  auto ts = xcql::frag::TagStructure::Parse(ts_xml);
  if (Fail(ts.status())) return 1;
  xcql::stream::StreamServer server(opt.stream, std::move(ts).MoveValue());
  if (opt.compress) server.EnableWireCompression();

  // Declared ahead of the monitor lambda so it can report the data dir's
  // health; opened further down, before the network face starts.
  std::unique_ptr<xcql::net::Wal> wal;

  // Server-side monitor: subscribe a local hub to our own server so every
  // published fragment mirrors into a FragmentStore, and run the --monitor
  // query continuously over it as updates go out. (Subscribing before any
  // publish means the mirror sees the initial document too; recovered
  // history is replanted without multicast and is replayed in below.)
  xcql::stream::StreamHub monitor_hub;
  xcql::stream::SimClock monitor_clock;
  std::unique_ptr<xcql::stream::ContinuousQueryEngine> monitor_engine;
  int monitor_qid = -1;
  if (!opt.monitor.empty()) {
    if (Fail(monitor_hub.Subscribe(&server))) return 1;
    monitor_engine = std::make_unique<xcql::stream::ContinuousQueryEngine>(
        &monitor_hub, &monitor_clock);
    xcql::stream::ContinuousQueryOptions q_opts;
    q_opts.method = opt.monitor_method;
    if (opt.paper_faithful) q_opts.linear_get_fillers = true;
    auto qid = monitor_engine->Register(
        opt.monitor,
        [](const xcql::xq::Sequence& delta, xcql::DateTime at) {
          for (const auto& item : delta) {
            std::printf("[monitor %s] %s\n", at.ToString().c_str(),
                        xcql::RenderResult({item}).c_str());
          }
          std::fflush(stdout);
        },
        q_opts);
    if (Fail(qid.status())) return 1;
    monitor_qid = qid.value();
  }
  // The monitor feed also carries disk health: one line at startup and
  // one whenever the durability state machine moves (degrade or re-arm),
  // so a watcher sees epoch changes inline with query results. The
  // network server is constructed further down; the pointer is planted
  // right after it starts.
  xcql::net::FragmentServer* monitor_durability_src = nullptr;
  bool monitor_durability_printed = false;
  bool monitor_last_degraded = false;
  long long monitor_last_rearms = 0;
  auto monitor_tick = [&]() -> bool {
    if (monitor_engine == nullptr) return true;
    if (monitor_durability_src != nullptr && wal != nullptr) {
      const bool degraded = monitor_durability_src->wal_degraded();
      const long long rearms = static_cast<long long>(
          monitor_durability_src->metrics().durability_rearms);
      if (!monitor_durability_printed || degraded != monitor_last_degraded ||
          rearms != monitor_last_rearms) {
        std::printf(
            "[monitor] durability %s, %lldms degraded, %lld re-arm(s), "
            "data dir free %lld bytes\n",
            degraded ? "DEGRADED (volatile epoch)" : "durable",
            static_cast<long long>(
                monitor_durability_src->time_in_degraded_ms()),
            rearms,
            static_cast<long long>(xcql::IoFreeBytes(wal->dir())));
        std::fflush(stdout);
        monitor_durability_printed = true;
        monitor_last_degraded = degraded;
        monitor_last_rearms = rearms;
      }
    }
    const xcql::frag::FragmentStore* mstore = monitor_hub.store(opt.stream);
    if (mstore != nullptr && mstore->size() > 0) {
      monitor_clock.AdvanceTo(mstore->max_valid_time());
    }
    return !Fail(monitor_engine->Tick());
  };

  // Durability: open (or initialize) the data dir before the network face
  // exists, and replant any recovered history so FragmentServer::Start()
  // seeds its frame log — same seqs, same epoch — from it.
  bool recovered = false;
  if (!opt.data_dir.empty()) {
    xcql::net::WalRecovery recovery;
    auto w = xcql::net::Wal::Open(opt.data_dir, opt.stream, ts_xml, opt.wal,
                                  &recovery);
    if (Fail(w.status())) return 1;
    wal = std::move(w).MoveValue();
    if (!recovery.report.warning.empty()) {
      std::fprintf(stderr, "xcql_serve: %s\n",
                   recovery.report.warning.c_str());
    }
    // Restore even with zero records: a re-armed generation's manifest
    // carries a nonzero base, and the server's history numbering must
    // start there or fresh publishes would collide with WAL seqs.
    if (!recovery.records.empty() || recovery.base_seq > 0) {
      if (Fail(xcql::net::RestoreStream(recovery, &server))) return 1;
      recovered = !recovery.records.empty();
    }
    std::printf(
        "data dir %s: epoch %llu, recovered %lld records "
        "(%lld checkpointed + %lld tail, %d segments%s), fsync=%s\n",
        wal->dir().c_str(), static_cast<unsigned long long>(wal->epoch()),
        static_cast<long long>(recovery.report.checkpoint_records +
                               recovery.report.tail_records),
        static_cast<long long>(recovery.report.checkpoint_records),
        static_cast<long long>(recovery.report.tail_records),
        recovery.report.segments_scanned,
        recovery.report.torn_tail ? ", torn tail truncated" : "",
        xcql::net::FsyncPolicyName(opt.wal.fsync));
  }

  // Remote query channel: opened (registry replayed) before the network
  // face starts, so recovered registrations line up with the seeded
  // history and their result streams resume byte-identical.
  std::unique_ptr<xcql::net::QueryChannel> channel;
  if (opt.queries) {
    auto channel_ts = xcql::frag::TagStructure::Parse(ts_xml);
    if (Fail(channel_ts.status())) return 1;
    xcql::net::QueryChannelOptions ch_opts;
    ch_opts.max_queries = opt.max_queries;
    if (!opt.data_dir.empty()) {
      ch_opts.registry_path = opt.data_dir + "/queries.reg";
    }
    channel = std::make_unique<xcql::net::QueryChannel>(
        opt.stream, std::move(channel_ts).MoveValue(), ch_opts);
    if (Fail(channel->Open())) return 1;
    auto cs = channel->stats();
    if (cs.recovered_queries > 0) {
      std::printf("query registry: %lld registrations recovered\n",
                  static_cast<long long>(cs.recovered_queries));
    }
  }

  xcql::net::FragmentServerOptions net_opts;
  net_opts.wal = wal.get();
  net_opts.query_channel = channel.get();
  net_opts.max_queries_per_conn = opt.max_queries_per_conn;
  net_opts.retention = opt.retention;
  net_opts.durability = opt.durability;
  if (wal != nullptr &&
      (opt.durability.soft_free_bytes > 0 ||
       opt.durability.hard_free_bytes > 0)) {
    std::printf(
        "disk watermarks: soft %lld bytes (emergency retention), hard %lld "
        "bytes (preemptive degrade)\n",
        static_cast<long long>(opt.durability.soft_free_bytes),
        static_cast<long long>(opt.durability.hard_free_bytes));
  }
  if (opt.retention.enabled()) {
    std::printf(
        "retention: age %llds, versions %d, frames %lld, results %lld "
        "(every %lld publishes)\n",
        static_cast<long long>(opt.retention.max_age_s),
        opt.retention.max_versions,
        static_cast<long long>(opt.retention.max_frames),
        static_cast<long long>(opt.retention.max_results),
        static_cast<long long>(opt.retention.check_every));
  }
  // With faults the chaos proxy owns the public port; the real server
  // hides behind it on an ephemeral one.
  net_opts.port = opt.any_fault ? 0 : opt.port;
  net_opts.slow_consumer = opt.policy;
  net_opts.queue_capacity = opt.queue;
  xcql::net::FragmentServer net_server(&server, net_opts);
  if (Fail(net_server.Start())) return 1;
  monitor_durability_src = &net_server;

  std::unique_ptr<xcql::net::ChaosLink> chaos;
  if (opt.any_fault) {
    xcql::net::ChaosLinkOptions chaos_opts;
    chaos_opts.listen_port = opt.port;
    chaos_opts.upstream_port = net_server.port();
    chaos_opts.seed = opt.fault_seed;
    chaos_opts.faults = opt.faults;
    chaos = std::make_unique<xcql::net::ChaosLink>(chaos_opts);
    if (Fail(chaos->Start())) return 1;
    std::printf(
        "serving stream \"%s\" on port %u through a chaos link (seed %llu; "
        "upstream port %u; %s wire accounting)\n",
        opt.stream.c_str(), chaos->port(),
        static_cast<unsigned long long>(opt.fault_seed), net_server.port(),
        xcql::frag::WireCodecName(server.wire_codec()));
  } else {
    std::printf("serving stream \"%s\" on port %u (%s wire accounting)\n",
                opt.stream.c_str(), net_server.port(),
                xcql::frag::WireCodecName(server.wire_codec()));
  }

  if (recovered) {
    // The initial document (if any) is already in the recovered history;
    // publishing it again would append duplicate versions.
    std::printf("resuming recovered stream: %lld fragments in history\n",
                static_cast<long long>(server.history_size()));
    // Recovery replants history without multicast; catch the monitor's
    // mirror store up explicitly.
    if (monitor_engine != nullptr) {
      if (Fail(server.ReplayTo(&monitor_hub).status())) return 1;
    }
  } else if (doc != nullptr) {
    if (Fail(server.PublishDocument(*doc))) return 1;
    std::printf("published initial document: %lld fragments\n",
                static_cast<long long>(server.fragments_sent()));
  }
  if (!monitor_tick()) return 1;

  // Timed updates: new versions of existing fragmented fillers.
  if (opt.updates > 0) {
    auto collect = [&](std::vector<int64_t>* out) {
      out->clear();
      for (int64_t i = server.history_base(); i < server.history_size();
           ++i) {
        const auto& f = server.history_at(i);
        const auto* tag = server.tag_structure().FindById(f.tsid);
        if (tag != nullptr && tag->fragmented()) out->push_back(i);
      }
    };
    std::vector<int64_t> candidates;
    collect(&candidates);
    if (candidates.empty()) {
      std::fprintf(stderr, "xcql_serve: no fragmented fillers to update\n");
      return 1;
    }
    xcql::Random rng(7);
    int64_t t = server.history_size() > server.history_base()
                    ? server.history_at(server.history_size() - 1)
                          .valid_time.seconds()
                    : 0;
    for (int u = 0; u < opt.updates; ++u) {
      // The retention driver runs on this publish path and may have
      // trimmed the history under us: positions below history_base() are
      // gone. Candidates are ascending, so dropping the dead prefix is a
      // bound search; refresh the whole set if it ran dry.
      const int64_t base_pos = server.history_base();
      if (!candidates.empty() && candidates.front() < base_pos) {
        candidates.erase(candidates.begin(),
                         std::lower_bound(candidates.begin(),
                                          candidates.end(), base_pos));
      }
      if (candidates.empty()) {
        collect(&candidates);
        if (candidates.empty()) break;  // everything expired: stop updating
      }
      int64_t pick = candidates[static_cast<size_t>(
          rng.Uniform(static_cast<int>(candidates.size())))];
      const auto& base = server.history_at(pick);
      xcql::frag::Fragment f;
      f.id = base.id;
      f.tsid = base.tsid;
      t += 1 + static_cast<int64_t>(rng.Uniform(60));
      f.valid_time = xcql::DateTime(t);
      f.content = base.content->Clone();
      f.content->SetAttr("rev", std::to_string(u + 1));
      if (Fail(server.Publish(std::move(f)))) return 1;
      if (!monitor_tick()) return 1;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(opt.interval_ms));
    }
    std::printf("published %d updates\n", opt.updates);
  }

  if (opt.serve_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(opt.serve_ms));
  } else {
    std::printf("serving until killed (ctrl-c)...\n");
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
  }
  if (monitor_qid >= 0) {
    if (!monitor_tick()) return 1;  // final evaluation over the full stream
    auto qs = monitor_engine->QueryStats(monitor_qid);
    if (qs.ok()) {
      std::printf(
          "monitor (%s): %lld evaluations (%lld compiled / %lld "
          "interpreted), %lld skips, compile %lldus, arena high-water %zu "
          "bytes%s%s\n",
          xcql::lang::ExecMethodName(opt.monitor_method),
          static_cast<long long>(qs.value().evaluations),
          static_cast<long long>(qs.value().compiled_evals),
          static_cast<long long>(qs.value().fallback_evals),
          static_cast<long long>(qs.value().skips),
          static_cast<long long>(qs.value().compile_micros),
          qs.value().arena_high_water,
          qs.value().plan_fallback_reason.empty() ? "" : " — fallback: ",
          qs.value().plan_fallback_reason.c_str());
      if (opt.retention.enabled() && !qs.value().window.bounded) {
        std::printf(
            "monitor: query window is unbounded — it would pin retention "
            "if registered on the channel (see docs/RETENTION.md)\n");
      }
    }
  }
  auto m = net_server.metrics();
  std::printf(
      "frames out %lld, bytes out %lld, drops %lld, repeats served %lld, "
      "subscribers served %lld\n",
      static_cast<long long>(m.frames_out),
      static_cast<long long>(m.bytes_out), static_cast<long long>(m.drops),
      static_cast<long long>(m.repeat_requests_in),
      static_cast<long long>(m.connections_accepted));
  if (channel != nullptr) {
    auto cs = channel->stats();
    std::printf(
        "queries: %d active (%d pending), %lld registered, %lld rejected, "
        "%lld result frames over %lld fragments\n",
        cs.active_queries, cs.pending_queries,
        static_cast<long long>(m.queries_registered),
        static_cast<long long>(m.queries_rejected),
        static_cast<long long>(cs.result_frames),
        static_cast<long long>(cs.fragments_fed));
  }
  if (opt.retention.enabled()) {
    std::printf(
        "retention: %lld runs, %lld frames retired, %lld fragments "
        "compacted, %lld result frames trimmed, floor seq %lld, frame log "
        "%lld bytes, fragment store %lld bytes\n",
        static_cast<long long>(m.retention_runs),
        static_cast<long long>(m.frames_retired),
        static_cast<long long>(m.fragments_compacted),
        static_cast<long long>(m.result_log_trimmed),
        static_cast<long long>(m.retention_floor_seq),
        static_cast<long long>(m.frame_log_bytes),
        static_cast<long long>(m.fragment_store_bytes));
    if (channel != nullptr) {
      std::vector<uint64_t> pinning;
      (void)channel->ObservableFloor(
          xcql::DateTime(std::numeric_limits<int64_t>::max() / 2), &pinning);
      for (uint64_t id : pinning) {
        std::printf(
            "retention: query %llu has an unbounded observable window and "
            "pins the retention floor\n",
            static_cast<unsigned long long>(id));
      }
    }
  }
  if (chaos != nullptr) {
    auto cs = chaos->stats();
    std::printf(
        "chaos: %lld frames, dropped %lld, duplicated %lld, reordered "
        "%lld, corrupted %lld, truncated %lld\n",
        static_cast<long long>(cs.frames),
        static_cast<long long>(cs.dropped),
        static_cast<long long>(cs.duplicated),
        static_cast<long long>(cs.reordered),
        static_cast<long long>(cs.corrupted),
        static_cast<long long>(cs.truncated));
    chaos->Stop();
  }
  // Durability state is read before Stop() joins the supervisor, so the
  // numbers describe the serving window, not the teardown.
  const bool ended_degraded = net_server.wal_degraded();
  const long long degraded_ms = net_server.time_in_degraded_ms();
  net_server.Stop();
  if (wal != nullptr) {
    auto ws = wal->stats();
    std::printf(
        "wal: %lld appends, %lld syncs, %lld rotations, %lld checkpoints, "
        "%lld append failures, %lld checkpoint failures\n",
        static_cast<long long>(ws.appends), static_cast<long long>(ws.syncs),
        static_cast<long long>(ws.rotations),
        static_cast<long long>(ws.checkpoints),
        static_cast<long long>(ws.append_failures),
        static_cast<long long>(ws.checkpoint_failures));
    std::printf(
        "durability: %s, %lld re-arm(s), %lldms degraded, data dir free "
        "%lld bytes\n",
        ended_degraded ? "DEGRADED (volatile epoch)" : "durable",
        static_cast<long long>(m.durability_rearms), degraded_ms,
        static_cast<long long>(
            xcql::IoFreeBytes(wal->dir())));
    if (ended_degraded) {
      std::fprintf(stderr,
                   "wal: durability degraded at exit; frames published "
                   "since the last failure were not persisted\n");
    }
    if (Fail(wal->Close())) return 1;
  }
  return 0;
}
