// xcqlsh — command-line shell for historical XML streams.
//
// Load streams (a Tag Structure plus an initial document and/or a recorded
// fragment stream), then run XCQL queries from the command line or an
// interactive REPL, under any execution method.
//
//   xcqlsh --stream credit --structure credit.ts.xml --document credit.xml
//          [--fragments updates.xml] [--method qac+] [--now TIME]
//          [--query 'stream("credit")//account' ...]
//          [--translate] [--materialize credit]
//
// Without --query, an interactive prompt reads queries (finish a query
// with a ';' at the end of a line, or with an empty line) and commands:
//   :method caq|qac|qac+    switch execution method
//   :now 2004-01-01T00:00:00   pin the evaluation time
//   :translate <query>      show the Fig. 3 translation
//   :view <stream>          print the materialized temporal view
//   :streams                list loaded streams
//   :quit
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/file_util.h"
#include "common/string_util.h"
#include "core/stream_manager.h"
#include "frag/io.h"
#include "xml/serializer.h"

namespace {

using xcql::lang::ExecMethod;

struct StreamSpec {
  std::string name;
  std::string structure_file;
  std::string document_file;
  std::vector<std::string> fragment_files;
};

struct ShellOptions {
  std::vector<StreamSpec> streams;
  ExecMethod method = ExecMethod::kQaCPlus;
  std::optional<xcql::DateTime> now;
  std::vector<std::string> queries;
  bool translate_only = false;
  // Paper-faithful cost model: linear filler[@id=$fid] scans instead of the
  // default hash-indexed lookup (reproduces the paper's QaC/CaQ costs).
  bool paper_faithful = false;
  std::string materialize;
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --stream NAME --structure FILE [--document FILE]\n"
      "          [--fragments FILE]... [--stream NAME2 ...]\n"
      "          [--method caq|qac|qac+] [--now dateTime] [--paper-faithful]\n"
      "          [--query XCQL]... [--translate] [--materialize NAME]\n",
      argv0);
  return 2;
}

bool ParseMethod(const std::string& s, ExecMethod* out) {
  if (s == "caq" || s == "CaQ") {
    *out = ExecMethod::kCaQ;
  } else if (s == "qac" || s == "QaC") {
    *out = ExecMethod::kQaC;
  } else if (s == "qac+" || s == "QaC+" || s == "qacplus") {
    *out = ExecMethod::kQaCPlus;
  } else {
    return false;
  }
  return true;
}

int Fail(const xcql::Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

xcql::Status LoadStreams(const ShellOptions& opts, xcql::StreamManager* mgr) {
  for (const StreamSpec& spec : opts.streams) {
    if (spec.structure_file.empty()) {
      return xcql::Status::InvalidArgument("stream '" + spec.name +
                                           "' has no --structure");
    }
    XCQL_ASSIGN_OR_RETURN(std::string ts,
                          xcql::ReadFileToString(spec.structure_file));
    XCQL_RETURN_NOT_OK(mgr->CreateStream(spec.name, ts).status());
    if (!spec.document_file.empty()) {
      XCQL_ASSIGN_OR_RETURN(std::string doc,
                            xcql::ReadFileToString(spec.document_file));
      XCQL_RETURN_NOT_OK(mgr->PublishDocumentXml(spec.name, doc));
    }
    for (const std::string& file : spec.fragment_files) {
      XCQL_ASSIGN_OR_RETURN(std::vector<xcql::frag::Fragment> frags,
                            xcql::frag::ReadFragmentStreamFile(file));
      for (xcql::frag::Fragment& f : frags) {
        XCQL_RETURN_NOT_OK(mgr->PublishFragment(spec.name, std::move(f)));
      }
    }
  }
  return xcql::Status::OK();
}

void RunQuery(xcql::StreamManager* mgr, const ShellOptions& opts,
              const std::string& query) {
  if (opts.translate_only) {
    auto t = mgr->Translate(query, opts.method);
    std::printf("%s\n", t.ok() ? t.value().c_str()
                               : t.status().ToString().c_str());
    return;
  }
  xcql::lang::ExecOptions eopts;
  eopts.method = opts.method;
  eopts.now = opts.now;
  if (opts.paper_faithful) eopts.linear_get_fillers = true;
  auto r = mgr->Query(query, eopts);
  if (!r.ok()) {
    std::printf("error: %s\n", r.status().ToString().c_str());
    return;
  }
  for (const auto& item : r.value()) {
    std::printf("%s\n", xcql::RenderResult({item}).c_str());
  }
  if (r.value().empty()) std::printf("(empty)\n");
}

void PrintView(xcql::StreamManager* mgr, const std::string& stream) {
  auto view = mgr->MaterializeView(stream);
  if (!view.ok()) {
    std::printf("error: %s\n", view.status().ToString().c_str());
    return;
  }
  std::printf("%s\n",
              xcql::SerializeXml(*view.value(), {.pretty = true}).c_str());
}

void Repl(xcql::StreamManager* mgr, ShellOptions* opts) {
  std::printf("xcqlsh — type :help for commands\n");
  std::string buffer;
  std::string line;
  for (;;) {
    std::printf(buffer.empty() ? "xcql> " : "   -> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    // Commands act immediately.
    if (buffer.empty() && !line.empty() && line[0] == ':') {
      std::string cmd = line.substr(1);
      if (cmd == "quit" || cmd == "q") break;
      if (cmd == "help") {
        std::printf(
            ":method caq|qac|qac+   :now dateTime   :translate <query>\n"
            ":view <stream>         :streams        :quit\n"
            "End a query with ';' or an empty line to execute it.\n");
      } else if (cmd.rfind("method ", 0) == 0) {
        if (!ParseMethod(cmd.substr(7), &opts->method)) {
          std::printf("unknown method '%s'\n", cmd.substr(7).c_str());
        }
      } else if (cmd.rfind("now ", 0) == 0) {
        auto t = xcql::DateTime::Parse(cmd.substr(4));
        if (t.ok()) {
          opts->now = t.value();
        } else {
          std::printf("%s\n", t.status().ToString().c_str());
        }
      } else if (cmd.rfind("translate ", 0) == 0) {
        auto t = mgr->Translate(cmd.substr(10), opts->method);
        std::printf("%s\n", t.ok() ? t.value().c_str()
                                   : t.status().ToString().c_str());
      } else if (cmd.rfind("view ", 0) == 0) {
        PrintView(mgr, cmd.substr(5));
      } else if (cmd == "streams") {
        for (const std::string& name : mgr->StreamNames()) {
          const xcql::frag::FragmentStore* store = mgr->store(name);
          std::printf("  %s (%zu fragments)\n", name.c_str(),
                      store != nullptr ? store->size() : 0);
        }
      } else {
        std::printf("unknown command ':%s' (:help)\n", cmd.c_str());
      }
      continue;
    }
    // Accumulate query text; empty line or trailing ';' executes.
    bool run = false;
    if (line.empty()) {
      run = !buffer.empty();
    } else {
      buffer += line;
      buffer += "\n";
      std::string_view sv = xcql::StripWhitespace(line);
      if (!sv.empty() && sv.back() == ';') {
        buffer.erase(buffer.find_last_of(';'));
        run = true;
      }
    }
    if (run) {
      RunQuery(mgr, *opts, buffer);
      buffer.clear();
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  ShellOptions opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--stream") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opts.streams.push_back({});
      opts.streams.back().name = v;
    } else if (arg == "--structure" || arg == "--document" ||
               arg == "--fragments") {
      const char* v = next();
      if (v == nullptr || opts.streams.empty()) return Usage(argv[0]);
      StreamSpec& spec = opts.streams.back();
      if (arg == "--structure") {
        spec.structure_file = v;
      } else if (arg == "--document") {
        spec.document_file = v;
      } else {
        spec.fragment_files.emplace_back(v);
      }
    } else if (arg == "--method") {
      const char* v = next();
      if (v == nullptr || !ParseMethod(v, &opts.method)) {
        return Usage(argv[0]);
      }
    } else if (arg == "--now") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      auto t = xcql::DateTime::Parse(v);
      if (!t.ok()) return Fail(t.status());
      opts.now = t.value();
    } else if (arg == "--query" || arg == "-q") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opts.queries.emplace_back(v);
    } else if (arg == "--translate") {
      opts.translate_only = true;
    } else if (arg == "--paper-faithful") {
      opts.paper_faithful = true;
    } else if (arg == "--materialize") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opts.materialize = v;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (opts.streams.empty()) return Usage(argv[0]);

  xcql::StreamManager mgr;
  xcql::Status st = LoadStreams(opts, &mgr);
  if (!st.ok()) return Fail(st);

  if (!opts.materialize.empty()) {
    PrintView(&mgr, opts.materialize);
    return 0;
  }
  if (!opts.queries.empty()) {
    for (const std::string& q : opts.queries) {
      RunQuery(&mgr, opts, q);
    }
    return 0;
  }
  Repl(&mgr, &opts);
  return 0;
}
