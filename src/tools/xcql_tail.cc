// xcql_tail — subscribe to a networked fragment stream and run a
// continuous XCQL query against it.
//
// Connects to an xcql_serve endpoint, learns the stream's Tag Structure at
// the handshake, accumulates received fragments in a local FragmentStore,
// and re-evaluates the query as data arrives, printing newly appearing
// results. Without --query it prints arrival statistics instead.
//
//   xcql_tail --connect localhost:7788 --stream auction
//             --query 'count(stream("auction")//item)' [--compressed]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "common/string_util.h"
#include "core/stream_manager.h"
#include "net/subscriber.h"
#include "stream/continuous.h"
#include "stream/registry.h"

namespace {

struct TailOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 7788;
  std::string stream;
  std::string query;
  bool compressed = false;
  int interval_ms = 500;
  int duration_ms = 0;  // 0 = until killed
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --connect HOST:PORT --stream NAME [--query XCQL]\n"
               "          [--compressed] [--interval-ms M] [--duration-ms M]\n",
               argv0);
  return 2;
}

bool Fail(const xcql::Status& st) {
  if (st.ok()) return false;
  std::fprintf(stderr, "xcql_tail: %s\n", st.ToString().c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  TailOptions opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--connect") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      std::string hp = v;
      size_t colon = hp.rfind(':');
      if (colon == std::string::npos) return Usage(argv[0]);
      opt.host = hp.substr(0, colon);
      opt.port = static_cast<uint16_t>(std::atoi(hp.c_str() + colon + 1));
    } else if (arg == "--stream") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.stream = v;
    } else if (arg == "--query") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.query = v;
    } else if (arg == "--compressed") {
      opt.compressed = true;
    } else if (arg == "--interval-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.interval_ms = std::atoi(v);
    } else if (arg == "--duration-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.duration_ms = std::atoi(v);
    } else {
      return Usage(argv[0]);
    }
  }
  if (opt.stream.empty()) return Usage(argv[0]);

  xcql::net::FragmentSubscriberOptions sub_opts;
  sub_opts.host = opt.host;
  sub_opts.port = opt.port;
  sub_opts.stream = opt.stream;
  sub_opts.codec = opt.compressed ? xcql::frag::WireCodec::kTagCompressed
                                  : xcql::frag::WireCodec::kPlainXml;
  xcql::net::FragmentSubscriber subscriber(sub_opts);
  if (Fail(subscriber.Start())) return 1;
  if (!subscriber.WaitConnected(std::chrono::seconds(10))) {
    std::fprintf(stderr, "xcql_tail: could not reach %s:%u (%s)\n",
                 opt.host.c_str(), opt.port,
                 subscriber.handshake_failed() ? "handshake rejected"
                                               : "timeout");
    return 1;
  }

  // The schema arrived with the handshake: build the local store the
  // received fragments feed and the continuous engine queries.
  auto ts_xml = subscriber.TagStructureXml();
  if (Fail(ts_xml.status())) return 1;
  auto ts = xcql::frag::TagStructure::Parse(ts_xml.value());
  if (Fail(ts.status())) return 1;
  xcql::stream::StreamHub hub;
  auto store_r = hub.AddLocalStream(opt.stream, std::move(ts).MoveValue());
  if (Fail(store_r.status())) return 1;
  xcql::frag::FragmentStore* store = store_r.value();
  xcql::stream::SimClock clock;
  xcql::stream::ContinuousQueryEngine engine(&hub, &clock);

  if (!opt.query.empty()) {
    auto id = engine.Register(
        opt.query, [](const xcql::xq::Sequence& delta, xcql::DateTime at) {
          for (const auto& item : delta) {
            std::printf("[%s] %s\n", at.ToString().c_str(),
                        xcql::RenderResult({item}).c_str());
          }
          std::fflush(stdout);
        });
    if (Fail(id.status())) return 1;
  }

  auto started = std::chrono::steady_clock::now();
  int64_t total = 0;
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(opt.interval_ms));
    auto drained = subscriber.DrainInto(store);
    if (Fail(drained.status())) return 1;
    if (drained.value() > 0) {
      total += drained.value();
      clock.AdvanceTo(store->max_valid_time());
      if (!opt.query.empty()) {
        if (Fail(engine.Tick())) return 1;
      } else {
        std::printf("received %d fragments (%lld total, seq %lld)\n",
                    drained.value(), static_cast<long long>(total),
                    static_cast<long long>(subscriber.last_seq()));
        std::fflush(stdout);
      }
    }
    if (opt.duration_ms > 0 &&
        std::chrono::steady_clock::now() - started >=
            std::chrono::milliseconds(opt.duration_ms)) {
      break;
    }
  }
  auto m = subscriber.metrics();
  std::printf(
      "done: %lld fragments, %lld bytes in, %lld reconnects, last seq "
      "%lld\n",
      static_cast<long long>(m.fragments_in),
      static_cast<long long>(m.bytes_in),
      static_cast<long long>(m.reconnects),
      static_cast<long long>(subscriber.last_seq()));
  subscriber.Stop();
  return 0;
}
