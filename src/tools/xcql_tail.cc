// xcql_tail — subscribe to a networked fragment stream and run a
// continuous XCQL query against it.
//
// Connects to an xcql_serve endpoint, learns the stream's Tag Structure at
// the handshake, accumulates received fragments in a local FragmentStore,
// and re-evaluates the query as data arrives, printing newly appearing
// results. Without --query it prints arrival statistics instead.
//
//   xcql_tail --connect localhost:7788 --stream auction
//             --query 'count(stream("auction")//item)' [--compressed]
//
// With --remote the query is not evaluated here at all: it travels to the
// server in a QUERY frame (protocol v3, docs/REMOTE_QUERIES.md), the
// server's query channel evaluates it once per published fragment, and
// this process just prints the RESULT delta stream — added items as [+],
// removed as [-]. --method, --holes and --paper-faithful ride along in
// the frame, so the server evaluates with exactly the options a local
// engine would have used:
//
//   xcql_tail --connect localhost:7788 --stream auction --remote \
//             --query 'stream("auction")//item' --method qac+ --holes omit
//
// With any --fault-* flag the connection runs through a local
// deterministic fault-injection proxy (net::ChaosLink) and each drain
// sweep NACKs still-missing fillers upstream, so the full corruption →
// gap → repair loop can be exercised against any server
// (docs/ROBUSTNESS.md). --holes picks the degraded-mode behavior when a
// filler stays missing: omit (default), keep, or fail.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "common/string_util.h"
#include "core/stream_manager.h"
#include "net/chaos.h"
#include "net/subscriber.h"
#include "stream/continuous.h"
#include "stream/registry.h"

namespace {

struct TailOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 7788;
  std::string stream;
  std::string query;
  bool compressed = false;
  int interval_ms = 500;
  int duration_ms = 0;  // 0 = until killed
  // Paper-faithful cost model: linear filler scans instead of the default
  // hash-indexed lookup.
  bool paper_faithful = false;
  xcql::xq::HolePolicy holes = xcql::xq::HolePolicy::kOmit;
  // Server-side evaluation: ship the query in a QUERY frame and print the
  // RESULT delta stream instead of evaluating locally.
  bool remote = false;
  xcql::lang::ExecMethod method = xcql::lang::ExecMethod::kQaCPlus;
  xcql::net::ChaosFaults faults;
  uint64_t fault_seed = 1;
  bool any_fault = false;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --connect HOST:PORT --stream NAME [--query XCQL]\n"
               "          [--remote] [--method caq|qac|qac+]\n"
               "          [--compressed] [--interval-ms M] [--duration-ms M]\n"
               "          [--holes omit|keep|fail] [--paper-faithful]\n"
               "          [--fault-drop P] [--fault-dup P] [--fault-reorder "
               "P]\n"
               "          [--fault-corrupt P] [--fault-truncate P]\n"
               "          [--fault-delay-ms M] [--fault-seed S]\n",
               argv0);
  return 2;
}

bool Fail(const xcql::Status& st) {
  if (st.ok()) return false;
  std::fprintf(stderr, "xcql_tail: %s\n", st.ToString().c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  TailOptions opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--connect") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      std::string hp = v;
      size_t colon = hp.rfind(':');
      if (colon == std::string::npos) return Usage(argv[0]);
      opt.host = hp.substr(0, colon);
      opt.port = static_cast<uint16_t>(std::atoi(hp.c_str() + colon + 1));
    } else if (arg == "--stream") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.stream = v;
    } else if (arg == "--query") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.query = v;
    } else if (arg == "--compressed") {
      opt.compressed = true;
    } else if (arg == "--remote") {
      opt.remote = true;
    } else if (arg == "--method") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      if (std::strcmp(v, "caq") == 0) {
        opt.method = xcql::lang::ExecMethod::kCaQ;
      } else if (std::strcmp(v, "qac") == 0) {
        opt.method = xcql::lang::ExecMethod::kQaC;
      } else if (std::strcmp(v, "qac+") == 0 ||
                 std::strcmp(v, "qacplus") == 0) {
        opt.method = xcql::lang::ExecMethod::kQaCPlus;
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--paper-faithful") {
      opt.paper_faithful = true;
    } else if (arg == "--interval-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.interval_ms = std::atoi(v);
    } else if (arg == "--duration-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.duration_ms = std::atoi(v);
    } else if (arg == "--holes") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      if (std::strcmp(v, "omit") == 0) {
        opt.holes = xcql::xq::HolePolicy::kOmit;
      } else if (std::strcmp(v, "keep") == 0) {
        opt.holes = xcql::xq::HolePolicy::kKeepHole;
      } else if (std::strcmp(v, "fail") == 0) {
        opt.holes = xcql::xq::HolePolicy::kFail;
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--fault-drop" || arg == "--fault-dup" ||
               arg == "--fault-reorder" || arg == "--fault-corrupt" ||
               arg == "--fault-truncate") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      double p = std::atof(v);
      opt.any_fault = true;
      if (arg == "--fault-drop") opt.faults.drop = p;
      if (arg == "--fault-dup") opt.faults.duplicate = p;
      if (arg == "--fault-reorder") opt.faults.reorder = p;
      if (arg == "--fault-corrupt") opt.faults.corrupt = p;
      if (arg == "--fault-truncate") opt.faults.truncate = p;
    } else if (arg == "--fault-delay-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.faults.delay = std::chrono::milliseconds(std::atoi(v));
      opt.any_fault = true;
    } else if (arg == "--fault-seed") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opt.fault_seed = static_cast<uint64_t>(std::atoll(v));
    } else {
      return Usage(argv[0]);
    }
  }
  if (opt.stream.empty()) return Usage(argv[0]);
  if (opt.remote && opt.query.empty()) {
    std::fprintf(stderr, "xcql_tail: --remote needs --query\n");
    return Usage(argv[0]);
  }

  // With faults the subscriber dials a local chaos proxy that relays (and
  // attacks) the upstream connection.
  std::unique_ptr<xcql::net::ChaosLink> chaos;
  if (opt.any_fault) {
    xcql::net::ChaosLinkOptions chaos_opts;
    chaos_opts.upstream_host = opt.host;
    chaos_opts.upstream_port = opt.port;
    chaos_opts.seed = opt.fault_seed;
    chaos_opts.faults = opt.faults;
    chaos = std::make_unique<xcql::net::ChaosLink>(chaos_opts);
    if (Fail(chaos->Start())) return 1;
    std::printf("chaos link on port %u → %s:%u (seed %llu)\n",
                chaos->port(), opt.host.c_str(), opt.port,
                static_cast<unsigned long long>(opt.fault_seed));
  }

  xcql::net::FragmentSubscriberOptions sub_opts;
  sub_opts.host = chaos != nullptr ? "127.0.0.1" : opt.host;
  sub_opts.port = chaos != nullptr ? chaos->port() : opt.port;
  sub_opts.stream = opt.stream;
  sub_opts.codec = opt.compressed ? xcql::frag::WireCodec::kTagCompressed
                                  : xcql::frag::WireCodec::kPlainXml;
  xcql::net::FragmentSubscriber subscriber(sub_opts);

  // Remote mode: register before Start() so the very first handshake
  // already carries the QUERY, plumbing --method / --holes /
  // --paper-faithful through the frame's option bytes.
  uint32_t query_token = 0;
  if (opt.remote) {
    xcql::net::RemoteQuerySpec spec;
    spec.text = opt.query;
    spec.method = static_cast<uint8_t>(opt.method);
    spec.hole_policy = static_cast<uint8_t>(opt.holes);
    if (opt.paper_faithful) spec.flags |= xcql::net::kQueryFlagPaperFaithful;
    auto token = subscriber.AddRemoteQuery(std::move(spec));
    if (Fail(token.status())) return 1;
    query_token = token.value();
  }

  if (Fail(subscriber.Start())) return 1;
  if (!subscriber.WaitConnected(std::chrono::seconds(10))) {
    std::fprintf(stderr, "xcql_tail: could not reach %s:%u (%s)\n",
                 opt.host.c_str(), opt.port,
                 subscriber.handshake_failed() ? "handshake rejected"
                                               : "timeout");
    return 1;
  }

  // The schema arrived with the handshake: build the local store the
  // received fragments feed and the continuous engine queries.
  auto ts_xml = subscriber.TagStructureXml();
  if (Fail(ts_xml.status())) return 1;
  auto ts = xcql::frag::TagStructure::Parse(ts_xml.value());
  if (Fail(ts.status())) return 1;
  xcql::stream::StreamHub hub;
  auto store_r = hub.AddLocalStream(opt.stream, std::move(ts).MoveValue());
  if (Fail(store_r.status())) return 1;
  xcql::frag::FragmentStore* store = store_r.value();
  xcql::stream::SimClock clock;
  xcql::stream::ContinuousQueryEngine engine(&hub, &clock);

  if (opt.remote) {
    if (!subscriber.server_queries()) {
      std::fprintf(stderr,
                   "xcql_tail: server did not negotiate the query channel "
                   "(--no-queries or pre-v3 peer); rerun without --remote\n");
      return 1;
    }
    if (!subscriber.WaitQueryActive(query_token, std::chrono::seconds(10))) {
      auto qs = subscriber.query_state(query_token);
      std::fprintf(stderr, "xcql_tail: remote query not admitted%s%s\n",
                   qs.ok() && !qs.value().last_message.empty() ? ": " : "",
                   qs.ok() ? qs.value().last_message.c_str() : "");
      return 1;
    }
    auto qs = subscriber.query_state(query_token);
    std::printf("remote query active (server id %llu)\n",
                static_cast<unsigned long long>(
                    qs.ok() ? qs.value().query_id : 0));
  }

  int query_id = -1;
  if (!opt.query.empty() && !opt.remote) {
    xcql::stream::ContinuousQueryOptions q_opts;
    q_opts.method = opt.method;
    q_opts.hole_policy = opt.holes;
    if (opt.paper_faithful) q_opts.linear_get_fillers = true;
    auto id = engine.Register(
        opt.query,
        [](const xcql::xq::Sequence& delta, xcql::DateTime at) {
          for (const auto& item : delta) {
            std::printf("[%s] %s\n", at.ToString().c_str(),
                        xcql::RenderResult({item}).c_str());
          }
          std::fflush(stdout);
        },
        q_opts);
    if (Fail(id.status())) return 1;
    query_id = id.value();
  }

  auto started = std::chrono::steady_clock::now();
  int64_t total = 0;
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(opt.interval_ms));
    auto drained = subscriber.DrainInto(store);
    if (Fail(drained.status())) return 1;
    // NACK any fillers whose holes are still dangling (v2 servers only).
    if (subscriber.server_crc()) {
      auto repair = subscriber.RepairMissing(*store);
      if (repair.ok() && repair.value().nacks_sent > 0) {
        std::printf("repair: %d missing, %d NACKed (%d repaired, %d lost "
                    "so far)\n",
                    repair.value().missing, repair.value().nacks_sent,
                    repair.value().repaired_total,
                    repair.value().lost_total);
      }
    }
    if (opt.remote) {
      std::vector<xcql::net::RemoteQueryResult> results;
      subscriber.DrainResults(&results);
      for (const auto& r : results) {
        const std::string when =
            xcql::DateTime(r.delta.eval_time_s).ToString();
        for (const auto& item : r.delta.added) {
          std::printf("[%s #%lld +] %s\n", when.c_str(),
                      static_cast<long long>(r.seq), item.c_str());
        }
        for (const auto& item : r.delta.removed) {
          std::printf("[%s #%lld -] %s\n", when.c_str(),
                      static_cast<long long>(r.seq), item.c_str());
        }
      }
      if (!results.empty()) std::fflush(stdout);
    }
    if (drained.value() > 0) {
      total += drained.value();
      clock.AdvanceTo(store->max_valid_time());
      if (!opt.query.empty() && !opt.remote) {
        if (Fail(engine.Tick())) return 1;
      } else if (opt.query.empty()) {
        std::printf("received %d fragments (%lld total, seq %lld)\n",
                    drained.value(), static_cast<long long>(total),
                    static_cast<long long>(subscriber.last_seq()));
        std::fflush(stdout);
      }
    }
    if (opt.duration_ms > 0 &&
        std::chrono::steady_clock::now() - started >=
            std::chrono::milliseconds(opt.duration_ms)) {
      break;
    }
  }
  if (query_id >= 0) {
    auto qs = engine.QueryStats(query_id);
    if (qs.ok()) {
      std::printf(
          "plan: compiled in %lldus, %lld compiled / %lld interpreted "
          "evaluations, arena high-water %zu bytes%s%s\n",
          static_cast<long long>(qs.value().compile_micros),
          static_cast<long long>(qs.value().compiled_evals),
          static_cast<long long>(qs.value().fallback_evals),
          qs.value().arena_high_water,
          qs.value().plan_fallback_reason.empty() ? "" : " — fallback: ",
          qs.value().plan_fallback_reason.c_str());
    }
  }
  if (opt.remote) {
    auto qs = subscriber.query_state(query_token);
    if (qs.ok()) {
      std::printf("remote query: last result seq %lld\n",
                  static_cast<long long>(qs.value().last_result_seq));
    }
  }
  auto m = subscriber.metrics();
  std::printf(
      "done: %lld fragments, %lld bytes in, %lld reconnects, last seq "
      "%lld\n",
      static_cast<long long>(m.fragments_in),
      static_cast<long long>(m.bytes_in),
      static_cast<long long>(m.reconnects),
      static_cast<long long>(subscriber.last_seq()));
  if (m.frames_corrupt + m.nacks_sent + m.fillers_repaired +
          m.fillers_lost + m.poison_quarantined + m.liveness_timeouts +
          m.catchup_replays >
      0) {
    std::printf(
        "faults: %lld corrupt frames, %lld liveness timeouts, %lld catchup "
        "replays, %lld NACKs (%lld repaired, %lld lost), %lld poison\n",
        static_cast<long long>(m.frames_corrupt),
        static_cast<long long>(m.liveness_timeouts),
        static_cast<long long>(m.catchup_replays),
        static_cast<long long>(m.nacks_sent),
        static_cast<long long>(m.fillers_repaired),
        static_cast<long long>(m.fillers_lost),
        static_cast<long long>(m.poison_quarantined));
  }
  if (chaos != nullptr) {
    auto cs = chaos->stats();
    std::printf(
        "chaos: %lld frames, dropped %lld, duplicated %lld, reordered "
        "%lld, corrupted %lld, truncated %lld\n",
        static_cast<long long>(cs.frames),
        static_cast<long long>(cs.dropped),
        static_cast<long long>(cs.duplicated),
        static_cast<long long>(cs.reordered),
        static_cast<long long>(cs.corrupted),
        static_cast<long long>(cs.truncated));
    chaos->Stop();
  }
  subscriber.Stop();
  return 0;
}
