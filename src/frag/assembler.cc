#include "frag/assembler.h"

#include "common/string_util.h"

namespace xcql::frag {

namespace {

constexpr int kMaxDepth = 500;

bool HasFragmentedDescendant(const TagNode* tag) {
  for (const auto& c : tag->children) {
    if (c->fragmented() || HasFragmentedDescendant(c.get())) return true;
  }
  return false;
}

// Shared handling of a hole whose filler never arrived. Returns an error
// only under kFail; otherwise records the incompleteness and (for
// kKeepHole) re-emits the hole element itself. A kept hole is a leaf, so
// no recursion is needed on it.
Status HandleMissingFiller(const Node& hole, int64_t id,
                           xq::HolePolicy policy, TemporalizeStats* stats,
                           Node* dst) {
  switch (policy) {
    case xq::HolePolicy::kFail:
      return Status::NotFound(
          StringPrintf("missing filler %lld referenced by a hole",
                       static_cast<long long>(id)));
    case xq::HolePolicy::kKeepHole:
      ++stats->unresolved_holes;
      dst->AddChild(hole.Clone());
      return Status::OK();
    case xq::HolePolicy::kOmit:
      ++stats->unresolved_holes;
      return Status::OK();
  }
  return Status::OK();
}

// Generic variant: checks every element child for holes, like the paper's
// recursive temporalize/get_fillers functions.
Status SpliceGeneric(const FragmentStore& store, bool linear,
                     xq::HolePolicy policy, TemporalizeStats* stats,
                     const Node& src, Node* dst, int depth) {
  if (depth > kMaxDepth) {
    return Status::Internal("temporalize recursion too deep (filler cycle?)");
  }
  for (const NodePtr& child : src.children()) {
    if (!child->is_element()) {
      dst->AddChild(Node::Text(child->text()));
      continue;
    }
    if (IsHoleElement(*child)) {
      XCQL_ASSIGN_OR_RETURN(int64_t id, HoleId(*child));
      XCQL_ASSIGN_OR_RETURN(std::vector<NodePtr> versions,
                            store.GetFillerVersions(id, linear));
      // Any stored fragment yields at least one version, so empty means
      // the filler is missing.
      if (versions.empty()) {
        XCQL_RETURN_NOT_OK(
            HandleMissingFiller(*child, id, policy, stats, dst));
        continue;
      }
      for (const NodePtr& v : versions) {
        NodePtr out = Node::Element(v->name());
        for (const auto& [k, a] : v->attrs()) out->SetAttr(k, a);
        XCQL_RETURN_NOT_OK(SpliceGeneric(store, linear, policy, stats, *v,
                                         out.get(), depth + 1));
        dst->AddChild(std::move(out));
      }
      continue;
    }
    NodePtr out = Node::Element(child->name());
    for (const auto& [k, a] : child->attrs()) out->SetAttr(k, a);
    XCQL_RETURN_NOT_OK(SpliceGeneric(store, linear, policy, stats, *child,
                                     out.get(), depth + 1));
    dst->AddChild(std::move(out));
  }
  return Status::OK();
}

// Schema-driven variant (§5.1): the Tag Structure tells us which children
// can be holes (fragmented tags) and which subtrees are pure snapshots that
// can be copied without inspection.
Status SpliceSchema(const FragmentStore& store, xq::HolePolicy policy,
                    TemporalizeStats* stats, const Node& src,
                    const TagNode* tag, Node* dst, int depth) {
  if (depth > kMaxDepth) {
    return Status::Internal("temporalize recursion too deep (filler cycle?)");
  }
  // A tag with no fragmented descendants ⇒ the whole subtree is literal.
  bool any_fragmented_child = false;
  for (const auto& c : tag->children) {
    if (c->fragmented()) {
      any_fragmented_child = true;
      break;
    }
  }
  for (const NodePtr& child : src.children()) {
    if (!child->is_element()) {
      dst->AddChild(Node::Text(child->text()));
      continue;
    }
    if (any_fragmented_child && IsHoleElement(*child)) {
      XCQL_ASSIGN_OR_RETURN(int64_t id, HoleId(*child));
      XCQL_ASSIGN_OR_RETURN(int tsid, HoleTsid(*child));
      const TagNode* ctag = store.tag_structure().FindById(tsid);
      if (ctag == nullptr) {
        return Status::InvalidArgument("hole references unknown tsid");
      }
      XCQL_ASSIGN_OR_RETURN(std::vector<NodePtr> versions,
                            store.GetFillerVersions(id, /*linear=*/false));
      if (versions.empty()) {
        XCQL_RETURN_NOT_OK(
            HandleMissingFiller(*child, id, policy, stats, dst));
        continue;
      }
      for (const NodePtr& v : versions) {
        NodePtr out = Node::Element(v->name());
        for (const auto& [k, a] : v->attrs()) out->SetAttr(k, a);
        XCQL_RETURN_NOT_OK(SpliceSchema(store, policy, stats, *v, ctag,
                                        out.get(), depth + 1));
        dst->AddChild(std::move(out));
      }
      continue;
    }
    const TagNode* ctag = tag->Child(child->name());
    if (ctag == nullptr || !HasFragmentedDescendant(ctag)) {
      // Pure snapshot subtree: deep-copy without further inspection.
      dst->AddChild(child->Clone());
      continue;
    }
    NodePtr out = Node::Element(child->name());
    for (const auto& [k, a] : child->attrs()) out->SetAttr(k, a);
    XCQL_RETURN_NOT_OK(SpliceSchema(store, policy, stats, *child, ctag,
                                    out.get(), depth + 1));
    dst->AddChild(std::move(out));
  }
  return Status::OK();
}

}  // namespace

Result<NodePtr> Temporalize(const FragmentStore& store, bool linear_scan,
                            xq::HolePolicy policy, TemporalizeStats* stats) {
  TemporalizeStats local;
  if (stats == nullptr) stats = &local;
  XCQL_ASSIGN_OR_RETURN(std::vector<NodePtr> roots,
                        store.GetFillerVersions(0, linear_scan));
  if (roots.empty()) {
    return Status::NotFound("store has no root fragment (filler id 0)");
  }
  // The root is a snapshot; a republished root replaces the earlier one.
  const NodePtr& src = roots.back();
  NodePtr out = Node::Element(src->name());
  for (const auto& [k, a] : src->attrs()) out->SetAttr(k, a);
  XCQL_RETURN_NOT_OK(SpliceGeneric(store, linear_scan, policy, stats, *src,
                                   out.get(), 0));
  return out;
}

Result<NodePtr> TemporalizeSchemaDriven(const FragmentStore& store,
                                        xq::HolePolicy policy,
                                        TemporalizeStats* stats) {
  TemporalizeStats local;
  if (stats == nullptr) stats = &local;
  XCQL_ASSIGN_OR_RETURN(std::vector<NodePtr> roots,
                        store.GetFillerVersions(0, /*linear=*/false));
  if (roots.empty()) {
    return Status::NotFound("store has no root fragment (filler id 0)");
  }
  const NodePtr& src = roots.back();
  NodePtr out = Node::Element(src->name());
  for (const auto& [k, a] : src->attrs()) out->SetAttr(k, a);
  XCQL_RETURN_NOT_OK(SpliceSchema(store, policy, stats, *src,
                                  store.tag_structure().root(), out.get(),
                                  0));
  return out;
}

}  // namespace xcql::frag
