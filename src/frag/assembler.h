// Reconstruction of the temporal view from fragments (paper §5): replaces
// every hole with the version sequence of its fillers, annotating versions
// with derived vtFrom/vtTo lifespans. Two variants mirror the paper:
// the generic recursive `temporalize` (§5) and the schema-driven
// reconstruction generated from the Tag Structure (§5.1).
//
// Both variants take an xq::HolePolicy governing holes whose filler never
// arrived (lossy transport, repair budget exhausted — docs/ROBUSTNESS.md):
// kOmit splices nothing (the historical behavior), kFail aborts with
// NotFound, kKeepHole keeps the <hole/> element as an explicit marker. The
// optional TemporalizeStats out-param reports how many holes were left
// unresolved, the completeness signal for degraded-mode consumers.
#ifndef XCQL_FRAG_ASSEMBLER_H_
#define XCQL_FRAG_ASSEMBLER_H_

#include "common/result.h"
#include "frag/fragment_store.h"
#include "xq/context.h"

namespace xcql::frag {

/// \brief Completeness report for one reconstruction.
struct TemporalizeStats {
  /// Holes whose filler was missing, handled per kOmit/kKeepHole.
  int64_t unresolved_holes = 0;
};

/// \brief Generic recursive reconstruction (paper §5): inspects every child
/// of every element for holes. `linear_scan` selects the paper-faithful
/// O(N) filler lookup per hole (the CaQ cost model) versus the hash index.
Result<NodePtr> Temporalize(const FragmentStore& store, bool linear_scan,
                            xq::HolePolicy policy = xq::HolePolicy::kOmit,
                            TemporalizeStats* stats = nullptr);

/// \brief Schema-driven reconstruction (paper §5.1): walks fragments guided
/// by the Tag Structure, visiting only positions where the schema says
/// holes can occur, with indexed filler lookup. Produces the same tree as
/// Temporalize.
Result<NodePtr> TemporalizeSchemaDriven(
    const FragmentStore& store,
    xq::HolePolicy policy = xq::HolePolicy::kOmit,
    TemporalizeStats* stats = nullptr);

}  // namespace xcql::frag

#endif  // XCQL_FRAG_ASSEMBLER_H_
