// Reconstruction of the temporal view from fragments (paper §5): replaces
// every hole with the version sequence of its fillers, annotating versions
// with derived vtFrom/vtTo lifespans. Two variants mirror the paper:
// the generic recursive `temporalize` (§5) and the schema-driven
// reconstruction generated from the Tag Structure (§5.1).
#ifndef XCQL_FRAG_ASSEMBLER_H_
#define XCQL_FRAG_ASSEMBLER_H_

#include "common/result.h"
#include "frag/fragment_store.h"

namespace xcql::frag {

/// \brief Generic recursive reconstruction (paper §5): inspects every child
/// of every element for holes. `linear_scan` selects the paper-faithful
/// O(N) filler lookup per hole (the CaQ cost model) versus the hash index.
Result<NodePtr> Temporalize(const FragmentStore& store, bool linear_scan);

/// \brief Schema-driven reconstruction (paper §5.1): walks fragments guided
/// by the Tag Structure, visiting only positions where the schema says
/// holes can occur, with indexed filler lookup. Produces the same tree as
/// Temporalize.
Result<NodePtr> TemporalizeSchemaDriven(const FragmentStore& store);

}  // namespace xcql::frag

#endif  // XCQL_FRAG_ASSEMBLER_H_
