// Tag Structure inference: proposes a Tag Structure from a sample temporal
// document, so stream producers don't have to hand-write the schema. The
// classification follows the temporal-view encoding:
//   * elements carrying vtFrom == vtTo on every occurrence → event;
//   * elements carrying lifespan attributes otherwise     → temporal;
//   * elements never carrying lifespan attributes         → snapshot.
// The root is always snapshot (the fragment model roots the stream in a
// static context fragment, paper §4.1).
#ifndef XCQL_FRAG_INFER_H_
#define XCQL_FRAG_INFER_H_

#include "common/result.h"
#include "frag/tag_structure.h"

namespace xcql::frag {

/// \brief Infers a Tag Structure from a sample document. Ids are assigned
/// in depth-first order starting at 1. Same-named elements under the same
/// parent path share one tag; their occurrences' evidence is merged
/// (any lifespan ⇒ fragmented; any open or multi-version lifespan ⇒
/// temporal).
Result<TagStructure> InferTagStructure(const Node& doc_root);

}  // namespace xcql::frag

#endif  // XCQL_FRAG_INFER_H_
