// Client-side store of received fragments, with the three access paths the
// paper's evaluation compares:
//  * ScanById — the paper-faithful linear `filler[@id=$fid]` scan that the
//    QaC translation implies (§6.1);
//  * LookupById — a hash index on filler id, the "get_fillers as a join"
//    optimization the paper lists as future work (§8);
//  * ByTsid — the tsid index used by the QaC+ method (§7).
//
// The store also derives version lifespans (paper §5): versions of a filler
// are ordered by validTime; a temporal version's vtTo is the next version's
// validTime (the last one is open at "now"); an event's vtTo equals its
// vtFrom; the root snapshot carries no lifespan.
#ifndef XCQL_FRAG_FRAGMENT_STORE_H_
#define XCQL_FRAG_FRAGMENT_STORE_H_

#include <deque>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "frag/fragment.h"
#include "frag/tag_structure.h"
#include "xq/context.h"

namespace xcql::frag {

/// \brief Per-stream retention windows. Any window < 0 is off; with every
/// window off the store keeps history forever (the paper's model).
/// Compaction is lifespan-sound: only versions whose lifespan has already
/// ended below the effective floor are removed, so every query whose
/// observable window starts at or above the floor computes the same answer
/// over the compacted store as over the unbounded one (docs/RETENTION.md).
struct RetentionPolicy {
  /// Time window: versions whose lifespan ended more than this many
  /// seconds before `now` become removable.
  int64_t max_age_s = -1;
  /// Version window: keep at most this many newest versions per filler id.
  int max_versions = -1;
  /// Count window: keep at most this many fragments store-wide (oldest
  /// validTimes become removable first).
  int64_t max_fragments = -1;

  bool enabled() const {
    return max_age_s >= 0 || max_versions >= 0 || max_fragments >= 0;
  }
};

/// \brief One Compact() pass's accounting.
struct CompactionStats {
  int64_t removed_fragments = 0;  // versions dropped from the store
  int64_t expired_fillers = 0;    // ids tombstoned (zero versions kept)
  int64_t bytes_reclaimed = 0;    // estimated payload bytes freed
};

/// \brief Store of fragments for one stream.
class FragmentStore {
 public:
  /// \brief `name` identifies the stream; it is stamped onto holes inside
  /// produced version elements so multi-stream queries can route hole
  /// resolution back to the right store.
  FragmentStore(TagStructure ts, std::string name);

  /// \brief Appends one fragment. Fragments may arrive out of validTime
  /// order; version order is maintained per filler id.
  Status Insert(Fragment f);

  Status InsertAll(std::vector<Fragment> fragments);

  size_t size() const { return fragments_.size(); }
  const TagStructure& tag_structure() const { return ts_; }
  const std::string& name() const { return name_; }

  /// \brief Largest validTime seen (the stream watermark).
  DateTime max_valid_time() const { return max_valid_time_; }

  /// \brief Monotonic change counter: bumped by every stored fragment
  /// (duplicates dropped by the repeat-dedup do not count). Consumers use
  /// it to invalidate derived state such as cached materialized views.
  int64_t revision() const { return revision_; }

  /// \brief Monotonic per-tsid change counter: bumped by every stored
  /// fragment carrying the tsid. The continuous engine compares sums of
  /// these against a per-query snapshot to decide whether a tick can skip a
  /// query whose relevant tsids saw no new fragments.
  int64_t tsid_revision(int tsid) const {
    auto it = revision_by_tsid_.find(tsid);
    return it == revision_by_tsid_.end() ? 0 : it->second;
  }

  /// \brief Version elements for a filler id: payload clones annotated with
  /// vtFrom/vtTo, ordered by validTime. `linear` selects the paper-faithful
  /// O(total fragments) scan; otherwise the hash index is used.
  Result<std::vector<NodePtr>> GetFillerVersions(int64_t id,
                                                 bool linear) const;

  /// \brief `<filler id=…>` wrapper containing the version elements
  /// (the shape the paper's get_fillers function returns, §5).
  Result<NodePtr> GetFillerWrapper(int64_t id, bool linear) const;

  /// \brief Filler wrappers for every filler id with the given tsid, in
  /// first-arrival order (the QaC+ access path).
  Result<std::vector<NodePtr>> GetFillersByTsid(int tsid) const;

  /// \brief Like GetFillersByTsid, but skips filler groups whose combined
  /// lifespan cannot intersect [tb, te] (interval-projection pushdown:
  /// an event group is skipped when all its instants fall outside the
  /// range; a temporal group when its first version starts after te —
  /// its last version stays open until `now`, so no lower-bound prune).
  Result<std::vector<NodePtr>> GetFillersByTsidInRange(int tsid, DateTime tb,
                                                       DateTime te) const;

  /// \brief Number of distinct filler ids carrying the given tsid.
  size_t CountIdsWithTsid(int tsid) const;

  /// \brief Filler ids referenced by a hole in some stored fragment but for
  /// which no fragment has arrived, in ascending id order. These are the
  /// dangling edges of the Hole-Filler graph — what a subscriber NACKs
  /// upstream (net::FragmentSubscriber::RepairMissing) and what degraded-
  /// mode temporalization must splice around (xq::HolePolicy).
  std::vector<int64_t> MissingFillers() const;

  /// \brief Distinct validTimes (epoch seconds) of the stored versions of
  /// `id`, ascending; empty when no version has arrived. This is the
  /// "have" list a version-aware REPEAT_REQUEST carries so the server
  /// re-sends only the versions of a partially-delivered filler that are
  /// actually absent (net::FragmentSubscriber::RepairVersions).
  std::vector<int64_t> VersionTimes(int64_t id) const;

  /// \brief Compacts superseded versions below the retention floor.
  ///
  /// The effective floor is the most aggressive enabled policy window
  /// (time or count), clamped by `observe_floor` — the union of the
  /// observable windows of every registered query (DateTime::End() when
  /// nothing pins retention; DateTime::Start() pins everything). A version
  /// is removed only when its lifespan already ended at or below the
  /// floor: events strictly before it, temporal versions only when a
  /// successor starts at or below it (the latest version of a temporal
  /// filler is open at `now` and never removed), superseded snapshot
  /// transmissions always (replacement semantics). A filler id left with
  /// zero versions is tombstoned: IsExpired(id) distinguishes "expired by
  /// retention" from "never arrived" so hole resolution and
  /// MissingFillers never misreport a compacted filler as lost.
  Result<CompactionStats> Compact(const RetentionPolicy& policy,
                                  DateTime now, DateTime observe_floor);

  /// \brief True when every version of `id` was removed by compaction.
  bool IsExpired(int64_t id) const { return expired_.count(id) != 0; }

  size_t expired_count() const { return expired_.size(); }

  /// \brief The floor the last Compact() removed below (Start() before
  /// any compaction) — late arrivals for expired ids below it are dropped
  /// rather than resurrecting a partially-compacted version chain.
  DateTime retention_floor() const { return retention_floor_; }

  /// \brief Estimated heap footprint of the stored payloads (payload tree
  /// nodes + indexes), maintained incrementally by Insert/Compact.
  int64_t ApproxBytes() const { return approx_bytes_; }

 private:
  std::vector<const Fragment*> CollectById(int64_t id, bool linear) const;
  Result<std::vector<NodePtr>> BuildVersions(
      std::vector<const Fragment*> versions) const;

  TagStructure ts_;
  std::string name_;
  std::deque<Fragment> fragments_;  // stable addresses
  // Wire-form <filler id=… tsid=… validTime=…/> header elements, parallel
  // to fragments_. The paper-faithful linear scan walks these and compares
  // the @id attribute lexically, reproducing the operational cost of
  // evaluating doc("fragments.xml")/fragments/filler[@id=$fid] over an XML
  // document (the access path the paper's QaC/CaQ implementation used).
  std::deque<NodePtr> wire_headers_;
  // Filler-id hash index; per id, fragment indices sorted by
  // (validTime, arrival).
  std::unordered_map<int64_t, std::vector<size_t>> by_id_;
  // tsid index: distinct filler ids in first-arrival order.
  std::unordered_map<int, std::vector<int64_t>> ids_by_tsid_;
  std::unordered_map<int, int64_t> revision_by_tsid_;
  // Every filler id some stored payload references via <hole id=…/>;
  // ordered so MissingFillers() is deterministic.
  std::set<int64_t> referenced_holes_;
  // Filler ids fully removed by Compact(): resolved as "expired", never
  // reported missing. Ordered for deterministic iteration.
  std::set<int64_t> expired_;
  DateTime retention_floor_ = DateTime::Start();
  DateTime max_valid_time_ = DateTime::Start();
  int64_t revision_ = 0;
  int64_t approx_bytes_ = 0;
};

/// \brief HoleResolver over one or more stores: routes each hole to the
/// store named by the hole's `stream` attribute (stamped by
/// GetFillerVersions), defaulting to the sole store when only one is
/// registered. The lookup cost model comes from ctx.linear_fillers, so one
/// resolver instance serves concurrent evaluations with different methods.
class StoreHoleResolver : public xq::HoleResolver {
 public:
  StoreHoleResolver() = default;

  void AddStore(const FragmentStore* store);

  Result<std::vector<NodePtr>> Resolve(xq::EvalContext& ctx,
                                       const Node& hole) override;

 private:
  std::unordered_map<std::string, const FragmentStore*> stores_;
  const FragmentStore* sole_store_ = nullptr;
};

}  // namespace xcql::frag

#endif  // XCQL_FRAG_FRAGMENT_STORE_H_
