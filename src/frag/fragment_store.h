// Client-side store of received fragments, with the three access paths the
// paper's evaluation compares:
//  * ScanById — the paper-faithful linear `filler[@id=$fid]` scan that the
//    QaC translation implies (§6.1);
//  * LookupById — a hash index on filler id, the "get_fillers as a join"
//    optimization the paper lists as future work (§8);
//  * ByTsid — the tsid index used by the QaC+ method (§7).
//
// The store also derives version lifespans (paper §5): versions of a filler
// are ordered by validTime; a temporal version's vtTo is the next version's
// validTime (the last one is open at "now"); an event's vtTo equals its
// vtFrom; the root snapshot carries no lifespan.
#ifndef XCQL_FRAG_FRAGMENT_STORE_H_
#define XCQL_FRAG_FRAGMENT_STORE_H_

#include <deque>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "frag/fragment.h"
#include "frag/tag_structure.h"
#include "xq/context.h"

namespace xcql::frag {

/// \brief Store of fragments for one stream.
class FragmentStore {
 public:
  /// \brief `name` identifies the stream; it is stamped onto holes inside
  /// produced version elements so multi-stream queries can route hole
  /// resolution back to the right store.
  FragmentStore(TagStructure ts, std::string name);

  /// \brief Appends one fragment. Fragments may arrive out of validTime
  /// order; version order is maintained per filler id.
  Status Insert(Fragment f);

  Status InsertAll(std::vector<Fragment> fragments);

  size_t size() const { return fragments_.size(); }
  const TagStructure& tag_structure() const { return ts_; }
  const std::string& name() const { return name_; }

  /// \brief Largest validTime seen (the stream watermark).
  DateTime max_valid_time() const { return max_valid_time_; }

  /// \brief Monotonic change counter: bumped by every stored fragment
  /// (duplicates dropped by the repeat-dedup do not count). Consumers use
  /// it to invalidate derived state such as cached materialized views.
  int64_t revision() const { return revision_; }

  /// \brief Monotonic per-tsid change counter: bumped by every stored
  /// fragment carrying the tsid. The continuous engine compares sums of
  /// these against a per-query snapshot to decide whether a tick can skip a
  /// query whose relevant tsids saw no new fragments.
  int64_t tsid_revision(int tsid) const {
    auto it = revision_by_tsid_.find(tsid);
    return it == revision_by_tsid_.end() ? 0 : it->second;
  }

  /// \brief Version elements for a filler id: payload clones annotated with
  /// vtFrom/vtTo, ordered by validTime. `linear` selects the paper-faithful
  /// O(total fragments) scan; otherwise the hash index is used.
  Result<std::vector<NodePtr>> GetFillerVersions(int64_t id,
                                                 bool linear) const;

  /// \brief `<filler id=…>` wrapper containing the version elements
  /// (the shape the paper's get_fillers function returns, §5).
  Result<NodePtr> GetFillerWrapper(int64_t id, bool linear) const;

  /// \brief Filler wrappers for every filler id with the given tsid, in
  /// first-arrival order (the QaC+ access path).
  Result<std::vector<NodePtr>> GetFillersByTsid(int tsid) const;

  /// \brief Like GetFillersByTsid, but skips filler groups whose combined
  /// lifespan cannot intersect [tb, te] (interval-projection pushdown:
  /// an event group is skipped when all its instants fall outside the
  /// range; a temporal group when its first version starts after te —
  /// its last version stays open until `now`, so no lower-bound prune).
  Result<std::vector<NodePtr>> GetFillersByTsidInRange(int tsid, DateTime tb,
                                                       DateTime te) const;

  /// \brief Number of distinct filler ids carrying the given tsid.
  size_t CountIdsWithTsid(int tsid) const;

  /// \brief Filler ids referenced by a hole in some stored fragment but for
  /// which no fragment has arrived, in ascending id order. These are the
  /// dangling edges of the Hole-Filler graph — what a subscriber NACKs
  /// upstream (net::FragmentSubscriber::RepairMissing) and what degraded-
  /// mode temporalization must splice around (xq::HolePolicy).
  std::vector<int64_t> MissingFillers() const;

  /// \brief Distinct validTimes (epoch seconds) of the stored versions of
  /// `id`, ascending; empty when no version has arrived. This is the
  /// "have" list a version-aware REPEAT_REQUEST carries so the server
  /// re-sends only the versions of a partially-delivered filler that are
  /// actually absent (net::FragmentSubscriber::RepairVersions).
  std::vector<int64_t> VersionTimes(int64_t id) const;

 private:
  std::vector<const Fragment*> CollectById(int64_t id, bool linear) const;
  Result<std::vector<NodePtr>> BuildVersions(
      std::vector<const Fragment*> versions) const;

  TagStructure ts_;
  std::string name_;
  std::deque<Fragment> fragments_;  // stable addresses
  // Wire-form <filler id=… tsid=… validTime=…/> header elements, parallel
  // to fragments_. The paper-faithful linear scan walks these and compares
  // the @id attribute lexically, reproducing the operational cost of
  // evaluating doc("fragments.xml")/fragments/filler[@id=$fid] over an XML
  // document (the access path the paper's QaC/CaQ implementation used).
  std::deque<NodePtr> wire_headers_;
  // Filler-id hash index; per id, fragment indices sorted by
  // (validTime, arrival).
  std::unordered_map<int64_t, std::vector<size_t>> by_id_;
  // tsid index: distinct filler ids in first-arrival order.
  std::unordered_map<int, std::vector<int64_t>> ids_by_tsid_;
  std::unordered_map<int, int64_t> revision_by_tsid_;
  // Every filler id some stored payload references via <hole id=…/>;
  // ordered so MissingFillers() is deterministic.
  std::set<int64_t> referenced_holes_;
  DateTime max_valid_time_ = DateTime::Start();
  int64_t revision_ = 0;
};

/// \brief HoleResolver over one or more stores: routes each hole to the
/// store named by the hole's `stream` attribute (stamped by
/// GetFillerVersions), defaulting to the sole store when only one is
/// registered. The lookup cost model comes from ctx.linear_fillers, so one
/// resolver instance serves concurrent evaluations with different methods.
class StoreHoleResolver : public xq::HoleResolver {
 public:
  StoreHoleResolver() = default;

  void AddStore(const FragmentStore* store);

  Result<std::vector<NodePtr>> Resolve(xq::EvalContext& ctx,
                                       const Node& hole) override;

 private:
  std::unordered_map<std::string, const FragmentStore*> stores_;
  const FragmentStore* sole_store_ = nullptr;
};

}  // namespace xcql::frag

#endif  // XCQL_FRAG_FRAGMENT_STORE_H_
