#include "frag/fragmenter.h"

#include <deque>
#include <map>

#include "common/string_util.h"
#include "temporal/duration.h"

namespace xcql::frag {

Fragmenter::Fragmenter(const TagStructure* ts, FragmenterOptions options)
    : ts_(ts), opts_(options) {}

Result<DateTime> Fragmenter::VersionTime(const Node& occ) {
  const std::string* vt = occ.FindAttr("vtFrom");
  if (vt != nullptr) return DateTime::Parse(*vt);
  DateTime t(opts_.base_time.seconds() + synthetic_seq_ * opts_.step_seconds);
  ++synthetic_seq_;
  return t;
}

Result<NodePtr> Fragmenter::BuildContent(const Node& occ, const TagNode* tag,
                                         std::vector<Job>* jobs) {
  NodePtr content = Node::Element(occ.name());
  for (const auto& [k, v] : occ.attrs()) {
    // Lifespans of fragmented elements are carried by the version sequence,
    // not by attributes of the payload.
    if (tag->fragmented() && (k == "vtFrom" || k == "vtTo")) continue;
    content->SetAttr(k, v);
  }
  // Version grouping among this element's children: group key is
  // (tag name, id attribute or a per-occurrence unique marker).
  std::map<std::pair<std::string, std::string>, size_t> group_index;
  int64_t occurrence_marker = 0;
  for (const NodePtr& child : occ.children()) {
    if (!child->is_element()) {
      content->AddChild(Node::Text(child->text()));
      continue;
    }
    const TagNode* ctag = tag->Child(child->name());
    if (ctag == nullptr) {
      return Status::InvalidArgument(
          "element <" + child->name() + "> under <" + occ.name() +
          "> is not declared in the tag structure");
    }
    if (!ctag->fragmented()) {
      XCQL_ASSIGN_OR_RETURN(NodePtr inlined, BuildContent(*child, ctag, jobs));
      content->AddChild(std::move(inlined));
      continue;
    }
    // Fragmented child: find (or open) its version group.
    const std::string* idattr = child->FindAttr("id");
    std::string key;
    if (idattr != nullptr) {
      key = *idattr;
    } else if (ctag->type == TagType::kEvent) {
      // Events without ids are distinct occurrences, never versions.
      key = StringPrintf("#occ%lld",
                         static_cast<long long>(occurrence_marker++));
    }  // temporal without id: empty key — all same-name siblings group
    auto [it, inserted] =
        group_index.try_emplace({child->name(), key}, jobs->size());
    if (inserted) {
      Job job;
      job.filler_id = next_id_++;
      job.tag = ctag;
      jobs->push_back(std::move(job));
      content->AddChild(MakeHole((*jobs)[it->second].filler_id, ctag->id));
    }
    (*jobs)[it->second].occurrences.push_back(child.get());
  }
  return content;
}

Result<std::vector<Fragment>> Fragmenter::Split(const Node& doc_root) {
  if (ts_ == nullptr || ts_->root() == nullptr) {
    return Status::InvalidArgument("fragmenter has no tag structure");
  }
  if (doc_root.name() != ts_->root()->name) {
    return Status::InvalidArgument("document root <" + doc_root.name() +
                                   "> does not match tag structure root <" +
                                   ts_->root()->name + ">");
  }
  next_id_ = 0;
  synthetic_seq_ = 0;

  std::vector<Fragment> out;
  std::deque<Job> queue;
  Job root_job;
  root_job.filler_id = next_id_++;  // id 0
  root_job.tag = ts_->root();
  root_job.occurrences.push_back(&doc_root);
  queue.push_back(std::move(root_job));

  while (!queue.empty()) {
    Job job = std::move(queue.front());
    queue.pop_front();
    std::vector<Job> child_jobs;
    for (const Node* occ : job.occurrences) {
      Fragment f;
      f.id = job.filler_id;
      f.tsid = job.tag->id;
      XCQL_ASSIGN_OR_RETURN(f.valid_time, VersionTime(*occ));
      XCQL_ASSIGN_OR_RETURN(f.content, BuildContent(*occ, job.tag,
                                                    &child_jobs));
      out.push_back(std::move(f));
    }
    // DFS pre-order over groups: children of this group go to the front, in
    // their document order.
    for (auto it = child_jobs.rbegin(); it != child_jobs.rend(); ++it) {
      queue.push_front(std::move(*it));
    }
  }
  return out;
}

}  // namespace xcql::frag
