// The Tag Structure (paper §4.1): a structural summary of the stream's
// schema annotating every tag with a fragment type. The XML data is
// fragmented only on tags typed `temporal` and `event`; `snapshot` tags stay
// embedded in their context fragment.
#ifndef XCQL_FRAG_TAG_STRUCTURE_H_
#define XCQL_FRAG_TAG_STRUCTURE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xml/node.h"

namespace xcql::frag {

/// \brief Fragment type of a tag (paper §4.1).
enum class TagType {
  kSnapshot,  // non-temporal, embedded in its context fragment
  kTemporal,  // versioned updates with a [vtFrom, vtTo) lifespan
  kEvent,     // instantaneous occurrences, vtFrom == vtTo
};

const char* TagTypeName(TagType t);

/// \brief One node of the Tag Structure tree.
struct TagNode {
  TagType type = TagType::kSnapshot;
  int id = 0;  // the tsid carried by fragments
  std::string name;
  TagNode* parent = nullptr;
  std::vector<std::unique_ptr<TagNode>> children;

  /// \brief True if elements with this tag travel as separate fillers.
  bool fragmented() const { return type != TagType::kSnapshot; }

  /// \brief Child tag with the given element name, or nullptr.
  const TagNode* Child(std::string_view child_name) const;
};

/// \brief The schema summary for one stream.
///
/// Parsed from the paper's XML form:
///   <stream:structure>
///     <tag type="snapshot" id="1" name="creditAccounts">
///       <tag type="temporal" id="2" name="account"> … </tag>
///     </tag>
///   </stream:structure>
/// (the <stream:structure> wrapper is optional; a bare root <tag> works).
class TagStructure {
 public:
  TagStructure() = default;
  TagStructure(TagStructure&&) = default;
  TagStructure& operator=(TagStructure&&) = default;

  /// \brief Parses the XML form above.
  static Result<TagStructure> Parse(std::string_view xml);

  /// \brief Builds from an already-parsed XML tree.
  static Result<TagStructure> FromXml(const Node& root);

  /// \brief Programmatic construction: creates the root tag.
  static TagStructure Make(std::string root_name, TagType type, int id);

  /// \brief Adds a child tag under `parent` (which must belong to this
  /// structure); returns the new node. Ids must be unique.
  Result<TagNode*> AddChild(TagNode* parent, std::string name, TagType type,
                            int id);

  const TagNode* root() const { return root_.get(); }
  TagNode* mutable_root() { return root_.get(); }

  /// \brief Tag with the given tsid, or nullptr.
  const TagNode* FindById(int id) const;

  /// \brief Serializes back to the paper's XML form.
  std::string ToXml() const;

  /// \brief Number of tags.
  size_t size() const { return by_id_.size(); }

 private:
  Status IndexSubtree(TagNode* n);

  std::unique_ptr<TagNode> root_;
  std::map<int, TagNode*> by_id_;
};

}  // namespace xcql::frag

#endif  // XCQL_FRAG_TAG_STRUCTURE_H_
