#include "frag/io.h"

#include "common/file_util.h"
#include "xml/parser.h"

namespace xcql::frag {

std::string SerializeFragmentStream(const std::vector<Fragment>& fragments) {
  std::string out = "<fragments>\n";
  for (const Fragment& f : fragments) {
    out += f.ToXml();
    out += "\n";
  }
  out += "</fragments>\n";
  return out;
}

Result<std::vector<Fragment>> ParseFragmentStream(std::string_view xml) {
  XCQL_ASSIGN_OR_RETURN(std::vector<NodePtr> roots, ParseXmlFragments(xml));
  std::vector<Fragment> out;
  for (const NodePtr& root : roots) {
    if (root->name() == "fragments") {
      for (const NodePtr& c : root->children()) {
        if (!c->is_element()) continue;
        XCQL_ASSIGN_OR_RETURN(Fragment f, Fragment::FromNode(*c));
        out.push_back(std::move(f));
      }
    } else {
      XCQL_ASSIGN_OR_RETURN(Fragment f, Fragment::FromNode(*root));
      out.push_back(std::move(f));
    }
  }
  return out;
}

Status WriteFragmentStreamFile(const std::string& path,
                               const std::vector<Fragment>& fragments) {
  return WriteStringToFile(path, SerializeFragmentStream(fragments));
}

Result<std::vector<Fragment>> ReadFragmentStreamFile(const std::string& path) {
  XCQL_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  return ParseFragmentStream(content);
}

}  // namespace xcql::frag
