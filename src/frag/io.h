// Persistence of recorded fragment streams: the on-disk form is a single
// well-formed XML document — a <fragments> element wrapping the wire-form
// fillers in arrival order (the "fragments.xml" of the paper's §5/§6.1).
#ifndef XCQL_FRAG_IO_H_
#define XCQL_FRAG_IO_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "frag/fragment.h"

namespace xcql::frag {

/// \brief Serializes fragments as a <fragments> document.
std::string SerializeFragmentStream(const std::vector<Fragment>& fragments);

/// \brief Parses a recorded stream: accepts a <fragments> wrapper or a bare
/// sequence of <filler> elements.
Result<std::vector<Fragment>> ParseFragmentStream(std::string_view xml);

/// \brief Writes a recorded stream to a file.
Status WriteFragmentStreamFile(const std::string& path,
                               const std::vector<Fragment>& fragments);

/// \brief Reads a recorded stream from a file.
Result<std::vector<Fragment>> ReadFragmentStreamFile(const std::string& path);

}  // namespace xcql::frag

#endif  // XCQL_FRAG_IO_H_
