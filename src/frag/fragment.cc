#include "frag/fragment.h"

#include "common/string_util.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xcql::frag {

NodePtr Fragment::ToNode() const {
  NodePtr filler = Node::Element("filler");
  filler->SetAttr("id", std::to_string(id));
  filler->SetAttr("tsid", std::to_string(tsid));
  filler->SetAttr("validTime", valid_time.ToString());
  if (content != nullptr) filler->AddChild(content->Clone());
  return filler;
}

std::string Fragment::ToXml() const { return SerializeXml(*ToNode()); }

Result<Fragment> Fragment::FromNode(const Node& filler) {
  if (filler.name() != "filler") {
    return Status::ParseError("expected <filler>, found <" + filler.name() +
                              ">");
  }
  const std::string* id = filler.FindAttr("id");
  const std::string* tsid = filler.FindAttr("tsid");
  const std::string* vt = filler.FindAttr("validTime");
  if (id == nullptr || tsid == nullptr || vt == nullptr) {
    return Status::ParseError(
        "<filler> requires id, tsid and validTime attributes");
  }
  Fragment f;
  auto idv = ParseInt64(*id);
  auto tsidv = ParseInt64(*tsid);
  if (!idv || !tsidv) {
    return Status::ParseError("bad filler id/tsid: id='" + *id + "' tsid='" +
                              *tsid + "'");
  }
  f.id = *idv;
  f.tsid = static_cast<int>(*tsidv);
  XCQL_ASSIGN_OR_RETURN(f.valid_time, DateTime::Parse(*vt));
  NodePtr payload;
  for (const NodePtr& c : filler.children()) {
    if (!c->is_element()) continue;
    if (payload != nullptr) {
      return Status::ParseError("<filler> must contain a single element");
    }
    payload = c;
  }
  if (payload == nullptr) {
    return Status::ParseError("<filler> has no payload element");
  }
  f.content = payload->Clone();
  return f;
}

Result<Fragment> Fragment::Parse(std::string_view xml) {
  XCQL_ASSIGN_OR_RETURN(NodePtr node, ParseXml(xml));
  return FromNode(*node);
}

Result<std::vector<Fragment>> Fragment::ParseStream(std::string_view xml) {
  XCQL_ASSIGN_OR_RETURN(std::vector<NodePtr> nodes, ParseXmlFragments(xml));
  std::vector<Fragment> out;
  out.reserve(nodes.size());
  for (const NodePtr& n : nodes) {
    XCQL_ASSIGN_OR_RETURN(Fragment f, FromNode(*n));
    out.push_back(std::move(f));
  }
  return out;
}

NodePtr MakeHole(int64_t filler_id, int tsid) {
  NodePtr hole = Node::Element("hole");
  hole->SetAttr("id", std::to_string(filler_id));
  hole->SetAttr("tsid", std::to_string(tsid));
  return hole;
}

bool IsHoleElement(const Node& n) {
  static const int kHoleId = InternName("hole");
  return n.is_element() && n.name_id() == kHoleId;
}

Result<int64_t> HoleId(const Node& hole) {
  const std::string* id = hole.FindAttr("id");
  if (id == nullptr) return Status::ParseError("<hole> without id attribute");
  auto v = ParseInt64(*id);
  if (!v) return Status::ParseError("bad hole id '" + *id + "'");
  return *v;
}

Result<int> HoleTsid(const Node& hole) {
  const std::string* t = hole.FindAttr("tsid");
  if (t == nullptr) {
    return Status::ParseError("<hole> without tsid attribute");
  }
  auto v = ParseInt64(*t);
  if (!v) return Status::ParseError("bad hole tsid '" + *t + "'");
  return static_cast<int>(*v);
}

}  // namespace xcql::frag
