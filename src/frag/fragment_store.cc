#include "frag/fragment_store.h"

#include <algorithm>

#include "common/string_util.h"

namespace xcql::frag {

FragmentStore::FragmentStore(TagStructure ts, std::string name)
    : ts_(std::move(ts)), name_(std::move(name)) {}

Status FragmentStore::Insert(Fragment f) {
  if (f.content == nullptr) {
    return Status::InvalidArgument("fragment without payload");
  }
  if (ts_.FindById(f.tsid) == nullptr) {
    return Status::InvalidArgument(
        StringPrintf("fragment tsid %d not in the tag structure", f.tsid));
  }
  // Servers may repeat critical fragments (paper §1); an exact duplicate
  // (same id, timestamp and payload) must not create a spurious version.
  if (auto existing = by_id_.find(f.id); existing != by_id_.end()) {
    for (size_t idx : existing->second) {
      const Fragment& g = fragments_[idx];
      if (g.valid_time == f.valid_time && g.tsid == f.tsid &&
          Node::DeepEqual(*g.content, *f.content)) {
        return Status::OK();
      }
    }
  }
  max_valid_time_ = std::max(max_valid_time_, f.valid_time);
  ++revision_;
  ++revision_by_tsid_[f.tsid];
  size_t idx = fragments_.size();
  fragments_.push_back(std::move(f));
  const Fragment& stored = fragments_.back();
  NodePtr header = Node::Element("filler");
  header->SetAttr("id", std::to_string(stored.id));
  header->SetAttr("tsid", std::to_string(stored.tsid));
  header->SetAttr("validTime", stored.valid_time.ToString());
  wire_headers_.push_back(std::move(header));

  // Record which filler ids this payload dangles from, so MissingFillers()
  // can report the unfilled ones without rescanning every stored payload.
  {
    std::vector<const Node*> stack = {stored.content.get()};
    while (!stack.empty()) {
      const Node* n = stack.back();
      stack.pop_back();
      if (IsHoleElement(*n)) {
        if (auto hid = HoleId(*n); hid.ok()) {
          referenced_holes_.insert(hid.value());
        }
      }
      for (const NodePtr& c : n->children()) {
        if (c->is_element()) stack.push_back(c.get());
      }
    }
  }

  auto [it, inserted] = by_id_.try_emplace(stored.id);
  std::vector<size_t>& versions = it->second;
  if (inserted) {
    ids_by_tsid_[stored.tsid].push_back(stored.id);
  }
  // Maintain version order by (validTime, arrival). Appends are the common
  // case; out-of-order arrivals insert in place.
  auto pos = std::upper_bound(versions.begin(), versions.end(), idx,
                              [this](size_t a, size_t b) {
                                return fragments_[a].valid_time <
                                       fragments_[b].valid_time;
                              });
  versions.insert(pos, idx);
  return Status::OK();
}

Status FragmentStore::InsertAll(std::vector<Fragment> fragments) {
  for (Fragment& f : fragments) {
    XCQL_RETURN_NOT_OK(Insert(std::move(f)));
  }
  return Status::OK();
}

std::vector<const Fragment*> FragmentStore::CollectById(int64_t id,
                                                        bool linear) const {
  std::vector<const Fragment*> out;
  if (linear) {
    // The access path the paper's QaC translation implies:
    // doc("fragments.xml")/fragments/filler[@id=$fid] — a node-level scan
    // comparing each filler's @id attribute lexically.
    std::string wanted = std::to_string(id);
    for (size_t i = 0; i < wire_headers_.size(); ++i) {
      const std::string* idattr = wire_headers_[i]->FindAttr("id");
      if (idattr != nullptr && *idattr == wanted) {
        out.push_back(&fragments_[i]);
      }
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const Fragment* a, const Fragment* b) {
                       return a->valid_time < b->valid_time;
                     });
    return out;
  }
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return out;
  out.reserve(it->second.size());
  for (size_t idx : it->second) out.push_back(&fragments_[idx]);
  return out;
}

Result<std::vector<NodePtr>> FragmentStore::BuildVersions(
    std::vector<const Fragment*> versions) const {
  // Snapshot fragments have replacement semantics (paper §1: a server "can
  // replace them when they change"): only the latest transmission counts.
  if (!versions.empty()) {
    const TagNode* tag0 = ts_.FindById(versions.front()->tsid);
    if (tag0 != nullptr && tag0->type == TagType::kSnapshot &&
        versions.size() > 1) {
      versions.erase(versions.begin(), versions.end() - 1);
    }
  }
  std::vector<NodePtr> out;
  out.reserve(versions.size());
  for (size_t i = 0; i < versions.size(); ++i) {
    const Fragment& f = *versions[i];
    const TagNode* tag = ts_.FindById(f.tsid);
    NodePtr v = f.content->Clone();
    if (tag->type == TagType::kEvent) {
      v->SetAttr("vtFrom", f.valid_time.ToString());
      v->SetAttr("vtTo", f.valid_time.ToString());
    } else if (tag->type == TagType::kTemporal) {
      v->SetAttr("vtFrom", f.valid_time.ToString());
      v->SetAttr("vtTo", i + 1 < versions.size()
                             ? versions[i + 1]->valid_time.ToString()
                             : "now");
    }
    // Stamp holes with the stream name so multi-stream hole resolution can
    // route back to this store.
    if (!name_.empty()) {
      std::vector<Node*> stack = {v.get()};
      while (!stack.empty()) {
        Node* n = stack.back();
        stack.pop_back();
        if (IsHoleElement(*n)) n->SetAttr("stream", name_);
        for (const NodePtr& c : n->children()) {
          if (c->is_element()) stack.push_back(c.get());
        }
      }
    }
    out.push_back(std::move(v));
  }
  return out;
}

Result<std::vector<NodePtr>> FragmentStore::GetFillerVersions(
    int64_t id, bool linear) const {
  return BuildVersions(CollectById(id, linear));
}

Result<NodePtr> FragmentStore::GetFillerWrapper(int64_t id,
                                                bool linear) const {
  XCQL_ASSIGN_OR_RETURN(std::vector<NodePtr> versions,
                        GetFillerVersions(id, linear));
  NodePtr wrapper = Node::Element("filler");
  wrapper->SetAttr("id", std::to_string(id));
  for (NodePtr& v : versions) wrapper->AddChild(std::move(v));
  return wrapper;
}

Result<std::vector<NodePtr>> FragmentStore::GetFillersByTsid(int tsid) const {
  std::vector<NodePtr> out;
  auto it = ids_by_tsid_.find(tsid);
  if (it == ids_by_tsid_.end()) return out;
  out.reserve(it->second.size());
  for (int64_t id : it->second) {
    XCQL_ASSIGN_OR_RETURN(NodePtr wrapper,
                          GetFillerWrapper(id, /*linear=*/false));
    out.push_back(std::move(wrapper));
  }
  return out;
}

Result<std::vector<NodePtr>> FragmentStore::GetFillersByTsidInRange(
    int tsid, DateTime tb, DateTime te) const {
  std::vector<NodePtr> out;
  auto it = ids_by_tsid_.find(tsid);
  if (it == ids_by_tsid_.end()) return out;
  const TagNode* tag = ts_.FindById(tsid);
  bool is_event = tag != nullptr && tag->type == TagType::kEvent;
  for (int64_t id : it->second) {
    auto versions_it = by_id_.find(id);
    if (versions_it == by_id_.end() || versions_it->second.empty()) continue;
    DateTime first = fragments_[versions_it->second.front()].valid_time;
    DateTime last = fragments_[versions_it->second.back()].valid_time;
    if (first > te) continue;
    if (is_event && last < tb) continue;
    // Temporal groups stay open at `now`, so they always reach tb.
    XCQL_ASSIGN_OR_RETURN(NodePtr wrapper,
                          GetFillerWrapper(id, /*linear=*/false));
    out.push_back(std::move(wrapper));
  }
  return out;
}

size_t FragmentStore::CountIdsWithTsid(int tsid) const {
  auto it = ids_by_tsid_.find(tsid);
  return it == ids_by_tsid_.end() ? 0 : it->second.size();
}

std::vector<int64_t> FragmentStore::MissingFillers() const {
  std::vector<int64_t> out;
  for (int64_t id : referenced_holes_) {
    if (by_id_.find(id) == by_id_.end()) out.push_back(id);
  }
  return out;
}

std::vector<int64_t> FragmentStore::VersionTimes(int64_t id) const {
  std::vector<int64_t> out;
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return out;
  // Indices are sorted by (validTime, arrival), so distinct times fall
  // out of a single adjacent-dedup pass.
  for (size_t idx : it->second) {
    int64_t t = fragments_[idx].valid_time.seconds();
    if (out.empty() || out.back() != t) out.push_back(t);
  }
  return out;
}

void StoreHoleResolver::AddStore(const FragmentStore* store) {
  stores_[store->name()] = store;
  sole_store_ = stores_.size() == 1 ? store : nullptr;
}

Result<std::vector<NodePtr>> StoreHoleResolver::Resolve(xq::EvalContext& ctx,
                                                        const Node& hole) {
  const FragmentStore* store = sole_store_;
  const std::string* stream = hole.FindAttr("stream");
  if (stream != nullptr) {
    auto it = stores_.find(*stream);
    if (it == stores_.end()) {
      return Status::NotFound("hole references unknown stream '" + *stream +
                              "'");
    }
    store = it->second;
  }
  if (store == nullptr) {
    return Status::InvalidArgument(
        "cannot resolve hole: multiple streams registered and the hole "
        "carries no stream attribute");
  }
  XCQL_ASSIGN_OR_RETURN(int64_t id, HoleId(hole));
  XCQL_ASSIGN_OR_RETURN(std::vector<NodePtr> versions,
                        store->GetFillerVersions(id, ctx.linear_fillers));
  // An id with any stored fragment always yields at least one version, so
  // an empty vector means the filler never arrived: apply the hole policy.
  if (versions.empty()) {
    switch (ctx.hole_policy) {
      case xq::HolePolicy::kFail:
        return Status::NotFound(
            StringPrintf("missing filler %lld referenced by a hole",
                         static_cast<long long>(id)));
      case xq::HolePolicy::kKeepHole:
        ++ctx.holes_unresolved;
        versions.push_back(hole.Clone());
        break;
      case xq::HolePolicy::kOmit:
        ++ctx.holes_unresolved;
        break;
    }
  }
  return versions;
}

}  // namespace xcql::frag
