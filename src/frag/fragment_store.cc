#include "frag/fragment_store.h"

#include <algorithm>

#include "common/string_util.h"

namespace xcql::frag {

namespace {

// Rough heap footprint of one payload tree: node bookkeeping plus string
// storage. An estimate (allocator slack is invisible), but maintained
// identically by Insert and Compact so the fragment_store_bytes gauge
// moves with the real footprint.
int64_t ApproxNodeBytes(const Node& n) {
  int64_t bytes = 96;  // node object + shared_ptr control block
  bytes += static_cast<int64_t>(n.name().size() + n.text().size());
  for (const auto& [k, v] : n.attrs()) {
    bytes += static_cast<int64_t>(k.size() + v.size() + 32);
  }
  for (const NodePtr& c : n.children()) bytes += ApproxNodeBytes(*c);
  return bytes;
}

int64_t ApproxFragmentBytes(const Fragment& f) {
  // Payload tree + Fragment struct + the parallel wire header element.
  return ApproxNodeBytes(*f.content) + 160;
}

}  // namespace

FragmentStore::FragmentStore(TagStructure ts, std::string name)
    : ts_(std::move(ts)), name_(std::move(name)) {}

Status FragmentStore::Insert(Fragment f) {
  if (f.content == nullptr) {
    return Status::InvalidArgument("fragment without payload");
  }
  if (ts_.FindById(f.tsid) == nullptr) {
    return Status::InvalidArgument(
        StringPrintf("fragment tsid %d not in the tag structure", f.tsid));
  }
  // Servers may repeat critical fragments (paper §1); an exact duplicate
  // (same id, timestamp and payload) must not create a spurious version.
  if (auto existing = by_id_.find(f.id); existing != by_id_.end()) {
    for (size_t idx : existing->second) {
      const Fragment& g = fragments_[idx];
      if (g.valid_time == f.valid_time && g.tsid == f.tsid &&
          Node::DeepEqual(*g.content, *f.content)) {
        return Status::OK();
      }
    }
  }
  if (auto tomb = expired_.find(f.id); tomb != expired_.end()) {
    if (f.valid_time < retention_floor_) {
      // A late repeat of a version that compaction already removed:
      // admitting it would resurrect a partial version chain whose
      // predecessors are gone. The tombstone stands in for it.
      return Status::OK();
    }
    // A genuinely new version at or above the floor revives the filler.
    expired_.erase(tomb);
  }
  max_valid_time_ = std::max(max_valid_time_, f.valid_time);
  ++revision_;
  ++revision_by_tsid_[f.tsid];
  approx_bytes_ += ApproxFragmentBytes(f);
  size_t idx = fragments_.size();
  fragments_.push_back(std::move(f));
  const Fragment& stored = fragments_.back();
  NodePtr header = Node::Element("filler");
  header->SetAttr("id", std::to_string(stored.id));
  header->SetAttr("tsid", std::to_string(stored.tsid));
  header->SetAttr("validTime", stored.valid_time.ToString());
  wire_headers_.push_back(std::move(header));

  // Record which filler ids this payload dangles from, so MissingFillers()
  // can report the unfilled ones without rescanning every stored payload.
  {
    std::vector<const Node*> stack = {stored.content.get()};
    while (!stack.empty()) {
      const Node* n = stack.back();
      stack.pop_back();
      if (IsHoleElement(*n)) {
        if (auto hid = HoleId(*n); hid.ok()) {
          referenced_holes_.insert(hid.value());
        }
      }
      for (const NodePtr& c : n->children()) {
        if (c->is_element()) stack.push_back(c.get());
      }
    }
  }

  auto [it, inserted] = by_id_.try_emplace(stored.id);
  std::vector<size_t>& versions = it->second;
  if (inserted) {
    ids_by_tsid_[stored.tsid].push_back(stored.id);
  }
  // Maintain version order by (validTime, arrival). Appends are the common
  // case; out-of-order arrivals insert in place.
  auto pos = std::upper_bound(versions.begin(), versions.end(), idx,
                              [this](size_t a, size_t b) {
                                return fragments_[a].valid_time <
                                       fragments_[b].valid_time;
                              });
  versions.insert(pos, idx);
  return Status::OK();
}

Status FragmentStore::InsertAll(std::vector<Fragment> fragments) {
  for (Fragment& f : fragments) {
    XCQL_RETURN_NOT_OK(Insert(std::move(f)));
  }
  return Status::OK();
}

std::vector<const Fragment*> FragmentStore::CollectById(int64_t id,
                                                        bool linear) const {
  std::vector<const Fragment*> out;
  if (linear) {
    // The access path the paper's QaC translation implies:
    // doc("fragments.xml")/fragments/filler[@id=$fid] — a node-level scan
    // comparing each filler's @id attribute lexically.
    std::string wanted = std::to_string(id);
    for (size_t i = 0; i < wire_headers_.size(); ++i) {
      const std::string* idattr = wire_headers_[i]->FindAttr("id");
      if (idattr != nullptr && *idattr == wanted) {
        out.push_back(&fragments_[i]);
      }
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const Fragment* a, const Fragment* b) {
                       return a->valid_time < b->valid_time;
                     });
    return out;
  }
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return out;
  out.reserve(it->second.size());
  for (size_t idx : it->second) out.push_back(&fragments_[idx]);
  return out;
}

Result<std::vector<NodePtr>> FragmentStore::BuildVersions(
    std::vector<const Fragment*> versions) const {
  // Snapshot fragments have replacement semantics (paper §1: a server "can
  // replace them when they change"): only the latest transmission counts.
  if (!versions.empty()) {
    const TagNode* tag0 = ts_.FindById(versions.front()->tsid);
    if (tag0 != nullptr && tag0->type == TagType::kSnapshot &&
        versions.size() > 1) {
      versions.erase(versions.begin(), versions.end() - 1);
    }
  }
  std::vector<NodePtr> out;
  out.reserve(versions.size());
  for (size_t i = 0; i < versions.size(); ++i) {
    const Fragment& f = *versions[i];
    const TagNode* tag = ts_.FindById(f.tsid);
    NodePtr v = f.content->Clone();
    if (tag->type == TagType::kEvent) {
      v->SetAttr("vtFrom", f.valid_time.ToString());
      v->SetAttr("vtTo", f.valid_time.ToString());
    } else if (tag->type == TagType::kTemporal) {
      v->SetAttr("vtFrom", f.valid_time.ToString());
      v->SetAttr("vtTo", i + 1 < versions.size()
                             ? versions[i + 1]->valid_time.ToString()
                             : "now");
    }
    // Stamp holes with the stream name so multi-stream hole resolution can
    // route back to this store.
    if (!name_.empty()) {
      std::vector<Node*> stack = {v.get()};
      while (!stack.empty()) {
        Node* n = stack.back();
        stack.pop_back();
        if (IsHoleElement(*n)) n->SetAttr("stream", name_);
        for (const NodePtr& c : n->children()) {
          if (c->is_element()) stack.push_back(c.get());
        }
      }
    }
    out.push_back(std::move(v));
  }
  return out;
}

Result<std::vector<NodePtr>> FragmentStore::GetFillerVersions(
    int64_t id, bool linear) const {
  return BuildVersions(CollectById(id, linear));
}

Result<NodePtr> FragmentStore::GetFillerWrapper(int64_t id,
                                                bool linear) const {
  XCQL_ASSIGN_OR_RETURN(std::vector<NodePtr> versions,
                        GetFillerVersions(id, linear));
  NodePtr wrapper = Node::Element("filler");
  wrapper->SetAttr("id", std::to_string(id));
  for (NodePtr& v : versions) wrapper->AddChild(std::move(v));
  return wrapper;
}

Result<std::vector<NodePtr>> FragmentStore::GetFillersByTsid(int tsid) const {
  std::vector<NodePtr> out;
  auto it = ids_by_tsid_.find(tsid);
  if (it == ids_by_tsid_.end()) return out;
  out.reserve(it->second.size());
  for (int64_t id : it->second) {
    XCQL_ASSIGN_OR_RETURN(NodePtr wrapper,
                          GetFillerWrapper(id, /*linear=*/false));
    out.push_back(std::move(wrapper));
  }
  return out;
}

Result<std::vector<NodePtr>> FragmentStore::GetFillersByTsidInRange(
    int tsid, DateTime tb, DateTime te) const {
  std::vector<NodePtr> out;
  auto it = ids_by_tsid_.find(tsid);
  if (it == ids_by_tsid_.end()) return out;
  const TagNode* tag = ts_.FindById(tsid);
  bool is_event = tag != nullptr && tag->type == TagType::kEvent;
  for (int64_t id : it->second) {
    auto versions_it = by_id_.find(id);
    if (versions_it == by_id_.end() || versions_it->second.empty()) continue;
    DateTime first = fragments_[versions_it->second.front()].valid_time;
    DateTime last = fragments_[versions_it->second.back()].valid_time;
    if (first > te) continue;
    if (is_event && last < tb) continue;
    // Temporal groups stay open at `now`, so they always reach tb.
    XCQL_ASSIGN_OR_RETURN(NodePtr wrapper,
                          GetFillerWrapper(id, /*linear=*/false));
    out.push_back(std::move(wrapper));
  }
  return out;
}

size_t FragmentStore::CountIdsWithTsid(int tsid) const {
  auto it = ids_by_tsid_.find(tsid);
  return it == ids_by_tsid_.end() ? 0 : it->second.size();
}

std::vector<int64_t> FragmentStore::MissingFillers() const {
  std::vector<int64_t> out;
  for (int64_t id : referenced_holes_) {
    // An expired filler is not missing: its versions were compacted on
    // purpose, so NACKing it upstream would burn repair budget on data
    // the retention policy already declared unobservable.
    if (by_id_.find(id) == by_id_.end() && expired_.count(id) == 0) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<int64_t> FragmentStore::VersionTimes(int64_t id) const {
  std::vector<int64_t> out;
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return out;
  // Indices are sorted by (validTime, arrival), so distinct times fall
  // out of a single adjacent-dedup pass.
  for (size_t idx : it->second) {
    int64_t t = fragments_[idx].valid_time.seconds();
    if (out.empty() || out.back() != t) out.push_back(t);
  }
  return out;
}

Result<CompactionStats> FragmentStore::Compact(const RetentionPolicy& policy,
                                               DateTime now,
                                               DateTime observe_floor) {
  CompactionStats stats;
  if (!policy.enabled() || fragments_.empty()) return stats;

  // The most aggressive enabled window wins (a version outside any window
  // is removable), then the query-observable floor clamps it: nothing a
  // registered query can still observe is ever removed.
  DateTime floor = DateTime::Start();
  if (policy.max_age_s >= 0) {
    floor = std::max(floor, DateTime(now.seconds() - policy.max_age_s));
  }
  if (policy.max_fragments >= 0 &&
      static_cast<int64_t>(fragments_.size()) > policy.max_fragments) {
    // Keep the newest max_fragments by validTime: the floor is the cut
    // point's validTime. Lifespan rules still apply below it, so the
    // kept count can stay above the cap (open lifespans survive).
    std::vector<int64_t> times;
    times.reserve(fragments_.size());
    for (const Fragment& f : fragments_) {
      times.push_back(f.valid_time.seconds());
    }
    size_t cut =
        fragments_.size() - static_cast<size_t>(policy.max_fragments);
    if (cut >= times.size()) {
      // max_fragments == 0: the count window keeps nothing, so every
      // validTime sits below the cut. The lifespan rules and the
      // observe-floor clamp below still decide what actually goes.
      floor = DateTime::End();
    } else {
      std::nth_element(times.begin(), times.begin() + cut, times.end());
      floor = std::max(floor, DateTime(times[cut]));
    }
  }
  floor = std::min(floor, observe_floor);

  // A version's lifespan has ended at or below `f` when an event's instant
  // is strictly below it, or a temporal version's successor starts at or
  // below it (lifespans are half-open, so a successor exactly at `f`
  // still leaves [f, now) fully covered by the kept suffix).
  auto ended_below = [this](const std::vector<size_t>& versions, size_t i,
                            TagType type, DateTime f) {
    const Fragment& frag = fragments_[versions[i]];
    if (type == TagType::kEvent) return frag.valid_time < f;
    if (type == TagType::kTemporal) {
      return i + 1 < versions.size() &&
             fragments_[versions[i + 1]].valid_time <= f;
    }
    return false;
  };

  std::vector<bool> keep(fragments_.size(), true);
  for (const auto& [id, versions] : by_id_) {
    for (size_t i = 0; i < versions.size(); ++i) {
      const Fragment& frag = fragments_[versions[i]];
      const TagNode* tag = ts_.FindById(frag.tsid);
      TagType type = tag != nullptr ? tag->type : TagType::kTemporal;
      bool removable = false;
      if (type == TagType::kSnapshot) {
        // Replacement semantics: superseded transmissions are invisible
        // to every query already, so no floor gates them.
        removable = i + 1 < versions.size();
      } else {
        removable = ended_below(versions, i, type, floor);
        if (!removable && policy.max_versions >= 0 &&
            i + static_cast<size_t>(policy.max_versions) <
                versions.size()) {
          // The per-filler version window reaches past the global floor,
          // but only up to what registered queries cannot observe.
          removable = ended_below(versions, i, type, observe_floor);
        }
      }
      if (removable) keep[versions[i]] = false;
    }
  }

  size_t kept = 0;
  for (bool k : keep) kept += k ? 1 : 0;
  if (kept == fragments_.size()) {
    retention_floor_ = std::max(retention_floor_, floor);
    return stats;
  }

  // Rebuild-on-compact: replay the kept fragments (in arrival order) into
  // fresh structures. referenced_holes_ shrinks with the removed contexts,
  // and ids left with zero versions are tombstoned as expired.
  std::deque<Fragment> old_fragments;
  old_fragments.swap(fragments_);
  wire_headers_.clear();
  auto old_by_id = std::move(by_id_);
  by_id_.clear();
  ids_by_tsid_.clear();
  referenced_holes_.clear();
  int64_t old_revision = revision_;
  auto old_tsid_revisions = std::move(revision_by_tsid_);
  revision_by_tsid_.clear();
  int64_t old_bytes = approx_bytes_;
  approx_bytes_ = 0;
  DateTime old_max = max_valid_time_;
  for (size_t i = 0; i < old_fragments.size(); ++i) {
    if (!keep[i]) {
      ++stats.removed_fragments;
      old_tsid_revisions[old_fragments[i].tsid] += 1;
      continue;
    }
    XCQL_RETURN_NOT_OK(Insert(std::move(old_fragments[i])));
  }
  stats.bytes_reclaimed = old_bytes - approx_bytes_;
  max_valid_time_ = old_max;
  // Compaction changes what derived state can see, so affected tsids bump
  // their change counters like any other mutation (consumers re-derive,
  // never serve a stale cache); untouched tsids keep theirs so
  // relevance-based tick skipping stays effective.
  revision_by_tsid_ = std::move(old_tsid_revisions);
  revision_ = old_revision + 1;
  for (const auto& [id, versions] : old_by_id) {
    if (by_id_.find(id) == by_id_.end()) {
      expired_.insert(id);
      ++stats.expired_fillers;
    }
  }
  retention_floor_ = std::max(retention_floor_, floor);
  return stats;
}

void StoreHoleResolver::AddStore(const FragmentStore* store) {
  stores_[store->name()] = store;
  sole_store_ = stores_.size() == 1 ? store : nullptr;
}

Result<std::vector<NodePtr>> StoreHoleResolver::Resolve(xq::EvalContext& ctx,
                                                        const Node& hole) {
  const FragmentStore* store = sole_store_;
  const std::string* stream = hole.FindAttr("stream");
  if (stream != nullptr) {
    auto it = stores_.find(*stream);
    if (it == stores_.end()) {
      return Status::NotFound("hole references unknown stream '" + *stream +
                              "'");
    }
    store = it->second;
  }
  if (store == nullptr) {
    return Status::InvalidArgument(
        "cannot resolve hole: multiple streams registered and the hole "
        "carries no stream attribute");
  }
  XCQL_ASSIGN_OR_RETURN(int64_t id, HoleId(hole));
  XCQL_ASSIGN_OR_RETURN(std::vector<NodePtr> versions,
                        store->GetFillerVersions(id, ctx.linear_fillers));
  // An id with any stored fragment always yields at least one version, so
  // an empty vector means the filler never arrived — or was compacted.
  // Expired fillers resolve as empty under every policy: retention
  // guarantees no registered query's window reaches them, and an ad-hoc
  // query sees the truthful "this data was aged out" accounting rather
  // than a spurious missing-filler failure.
  if (versions.empty() && store->IsExpired(id)) {
    ++ctx.holes_expired;
    return versions;
  }
  if (versions.empty()) {
    switch (ctx.hole_policy) {
      case xq::HolePolicy::kFail:
        return Status::NotFound(
            StringPrintf("missing filler %lld referenced by a hole",
                         static_cast<long long>(id)));
      case xq::HolePolicy::kKeepHole:
        ++ctx.holes_unresolved;
        versions.push_back(hole.Clone());
        break;
      case xq::HolePolicy::kOmit:
        ++ctx.holes_unresolved;
        break;
    }
  }
  return versions;
}

}  // namespace xcql::frag
