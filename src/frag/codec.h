// Wire compression (paper §4.1: the Tag Structure "gives us the
// convenience of abbreviating the tag names with IDs … for compressing
// stream data"). The compact form replaces element names with their tag
// ids and shortens the filler envelope:
//
//   <filler id="100" tsid="5" validTime="2003-10-23T12:23:34">
//     <transaction id="12345"><vendor>Pizza</vendor>
//       <hole id="200" tsid="7"/></transaction></filler>
//   ⇢
//   <f i="100" t="5" v="1066911814">
//     <_5 id="12345"><_6>Pizza</_6><h i="200" t="7"/></_5></f>
//
// validTime travels as epoch seconds; attribute values and text are
// untouched. Decompression needs the same Tag Structure (which both ends
// hold by construction — it defines the stream).
#ifndef XCQL_FRAG_CODEC_H_
#define XCQL_FRAG_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "frag/fragment.h"
#include "frag/tag_structure.h"

namespace xcql::frag {

/// \brief Compresses one fragment. The payload's tags must be declared in
/// the Tag Structure at their positions (the same requirement the
/// fragmenter enforces).
Result<std::string> CompressFragment(const Fragment& fragment,
                                     const TagStructure& ts);

/// \brief Decompresses the compact form back into a Fragment.
Result<Fragment> DecompressFragment(std::string_view data,
                                    const TagStructure& ts);

/// \brief Payload encodings a fragment can travel under. Negotiated per
/// connection by the net transport; also the single sizing code path for
/// StreamServer's wire-byte accounting, so in-process byte counts and
/// actual socket traffic agree.
enum class WireCodec : uint8_t {
  kPlainXml = 0,       // Fragment::ToXml / Fragment::Parse
  kTagCompressed = 1,  // §4.1 CompressFragment / DecompressFragment
};

const char* WireCodecName(WireCodec codec);

/// \brief Upper bound on one fragment's serialized wire payload, enforced
/// by EncodeWirePayload. The net framing layer's 32-bit length field
/// treats anything larger as stream corruption, so an oversized fragment
/// must fail at publish time — before counters, history, or the wire —
/// instead of producing a frame every decoder is guaranteed to reject.
inline constexpr size_t kMaxWirePayload = 64u << 20;  // 64 MB

/// \brief Serializes one fragment's wire payload under `codec`. Errors
/// (payload tags missing from the Tag Structure) surface as a Status; there
/// is no silent fallback to the plain form.
Result<std::string> EncodeWirePayload(const Fragment& fragment,
                                      const TagStructure& ts, WireCodec codec);

/// \brief Parses a wire payload produced by EncodeWirePayload.
Result<Fragment> DecodeWirePayload(std::string_view data,
                                   const TagStructure& ts, WireCodec codec);

}  // namespace xcql::frag

#endif  // XCQL_FRAG_CODEC_H_
