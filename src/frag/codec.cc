#include "frag/codec.h"

#include "common/string_util.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xcql::frag {

namespace {

Status CompressNode(const Node& e, const TagNode* tag, std::string* out) {
  *out += "<_";
  *out += std::to_string(tag->id);
  for (const auto& [k, v] : e.attrs()) {
    *out += " ";
    *out += k;
    *out += "=\"";
    *out += EscapeAttr(v);
    *out += "\"";
  }
  if (e.children().empty()) {
    *out += "/>";
    return Status::OK();
  }
  *out += ">";
  for (const NodePtr& c : e.children()) {
    if (!c->is_element()) {
      *out += EscapeText(c->text());
      continue;
    }
    if (IsHoleElement(*c)) {
      XCQL_ASSIGN_OR_RETURN(int64_t hid, HoleId(*c));
      XCQL_ASSIGN_OR_RETURN(int htsid, HoleTsid(*c));
      *out += StringPrintf("<h i=\"%lld\" t=\"%d\"/>",
                           static_cast<long long>(hid), htsid);
      continue;
    }
    const TagNode* ctag = tag->Child(c->name());
    if (ctag == nullptr) {
      return Status::InvalidArgument("element <" + c->name() +
                                     "> not declared under <" + tag->name +
                                     "> in the tag structure");
    }
    XCQL_RETURN_NOT_OK(CompressNode(*c, ctag, out));
  }
  *out += "</_";
  *out += std::to_string(tag->id);
  *out += ">";
  return Status::OK();
}

Result<NodePtr> DecompressNode(const Node& e, const TagStructure& ts) {
  if (e.name() == "h") {
    const std::string* i = e.FindAttr("i");
    const std::string* t = e.FindAttr("t");
    if (i == nullptr || t == nullptr) {
      return Status::ParseError("compressed hole missing i/t attributes");
    }
    auto id = ParseInt64(*i);
    auto tsid = ParseInt64(*t);
    if (!id || !tsid) return Status::ParseError("bad compressed hole ids");
    return MakeHole(*id, static_cast<int>(*tsid));
  }
  if (e.name().size() < 2 || e.name()[0] != '_') {
    return Status::ParseError("unexpected compressed element <" + e.name() +
                              ">");
  }
  auto tagid = ParseInt64(std::string_view(e.name()).substr(1));
  if (!tagid) {
    return Status::ParseError("bad compressed tag name <" + e.name() + ">");
  }
  const TagNode* tag = ts.FindById(static_cast<int>(*tagid));
  if (tag == nullptr) {
    return Status::ParseError(
        StringPrintf("compressed tag id %lld not in the tag structure",
                     static_cast<long long>(*tagid)));
  }
  NodePtr node = Node::Element(tag->name);
  for (const auto& [k, v] : e.attrs()) node->SetAttr(k, v);
  for (const NodePtr& c : e.children()) {
    if (!c->is_element()) {
      node->AddChild(Node::Text(c->text()));
      continue;
    }
    XCQL_ASSIGN_OR_RETURN(NodePtr child, DecompressNode(*c, ts));
    node->AddChild(std::move(child));
  }
  return node;
}

}  // namespace

Result<std::string> CompressFragment(const Fragment& fragment,
                                     const TagStructure& ts) {
  if (fragment.content == nullptr) {
    return Status::InvalidArgument("fragment without payload");
  }
  const TagNode* tag = ts.FindById(fragment.tsid);
  if (tag == nullptr) {
    return Status::InvalidArgument(
        StringPrintf("fragment tsid %d not in the tag structure",
                     fragment.tsid));
  }
  if (tag->name != fragment.content->name()) {
    return Status::InvalidArgument("payload <" + fragment.content->name() +
                                   "> does not match tag <" + tag->name +
                                   ">");
  }
  std::string out = StringPrintf(
      "<f i=\"%lld\" t=\"%d\" v=\"%lld\">",
      static_cast<long long>(fragment.id), fragment.tsid,
      static_cast<long long>(fragment.valid_time.seconds()));
  XCQL_RETURN_NOT_OK(CompressNode(*fragment.content, tag, &out));
  out += "</f>";
  return out;
}

Result<Fragment> DecompressFragment(std::string_view data,
                                    const TagStructure& ts) {
  XCQL_ASSIGN_OR_RETURN(NodePtr root, ParseXml(data));
  if (root->name() != "f") {
    return Status::ParseError("compressed fragment must be <f>");
  }
  const std::string* i = root->FindAttr("i");
  const std::string* t = root->FindAttr("t");
  const std::string* v = root->FindAttr("v");
  if (i == nullptr || t == nullptr || v == nullptr) {
    return Status::ParseError("compressed fragment missing i/t/v attributes");
  }
  Fragment f;
  auto id = ParseInt64(*i);
  auto tsid = ParseInt64(*t);
  auto secs = ParseInt64(*v);
  if (!id || !tsid || !secs) {
    return Status::ParseError("bad compressed fragment envelope");
  }
  f.id = *id;
  f.tsid = static_cast<int>(*tsid);
  f.valid_time = DateTime(*secs);
  NodePtr payload;
  for (const NodePtr& c : root->children()) {
    if (!c->is_element()) continue;
    if (payload != nullptr) {
      return Status::ParseError(
          "compressed fragment must contain a single payload");
    }
    payload = c;
  }
  if (payload == nullptr) {
    return Status::ParseError("compressed fragment has no payload");
  }
  XCQL_ASSIGN_OR_RETURN(f.content, DecompressNode(*payload, ts));
  return f;
}

const char* WireCodecName(WireCodec codec) {
  switch (codec) {
    case WireCodec::kPlainXml:
      return "plain";
    case WireCodec::kTagCompressed:
      return "compressed";
  }
  return "unknown";
}

Result<std::string> EncodeWirePayload(const Fragment& fragment,
                                      const TagStructure& ts,
                                      WireCodec codec) {
  auto bounded = [](Result<std::string> encoded) -> Result<std::string> {
    if (encoded.ok() && encoded.value().size() > kMaxWirePayload) {
      return Status::InvalidArgument(StringPrintf(
          "fragment wire payload of %llu bytes exceeds the %llu-byte limit",
          static_cast<unsigned long long>(encoded.value().size()),
          static_cast<unsigned long long>(kMaxWirePayload)));
    }
    return encoded;
  };
  switch (codec) {
    case WireCodec::kPlainXml:
      return bounded(fragment.ToXml());
    case WireCodec::kTagCompressed:
      return bounded(CompressFragment(fragment, ts));
  }
  return Status::InvalidArgument("unknown wire codec");
}

Result<Fragment> DecodeWirePayload(std::string_view data,
                                   const TagStructure& ts, WireCodec codec) {
  switch (codec) {
    case WireCodec::kPlainXml:
      return Fragment::Parse(data);
    case WireCodec::kTagCompressed:
      return DecompressFragment(data, ts);
  }
  return Status::InvalidArgument("unknown wire codec");
}

}  // namespace xcql::frag
