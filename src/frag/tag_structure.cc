#include "frag/tag_structure.h"

#include "common/string_util.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xcql::frag {

const char* TagTypeName(TagType t) {
  switch (t) {
    case TagType::kSnapshot:
      return "snapshot";
    case TagType::kTemporal:
      return "temporal";
    case TagType::kEvent:
      return "event";
  }
  return "?";
}

const TagNode* TagNode::Child(std::string_view child_name) const {
  for (const auto& c : children) {
    if (c->name == child_name) return c.get();
  }
  return nullptr;
}

namespace {

Result<TagType> ParseTagType(const std::string& s) {
  if (s == "snapshot") return TagType::kSnapshot;
  if (s == "temporal") return TagType::kTemporal;
  if (s == "event") return TagType::kEvent;
  return Status::ParseError("unknown tag type '" + s + "'");
}

Result<std::unique_ptr<TagNode>> BuildTag(const Node& el) {
  if (el.name() != "tag") {
    return Status::ParseError("expected <tag>, found <" + el.name() + ">");
  }
  const std::string* type = el.FindAttr("type");
  const std::string* id = el.FindAttr("id");
  const std::string* name = el.FindAttr("name");
  if (type == nullptr || id == nullptr || name == nullptr) {
    return Status::ParseError("<tag> requires type, id and name attributes");
  }
  auto node = std::make_unique<TagNode>();
  XCQL_ASSIGN_OR_RETURN(node->type, ParseTagType(*type));
  auto idv = ParseInt64(*id);
  if (!idv) return Status::ParseError("bad tag id '" + *id + "'");
  node->id = static_cast<int>(*idv);
  node->name = *name;
  for (const NodePtr& c : el.children()) {
    if (!c->is_element()) continue;
    XCQL_ASSIGN_OR_RETURN(std::unique_ptr<TagNode> child, BuildTag(*c));
    child->parent = node.get();
    node->children.push_back(std::move(child));
  }
  return node;
}

void WriteTag(const TagNode& t, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth * 2), ' ');
  *out += "<tag type=\"";
  *out += TagTypeName(t.type);
  *out += "\" id=\"";
  *out += std::to_string(t.id);
  *out += "\" name=\"";
  *out += EscapeAttr(t.name);
  if (t.children.empty()) {
    *out += "\"/>\n";
    return;
  }
  *out += "\">\n";
  for (const auto& c : t.children) WriteTag(*c, depth + 1, out);
  out->append(static_cast<size_t>(depth * 2), ' ');
  *out += "</tag>\n";
}

}  // namespace

Result<TagStructure> TagStructure::Parse(std::string_view xml) {
  XCQL_ASSIGN_OR_RETURN(NodePtr root, ParseXml(xml));
  return FromXml(*root);
}

Result<TagStructure> TagStructure::FromXml(const Node& root) {
  const Node* tag_root = &root;
  if (root.name() != "tag") {
    // Unwrap <stream:structure> (or any single wrapper element).
    const NodePtr inner = root.FirstChildElement("tag");
    if (inner == nullptr) {
      return Status::ParseError("tag structure has no root <tag> element");
    }
    tag_root = inner.get();
  }
  TagStructure ts;
  XCQL_ASSIGN_OR_RETURN(ts.root_, BuildTag(*tag_root));
  XCQL_RETURN_NOT_OK(ts.IndexSubtree(ts.root_.get()));
  return ts;
}

TagStructure TagStructure::Make(std::string root_name, TagType type, int id) {
  TagStructure ts;
  ts.root_ = std::make_unique<TagNode>();
  ts.root_->name = std::move(root_name);
  ts.root_->type = type;
  ts.root_->id = id;
  ts.by_id_[id] = ts.root_.get();
  return ts;
}

Result<TagNode*> TagStructure::AddChild(TagNode* parent, std::string name,
                                        TagType type, int id) {
  if (by_id_.count(id) != 0) {
    return Status::InvalidArgument(
        StringPrintf("duplicate tag id %d in tag structure", id));
  }
  auto node = std::make_unique<TagNode>();
  node->name = std::move(name);
  node->type = type;
  node->id = id;
  node->parent = parent;
  TagNode* raw = node.get();
  parent->children.push_back(std::move(node));
  by_id_[id] = raw;
  return raw;
}

Status TagStructure::IndexSubtree(TagNode* n) {
  if (!by_id_.emplace(n->id, n).second) {
    return Status::ParseError(
        StringPrintf("duplicate tag id %d in tag structure", n->id));
  }
  for (const auto& c : n->children) {
    XCQL_RETURN_NOT_OK(IndexSubtree(c.get()));
  }
  return Status::OK();
}

const TagNode* TagStructure::FindById(int id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

std::string TagStructure::ToXml() const {
  std::string out = "<stream:structure>\n";
  if (root_ != nullptr) WriteTag(*root_, 1, &out);
  out += "</stream:structure>";
  return out;
}

}  // namespace xcql::frag
