#include "frag/infer.h"

#include <map>
#include <string>
#include <vector>

namespace xcql::frag {

namespace {

// Accumulated evidence for one tag position.
struct Evidence {
  bool any_lifespan = false;
  bool any_interval = false;  // vtFrom != vtTo, or vtTo == "now"
  std::map<std::string, Evidence> children;
  std::vector<std::string> child_order;  // first-seen order

  Evidence* Child(const std::string& name) {
    auto [it, inserted] = children.try_emplace(name);
    if (inserted) child_order.push_back(name);
    return &it->second;
  }
};

void Collect(const Node& e, Evidence* ev) {
  const std::string* from = e.FindAttr("vtFrom");
  const std::string* to = e.FindAttr("vtTo");
  if (from != nullptr || to != nullptr) {
    ev->any_lifespan = true;
    if (from == nullptr || to == nullptr || *from != *to) {
      ev->any_interval = true;
    }
  }
  for (const NodePtr& c : e.children()) {
    if (!c->is_element()) continue;
    Collect(*c, ev->Child(c->name()));
  }
}

Status Emit(const Evidence& ev, const std::string& name, TagStructure* ts,
            TagNode* parent, int* next_id) {
  TagType type = TagType::kSnapshot;
  if (ev.any_lifespan) {
    type = ev.any_interval ? TagType::kTemporal : TagType::kEvent;
  }
  XCQL_ASSIGN_OR_RETURN(TagNode * node,
                        ts->AddChild(parent, name, type, (*next_id)++));
  for (const std::string& child : ev.child_order) {
    XCQL_RETURN_NOT_OK(Emit(ev.children.at(child), child, ts, node,
                            next_id));
  }
  return Status::OK();
}

}  // namespace

Result<TagStructure> InferTagStructure(const Node& doc_root) {
  if (!doc_root.is_element()) {
    return Status::InvalidArgument("tag inference requires an element root");
  }
  Evidence root_ev;
  Collect(doc_root, &root_ev);
  int next_id = 1;
  TagStructure ts =
      TagStructure::Make(doc_root.name(), TagType::kSnapshot, next_id++);
  for (const std::string& child : root_ev.child_order) {
    XCQL_RETURN_NOT_OK(Emit(root_ev.children.at(child), child, &ts,
                            ts.mutable_root(), &next_id));
  }
  return ts;
}

}  // namespace xcql::frag
