// The unit of transfer in the Hole-Filler model (paper §4.2): a filler
// fragment with a unique filler id, the tsid of its tag, the validTime of
// its generation, and a single-element payload that may contain
// <hole id=… tsid=…/> references to child fillers.
#ifndef XCQL_FRAG_FRAGMENT_H_
#define XCQL_FRAG_FRAGMENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "temporal/datetime.h"
#include "xml/node.h"

namespace xcql::frag {

/// \brief One filler fragment.
struct Fragment {
  int64_t id = 0;        // filler id; versions share the id
  int tsid = 0;          // tag structure id of the payload's tag
  DateTime valid_time;   // generation time (the version timestamp)
  NodePtr content;       // the payload element (holes inside reference
                         // child fillers)

  /// \brief Serializes to the wire form
  /// `<filler id=… tsid=… validTime=…>payload</filler>`.
  std::string ToXml() const;

  /// \brief Builds the wire-form node without serializing.
  NodePtr ToNode() const;

  /// \brief Parses one `<filler>` element.
  static Result<Fragment> FromNode(const Node& filler);

  /// \brief Parses the wire form.
  static Result<Fragment> Parse(std::string_view xml);

  /// \brief Parses a stream of consecutive `<filler>` elements.
  static Result<std::vector<Fragment>> ParseStream(std::string_view xml);
};

/// \brief Creates a `<hole id=… tsid=…/>` reference element.
NodePtr MakeHole(int64_t filler_id, int tsid);

/// \brief True if the element is a hole reference.
bool IsHoleElement(const Node& n);

/// \brief Reads the id / tsid of a hole element.
Result<int64_t> HoleId(const Node& hole);
Result<int> HoleTsid(const Node& hole);

}  // namespace xcql::frag

#endif  // XCQL_FRAG_FRAGMENT_H_
