// Fragments a (possibly temporal) XML document into Hole-Filler fragments
// according to a Tag Structure (paper §4): elements with `temporal`/`event`
// tags become separate fillers, replaced by <hole> references in their
// context fragment; `snapshot` elements stay embedded.
#ifndef XCQL_FRAG_FRAGMENTER_H_
#define XCQL_FRAG_FRAGMENTER_H_

#include <vector>

#include "common/result.h"
#include "frag/fragment.h"
#include "frag/tag_structure.h"

namespace xcql::frag {

/// \brief Options controlling fragmentation.
struct FragmenterOptions {
  /// validTime assigned to fragments whose element carries no vtFrom
  /// attribute: base_time + k * step for the k-th such fragment, simulating
  /// stream arrival order (used when fragmenting non-temporal documents
  /// such as the XMark auction data).
  DateTime base_time = DateTime(0);
  int64_t step_seconds = 1;
};

/// \brief Splits a document into fillers.
///
/// Version grouping (which sibling elements are versions of one logical
/// element, sharing a filler id) follows the paper's model:
///  * elements with an `id` attribute form one logical element per distinct
///    id value (each id gets its own hole/filler id; repeats are versions);
///  * `temporal` elements without an `id` attribute: all same-name siblings
///    are versions of one logical element (e.g. the creditLimit history);
///  * `event` elements without an `id` attribute: every occurrence is its
///    own logical element (events are distinct occurrences).
///
/// The validTime of a version is its vtFrom attribute when present,
/// otherwise synthetic per FragmenterOptions. vtFrom/vtTo attributes are
/// stripped from filler payloads — reconstruction re-derives them from the
/// version sequence (paper §5), with the final version of a temporal
/// element open-ended at "now" and events collapsing to a time point.
///
/// The root element becomes filler id 0. Fragments are emitted in document
/// (DFS pre-order) group order, all versions of a group together.
class Fragmenter {
 public:
  explicit Fragmenter(const TagStructure* ts, FragmenterOptions options = {});

  /// \brief Fragments the document rooted at `doc_root`.
  Result<std::vector<Fragment>> Split(const Node& doc_root);

 private:
  struct Job {
    int64_t filler_id;
    const TagNode* tag;
    std::vector<const Node*> occurrences;
  };

  /// Builds a filler payload for `occ`: snapshot children inlined
  /// (recursively), fragmented children replaced by holes; child groups are
  /// appended to `jobs`.
  Result<NodePtr> BuildContent(const Node& occ, const TagNode* tag,
                               std::vector<Job>* jobs);

  Result<DateTime> VersionTime(const Node& occ);

  const TagStructure* ts_;
  FragmenterOptions opts_;
  int64_t next_id_ = 0;
  int64_t synthetic_seq_ = 0;
};

}  // namespace xcql::frag

#endif  // XCQL_FRAG_FRAGMENTER_H_
