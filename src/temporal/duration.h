// xs:duration values in the format PnYnMnDTnHnMnS (paper §2). Year/month
// components are calendar-dependent and kept separate from the
// day/hour/minute/second components, which are a fixed number of seconds.
#ifndef XCQL_TEMPORAL_DURATION_H_
#define XCQL_TEMPORAL_DURATION_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace xcql {

/// \brief An xs:duration. `months` carries the Y/M part, `seconds` the
/// D/H/M/S part; either may be negative (both share the sign of the
/// duration).
class Duration {
 public:
  Duration() = default;
  Duration(int64_t months, int64_t seconds)
      : months_(months), seconds_(seconds) {}

  static Duration FromSeconds(int64_t s) { return Duration(0, s); }

  /// \brief Parses "[-]PnYnMnDTnHnMnS" with any subset of components, e.g.
  /// "PT1M" (one minute), "PT1H", "P1Y2M3DT4H5M6S", "-P30D".
  static Result<Duration> Parse(std::string_view s);

  /// \brief True if `s` starts like a duration literal ("P…" / "-P…").
  static bool LooksLikeDuration(std::string_view s);

  int64_t months() const { return months_; }
  int64_t seconds() const { return seconds_; }

  Duration Negated() const { return Duration(-months_, -seconds_); }

  /// \brief Canonical "PnYnMnDTnHnMnS" rendering ("PT0S" for zero).
  std::string ToString() const;

  friend bool operator==(const Duration&, const Duration&) = default;

 private:
  int64_t months_ = 0;
  int64_t seconds_ = 0;
};

}  // namespace xcql

#endif  // XCQL_TEMPORAL_DURATION_H_
