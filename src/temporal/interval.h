// Closed time intervals [t1, t2] and the interval relations of XCQL
// (paper §2: "a before b" etc.), plus the clipping used by
// interval_projection (§6).
#ifndef XCQL_TEMPORAL_INTERVAL_H_
#define XCQL_TEMPORAL_INTERVAL_H_

#include <optional>
#include <string>

#include "temporal/datetime.h"

namespace xcql {

/// \brief A closed time interval [begin, end]. The degenerate interval
/// [t, t] represents a single time point (events).
class Interval {
 public:
  Interval() = default;
  Interval(DateTime begin, DateTime end) : begin_(begin), end_(end) {}

  /// \brief The whole timeline [start, now-resolved-end].
  static Interval All() { return Interval(DateTime::Start(), DateTime::End()); }

  /// \brief The single time point [t, t].
  static Interval Point(DateTime t) { return Interval(t, t); }

  DateTime begin() const { return begin_; }
  DateTime end() const { return end_; }

  /// \brief True when begin > end (the empty interval).
  bool empty() const { return begin_ > end_; }

  bool Contains(DateTime t) const { return begin_ <= t && t <= end_; }

  // Allen-style relations between closed intervals (paper §2 exposes
  // `before`; the rest round out the algebra used by tests and the stream
  // runtime).
  bool Before(const Interval& b) const { return end_ < b.begin_; }
  bool After(const Interval& b) const { return b.end_ < begin_; }
  bool Meets(const Interval& b) const { return end_ == b.begin_; }
  bool MetBy(const Interval& b) const { return b.Meets(*this); }
  bool Overlaps(const Interval& b) const {
    return begin_ < b.begin_ && end_ >= b.begin_ && end_ < b.end_;
  }
  bool ContainsInterval(const Interval& b) const {
    return begin_ <= b.begin_ && b.end_ <= end_;
  }
  bool During(const Interval& b) const { return b.ContainsInterval(*this); }
  bool Equals(const Interval& b) const {
    return begin_ == b.begin_ && end_ == b.end_;
  }
  /// \brief True if the two closed intervals share at least one point.
  bool Intersects(const Interval& b) const {
    return begin_ <= b.end_ && b.begin_ <= end_;
  }

  /// \brief Intersection, or nullopt when disjoint. This is the clipping
  /// rule of interval_projection: lifespans are clipped to the projection
  /// range (paper §6).
  std::optional<Interval> Intersect(const Interval& b) const;

  /// \brief Smallest interval covering both (used to derive a parent's
  /// lifespan from its children, paper §2).
  Interval Span(const Interval& b) const;

  std::string ToString() const;

  friend bool operator==(const Interval&, const Interval&) = default;

 private:
  DateTime begin_ = DateTime::Start();
  DateTime end_ = DateTime::End();
};

}  // namespace xcql

#endif  // XCQL_TEMPORAL_INTERVAL_H_
