#include "temporal/duration.h"

#include <cctype>

#include "common/string_util.h"

namespace xcql {

Result<Duration> Duration::Parse(std::string_view s) {
  s = StripWhitespace(s);
  std::string_view orig = s;
  bool neg = false;
  if (!s.empty() && s[0] == '-') {
    neg = true;
    s.remove_prefix(1);
  }
  if (s.empty() || s[0] != 'P') {
    return Status::ParseError("duration must start with 'P': '" +
                              std::string(orig) + "'");
  }
  s.remove_prefix(1);
  int64_t months = 0;
  int64_t seconds = 0;
  bool in_time = false;
  bool any_component = false;
  size_t i = 0;
  while (i < s.size()) {
    if (s[i] == 'T') {
      if (in_time) {
        return Status::ParseError("duplicate 'T' in duration '" +
                                  std::string(orig) + "'");
      }
      in_time = true;
      ++i;
      continue;
    }
    size_t start = i;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (start == i || i >= s.size()) {
      return Status::ParseError("malformed duration '" + std::string(orig) +
                                "'");
    }
    auto num = ParseInt64(s.substr(start, i - start));
    if (!num) {
      return Status::ParseError("bad number in duration '" +
                                std::string(orig) + "'");
    }
    char unit = s[i++];
    any_component = true;
    if (!in_time) {
      switch (unit) {
        case 'Y':
          months += *num * 12;
          break;
        case 'M':
          months += *num;
          break;
        case 'D':
          seconds += *num * 86400;
          break;
        default:
          return Status::ParseError(std::string("unexpected unit '") + unit +
                                    "' before 'T' in duration '" +
                                    std::string(orig) + "'");
      }
    } else {
      switch (unit) {
        case 'H':
          seconds += *num * 3600;
          break;
        case 'M':
          seconds += *num * 60;
          break;
        case 'S':
          seconds += *num;
          break;
        default:
          return Status::ParseError(std::string("unexpected unit '") + unit +
                                    "' after 'T' in duration '" +
                                    std::string(orig) + "'");
      }
    }
  }
  if (!any_component) {
    return Status::ParseError("duration has no components: '" +
                              std::string(orig) + "'");
  }
  if (neg) {
    months = -months;
    seconds = -seconds;
  }
  return Duration(months, seconds);
}

bool Duration::LooksLikeDuration(std::string_view s) {
  if (s.empty()) return false;
  if (s[0] == '-') s.remove_prefix(1);
  if (s.size() < 2 || s[0] != 'P') return false;
  return std::isdigit(static_cast<unsigned char>(s[1])) || s[1] == 'T';
}

std::string Duration::ToString() const {
  int64_t m = months_;
  int64_t s = seconds_;
  bool neg = m < 0 || (m == 0 && s < 0);
  if (neg) {
    m = -m;
    s = -s;
  }
  std::string out = neg ? "-P" : "P";
  if (m / 12 != 0) out += std::to_string(m / 12) + "Y";
  if (m % 12 != 0) out += std::to_string(m % 12) + "M";
  int64_t days = s / 86400;
  s %= 86400;
  if (days != 0) out += std::to_string(days) + "D";
  if (s != 0) {
    out += "T";
    int64_t h = s / 3600;
    int64_t min = (s % 3600) / 60;
    int64_t sec = s % 60;
    if (h != 0) out += std::to_string(h) + "H";
    if (min != 0) out += std::to_string(min) + "M";
    if (sec != 0) out += std::to_string(sec) + "S";
  }
  if (out == "P" || out == "-P") out = "PT0S";
  return out;
}

}  // namespace xcql
