#include "temporal/interval.h"

#include <algorithm>

namespace xcql {

std::optional<Interval> Interval::Intersect(const Interval& b) const {
  DateTime lo = std::max(begin_, b.begin_);
  DateTime hi = std::min(end_, b.end_);
  if (lo > hi) return std::nullopt;
  return Interval(lo, hi);
}

Interval Interval::Span(const Interval& b) const {
  return Interval(std::min(begin_, b.begin_), std::max(end_, b.end_));
}

std::string Interval::ToString() const {
  std::string out = "[";
  out += begin_.ToString();
  out += ", ";
  out += end_.ToString();
  out += "]";
  return out;
}

}  // namespace xcql
