// xs:dateTime values in the ISO-8601 extended format CCYY-MM-DDThh:mm:ss
// (paper §2). Stored as seconds since the Unix epoch in the proleptic
// Gregorian calendar; second granularity matches the paper's data.
#ifndef XCQL_TEMPORAL_DATETIME_H_
#define XCQL_TEMPORAL_DATETIME_H_

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace xcql {

class Duration;

/// \brief Calendar fields of a dateTime (proleptic Gregorian).
struct CivilTime {
  int32_t year = 1970;
  int32_t month = 1;  // 1..12
  int32_t day = 1;    // 1..31
  int32_t hour = 0;
  int32_t minute = 0;
  int32_t second = 0;
};

/// \brief An xs:dateTime value with second granularity.
///
/// The symbolic endpoints of the paper's time model map to the extremes:
/// `start` ("the beginning of time") is DateTime::Start() and the open end
/// of a still-valid lifespan (serialized as the literal "now" in vtTo
/// attributes) is resolved against the evaluation clock before it becomes a
/// DateTime, so ordinary comparisons suffice everywhere downstream.
class DateTime {
 public:
  DateTime() = default;
  explicit constexpr DateTime(int64_t seconds_since_epoch)
      : secs_(seconds_since_epoch) {}

  /// \brief The beginning of time (the XCQL constant `start`).
  static constexpr DateTime Start() { return DateTime(INT64_MIN); }
  /// \brief The end of time; used to order still-open lifespans after any
  /// concrete instant.
  static constexpr DateTime End() { return DateTime(INT64_MAX); }

  /// \brief Builds a DateTime from calendar fields (fields are not
  /// range-checked; use Parse for validated input).
  static DateTime FromCivil(const CivilTime& ct);

  /// \brief Parses "CCYY-MM-DDThh:mm:ss" or the date-only "CCYY-MM-DD"
  /// (midnight). Rejects out-of-range fields and trailing garbage.
  static Result<DateTime> Parse(std::string_view s);

  /// \brief True if `s` looks like a dateTime literal (used by the lexer).
  static bool LooksLikeDateTime(std::string_view s);

  int64_t seconds() const { return secs_; }

  /// \brief Calendar decomposition. Undefined for Start()/End().
  CivilTime ToCivil() const;

  /// \brief "CCYY-MM-DDThh:mm:ss"; Start() formats as "start" and End()
  /// as "now" to mirror the paper's serialized attributes.
  std::string ToString() const;

  /// \brief Adds a duration: months first with end-of-month clamping, then
  /// the seconds component (per XML Schema arithmetic).
  DateTime Add(const Duration& d) const;
  DateTime Subtract(const Duration& d) const;

  /// \brief Difference in seconds (this - other).
  int64_t DiffSeconds(const DateTime& other) const {
    return secs_ - other.secs_;
  }

  friend auto operator<=>(const DateTime&, const DateTime&) = default;

 private:
  int64_t secs_ = 0;
};

}  // namespace xcql

#endif  // XCQL_TEMPORAL_DATETIME_H_
