#include "temporal/datetime.h"

#include <cctype>

#include "common/string_util.h"
#include "temporal/duration.h"

namespace xcql {

namespace {

constexpr int64_t kSecondsPerDay = 86400;

// Days since 1970-01-01 for a proleptic-Gregorian civil date.
// Howard Hinnant's algorithm.
int64_t DaysFromCivil(int32_t y, int32_t m, int32_t d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int32_t yoe = static_cast<int32_t>(y - era * 400);            // [0,399]
  const int32_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0,365]
  const int32_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0,146096]
  return era * 146097 + doe - 719468;
}

void CivilFromDays(int64_t z, int32_t* y_out, int32_t* m_out, int32_t* d_out) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int32_t doe = static_cast<int32_t>(z - era * 146097);  // [0,146096]
  const int32_t yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0,399]
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const int32_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0,365]
  const int32_t mp = (5 * doy + 2) / 153;                       // [0,11]
  const int32_t d = doy - (153 * mp + 2) / 5 + 1;               // [1,31]
  const int32_t m = mp + (mp < 10 ? 3 : -9);                    // [1,12]
  *y_out = static_cast<int32_t>(y + (m <= 2));
  *m_out = m;
  *d_out = d;
}

bool IsLeap(int32_t y) {
  return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
}

int32_t DaysInMonth(int32_t y, int32_t m) {
  static const int32_t kDays[] = {31, 28, 31, 30, 31, 30,
                                  31, 31, 30, 31, 30, 31};
  if (m == 2 && IsLeap(y)) return 29;
  return kDays[m - 1];
}

// Parses exactly `n` decimal digits starting at s[pos]; advances pos.
bool ParseDigits(std::string_view s, size_t* pos, int n, int32_t* out) {
  if (*pos + static_cast<size_t>(n) > s.size()) return false;
  int32_t v = 0;
  for (int i = 0; i < n; ++i) {
    char c = s[*pos + static_cast<size_t>(i)];
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    v = v * 10 + (c - '0');
  }
  *pos += static_cast<size_t>(n);
  *out = v;
  return true;
}

}  // namespace

DateTime DateTime::FromCivil(const CivilTime& ct) {
  int64_t days = DaysFromCivil(ct.year, ct.month, ct.day);
  return DateTime(days * kSecondsPerDay + ct.hour * 3600 + ct.minute * 60 +
                  ct.second);
}

Result<DateTime> DateTime::Parse(std::string_view s) {
  s = StripWhitespace(s);
  if (s == "start") return DateTime::Start();
  if (s == "now") return DateTime::End();
  size_t pos = 0;
  CivilTime ct;
  if (!ParseDigits(s, &pos, 4, &ct.year) || pos >= s.size() || s[pos] != '-') {
    return Status::ParseError("bad dateTime year in '" + std::string(s) + "'");
  }
  ++pos;
  if (!ParseDigits(s, &pos, 2, &ct.month) || pos >= s.size() ||
      s[pos] != '-') {
    return Status::ParseError("bad dateTime month in '" + std::string(s) + "'");
  }
  ++pos;
  if (!ParseDigits(s, &pos, 2, &ct.day)) {
    return Status::ParseError("bad dateTime day in '" + std::string(s) + "'");
  }
  if (pos < s.size()) {
    if (s[pos] != 'T') {
      return Status::ParseError("expected 'T' separator in '" +
                                std::string(s) + "'");
    }
    ++pos;
    if (!ParseDigits(s, &pos, 2, &ct.hour) || pos >= s.size() ||
        s[pos] != ':') {
      return Status::ParseError("bad dateTime hour in '" + std::string(s) +
                                "'");
    }
    ++pos;
    if (!ParseDigits(s, &pos, 2, &ct.minute) || pos >= s.size() ||
        s[pos] != ':') {
      return Status::ParseError("bad dateTime minute in '" + std::string(s) +
                                "'");
    }
    ++pos;
    if (!ParseDigits(s, &pos, 2, &ct.second)) {
      return Status::ParseError("bad dateTime second in '" + std::string(s) +
                                "'");
    }
  }
  if (pos != s.size()) {
    return Status::ParseError("trailing characters in dateTime '" +
                              std::string(s) + "'");
  }
  if (ct.month < 1 || ct.month > 12 || ct.day < 1 ||
      ct.day > DaysInMonth(ct.year, ct.month) || ct.hour > 23 ||
      ct.minute > 59 || ct.second > 59) {
    return Status::ParseError("dateTime field out of range in '" +
                              std::string(s) + "'");
  }
  return FromCivil(ct);
}

bool DateTime::LooksLikeDateTime(std::string_view s) {
  // dddd-dd-dd prefix.
  if (s.size() < 10) return false;
  for (int i : {0, 1, 2, 3, 5, 6, 8, 9}) {
    if (!std::isdigit(static_cast<unsigned char>(s[static_cast<size_t>(i)]))) {
      return false;
    }
  }
  return s[4] == '-' && s[7] == '-';
}

CivilTime DateTime::ToCivil() const {
  int64_t days = secs_ / kSecondsPerDay;
  int64_t rem = secs_ % kSecondsPerDay;
  if (rem < 0) {
    rem += kSecondsPerDay;
    --days;
  }
  CivilTime ct;
  CivilFromDays(days, &ct.year, &ct.month, &ct.day);
  ct.hour = static_cast<int32_t>(rem / 3600);
  ct.minute = static_cast<int32_t>((rem % 3600) / 60);
  ct.second = static_cast<int32_t>(rem % 60);
  return ct;
}

std::string DateTime::ToString() const {
  if (*this == Start()) return "start";
  if (*this == End()) return "now";
  CivilTime ct = ToCivil();
  return StringPrintf("%04d-%02d-%02dT%02d:%02d:%02d", ct.year, ct.month,
                      ct.day, ct.hour, ct.minute, ct.second);
}

DateTime DateTime::Add(const Duration& d) const {
  if (*this == Start() || *this == End()) return *this;
  int64_t secs = secs_;
  if (d.months() != 0) {
    CivilTime ct = ToCivil();
    int64_t total = static_cast<int64_t>(ct.year) * 12 + (ct.month - 1) +
                    d.months();
    int32_t y = static_cast<int32_t>(total / 12);
    int32_t m = static_cast<int32_t>(total % 12);
    if (m < 0) {
      m += 12;
      --y;
    }
    ct.year = y;
    ct.month = m + 1;
    if (ct.day > DaysInMonth(ct.year, ct.month)) {
      ct.day = DaysInMonth(ct.year, ct.month);  // end-of-month clamp
    }
    secs = FromCivil(ct).seconds();
  }
  return DateTime(secs + d.seconds());
}

DateTime DateTime::Subtract(const Duration& d) const {
  return Add(d.Negated());
}

}  // namespace xcql
