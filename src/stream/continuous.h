// The continuous query engine: registered XCQL queries are re-evaluated
// over the growing fragment stores as the clock advances, emitting newly
// appearing results (paper §1/§3: queries run continuously over the
// fragmented streams; operator-level scheduling is the paper's future
// work, so the engine re-evaluates per tick and deduplicates output).
#ifndef XCQL_STREAM_CONTINUOUS_H_
#define XCQL_STREAM_CONTINUOUS_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "common/result.h"
#include "stream/clock.h"
#include "stream/registry.h"
#include "xcql/executor.h"

namespace xcql::stream {

/// \brief Per-query options.
struct ContinuousQueryOptions {
  lang::ExecMethod method = lang::ExecMethod::kQaCPlus;
  /// Emit each distinct result item at most once across ticks. With it off,
  /// every tick reports the full current result.
  bool dedup = true;
  /// Incremental (watermark) mode: the query sees a variable `$since`
  /// holding the previous tick's evaluation time (`start` on the first
  /// tick). A query that restricts its event scan to `?[$since, now]`
  /// touches only fragments that arrived since it last ran — cooperative
  /// delta evaluation, a lightweight stand-in for the operator scheduling
  /// the paper defers to future work (§8).
  bool incremental = false;
};

/// \brief Runs registered XCQL queries continuously over a hub's streams.
class ContinuousQueryEngine {
 public:
  /// Callback: the delta (or full) result plus the evaluation time.
  using Callback =
      std::function<void(const xq::Sequence& results, DateTime at)>;

  ContinuousQueryEngine(StreamHub* hub, SimClock* clock);

  /// \brief Registers a continuous query; returns its id. The query is
  /// validated (parsed and translated) immediately.
  Result<int> Register(const std::string& xcql, Callback callback,
                       const ContinuousQueryOptions& options = {});

  Status Unregister(int id);

  /// \brief Registers an application UDF available to all queries.
  void RegisterFunction(const std::string& name, int min_arity, int max_arity,
                        xq::FunctionRegistry::NativeFn fn);

  /// \brief Re-evaluates every registered query at the clock's current
  /// time, invoking callbacks with new results.
  Status Tick();

  int64_t evaluations() const { return evaluations_; }
  int64_t results_emitted() const { return results_emitted_; }

 private:
  struct Query {
    std::string text;
    Callback callback;
    ContinuousQueryOptions options;
    std::set<std::string> seen;  // serialized results already emitted
    DateTime watermark = DateTime::Start();  // $since in incremental mode
  };

  StreamHub* hub_;
  SimClock* clock_;
  lang::QueryExecutor executor_;
  std::map<int, Query> queries_;
  std::set<std::string> registered_streams_;
  int next_id_ = 1;
  int64_t evaluations_ = 0;
  int64_t results_emitted_ = 0;
};

}  // namespace xcql::stream

#endif  // XCQL_STREAM_CONTINUOUS_H_
