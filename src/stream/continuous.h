// The continuous query engine: registered XCQL queries are re-evaluated
// over the growing fragment stores as the clock advances, emitting newly
// appearing results (paper §1/§3: queries run continuously over the
// fragmented streams; operator-level scheduling is the paper's future
// work, so the engine re-evaluates per tick and deduplicates output).
//
// A tick is incremental in three ways:
//  * compile once — each query is parsed and translated at Register()
//    time; ticks replay the compiled plan (QueryExecutor::ExecutePrepared);
//  * relevance skipping — the translation names the (stream, tsid) pairs a
//    plan can touch; a query is re-evaluated only when a relevant fragment
//    arrived since its last evaluation (or when skipping is not provably
//    safe: see TickPolicy);
//  * parallel evaluation — due queries evaluate concurrently on a small
//    worker pool (evaluation only reads the stores), then callbacks fire
//    on the ticking thread in ascending query-id order, so observable
//    behavior is deterministic regardless of worker count.
#ifndef XCQL_STREAM_CONTINUOUS_H_
#define XCQL_STREAM_CONTINUOUS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_set>

#include "common/result.h"
#include "stream/clock.h"
#include "stream/registry.h"
#include "stream/tick_pool.h"
#include "xcql/executor.h"

namespace xcql::stream {

/// \brief When a tick may skip re-evaluating a query.
enum class TickPolicy {
  /// Skip only when provably invisible: dedup is on (a skipped evaluation
  /// could at most have re-found already-emitted items), the plan is not
  /// time-sensitive (its result cannot drift with the clock alone), and no
  /// relevant fragment arrived. This is the default and never changes the
  /// emitted delta stream.
  kAuto,
  /// Never skip — the seed engine's behavior.
  kAlways,
  /// Skip whenever no relevant fragment arrived, even without dedup or for
  /// time-sensitive plans. The caller asserts that clock-only drift does
  /// not matter to this query's consumer.
  kDataDriven,
};

/// \brief Per-query options.
struct ContinuousQueryOptions {
  lang::ExecMethod method = lang::ExecMethod::kQaCPlus;
  /// Emit each distinct result item at most once across ticks. With it off,
  /// every tick reports the full current result.
  bool dedup = true;
  /// Incremental (watermark) mode: the query sees a variable `$since`
  /// holding the previous tick's evaluation time (`start` on the first
  /// tick). A query that restricts its event scan to `?[$since, now]`
  /// touches only fragments that arrived since it last ran — cooperative
  /// delta evaluation, a lightweight stand-in for the operator scheduling
  /// the paper defers to future work (§8).
  bool incremental = false;
  /// Tick-skipping policy (see TickPolicy).
  TickPolicy tick_policy = TickPolicy::kAuto;
  /// Degraded-mode behavior when a referenced filler is missing from the
  /// store (lossy transport, repair budget exhausted): omit the hole, keep
  /// it as a marker, or fail the evaluation. Under kOmit/kKeepHole the
  /// query keeps running and QueryStats reports per-evaluation
  /// completeness; under kFail each tick records an error until the filler
  /// arrives. See docs/ROBUSTNESS.md.
  xq::HolePolicy hole_policy = xq::HolePolicy::kOmit;
  /// Overrides the filler-lookup cost model when set: true forces the
  /// paper-faithful linear scan (`--paper-faithful` in the CLIs). Unset
  /// uses the engine default (indexed lookup).
  std::optional<bool> linear_get_fillers = std::nullopt;
  /// Evaluate ticks through the compiled plan when the query lowered to one
  /// (see xq/plan.h); off forces the reference tree-walking interpreter.
  bool use_compiled_plan = true;
  /// Full diff mode (requires a delta callback, see RegisterDelta): each
  /// tick reports items that newly appeared since the previous evaluation
  /// as `added` and items that vanished as `removed` (serialized, in the
  /// order the previous tick emitted them). Overrides the monotone
  /// adds-only semantics of `dedup` — an item that disappears and later
  /// reappears is re-added. Costs one serialized copy of the current
  /// result, held between ticks.
  bool track_removals = false;
};

/// \brief Per-query runtime counters and status.
struct ContinuousQueryStats {
  int64_t evaluations = 0;  // plan executions
  int64_t skips = 0;        // ticks that skipped this query
  int64_t errors = 0;       // failed evaluations (tick continued)
  Status last_status;       // outcome of the most recent evaluation attempt
  /// From the plan's relevance analysis (see lang::QueryRelevance).
  bool time_sensitive = false;
  bool unbounded = false;
  /// The minimal observable window the plan can still see (window.bounded
  /// false ⇔ this query pins retention; see docs/RETENTION.md).
  lang::ObservableWindow window;
  /// Completeness under the query's hole policy: holes left unresolved by
  /// the most recent successful evaluation, and how many successful
  /// evaluations were incomplete (unresolved > 0). 0/0 ⇔ every emitted
  /// result was built from fully-arrived data.
  int64_t holes_unresolved_last = 0;
  int64_t incomplete_evaluations = 0;
  /// Plan pipeline counters: microseconds spent lowering the query (latest
  /// compilation), how many evaluations ran the compiled plan vs fell back
  /// to the interpreter, why the plan fell back (empty = it compiled), and
  /// the largest evaluation-arena footprint seen (bytes).
  int64_t compile_micros = 0;
  int64_t compiled_evals = 0;
  int64_t fallback_evals = 0;
  std::string plan_fallback_reason;
  size_t arena_high_water = 0;
};

/// \brief Runs registered XCQL queries continuously over a hub's streams.
class ContinuousQueryEngine {
 public:
  /// Callback: the delta (or full) result plus the evaluation time.
  using Callback =
      std::function<void(const xq::Sequence& results, DateTime at)>;
  /// Delta callback (RegisterDelta): newly appearing items, the serialized
  /// forms of items that left the result (empty unless track_removals),
  /// and the evaluation time.
  using DeltaCallback = std::function<void(
      const xq::Sequence& added, const std::vector<std::string>& removed,
      DateTime at)>;

  ContinuousQueryEngine(StreamHub* hub, SimClock* clock);

  /// \brief Registers a continuous query; returns its id. The query is
  /// compiled (parsed, translated, relevance-analyzed) immediately; ticks
  /// reuse the compiled plan.
  Result<int> Register(const std::string& xcql, Callback callback,
                       const ContinuousQueryOptions& options = {});

  /// \brief Like Register, but the callback also sees removals. Without
  /// options.track_removals the added sequence is exactly what Register's
  /// callback would have received (dedup delta or full result) and removed
  /// stays empty; with it, ticks report the symmetric diff against the
  /// previous evaluation. This is the emission hook the remote query
  /// channel encodes into RESULT frames.
  Result<int> RegisterDelta(const std::string& xcql, DeltaCallback callback,
                            const ContinuousQueryOptions& options = {});

  Status Unregister(int id);

  /// \brief Registers an application UDF available to all queries. Queries
  /// calling it are never skipped (its data accesses are opaque), and
  /// already-compiled plans are recompiled on the next tick so they can
  /// see it.
  void RegisterFunction(const std::string& name, int min_arity, int max_arity,
                        xq::FunctionRegistry::NativeFn fn);

  /// \brief Re-evaluates every due query at the clock's current time,
  /// invoking callbacks with new results. A query whose evaluation fails
  /// does not abort the tick: its error is recorded (see QueryStats) and
  /// its watermark/relevance state stays put so it retries next tick.
  Status Tick();

  /// \brief Number of evaluation worker threads (in addition to the ticking
  /// thread). 0 evaluates everything inline.
  void set_workers(int workers) { pool_.Resize(workers); }
  int workers() const { return pool_.workers(); }

  int64_t evaluations() const { return evaluations_; }
  int64_t results_emitted() const { return results_emitted_; }
  int64_t ticks() const { return ticks_; }
  /// \brief Query-ticks skipped by relevance/policy checks.
  int64_t skips() const { return skips_; }

  Result<ContinuousQueryStats> QueryStats(int id) const;

 private:
  struct Query {
    std::string text;
    Callback callback;
    DeltaCallback delta_callback;
    ContinuousQueryOptions options;
    /// track_removals only: the previous evaluation's result as
    /// (dedup key, serialized item), in emission order — the base the next
    /// tick diffs against.
    std::vector<std::pair<uint64_t, std::string>> present;
    lang::PreparedQuery prepared;
    /// Engine schema epoch the plan was compiled against; a mismatch (new
    /// stream or UDF appeared) triggers recompilation at the next tick.
    int64_t plan_epoch = 0;
    /// Relevance stamp at the last successful evaluation; -1 = never
    /// evaluated, so the first tick is always due.
    int64_t last_stamp = -1;
    /// 64-bit FNV-1a hashes of the serialized items already emitted
    /// (dedup mode). Hashing streams the serialization events, so no
    /// per-item result string is ever materialized.
    std::unordered_set<uint64_t> seen;
    DateTime watermark = DateTime::Start();  // $since in incremental mode
    int64_t evaluations = 0;
    int64_t skips = 0;
    int64_t errors = 0;
    Status last_status;
    int64_t holes_unresolved_last = 0;
    int64_t incomplete_evaluations = 0;
    int64_t compiled_evals = 0;
    int64_t fallback_evals = 0;
    size_t arena_high_water = 0;
  };

  Status SyncStreams();
  /// Monotonic sum of the revision counters of the plan's relevant tsids
  /// (all stores when unbounded): unchanged ⇔ no relevant fragment arrived.
  int64_t RelevanceStamp(const lang::QueryRelevance& rel) const;
  bool IsDue(const Query& q, int64_t stamp) const;

  StreamHub* hub_;
  SimClock* clock_;
  lang::QueryExecutor executor_;
  TickPool pool_;
  std::map<int, Query> queries_;
  std::set<std::string> registered_streams_;
  /// Bumped whenever the compile environment changes (stream or UDF
  /// registered); plans with an older epoch are recompiled lazily.
  int64_t schema_epoch_ = 0;
  int next_id_ = 1;
  int64_t evaluations_ = 0;
  int64_t results_emitted_ = 0;
  int64_t ticks_ = 0;
  int64_t skips_ = 0;
};

/// \brief Canonical rendering of one result item: SerializeXml for nodes,
/// the string value for atomics — the same per-item form RenderResult
/// space-joins, and the byte form RESULT frames carry over the wire.
std::string SerializeResultItem(const xq::Item& item);

}  // namespace xcql::stream

#endif  // XCQL_STREAM_CONTINUOUS_H_
